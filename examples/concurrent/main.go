// concurrent: the Hybrid B+-tree under multi-worker load with the two
// concurrent adaptation strategies of the paper's §3.1.5 — GS (one shared
// concurrent cuckoo sample map) and TLS (thread-local maps merged per
// phase). Workers run a skewed read/insert mix; one of them completes each
// sampling phase and performs the adaptation while the others keep going.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

func run(mode core.ConcurrencyMode, name string, workers int, keys, vals []uint64) {
	base := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals).Bytes()
	a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:         btree.Config{DefaultEncoding: btree.EncSuccinct},
		MemoryBudget: base + base/2,
		Mode:         mode,
		Workers:      workers,
		InitialSkip:  16, MinSkip: 8, MaxSkip: 128,
		MaxSampleSize: 8192,
	}, keys, vals)

	const opsPerWorker = 1_500_000
	var ops atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := a.NewSession() // one session per goroutine
			defer s.Flush()     // hand leftover thread-local samples over
			gen := workload.NewGenerator(workload.W52, len(keys), int64(w)*31+1)
			for i := 0; i < opsPerWorker; i++ {
				op := gen.Next()
				switch op.Kind {
				case workload.OpRead:
					if _, ok := s.Lookup(keys[op.Index]); !ok {
						panic("key lost")
					}
				case workload.OpScan:
					s.Scan(keys[op.Index], op.ScanLen, func(k, v uint64) bool { return true })
				case workload.OpInsert:
					s.Insert(keys[op.Index]+1, uint64(op.Index))
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start)
	sc, pc, gc := a.Tree.LeafCounts()
	fmt.Printf("%-4s %2d workers: %6.2f Mops/s  adaptations=%-3d size=%s (s/p/g %d/%d/%d) framework=%s\n",
		name, workers, float64(ops.Load())/el.Seconds()/1e6,
		a.Mgr.Adaptations(), stats.HumanBytes(a.Tree.Bytes()), sc, pc, gc,
		stats.HumanBytes(a.Mgr.Bytes()))
}

func main() {
	keys := dataset.OSM(1_000_000, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	fmt.Printf("scan-dominated W5.2 over %d keys on %d CPUs\n", len(keys), runtime.NumCPU())
	for _, workers := range []int{1, 2, 4} {
		run(core.GS, "GS", workers, keys, vals)
		run(core.TLS, "TLS", workers, keys, vals)
	}
	fmt.Println("\nTLS buys lower sampling contention for slightly more memory;")
	fmt.Println("GS keeps one compact shared map (paper §3.1.5, Figure 18).")
}
