// kvstore: a miniature ordered key-value store whose primary index is an
// adaptive Hybrid B+-tree under a hard memory budget — the scenario the
// paper's introduction motivates (indexes eating half of DRAM). The store
// serves a shifting OLTP-style workload: the hot tenant changes midway and
// the index re-shapes itself, compacting yesterday's hot range.
package main

import (
	"fmt"

	"ahi"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

// store wraps the adaptive index with a tiny record heap, mapping keys to
// record offsets the way a real system maps keys to TIDs.
type store struct {
	idx     *ahi.BTree
	session *ahi.BTreeSession
	heap    [][]byte
}

func newStore(budget int64, keys []uint64) *store {
	st := &store{}
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		st.heap = append(st.heap, []byte(fmt.Sprintf("record-%d", k)))
		vals[i] = uint64(i)
	}
	st.idx = ahi.BulkLoadBTree(ahi.BTreeOptions{
		ColdEncoding: ahi.EncSuccinct,
		MemoryBudget: budget,
		InitialSkip:  16, MinSkip: 8, MaxSkip: 128,
		MaxSampleSize: 8192,
	}, keys, vals)
	st.session = st.idx.NewSession()
	return st
}

func (st *store) get(key uint64) ([]byte, bool) {
	tid, ok := st.session.Lookup(key)
	if !ok {
		return nil, false
	}
	return st.heap[tid], true
}

func (st *store) put(key uint64, record []byte) {
	st.heap = append(st.heap, record)
	st.session.Insert(key, uint64(len(st.heap)-1))
}

func (st *store) scan(from uint64, n int) [][]byte {
	var out [][]byte
	st.session.Scan(from, n, func(k, tid uint64) bool {
		out = append(out, st.heap[tid])
		return true
	})
	return out
}

func main() {
	keys := dataset.UserIDs(500_000, 3)
	// Budget: compact baseline + ~15% headroom.
	base := ahi.BulkLoadPlainBTree(ahi.EncSuccinct, keys, make([]uint64, len(keys)))
	budget := base.Bytes() + base.Bytes()*15/100
	st := newStore(budget, keys)
	fmt.Printf("kvstore: %d records, index budget %s\n", len(keys), stats.HumanBytes(budget))

	// Tenant A (the first 2% of the id space) dominates the morning.
	runTenant := func(name string, lo, hi int, ops int) {
		z := workload.NewZipf(hi-lo, 1.1, int64(lo+1))
		gets, puts, scans := 0, 0, 0
		for i := 0; i < ops; i++ {
			j := lo + z.Draw()
			switch i % 10 {
			case 8:
				st.put(keys[j]+1, []byte("fresh"))
				puts++
			case 9:
				st.scan(keys[j], 20)
				scans++
			default:
				if _, ok := st.get(keys[j]); !ok {
					panic("record lost")
				}
				gets++
			}
		}
		sc, pc, gc := st.idx.Tree.LeafCounts()
		fmt.Printf("%s: %d gets / %d puts / %d scans -> size %s (budget %s), leaves s/p/g = %d/%d/%d\n",
			name, gets, puts, scans,
			stats.HumanBytes(st.idx.Tree.Bytes()), stats.HumanBytes(budget), sc, pc, gc)
	}

	hot := len(keys) / 50
	runTenant("morning (tenant A hot)", 0, hot, 3_000_000)
	runTenant("afternoon (tenant B hot)", len(keys)-hot, len(keys), 3_000_000)

	fmt.Printf("lifetime migrations: %d expansions, %d compactions\n",
		st.idx.Tree.Expansions(), st.idx.Tree.Compactions())

	// Writes expand their target leaves eagerly regardless of budget (the
	// paper's §5.2 policy: inserts into Succinct leaves are expensive, so
	// the tree expands first and lets the next adaptations compact cold
	// ranges back). A read-mostly cool-down lets the budget re-assert.
	z := workload.NewZipf(len(keys)/100, 1.2, 5)
	for i := 0; i < 4_000_000; i++ {
		st.get(keys[z.Draw()])
	}
	over := float64(st.idx.Tree.Bytes()-budget) / float64(budget) * 100
	fmt.Printf("after cool-down: size %s vs budget %s (%+.1f%%)\n",
		stats.HumanBytes(st.idx.Tree.Bytes()), stats.HumanBytes(budget), over)
	if st.idx.Tree.Bytes() > budget+budget/10 {
		fmt.Println("note: write-heavy phases can overshoot the budget until cold ranges compact")
	} else {
		fmt.Println("index converged back under its budget after following the hot tenant")
	}
}
