// Quickstart: build an adaptive Hybrid B+-tree, run a skewed read
// workload against it, and watch the index migrate its hot leaves from
// the Succinct to the Gapped encoding — smaller than a classic B+-tree,
// nearly as fast on the hot set.
package main

import (
	"fmt"

	"ahi"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

func main() {
	// 1M synthetic OSM-like keys (clustered 64-bit S2-style cell ids).
	keys := dataset.OSM(1_000_000, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}

	// Grant the index half the space a fully expanded tree would use, and
	// tighten the sampling cadence (the paper's defaults pace adaptation
	// for 50M-query phases).
	tree := ahi.BulkLoadBTree(ahi.BTreeOptions{
		ColdEncoding:   ahi.EncSuccinct,
		RelativeBudget: 0.50,
		InitialSkip:    16, MinSkip: 8, MaxSkip: 128,
		MaxSampleSize: 8192,
		OnAdapt: func(ai ahi.AdaptInfo) {
			fmt.Printf("  adaptation %d: %d unique samples, %d hot, %d migrations, next skip %d\n",
				ai.Epoch+1, ai.UniqueSamples, ai.Hot, ai.Migrations, ai.NewSkip)
		},
	}, keys, vals)

	fmt.Printf("loaded %d keys, initial size %s (all leaves Succinct)\n",
		tree.Tree.Len(), stats.HumanBytes(tree.Tree.Bytes()))

	// A Zipfian session: 5M skewed lookups. One Session per goroutine.
	s := tree.NewSession()
	z := workload.NewZipf(len(keys), 1.1, 7)
	misses := 0
	for i := 0; i < 5_000_000; i++ {
		j := z.Draw()
		if v, ok := s.Lookup(keys[j]); !ok || v != vals[j] {
			misses++
		}
	}
	if misses != 0 {
		panic("lookup misses — index corrupted")
	}

	sc, pc, gc := tree.Tree.LeafCounts()
	fmt.Printf("after 5M Zipfian lookups: size %s, leaves: %d succinct / %d packed / %d gapped\n",
		stats.HumanBytes(tree.Tree.Bytes()), sc, pc, gc)
	fmt.Printf("expansions=%d compactions=%d, sampling framework: %s (%.2f%% of index)\n",
		tree.Tree.Expansions(), tree.Tree.Compactions(),
		stats.HumanBytes(tree.Mgr.Bytes()),
		100*float64(tree.Mgr.Bytes())/float64(tree.Tree.Bytes()))

	// Compare against the fixed-encoding baselines.
	gapped := ahi.BulkLoadPlainBTree(ahi.EncGapped, keys, vals)
	succ := ahi.BulkLoadPlainBTree(ahi.EncSuccinct, keys, vals)
	fmt.Printf("baselines: gapped %s, succinct %s, adaptive %s\n",
		stats.HumanBytes(gapped.Bytes()), stats.HumanBytes(succ.Bytes()),
		stats.HumanBytes(tree.Tree.Bytes()))
}
