// emailindex: an adaptive Hybrid Trie over host-reversed email addresses
// (the paper's Figure 19/20 scenario). The trie starts as a compact Fast
// Succinct Trie under nine ART levels; as point lookups concentrate on a
// few providers' subtrees, those branches expand into ART nodes, and when
// the hot provider changes, the stale expansions compact back.
package main

import (
	"fmt"

	"ahi"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

func main() {
	emails := dataset.Emails(300_000, 5)
	keys := make([][]byte, len(emails))
	vals := make([]uint64, len(emails))
	for i, e := range emails {
		keys[i] = ahi.TerminateKey([]byte(e))
		vals[i] = uint64(i)
	}

	trie := ahi.BuildTrie(ahi.TrieOptions{
		CArt:        9,
		InitialSkip: 16, MinSkip: 8, MaxSkip: 128,
		MaxSampleSize: 8192,
	}, keys, vals)
	fmt.Printf("indexed %d emails: total %s (FST %s + ART top %s)\n",
		trie.Trie.Len(), stats.HumanBytes(trie.Trie.Bytes()),
		stats.HumanBytes(trie.Trie.FSTBytes()), stats.HumanBytes(trie.Trie.ARTBytes()))

	s := trie.NewSession()

	phase := func(name string, lo, hi int, ops int) {
		z := workload.NewZipf(hi-lo, 1.2, int64(lo+7))
		for i := 0; i < ops; i++ {
			j := lo + z.Draw()
			if i%5 == 4 {
				// Range scan: "all addresses after this one".
				s.Scan(keys[j], 25, func(k []byte, v uint64) bool { return true })
				continue
			}
			if v, ok := s.Lookup(keys[j]); !ok || v != vals[j] {
				panic("email lost")
			}
		}
		fmt.Printf("%s: size %s, %d subtrees expanded (%d expansions, %d compactions)\n",
			name, stats.HumanBytes(trie.Trie.Bytes()), trie.Trie.Expanded(),
			trie.Trie.Expansions(), trie.Trie.Compactions())
	}

	// Morning: traffic hammers the first provider block; evening: the last.
	hot := len(keys) / 20
	phase("phase 1 (first provider hot)", 0, hot, 2_000_000)
	phase("phase 2 (last provider hot)", len(keys)-hot, len(keys), 4_000_000)

	// Prefix query: everything under one provider.
	prefix := []byte("gmail.com@")
	n := trie.Trie.ScanPrefix(prefix, -1, func(k []byte, v uint64) bool { return true })
	fmt.Printf("prefix scan: %d addresses under %q\n", n, prefix)
}
