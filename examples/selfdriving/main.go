// selfdriving: offline training for hybrid indexes (paper §3.2). A
// self-driving DBMS predicts tomorrow's workload from today's query log;
// this example replays a historic workload into per-key frequencies,
// trains a fresh index before it serves a single query, and compares it
// against the online-adaptive and static variants on the predicted
// workload.
package main

import (
	"fmt"
	"time"

	"ahi"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

func main() {
	keys := dataset.OSM(1_000_000, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	base := ahi.BulkLoadPlainBTree(ahi.EncSuccinct, keys, vals)
	budget := base.Bytes() + base.Bytes()/4

	// Yesterday's query log -> per-key access frequencies.
	historic := workload.NewGenerator(workload.W13, len(keys), 99)
	freqs := map[uint64]uint64{}
	for i := 0; i < 2_000_000; i++ {
		freqs[keys[historic.Next().Index]]++
	}

	// Trained index: expand the predicted-hot leaves before serving.
	trained := ahi.BulkLoadBTree(ahi.BTreeOptions{
		ColdEncoding: ahi.EncSuccinct, MemoryBudget: budget,
	}, keys, vals)
	migs := trained.Train(freqs)
	fmt.Printf("offline training expanded %d leaves within a %s budget\n",
		migs, stats.HumanBytes(budget))

	// Tomorrow's workload (same distribution, new draws).
	serve := func(name string, lookup func(uint64) (uint64, bool), size int64) {
		gen := workload.NewGenerator(workload.W13, len(keys), 7)
		start := time.Now()
		const ops = 3_000_000
		for i := 0; i < ops; i++ {
			op := gen.Next()
			if op.Kind != workload.OpRead {
				continue
			}
			if _, ok := lookup(keys[op.Index]); !ok {
				panic("key lost")
			}
		}
		el := time.Since(start)
		fmt.Printf("%-22s %6.1f ns/op   size %s\n",
			name, float64(el.Nanoseconds())/ops, stats.HumanBytes(size))
	}

	trainedSession := trained.NewSession()
	serve("pre-trained hybrid", trainedSession.Lookup, trained.Tree.Bytes())

	adaptive := ahi.BulkLoadBTree(ahi.BTreeOptions{
		ColdEncoding: ahi.EncSuccinct, MemoryBudget: budget,
		InitialSkip: 16, MinSkip: 8, MaxSkip: 128, MaxSampleSize: 8192,
	}, keys, vals)
	adaptiveSession := adaptive.NewSession()
	serve("online adaptive", adaptiveSession.Lookup, adaptive.Tree.Bytes())

	gapped := ahi.BulkLoadPlainBTree(ahi.EncGapped, keys, vals)
	serve("gapped (fast, large)", gapped.Lookup, gapped.Bytes())
	serve("succinct (small)", base.Lookup, base.Bytes())

	fmt.Println("\nthe pre-trained index skips the online warm-up: it is fast")
	fmt.Println("from the first query, at the same memory budget")
}
