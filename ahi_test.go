package ahi_test

import (
	"bytes"
	"fmt"
	"testing"

	"ahi"
	"ahi/internal/dataset"
	"ahi/internal/workload"
)

func TestPublicBTreeLifecycle(t *testing.T) {
	keys := dataset.OSM(50_000, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	var adapts int
	tree := ahi.BulkLoadBTree(ahi.BTreeOptions{
		ColdEncoding:   ahi.EncSuccinct,
		RelativeBudget: 0.6,
		InitialSkip:    4, MinSkip: 2, MaxSkip: 32, MaxSampleSize: 2048,
		OnAdapt: func(ai ahi.AdaptInfo) { adapts++ },
	}, keys, vals)

	s := tree.NewSession()
	z := workload.NewZipf(len(keys), 1.2, 5)
	for i := 0; i < 800_000; i++ {
		j := z.Draw()
		if v, ok := s.Lookup(keys[j]); !ok || v != vals[j] {
			t.Fatalf("lookup lost %d", keys[j])
		}
	}
	if adapts == 0 {
		t.Fatal("OnAdapt never fired")
	}
	if tree.Tree.Expansions() == 0 {
		t.Fatal("no expansions")
	}
	// Inserts, scans, deletes through the session.
	if !s.Insert(keys[0]+1, 7) {
		t.Fatal("insert")
	}
	if n := s.Scan(keys[0], 10, func(k, v uint64) bool { return true }); n != 10 {
		t.Fatalf("scan visited %d", n)
	}
	if !s.Delete(keys[0] + 1) {
		t.Fatal("delete")
	}
	// Iterator through the session.
	it := s.NewIterator()
	if !it.Seek(keys[100]) || it.Key() != keys[100] {
		t.Fatal("iterator seek")
	}
}

func TestPublicPlainBTree(t *testing.T) {
	keys := dataset.OSM(10_000, 2)
	vals := make([]uint64, len(keys))
	for _, enc := range []ahi.Encoding{ahi.EncSuccinct, ahi.EncPacked, ahi.EncGapped} {
		tr := ahi.BulkLoadPlainBTree(enc, keys, vals)
		if tr.Len() != len(keys) {
			t.Fatalf("Len=%d", tr.Len())
		}
		if _, ok := tr.Lookup(keys[7]); !ok {
			t.Fatal("lookup")
		}
	}
}

func TestPublicTrieLifecycle(t *testing.T) {
	emails := dataset.Emails(30_000, 3)
	keys := make([][]byte, len(emails))
	vals := make([]uint64, len(emails))
	for i, e := range emails {
		keys[i] = ahi.TerminateKey([]byte(e))
		vals[i] = uint64(i)
	}
	trie := ahi.BuildTrie(ahi.TrieOptions{
		CArt:        6,
		InitialSkip: 4, MinSkip: 2, MaxSkip: 32, MaxSampleSize: 2048,
	}, keys, vals)
	s := trie.NewSession()
	z := workload.NewZipf(len(keys), 1.2, 9)
	for i := 0; i < 600_000; i++ {
		j := z.Draw()
		if v, ok := s.Lookup(keys[j]); !ok || v != vals[j] {
			t.Fatalf("trie lookup lost %q", emails[j])
		}
	}
	if trie.Trie.Expansions() == 0 {
		t.Fatal("no trie expansions")
	}
	var prev string
	n := s.Scan(keys[0], 100, func(k []byte, v uint64) bool {
		if prev != "" && string(k) <= prev {
			t.Fatal("scan order")
		}
		prev = string(k)
		return true
	})
	if n != 100 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestPublicCustomManager(t *testing.T) {
	// Wire the adaptation manager into a toy "index" of 256 buckets.
	expanded := make([]bool, 256)
	cfg := ahi.ManagerConfig[int, struct{}]{
		Hash: func(id int) uint64 { return uint64(id) * 0x9e3779b97f4a7c15 },
		Units: func() ahi.UnitCounts {
			var nu int64
			for _, e := range expanded {
				if e {
					nu++
				}
			}
			return ahi.UnitCounts{Compressed: 256 - nu, Uncompressed: nu, CompressedAvg: 16, UncompressedAvg: 64}
		},
		UsedMemory: func() int64 { return 256 * 16 },
		Heuristic: func(id int, _ *struct{}, st *ahi.Stats, env ahi.Env) ahi.Action {
			if env.Hot && !expanded[id] {
				return ahi.Action{Target: 1, Migrate: true}
			}
			return ahi.Action{}
		},
		Migrate: func(id int, _ struct{}, target ahi.Encoding) (int, bool) {
			expanded[id] = target == 1
			return id, true
		},
		InitialSkip: 2, MinSkip: 1, MaxSkip: 8, MaxSampleSize: 512,
	}
	mgr := ahi.NewManager(cfg)
	sampler := mgr.NewSampler()
	for i := 0; i < 200_000; i++ {
		if sampler.IsSample() {
			sampler.Track(i%4, ahi.Read, struct{}{}) // four hot buckets
		}
	}
	if mgr.Adaptations() == 0 {
		t.Fatal("no adaptations")
	}
	if !expanded[0] || !expanded[3] {
		t.Fatal("hot buckets not expanded")
	}
	hot := 0
	for _, e := range expanded {
		if e {
			hot++
		}
	}
	if hot > 8 {
		t.Fatalf("cold buckets expanded: %d", hot)
	}
}

func ExampleBulkLoadBTree() {
	keys := []uint64{1, 5, 9, 12, 40}
	vals := []uint64{10, 50, 90, 120, 400}
	tree := ahi.BulkLoadBTree(ahi.BTreeOptions{ColdEncoding: ahi.EncSuccinct}, keys, vals)
	s := tree.NewSession()
	v, ok := s.Lookup(9)
	fmt.Println(v, ok)
	// Output: 90 true
}

func TestPublicTriePersistence(t *testing.T) {
	emails := dataset.Emails(5000, 9)
	keys := make([][]byte, len(emails))
	vals := make([]uint64, len(emails))
	for i, e := range emails {
		keys[i] = ahi.TerminateKey([]byte(e))
		vals[i] = uint64(i)
	}
	trie := ahi.BuildTrie(ahi.TrieOptions{CArt: 4}, keys, vals)
	var buf bytes.Buffer
	if err := ahi.SaveTrie(trie, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ahi.LoadTrie(ahi.TrieOptions{InitialSkip: 4, MinSkip: 2, MaxSkip: 32, MaxSampleSize: 1024}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.NewSession()
	for i := range keys {
		if v, ok := s.Lookup(keys[i]); !ok || v != vals[i] {
			t.Fatalf("loaded trie lost %q", emails[i])
		}
	}
	// The loaded trie adapts like a fresh one.
	z := workload.NewZipf(len(keys), 1.3, 3)
	for i := 0; i < 400_000; i++ {
		s.Lookup(keys[z.Draw()])
	}
	if loaded.Trie.Expansions() == 0 {
		t.Fatal("loaded trie never adapted")
	}
}

// Example_trie indexes byte-string keys with the Hybrid Trie and runs a
// prefix scan over one subtree.
func Example_trie() {
	keys := [][]byte{
		ahi.TerminateKey([]byte("acme.com@ada")),
		ahi.TerminateKey([]byte("acme.com@bob")),
		ahi.TerminateKey([]byte("zeta.org@zoe")),
	}
	trie := ahi.BuildTrie(ahi.TrieOptions{CArt: 2}, keys, []uint64{1, 2, 3})
	n := trie.Trie.ScanPrefix([]byte("acme.com@"), -1, func(k []byte, v uint64) bool { return true })
	fmt.Println(n, "addresses under acme.com")
	// Output: 2 addresses under acme.com
}
