package core

import (
	"sync"
	"testing"
	"time"

	"ahi/internal/hashmap"
)

// Additional manager behaviour tests beyond core_test.go's workload-driven
// scenarios: parameter clamps, access-type accounting, context updates in
// GS mode, and sampler lifecycle edges.

func TestMaxSampleSizeClamps(t *testing.T) {
	ix := newMockIndex(1_000_000) // Eq.(1) would want a huge sample here
	cfg := ix.config(SingleThreaded, 1)
	cfg.MaxSampleSize = 500
	m := New(cfg)
	if m.SampleSize() > 500 {
		t.Fatalf("sample size %d exceeds cap", m.SampleSize())
	}
	// A floor keeps degenerate indexes from adapting on every access.
	ix2 := newMockIndex(1)
	cfg2 := ix2.config(SingleThreaded, 1)
	m2 := New(cfg2)
	if m2.SampleSize() < 64 {
		t.Fatalf("sample size %d below floor", m2.SampleSize())
	}
}

func TestScanAccessesCountAsReads(t *testing.T) {
	ix := newMockIndex(16)
	cfg := ix.config(SingleThreaded, 1)
	cfg.DisableBloom = true
	m := New(cfg)
	s := m.NewSampler()
	s.Track(3, Scan, struct{}{})
	s.Track(3, Read, struct{}{})
	s.Track(3, Insert, struct{}{})
	found := false
	// Inspect via the store (single-threaded mode keeps it in m.local).
	m.mergeMu.Lock()
	if e := m.local.Ref(3); e != nil {
		found = true
		if e.stats.Reads != 2 || e.stats.Writes != 1 {
			t.Fatalf("reads=%d writes=%d", e.stats.Reads, e.stats.Writes)
		}
	}
	m.mergeMu.Unlock()
	if !found {
		t.Fatal("unit not tracked")
	}
}

func TestEpochResetsCounters(t *testing.T) {
	ix := newMockIndex(64)
	cfg := ix.config(SingleThreaded, 1)
	cfg.DisableBloom = true
	cfg.MaxSampleSize = 64 // minimum: adapt quickly
	m := New(cfg)
	s := m.NewSampler()
	for i := 0; i < 64; i++ {
		s.Track(5, Read, struct{}{}) // fills a whole phase with unit 5
	}
	epoch := m.Epoch()
	if epoch == 0 {
		t.Fatal("no adaptation after a full sample")
	}
	// Track in the new epoch: counters must restart, not accumulate.
	s.Track(5, Read, struct{}{})
	m.mergeMu.Lock()
	e := m.local.Ref(5)
	if e == nil {
		t.Fatal("unit evicted unexpectedly")
	}
	if e.stats.Reads != 1 {
		t.Fatalf("stale counters survived the epoch: reads=%d", e.stats.Reads)
	}
	if e.stats.LastEpoch != epoch {
		t.Fatalf("epoch not updated: %d vs %d", e.stats.LastEpoch, epoch)
	}
	m.mergeMu.Unlock()
}

func TestGSUpdateContextAndForget(t *testing.T) {
	type ctx struct{ parent int }
	ix := newMockIndex(8)
	cfg := Config[int, ctx]{
		Hash:         func(id int) uint64 { return hashmap.HashU64(uint64(id)) },
		Units:        ix.units,
		UsedMemory:   ix.usedMemory,
		Heuristic:    func(int, *ctx, *Stats, Env) Action { return Action{} },
		Migrate:      func(id int, _ ctx, _ Encoding) (int, bool) { return id, false },
		Mode:         GS,
		Workers:      2,
		DisableBloom: true,
	}
	m := New(cfg)
	s := m.NewSampler()
	s.Track(1, Read, ctx{parent: 7})
	m.UpdateContext(1, ctx{parent: 9})
	m.UpdateContext(2, ctx{parent: 1}) // untracked: must not create
	if m.TrackedUnits() != 1 {
		t.Fatalf("tracked=%d", m.TrackedUnits())
	}
	m.Forget(1)
	if m.TrackedUnits() != 0 {
		t.Fatal("Forget in GS mode failed")
	}
}

func TestTLSFlushIdempotent(t *testing.T) {
	ix := newMockIndex(32)
	cfg := ix.config(TLS, 2)
	cfg.DisableBloom = true
	m := New(cfg)
	s := m.NewSampler()
	s.Flush() // nothing buffered: no-op
	s.Track(4, Read, struct{}{})
	s.Flush()
	s.Flush() // second flush must not double-count
	if m.TrackedUnits() != 1 {
		t.Fatalf("tracked=%d", m.TrackedUnits())
	}
}

func TestSamplerPerGoroutineIndependence(t *testing.T) {
	ix := newMockIndex(128)
	cfg := ix.config(GS, 4)
	cfg.AdaptiveSkip = false
	cfg.InitialSkip = 9
	m := New(cfg)
	var wg sync.WaitGroup
	counts := make([]int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.NewSampler()
			for i := 0; i < 1000; i++ {
				if s.IsSample() {
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	for w, c := range counts {
		if c < 95 || c > 105 { // 1000 / (skip 9 + 1)
			t.Fatalf("worker %d sampled %d of 1000 at skip 9", w, c)
		}
	}
}

func TestRandomizeSkipJitters(t *testing.T) {
	ix := newMockIndex(64)
	cfg := ix.config(SingleThreaded, 1)
	cfg.AdaptiveSkip = false
	cfg.InitialSkip = 20
	cfg.RandomizeSkip = true
	m := New(cfg)
	s := m.NewSampler()
	// Collect inter-sample gaps; with jitter they must vary but stay in
	// roughly [skip/2, 3*skip/2], and the mean must stay near the skip.
	gaps := map[int]int{}
	gap := 0
	total, count := 0, 0
	for i := 0; i < 200_000; i++ {
		if s.IsSample() {
			if gap > 0 {
				gaps[gap]++
				total += gap
				count++
			}
			gap = 0
		} else {
			gap++
		}
	}
	if len(gaps) < 5 {
		t.Fatalf("jitter produced only %d distinct gaps", len(gaps))
	}
	mean := float64(total) / float64(count)
	if mean < 15 || mean > 26 {
		t.Fatalf("jittered mean gap %.1f drifted from skip 20", mean)
	}
	for g := range gaps {
		if g < 9 || g > 32 {
			t.Fatalf("gap %d outside the jitter envelope", g)
		}
	}
}

func TestWeightedClassification(t *testing.T) {
	var s Stats
	s.Count(Read)
	s.Count(Insert)
	s.Count(Insert)
	if s.WeightedFreq(1, 1) != 3 || s.WeightedFreq(10, 1) != 12 || s.WeightedFreq(1, 10) != 21 {
		t.Fatalf("weighted freq wrong: %d %d %d", s.WeightedFreq(1, 1), s.WeightedFreq(10, 1), s.WeightedFreq(1, 10))
	}
	// A write-weighted manager must prefer the write-heavy unit when the
	// budget allows only one expansion.
	ix := newMockIndex(4)
	cfg := ix.config(SingleThreaded, 1)
	cfg.DisableBloom = true
	cfg.MaxSampleSize = 64
	cfg.MemoryBudget = 170 // k = (170-40)/90 = 1: exactly one expansion
	cfg.WriteWeight = 100
	m := New(cfg)
	smp := m.NewSampler()
	for i := 0; i < 32; i++ {
		smp.Track(0, Read, struct{}{}) // read-heavy unit
	}
	for i := 0; i < 32; i++ {
		if i%4 == 0 {
			smp.Track(1, Insert, struct{}{}) // write-ish unit, fewer accesses
		} else {
			smp.Track(0, Read, struct{}{})
		}
	}
	if !ix.isExpanded(1) {
		t.Fatal("write-weighted unit not preferred")
	}
	if ix.isExpanded(0) {
		t.Fatal("read unit expanded despite budget for one")
	}
}

func TestCustomEpsilonShrinksSample(t *testing.T) {
	ix := newMockIndex(10_000)
	loose := ix.config(SingleThreaded, 1)
	loose.Epsilon, loose.Delta = 0.2, 0.2
	tight := ix.config(SingleThreaded, 1)
	tight.Epsilon, tight.Delta = 0.02, 0.02
	if New(loose).SampleSize() >= New(tight).SampleSize() {
		t.Fatal("looser bounds must yield smaller samples")
	}
}

func TestSampleOffsetsMatchesIsSample(t *testing.T) {
	// SampleOffsets is the batched form of IsSample: over any chunking of
	// the same access stream, both must pick exactly the same positions.
	mk := func() *Sampler[int, struct{}] {
		ix := newMockIndex(64)
		cfg := ix.config(SingleThreaded, 1)
		cfg.InitialSkip = 7
		cfg.AdaptiveSkip = false
		return New(cfg).NewSampler()
	}
	const total = 1000
	ref := mk()
	var want []int
	for i := 0; i < total; i++ {
		if ref.IsSample() {
			want = append(want, i)
		}
	}
	for _, chunk := range []int{1, 3, 64, 250, total} {
		got := make([]int, 0, len(want))
		s := mk()
		for base := 0; base < total; base += chunk {
			n := chunk
			if rem := total - base; rem < n {
				n = rem
			}
			for _, off := range s.SampleOffsets(n, nil) {
				got = append(got, base+off)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d samples, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: sample %d at %d, want %d", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestSampleOffsetsEdgeCases(t *testing.T) {
	ix := newMockIndex(64)
	cfg := ix.config(SingleThreaded, 1)
	cfg.InitialSkip = 100
	cfg.AdaptiveSkip = false
	s := New(cfg).NewSampler()

	// n = 0 must not consume skip state nor touch dst.
	dst := []int{42}
	if got := s.SampleOffsets(0, dst); len(got) != 1 || got[0] != 42 {
		t.Fatalf("n=0 mutated dst: %v", got)
	}
	// The counter starts at the global skip (100), far larger than the
	// batch (10): the first batches are all empty, and the counter must
	// carry across batch boundaries.
	if got := s.SampleOffsets(1, nil); len(got) != 0 {
		t.Fatalf("access during initial skip sampled: %v", got)
	}
	for b := 0; b < 9; b++ {
		if got := s.SampleOffsets(10, nil); len(got) != 0 {
			t.Fatalf("batch %d: unexpected samples %v during skip run", b, got)
		}
	}
	// 91 accesses consumed; the 100-skip expires 9 accesses into the next
	// batch, making its offset 9 the first sample.
	if got := s.SampleOffsets(10, nil); len(got) != 1 || got[0] != 9 {
		t.Fatalf("post-skip sample misplaced: %v", got)
	}
	// A batch spanning several skip windows yields several samples.
	if got := s.SampleOffsets(205, nil); len(got) != 2 || got[0] != 100 || got[1] != 201 {
		t.Fatalf("spanning batch samples = %v, want [100 201]", got)
	}
}

func TestStoreStatsConsistentUnderConcurrentForget(t *testing.T) {
	// Satellite regression: Bytes()/TrackedUnits() used to take two
	// separate passes over the shared store, so a Forget between them
	// produced (units, bytes) pairs no single moment ever exhibited.
	// StoreStats reads both in one pass; this hammers it under -race.
	ix := newMockIndex(4096)
	cfg := ix.config(GS, 4)
	cfg.DisableBloom = true
	m := New(cfg)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s := m.NewSampler()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Track((seed*31+i)%4096, Read, struct{}{})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Forget(i % 4096)
		}
	}()
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			units, bytes := m.StoreStats()
			if units < 0 || bytes < 0 {
				t.Fatalf("negative snapshot: units=%d bytes=%d", units, bytes)
			}
			if m.TrackedUnits() < 0 || m.Bytes() < 0 {
				t.Fatal("negative accessor result")
			}
		}
	}
	close(stop)
	wg.Wait()
}
