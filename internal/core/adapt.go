package core

import (
	"math"
	"sort"
	"time"

	"ahi/internal/obs"
	"ahi/internal/topk"
)

// candidate is one tracked unit copied out of the sample store for
// classification. Entries are copied (not referenced) because in GS mode
// other workers keep mutating the store while the adaptation runs.
type candidate[ID comparable, Ctx any] struct {
	id    ID
	ctx   Ctx
	stats Stats
	hot   bool
}

// adapt runs Phase II (§3.1.4): classify, apply the CSHF and migrations,
// then adapt skip length and sample size, and open the next epoch.
func (m *Manager[ID, Ctx]) adapt(epoch uint32) {
	x := m.cfg.Obs
	var phaseStart time.Time
	if x != nil {
		phaseStart = time.Now()
	}
	// Apply identity changes recorded by asynchronous migrations since the
	// previous phase, so candidates are collected under current keys.
	m.applyRekeys()

	units := m.cfg.Units()
	k := m.budgetK(units)

	// 1. Collect current-epoch candidates and classify in a single pass.
	//    Stale-epoch entries are cold by definition and are still
	//    evaluated (their heuristic may compact or evict them). The
	//    candidate and hot-mark buffers persist across epochs (adapt runs
	//    exclusively); entries are overwritten each phase.
	cands := m.candScratch[:0]
	cls := topk.NewClassifier(k)
	collect := func(id ID, e *entry[Ctx]) bool {
		cands = append(cands, candidate[ID, Ctx]{id: id, ctx: e.ctx, stats: e.stats})
		return true
	}
	if m.shared != nil {
		m.shared.Range(collect)
	} else {
		m.mergeMu.Lock()
		m.local.Range(collect)
		m.mergeMu.Unlock()
	}
	var hotMark []bool
	if cap(m.hotScratch) >= len(cands) {
		hotMark = m.hotScratch[:len(cands)]
		clear(hotMark)
	} else {
		hotMark = make([]bool, len(cands))
	}
	for i := range cands {
		if cands[i].stats.LastEpoch != epoch {
			continue // not sampled this phase: cold without a heap visit
		}
		cls.Offer(topk.Entry{
			Item:     i,
			Priority: cands[i].stats.WeightedFreq(m.cfg.ReadWeight, m.cfg.WriteWeight),
		})
	}
	for _, e := range cls.Hot() {
		hotMark[e.Item] = true
	}
	hotCount := 0
	for i := range cands {
		cands[i].hot = hotMark[i]
		if hotMark[i] {
			hotCount++
		}
	}

	// 2. Evaluate the CSHF for every tracked unit and apply migrations —
	//    inline by default, or handed to the pipeline when AsyncMigrations
	//    is on. The pipeline path never re-encodes here: a full queue
	//    parks the job as a deferred intent (backpressure) and repeat
	//    triggers for a parked unit coalesce into it, so the proposing
	//    goroutine returns after classification no matter how hot the
	//    queue is. Evicting migrations may enqueue too: their tracking
	//    entry is deleted below either way, and a re-key recorded for an
	//    untracked unit is a no-op.
	budget := m.budget(units)
	env := Env{Epoch: epoch}
	migrations, queued, evictions, deduped := 0, 0, 0, 0
	backpressured, coalescedTriggers := 0, 0
	for i := range cands {
		c := &cands[i]
		c.stats.PushClassification(c.hot)
		if budget == math.MaxInt64 {
			env.BudgetRemaining = math.MaxInt64
		} else {
			env.BudgetRemaining = budget - m.cfg.UsedMemory() - m.charged()
		}
		env.Hot = c.hot
		act := m.cfg.Heuristic(c.id, &c.ctx, &c.stats, env)
		newID := c.id
		if act.Migrate {
			// Trace classification: hot units migrate because the top-k
			// pass classified them; cold units under a blown budget
			// compact under budget pressure; everything else is the
			// CSHF's own (history-driven) decision.
			trig := obs.TriggerCSHF
			if env.Hot {
				trig = obs.TriggerTopK
			} else if env.BudgetRemaining < 0 {
				trig = obs.TriggerBudget
			}
			from := int16(-1)
			if x != nil && m.cfg.EncodingOf != nil {
				if e, known := m.cfg.EncodingOf(c.id); known {
					from = int16(e)
				}
			}
			if m.pipe != nil {
				job := migrationJob[ID, Ctx]{id: c.id, ctx: c.ctx, target: act.Target,
					epoch: epoch, from: from, trig: trig}
				if x != nil {
					job.enqueuedAt = time.Now().UnixNano()
				}
				switch m.pipe.enqueue(job) {
				case enqOK:
					queued++
				case enqDup:
					// The identical job is already queued or executing;
					// running it again would re-encode the unit twice.
					// Count the absorbed churn and move on.
					deduped++
				case enqDeferred:
					// Queue full: the intent is parked and will execute
					// when a slot frees up. The serve path proceeds on the
					// old encoding — backpressure, never a synchronous
					// re-encode.
					backpressured++
				case enqCoalesced:
					// Queue full and the unit already holds a parked
					// intent: this trigger folded into it.
					backpressured++
					coalescedTriggers++
				case enqClosed:
					// Shutting down: drop the trigger; the unit keeps its
					// current encoding.
				}
			} else {
				var t0 time.Time
				if x != nil {
					t0 = time.Now()
				}
				id2, ok := m.cfg.Migrate(c.id, c.ctx, act.Target)
				if x != nil {
					x.RecordMigration(epoch, m.cfg.Hash(c.id), from, uint8(act.Target),
						trig, false, ok, 0, time.Since(t0).Nanoseconds())
				}
				if ok {
					newID = id2
					migrations++
				}
			}
		}
		m.storeBack(c.id, newID, c, act.Evict)
		if act.Evict {
			evictions++
		}
	}
	m.totalMigrations.Add(int64(migrations))
	m.backpressured.Add(int64(backpressured))
	m.coalesced.Add(int64(coalescedTriggers))
	m.dedupedEnqueues.Add(int64(deduped))
	m.totalAdapts.Add(1)
	uniqueSamples := len(cands)
	m.candScratch = cands[:0]
	m.hotScratch = hotMark[:0]

	// 3. Adapt sampling parameters (§3.1.4): migration churn over the
	//    sampled accesses steers the skip length within [MinSkip, MaxSkip].
	sampled := m.sampled.Load()
	if m.cfg.AdaptiveSkip && sampled > 0 {
		skip := m.globalSkip.Load()
		if backpressured > 0 {
			// The pipeline queue is hot: decay trigger sensitivity so the
			// next phase samples (and proposes) less while the backlog
			// clears, instead of parking ever more intents.
			skip *= 2
		} else {
			// Queued migrations count as churn: the decision was made this
			// phase even if the re-encoding executes asynchronously.
			share := float64(migrations+queued) / float64(sampled)
			switch {
			case share > 0.30:
				skip /= 2
			case share < 0.10:
				skip *= 2
			}
		}
		if skip < int64(m.cfg.MinSkip) {
			skip = int64(m.cfg.MinSkip)
		}
		if skip > int64(m.cfg.MaxSkip) {
			skip = int64(m.cfg.MaxSkip)
		}
		m.globalSkip.Store(skip)
	}
	newSize := m.clampSampleSize(topk.SampleSize(int(units.Total()), k, m.cfg.Epsilon, m.cfg.Delta))
	m.sampleSize.Store(int64(newSize))

	// 4. Open the next phase: bump the epoch, reset counters, signal the
	//    samplers to reset their Bloom filters.
	m.sampled.Store(0)
	m.epoch.Add(1)
	m.filterEpoch.Add(1)

	if x != nil {
		adaptNs := time.Since(phaseStart).Nanoseconds()
		x.Adapts.Inc()
		x.AdaptNs.Observe(adaptNs)
		x.Backpressure.Add(int64(backpressured))
		x.Coalesced.Add(int64(coalescedTriggers))
		x.Deduped.Add(int64(deduped))
		x.Evictions.Add(int64(evictions))
		tracked, fwBytes := m.StoreStats()
		snap := obs.Snapshot{
			Epoch:          epoch,
			Skip:           int(m.globalSkip.Load()),
			SampleSize:     newSize,
			SampledTotal:   sampled,
			UniqueSamples:  uniqueSamples,
			Hot:            hotCount,
			K:              k,
			Migrations:     migrations + queued,
			Queued:         queued,
			Backpressured:  backpressured,
			Coalesced:      coalescedTriggers,
			Deduped:        deduped,
			Evicted:        evictions,
			PipeDepth:      m.QueuedMigrations(),
			TrackedUnits:   tracked,
			FrameworkBytes: fwBytes,
			UsedBytes:      m.cfg.UsedMemory(),
			ChargedBytes:   m.charged(),
			AdaptNs:        adaptNs,
		}
		if m.cfg.ReclaimStats != nil {
			snap.RetireDepth, snap.EpochLag = m.cfg.ReclaimStats()
			x.RetireDepth.Set(snap.RetireDepth)
			x.EpochLag.Set(snap.EpochLag)
		}
		if budget != math.MaxInt64 {
			snap.BudgetBytes = budget
		}
		if m.cfg.Distribution != nil {
			snap.Encodings = m.cfg.Distribution()
		}
		x.RecordSnapshot(snap)
	}

	if m.cfg.OnAdapt != nil {
		m.cfg.OnAdapt(AdaptInfo{
			Epoch:         epoch,
			UniqueSamples: uniqueSamples,
			SampledTotal:  sampled,
			Hot:           hotCount,
			Migrations:    migrations,
			Queued:        queued,
			Backpressured: backpressured,
			Coalesced:     coalescedTriggers,
			Deduped:       deduped,
			PipeDepth:     m.QueuedMigrations(),
			Backlog:       m.MigrationBacklog(),
			LastDrainNs:   m.lastDrainNs.Load(),
			Evicted:       evictions,
			NewSkip:       int(m.globalSkip.Load()),
			NewSampleSize: newSize,
			K:             k,
		})
	}
}

// storeBack writes the updated stats (history, possibly new identity) back
// into the sample store, or removes the entry on eviction. An entry that
// is no longer present was removed by a migration callback (e.g. the
// Hybrid Trie forgetting the descendants of a compacted subtree) and must
// stay gone — resurrecting it would let a stale identifier act on a
// recycled node in a later phase.
func (m *Manager[ID, Ctx]) storeBack(oldID, newID ID, c *candidate[ID, Ctx], evict bool) {
	update := func(e *entry[Ctx], created bool) {
		// Concurrent samplers may have advanced the counters; only the
		// classification history and identity are authoritative here.
		e.stats.History = c.stats.History
		e.stats.HistoryLen = c.stats.HistoryLen
		if created {
			e.stats.Reads = c.stats.Reads
			e.stats.Writes = c.stats.Writes
			e.stats.LastEpoch = c.stats.LastEpoch
			e.ctx = c.ctx
		}
	}
	if m.shared != nil {
		present := m.shared.Delete(oldID)
		if evict || !present {
			return
		}
		m.shared.Upsert(newID, update)
		return
	}
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	present := m.local.Delete(oldID)
	if evict || !present {
		return
	}
	m.local.Upsert(newID, update)
}

// IDFreq pairs an identifier with an observed (historic or predicted)
// access frequency for offline training.
type IDFreq[ID comparable, Ctx any] struct {
	ID   ID
	Ctx  Ctx
	Freq uint64
}

// TrainOffline implements §3.2: given per-unit frequencies from a historic
// or predicted workload, rank units by frequency and migrate the most
// promising ones — as proposed by each unit's CSHF evaluation with
// Hot=true — until the memory budget is exhausted or all units are
// optimized. It returns the number of performed migrations.
func (m *Manager[ID, Ctx]) TrainOffline(freqs []IDFreq[ID, Ctx]) int {
	sort.Slice(freqs, func(i, j int) bool { return freqs[i].Freq > freqs[j].Freq })
	units := m.cfg.Units()
	budget := m.budget(units)
	migrations := 0
	for i := range freqs {
		if budget != math.MaxInt64 && m.cfg.UsedMemory()+m.charged() >= budget {
			break
		}
		st := Stats{Reads: uint32(freqs[i].Freq), LastEpoch: m.epoch.Load()}
		st.PushClassification(true)
		env := Env{Epoch: m.epoch.Load(), Hot: true}
		if budget == math.MaxInt64 {
			env.BudgetRemaining = math.MaxInt64
		} else {
			env.BudgetRemaining = budget - m.cfg.UsedMemory() - m.charged()
		}
		act := m.cfg.Heuristic(freqs[i].ID, &freqs[i].Ctx, &st, env)
		if !act.Migrate {
			continue
		}
		x := m.cfg.Obs
		var t0 time.Time
		if x != nil {
			t0 = time.Now()
		}
		_, ok := m.cfg.Migrate(freqs[i].ID, freqs[i].Ctx, act.Target)
		if x != nil {
			x.RecordMigration(m.epoch.Load(), m.cfg.Hash(freqs[i].ID), -1,
				uint8(act.Target), obs.TriggerOffline, false, ok, 0, time.Since(t0).Nanoseconds())
		}
		if ok {
			migrations++
		}
	}
	m.totalMigrations.Add(int64(migrations))
	return migrations
}
