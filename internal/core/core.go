// Package core implements the paper's primary contribution (§3): a
// workload-adaptation framework that hybrid indexes embed to pick node
// encodings at run-time. The controlling instance — the adaptation
// manager — samples a subset of index accesses (Phase I), aggregates them
// per tracked unit in a hash map guarded by a Bloom filter, classifies the
// top-k frequent units as hot with a single-pass bounded heap (Phase II),
// consults an index-supplied context-sensitive heuristic function (CSHF)
// for target encodings, and invokes the index's migration callback. Skip
// length and sample size adapt between phases; an optional absolute or
// relative memory budget bounds expansions.
//
// The manager is generic over the tracked unit's identifier type ID (node
// pointers for the B+-tree, tagged handles for the Hybrid Trie) and a
// context type Ctx carried alongside each identifier (e.g. the parent
// node), mirroring the C++ template interface of the paper's Listing 1.
package core

// AccessType labels one tracked index access (Listing 1's enum).
type AccessType uint8

// Access types. Reads and Scans count into the read counter, Inserts,
// Updates and Deletes into the write counter.
const (
	Read AccessType = iota
	Scan
	Insert
	Update
	Delete
)

// String returns the access-type name.
func (a AccessType) String() string {
	switch a {
	case Read:
		return "read"
	case Scan:
		return "scan"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return "unknown"
	}
}

// Encoding identifies one node encoding. The numeric values are defined by
// the embedding index (the framework never interprets them); by convention
// 0 is the index's most compact encoding.
type Encoding uint8

// Stats are the aggregated sample counters kept per tracked unit
// (Listing 1's AccessStats): read/write counts within the current epoch,
// the epoch of last access, and a bitset of the most recent hot/cold
// classifications (paper: "we use one additional byte to keep the last
// eight classifications").
type Stats struct {
	Reads     uint32
	Writes    uint32
	LastEpoch uint32
	// History bit i is the classification from i phases ago (bit 0 =
	// most recent); HistoryLen counts how many classifications happened.
	History    uint8
	HistoryLen uint8
}

// Freq returns the default classification priority, the sum of read and
// write counters. WeightedFreq applies custom weights (§3.1.4: "we could
// also assign custom weights to the different access counters").
func (s *Stats) Freq() uint64 { return uint64(s.Reads) + uint64(s.Writes) }

// WeightedFreq returns readWeight·reads + writeWeight·writes.
func (s *Stats) WeightedFreq(readWeight, writeWeight uint32) uint64 {
	return uint64(s.Reads)*uint64(readWeight) + uint64(s.Writes)*uint64(writeWeight)
}

// PushClassification records a hot/cold label into the history bitset.
func (s *Stats) PushClassification(hot bool) {
	s.History <<= 1
	if hot {
		s.History |= 1
	}
	if s.HistoryLen < 8 {
		s.HistoryLen++
	}
}

// HotStreak returns how many consecutive most-recent classifications were
// hot — the quantity Figure 7's example heuristic branches on.
func (s *Stats) HotStreak() int {
	n := 0
	for i := 0; i < int(s.HistoryLen); i++ {
		if s.History&(1<<uint(i)) == 0 {
			break
		}
		n++
	}
	return n
}

// HotCount returns how many of the remembered classifications were hot.
func (s *Stats) HotCount() int {
	n := 0
	for i := 0; i < int(s.HistoryLen); i++ {
		if s.History&(1<<uint(i)) != 0 {
			n++
		}
	}
	return n
}

// Count adds one access of the given type.
func (s *Stats) Count(a AccessType) {
	if a <= Scan {
		s.Reads++
	} else {
		s.Writes++
	}
}

// Action is the CSHF's verdict for one tracked unit.
type Action struct {
	// Target is the encoding the unit should migrate to; meaningful only
	// when Migrate is true.
	Target Encoding
	// Migrate requests an encoding migration via the index callback.
	Migrate bool
	// Evict stops tracking the unit (paper: "the CSHF can decide to stop
	// tracking of specific nodes, e.g. if they are cold or were not
	// sampled for a longer time").
	Evict bool
}

// Env is the environment the CSHF sees in addition to per-unit statistics.
type Env struct {
	// Epoch is the current sampling epoch.
	Epoch uint32
	// BudgetRemaining is MemoryBudget − UsedMemory; positive values allow
	// expansions. It is math.MaxInt64 when no budget is configured.
	BudgetRemaining int64
	// Hot is the current classification of the unit under evaluation.
	Hot bool
}

// UnitCounts describes the tracked units of the index for Equation (1)
// and the budget-derived k: how many units are in a compressed vs. an
// expanded encoding and their average sizes in bytes.
type UnitCounts struct {
	Compressed      int64
	Uncompressed    int64
	CompressedAvg   int64
	UncompressedAvg int64
}

// Total returns the total number of tracked units.
func (u UnitCounts) Total() int64 { return u.Compressed + u.Uncompressed }

// ConcurrencyMode selects the sample store strategy of §3.1.5.
type ConcurrencyMode uint8

const (
	// SingleThreaded keeps all state in one hopscotch map with no
	// synchronization; IsSample/Track must be called from one goroutine.
	SingleThreaded ConcurrencyMode = iota
	// GS (global sampling) shares one concurrent cuckoo map between all
	// worker threads.
	GS
	// TLS (thread-local sampling) gives every worker a private hopscotch
	// map; maps merge into a shared store when the worker's share of the
	// sample size fills up, and the merging worker that completes the
	// sample runs the adaptation while the others continue sampling.
	TLS
)

// AdaptInfo summarizes one completed adaptation phase for observers.
type AdaptInfo struct {
	Epoch         uint32
	UniqueSamples int
	SampledTotal  int64
	Hot           int
	// Migrations counts re-encodings performed inline during the phase;
	// Queued counts those handed to the asynchronous pipeline instead.
	Migrations int
	Queued     int
	// InlineFallbacks counts migrations this phase that were meant for the
	// asynchronous pipeline but ran inline on the proposing path. Always 0
	// since the backpressure rework (queue-full triggers park as deferred
	// intents instead); kept so recorded benchmarks can assert the
	// fallback path stays dead.
	InlineFallbacks int
	// Backpressured counts proposed migrations this phase that found the
	// pipeline queue full and were parked as deferred intents — the
	// pipeline's backpressure signal. Not included in Migrations or
	// Queued; the parked intents execute asynchronously once slots free
	// up. Always 0 without AsyncMigrations.
	Backpressured int
	// Coalesced counts the subset of Backpressured triggers that folded
	// into an intent already parked for the same unit.
	Coalesced int
	// Deduped counts proposed migrations this phase that were dropped
	// because an identical job (same unit, same target encoding) was
	// already queued or executing — re-classification churn the pipeline
	// absorbed. Not included in Migrations or Queued; always 0 without
	// AsyncMigrations.
	Deduped int
	// PipeDepth is the number of migrations still waiting in the pipeline
	// queue when the phase completed (0 without AsyncMigrations); Backlog
	// additionally includes parked (deferred) intents.
	PipeDepth int
	Backlog   int
	// LastDrainNs is the duration of the most recent DrainMigrations call
	// in nanoseconds (0 if never drained or without AsyncMigrations).
	LastDrainNs   int64
	Evicted       int
	NewSkip       int
	NewSampleSize int
	K             int
}
