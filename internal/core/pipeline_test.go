package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ahi/internal/hashmap"
)

// asyncConfig returns a mockIndex config with the migration pipeline on.
func asyncConfig(ix *mockIndex, mode ConcurrencyMode, workers int) Config[int, struct{}] {
	cfg := ix.config(mode, workers)
	cfg.AsyncMigrations = true
	return cfg
}

func TestAsyncMigrationsRunOffAdaptPath(t *testing.T) {
	const n = 1000
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MemoryBudget = 10*int64(n) + 100*100
	var mu sync.Mutex
	var adapts []AdaptInfo
	cfg.OnAdapt = func(ai AdaptInfo) {
		mu.Lock()
		adapts = append(adapts, ai)
		mu.Unlock()
	}
	m := New(cfg)
	defer m.Close()
	driveSkewed(m, n, 2_000_000, 1)
	m.DrainMigrations()
	mu.Lock()
	queued, inline := 0, 0
	for _, ai := range adapts {
		queued += ai.Queued
		inline += ai.Migrations
	}
	mu.Unlock()
	if queued == 0 {
		t.Fatal("no migrations were queued; pipeline unused")
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations executed")
	}
	if !ix.isExpanded(0) || !ix.isExpanded(1) {
		t.Fatal("hottest units were not expanded via the pipeline")
	}
	// Inline + queued must account for every successful migration (the
	// mock never reports ok on a no-op re-encode, so counts line up only
	// approximately: queued jobs may find the unit already at the target).
	if int64(inline+queued) < m.Migrations() {
		t.Fatalf("migrations=%d exceed inline=%d + queued=%d", m.Migrations(), inline, queued)
	}
}

func TestAsyncRekeyAppliedOnNextAdapt(t *testing.T) {
	// A Migrate that changes the unit's identity (id -> id+1000, once)
	// must see its tracking entry moved to the new key by the next adapt.
	var migrated atomic.Int32
	cfg := Config[int, struct{}]{
		Hash: func(id int) uint64 { return hashmap.HashU64(uint64(id)) },
		Units: func() UnitCounts {
			return UnitCounts{Compressed: 10, CompressedAvg: 10, UncompressedAvg: 100}
		},
		UsedMemory: func() int64 { return 100 },
		Heuristic: func(int, *struct{}, *Stats, Env) Action {
			return Action{Target: 1, Migrate: true}
		},
		Migrate: func(id int, _ struct{}, _ Encoding) (int, bool) {
			if id >= 1000 {
				return id, false // already re-keyed: no-op
			}
			migrated.Add(1)
			return id + 1000, true
		},
		DisableBloom:     true,
		AsyncMigrations:  true,
		MigrationWorkers: 1,
	}
	m := New(cfg)
	defer m.Close()
	s := m.NewSampler()
	s.Track(5, Read, struct{}{})
	s.Track(5, Read, struct{}{})

	m.adapt(m.epoch.Load())
	m.DrainMigrations()
	if migrated.Load() != 1 {
		t.Fatalf("migrated=%d want 1", migrated.Load())
	}
	// The entry still lives under the old key until a phase applies the
	// re-key list.
	m.mergeMu.Lock()
	oldThere := m.local.Ref(5) != nil
	m.mergeMu.Unlock()
	if !oldThere {
		t.Fatal("entry vanished before re-key was applied")
	}

	m.adapt(m.epoch.Load())
	m.DrainMigrations()
	m.mergeMu.Lock()
	oldThere = m.local.Ref(5) != nil
	newThere := m.local.Ref(1005) != nil
	m.mergeMu.Unlock()
	if oldThere {
		t.Fatal("stale key survived applyRekeys")
	}
	if !newThere {
		t.Fatal("entry not re-keyed to the post-migration identity")
	}
	if m.TrackedUnits() != 1 {
		t.Fatalf("tracked=%d want 1", m.TrackedUnits())
	}
}

func TestAsyncQueueFullRejectsEnqueue(t *testing.T) {
	block := make(chan struct{})
	var calls atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 1
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		<-block
		return id, true
	}
	m := New(cfg)
	p := m.pipe

	if !p.enqueue(migrationJob[int, struct{}]{id: 1, target: 1}) {
		t.Fatal("first enqueue must succeed")
	}
	// Wait until the worker picked the job up and is blocked inside
	// Migrate, so the queue slot is free again.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !p.enqueue(migrationJob[int, struct{}]{id: 2, target: 1}) {
		t.Fatal("second enqueue must fill the depth-1 queue")
	}
	if p.enqueue(migrationJob[int, struct{}]{id: 3, target: 1}) {
		t.Fatal("third enqueue must report a full queue (inline fallback)")
	}
	if q := m.QueuedMigrations(); q != 1 {
		t.Fatalf("QueuedMigrations=%d want 1", q)
	}
	close(block)
	m.DrainMigrations()
	if calls.Load() != 2 {
		t.Fatalf("calls=%d want 2", calls.Load())
	}
	m.Close()
	if p.enqueue(migrationJob[int, struct{}]{id: 4, target: 1}) {
		t.Fatal("enqueue after Close must fail")
	}
}

func TestAsyncTinyQueueFallsBackInline(t *testing.T) {
	// With a depth-1 queue and a deliberately slow worker, most phase-II
	// migrations must run inline — the pipeline degrades, never drops work.
	const n = 600
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MemoryBudget = 10*int64(n) + 60*100
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 1
	cfg.Migrate = func(id int, c struct{}, t Encoding) (int, bool) {
		time.Sleep(100 * time.Microsecond)
		return ix.migrate(id, c, t)
	}
	inline := 0
	cfg.OnAdapt = func(ai AdaptInfo) { inline += ai.Migrations }
	m := New(cfg)
	driveSkewed(m, n, 1_500_000, 5)
	m.Close()
	if inline == 0 {
		t.Fatal("full queue never fell back to inline migration")
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded despite fallback")
	}
}

func TestAsyncCloseFlushesQueue(t *testing.T) {
	var calls atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 64
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		return id, true
	}
	m := New(cfg)
	enq := 0
	for i := 0; i < 20; i++ {
		if m.pipe.enqueue(migrationJob[int, struct{}]{id: i, target: 1}) {
			enq++
		}
	}
	m.Close() // flush semantics: every accepted job executes
	if int(calls.Load()) != enq {
		t.Fatalf("executed %d of %d accepted jobs", calls.Load(), enq)
	}
	m.Close() // idempotent
}

func TestGSAsyncConcurrentAdaptation(t *testing.T) {
	const n = 2000
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, GS, 4)
	cfg.MemoryBudget = int64(n)*10 + 50*100
	m := New(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			driveSkewed(m, n, 500_000, int64(w+1))
		}(w)
	}
	wg.Wait()
	m.DrainMigrations()
	m.Close()
	if m.Adaptations() == 0 {
		t.Fatal("no adaptations under GS with async migrations")
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations under GS with async migrations")
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded under GS with async migrations")
	}
}
