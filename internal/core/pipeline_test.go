package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ahi/internal/hashmap"
)

// asyncConfig returns a mockIndex config with the migration pipeline on.
func asyncConfig(ix *mockIndex, mode ConcurrencyMode, workers int) Config[int, struct{}] {
	cfg := ix.config(mode, workers)
	cfg.AsyncMigrations = true
	return cfg
}

func TestAsyncMigrationsRunOffAdaptPath(t *testing.T) {
	const n = 1000
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MemoryBudget = 10*int64(n) + 100*100
	var mu sync.Mutex
	var adapts []AdaptInfo
	cfg.OnAdapt = func(ai AdaptInfo) {
		mu.Lock()
		adapts = append(adapts, ai)
		mu.Unlock()
	}
	m := New(cfg)
	defer m.Close()
	driveSkewed(m, n, 2_000_000, 1)
	m.DrainMigrations()
	mu.Lock()
	queued, inline := 0, 0
	for _, ai := range adapts {
		queued += ai.Queued
		inline += ai.Migrations
	}
	mu.Unlock()
	if queued == 0 {
		t.Fatal("no migrations were queued; pipeline unused")
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations executed")
	}
	if !ix.isExpanded(0) || !ix.isExpanded(1) {
		t.Fatal("hottest units were not expanded via the pipeline")
	}
	// Inline + queued must account for every successful migration (the
	// mock never reports ok on a no-op re-encode, so counts line up only
	// approximately: queued jobs may find the unit already at the target).
	if int64(inline+queued) < m.Migrations() {
		t.Fatalf("migrations=%d exceed inline=%d + queued=%d", m.Migrations(), inline, queued)
	}
}

func TestAsyncRekeyAppliedOnNextAdapt(t *testing.T) {
	// A Migrate that changes the unit's identity (id -> id+1000, once)
	// must see its tracking entry moved to the new key by the next adapt.
	var migrated atomic.Int32
	cfg := Config[int, struct{}]{
		Hash: func(id int) uint64 { return hashmap.HashU64(uint64(id)) },
		Units: func() UnitCounts {
			return UnitCounts{Compressed: 10, CompressedAvg: 10, UncompressedAvg: 100}
		},
		UsedMemory: func() int64 { return 100 },
		Heuristic: func(int, *struct{}, *Stats, Env) Action {
			return Action{Target: 1, Migrate: true}
		},
		Migrate: func(id int, _ struct{}, _ Encoding) (int, bool) {
			if id >= 1000 {
				return id, false // already re-keyed: no-op
			}
			migrated.Add(1)
			return id + 1000, true
		},
		DisableBloom:     true,
		AsyncMigrations:  true,
		MigrationWorkers: 1,
	}
	m := New(cfg)
	defer m.Close()
	s := m.NewSampler()
	s.Track(5, Read, struct{}{})
	s.Track(5, Read, struct{}{})

	m.adapt(m.epoch.Load())
	m.DrainMigrations()
	if migrated.Load() != 1 {
		t.Fatalf("migrated=%d want 1", migrated.Load())
	}
	// The entry still lives under the old key until a phase applies the
	// re-key list.
	m.mergeMu.Lock()
	oldThere := m.local.Ref(5) != nil
	m.mergeMu.Unlock()
	if !oldThere {
		t.Fatal("entry vanished before re-key was applied")
	}

	m.adapt(m.epoch.Load())
	m.DrainMigrations()
	m.mergeMu.Lock()
	oldThere = m.local.Ref(5) != nil
	newThere := m.local.Ref(1005) != nil
	m.mergeMu.Unlock()
	if oldThere {
		t.Fatal("stale key survived applyRekeys")
	}
	if !newThere {
		t.Fatal("entry not re-keyed to the post-migration identity")
	}
	if m.TrackedUnits() != 1 {
		t.Fatalf("tracked=%d want 1", m.TrackedUnits())
	}
}

func TestAsyncQueueFullDefersEnqueue(t *testing.T) {
	block := make(chan struct{})
	var calls atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 1
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		<-block
		return id, true
	}
	m := New(cfg)
	p := m.pipe

	if p.enqueue(migrationJob[int, struct{}]{id: 1, target: 1}) != enqOK {
		t.Fatal("first enqueue must succeed")
	}
	// Wait until the worker picked the job up and is blocked inside
	// Migrate, so the queue slot is free again.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if p.enqueue(migrationJob[int, struct{}]{id: 2, target: 1}) != enqOK {
		t.Fatal("second enqueue must fill the depth-1 queue")
	}
	// Queue full: the trigger parks as a deferred intent, never rejected.
	if p.enqueue(migrationJob[int, struct{}]{id: 3, target: 1}) != enqDeferred {
		t.Fatal("third enqueue must defer under backpressure")
	}
	// A repeat trigger for the parked unit coalesces (latest target wins).
	if p.enqueue(migrationJob[int, struct{}]{id: 3, target: 2}) != enqCoalesced {
		t.Fatal("repeat trigger for a parked unit must coalesce")
	}
	if q := m.QueuedMigrations(); q != 1 {
		t.Fatalf("QueuedMigrations=%d want 1", q)
	}
	if b := m.MigrationBacklog(); b != 2 {
		t.Fatalf("MigrationBacklog=%d want 2 (1 queued + 1 deferred)", b)
	}
	close(block)
	m.DrainMigrations()
	// The deferred intent executes exactly once despite two triggers.
	if calls.Load() != 3 {
		t.Fatalf("calls=%d want 3", calls.Load())
	}
	m.Close()
	if p.enqueue(migrationJob[int, struct{}]{id: 4, target: 1}) != enqClosed {
		t.Fatal("enqueue after Close must fail")
	}
}

func TestAsyncTinyQueueBackpressure(t *testing.T) {
	// With a depth-1 queue and a deliberately slow worker, phase-II
	// migrations park as deferred intents: the serve path NEVER migrates
	// inline, and no accepted trigger is dropped — Close flushes the rest.
	const n = 600
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MemoryBudget = 10*int64(n) + 60*100
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 1
	cfg.Migrate = func(id int, c struct{}, t Encoding) (int, bool) {
		time.Sleep(100 * time.Microsecond)
		return ix.migrate(id, c, t)
	}
	inline, backpressured := 0, 0
	cfg.OnAdapt = func(ai AdaptInfo) {
		inline += ai.Migrations
		backpressured += ai.Backpressured
	}
	m := New(cfg)
	driveSkewed(m, n, 1_500_000, 5)
	m.Close()
	if inline != 0 {
		t.Fatalf("inline migrations = %d, want 0 (backpressure replaces fallback)", inline)
	}
	if backpressured == 0 {
		t.Fatal("a wedged depth-1 queue must surface backpressure")
	}
	if m.Backpressured() != int64(backpressured) {
		t.Fatalf("cumulative backpressured %d != summed phase counts %d",
			m.Backpressured(), backpressured)
	}
	if m.InlineFallbacks() != 0 {
		t.Fatalf("InlineFallbacks = %d, want 0 always", m.InlineFallbacks())
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded despite backpressure")
	}
}

func TestAsyncCloseFlushesQueue(t *testing.T) {
	var calls atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 64
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		return id, true
	}
	m := New(cfg)
	enq := 0
	for i := 0; i < 20; i++ {
		if m.pipe.enqueue(migrationJob[int, struct{}]{id: i, target: 1}) == enqOK {
			enq++
		}
	}
	m.Close() // flush semantics: every accepted job executes
	if int(calls.Load()) != enq {
		t.Fatalf("executed %d of %d accepted jobs", calls.Load(), enq)
	}
	m.Close() // idempotent
}

func TestGSAsyncConcurrentAdaptation(t *testing.T) {
	const n = 2000
	ix := newMockIndex(n)
	cfg := asyncConfig(ix, GS, 4)
	cfg.MemoryBudget = int64(n)*10 + 50*100
	m := New(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			driveSkewed(m, n, 500_000, int64(w+1))
		}(w)
	}
	wg.Wait()
	m.DrainMigrations()
	m.Close()
	if m.Adaptations() == 0 {
		t.Fatal("no adaptations under GS with async migrations")
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations under GS with async migrations")
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded under GS with async migrations")
	}
}

// TestPipelineEnqueueCloseDrainRace hammers enqueue from several
// goroutines while others call DrainMigrations and one closes the
// pipeline mid-stream. Run under -race. The lossless contract is the
// invariant: every accepted job executes exactly once, enqueues after
// Close are rejected, and neither drain nor close deadlocks.
func TestPipelineEnqueueCloseDrainRace(t *testing.T) {
	var executed atomic.Int64
	ix := newMockIndex(16)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 4
	cfg.MigrationQueue = 8 // small queue: rejections and accepts interleave
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		executed.Add(1)
		return id, true
	}
	m := New(cfg)
	p := m.pipe

	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 5000; i++ {
				switch p.enqueue(migrationJob[int, struct{}]{id: g*5000 + i, target: 1}) {
				case enqOK, enqDeferred:
					accepted.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				m.DrainMigrations()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(2 * time.Millisecond)
		m.Close()
	}()
	close(start)
	wg.Wait()
	m.Close() // idempotent; all workers stopped

	if got, want := executed.Load(), accepted.Load(); got != want {
		t.Fatalf("executed %d of %d accepted jobs (lossless contract broken)", got, want)
	}
	if got := p.enqueue(migrationJob[int, struct{}]{id: 1, target: 1}); got != enqClosed {
		t.Fatalf("enqueue after Close = %d, want enqClosed", got)
	}
	if got, want := executed.Load(), accepted.Load(); got != want {
		t.Fatalf("post-close enqueue changed execution count: %d vs %d", got, want)
	}
}

// TestAdaptInfoSurfacesPipelinePressure pins the new observability fields:
// a wedged queue shows up as Backpressured/Coalesced (per phase and
// cumulatively, never as inline fallbacks), the backlog includes parked
// intents, and DrainMigrations records its latency.
func TestAdaptInfoSurfacesPipelinePressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	ix := newMockIndex(64)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 1
	cfg.DisableBloom = true
	cfg.Migrate = func(id int, c struct{}, tgt Encoding) (int, bool) {
		if id >= 1000 {
			// Sentinel wedge jobs: block the worker so the queue stays
			// full while the phases below run.
			started <- struct{}{}
			<-block
			return id, true
		}
		return ix.migrate(id, c, tgt)
	}
	var last AdaptInfo
	cfg.OnAdapt = func(ai AdaptInfo) { last = ai }
	m := New(cfg)
	// Wedge the worker and fill the depth-1 queue.
	if m.pipe.enqueue(migrationJob[int, struct{}]{id: 1000, target: 1}) != enqOK {
		t.Fatal("wedge enqueue failed")
	}
	<-started // worker is inside Migrate; the queue slot is free again
	if m.pipe.enqueue(migrationJob[int, struct{}]{id: 1001, target: 1}) != enqOK {
		t.Fatal("fill enqueue failed")
	}
	s := m.NewSampler()
	// Track distinct hot units so the phase proposes several expansions;
	// with the queue wedged full, every one must park as backpressure.
	for i := 0; i < 8; i++ {
		s.Track(i, Read, struct{}{})
		s.Track(i, Read, struct{}{})
	}
	skipBefore := m.SkipLength()
	m.adapt(m.epoch.Load())
	if last.Backpressured == 0 {
		t.Fatal("wedged depth-1 queue must surface backpressure in AdaptInfo")
	}
	if last.InlineFallbacks != 0 {
		t.Fatalf("InlineFallbacks = %d, want 0 (serve path never migrates)", last.InlineFallbacks)
	}
	if last.Migrations != 0 {
		t.Fatalf("inline Migrations = %d, want 0 under backpressure", last.Migrations)
	}
	if last.PipeDepth == 0 {
		t.Fatal("a full queue must surface a non-zero PipeDepth")
	}
	if last.Backlog <= last.PipeDepth {
		t.Fatalf("Backlog (%d) must include parked intents beyond the queue (%d)",
			last.Backlog, last.PipeDepth)
	}
	if m.Backpressured() != int64(last.Backpressured) {
		t.Fatalf("cumulative backpressured %d != phase count %d",
			m.Backpressured(), last.Backpressured)
	}
	// Backpressure decays trigger sensitivity: the skip length must grow.
	if m.SkipLength() <= skipBefore {
		t.Fatalf("skip length %d did not grow from %d under backpressure",
			m.SkipLength(), skipBefore)
	}
	// A second phase re-proposing the same parked targets coalesces.
	for i := 0; i < 8; i++ {
		s.Track(i, Read, struct{}{})
		s.Track(i, Read, struct{}{})
	}
	m.adapt(m.epoch.Load())
	if last.Coalesced == 0 {
		t.Fatal("repeat triggers for parked units must surface as Coalesced")
	}
	if m.CoalescedTriggers() == 0 {
		t.Fatal("cumulative CoalescedTriggers must grow with phase Coalesced")
	}
	close(block)
	m.DrainMigrations()
	if m.LastDrainNs() <= 0 {
		t.Fatal("DrainMigrations must record its latency")
	}
	m.Close()
	// Lossless: every parked expansion executed by drain/close.
	for i := 0; i < 8; i++ {
		if !ix.isExpanded(i) {
			t.Fatalf("parked expansion of unit %d was dropped", i)
		}
	}
}

// TestSetMemoryBudgetOverride checks that the runtime budget override
// takes precedence over the configured budgets and can be removed.
func TestSetMemoryBudgetOverride(t *testing.T) {
	ix := newMockIndex(10)
	cfg := ix.config(SingleThreaded, 1)
	cfg.MemoryBudget = 1000
	m := New(cfg)
	u := cfg.Units()
	if got := m.budget(u); got != 1000 {
		t.Fatalf("configured budget = %d want 1000", got)
	}
	m.SetMemoryBudget(5000)
	if got := m.budget(u); got != 5000 {
		t.Fatalf("override budget = %d want 5000", got)
	}
	m.SetMemoryBudget(0) // remove override
	if got := m.budget(u); got != 1000 {
		t.Fatalf("budget after override removal = %d want 1000", got)
	}
}

func TestEnqueueDedupStatuses(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	var calls atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 8
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
		return id, true
	}
	m := New(cfg)
	p := m.pipe

	if got := p.enqueue(migrationJob[int, struct{}]{id: 1, target: 1}); got != enqOK {
		t.Fatalf("first enqueue = %d, want enqOK", got)
	}
	<-started // job 1 is executing; its inflight marker must still dedup
	if got := p.enqueue(migrationJob[int, struct{}]{id: 1, target: 1}); got != enqDup {
		t.Fatalf("duplicate of executing job = %d, want enqDup", got)
	}
	if got := p.enqueue(migrationJob[int, struct{}]{id: 2, target: 1}); got != enqOK {
		t.Fatalf("distinct unit = %d, want enqOK", got)
	}
	if got := p.enqueue(migrationJob[int, struct{}]{id: 2, target: 1}); got != enqDup {
		t.Fatalf("duplicate of queued job = %d, want enqDup", got)
	}
	// A retarget (same unit, different encoding) is distinct work.
	if got := p.enqueue(migrationJob[int, struct{}]{id: 2, target: 2}); got != enqOK {
		t.Fatalf("retargeted unit = %d, want enqOK", got)
	}
	close(block)
	m.Close()
	if calls.Load() != 3 {
		t.Fatalf("executed %d jobs, want 3 (dups must not run)", calls.Load())
	}
}

func TestExternalMigrationsRunOnEmbedderGoroutine(t *testing.T) {
	// ExternalMigrations suppresses the internal worker pool: accepted
	// jobs wait until the embedder runs them via RunQueuedMigration (or a
	// drain/close flushes them).
	var calls atomic.Int32
	var wakes atomic.Int32
	ix := newMockIndex(10)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.ExternalMigrations = true
	cfg.OnMigrationQueued = func() { wakes.Add(1) }
	cfg.MigrationQueue = 4
	cfg.Migrate = func(id int, _ struct{}, _ Encoding) (int, bool) {
		calls.Add(1)
		return id, true
	}
	m := New(cfg)
	for i := 0; i < 6; i++ { // 4 queued + 2 deferred
		switch m.pipe.enqueue(migrationJob[int, struct{}]{id: i, target: 1}) {
		case enqOK, enqDeferred:
		default:
			t.Fatalf("enqueue %d not accepted", i)
		}
	}
	if wakes.Load() != 6 {
		t.Fatalf("wake hook fired %d times, want 6", wakes.Load())
	}
	if calls.Load() != 0 {
		t.Fatal("no internal worker may execute in external mode")
	}
	if b := m.MigrationBacklog(); b != 6 {
		t.Fatalf("backlog = %d, want 6", b)
	}
	ran := 0
	for m.RunQueuedMigration() {
		ran++
	}
	if ran != 6 || calls.Load() != 6 {
		t.Fatalf("RunQueuedMigration executed %d (calls %d), want 6", ran, calls.Load())
	}
	// Drain with pending work helps execute on the draining goroutine.
	m.pipe.enqueue(migrationJob[int, struct{}]{id: 7, target: 1})
	m.DrainMigrations()
	if calls.Load() != 7 {
		t.Fatalf("drain did not help-execute: calls = %d, want 7", calls.Load())
	}
	// Close flushes whatever is still parked.
	m.pipe.enqueue(migrationJob[int, struct{}]{id: 8, target: 1})
	m.Close()
	if calls.Load() != 8 {
		t.Fatalf("close did not flush: calls = %d, want 8", calls.Load())
	}
}

func TestAdaptCountsDedupedEnqueues(t *testing.T) {
	// A phase that proposes a migration identical to a job already in the
	// pipeline must skip it and surface the count via AdaptInfo.Deduped
	// and Manager.DedupedEnqueues().
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	ix := newMockIndex(64)
	cfg := asyncConfig(ix, SingleThreaded, 1)
	cfg.MigrationWorkers = 1
	cfg.MigrationQueue = 8
	cfg.DisableBloom = true
	cfg.Migrate = func(id int, c struct{}, tgt Encoding) (int, bool) {
		if id == 0 {
			started <- struct{}{}
			<-block
		}
		return ix.migrate(id, c, tgt)
	}
	var last AdaptInfo
	cfg.OnAdapt = func(ai AdaptInfo) { last = ai }
	m := New(cfg)
	// Pre-queue unit 0's expansion and wait until the worker holds it.
	if m.pipe.enqueue(migrationJob[int, struct{}]{id: 0, target: 1}) != enqOK {
		t.Fatal("pre-queue failed")
	}
	<-started
	s := m.NewSampler()
	for i := 0; i < 4; i++ {
		s.Track(i, Read, struct{}{})
		s.Track(i, Read, struct{}{})
	}
	m.adapt(m.epoch.Load())
	if last.Deduped != 1 {
		t.Fatalf("AdaptInfo.Deduped = %d, want 1", last.Deduped)
	}
	if m.DedupedEnqueues() != 1 {
		t.Fatalf("DedupedEnqueues = %d, want 1", m.DedupedEnqueues())
	}
	if last.Queued != 3 {
		t.Fatalf("Queued = %d, want 3 (units 1..3)", last.Queued)
	}
	if last.InlineFallbacks != 0 {
		t.Fatalf("InlineFallbacks = %d, want 0 (queue had room)", last.InlineFallbacks)
	}
	close(block)
	m.Close()
	if !ix.isExpanded(0) {
		t.Fatal("pre-queued expansion of unit 0 must still execute")
	}
}
