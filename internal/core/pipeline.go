package core

import (
	"sync"
	"sync/atomic"
	"time"

	"ahi/internal/obs"
)

// This file implements the off-critical-path migration pipeline: when
// Config.AsyncMigrations is set, Phase II (adapt) no longer re-encodes
// nodes inline. It pushes migration actions into a bounded queue and
// returns; a pool of worker goroutines (or external executors, see
// ExternalMigrations) drains the queue and runs the index's Migrate
// callback concurrently with foreground traffic.
//
// Three invariants keep this safe:
//
//  1. The sample-store entry is written back (history, identity) inline
//     by adapt() before the job is enqueued, so the store never waits on
//     a worker. When a migration changes the unit's identity (the Hybrid
//     Trie's compactions do; B+-tree leaves are stable), the worker
//     records an (old, new) re-key that the next adapt() applies before
//     collecting candidates — workers never touch the sample stores,
//     which are unsynchronized in SingleThreaded mode.
//
//  2. Adaptation never re-encodes on the proposing path. When the queue
//     is full the job is parked as a deferred intent (at most one per
//     unit — repeat triggers for the same unit coalesce into the parked
//     intent) and promoted into the queue by workers as slots free up.
//     The serve path proceeds on the old encoding; backpressure shows up
//     as counters and as a decayed trigger sensitivity (adapt() raises
//     the skip length while intents are parked), never as a synchronous
//     re-encode. Earlier revisions fell back to migrating inline here,
//     which both re-introduced the trigger latency the pipeline exists
//     to remove and could re-encode a unit twice when a queued job and
//     its inline fallback raced.
//
//  3. The pipeline is lossless: every accepted trigger (enqOK or a
//     deferred intent) eventually executes — workers promote intents,
//     drain() waits for them, and close() flushes both the queue and the
//     parked intents before returning. A proposed migration that exactly
//     matches a job already queued or executing (same unit, same target)
//     is deduplicated instead of accepted.
//
// Requirements on the index: Migrate must be safe to call concurrently
// with foreground reads/writes and with other Migrate calls (the Hybrid
// B+-tree's MigrateLeaf qualifies — it takes the leaf's write lock).
// Indexes whose migrations mutate shared structure without locks (the
// single-threaded Hybrid Trie) must keep AsyncMigrations off.

// migrationJob is one deferred encoding migration. epoch/from/trig and
// enqueuedAt carry observability context to the worker (enqueuedAt is 0
// when no observer is attached — the wait is then not measured).
type migrationJob[ID comparable, Ctx any] struct {
	id         ID
	ctx        Ctx
	target     Encoding
	epoch      uint32
	from       int16 // encoding before migration; -1 unknown
	trig       obs.Trigger
	enqueuedAt int64 // UnixNano at enqueue; 0 without observability
}

// rekeyPair records an identity change performed by a worker.
type rekeyPair[ID comparable] struct{ old, new ID }

// enqueueStatus is the outcome of a pipeline enqueue attempt.
type enqueueStatus uint8

const (
	// enqOK: the job was accepted and will execute asynchronously.
	enqOK enqueueStatus = iota
	// enqDup: an identical job (unit, target) is already queued or
	// executing; the caller should skip the migration entirely.
	enqDup
	// enqDeferred: the queue is at capacity; the job was parked as a
	// deferred intent and will be promoted when a slot frees up. The
	// caller proceeds on the old encoding (backpressure, not fallback).
	enqDeferred
	// enqCoalesced: the queue is at capacity and an intent for the same
	// unit was already parked; this trigger was folded into it.
	enqCoalesced
	// enqClosed: the pipeline is shutting down; the trigger is dropped.
	enqClosed
)

// migrationPipeline is the bounded worker pool behind AsyncMigrations.
type migrationPipeline[ID comparable, Ctx any] struct {
	m     *Manager[ID, Ctx]
	queue chan migrationJob[ID, Ctx]
	// external: no internal workers were started; an embedder-owned
	// executor pool (e.g. the sharded front's stealing migrators) runs
	// jobs via runOne. drain() helps execute in this mode so it cannot
	// deadlock when the external executors are idle or gone.
	external bool

	mu     sync.Mutex // guards queue sends vs. close, rekeys, inflight, deferred, pending
	closed bool
	rekeys []rekeyPair[ID]
	// inflight tracks the target encoding of every queued or executing
	// job per unit, backing enqueue deduplication. A retargeted unit
	// (same id, different target) is accepted and overwrites the marker;
	// the first job's completion then clears it early, so dedup may
	// under-deduplicate across retargets — it never drops distinct work.
	inflight map[ID]Encoding
	// deferred holds at most one parked intent per unit, bounded by the
	// number of tracked units (an intent is a few words; the sample store
	// already holds the unit). Workers promote intents into the queue
	// after each job completes.
	deferred map[ID]migrationJob[ID, Ctx]
	// deferredN mirrors len(deferred) for lock-free reads: the flight
	// recorder samples it on every traced op to tag backpressure stalls,
	// a path where backlog()'s mutex would serialize the read side.
	deferredN atomic.Int32

	wg sync.WaitGroup // running workers
	// pending counts queued, executing, or deferred jobs. A plain counter
	// under mu with a condition variable — not a WaitGroup — because
	// drain() must tolerate racing enqueues: WaitGroup.Add concurrent
	// with Wait while the counter passes zero is documented misuse.
	pending int
	idle    *sync.Cond
}

func newMigrationPipeline[ID comparable, Ctx any](m *Manager[ID, Ctx], workers, depth int) *migrationPipeline[ID, Ctx] {
	p := &migrationPipeline[ID, Ctx]{
		m:        m,
		queue:    make(chan migrationJob[ID, Ctx], depth),
		inflight: make(map[ID]Encoding, depth),
		deferred: make(map[ID]migrationJob[ID, Ctx]),
		external: workers == 0,
	}
	p.idle = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *migrationPipeline[ID, Ctx]) run() {
	defer p.wg.Done()
	for job := range p.queue {
		p.execute(job)
		p.promoteDeferred()
	}
}

// execute runs one job's Migrate callback and retires its bookkeeping.
func (p *migrationPipeline[ID, Ctx]) execute(job migrationJob[ID, Ctx]) {
	x := p.m.cfg.Obs
	var wait int64
	var t0 time.Time
	if x != nil {
		if job.enqueuedAt > 0 {
			wait = time.Now().UnixNano() - job.enqueuedAt
			if wait < 0 {
				wait = 0
			}
		}
		t0 = time.Now()
	}
	newID, ok := p.m.cfg.Migrate(job.id, job.ctx, job.target)
	if x != nil {
		x.RecordMigration(job.epoch, p.m.cfg.Hash(job.id), job.from,
			uint8(job.target), job.trig, true, ok, wait, time.Since(t0).Nanoseconds())
	}
	p.mu.Lock()
	delete(p.inflight, job.id)
	if ok {
		p.m.totalMigrations.Add(1)
		if newID != job.id {
			p.rekeys = append(p.rekeys, rekeyPair[ID]{old: job.id, new: newID})
		}
	}
	p.pending--
	if p.pending == 0 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// enqueue hands a migration to the pool. No status requires the caller
// to re-encode inline: enqDeferred/enqCoalesced report backpressure (the
// intent is parked and will execute later), enqDup and enqClosed mean the
// unit should simply be skipped this phase.
func (p *migrationPipeline[ID, Ctx]) enqueue(job migrationJob[ID, Ctx]) enqueueStatus {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return enqClosed
	}
	if tgt, dup := p.inflight[job.id]; dup && tgt == job.target {
		p.mu.Unlock()
		return enqDup
	}
	// A parked intent for the unit absorbs the new trigger regardless of
	// queue headroom, so a unit never holds a queue slot and a park slot
	// at once (the promote path would otherwise race a fresh enqueue into
	// executing the unit twice).
	if _, parked := p.deferred[job.id]; parked {
		p.deferred[job.id] = job // coalesce: latest target wins
		p.mu.Unlock()
		return enqCoalesced
	}
	select {
	case p.queue <- job:
		p.inflight[job.id] = job.target
		p.pending++
		if p.external {
			p.idle.Broadcast() // wake helping drainers
		}
		p.mu.Unlock()
		p.notifyQueued()
		return enqOK
	default:
		p.deferred[job.id] = job
		p.deferredN.Store(int32(len(p.deferred)))
		p.pending++
		if p.external {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
		p.notifyQueued()
		return enqDeferred
	}
}

// notifyQueued signals an embedder-owned executor pool that work exists.
// Called outside p.mu: the hook may itself call back into the pipeline
// (RunQueuedMigration) from another goroutine it wakes.
func (p *migrationPipeline[ID, Ctx]) notifyQueued() {
	if f := p.m.cfg.OnMigrationQueued; f != nil {
		f()
	}
}

// popDeferredLocked removes one parked intent, marks it inflight, and
// returns it for execution. Intents whose (unit, target) matches a job
// already queued or executing are dropped as duplicates. ok=false means
// nothing promotable remains.
func (p *migrationPipeline[ID, Ctx]) popDeferredLocked() (migrationJob[ID, Ctx], bool) {
	for id, job := range p.deferred {
		delete(p.deferred, id)
		p.deferredN.Store(int32(len(p.deferred)))
		if tgt, dup := p.inflight[id]; dup && tgt == job.target {
			// A retarget re-queued the same (unit, target) while this
			// intent was parked: the queued job will perform it.
			p.m.dedupedEnqueues.Add(1)
			if x := p.m.cfg.Obs; x != nil {
				x.Deduped.Inc()
			}
			p.pending--
			if p.pending == 0 {
				p.idle.Broadcast()
			}
			continue
		}
		p.inflight[id] = job.target
		return job, true
	}
	var zero migrationJob[ID, Ctx]
	return zero, false
}

// promoteDeferred moves parked intents into freed queue slots. Workers
// call it after every job, so a non-empty deferred set always drains as
// long as the queue keeps moving.
func (p *migrationPipeline[ID, Ctx]) promoteDeferred() {
	promoted := false
	p.mu.Lock()
	for !p.closed && len(p.deferred) > 0 {
		job, ok := p.popDeferredLocked()
		if !ok {
			break
		}
		select {
		case p.queue <- job:
			promoted = true
			continue
		default:
			// No slot after all: park it again and revert the marker.
			delete(p.inflight, job.id)
			p.deferred[job.id] = job
			p.deferredN.Store(int32(len(p.deferred)))
		}
		break
	}
	p.mu.Unlock()
	if promoted {
		p.notifyQueued()
	}
}

// runOne executes one queued job (or, when the queue is empty, one
// parked intent) on the caller's goroutine. It returns false when no
// work was available — including after close() has flushed everything.
// This is the execution primitive for external migrator pools.
func (p *migrationPipeline[ID, Ctx]) runOne() bool {
	select {
	case job, ok := <-p.queue:
		if !ok {
			return false
		}
		p.execute(job)
		p.promoteDeferred()
		return true
	default:
	}
	p.mu.Lock()
	job, ok := p.popDeferredLocked()
	p.mu.Unlock()
	if !ok {
		return false
	}
	p.execute(job)
	return true
}

// backlog reports queued plus parked (not yet promoted) jobs.
func (p *migrationPipeline[ID, Ctx]) backlog() int {
	p.mu.Lock()
	n := len(p.queue) + len(p.deferred)
	p.mu.Unlock()
	return n
}

// takeRekeys returns and clears the accumulated identity changes.
func (p *migrationPipeline[ID, Ctx]) takeRekeys() []rekeyPair[ID] {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.rekeys
	p.rekeys = nil
	return r
}

// drain blocks until every accepted job (queued, executing, or parked)
// has executed. In external mode the drainer helps execute, so progress
// does not depend on the embedder's executors being awake.
func (p *migrationPipeline[ID, Ctx]) drain() {
	p.mu.Lock()
	for p.pending > 0 {
		if p.external {
			p.mu.Unlock()
			if p.runOne() {
				p.mu.Lock()
				continue
			}
			p.mu.Lock()
			if p.pending == 0 {
				break
			}
			// Nothing runnable but pending > 0: another executor is
			// mid-job; its completion (or a fresh enqueue) broadcasts.
		}
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// close flushes remaining jobs — both queued and parked — and stops the
// workers. The flush keeps the lossless contract: every accepted trigger
// executes before close returns.
func (p *migrationPipeline[ID, Ctx]) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
	// In external mode (no workers) the closed queue still holds jobs;
	// with workers this range sees an already-drained channel.
	for job := range p.queue {
		p.execute(job)
	}
	// Workers stop promoting once closed is set; flush parked intents
	// here on the closing goroutine.
	for {
		p.mu.Lock()
		job, ok := p.popDeferredLocked()
		p.mu.Unlock()
		if !ok {
			return
		}
		p.execute(job)
	}
}

// applyRekeys moves sample-store entries whose identity changed under an
// asynchronous migration to their new key. Runs inside adapt()'s
// exclusivity (the adapting CAS), so the hopscotch stores are safe to
// touch here even in SingleThreaded mode.
func (m *Manager[ID, Ctx]) applyRekeys() {
	if m.pipe == nil {
		return
	}
	for _, rk := range m.pipe.takeRekeys() {
		if rk.old == rk.new {
			continue
		}
		if m.shared != nil {
			e, ok := m.shared.Get(rk.old)
			if !ok {
				continue // evicted or forgotten meanwhile: stay gone
			}
			m.shared.Delete(rk.old)
			m.shared.Upsert(rk.new, func(dst *entry[Ctx], created bool) {
				if created {
					*dst = e
				}
			})
			continue
		}
		m.mergeMu.Lock()
		if e := m.local.Ref(rk.old); e != nil {
			cp := *e
			m.local.Delete(rk.old)
			m.local.Upsert(rk.new, func(dst *entry[Ctx], created bool) {
				if created {
					*dst = cp
				}
			})
		}
		m.mergeMu.Unlock()
	}
}

// DrainMigrations blocks until every migration accepted so far has been
// applied. No-op without AsyncMigrations. Foreground samplers may keep
// enqueueing while this waits; it returns once the jobs present at call
// time (and any racing additions) have executed.
func (m *Manager[ID, Ctx]) DrainMigrations() {
	if m.pipe != nil {
		start := time.Now()
		m.pipe.drain()
		m.lastDrainNs.Store(time.Since(start).Nanoseconds())
	}
}

// RunQueuedMigration executes at most one pending migration — a queued
// job, or a parked intent when the queue is empty — on the calling
// goroutine, returning whether it did any work. This is the execution
// primitive for embedders that own their migration workers (see
// Config.ExternalMigrations); it is also safe to call alongside internal
// workers as an opportunistic helper. Returns false without
// AsyncMigrations.
func (m *Manager[ID, Ctx]) RunQueuedMigration() bool {
	if m.pipe == nil {
		return false
	}
	return m.pipe.runOne()
}

// MigrationBacklog reports queued plus parked (deferred) migrations —
// the work an external executor pool still owes. 0 without
// AsyncMigrations.
func (m *Manager[ID, Ctx]) MigrationBacklog() int {
	if m.pipe == nil {
		return 0
	}
	return m.pipe.backlog()
}

// DeferredMigrations reports the parked (backpressure-deferred) intents
// without taking the pipeline mutex — an atomic mirror of the deferred
// set's size, safe to read on every operation. 0 without AsyncMigrations.
func (m *Manager[ID, Ctx]) DeferredMigrations() int {
	if m.pipe == nil {
		return 0
	}
	return int(m.pipe.deferredN.Load())
}

// QueuedMigrations reports how many migrations are waiting in the
// pipeline's queue right now (0 without AsyncMigrations). Parked intents
// are not included; see MigrationBacklog.
func (m *Manager[ID, Ctx]) QueuedMigrations() int {
	if m.pipe == nil {
		return 0
	}
	return len(m.pipe.queue)
}

// Close flushes the migration pipeline — remaining queued migrations and
// parked intents are executed — and stops its workers, then applies any
// pending identity re-keys. Safe to call multiple times; a Manager
// without AsyncMigrations needs no Close (it is a no-op there).
func (m *Manager[ID, Ctx]) Close() {
	if m.pipe == nil {
		return
	}
	m.pipe.close()
	// Workers are stopped: adapt() cannot race this final re-key sweep as
	// long as the caller has quiesced its samplers, and if it has not, the
	// next adapt() applies whatever this sweep missed.
	m.applyRekeys()
}
