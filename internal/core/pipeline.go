package core

import (
	"sync"
	"time"

	"ahi/internal/obs"
)

// This file implements the off-critical-path migration pipeline: when
// Config.AsyncMigrations is set, Phase II (adapt) no longer re-encodes
// nodes inline. It pushes migration actions into a bounded queue and
// returns; a fixed pool of worker goroutines drains the queue and runs
// the index's Migrate callback concurrently with foreground traffic.
//
// Two invariants keep this safe:
//
//  1. The sample-store entry is written back (history, identity) inline
//     by adapt() before the job is enqueued, so the store never waits on
//     a worker. When a migration changes the unit's identity (the Hybrid
//     Trie's compactions do; B+-tree leaves are stable), the worker
//     records an (old, new) re-key that the next adapt() applies before
//     collecting candidates — workers never touch the sample stores,
//     which are unsynchronized in SingleThreaded mode.
//
//  2. The queue is bounded and lossless: when it is full (or the
//     pipeline is closing), adapt() falls back to migrating inline, so
//     backpressure degrades to the old behaviour instead of dropping
//     reorganization work. A proposed migration that exactly matches a
//     job already queued or executing (same unit, same target) is
//     deduplicated instead: the pending job will perform it, so running
//     it inline too would re-encode the unit twice.
//
// Requirements on the index: Migrate must be safe to call concurrently
// with foreground reads/writes and with other Migrate calls (the Hybrid
// B+-tree's MigrateLeaf qualifies — it takes the leaf's write lock).
// Indexes whose migrations mutate shared structure without locks (the
// single-threaded Hybrid Trie) must keep AsyncMigrations off.

// migrationJob is one deferred encoding migration. epoch/from/trig and
// enqueuedAt carry observability context to the worker (enqueuedAt is 0
// when no observer is attached — the wait is then not measured).
type migrationJob[ID comparable, Ctx any] struct {
	id         ID
	ctx        Ctx
	target     Encoding
	epoch      uint32
	from       int16 // encoding before migration; -1 unknown
	trig       obs.Trigger
	enqueuedAt int64 // UnixNano at enqueue; 0 without observability
}

// rekeyPair records an identity change performed by a worker.
type rekeyPair[ID comparable] struct{ old, new ID }

// enqueueStatus is the outcome of a pipeline enqueue attempt.
type enqueueStatus uint8

const (
	// enqOK: the job was accepted and will execute asynchronously.
	enqOK enqueueStatus = iota
	// enqFull: the queue is at capacity; the caller must migrate inline.
	enqFull
	// enqClosed: the pipeline is shutting down; migrate inline.
	enqClosed
	// enqDup: an identical job (unit, target) is already queued or
	// executing; the caller should skip the migration entirely.
	enqDup
)

// migrationPipeline is the bounded worker pool behind AsyncMigrations.
type migrationPipeline[ID comparable, Ctx any] struct {
	m     *Manager[ID, Ctx]
	queue chan migrationJob[ID, Ctx]

	mu     sync.Mutex // guards queue sends vs. close, rekeys, inflight, and pending
	closed bool
	rekeys []rekeyPair[ID]
	// inflight tracks the target encoding of every queued or executing
	// job per unit, backing enqueue deduplication. A retargeted unit
	// (same id, different target) is accepted and overwrites the marker;
	// the first job's completion then clears it early, so dedup may
	// under-deduplicate across retargets — it never drops distinct work.
	inflight map[ID]Encoding

	wg sync.WaitGroup // running workers
	// pending counts queued or executing jobs. A plain counter under mu
	// with a condition variable — not a WaitGroup — because drain() must
	// tolerate racing enqueues: WaitGroup.Add concurrent with Wait while
	// the counter passes zero is documented misuse.
	pending int
	idle    *sync.Cond
}

func newMigrationPipeline[ID comparable, Ctx any](m *Manager[ID, Ctx], workers, depth int) *migrationPipeline[ID, Ctx] {
	p := &migrationPipeline[ID, Ctx]{
		m:        m,
		queue:    make(chan migrationJob[ID, Ctx], depth),
		inflight: make(map[ID]Encoding, depth),
	}
	p.idle = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *migrationPipeline[ID, Ctx]) run() {
	defer p.wg.Done()
	for job := range p.queue {
		x := p.m.cfg.Obs
		var wait int64
		var t0 time.Time
		if x != nil {
			if job.enqueuedAt > 0 {
				wait = time.Now().UnixNano() - job.enqueuedAt
				if wait < 0 {
					wait = 0
				}
			}
			t0 = time.Now()
		}
		newID, ok := p.m.cfg.Migrate(job.id, job.ctx, job.target)
		if x != nil {
			x.RecordMigration(job.epoch, p.m.cfg.Hash(job.id), job.from,
				uint8(job.target), job.trig, true, ok, wait, time.Since(t0).Nanoseconds())
		}
		p.mu.Lock()
		delete(p.inflight, job.id)
		if ok {
			p.m.totalMigrations.Add(1)
			if newID != job.id {
				p.rekeys = append(p.rekeys, rekeyPair[ID]{old: job.id, new: newID})
			}
		}
		p.pending--
		if p.pending == 0 {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
	}
}

// enqueue hands a migration to the pool. enqFull/enqClosed mean the
// caller must migrate inline; enqDup means an identical job is already
// pending and the caller should skip the unit this phase.
func (p *migrationPipeline[ID, Ctx]) enqueue(job migrationJob[ID, Ctx]) enqueueStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return enqClosed
	}
	if tgt, dup := p.inflight[job.id]; dup && tgt == job.target {
		return enqDup
	}
	select {
	case p.queue <- job:
		p.inflight[job.id] = job.target
		p.pending++
		return enqOK
	default:
		return enqFull
	}
}

// takeRekeys returns and clears the accumulated identity changes.
func (p *migrationPipeline[ID, Ctx]) takeRekeys() []rekeyPair[ID] {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.rekeys
	p.rekeys = nil
	return r
}

// drain blocks until every queued job has executed.
func (p *migrationPipeline[ID, Ctx]) drain() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// close flushes remaining jobs and stops the workers.
func (p *migrationPipeline[ID, Ctx]) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}

// applyRekeys moves sample-store entries whose identity changed under an
// asynchronous migration to their new key. Runs inside adapt()'s
// exclusivity (the adapting CAS), so the hopscotch stores are safe to
// touch here even in SingleThreaded mode.
func (m *Manager[ID, Ctx]) applyRekeys() {
	if m.pipe == nil {
		return
	}
	for _, rk := range m.pipe.takeRekeys() {
		if rk.old == rk.new {
			continue
		}
		if m.shared != nil {
			e, ok := m.shared.Get(rk.old)
			if !ok {
				continue // evicted or forgotten meanwhile: stay gone
			}
			m.shared.Delete(rk.old)
			m.shared.Upsert(rk.new, func(dst *entry[Ctx], created bool) {
				if created {
					*dst = e
				}
			})
			continue
		}
		m.mergeMu.Lock()
		if e := m.local.Ref(rk.old); e != nil {
			cp := *e
			m.local.Delete(rk.old)
			m.local.Upsert(rk.new, func(dst *entry[Ctx], created bool) {
				if created {
					*dst = cp
				}
			})
		}
		m.mergeMu.Unlock()
	}
}

// DrainMigrations blocks until every migration queued so far has been
// applied. No-op without AsyncMigrations. Foreground samplers may keep
// enqueueing while this waits; it returns once the jobs present at call
// time (and any racing additions) have executed.
func (m *Manager[ID, Ctx]) DrainMigrations() {
	if m.pipe != nil {
		start := time.Now()
		m.pipe.drain()
		m.lastDrainNs.Store(time.Since(start).Nanoseconds())
	}
}

// QueuedMigrations reports how many migrations are waiting in the
// pipeline's queue right now (0 without AsyncMigrations).
func (m *Manager[ID, Ctx]) QueuedMigrations() int {
	if m.pipe == nil {
		return 0
	}
	return len(m.pipe.queue)
}

// Close flushes the migration pipeline — remaining queued migrations are
// executed — and stops its workers, then applies any pending identity
// re-keys. Safe to call multiple times; a Manager without AsyncMigrations
// needs no Close (it is a no-op there).
func (m *Manager[ID, Ctx]) Close() {
	if m.pipe == nil {
		return
	}
	m.pipe.close()
	// Workers are stopped: adapt() cannot race this final re-key sweep as
	// long as the caller has quiesced its samplers, and if it has not, the
	// next adapt() applies whatever this sweep missed.
	m.applyRekeys()
}
