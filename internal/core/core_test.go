package core

import (
	"math/rand"
	"sync"
	"testing"

	"ahi/internal/hashmap"
	"ahi/internal/workload"
)

// mockIndex is a minimal hybrid "index": units are integers 0..n-1, each
// either compressed (encoding 0) or expanded (encoding 1). It implements
// the callback surface the manager requires and records migrations.
type mockIndex struct {
	mu        sync.Mutex
	expanded  []bool
	unitCost  [2]int64 // bytes per compressed / expanded unit
	migrated  int
	expansion int
	compact   int
}

func newMockIndex(n int) *mockIndex {
	return &mockIndex{expanded: make([]bool, n), unitCost: [2]int64{10, 100}}
}

func (ix *mockIndex) units() UnitCounts {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var nu int64
	for _, e := range ix.expanded {
		if e {
			nu++
		}
	}
	return UnitCounts{
		Compressed:      int64(len(ix.expanded)) - nu,
		Uncompressed:    nu,
		CompressedAvg:   ix.unitCost[0],
		UncompressedAvg: ix.unitCost[1],
	}
}

func (ix *mockIndex) usedMemory() int64 {
	u := ix.units()
	return u.Compressed*ix.unitCost[0] + u.Uncompressed*ix.unitCost[1]
}

func (ix *mockIndex) heuristic(id int, _ *struct{}, st *Stats, env Env) Action {
	ix.mu.Lock()
	exp := ix.expanded[id]
	ix.mu.Unlock()
	if env.Hot && !exp && env.BudgetRemaining > ix.unitCost[1] {
		return Action{Target: 1, Migrate: true}
	}
	if !env.Hot && exp {
		return Action{Target: 0, Migrate: true}
	}
	if !env.Hot && st.HotCount() == 0 && st.HistoryLen >= 4 {
		return Action{Evict: true}
	}
	return Action{}
}

func (ix *mockIndex) migrate(id int, _ struct{}, target Encoding) (int, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	want := target == 1
	if ix.expanded[id] == want {
		return id, false
	}
	ix.expanded[id] = want
	ix.migrated++
	if want {
		ix.expansion++
	} else {
		ix.compact++
	}
	return id, true
}

func (ix *mockIndex) config(mode ConcurrencyMode, workers int) Config[int, struct{}] {
	return Config[int, struct{}]{
		Hash:         func(id int) uint64 { return hashmap.HashU64(uint64(id)) },
		Units:        ix.units,
		UsedMemory:   ix.usedMemory,
		Heuristic:    ix.heuristic,
		Migrate:      ix.migrate,
		Mode:         mode,
		Workers:      workers,
		InitialSkip:  4,
		MinSkip:      2,
		MaxSkip:      64,
		AdaptiveSkip: true,
	}
}

func (ix *mockIndex) expandedCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	for _, e := range ix.expanded {
		if e {
			n++
		}
	}
	return n
}

func (ix *mockIndex) isExpanded(i int) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.expanded[i]
}

func TestStatsHistory(t *testing.T) {
	var s Stats
	s.PushClassification(true)
	s.PushClassification(true)
	s.PushClassification(false)
	s.PushClassification(true)
	if s.HotStreak() != 1 {
		t.Fatalf("HotStreak=%d", s.HotStreak())
	}
	if s.HotCount() != 3 {
		t.Fatalf("HotCount=%d", s.HotCount())
	}
	for i := 0; i < 20; i++ {
		s.PushClassification(true)
	}
	if s.HistoryLen != 8 || s.HotStreak() != 8 {
		t.Fatalf("history must cap at 8: len=%d streak=%d", s.HistoryLen, s.HotStreak())
	}
}

func TestStatsCount(t *testing.T) {
	var s Stats
	s.Count(Read)
	s.Count(Scan)
	s.Count(Insert)
	s.Count(Update)
	s.Count(Delete)
	if s.Reads != 2 || s.Writes != 3 {
		t.Fatalf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	if s.Freq() != 5 {
		t.Fatalf("freq=%d", s.Freq())
	}
}

func TestAccessTypeString(t *testing.T) {
	for a, want := range map[AccessType]string{Read: "read", Scan: "scan", Insert: "insert", Update: "update", Delete: "delete", AccessType(99): "unknown"} {
		if a.String() != want {
			t.Fatalf("%d -> %q", a, a.String())
		}
	}
}

func TestManagerRequiresCallbacks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing callbacks")
		}
	}()
	New(Config[int, struct{}]{})
}

// driveSkewed sends a Zipfian access pattern over n units through a
// sampler, sampling every access (skip handled by IsSample).
func driveSkewed(m *Manager[int, struct{}], n, ops int, seed int64) {
	s := m.NewSampler()
	z := workload.NewZipf(n, 1.2, seed)
	for i := 0; i < ops; i++ {
		if s.IsSample() {
			s.Track(z.Draw(), Read, struct{}{})
		}
	}
	s.Flush()
}

func TestSingleThreadedAdaptationExpandsHotUnits(t *testing.T) {
	const n = 1000
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	cfg.MemoryBudget = 10*int64(n) + 100*100 // room for ~100 expansions
	var adapts []AdaptInfo
	cfg.OnAdapt = func(ai AdaptInfo) { adapts = append(adapts, ai) }
	m := New(cfg)
	driveSkewed(m, n, 2_000_000, 1)
	if len(adapts) == 0 {
		t.Fatal("no adaptation ran")
	}
	if m.Migrations() == 0 {
		t.Fatal("no migrations happened")
	}
	// The hottest units must be expanded, cold tail not.
	if !ix.isExpanded(0) || !ix.isExpanded(1) {
		t.Fatal("hottest units were not expanded")
	}
	exp := ix.expandedCount()
	if exp == 0 || exp > 110 {
		t.Fatalf("expanded=%d want within budget (~100)", exp)
	}
	cold := 0
	for i := n / 2; i < n; i++ {
		if ix.isExpanded(i) {
			cold++
		}
	}
	if cold > exp/4 {
		t.Fatalf("too many cold units expanded: %d of %d", cold, exp)
	}
}

func TestBudgetIsRespected(t *testing.T) {
	const n = 500
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	budget := int64(n)*10 + 20*100
	cfg.MemoryBudget = budget
	m := New(cfg)
	driveSkewed(m, n, 1_000_000, 2)
	if used := ix.usedMemory(); used > budget+100 { // one unit of slack
		t.Fatalf("memory %d exceeds budget %d", used, budget)
	}
}

func TestColdReclassificationCompacts(t *testing.T) {
	const n = 400
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	cfg.MemoryBudget = int64(n)*10 + 40*100
	m := New(cfg)
	// Phase A: heat the low range.
	s := m.NewSampler()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500_000; i++ {
		if s.IsSample() {
			s.Track(rng.Intn(20), Read, struct{}{})
		}
	}
	if ix.expandedCount() == 0 {
		t.Fatal("phase A expanded nothing")
	}
	expandedLow := ix.isExpanded(0) || ix.isExpanded(1)
	if !expandedLow {
		t.Fatal("hot range not expanded in phase A")
	}
	// Phase B: shift heat to the high range; the low range must compact.
	for i := 0; i < 2_000_000; i++ {
		if s.IsSample() {
			s.Track(380+rng.Intn(20), Read, struct{}{})
		}
	}
	lowStillExpanded := 0
	for i := 0; i < 20; i++ {
		if ix.isExpanded(i) {
			lowStillExpanded++
		}
	}
	if lowStillExpanded > 5 {
		t.Fatalf("%d stale expansions survived the phase shift", lowStillExpanded)
	}
	if !ix.isExpanded(380) && !ix.isExpanded(390) {
		t.Fatal("new hot range not expanded")
	}
	if ix.compact == 0 {
		t.Fatal("no compactions recorded")
	}
}

func TestAdaptiveSkipMoves(t *testing.T) {
	const n = 200
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	m := New(cfg)
	initial := m.SkipLength()
	// A stable workload (no migrations after warm-up) must grow the skip.
	driveSkewed(m, n, 3_000_000, 7)
	if m.SkipLength() <= initial {
		t.Fatalf("skip did not grow under stable workload: %d -> %d", initial, m.SkipLength())
	}
	if m.SkipLength() > cfg.MaxSkip {
		t.Fatalf("skip exceeded max: %d", m.SkipLength())
	}
}

func TestFixedSkipStaysPut(t *testing.T) {
	ix := newMockIndex(100)
	cfg := ix.config(SingleThreaded, 1)
	cfg.AdaptiveSkip = false
	cfg.InitialSkip = 7
	m := New(cfg)
	driveSkewed(m, 100, 500_000, 9)
	if m.SkipLength() != 7 {
		t.Fatalf("fixed skip moved to %d", m.SkipLength())
	}
}

func TestSamplerSkipCadence(t *testing.T) {
	ix := newMockIndex(10)
	cfg := ix.config(SingleThreaded, 1)
	cfg.AdaptiveSkip = false
	cfg.InitialSkip = 4
	m := New(cfg)
	s := m.NewSampler()
	samples := 0
	const ops = 1000
	for i := 0; i < ops; i++ {
		if s.IsSample() {
			samples++
		}
	}
	want := ops / 5 // skip 4 => every 5th access
	if samples < want-2 || samples > want+2 {
		t.Fatalf("samples=%d want ~%d", samples, want)
	}
}

func TestBloomFilterSuppressesOneOffs(t *testing.T) {
	const n = 10000
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	cfg.InitialSkip = 0
	cfg.AdaptiveSkip = false
	cfg.MaxSampleSize = 1 << 20
	m := New(cfg)
	s := m.NewSampler()
	// Each unit accessed exactly once: nothing should enter the map.
	for i := 0; i < 2000; i++ {
		s.Track(i, Read, struct{}{})
	}
	if got := m.TrackedUnits(); got != 0 {
		t.Fatalf("one-off accesses tracked: %d", got)
	}
	// Re-seen units do get tracked.
	for i := 0; i < 2000; i++ {
		s.Track(i%5, Read, struct{}{})
	}
	if got := m.TrackedUnits(); got == 0 || got > 5 {
		t.Fatalf("tracked=%d want 1..5", got)
	}
}

func TestDisableBloomTracksImmediately(t *testing.T) {
	ix := newMockIndex(100)
	cfg := ix.config(SingleThreaded, 1)
	cfg.DisableBloom = true
	m := New(cfg)
	s := m.NewSampler()
	s.Track(1, Read, struct{}{})
	if m.TrackedUnits() != 1 {
		t.Fatal("tracking with disabled filter must be immediate")
	}
}

func TestForgetAndUpdateContext(t *testing.T) {
	type ctx struct{ parent int }
	ix := newMockIndex(10)
	cfg := Config[int, ctx]{
		Hash:         func(id int) uint64 { return hashmap.HashU64(uint64(id)) },
		Units:        ix.units,
		UsedMemory:   ix.usedMemory,
		Heuristic:    func(int, *ctx, *Stats, Env) Action { return Action{} },
		Migrate:      func(id int, _ ctx, _ Encoding) (int, bool) { return id, false },
		DisableBloom: true,
	}
	m := New(cfg)
	s := m.NewSampler()
	s.Track(3, Read, ctx{parent: 7})
	m.UpdateContext(3, ctx{parent: 9})
	m.UpdateContext(4, ctx{parent: 1}) // untracked: no-op, must not create
	if m.TrackedUnits() != 1 {
		t.Fatalf("tracked=%d", m.TrackedUnits())
	}
	m.Forget(3)
	if m.TrackedUnits() != 0 {
		t.Fatal("Forget failed")
	}
}

func TestTrainOffline(t *testing.T) {
	const n = 300
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	cfg.MemoryBudget = int64(n)*10 + 30*100
	m := New(cfg)
	freqs := make([]IDFreq[int, struct{}], n)
	for i := 0; i < n; i++ {
		freqs[i] = IDFreq[int, struct{}]{ID: i, Freq: uint64(n - i)}
	}
	migs := m.TrainOffline(freqs)
	if migs == 0 {
		t.Fatal("offline training migrated nothing")
	}
	// The hottest (lowest ids) must be expanded, within budget.
	if !ix.isExpanded(0) || !ix.isExpanded(5) {
		t.Fatal("top-ranked units not expanded")
	}
	if ix.isExpanded(n - 1) {
		t.Fatal("cold unit expanded")
	}
	if used := ix.usedMemory(); used > cfg.MemoryBudget+100 {
		t.Fatalf("training blew budget: %d > %d", used, cfg.MemoryBudget)
	}
}

func TestRelativeBudget(t *testing.T) {
	const n = 100
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	cfg.RelativeBudget = 0.2 // 20% of all-expanded (100*100) = 2000 bytes
	m := New(cfg)
	driveSkewed(m, n, 1_000_000, 4)
	if used := ix.usedMemory(); used > 2100 {
		t.Fatalf("relative budget exceeded: %d", used)
	}
}

func TestGSConcurrentAdaptation(t *testing.T) {
	const n = 2000
	ix := newMockIndex(n)
	cfg := ix.config(GS, 4)
	cfg.MemoryBudget = int64(n)*10 + 50*100
	m := New(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			driveSkewed(m, n, 500_000, int64(w+1))
		}(w)
	}
	wg.Wait()
	if m.Adaptations() == 0 {
		t.Fatal("no adaptations under GS")
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded under GS")
	}
	if used := ix.usedMemory(); used > cfg.MemoryBudget+300 {
		t.Fatalf("GS blew budget: %d > %d", used, cfg.MemoryBudget)
	}
}

func TestTLSConcurrentAdaptation(t *testing.T) {
	const n = 2000
	ix := newMockIndex(n)
	cfg := ix.config(TLS, 4)
	cfg.MemoryBudget = int64(n)*10 + 50*100
	m := New(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			driveSkewed(m, n, 500_000, int64(w+1))
		}(w)
	}
	wg.Wait()
	if m.Adaptations() == 0 {
		t.Fatal("no adaptations under TLS")
	}
	if !ix.isExpanded(0) {
		t.Fatal("hottest unit not expanded under TLS")
	}
}

func TestManagerBytesNonZero(t *testing.T) {
	ix := newMockIndex(100)
	m := New(ix.config(SingleThreaded, 1))
	_ = m.NewSampler()
	if m.Bytes() <= 0 {
		t.Fatal("sampling framework must report its footprint")
	}
}

func TestEvictionsRemoveStaleUnits(t *testing.T) {
	const n = 100
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	m := New(cfg)
	s := m.NewSampler()
	rng := rand.New(rand.NewSource(11))
	// Heat a range, then abandon it entirely for many phases.
	for i := 0; i < 300_000; i++ {
		if s.IsSample() {
			s.Track(rng.Intn(10), Read, struct{}{})
		}
	}
	trackedAfterHot := m.TrackedUnits()
	if trackedAfterHot == 0 {
		t.Fatal("nothing tracked")
	}
	for i := 0; i < 12_000_000; i++ {
		if s.IsSample() {
			s.Track(50+rng.Intn(10), Read, struct{}{})
		}
	}
	// The stale low-range units need >= 8 cold classifications before the
	// mock CSHF evicts them; 12M accesses give plenty of phases. After
	// eviction, only the ~10 new hot units remain tracked.
	if m.TrackedUnits() > trackedAfterHot+5 {
		t.Fatalf("stale units not evicted: tracked=%d (was %d)", m.TrackedUnits(), trackedAfterHot)
	}
}
