package core

import (
	"testing"
)

// These tests pin the ChargedBytes budget accounting: auxiliary read-path
// bytes (the result cache) must shrink the adaptation headroom exactly as
// if they were index bytes, in both the online loop and offline training.

// TestChargedBytesShrinksHeadroom drives the budget to its edge twice —
// once with nothing charged, once with a charge eating most of the
// expansion headroom — and checks the manager expands proportionally less
// and that env.BudgetRemaining reflects the charge byte-for-byte.
func TestChargedBytesShrinksHeadroom(t *testing.T) {
	const n = 500
	run := func(charge int64) (expanded int, remaining []int64) {
		ix := newMockIndex(n)
		cfg := ix.config(SingleThreaded, 1)
		budget := int64(n)*10 + 40*100 // floor + room for ~40 expansions
		cfg.MemoryBudget = budget
		if charge > 0 {
			cfg.ChargedBytes = func() int64 { return charge }
		}
		inner := cfg.Heuristic
		cfg.Heuristic = func(id int, c *struct{}, st *Stats, env Env) Action {
			remaining = append(remaining, env.BudgetRemaining)
			want := budget - ix.usedMemory() - charge
			// UsedMemory moves as earlier candidates in the same phase
			// migrate, so allow one expanded unit of drift.
			if d := env.BudgetRemaining - want; d < -100 || d > 100 {
				t.Errorf("BudgetRemaining=%d want %d (charge %d)", env.BudgetRemaining, want, charge)
			}
			return inner(id, c, st, env)
		}
		m := New(cfg)
		driveSkewed(m, n, 1_000_000, 2)
		if used := ix.usedMemory() + charge; used > budget+100 {
			t.Fatalf("used+charged=%d exceeds budget %d (charge %d)", used, budget, charge)
		}
		return ix.expandedCount(), remaining
	}

	free, rem := run(0)
	if len(rem) == 0 {
		t.Fatal("heuristic never consulted")
	}
	charged, _ := run(30 * 100) // charge 30 of the 40 expansion slots
	if free == 0 {
		t.Fatal("uncharged run expanded nothing")
	}
	if charged >= free {
		t.Fatalf("charge did not shrink expansion: charged=%d free=%d", charged, free)
	}
	if charged > 10+2 { // ~10 slots left, one unit of slack
		t.Fatalf("charged run overspent: expanded=%d want <=12", charged)
	}
}

// TestChargedBytesAtEdge pins the degenerate cases: a charge consuming the
// whole budget leaves no headroom (nothing expands), and budgetK clamps at
// zero instead of going negative.
func TestChargedBytesAtEdge(t *testing.T) {
	const n = 200
	ix := newMockIndex(n)
	cfg := ix.config(SingleThreaded, 1)
	budget := int64(n)*10 + 20*100
	cfg.MemoryBudget = budget
	cfg.ChargedBytes = func() int64 { return budget } // everything charged
	m := New(cfg)
	driveSkewed(m, n, 500_000, 4)
	if got := ix.expansion; got != 0 {
		t.Fatalf("expanded %d units with zero headroom", got)
	}
}

// TestChargedBytesTrainOffline checks offline training stops admitting
// expansions once used+charged memory reaches the budget.
func TestChargedBytesTrainOffline(t *testing.T) {
	const n = 100
	train := func(charge int64) int {
		ix := newMockIndex(n)
		cfg := ix.config(SingleThreaded, 1)
		cfg.MemoryBudget = int64(n)*10 + 10*100 // room for 10 expansions
		if charge > 0 {
			cfg.ChargedBytes = func() int64 { return charge }
		}
		m := New(cfg)
		freqs := make([]IDFreq[int, struct{}], n)
		for i := range freqs {
			freqs[i] = IDFreq[int, struct{}]{ID: i, Freq: uint64(n - i)}
		}
		return m.TrainOffline(freqs)
	}
	free := train(0)
	if free == 0 || free > 10 {
		t.Fatalf("uncharged TrainOffline migrated %d, want ~10", free)
	}
	charged := train(5 * 100)
	if charged >= free {
		t.Fatalf("charge did not shrink offline training: %d vs %d", charged, free)
	}
}
