package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ahi/internal/bloom"
	"ahi/internal/hashmap"
	"ahi/internal/obs"
	"ahi/internal/topk"
)

// Config wires an index into the adaptation manager. Hash, Units,
// Heuristic and Migrate are required; everything else has defaults.
type Config[ID comparable, Ctx any] struct {
	// Hash maps an identifier to a 64-bit hash (hashmap.HashU64 over a
	// numeric handle is the common choice).
	Hash func(ID) uint64
	// Units reports the index's tracked-unit counts and average encoding
	// sizes, consumed by Equation (1) and the budget-derived k.
	Units func() UnitCounts
	// UsedMemory returns the index's current size in bytes (Listing 1's
	// GetUsedMemory callback).
	UsedMemory func() int64
	// ChargedBytes, optional, reports bytes consumed by auxiliary
	// read-path structures (e.g. a hot-key result cache) that must fit
	// inside the memory budget alongside the index itself. The manager
	// subtracts it from the budget headroom wherever UsedMemory is
	// consulted, so index encodings plus auxiliaries never exceed the
	// configured budget.
	ChargedBytes func() int64
	// Heuristic is the index's CSHF (Listing 1's EvaluateHeuristic): given
	// a unit's stats, context and classification, propose an Action.
	Heuristic func(id ID, ctx *Ctx, st *Stats, env Env) Action
	// Migrate performs one encoding migration (Listing 1's Encode
	// callback) and returns the unit's identifier afterwards — migrations
	// may replace nodes, changing identity — plus whether anything
	// changed. Stale contexts must be tolerated (e.g. a parent pointer
	// outdated by a split); returning ok=false skips the unit.
	Migrate func(id ID, ctx Ctx, target Encoding) (newID ID, ok bool)

	// MemoryBudget bounds the index size in bytes; 0 means unbounded.
	MemoryBudget int64
	// RelativeBudget, if positive, sets the budget to this fraction of the
	// all-expanded index size (Uncompressed average × total units),
	// re-evaluated each phase — the paper's relative budget that tracks
	// inserts and deletes (§3.1.6).
	RelativeBudget float64

	// Epsilon and Delta are the error bound and failure probability of the
	// top-k approximation (default 0.05 each).
	Epsilon, Delta float64

	// Skip-length control (§3.1.4). When AdaptiveSkip is true the manager
	// moves the skip within [MinSkip, MaxSkip] based on migration churn;
	// otherwise the skip stays at InitialSkip (Figure 5's fixed sweep).
	InitialSkip      int
	MinSkip, MaxSkip int
	AdaptiveSkip     bool

	// MaxSampleSize caps Equation (1)'s result (and bounds memory).
	MaxSampleSize int

	// ReadWeight and WriteWeight bias the classification priority
	// (default 1 and 1: plain access counts). A write-averse deployment
	// can rank write-heavy nodes hotter so they reach the write-friendly
	// encoding sooner (§3.1.4's custom weights).
	ReadWeight, WriteWeight uint32

	// RandomizeSkip jitters each reloaded skip by up to ±25% (§3.1.4:
	// "the adaptation manager could randomize sk in a limited range to
	// cope with query patterns" — periodic access patterns would otherwise
	// alias with a fixed stride).
	RandomizeSkip bool

	// DisableBloom removes the Bloom filter in front of the sample map
	// (the ablation of Figure 5's blue vs. red line).
	DisableBloom bool

	// Mode selects SingleThreaded (default), GS or TLS; Workers sizes the
	// concurrent structures (defaults to 1).
	Mode    ConcurrencyMode
	Workers int

	// AsyncMigrations moves encoding migrations off the critical path:
	// adapt() enqueues them into a bounded queue drained by a worker pool
	// instead of re-encoding inline, so the sampler that triggers a phase
	// returns after classification. Requires Migrate to be safe against
	// concurrent foreground access and concurrent Migrate calls; when the
	// queue is full, adapt() parks the job as a deferred intent
	// (backpressure) instead of re-encoding inline — the serve path is
	// never charged for a migration. Call Manager.Close to flush the
	// pipeline when retiring the index.
	AsyncMigrations bool
	// MigrationWorkers sizes the pipeline's worker pool (default 2).
	// Ignored when ExternalMigrations is set.
	MigrationWorkers int
	// MigrationQueue bounds the pipeline's queue. The default scales with
	// parallelism — 256 slots per GOMAXPROCS at Manager creation — so a
	// many-core host saturates its migration workers before triggers park.
	MigrationQueue int
	// ExternalMigrations suppresses the pipeline's internal worker pool:
	// the embedder owns the executors and runs jobs via
	// Manager.RunQueuedMigration (the sharded front's work-stealing
	// migrators do this). Drain and Close still make progress on the
	// calling goroutine, so the contract stays lossless even if the
	// external executors are idle or gone.
	ExternalMigrations bool
	// OnMigrationQueued, if set, is invoked (outside pipeline locks)
	// whenever a job enters the queue — the wake-up hook for external
	// executor pools. May be called from any goroutine, including
	// concurrently with itself.
	OnMigrationQueued func()
	// ReclaimStats, optional, reports the index's deferred-reclamation
	// state — the retire-list depth and the epoch lag between the global
	// reclamation epoch and the oldest in-flight reader. Consulted once
	// per adaptation phase for snapshots; ignored without Obs.
	ReclaimStats func() (retired int64, lag int64)

	// OnAdapt, if set, observes every completed adaptation phase.
	OnAdapt func(AdaptInfo)

	// Obs, if set, attaches the manager to an observability scope: every
	// migration becomes a trace event (with trigger classification, queue
	// wait and build latency), every adaptation phase emits an
	// encoding-distribution snapshot, and the scope's counters/histograms
	// track sampling and pipeline pressure. Nil disables instrumentation;
	// the instrumented paths then cost one nil check each.
	Obs *obs.Index
	// Distribution, optional, reports the index's per-encoding unit/byte
	// distribution for snapshots (e.g. succinct/packed/gapped leaves).
	// Consulted once per adaptation phase; ignored without Obs.
	Distribution func() []obs.EncodingClass
	// EncodingOf, optional, reports a unit's current encoding so trace
	// events can name the migration's origin. Must be cheap (it runs once
	// per proposed migration); ignored without Obs.
	EncodingOf func(ID) (Encoding, bool)
}

func (c *Config[ID, Ctx]) setDefaults() {
	if c.Epsilon <= 0 {
		c.Epsilon = topk.DefaultEpsilon
	}
	if c.Delta <= 0 {
		c.Delta = topk.DefaultDelta
	}
	if c.MinSkip <= 0 {
		c.MinSkip = 50
	}
	if c.MaxSkip < c.MinSkip {
		c.MaxSkip = 500
	}
	// A zero skip ("sample every access", Figure 5's leftmost point) is
	// meaningful with a fixed skip; under adaptive control it only makes
	// sense to start at the minimum.
	if c.InitialSkip < 0 || (c.InitialSkip == 0 && c.AdaptiveSkip) {
		c.InitialSkip = c.MinSkip
	}
	if c.MaxSampleSize <= 0 {
		c.MaxSampleSize = 1 << 20
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ReadWeight == 0 {
		c.ReadWeight = 1
	}
	if c.WriteWeight == 0 {
		c.WriteWeight = 1
	}
	if c.MigrationWorkers <= 0 {
		c.MigrationWorkers = 2
	}
	if c.ExternalMigrations {
		c.MigrationWorkers = 0
	}
	if c.MigrationQueue <= 0 {
		c.MigrationQueue = 256 * runtime.GOMAXPROCS(0)
	}
}

// entry is the per-unit record in the sample stores: aggregated statistics
// plus the caller-supplied context.
type entry[Ctx any] struct {
	stats Stats
	ctx   Ctx
}

// Manager is the adaptation manager of §3.1. Create one per hybrid index
// via New, obtain one Sampler per worker goroutine, and call
// Sampler.IsSample/Track from the index's access paths.
type Manager[ID comparable, Ctx any] struct {
	cfg Config[ID, Ctx]

	epoch       atomic.Uint32
	globalSkip  atomic.Int64
	sampleSize  atomic.Int64
	sampled     atomic.Int64 // samples accumulated in the current phase
	adapting    atomic.Bool
	filterEpoch atomic.Uint32 // samplers reset their filters lazily

	// Single-threaded / TLS-merge store (guarded by mergeMu in TLS mode).
	local   *hashmap.Hopscotch[ID, entry[Ctx]]
	mergeMu sync.Mutex

	// GS store.
	shared *hashmap.Cuckoo[ID, entry[Ctx]]

	// Off-critical-path migration pipeline (nil unless AsyncMigrations).
	pipe *migrationPipeline[ID, Ctx]

	// Phase II scratch, reused across epochs. adapt() runs exclusively
	// (the adapting CAS), so plain fields are safe.
	candScratch []candidate[ID, Ctx]
	hotScratch  []bool

	// Aggregate counters.
	totalMigrations atomic.Int64
	totalAdapts     atomic.Int64
	samplerBytes    atomic.Int64
	inlineFallbacks atomic.Int64
	backpressured   atomic.Int64
	coalesced       atomic.Int64
	dedupedEnqueues atomic.Int64
	lastDrainNs     atomic.Int64

	// budgetOverride, when positive, replaces the configured memory budget
	// (SetMemoryBudget). A sharded front-end re-splits one shared budget
	// across per-shard managers as hotness shifts.
	budgetOverride atomic.Int64
}

// New creates an adaptation manager. It panics if a required callback is
// missing, because a silently inert manager would invalidate experiments.
func New[ID comparable, Ctx any](cfg Config[ID, Ctx]) *Manager[ID, Ctx] {
	if cfg.Hash == nil || cfg.Units == nil || cfg.Heuristic == nil || cfg.Migrate == nil || cfg.UsedMemory == nil {
		panic("core: Config requires Hash, Units, UsedMemory, Heuristic and Migrate")
	}
	cfg.setDefaults()
	m := &Manager[ID, Ctx]{cfg: cfg}
	m.globalSkip.Store(int64(cfg.InitialSkip))
	m.sampleSize.Store(int64(m.initialSampleSize()))
	switch cfg.Mode {
	case GS:
		m.shared = hashmap.NewCuckoo[ID, entry[Ctx]](cfg.Hash, 4096, cfg.Workers*4)
	default:
		m.local = hashmap.NewHopscotch[ID, entry[Ctx]](cfg.Hash, 1024)
	}
	if cfg.AsyncMigrations {
		m.pipe = newMigrationPipeline(m, cfg.MigrationWorkers, cfg.MigrationQueue)
	}
	return m
}

func (m *Manager[ID, Ctx]) initialSampleSize() int {
	u := m.cfg.Units()
	n := int(u.Total())
	if n == 0 {
		n = 1024
	}
	s := topk.SampleSize(n, m.budgetK(u), m.cfg.Epsilon, m.cfg.Delta)
	return m.clampSampleSize(s)
}

func (m *Manager[ID, Ctx]) clampSampleSize(s int) int {
	if s < 64 {
		s = 64
	}
	if s > m.cfg.MaxSampleSize {
		s = m.cfg.MaxSampleSize
	}
	return s
}

// SetMemoryBudget overrides the configured memory budget at run time (in
// bytes; <= 0 removes the override). It takes precedence over both the
// absolute and the relative configured budget and applies from the next
// adaptation phase. Safe for concurrent use.
func (m *Manager[ID, Ctx]) SetMemoryBudget(b int64) {
	if b < 0 {
		b = 0
	}
	m.budgetOverride.Store(b)
}

// budget resolves the configured budget in bytes; MaxInt64 when unbounded.
func (m *Manager[ID, Ctx]) budget(u UnitCounts) int64 {
	if o := m.budgetOverride.Load(); o > 0 {
		return o
	}
	if m.cfg.RelativeBudget > 0 {
		allExpanded := float64(u.Total()) * float64(u.UncompressedAvg)
		return int64(m.cfg.RelativeBudget * allExpanded)
	}
	if m.cfg.MemoryBudget > 0 {
		return m.cfg.MemoryBudget
	}
	return math.MaxInt64
}

// charged resolves ChargedBytes (0 when unset).
func (m *Manager[ID, Ctx]) charged() int64 {
	if m.cfg.ChargedBytes == nil {
		return 0
	}
	return m.cfg.ChargedBytes()
}

// budgetK derives the top-k size from the memory budget (§3: "we set k to
// the number of theoretically expandable nodes").
func (m *Manager[ID, Ctx]) budgetK(u UnitCounts) int {
	b := m.budget(u)
	if b == math.MaxInt64 {
		return int(u.Total())
	}
	if c := m.charged(); c > 0 {
		// Auxiliary structures shrink the budget available to encodings.
		if b -= c; b < 0 {
			b = 0
		}
	}
	return topk.BudgetK(b, u.Compressed, u.CompressedAvg, u.Uncompressed, u.UncompressedAvg)
}

// Epoch returns the current sampling epoch.
func (m *Manager[ID, Ctx]) Epoch() uint32 { return m.epoch.Load() }

// RestoreAdaptationState reinstates sampling state recorded in a
// durability checkpoint — the epoch counter, the converged skip length,
// and the target sample size — so a recovered index resumes adaptation
// where it left off instead of re-learning from the initial defaults.
// Zero arguments leave the corresponding state untouched. Call before
// the first access; it does not synchronize with running samplers.
func (m *Manager[ID, Ctx]) RestoreAdaptationState(epoch uint32, skip, sampleSize int) {
	if epoch > 0 {
		m.epoch.Store(epoch)
	}
	if skip > 0 {
		if m.cfg.MinSkip > 0 && skip < m.cfg.MinSkip {
			skip = m.cfg.MinSkip
		}
		if m.cfg.MaxSkip > 0 && skip > m.cfg.MaxSkip {
			skip = m.cfg.MaxSkip
		}
		m.globalSkip.Store(int64(skip))
	}
	if sampleSize > 0 {
		m.sampleSize.Store(int64(m.clampSampleSize(sampleSize)))
	}
}

// SkipLength returns the current global skip length.
func (m *Manager[ID, Ctx]) SkipLength() int { return int(m.globalSkip.Load()) }

// SampleSize returns the current target sample size.
func (m *Manager[ID, Ctx]) SampleSize() int { return int(m.sampleSize.Load()) }

// Migrations returns the total number of successful encoding migrations.
func (m *Manager[ID, Ctx]) Migrations() int64 { return m.totalMigrations.Load() }

// Adaptations returns the number of completed adaptation phases.
func (m *Manager[ID, Ctx]) Adaptations() int64 { return m.totalAdapts.Load() }

// InlineFallbacks returns how many migrations intended for the
// asynchronous pipeline ran inline on the proposing path. Always 0 since
// the backpressure rework — queue-full triggers park as deferred intents
// (see Backpressured) instead of re-encoding synchronously — but kept so
// recorded benchmarks can assert the fallback path stays dead.
func (m *Manager[ID, Ctx]) InlineFallbacks() int64 { return m.inlineFallbacks.Load() }

// Backpressured returns how many proposed migrations found the pipeline
// queue full and were parked as deferred intents instead of running
// inline — cumulative queue-pressure over the manager's lifetime (0
// without AsyncMigrations).
func (m *Manager[ID, Ctx]) Backpressured() int64 { return m.backpressured.Load() }

// CoalescedTriggers returns how many repeat triggers were folded into an
// already-parked intent for the same unit while the queue was hot (0
// without AsyncMigrations).
func (m *Manager[ID, Ctx]) CoalescedTriggers() int64 { return m.coalesced.Load() }

// DedupedEnqueues returns how many proposed migrations were dropped
// because an identical job (same unit, same target encoding) was already
// queued or executing in the pipeline — re-classification churn the
// pipeline absorbed without re-encoding twice (0 without AsyncMigrations).
func (m *Manager[ID, Ctx]) DedupedEnqueues() int64 { return m.dedupedEnqueues.Load() }

// LastDrainNs returns the duration of the most recent DrainMigrations
// call in nanoseconds (0 if never drained).
func (m *Manager[ID, Ctx]) LastDrainNs() int64 { return m.lastDrainNs.Load() }

// StoreStats returns the tracked-unit count and the framework's byte
// footprint (sample stores plus per-sampler filters) from ONE snapshot of
// the unit map: both figures are read in a single pass under the same
// locks. Calling TrackedUnits and Bytes separately makes two passes, and
// a concurrent Forget landing between them produces a (units, bytes) pair
// that never existed — snapshot emitters must use this instead.
func (m *Manager[ID, Ctx]) StoreStats() (units int, bytes int64) {
	if m.shared != nil {
		n, b := m.shared.Stats()
		return n, int64(b) + m.samplerBytes.Load()
	}
	m.mergeMu.Lock()
	units = m.local.Len()
	bytes = int64(m.local.Bytes())
	m.mergeMu.Unlock()
	return units, bytes + m.samplerBytes.Load()
}

// Bytes reports the memory the sampling framework itself occupies (sample
// stores plus per-sampler filters) — the paper reports this as 0.1% of the
// index size in Figure 12.
func (m *Manager[ID, Ctx]) Bytes() int64 {
	_, b := m.StoreStats()
	return b
}

// TrackedUnits returns the number of units currently tracked in the
// central store (TLS-local entries not yet merged are excluded).
func (m *Manager[ID, Ctx]) TrackedUnits() int {
	n, _ := m.StoreStats()
	return n
}

// UpdateContext propagates a context change (e.g. a leaf's parent changed
// after a split) to the tracked entry, if any (Listing 1's UpdateContext).
// In TLS mode only the central store is updated; stale contexts in
// unmerged thread-local maps must be tolerated by the Migrate callback.
func (m *Manager[ID, Ctx]) UpdateContext(id ID, ctx Ctx) {
	if m.shared != nil {
		if _, ok := m.shared.Get(id); ok {
			m.shared.Upsert(id, func(e *entry[Ctx], created bool) {
				if !created {
					e.ctx = ctx
				}
			})
		}
		return
	}
	m.mergeMu.Lock()
	if e := m.local.Ref(id); e != nil {
		e.ctx = ctx
	}
	m.mergeMu.Unlock()
}

// Forget drops a tracked unit (e.g. the index deleted the node).
func (m *Manager[ID, Ctx]) Forget(id ID) {
	if m.shared != nil {
		m.shared.Delete(id)
		return
	}
	m.mergeMu.Lock()
	m.local.Delete(id)
	m.mergeMu.Unlock()
}

// Sampler is the per-goroutine sampling handle: a thread-local skip
// counter (the paper's `static thread_local size_t skip_length`), a Bloom
// filter admitting only re-seen identifiers, and — in TLS mode — the
// thread-local sample map.
type Sampler[ID comparable, Ctx any] struct {
	m           *Manager[ID, Ctx]
	skip        int64
	rng         uint64 // xorshift state for skip jitter
	filter      *bloom.Filter
	filterEpoch uint32
	local       *hashmap.Hopscotch[ID, entry[Ctx]] // TLS mode only
	localCount  int
	quota       int   // TLS: local samples before merging
	reported    int64 // TLS: local map bytes already counted in samplerBytes
}

// NewSampler creates a sampling handle. Each worker goroutine must use its
// own; in SingleThreaded mode create exactly one.
func (m *Manager[ID, Ctx]) NewSampler() *Sampler[ID, Ctx] {
	s := &Sampler[ID, Ctx]{m: m, skip: m.globalSkip.Load(), rng: 0x9e3779b97f4a7c15}
	size := int(m.sampleSize.Load())
	if !m.cfg.DisableBloom {
		s.filter = bloom.New(size/2+1, bloom.BitsPerKey)
		m.samplerBytes.Add(int64(s.filter.Bytes()))
	}
	if m.cfg.Mode == TLS {
		s.local = hashmap.NewHopscotch[ID, entry[Ctx]](m.cfg.Hash, 256)
		s.quota = size/m.cfg.Workers + 1
		// The paper's TLS trade-off: thread-local maps cost extra memory
		// (up to 10x the GS map in their runs); account for them.
		s.reported = int64(s.local.Bytes())
		m.samplerBytes.Add(s.reported)
	}
	return s
}

// IsSample reports whether the current access should be tracked. The
// thread-local counter is decremented without synchronization; only on
// expiry is the shared skip length loaded atomically (§3.1.3), optionally
// jittered so periodic query patterns cannot alias with the stride.
func (s *Sampler[ID, Ctx]) IsSample() bool {
	if s.skip <= 0 {
		sk := s.m.globalSkip.Load()
		if s.m.cfg.RandomizeSkip && sk > 3 {
			s.rng ^= s.rng << 13
			s.rng ^= s.rng >> 7
			s.rng ^= s.rng << 17
			span := sk / 2 // ±25%
			sk += int64(s.rng%uint64(span+1)) - span/2
		}
		s.skip = sk
		return true
	}
	s.skip--
	return false
}

// SampleOffsets advances the sampling counter over n consecutive accesses
// at once, appending the 0-based offsets that are samples to dst.
// Equivalent to n IsSample calls recording the true positions, but in
// O(samples) time — batch operations draw their (rare) sample decisions
// up front without paying the per-access counter walk.
func (s *Sampler[ID, Ctx]) SampleOffsets(n int, dst []int) []int {
	for off := 0; off < n; {
		if s.skip <= 0 {
			sk := s.m.globalSkip.Load()
			if s.m.cfg.RandomizeSkip && sk > 3 {
				s.rng ^= s.rng << 13
				s.rng ^= s.rng >> 7
				s.rng ^= s.rng << 17
				span := sk / 2 // ±25%
				sk += int64(s.rng%uint64(span+1)) - span/2
			}
			s.skip = sk
			dst = append(dst, off)
			off++
			continue
		}
		step := int64(n - off)
		if s.skip < step {
			step = s.skip
		}
		s.skip -= step
		off += int(step)
	}
	return dst
}

// Track records one sampled access to the unit identified by id with the
// given context. The context overwrites the stored one (it is the most
// recent known parent); counters reset when the entry's epoch is stale.
func (s *Sampler[ID, Ctx]) Track(id ID, at AccessType, ctx Ctx) {
	m := s.m
	if x := m.cfg.Obs; x != nil {
		x.Samples.Inc()
	}
	epoch := m.epoch.Load()
	if s.filter != nil {
		// Reset the filter lazily when a new phase began.
		if fe := m.filterEpoch.Load(); fe != s.filterEpoch {
			s.filter.Reset()
			s.filterEpoch = fe
		}
		if s.filter.AddIfNew(m.cfg.Hash(id)) {
			// First sighting in this phase: admit to the filter only; the
			// map stays untouched (keeps one-off cold nodes out).
			return
		}
	}
	update := func(e *entry[Ctx], _ bool) {
		if e.stats.LastEpoch != epoch {
			e.stats.Reads, e.stats.Writes = 0, 0
			e.stats.LastEpoch = epoch
		}
		e.stats.Count(at)
		e.ctx = ctx
	}
	switch m.cfg.Mode {
	case GS:
		m.shared.Upsert(id, update)
		if m.sampled.Add(1) >= m.sampleSize.Load() {
			s.tryAdapt(epoch)
		}
	case TLS:
		s.local.Upsert(id, update)
		s.localCount++
		if s.localCount >= s.quota {
			s.merge(epoch)
		}
	default:
		m.local.Upsert(id, update)
		m.sampled.Add(1)
		if m.sampled.Load() >= m.sampleSize.Load() {
			m.adapt(epoch)
		}
	}
}

// merge flushes a TLS sampler's local map into the central store; if that
// completes the global sample, this worker runs the adaptation while the
// others keep sampling (§3.1.5).
func (s *Sampler[ID, Ctx]) merge(epoch uint32) {
	m := s.m
	m.mergeMu.Lock()
	s.local.Range(func(id ID, e *entry[Ctx]) bool {
		m.local.Upsert(id, func(dst *entry[Ctx], created bool) {
			if created || dst.stats.LastEpoch != e.stats.LastEpoch {
				if dst.stats.LastEpoch < e.stats.LastEpoch || created {
					hist, histLen := dst.stats.History, dst.stats.HistoryLen
					dst.stats = e.stats
					if !created {
						dst.stats.History, dst.stats.HistoryLen = hist, histLen
					}
					dst.ctx = e.ctx
				}
				return
			}
			dst.stats.Reads += e.stats.Reads
			dst.stats.Writes += e.stats.Writes
			dst.ctx = e.ctx
		})
		return true
	})
	m.mergeMu.Unlock()
	// Refresh this sampler's share of the framework footprint (the local
	// map is at its high-water mark right before Clear keeps capacity).
	if now := int64(s.local.Bytes()); now != s.reported {
		m.samplerBytes.Add(now - s.reported)
		s.reported = now
	}
	merged := s.localCount
	s.local.Clear()
	s.localCount = 0
	s.quota = int(m.sampleSize.Load())/m.cfg.Workers + 1
	if m.sampled.Add(int64(merged)) >= m.sampleSize.Load() {
		s.tryAdapt(epoch)
	}
}

// Flush force-merges any locally buffered samples (TLS mode); call when a
// worker retires. No-op in other modes.
func (s *Sampler[ID, Ctx]) Flush() {
	if s.local != nil && s.localCount > 0 {
		s.merge(s.m.epoch.Load())
	}
}

// tryAdapt lets exactly one worker run the adaptation for this phase.
func (s *Sampler[ID, Ctx]) tryAdapt(epoch uint32) {
	m := s.m
	if !m.adapting.CompareAndSwap(false, true) {
		return
	}
	defer m.adapting.Store(false)
	if m.epoch.Load() != epoch {
		return // another worker already completed this phase
	}
	m.adapt(epoch)
}
