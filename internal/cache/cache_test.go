package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewSizing(t *testing.T) {
	if c := New(10); c != nil {
		t.Fatalf("tiny budget should disable the cache")
	}
	c := New(1 << 20)
	if c == nil {
		t.Fatal("1MB cache is nil")
	}
	if got := c.Bytes(); got <= 0 || got > 1<<20 {
		t.Fatalf("Bytes() = %d, want (0, 1MB]", got)
	}
	// Power-of-two bucket count: Bytes is a power of two times ways*slotBytes.
	if b := uint64(c.Bytes()) / (ways * slotBytes); b&(b-1) != 0 {
		t.Fatalf("bucket count %d not a power of two", b)
	}
	// A budget between powers of two widens the buckets (extra ways)
	// instead of stranding the remainder on the pow2 floor.
	wide := New(3 << 19) // 1.5MB: same bucket count as 1MB, 6 ways
	if wide.ways != 6 || wide.Bytes() != 3<<19 {
		t.Fatalf("1.5MB cache: ways=%d bytes=%d, want 6 ways spending all 1572864", wide.ways, wide.Bytes())
	}
	if got := uint64(c.Bytes()) / slotBytes; wide.ways*(wide.mask.Load()+1) <= got {
		t.Fatal("widened cache should hold more slots than the pow2 floor")
	}
	if (*Cache)(nil).Bytes() != 0 || (*Cache)(nil).Len() != 0 {
		t.Fatal("nil cache accessors should be zero")
	}
	if (Stats{}) != (*Cache)(nil).Stats() {
		t.Fatal("nil cache stats should be zero")
	}
}

func TestProbeAdmitInvalidate(t *testing.T) {
	c := New(1 << 16)
	if _, ok := c.Probe(42); ok {
		t.Fatal("empty cache hit")
	}
	snap := c.Snap(42)
	c.Admit(42, 1000, snap, false, true)
	v, ok := c.Probe(42)
	if !ok || v != 1000 {
		t.Fatalf("Probe(42) = %d,%v want 1000,true", v, ok)
	}
	c.Invalidate(42)
	if _, ok := c.Probe(42); ok {
		t.Fatal("hit after Invalidate")
	}
	st := c.Stats()
	if st.Admitted != 1 || st.Invalidations != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmitAbortsOnStaleSnap(t *testing.T) {
	c := New(1 << 16)
	snap := c.Snap(7)
	c.Invalidate(7) // bumps the stripe: snap is now stale
	c.Admit(7, 99, snap, false, true)
	if _, ok := c.Probe(7); ok {
		t.Fatal("stale admission was accepted")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
	// A fresh snapshot taken after the write admits fine.
	c.Admit(7, 99, c.Snap(7), false, true)
	if v, ok := c.Probe(7); !ok || v != 99 {
		t.Fatalf("fresh admit lost: %d,%v", v, ok)
	}
}

func TestBumpStripesAbortsCoveredKeys(t *testing.T) {
	c := New(1 << 16)
	k := uint64(12345)
	snap := c.Snap(k)
	var mask [4]uint64
	st := StripeOf(k)
	mask[st>>6] |= 1 << (st & 63)
	c.BumpStripes(&mask)
	c.Admit(k, 1, snap, false, true)
	if _, ok := c.Probe(k); ok {
		t.Fatal("admission survived a stripe bump")
	}
	// A key on an untouched stripe is unaffected.
	var other uint64
	for other = 1; StripeOf(other) == st; other++ {
	}
	osnap := c.Snap(other)
	c.Admit(other, 2, osnap, false, true)
	if _, ok := c.Probe(other); !ok {
		t.Fatal("unrelated stripe was aborted")
	}
}

func TestHotAdmissionOutlivesProbation(t *testing.T) {
	c := New(minBytes) // one active bucket after pow2Floor: forces conflict
	if c == nil {
		t.Fatal("minBytes cache is nil")
	}
	c.Admit(1, 10, c.Snap(1), true, true) // hot: freq 2
	// Fill the remaining ways and then overflow with probationary keys;
	// the hot entry should survive eviction pressure.
	for k := uint64(2); k < 40; k++ {
		c.Admit(k, k, c.Snap(k), false, true)
	}
	if v, ok := c.Probe(1); !ok || v != 10 {
		t.Fatalf("hot entry evicted by probationary churn: %d,%v", v, ok)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions under overflow")
	}
}

// TestEvictGate pins the doorkeeper contract: evictOK=false admissions
// fill empty ways and refresh a key's own slot but never displace a live
// entry, so an invalidated hot key re-enters immediately while a tail
// singleton cannot churn a full bucket.
func TestEvictGate(t *testing.T) {
	c := New(minBytes)
	// Collect keys that all land in the same bucket.
	target := mix(1) & c.mask.Load()
	var fill []uint64
	for k := uint64(1); len(fill) < ways+2; k++ {
		if mix(k)&c.mask.Load() == target {
			fill = append(fill, k)
		}
	}
	stranger, stranger2 := fill[ways], fill[ways+1]
	fill = fill[:ways]
	for _, k := range fill {
		c.Admit(k, k*10, c.Snap(k), false, false)
	}
	if got := c.Len(); got != ways {
		t.Fatalf("gated fill of empty ways stored %d entries, want %d", got, ways)
	}
	rejBefore := c.Stats().Rejected
	c.Admit(stranger, 1, c.Snap(stranger), false, false)
	if _, ok := c.Probe(stranger); ok {
		t.Fatal("gated admission evicted a live entry")
	}
	if c.Stats().Rejected == rejBefore {
		t.Fatal("gated bounce not counted as rejected")
	}
	// Refreshing a resident key stays allowed under the gate.
	c.Admit(fill[0], 77, c.Snap(fill[0]), false, false)
	if v, ok := c.Probe(fill[0]); !ok || v != 77 {
		t.Fatalf("own-slot refresh gated: %d,%v", v, ok)
	}
	// Invalidation empties the slot; the next gated admission takes it.
	c.Invalidate(fill[1])
	c.Admit(stranger, 2, c.Snap(stranger), false, false)
	if v, ok := c.Probe(stranger); !ok || v != 2 {
		t.Fatalf("gated admission could not fill an emptied way: %d,%v", v, ok)
	}
	// An ungated admission into a full bucket does evict.
	evBefore := c.Stats().Evictions
	c.Admit(stranger2, 3, c.Snap(stranger2), false, true)
	if c.Stats().Evictions == evBefore {
		t.Fatal("evictOK admission did not evict from a full bucket")
	}
}

func TestUpdateInPlaceViaAdmit(t *testing.T) {
	c := New(1 << 16)
	c.Admit(5, 1, c.Snap(5), false, true)
	c.Admit(5, 2, c.Snap(5), false, true) // same key: refresh, not a second slot
	if v, ok := c.Probe(5); !ok || v != 2 {
		t.Fatalf("Probe(5) = %d,%v want 2,true", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestResize(t *testing.T) {
	c := New(1 << 20)
	full := c.Bytes()
	c.Admit(9, 90, c.Snap(9), false, true)
	c.Resize(1 << 14)
	if c.Bytes() >= full || c.Bytes() > 1<<14 {
		t.Fatalf("shrink: Bytes = %d (full %d)", c.Bytes(), full)
	}
	if _, ok := c.Probe(9); ok {
		t.Fatal("resize must clear the table")
	}
	// Grow back: clamped to the original allocation.
	c.Resize(1 << 30)
	if c.Bytes() != full {
		t.Fatalf("grow: Bytes = %d, want %d", c.Bytes(), full)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after clearing resize", c.Len())
	}
	c.Admit(9, 91, c.Snap(9), false, true)
	if v, ok := c.Probe(9); !ok || v != 91 {
		t.Fatalf("cache dead after resize: %d,%v", v, ok)
	}
}

// TestConcurrentStrict hammers a small cache with writers that keep the
// authoritative value monotonically increasing (bump stripe + invalidate,
// like the tree write path) and readers that must never observe a value
// going backwards — the observable symptom of a stale cache read.
func TestConcurrentStrict(t *testing.T) {
	c := New(minBytes) // tiny: maximize slot reuse and eviction races
	const keys = 8
	var truth [keys]atomic.Uint64
	var stop atomic.Bool
	var writers, readers sync.WaitGroup

	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			for i := seed; !stop.Load(); i++ {
				k := i % keys
				truth[k].Add(1)
				c.Invalidate(k)
			}
		}(uint64(w))
	}
	// One goroutine resizing concurrently: must not break strictness.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for !stop.Load() {
			c.Resize(minBytes / 2)
			c.Resize(minBytes)
		}
	}()

	errc := make(chan string, 4)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last [keys]uint64
			for i := uint64(0); i < 200000; i++ {
				k := i % keys
				v, ok := c.Probe(k)
				if !ok {
					snap := c.Snap(k)
					v = truth[k].Load() // the "tree lookup"
					c.Admit(k, v, snap, i%16 == 0, true)
				}
				if v < last[k] {
					select {
					case errc <- "stale read: cached value went backwards":
					default:
					}
					return
				}
				last[k] = v
			}
		}()
	}

	readers.Wait()
	stop.Store(true)
	writers.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}
