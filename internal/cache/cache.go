// Package cache implements a lock-cheap hot-key result cache for the
// adaptive index read path.
//
// Layout: a fixed allocation of set-associative buckets (4–7 ways, sized
// to spend the configured byte budget — see New). Every slot
// field is atomic and guarded by a per-slot seqlock (ver odd = writer in
// the critical section), so readers never block and the package is clean
// under -race. Admission follows the S3-FIFO/CLOCK spirit: new entries
// enter on probation (freq 0), probe hits bump a saturating frequency,
// eviction picks the minimum-frequency way and ages the rest. Entries
// observed by the hotness sampler are admitted pre-warmed.
//
// Strictness: values enter only through Admit, which carries a stripe
// epoch snapshot taken BEFORE the tree lookup that produced the value.
// Every tree write (insert-overwrite, delete, leaf migration/rekey) first
// bumps the key's stripe epoch and then clears any matching slot. Admit
// re-checks the stripe epoch while holding the slot seqlock and aborts if
// it moved; invalidation scans spin on (never skip) locked slots. Either
// the admitter's in-lock check sees the bump and aborts, or the admitter
// finished first and the invalidation scan waits on its lock and clears
// the entry. Stale hits are therefore impossible once a write returns.
package cache

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// ways is the MINIMUM bucket associativity. A slot is 32 bytes, so a
	// 4-way bucket is two cache lines. The bucket count must be a power
	// of two (the index is a mask), which alone would strand up to half
	// the configured bytes; the constructor instead widens buckets up to
	// maxWays to spend the remainder, so a budget slice between powers of
	// two still buys capacity (associativity helps hit rate too).
	ways    = 4
	maxWays = 7
	// slotBytes is the accounted footprint of one slot.
	slotBytes = 32
	// stripeCount is the number of invalidation epochs. Writers bump one
	// stripe per key; admitters validate against it.
	stripeCount = 256
	// maxMeta caps the CLOCK frequency at 3: meta = (freq<<1)|1.
	maxMeta = 7
	// minBytes is the smallest useful cache: below one bucket of slack
	// the constructor reports nil and the caller runs uncached.
	minBytes = 4 * ways * slotBytes
)

// slot is one cached (key, value) pair. ver is a seqlock: odd while a
// writer owns the slot; key/val/meta only change under an odd ver. meta
// is 0 when empty, otherwise (freq<<1)|1; frequency maintenance uses CAS
// outside the lock so it can never resurrect a concurrently-cleared slot.
type slot struct {
	ver  atomic.Uint64
	key  atomic.Uint64
	val  atomic.Uint64
	meta atomic.Uint64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits          int64
	Misses        int64
	Admitted      int64
	Rejected      int64 // admissions aborted by a stripe epoch move or lock contention
	Invalidations int64 // write-path slot clears (entry was present)
	Evictions     int64 // occupied slots overwritten by admission
}

// Cache is a per-tree (per-shard) result cache. The slot array is
// allocated once; Resize moves an active-bucket mask within it so the
// accounted footprint can follow budget rebalancing without reallocation.
type Cache struct {
	slots   []slot
	ways    uint64        // bucket associativity, fixed at construction
	mask    atomic.Uint64 // active bucket count - 1 (power of two)
	stripes [stripeCount]atomic.Uint64

	hits     atomic.Int64
	misses   atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	invals   atomic.Int64
	evicts   atomic.Int64

	resizeMu sync.Mutex
	alloc    uint64 // allocated bucket count
}

// New builds a cache fitting in bytes: the largest power-of-two bucket
// count at minimum associativity, then buckets widened (up to maxWays
// slots each) to spend what the power-of-two rounding would strand.
// Returns nil when bytes is too small to be useful — callers treat a nil
// *Cache as "disabled".
func New(bytes int64) *Cache {
	if bytes < minBytes {
		return nil
	}
	buckets := pow2Floor(uint64(bytes) / (ways * slotBytes))
	w := uint64(bytes) / (buckets * slotBytes)
	if w > maxWays {
		w = maxWays
	}
	c := &Cache{
		slots: make([]slot, buckets*w),
		ways:  w,
		alloc: buckets,
	}
	c.mask.Store(buckets - 1)
	return c
}

func pow2Floor(n uint64) uint64 {
	p := uint64(1)
	for p<<1 <= n {
		p <<= 1
	}
	return p
}

// mix is splitmix64's finalizer: full-avalanche so bucket bits (low) and
// stripe bits (high) are independent.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// StripeOf reports which invalidation stripe covers key k. Exported so
// callers batching invalidations (leaf migration) can dedup stripes.
func StripeOf(k uint64) uint64 { return mix(k) >> 56 }

// Snap returns the current invalidation epoch for k's stripe. Callers
// take it BEFORE the authoritative tree lookup and pass it to Admit.
func (c *Cache) Snap(k uint64) uint64 {
	return c.stripes[mix(k)>>56].Load()
}

// Probe looks k up. A hit is always the value of a tree read linearized
// no earlier than the last completed write of k (writers clear slots
// synchronously before returning).
func (c *Cache) Probe(k uint64) (uint64, bool) {
	v, _, _, ok := c.probe(mix(k), k, false)
	return v, ok
}

// ProbeOrSnap combines Probe with the miss-path stripe snapshot: one hash
// and one stripe-line touch instead of two. On a hit snap is meaningless;
// on a miss it is the invalidation epoch to pass to Admit.
func (c *Cache) ProbeOrSnap(k uint64) (v, snap uint64, ok bool) {
	v, snap, _, ok = c.probe(mix(k), k, true)
	return v, snap, ok
}

// ProbeOrSnapProf is ProbeOrSnap plus the probe's torn-slot count: how
// many ways the seqlock observed mid-write (version odd, or changed
// between the reads). The flight recorder tags ops whose probe raced
// concurrent cache writers with it.
func (c *Cache) ProbeOrSnapProf(k uint64) (v, snap uint64, torn int32, ok bool) {
	return c.probe(mix(k), k, true)
}

func (c *Cache) probe(h, k uint64, wantSnap bool) (v, snap uint64, torn int32, ok bool) {
	base := (h & c.mask.Load()) * c.ways
	for i := uint64(0); i < c.ways; i++ {
		sl := &c.slots[base+i]
		v1 := sl.ver.Load()
		key := sl.key.Load()
		if v1&1 != 0 {
			torn++
			continue
		}
		if key != k {
			continue
		}
		m := sl.meta.Load()
		val := sl.val.Load()
		if sl.ver.Load() != v1 {
			torn++
			continue // torn: treat as miss, the tree is authoritative
		}
		if m&1 == 0 {
			continue // empty way
		}
		if m < maxMeta {
			sl.meta.CompareAndSwap(m, m+2) // best-effort frequency bump
		}
		c.hits.Add(1)
		return val, 0, torn, true
	}
	c.misses.Add(1)
	if wantSnap {
		snap = c.stripes[h>>56].Load()
	}
	return 0, snap, torn, false
}

// Admit publishes (k, v) obtained from a tree lookup that began after
// stripe snapshot snap. hot marks entries the hotness sampler observed:
// they enter with frequency 2 instead of on probation. evictOK is the
// caller's admission-doorkeeper verdict: refreshing k's own slot or
// filling an empty way is always allowed (an invalidated hot key re-enters
// on its first post-write miss), but displacing a live entry needs hot or
// evictOK — under a skewed workload most misses are tail singletons not
// worth an eviction. Admission is best-effort: contention or a concurrent
// write of k drops it.
func (c *Cache) Admit(k, v uint64, snap uint64, hot, evictOK bool) {
	h := mix(k)
	stripe := &c.stripes[h>>56]
	if stripe.Load() != snap {
		c.rejected.Add(1)
		return
	}
	base := (h & c.mask.Load()) * c.ways
	// Victim choice: k's own slot if cached, else an empty way, else the
	// minimum-frequency way (CLOCK).
	var victim *slot
	ownerK := false
	minMeta := uint64(maxMeta + 2)
	for i := uint64(0); i < c.ways; i++ {
		sl := &c.slots[base+i]
		m := sl.meta.Load()
		if m&1 == 0 {
			if minMeta != 0 {
				victim, minMeta = sl, 0
			}
			continue
		}
		if sl.key.Load() == k {
			victim, minMeta, ownerK = sl, m, true
			break
		}
		if m < minMeta {
			victim, minMeta = sl, m
		}
	}
	if minMeta != 0 && !ownerK {
		if !hot && !evictOK {
			c.rejected.Add(1)
			return
		}
		// A real eviction. When even the victim has earned hits (no
		// probationary way left), age every resident by one (CLOCK): the
		// bucket is all-established and must decay to stay adaptive.
		// While probationary entries remain they absorb the churn and
		// established entries keep their earned frequency.
		if minMeta > 1 {
			for i := uint64(0); i < c.ways; i++ {
				sl := &c.slots[base+i]
				if sl == victim {
					continue
				}
				if m := sl.meta.Load(); m > 1 {
					sl.meta.CompareAndSwap(m, m-2)
				}
			}
		}
	}
	v0 := victim.ver.Load()
	if v0&1 != 0 || !victim.ver.CompareAndSwap(v0, v0+1) {
		c.rejected.Add(1) // writer or another admitter owns the slot
		return
	}
	// Re-check the stripe under the lock: a concurrent writer that bumped
	// it after our pre-check is now obligated to scan this bucket and
	// will spin on our odd ver — unless we abort here, which covers the
	// case where the bump happened before we took the lock.
	if stripe.Load() != snap {
		victim.ver.Store(v0 + 2)
		c.rejected.Add(1)
		return
	}
	if victim.meta.Load()&1 == 1 && victim.key.Load() != k {
		c.evicts.Add(1)
	}
	victim.key.Store(k)
	victim.val.Store(v)
	if hot {
		victim.meta.Store(2<<1 | 1)
	} else {
		victim.meta.Store(0<<1 | 1)
	}
	victim.ver.Store(v0 + 2)
	c.admitted.Add(1)
}

// Invalidate removes k after a tree write (overwrite, delete, rekey).
// It bumps k's stripe epoch first — aborting in-flight admissions — then
// clears matching slots, spinning on locked ones so a racing admission
// that already passed its epoch check cannot leave a stale entry behind.
func (c *Cache) Invalidate(k uint64) {
	h := mix(k)
	c.stripes[h>>56].Add(1)
	base := (h & c.mask.Load()) * c.ways
	for i := uint64(0); i < c.ways; i++ {
		sl := &c.slots[base+i]
		for {
			v0 := sl.ver.Load()
			if v0&1 != 0 {
				runtime.Gosched() // writer in critical section: wait, never skip
				continue
			}
			if sl.key.Load() != k || sl.meta.Load()&1 == 0 {
				// Not our key. An admitter writing k right now holds the
				// lock (caught above); one starting later re-checks the
				// stripe we already bumped and aborts.
				break
			}
			if !sl.ver.CompareAndSwap(v0, v0+1) {
				continue
			}
			if sl.key.Load() == k && sl.meta.Load()&1 == 1 {
				sl.meta.Store(0)
				c.invals.Add(1)
			}
			sl.ver.Store(v0 + 2)
			break
		}
	}
}

// BumpStripes publishes an invalidation epoch for every stripe set in
// mask (a 256-bit set indexed by StripeOf). Leaf migrations use it to
// fence in-flight admissions against the retired leaf image without
// walking individual slots: cached values stay correct (migration does
// not change the key→value mapping), only pending admissions abort.
func (c *Cache) BumpStripes(mask *[4]uint64) {
	for w := 0; w < 4; w++ {
		set := mask[w]
		for set != 0 {
			c.stripes[w*64+bits.TrailingZeros64(set)].Add(1)
			set &= set - 1
		}
	}
}

// Resize adjusts the active footprint toward bytes, clamped to the
// original allocation. The whole table is cleared first: entries parked
// in buckets that move out of (or back into) the active range must never
// become reachable again with stale contents. Rebalance-driven resizes
// are rare enough that losing the working set is acceptable.
func (c *Cache) Resize(bytes int64) {
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	buckets := uint64(1)
	if bytes >= minBytes {
		buckets = pow2Floor(uint64(bytes) / (c.ways * slotBytes))
	}
	if buckets > c.alloc {
		buckets = c.alloc
	}
	if buckets-1 == c.mask.Load() {
		return
	}
	// Clear before publishing the new mask: a probe racing the resize
	// sees either its old bucket (cleared below, under the slot lock) or
	// the new one (also cleared) — never a stale survivor.
	for i := range c.slots {
		sl := &c.slots[i]
		for {
			v0 := sl.ver.Load()
			if v0&1 != 0 {
				runtime.Gosched()
				continue
			}
			if sl.meta.Load() == 0 {
				break
			}
			if !sl.ver.CompareAndSwap(v0, v0+1) {
				continue
			}
			sl.meta.Store(0)
			sl.ver.Store(v0 + 2)
			break
		}
	}
	c.mask.Store(buckets - 1)
}

// Bytes reports the active accounted footprint — what the adaptation
// manager charges against the memory budget.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return int64((c.mask.Load() + 1) * c.ways * slotBytes)
}

// Len counts occupied active slots (diagnostic; O(active slots)).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	active := (c.mask.Load() + 1) * c.ways
	for i := uint64(0); i < active; i++ {
		if c.slots[i].meta.Load()&1 == 1 {
			n++
		}
	}
	return n
}

// Stats snapshots the counters. Safe on a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Admitted:      c.admitted.Load(),
		Rejected:      c.rejected.Load(),
		Invalidations: c.invals.Load(),
		Evictions:     c.evicts.Load(),
	}
}
