package art

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Serialization (version 2). The arenas are flat slices, so the on-disk
// form is a direct dump: header, scalar fields, each arena as a
// little-endian stream, then a CRC-32C trailer word covering every
// preceding byte. Freelists are persisted so slot recycling resumes
// exactly where it left off. Version-1 streams (no trailer) still load;
// writers always emit version 2.
const (
	artMagic   = uint64(0x4148494152543031) // "AHIART01"
	artVersion = uint64(2)
)

// ErrCorrupt is wrapped by every decode error caused by a damaged stream
// — bad magic, truncation, implausible section lengths, or a checksum
// mismatch — as opposed to I/O failures from the underlying reader.
var ErrCorrupt = errors.New("art: corrupt stream")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type leWriter struct {
	w       *bufio.Writer
	written int64
	crc     uint32
	err     error
}

func (lw *leWriter) raw(b []byte) {
	if lw.err != nil {
		return
	}
	lw.crc = crc32.Update(lw.crc, castagnoli, b)
	n, err := lw.w.Write(b)
	lw.written += int64(n)
	lw.err = err
}

func (lw *leWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	lw.raw(buf[:])
}

func (lw *leWriter) bytes(b []byte) {
	lw.u64(uint64(len(b)))
	lw.raw(b)
}

func (lw *leWriter) u32s(s []uint32) {
	lw.u64(uint64(len(s)))
	for _, v := range s {
		lw.u64(uint64(v))
	}
}

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	lw := &leWriter{w: bufio.NewWriter(w)}
	lw.u64(artMagic)
	lw.u64(artVersion)
	lw.u64(uint64(t.root))
	lw.u64(uint64(t.size))

	lw.u64(uint64(len(t.n4)))
	for i := range t.n4 {
		n := &t.n4[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 4; j++ {
			lw.u64(uint64(n.keys[j]))
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n16)))
	for i := range t.n16 {
		n := &t.n16[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 16; j++ {
			lw.u64(uint64(n.keys[j]))
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n48)))
	for i := range t.n48 {
		n := &t.n48[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		lw.raw(n.childIndex[:])
		for j := 0; j < 48; j++ {
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n256)))
	for i := range t.n256 {
		n := &t.n256[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 256; j++ {
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.leaves)))
	for i := range t.leaves {
		lw.u64(t.leaves[i].keyOff)
		lw.u64(uint64(t.leaves[i].keyLen))
		lw.u64(t.leaves[i].val)
	}
	lw.bytes(t.keyArena)
	lw.bytes(t.prefixArena)
	lw.u32s(t.free4)
	lw.u32s(t.free16)
	lw.u32s(t.free48)
	lw.u32s(t.free256)
	lw.u32s(t.freeLeaf)
	// Trailer: the running CRC, itself excluded from the checksum.
	trailer := lw.crc
	lw.u64(uint64(trailer))
	if lw.err != nil {
		return lw.written, lw.err
	}
	return lw.written, lw.w.Flush()
}

type leReader struct {
	r   *bufio.Reader
	crc uint32
	err error
}

func (lr *leReader) raw(b []byte) {
	if lr.err != nil {
		return
	}
	if _, err := io.ReadFull(lr.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("truncated: %w", ErrCorrupt)
		}
		lr.err = err
		return
	}
	lr.crc = crc32.Update(lr.crc, castagnoli, b)
}

func (lr *leReader) u64() uint64 {
	var buf [8]byte
	lr.raw(buf[:])
	if lr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (lr *leReader) count(limit uint64) int {
	n := lr.u64()
	if lr.err == nil && n > limit {
		lr.err = fmt.Errorf("art: implausible section length %d: %w", n, ErrCorrupt)
	}
	if lr.err != nil {
		return 0
	}
	return int(n)
}

// bytes reads a length-prefixed byte section in bounded chunks so a
// corrupt length cannot force a huge up-front allocation: the buffer only
// grows as data actually arrives.
func (lr *leReader) bytes() []byte {
	n := lr.count(1 << 40)
	if lr.err != nil {
		return nil
	}
	out := make([]byte, 0, min(n, 1<<20))
	var chunk [64 << 10]byte
	for len(out) < n && lr.err == nil {
		c := min(n-len(out), len(chunk))
		lr.raw(chunk[:c])
		out = append(out, chunk[:c]...)
	}
	if lr.err != nil {
		return nil
	}
	return out
}

func (lr *leReader) u32s() []uint32 {
	n := lr.count(1 << 32)
	if lr.err != nil {
		return nil
	}
	out := make([]uint32, 0, min(n, 1<<16))
	for i := 0; i < n && lr.err == nil; i++ {
		out = append(out, uint32(lr.u64()))
	}
	return out
}

// ReadTree deserializes a tree written by WriteTo.
func ReadTree(r io.Reader) (*Tree, error) {
	lr := &leReader{r: bufio.NewReader(r)}
	if m := lr.u64(); lr.err == nil && m != artMagic {
		return nil, fmt.Errorf("art: bad magic %#x: %w", m, ErrCorrupt)
	}
	version := lr.u64()
	if lr.err == nil && version != 1 && version != artVersion {
		return nil, fmt.Errorf("art: unsupported version %d: %w", version, ErrCorrupt)
	}
	t := New()
	t.root = Handle(lr.u64())
	t.size = int(lr.u64())

	readHdr := func() header {
		pp := lr.u64()
		nc := lr.u64()
		return header{prefixOff: uint32(pp >> 32), prefixLen: uint32(pp), numChildren: uint16(nc)}
	}
	// Arena loops abort at the first stream error and grow by append, so a
	// corrupt count neither allocates a huge arena up front nor spins
	// through billions of empty reads.
	n4 := lr.count(1 << 32)
	t.n4 = make([]node4, 0, min(n4, 1<<12))
	for i := 0; i < n4 && lr.err == nil; i++ {
		var nd node4
		nd.header = readHdr()
		for j := 0; j < 4; j++ {
			nd.keys[j] = byte(lr.u64())
			nd.children[j] = Handle(lr.u64())
		}
		t.n4 = append(t.n4, nd)
	}
	n16 := lr.count(1 << 32)
	t.n16 = make([]node16, 0, min(n16, 1<<12))
	for i := 0; i < n16 && lr.err == nil; i++ {
		var nd node16
		nd.header = readHdr()
		for j := 0; j < 16; j++ {
			nd.keys[j] = byte(lr.u64())
			nd.children[j] = Handle(lr.u64())
		}
		t.n16 = append(t.n16, nd)
	}
	n48 := lr.count(1 << 32)
	t.n48 = make([]node48, 0, min(n48, 1<<10))
	for i := 0; i < n48 && lr.err == nil; i++ {
		var nd node48
		nd.header = readHdr()
		lr.raw(nd.childIndex[:])
		for j := 0; j < 48; j++ {
			nd.children[j] = Handle(lr.u64())
		}
		t.n48 = append(t.n48, nd)
	}
	n256 := lr.count(1 << 32)
	t.n256 = make([]node256, 0, min(n256, 1<<8))
	for i := 0; i < n256 && lr.err == nil; i++ {
		var nd node256
		nd.header = readHdr()
		for j := 0; j < 256; j++ {
			nd.children[j] = Handle(lr.u64())
		}
		t.n256 = append(t.n256, nd)
	}
	nLeaves := lr.count(1 << 40)
	t.leaves = make([]leafEntry, 0, min(nLeaves, 1<<16))
	for i := 0; i < nLeaves && lr.err == nil; i++ {
		var le leafEntry
		le.keyOff = lr.u64()
		le.keyLen = uint32(lr.u64())
		le.val = lr.u64()
		t.leaves = append(t.leaves, le)
	}
	t.keyArena = lr.bytes()
	t.prefixArena = lr.bytes()
	t.free4 = lr.u32s()
	t.free16 = lr.u32s()
	t.free48 = lr.u32s()
	t.free256 = lr.u32s()
	t.freeLeaf = lr.u32s()
	if version == artVersion && lr.err == nil {
		// Snapshot before the trailer word feeds the hash; compare the full
		// word so flips in its zero upper half are caught too.
		want := uint64(lr.crc)
		if got := lr.u64(); lr.err == nil && got != want {
			return nil, fmt.Errorf("art: checksum mismatch %#x != %#x: %w", got, want, ErrCorrupt)
		}
	}
	if lr.err != nil {
		return nil, fmt.Errorf("art: reading tree: %w", lr.err)
	}
	return t, nil
}
