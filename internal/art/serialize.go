package art

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization (version 1). The arenas are flat slices, so the on-disk
// form is a direct dump: header, scalar fields, then each arena as a
// little-endian stream. Freelists are persisted so slot recycling resumes
// exactly where it left off.
const (
	artMagic   = uint64(0x4148494152543031) // "AHIART01"
	artVersion = uint64(1)
)

type leWriter struct {
	w       *bufio.Writer
	written int64
	err     error
}

func (lw *leWriter) u64(v uint64) {
	if lw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	n, err := lw.w.Write(buf[:])
	lw.written += int64(n)
	lw.err = err
}

func (lw *leWriter) bytes(b []byte) {
	if lw.err != nil {
		return
	}
	lw.u64(uint64(len(b)))
	if lw.err != nil {
		return
	}
	n, err := lw.w.Write(b)
	lw.written += int64(n)
	lw.err = err
}

func (lw *leWriter) u32s(s []uint32) {
	lw.u64(uint64(len(s)))
	for _, v := range s {
		lw.u64(uint64(v))
	}
}

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	lw := &leWriter{w: bufio.NewWriter(w)}
	lw.u64(artMagic)
	lw.u64(artVersion)
	lw.u64(uint64(t.root))
	lw.u64(uint64(t.size))

	lw.u64(uint64(len(t.n4)))
	for i := range t.n4 {
		n := &t.n4[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 4; j++ {
			lw.u64(uint64(n.keys[j]))
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n16)))
	for i := range t.n16 {
		n := &t.n16[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 16; j++ {
			lw.u64(uint64(n.keys[j]))
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n48)))
	for i := range t.n48 {
		n := &t.n48[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		if lw.err == nil {
			nn, err := lw.w.Write(n.childIndex[:])
			lw.written += int64(nn)
			lw.err = err
		}
		for j := 0; j < 48; j++ {
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.n256)))
	for i := range t.n256 {
		n := &t.n256[i]
		lw.u64(uint64(n.prefixOff)<<32 | uint64(n.prefixLen))
		lw.u64(uint64(n.numChildren))
		for j := 0; j < 256; j++ {
			lw.u64(uint64(n.children[j]))
		}
	}
	lw.u64(uint64(len(t.leaves)))
	for i := range t.leaves {
		lw.u64(t.leaves[i].keyOff)
		lw.u64(uint64(t.leaves[i].keyLen))
		lw.u64(t.leaves[i].val)
	}
	lw.bytes(t.keyArena)
	lw.bytes(t.prefixArena)
	lw.u32s(t.free4)
	lw.u32s(t.free16)
	lw.u32s(t.free48)
	lw.u32s(t.free256)
	lw.u32s(t.freeLeaf)
	if lw.err != nil {
		return lw.written, lw.err
	}
	return lw.written, lw.w.Flush()
}

type leReader struct {
	r   *bufio.Reader
	err error
}

func (lr *leReader) u64() uint64 {
	if lr.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(lr.r, buf[:]); err != nil {
		lr.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (lr *leReader) count(limit uint64) int {
	n := lr.u64()
	if lr.err == nil && n > limit {
		lr.err = fmt.Errorf("art: implausible section length %d", n)
	}
	return int(n)
}

func (lr *leReader) bytes() []byte {
	n := lr.count(1 << 40)
	if lr.err != nil {
		return nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(lr.r, out); err != nil {
		lr.err = err
		return nil
	}
	return out
}

func (lr *leReader) u32s() []uint32 {
	n := lr.count(1 << 32)
	if lr.err != nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(lr.u64())
	}
	return out
}

// ReadTree deserializes a tree written by WriteTo.
func ReadTree(r io.Reader) (*Tree, error) {
	lr := &leReader{r: bufio.NewReader(r)}
	if m := lr.u64(); lr.err == nil && m != artMagic {
		return nil, fmt.Errorf("art: bad magic %#x", m)
	}
	if v := lr.u64(); lr.err == nil && v != artVersion {
		return nil, fmt.Errorf("art: unsupported version %d", v)
	}
	t := New()
	t.root = Handle(lr.u64())
	t.size = int(lr.u64())

	readHdr := func() header {
		pp := lr.u64()
		nc := lr.u64()
		return header{prefixOff: uint32(pp >> 32), prefixLen: uint32(pp), numChildren: uint16(nc)}
	}
	t.n4 = make([]node4, lr.count(1<<32))
	for i := range t.n4 {
		t.n4[i].header = readHdr()
		for j := 0; j < 4; j++ {
			t.n4[i].keys[j] = byte(lr.u64())
			t.n4[i].children[j] = Handle(lr.u64())
		}
	}
	t.n16 = make([]node16, lr.count(1<<32))
	for i := range t.n16 {
		t.n16[i].header = readHdr()
		for j := 0; j < 16; j++ {
			t.n16[i].keys[j] = byte(lr.u64())
			t.n16[i].children[j] = Handle(lr.u64())
		}
	}
	t.n48 = make([]node48, lr.count(1<<32))
	for i := range t.n48 {
		t.n48[i].header = readHdr()
		if lr.err == nil {
			if _, err := io.ReadFull(lr.r, t.n48[i].childIndex[:]); err != nil {
				lr.err = err
			}
		}
		for j := 0; j < 48; j++ {
			t.n48[i].children[j] = Handle(lr.u64())
		}
	}
	t.n256 = make([]node256, lr.count(1<<32))
	for i := range t.n256 {
		t.n256[i].header = readHdr()
		for j := 0; j < 256; j++ {
			t.n256[i].children[j] = Handle(lr.u64())
		}
	}
	t.leaves = make([]leafEntry, lr.count(1<<40))
	for i := range t.leaves {
		t.leaves[i].keyOff = lr.u64()
		t.leaves[i].keyLen = uint32(lr.u64())
		t.leaves[i].val = lr.u64()
	}
	t.keyArena = lr.bytes()
	t.prefixArena = lr.bytes()
	t.free4 = lr.u32s()
	t.free16 = lr.u32s()
	t.free48 = lr.u32s()
	t.free256 = lr.u32s()
	t.freeLeaf = lr.u32s()
	if lr.err != nil {
		return nil, fmt.Errorf("art: reading tree: %w", lr.err)
	}
	return t, nil
}
