package art

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"ahi/internal/dataset"
)

func TestARTSerializeRoundTrip(t *testing.T) {
	tr := New()
	keys := dataset.OSM(20000, 41)
	kb := func(k uint64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], k)
		return b[:]
	}
	for i, k := range keys {
		tr.Insert(kb(k), uint64(i))
	}
	// Delete some to populate the freelists.
	for i := 0; i < len(keys); i += 7 {
		tr.Delete(kb(keys[i]))
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("byte accounting: %d vs %d", n, buf.Len())
	}
	g, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != tr.Len() {
		t.Fatalf("Len %d vs %d", g.Len(), tr.Len())
	}
	for i, k := range keys {
		v, ok := g.Lookup(kb(k))
		if i%7 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
			continue
		}
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost after load", k)
		}
	}
	// The loaded tree keeps working for mutations (freelists intact).
	g.Insert(kb(keys[0]), 999)
	if v, ok := g.Lookup(kb(keys[0])); !ok || v != 999 {
		t.Fatal("insert into loaded tree failed")
	}
}

func TestARTSerializeRejectsCorrupt(t *testing.T) {
	tr := New()
	tr.Insert([]byte{1, 2, 0}, 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	bad := append([]byte{}, good...)
	bad[3] ^= 0x40
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadTree(bytes.NewReader(good[:16])); err == nil {
		t.Fatal("truncated accepted")
	}
}

// TestARTSerializeBitFlips flips one bit at every byte offset of a valid
// stream: the CRC trailer covers everything before it, so every flip must
// be rejected with ErrCorrupt — no flip may load silently, allocate
// wildly, or panic.
func TestARTSerializeBitFlips(t *testing.T) {
	tr := New()
	for i := byte(0); i < 30; i++ {
		tr.Insert([]byte{i, i * 3, 0}, uint64(i))
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadTree(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	bad := make([]byte, len(good))
	for off := 0; off < len(good); off++ {
		copy(bad, good)
		bad[off] ^= 1 << (off % 8)
		if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: error not ErrCorrupt: %v", off, err)
		}
	}
}

// TestARTSerializeTruncations cuts the stream at every length.
func TestARTSerializeTruncations(t *testing.T) {
	tr := New()
	for i := byte(0); i < 10; i++ {
		tr.Insert([]byte{i, 0}, uint64(i))
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for n := 0; n < len(good); n++ {
		if _, err := ReadTree(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(good))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error not ErrCorrupt: %v", n, err)
		}
	}
}
