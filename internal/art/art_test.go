package art

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ahi/internal/dataset"
)

func u64key(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func TestHandleEncoding(t *testing.T) {
	h := MakeHandle(KindNode48, 12345)
	if h.Kind() != KindNode48 || h.Index() != 12345 {
		t.Fatalf("handle round trip: %v %v", h.Kind(), h.Index())
	}
	if !Handle(0).IsEmpty() || h.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	keys := []string{"a", "ab", "abc", "b", "ba", "z", "zzzz"}
	for i, k := range keys {
		if !tr.Insert(Terminate([]byte(k)), uint64(i)) {
			t.Fatalf("Insert(%q) not new", k)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i, k := range keys {
		v, ok := tr.Lookup(Terminate([]byte(k)))
		if !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q)=(%d,%v)", k, v, ok)
		}
	}
	if _, ok := tr.Lookup(Terminate([]byte("abcd"))); ok {
		t.Fatal("phantom key")
	}
	if _, ok := tr.Lookup(Terminate([]byte("c"))); ok {
		t.Fatal("phantom key")
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New()
	k := u64key(42)
	tr.Insert(k, 1)
	if tr.Insert(k, 2) {
		t.Fatal("overwrite reported new")
	}
	if v, _ := tr.Lookup(k); v != 2 {
		t.Fatalf("v=%d", v)
	}
	if tr.Len() != 1 {
		t.Fatal("Len grew")
	}
}

func TestNodeGrowthLadder(t *testing.T) {
	// Inserting 256 distinct first bytes under one parent walks
	// Node4 -> Node16 -> Node48 -> Node256.
	tr := New()
	for b := 0; b < 256; b++ {
		key := []byte{byte(b), 1, 2, 3}
		tr.Insert(key, uint64(b))
		for probe := 0; probe <= b; probe++ {
			v, ok := tr.Lookup([]byte{byte(probe), 1, 2, 3})
			if !ok || v != uint64(probe) {
				t.Fatalf("after %d inserts, Lookup(%d) broken", b+1, probe)
			}
		}
	}
	_, _, _, c256 := tr.NodeCount()
	if c256 != 1 {
		t.Fatalf("expected one Node256, got %d", c256)
	}
}

func TestUint64KeysLarge(t *testing.T) {
	tr := New()
	keys := dataset.OSM(50000, 3)
	for i, k := range keys {
		tr.Insert(u64key(k), uint64(i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i, k := range keys {
		v, ok := tr.Lookup(u64key(k))
		if !ok || v != uint64(i) {
			t.Fatalf("Lookup(%d) = (%d,%v) want %d", k, v, ok, i)
		}
	}
	// Nearby misses.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := keys[rng.Intn(len(keys))] + 1
		idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
		if idx < len(keys) && keys[idx] == k {
			continue
		}
		if _, ok := tr.Lookup(u64key(k)); ok {
			t.Fatalf("phantom %d", k)
		}
	}
}

func TestEmailKeys(t *testing.T) {
	tr := New()
	emails := dataset.Emails(20000, 4)
	for i, e := range emails {
		tr.Insert(Terminate([]byte(e)), uint64(i))
	}
	for i, e := range emails {
		v, ok := tr.Lookup(Terminate([]byte(e)))
		if !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q)", e)
		}
	}
}

func TestDeepPrefixesBeyondInlineWindow(t *testing.T) {
	// Keys sharing a >8-byte prefix exercise the optimistic path.
	tr := New()
	prefix := []byte("0123456789abcdef") // 16 shared bytes
	var keys [][]byte
	for i := 0; i < 100; i++ {
		k := append(append([]byte{}, prefix...), byte(i), byte(i*3), 0)
		keys = append(keys, k)
		tr.Insert(k, uint64(i))
	}
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("deep prefix lookup %d failed", i)
		}
	}
	// A key diverging inside the shared prefix (beyond byte 8).
	bad := append([]byte{}, keys[0]...)
	bad[12] ^= 0xff
	if _, ok := tr.Lookup(bad); ok {
		t.Fatal("phantom with deep divergence")
	}
	// Insert the diverging key: must split the compressed path.
	tr.Insert(bad, 999)
	if v, ok := tr.Lookup(bad); !ok || v != 999 {
		t.Fatal("deep split failed")
	}
	if v, ok := tr.Lookup(keys[0]); !ok || v != 0 {
		t.Fatal("old key lost after deep split")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	keys := dataset.OSM(10000, 5)
	for i, k := range keys {
		tr.Insert(u64key(k), uint64(i))
	}
	for i := 0; i < len(keys); i += 2 {
		if !tr.Delete(u64key(keys[i])) {
			t.Fatalf("Delete(%d) failed", keys[i])
		}
	}
	if tr.Delete(u64key(keys[0])) {
		t.Fatal("double delete")
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i, k := range keys {
		_, ok := tr.Lookup(u64key(k))
		if (i%2 == 0) == ok {
			t.Fatalf("Lookup(%d)=%v after deletes", k, ok)
		}
	}
	// Reinsert everything.
	for i, k := range keys {
		tr.Insert(u64key(k), uint64(i))
	}
	for i, k := range keys {
		if v, ok := tr.Lookup(u64key(k)); !ok || v != uint64(i) {
			t.Fatal("reinsert broken")
		}
	}
}

func TestDeleteShrinksNodes(t *testing.T) {
	tr := New()
	for b := 0; b < 256; b++ {
		tr.Insert([]byte{byte(b), 9}, uint64(b))
	}
	_, _, _, c256 := tr.NodeCount()
	if c256 != 1 {
		t.Fatalf("want a Node256, have %d", c256)
	}
	for b := 0; b < 250; b++ {
		tr.Delete([]byte{byte(b), 9})
	}
	c4, c16, _, c256 := tr.NodeCount()
	if c256 != 0 {
		t.Fatal("Node256 did not shrink")
	}
	if c4+c16 == 0 {
		t.Fatal("no small node after shrinking")
	}
	for b := 250; b < 256; b++ {
		if v, ok := tr.Lookup([]byte{byte(b), 9}); !ok || v != uint64(b) {
			t.Fatalf("survivor %d lost", b)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New()
	keys := dataset.OSM(20000, 6)
	for i, k := range keys {
		tr.Insert(u64key(k), uint64(i))
	}
	// Full scan in order.
	var got []uint64
	n := tr.Scan(nil, len(keys)+5, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if n != len(keys) || len(got) != len(keys) {
		t.Fatalf("full scan visited %d", n)
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("order broken at %d: %d != %d", i, got[i], keys[i])
		}
	}
	// Ranged scan from a mid key.
	start := 7777
	got = got[:0]
	tr.Scan(u64key(keys[start]), 50, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if len(got) != 50 {
		t.Fatalf("ranged scan got %d", len(got))
	}
	for i := range got {
		if got[i] != keys[start+i] {
			t.Fatalf("ranged scan mismatch at %d", i)
		}
	}
	// Scan from a non-existent key starts at the successor.
	got = got[:0]
	tr.Scan(u64key(keys[start]+1), 1, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if len(got) != 1 || got[0] != keys[start+1] {
		t.Fatalf("successor scan: %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(u64key(i), i)
	}
	count := 0
	tr.Scan(nil, 1000, func(k []byte, v uint64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestChildrenAndNewNode(t *testing.T) {
	tr := New()
	var entries []ChildEntry
	for i := 0; i < 30; i++ {
		entries = append(entries, ChildEntry{Label: byte(i * 7 % 256), Child: tr.NewLeafHandle([]byte{byte(i)}, uint64(i))})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Label < entries[j].Label })
	h := tr.NewNode(entries)
	if h.Kind() != KindNode48 {
		t.Fatalf("30 children should yield Node48, got %v", h.Kind())
	}
	got := tr.Children(h)
	if len(got) != len(entries) {
		t.Fatalf("Children lost entries: %d", len(got))
	}
	for i := range got {
		if got[i].Label != entries[i].Label || got[i].Child != entries[i].Child {
			t.Fatalf("child %d mismatch", i)
		}
	}
	if tr.NumChildren(h) != 30 {
		t.Fatalf("NumChildren=%d", tr.NumChildren(h))
	}
}

func TestFreeSubtreeRecycles(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(u64key(i*977), i)
	}
	before := tr.Bytes()
	root := tr.Root()
	tr.FreeSubtree(root)
	tr.SetRoot(0)
	// Arena bytes don't shrink, but freelists must be populated so new
	// inserts recycle slots.
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(u64key(i*977), i)
	}
	after := tr.Bytes()
	// Key arena grows (append-only), node arenas must not double.
	if after > before+before/2 {
		t.Fatalf("arenas not recycled: %d -> %d", before, after)
	}
}

func TestSetChildAndFSTHandles(t *testing.T) {
	tr := New()
	tr.Insert([]byte{1, 2, 3}, 10)
	tr.Insert([]byte{1, 2, 4}, 11)
	tr.Insert([]byte{2, 0, 0}, 12)
	root := tr.Root()
	// Replace the subtree under first byte 1 with an FST handle.
	fst := MakeHandle(KindFST, 4242)
	old := tr.FindChild(root, 1)
	if old.IsEmpty() {
		t.Fatal("child missing")
	}
	tr.SetChild(root, 1, fst)
	if got := tr.FindChild(root, 1); got != fst {
		t.Fatal("SetChild failed")
	}
	// Plain lookups stop at the FST boundary.
	if _, ok := tr.Lookup([]byte{1, 2, 3}); ok {
		t.Fatal("lookup crossed FST boundary")
	}
	if v, ok := tr.Lookup([]byte{2, 0, 0}); !ok || v != 12 {
		t.Fatal("unrelated key lost")
	}
	// Scan skips the foreign subtree.
	count := 0
	tr.Scan(nil, 10, func(k []byte, v uint64) bool { count++; return true })
	if count != 1 {
		t.Fatalf("scan crossed FST boundary: %d", count)
	}
}

func TestQuickAgainstMap(t *testing.T) {
	fn := func(raw [][]byte) bool {
		tr := New()
		ref := map[string]uint64{}
		for i, k := range raw {
			// Terminate-based prefix-freedom requires NUL-free inputs
			// (the documented precondition); strip NULs.
			clean := bytes.ReplaceAll(k, []byte{0}, []byte{1})
			key := Terminate(clean)
			tr.Insert(key, uint64(i))
			ref[string(key)] = uint64(i)
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Lookup([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScanMatchesSortedKeys(t *testing.T) {
	fn := func(raw []uint32) bool {
		tr := New()
		set := map[uint64]bool{}
		for _, r := range raw {
			k := uint64(r)
			tr.Insert(u64key(k), k)
			set[k] = true
		}
		var want []uint64
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		tr.Scan(nil, len(want)+1, func(k []byte, v uint64) bool {
			got = append(got, binary.BigEndian.Uint64(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTerminate(t *testing.T) {
	k := Terminate([]byte("ab"))
	if !bytes.Equal(k, []byte{'a', 'b', 0}) {
		t.Fatalf("Terminate=%v", k)
	}
}

func BenchmarkARTLookup(b *testing.B) {
	tr := New()
	keys := dataset.OSM(200000, 1)
	for i, k := range keys {
		tr.Insert(u64key(k), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(u64key(keys[i%len(keys)]))
	}
}

func BenchmarkARTInsert(b *testing.B) {
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(u64key(uint64(i)*0x9e3779b9), uint64(i))
	}
}
