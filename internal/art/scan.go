package art

import "bytes"

// Scan visits up to n key/value pairs with key >= from in ascending key
// order, returning the number visited. fn may stop early by returning
// false. Subtrees behind KindFST handles are skipped (the Hybrid Trie
// provides its own scan that stitches ART and FST together).
func (t *Tree) Scan(from []byte, n int, fn func(key []byte, val uint64) bool) int {
	visited := 0
	prefix := make([]byte, 0, 64)
	t.scanRec(t.root, prefix, from, n, &visited, fn)
	return visited
}

// scanRelation classifies a subtree whose keys all start with path against
// the lower bound: every key qualifies, the bound cuts through the
// subtree, or the subtree lies entirely below the bound. This pruning is
// what keeps a ranged scan from touching the O(n) keys before `from`.
type scanRelation int

const (
	scanAll scanRelation = iota
	scanSeek
	scanSkip
)

func scanRelate(from, path []byte) scanRelation {
	if from == nil {
		return scanAll
	}
	if len(from) <= len(path) {
		if bytes.Compare(from, path[:len(from)]) <= 0 {
			return scanAll
		}
		return scanSkip
	}
	switch bytes.Compare(from[:len(path)], path) {
	case -1:
		return scanAll
	case 1:
		return scanSkip
	}
	return scanSeek
}

// scanRec walks h in key order; path spells the key bytes from the root to
// h. from == nil means "everything".
func (t *Tree) scanRec(h Handle, path []byte, from []byte, n int, visited *int, fn func([]byte, uint64) bool) bool {
	if h.IsEmpty() || *visited >= n {
		return *visited < n
	}
	switch h.Kind() {
	case KindLeaf:
		k := t.LeafKey(h)
		if from != nil && bytes.Compare(k, from) < 0 {
			return true
		}
		*visited++
		return fn(k, t.LeafVal(h)) && *visited < n
	case KindFST:
		return true
	}
	// Extend the path with the compressed prefix and classify once.
	if p := t.prefixBytes(t.hdr(h)); len(p) > 0 {
		path = append(path, p...)
	}
	switch scanRelate(from, path) {
	case scanSkip:
		return true
	case scanAll:
		from = nil
	}
	each := func(b byte, child Handle) bool {
		childPath := append(path, b)
		sub := from
		switch scanRelate(from, childPath) {
		case scanSkip:
			return true
		case scanAll:
			sub = nil
		}
		return t.scanRec(child, childPath, sub, n, visited, fn)
	}
	switch h.Kind() {
	case KindNode4:
		node := &t.n4[h.Index()]
		for i := 0; i < int(node.numChildren); i++ {
			if !each(node.keys[i], node.children[i]) {
				return false
			}
		}
	case KindNode16:
		node := &t.n16[h.Index()]
		for i := 0; i < int(node.numChildren); i++ {
			if !each(node.keys[i], node.children[i]) {
				return false
			}
		}
	case KindNode48:
		node := &t.n48[h.Index()]
		for b := 0; b < 256; b++ {
			if s := node.childIndex[b]; s != 0xff {
				if !each(byte(b), node.children[s]) {
					return false
				}
			}
		}
	case KindNode256:
		node := &t.n256[h.Index()]
		for b := 0; b < 256; b++ {
			if c := node.children[b]; !c.IsEmpty() {
				if !each(byte(b), c) {
					return false
				}
			}
		}
	}
	return *visited < n
}

// EachChild invokes fn for every child in ascending label order without
// allocating (the hot path of stitched Hybrid Trie scans); it stops early
// when fn returns false and reports whether the iteration ran to the end.
func (t *Tree) EachChild(h Handle, fn func(label byte, child Handle) bool) bool {
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if !fn(n.keys[i], n.children[i]) {
				return false
			}
		}
	case KindNode16:
		n := &t.n16[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if !fn(n.keys[i], n.children[i]) {
				return false
			}
		}
	case KindNode48:
		n := &t.n48[h.Index()]
		for b := 0; b < 256; b++ {
			if s := n.childIndex[b]; s != 0xff {
				if !fn(byte(b), n.children[s]) {
					return false
				}
			}
		}
	case KindNode256:
		n := &t.n256[h.Index()]
		for b := 0; b < 256; b++ {
			if c := n.children[b]; !c.IsEmpty() {
				if !fn(byte(b), c) {
					return false
				}
			}
		}
	}
	return true
}

// ChildEntry is one (label, handle) pair of a node, in label order.
type ChildEntry struct {
	Label byte
	Child Handle
}

// Children returns h's child entries in ascending label order.
func (t *Tree) Children(h Handle) []ChildEntry {
	var out []ChildEntry
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			out = append(out, ChildEntry{n.keys[i], n.children[i]})
		}
	case KindNode16:
		n := &t.n16[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			out = append(out, ChildEntry{n.keys[i], n.children[i]})
		}
	case KindNode48:
		n := &t.n48[h.Index()]
		for b := 0; b < 256; b++ {
			if s := n.childIndex[b]; s != 0xff {
				out = append(out, ChildEntry{byte(b), n.children[s]})
			}
		}
	case KindNode256:
		n := &t.n256[h.Index()]
		for b := 0; b < 256; b++ {
			if c := n.children[b]; !c.IsEmpty() {
				out = append(out, ChildEntry{byte(b), c})
			}
		}
	}
	return out
}

// NewNode builds an inner node of the smallest fitting type from sorted
// child entries — the Hybrid Trie's FST→ART expansion path ("determine the
// appropriate ART node type based on the number of labels", §4.2.2).
func (t *Tree) NewNode(entries []ChildEntry) Handle {
	var h Handle
	switch {
	case len(entries) <= 4:
		h = MakeHandle(KindNode4, uint64(t.alloc4()))
	case len(entries) <= 16:
		h = MakeHandle(KindNode16, uint64(t.alloc16()))
	case len(entries) <= 48:
		h = MakeHandle(KindNode48, uint64(t.alloc48()))
	default:
		h = MakeHandle(KindNode256, uint64(t.alloc256()))
	}
	for _, e := range entries {
		h = t.addChild(h, e.Label, e.Child)
	}
	return h
}

// NewLeafHandle exposes leaf creation for the Hybrid Trie.
func (t *Tree) NewLeafHandle(key []byte, val uint64) Handle { return t.newLeaf(key, val) }

// FreeSubtree returns an expanded subtree's nodes and leaves to the
// freelists (ART→FST compaction). Foreign (FST) handles are left alone.
func (t *Tree) FreeSubtree(h Handle) {
	switch h.Kind() {
	case KindEmpty, KindFST:
		return
	case KindLeaf:
		t.Free(h)
		return
	}
	for _, e := range t.Children(h) {
		t.FreeSubtree(e.Child)
	}
	t.Free(h)
}

// Prefix returns an inner node's full compressed path and its length.
func (t *Tree) Prefix(h Handle) ([]byte, int) {
	hd := t.hdr(h)
	if hd == nil {
		return nil, 0
	}
	return t.prefixBytes(hd), int(hd.prefixLen)
}

// SetNodePrefix replaces an inner node's compressed path (Hybrid Trie
// build plumbing).
func (t *Tree) SetNodePrefix(h Handle, p []byte) {
	if hd := t.hdr(h); hd != nil {
		t.setPrefix(hd, p)
	}
}

// NumChildren returns an inner node's fanout.
func (t *Tree) NumChildren(h Handle) int {
	if hd := t.hdr(h); hd != nil {
		return int(hd.numChildren)
	}
	return 0
}
