package art

import (
	"bytes"
	"testing"
)

// FuzzARTAgainstModel replays an arbitrary tape of inserts, deletes and
// lookups over short byte keys (NUL-stripped + terminated to stay
// prefix-free) and cross-checks against a map.
func FuzzARTAgainstModel(f *testing.F) {
	f.Add([]byte("abc\x01def\x02ghi"))
	f.Add([]byte{5, 1, 2, 3, 5, 1, 2, 4, 5, 9})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tr := New()
		ref := map[string]uint64{}
		i := 0
		for i+2 < len(tape) {
			op := tape[i] % 4
			klen := int(tape[i+1]%6) + 1
			if i+2+klen > len(tape) {
				break
			}
			raw := bytes.ReplaceAll(tape[i+2:i+2+klen], []byte{0}, []byte{7})
			key := Terminate(raw)
			i += 2 + klen
			switch op {
			case 0, 1:
				v := uint64(i)
				tr.Insert(key, v)
				ref[string(key)] = v
			case 2:
				got := tr.Delete(key)
				_, want := ref[string(key)]
				if got != want {
					t.Fatalf("Delete(%x)=%v want %v", key, got, want)
				}
				delete(ref, string(key))
			case 3:
				got, ok := tr.Lookup(key)
				want, wok := ref[string(key)]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%x)=(%d,%v) want (%d,%v)", key, got, ok, want, wok)
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := tr.Lookup([]byte(k)); !ok || got != want {
				t.Fatalf("final Lookup(%x) lost", k)
			}
		}
	})
}
