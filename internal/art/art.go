// Package art implements the Adaptive Radix Tree of Leis et al. (ICDE
// 2013), the performance-optimized trie of the paper's Hybrid Trie (§4.2):
// four node types (Node4/16/48/256) grown and shrunk by fanout, optimistic
// path compression with lazy leaf expansion, and ordered range scans.
//
// All nodes live in per-type arenas and children are 64-bit tagged handles
// (kind bits + arena index) rather than Go pointers. This mirrors the
// pointer tagging the C++ original uses to inline values — Go forbids
// tagging real pointers — and doubles as the packed, GC-transparent layout
// compact indexes need (the arenas are plain slices the collector never
// traverses element-wise). The extra KindFST handle kind lets the Hybrid
// Trie splice Fast-Succinct-Trie node numbers into ART children.
package art

import "bytes"

// Kind enumerates what a Handle refers to.
type Kind uint8

// Handle kinds.
const (
	KindEmpty Kind = iota
	KindNode4
	KindNode16
	KindNode48
	KindNode256
	KindLeaf
	// KindFST marks a child stored outside the ART: the payload is an
	// opaque FST position owned by the Hybrid Trie (§4.2.1's "extra bit"
	// distinguishing inlined FST node numbers).
	KindFST
)

// Handle is a tagged reference: the low 3 bits hold the Kind, the upper 61
// the arena index (or the opaque FST payload).
type Handle uint64

// MakeHandle builds a handle from kind and payload.
func MakeHandle(k Kind, idx uint64) Handle { return Handle(idx<<3) | Handle(k) }

// Kind returns the handle's kind.
func (h Handle) Kind() Kind { return Kind(h & 7) }

// Index returns the arena index / opaque payload.
func (h Handle) Index() uint64 { return uint64(h) >> 3 }

// IsEmpty reports whether the handle is null.
func (h Handle) IsEmpty() bool { return h == 0 }

// header is shared by all four node types. Compressed-path bytes live in
// the tree's shared prefix arena (pessimistic path compression): lookups
// verify every skipped byte, which the Hybrid Trie depends on — it hands
// traversal off to the FST mid-path, so a final leaf comparison cannot
// catch an earlier mismatch the way plain optimistic ART does.
type header struct {
	prefixOff   uint32
	prefixLen   uint32
	numChildren uint16
}

type node4 struct {
	header
	keys     [4]byte
	children [4]Handle
}

type node16 struct {
	header
	keys     [16]byte
	children [16]Handle
}

type node48 struct {
	header
	// childIndex maps a key byte to a slot in children; 0xff = empty.
	childIndex [256]byte
	children   [48]Handle
}

type node256 struct {
	header
	children [256]Handle
}

type leafEntry struct {
	keyOff uint64
	keyLen uint32
	val    uint64
}

// Tree is an Adaptive Radix Tree mapping byte-string keys to uint64
// values. Keys must be prefix-free; Terminate appends a 0x00 terminator
// for variable-length ASCII keys (fixed-length keys are prefix-free
// already). The tree is not safe for concurrent mutation.
type Tree struct {
	n4   []node4
	n16  []node16
	n48  []node48
	n256 []node256
	// leaves and their key bytes live in flat arenas; compressed-path
	// bytes live in prefixArena (append-only, addressed by header).
	leaves      []leafEntry
	keyArena    []byte
	prefixArena []byte

	free4, free16, free48, free256, freeLeaf []uint32

	// With deferFrees enabled, freed slots collect in pending lists and
	// only become allocatable at FlushFrees. The Hybrid Trie's adaptation
	// pass uses this to rule out handle ABA: a slot freed by a compaction
	// must not be recycled by an expansion while stale references to the
	// old handle may still be processed in the same pass.
	deferFrees                               bool
	pend4, pend16, pend48, pend256, pendLeaf []uint32

	root Handle
	size int
}

// SetDeferFrees toggles deferred slot recycling; disabling flushes.
func (t *Tree) SetDeferFrees(on bool) {
	t.deferFrees = on
	if !on {
		t.FlushFrees()
	}
}

// FlushFrees makes all deferred slots allocatable again.
func (t *Tree) FlushFrees() {
	t.free4 = append(t.free4, t.pend4...)
	t.free16 = append(t.free16, t.pend16...)
	t.free48 = append(t.free48, t.pend48...)
	t.free256 = append(t.free256, t.pend256...)
	t.freeLeaf = append(t.freeLeaf, t.pendLeaf...)
	t.pend4, t.pend16, t.pend48, t.pend256, t.pendLeaf = t.pend4[:0], t.pend16[:0], t.pend48[:0], t.pend256[:0], t.pendLeaf[:0]
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Terminate returns key with a 0x00 terminator appended, making a set of
// variable-length keys prefix-free. The caller must apply it consistently
// to inserts and lookups.
func Terminate(key []byte) []byte {
	out := make([]byte, len(key)+1)
	copy(out, key)
	return out
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Root returns the root handle (used by the Hybrid Trie).
func (t *Tree) Root() Handle { return t.root }

// SetRoot replaces the root handle (used by the Hybrid Trie).
func (t *Tree) SetRoot(h Handle) { t.root = h }

// Bytes returns the approximate heap footprint of all arenas.
func (t *Tree) Bytes() int64 {
	const (
		sz4   = 16 + 4 + 4*8
		sz16  = 16 + 16 + 16*8
		sz48  = 16 + 256 + 48*8
		sz256 = 16 + 256*8
		szLf  = 8 + 4 + 8 + 4 // padded leafEntry
	)
	return int64(len(t.n4)*sz4 + len(t.n16)*sz16 + len(t.n48)*sz48 +
		len(t.n256)*sz256 + len(t.leaves)*szLf + len(t.keyArena) + len(t.prefixArena))
}

// NodeCount returns the number of live inner nodes by type.
func (t *Tree) NodeCount() (c4, c16, c48, c256 int) {
	return len(t.n4) - len(t.free4), len(t.n16) - len(t.free16),
		len(t.n48) - len(t.free48), len(t.n256) - len(t.free256)
}

// --- arena helpers ------------------------------------------------------

func (t *Tree) alloc4() uint32 {
	if n := len(t.free4); n > 0 {
		idx := t.free4[n-1]
		t.free4 = t.free4[:n-1]
		t.n4[idx] = node4{}
		return idx
	}
	t.n4 = append(t.n4, node4{})
	return uint32(len(t.n4) - 1)
}

func (t *Tree) alloc16() uint32 {
	if n := len(t.free16); n > 0 {
		idx := t.free16[n-1]
		t.free16 = t.free16[:n-1]
		t.n16[idx] = node16{}
		return idx
	}
	t.n16 = append(t.n16, node16{})
	return uint32(len(t.n16) - 1)
}

func (t *Tree) alloc48() uint32 {
	if n := len(t.free48); n > 0 {
		idx := t.free48[n-1]
		t.free48 = t.free48[:n-1]
		t.n48[idx] = node48{}
		for i := range t.n48[idx].childIndex {
			t.n48[idx].childIndex[i] = 0xff
		}
		return idx
	}
	t.n48 = append(t.n48, node48{})
	idx := uint32(len(t.n48) - 1)
	for i := range t.n48[idx].childIndex {
		t.n48[idx].childIndex[i] = 0xff
	}
	return idx
}

func (t *Tree) alloc256() uint32 {
	if n := len(t.free256); n > 0 {
		idx := t.free256[n-1]
		t.free256 = t.free256[:n-1]
		t.n256[idx] = node256{}
		return idx
	}
	t.n256 = append(t.n256, node256{})
	return uint32(len(t.n256) - 1)
}

func (t *Tree) newLeaf(key []byte, val uint64) Handle {
	var idx uint32
	if n := len(t.freeLeaf); n > 0 {
		idx = t.freeLeaf[n-1]
		t.freeLeaf = t.freeLeaf[:n-1]
	} else {
		t.leaves = append(t.leaves, leafEntry{})
		idx = uint32(len(t.leaves) - 1)
	}
	t.leaves[idx] = leafEntry{
		keyOff: uint64(len(t.keyArena)),
		keyLen: uint32(len(key)),
		val:    val,
	}
	t.keyArena = append(t.keyArena, key...)
	return MakeHandle(KindLeaf, uint64(idx))
}

// Free returns a node to its arena's freelist (Hybrid Trie compactions
// delete expanded ART nodes). Under SetDeferFrees the slot is parked until
// FlushFrees.
func (t *Tree) Free(h Handle) {
	idx := uint32(h.Index())
	if t.deferFrees {
		switch h.Kind() {
		case KindNode4:
			t.pend4 = append(t.pend4, idx)
		case KindNode16:
			t.pend16 = append(t.pend16, idx)
		case KindNode48:
			t.pend48 = append(t.pend48, idx)
		case KindNode256:
			t.pend256 = append(t.pend256, idx)
		case KindLeaf:
			t.pendLeaf = append(t.pendLeaf, idx)
		}
		return
	}
	switch h.Kind() {
	case KindNode4:
		t.free4 = append(t.free4, idx)
	case KindNode16:
		t.free16 = append(t.free16, idx)
	case KindNode48:
		t.free48 = append(t.free48, idx)
	case KindNode256:
		t.free256 = append(t.free256, idx)
	case KindLeaf:
		t.freeLeaf = append(t.freeLeaf, idx)
	}
}

// LeafKey returns the full key bytes of a leaf handle.
func (t *Tree) LeafKey(h Handle) []byte {
	l := &t.leaves[h.Index()]
	return t.keyArena[l.keyOff : l.keyOff+uint64(l.keyLen)]
}

// LeafVal returns the value of a leaf handle.
func (t *Tree) LeafVal(h Handle) uint64 { return t.leaves[h.Index()].val }

// --- generic node access ------------------------------------------------

func (t *Tree) hdr(h Handle) *header {
	switch h.Kind() {
	case KindNode4:
		return &t.n4[h.Index()].header
	case KindNode16:
		return &t.n16[h.Index()].header
	case KindNode48:
		return &t.n48[h.Index()].header
	case KindNode256:
		return &t.n256[h.Index()].header
	}
	return nil
}

// FindChild returns the child under key byte b, or 0.
func (t *Tree) FindChild(h Handle, b byte) Handle {
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				return n.children[i]
			}
		}
	case KindNode16:
		n := &t.n16[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				return n.children[i]
			}
			if n.keys[i] > b {
				break
			}
		}
	case KindNode48:
		n := &t.n48[h.Index()]
		if s := n.childIndex[b]; s != 0xff {
			return n.children[s]
		}
	case KindNode256:
		return t.n256[h.Index()].children[b]
	}
	return 0
}

// setChildExisting replaces the child already present under b.
func (t *Tree) setChildExisting(h Handle, b byte, child Handle) {
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				n.children[i] = child
				return
			}
		}
	case KindNode16:
		n := &t.n16[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				n.children[i] = child
				return
			}
		}
	case KindNode48:
		n := &t.n48[h.Index()]
		if s := n.childIndex[b]; s != 0xff {
			n.children[s] = child
			return
		}
	case KindNode256:
		t.n256[h.Index()].children[b] = child
		return
	}
	panic("art: setChildExisting on missing child")
}

// SetChild publicly replaces an existing child (Hybrid Trie migrations).
func (t *Tree) SetChild(h Handle, b byte, child Handle) { t.setChildExisting(h, b, child) }

// addChild inserts a new child, growing the node type when full. It
// returns the (possibly new) handle of the node.
func (t *Tree) addChild(h Handle, b byte, child Handle) Handle {
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		if n.numChildren < 4 {
			i := int(n.numChildren)
			for i > 0 && n.keys[i-1] > b {
				n.keys[i] = n.keys[i-1]
				n.children[i] = n.children[i-1]
				i--
			}
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return h
		}
		// Grow to Node16.
		idx := t.alloc16()
		n = &t.n4[h.Index()] // re-fetch: alloc may have grown another arena only, but keep the pattern consistent
		g := &t.n16[idx]
		g.header = n.header
		copy(g.keys[:], n.keys[:4])
		copy(g.children[:], n.children[:4])
		t.Free(h)
		return t.addChild(MakeHandle(KindNode16, uint64(idx)), b, child)
	case KindNode16:
		n := &t.n16[h.Index()]
		if n.numChildren < 16 {
			i := int(n.numChildren)
			for i > 0 && n.keys[i-1] > b {
				n.keys[i] = n.keys[i-1]
				n.children[i] = n.children[i-1]
				i--
			}
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return h
		}
		idx := t.alloc48()
		n = &t.n16[h.Index()]
		g := &t.n48[idx]
		g.header = n.header
		for i := 0; i < 16; i++ {
			g.childIndex[n.keys[i]] = byte(i)
			g.children[i] = n.children[i]
		}
		t.Free(h)
		return t.addChild(MakeHandle(KindNode48, uint64(idx)), b, child)
	case KindNode48:
		n := &t.n48[h.Index()]
		if n.numChildren < 48 {
			slot := int(n.numChildren)
			// Slots below numChildren may be fragmented after deletes;
			// find a genuinely free one.
			if !n.children[slot].IsEmpty() {
				slot = -1
				for i := 0; i < 48; i++ {
					if n.children[i].IsEmpty() {
						slot = i
						break
					}
				}
			}
			n.childIndex[b] = byte(slot)
			n.children[slot] = child
			n.numChildren++
			return h
		}
		idx := t.alloc256()
		n = &t.n48[h.Index()]
		g := &t.n256[idx]
		g.header = n.header
		for b2 := 0; b2 < 256; b2++ {
			if s := n.childIndex[b2]; s != 0xff {
				g.children[b2] = n.children[s]
			}
		}
		t.Free(h)
		return t.addChild(MakeHandle(KindNode256, uint64(idx)), b, child)
	case KindNode256:
		n := &t.n256[h.Index()]
		n.children[b] = child
		n.numChildren++
		return h
	}
	panic("art: addChild on non-node")
}

// prefixBytes returns a node's full compressed path.
func (t *Tree) prefixBytes(hd *header) []byte {
	return t.prefixArena[hd.prefixOff : hd.prefixOff+hd.prefixLen]
}

// setPrefix stores a compressed path in the arena.
func (t *Tree) setPrefix(hd *header, p []byte) {
	if len(p) == 0 {
		hd.prefixOff, hd.prefixLen = 0, 0
		return
	}
	hd.prefixOff = uint32(len(t.prefixArena))
	hd.prefixLen = uint32(len(p))
	t.prefixArena = append(t.prefixArena, p...)
}

// minLeaf returns any descendant leaf (the smallest), used by ordered
// scans to bound subtrees.
func (t *Tree) minLeaf(h Handle) Handle {
	for {
		switch h.Kind() {
		case KindLeaf:
			return h
		case KindNode4:
			h = t.n4[h.Index()].children[0]
		case KindNode16:
			h = t.n16[h.Index()].children[0]
		case KindNode48:
			n := &t.n48[h.Index()]
			for b := 0; b < 256; b++ {
				if n.childIndex[b] != 0xff {
					h = n.children[n.childIndex[b]]
					break
				}
			}
		case KindNode256:
			n := &t.n256[h.Index()]
			for b := 0; b < 256; b++ {
				if !n.children[b].IsEmpty() {
					h = n.children[b]
					break
				}
			}
		default:
			return 0 // KindFST or empty: caller handles
		}
	}
}

// prefixMismatch returns the first position where key (from depth) and
// h's compressed path disagree, up to hd.prefixLen.
func (t *Tree) prefixMismatch(hd *header, key []byte, depth int) int {
	p := t.prefixBytes(hd)
	for i := range p {
		if depth+i >= len(key) || key[depth+i] != p[i] {
			return i
		}
	}
	return len(p)
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key []byte) (uint64, bool) {
	h := t.root
	depth := 0
	for !h.IsEmpty() {
		if h.Kind() == KindLeaf {
			if bytes.Equal(t.LeafKey(h), key) {
				return t.LeafVal(h), true
			}
			return 0, false
		}
		if h.Kind() == KindFST {
			return 0, false // foreign subtree: plain ART lookups stop here
		}
		hd := t.hdr(h)
		if hd.prefixLen > 0 {
			if depth+int(hd.prefixLen) > len(key) {
				return 0, false
			}
			p := t.prefixBytes(hd)
			for i := range p {
				if key[depth+i] != p[i] {
					return 0, false
				}
			}
			depth += int(hd.prefixLen)
		}
		if depth >= len(key) {
			return 0, false
		}
		h = t.FindChild(h, key[depth])
		depth++
	}
	return 0, false
}

// Insert stores val under key, returning true when the key is new.
func (t *Tree) Insert(key []byte, val uint64) bool {
	inserted := t.insertRec(&t.root, key, 0, val)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree) insertRec(ref *Handle, key []byte, depth int, val uint64) bool {
	h := *ref
	if h.IsEmpty() {
		*ref = t.newLeaf(key, val)
		return true
	}
	if h.Kind() == KindLeaf {
		lk := t.LeafKey(h)
		if bytes.Equal(lk, key) {
			t.leaves[h.Index()].val = val
			return false
		}
		// Split into a Node4 holding the common path.
		common := 0
		for depth+common < len(key) && depth+common < len(lk) && key[depth+common] == lk[depth+common] {
			common++
		}
		idx := t.alloc4()
		t.setPrefix(&t.n4[idx].header, key[depth:depth+common])
		nh := MakeHandle(KindNode4, uint64(idx))
		// Prefix-free keys guarantee both continuations exist.
		nh = t.addChild(nh, lk[depth+common], h)
		nh = t.addChild(nh, key[depth+common], t.newLeaf(key, val))
		*ref = nh
		return true
	}
	if h.Kind() == KindFST {
		panic("art: insert into a foreign (FST) subtree")
	}
	hd := t.hdr(h)
	if hd.prefixLen > 0 {
		p := t.prefixMismatch(hd, key, depth)
		if p < int(hd.prefixLen) {
			// Split the compressed path at p.
			oldByte := t.prefixBytes(hd)[p]
			idx := t.alloc4()
			hd = t.hdr(h) // re-fetch: alloc4 may have moved the arena
			t.setPrefix(&t.n4[idx].header, t.prefixBytes(hd)[:p])
			nh := MakeHandle(KindNode4, uint64(idx))
			// The old node keeps the tail of its prefix after byte p;
			// trimming just moves the arena offset.
			hd.prefixOff += uint32(p + 1)
			hd.prefixLen -= uint32(p + 1)
			nh = t.addChild(nh, oldByte, h)
			nh = t.addChild(nh, key[depth+p], t.newLeaf(key, val))
			*ref = nh
			return true
		}
		depth += int(hd.prefixLen)
	}
	b := key[depth]
	child := t.FindChild(h, b)
	if !child.IsEmpty() {
		if child.Kind() == KindLeaf || child.Kind() == KindFST {
			// Recurse via a stack slot we can write back through.
			tmp := child
			ins := t.insertRec(&tmp, key, depth+1, val)
			if tmp != child {
				t.setChildExisting(h, b, tmp)
			}
			return ins
		}
		// Inner child: its arena slot is stable during the recursion
		// except for node growth, which insertRec reports via tmp.
		tmp := child
		ins := t.insertRec(&tmp, key, depth+1, val)
		if tmp != child {
			t.setChildExisting(h, b, tmp)
		}
		return ins
	}
	nh := t.addChild(h, b, t.newLeaf(key, val))
	if nh != h {
		*ref = nh
	}
	return true
}

// Delete removes key, returning whether it was present. Nodes shrink back
// through the type ladder lazily (a Node4 left with one child collapses
// into that child, re-extending the compressed path).
func (t *Tree) Delete(key []byte) bool {
	ok := t.deleteRec(&t.root, key, 0)
	if ok {
		t.size--
	}
	return ok
}

func (t *Tree) deleteRec(ref *Handle, key []byte, depth int) bool {
	h := *ref
	if h.IsEmpty() {
		return false
	}
	if h.Kind() == KindLeaf {
		if !bytes.Equal(t.LeafKey(h), key) {
			return false
		}
		t.Free(h)
		*ref = 0
		return true
	}
	if h.Kind() == KindFST {
		return false
	}
	hd := t.hdr(h)
	if hd.prefixLen > 0 {
		if t.prefixMismatch(hd, key, depth) < int(hd.prefixLen) {
			return false
		}
		depth += int(hd.prefixLen)
	}
	if depth >= len(key) {
		return false
	}
	b := key[depth]
	child := t.FindChild(h, b)
	if child.IsEmpty() {
		return false
	}
	if child.Kind() == KindLeaf {
		if !bytes.Equal(t.LeafKey(child), key) {
			return false
		}
		t.Free(child)
		t.removeChild(ref, b)
		return true
	}
	tmp := child
	ok := t.deleteRec(&tmp, key, depth+1)
	if tmp != child {
		t.setChildExisting(h, b, tmp)
	}
	return ok
}

// removeChild deletes the entry under b and shrinks/collapses the node.
func (t *Tree) removeChild(ref *Handle, b byte) {
	h := *ref
	switch h.Kind() {
	case KindNode4:
		n := &t.n4[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				copy(n.keys[i:], n.keys[i+1:n.numChildren])
				copy(n.children[i:], n.children[i+1:n.numChildren])
				n.numChildren--
				break
			}
		}
		if n.numChildren == 1 {
			// Collapse into the single child, merging compressed paths
			// when the child is an inner node:
			// child.prefix = n.prefix + label + child.prefix.
			child := n.children[0]
			if ch := t.hdr(child); ch != nil {
				merged := make([]byte, 0, int(n.prefixLen)+1+int(ch.prefixLen))
				merged = append(merged, t.prefixBytes(&n.header)...)
				merged = append(merged, n.keys[0])
				merged = append(merged, t.prefixBytes(ch)...)
				t.setPrefix(ch, merged)
			}
			t.Free(h)
			*ref = child
		}
	case KindNode16:
		n := &t.n16[h.Index()]
		for i := 0; i < int(n.numChildren); i++ {
			if n.keys[i] == b {
				copy(n.keys[i:], n.keys[i+1:n.numChildren])
				copy(n.children[i:], n.children[i+1:n.numChildren])
				n.numChildren--
				break
			}
		}
		if n.numChildren == 3 {
			idx := t.alloc4()
			n = &t.n16[h.Index()]
			s := &t.n4[idx]
			s.header = n.header
			copy(s.keys[:], n.keys[:3])
			copy(s.children[:], n.children[:3])
			t.Free(h)
			*ref = MakeHandle(KindNode4, uint64(idx))
		}
	case KindNode48:
		n := &t.n48[h.Index()]
		if s := n.childIndex[b]; s != 0xff {
			n.children[s] = 0
			n.childIndex[b] = 0xff
			n.numChildren--
		}
		if n.numChildren == 12 {
			idx := t.alloc16()
			n = &t.n48[h.Index()]
			s := &t.n16[idx]
			s.header = n.header
			j := 0
			for bb := 0; bb < 256; bb++ {
				if ci := n.childIndex[bb]; ci != 0xff {
					s.keys[j] = byte(bb)
					s.children[j] = n.children[ci]
					j++
				}
			}
			s.numChildren = uint16(j)
			t.Free(h)
			*ref = MakeHandle(KindNode16, uint64(idx))
		}
	case KindNode256:
		n := &t.n256[h.Index()]
		if !n.children[b].IsEmpty() {
			n.children[b] = 0
			n.numChildren--
		}
		if n.numChildren == 37 {
			idx := t.alloc48()
			n = &t.n256[h.Index()]
			s := &t.n48[idx]
			s.header = n.header
			j := byte(0)
			for bb := 0; bb < 256; bb++ {
				if !n.children[bb].IsEmpty() {
					s.childIndex[bb] = j
					s.children[j] = n.children[bb]
					j++
				}
			}
			s.numChildren = uint16(j)
			t.Free(h)
			*ref = MakeHandle(KindNode48, uint64(idx))
		}
	}
}
