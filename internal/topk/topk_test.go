package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleSizeShape(t *testing.T) {
	n := 1_000_000
	// Shrinking epsilon must grow the sample roughly quadratically.
	s10 := SampleSize(n, 1000, 0.10, 0.05)
	s05 := SampleSize(n, 1000, 0.05, 0.05)
	s02 := SampleSize(n, 1000, 0.02, 0.05)
	if !(s02 > s05 && s05 > s10) {
		t.Fatalf("sample sizes not monotone in 1/eps: %d %d %d", s10, s05, s02)
	}
	ratio := float64(s05) / float64(s10)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("halving eps should ~quadruple |S|, got ratio %.2f", ratio)
	}
	// Larger k grows |S| mildly (log of k(n-k)).
	if SampleSize(n, 1000, 0.05, 0.05) <= SampleSize(n, 250, 0.05, 0.05)-1000 {
		t.Fatal("k growth direction wrong")
	}
}

func TestSampleSizeEdges(t *testing.T) {
	if SampleSize(0, 10, 0.05, 0.05) != 0 {
		t.Fatal("n=0 must yield 0")
	}
	if s := SampleSize(100, 1000, 0.05, 0.05); s <= 0 {
		t.Fatalf("k clamped to n should still be positive, got %d", s)
	}
	if s := SampleSize(100, -5, 0, 0); s <= 0 {
		t.Fatalf("defaults must kick in, got %d", s)
	}
}

func TestClassifierFindsExactTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const items = 5000
	freqs := make([]uint64, items)
	for i := range freqs {
		freqs[i] = uint64(rng.Intn(1_000_000))
	}
	const k = 100
	c := NewClassifier(k)
	for i, f := range freqs {
		c.Offer(Entry{Item: i, Priority: f})
	}
	hot := append([]Entry(nil), c.Hot()...)
	if len(hot) != k {
		t.Fatalf("got %d hot items, want %d", len(hot), k)
	}
	sorted := append([]uint64(nil), freqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	threshold := sorted[k-1]
	for _, e := range hot {
		if e.Priority < threshold {
			t.Fatalf("hot item %d has priority %d below threshold %d", e.Item, e.Priority, threshold)
		}
	}
	if c.Threshold() < threshold {
		t.Fatalf("Threshold()=%d want >= %d", c.Threshold(), threshold)
	}
}

func TestClassifierDisplacement(t *testing.T) {
	c := NewClassifier(2)
	if _, ev := c.Offer(Entry{1, 10}); ev {
		t.Fatal("no eviction while heap not full")
	}
	c.Offer(Entry{2, 20})
	// Lower-priority candidate bounces back.
	d, ev := c.Offer(Entry{3, 5})
	if !ev || d.Item != 3 {
		t.Fatalf("low candidate should bounce, got %+v %v", d, ev)
	}
	// Higher-priority candidate displaces the minimum.
	d, ev = c.Offer(Entry{4, 30})
	if !ev || d.Item != 1 {
		t.Fatalf("expected item 1 displaced, got %+v", d)
	}
	ins, rem := c.Stats()
	if ins != 3 || rem != 1 {
		t.Fatalf("stats inserts=%d removals=%d", ins, rem)
	}
}

func TestClassifierZeroK(t *testing.T) {
	c := NewClassifier(0)
	d, ev := c.Offer(Entry{9, 100})
	if !ev || d.Item != 9 || c.Len() != 0 {
		t.Fatal("k=0 classifier must reject everything")
	}
}

func TestClassifierReset(t *testing.T) {
	c := NewClassifier(3)
	c.Offer(Entry{1, 1})
	c.Reset(5)
	if c.Len() != 0 || c.K() != 5 {
		t.Fatal("Reset failed")
	}
}

func TestClassifierQuickMatchesSort(t *testing.T) {
	fn := func(priorities []uint16, kk uint8) bool {
		k := int(kk%32) + 1
		c := NewClassifier(k)
		for i, p := range priorities {
			c.Offer(Entry{Item: i, Priority: uint64(p)})
		}
		if len(priorities) <= k {
			return c.Len() == len(priorities)
		}
		sorted := make([]uint64, len(priorities))
		for i, p := range priorities {
			sorted[i] = uint64(p)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		// Sum of hot priorities must equal sum of true top-k priorities
		// (items are exchangeable on ties, sums are not).
		var wantSum, gotSum uint64
		for i := 0; i < k; i++ {
			wantSum += sorted[i]
		}
		for _, e := range c.Hot() {
			gotSum += e.Priority
		}
		return gotSum == wantSum
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetK(t *testing.T) {
	// 100 compressed @10B, 0 uncompressed @50B, budget 3000:
	// used = 1000, each expansion costs 40 -> k = 2000/40 = 50.
	if k := BudgetK(3000, 100, 10, 0, 50); k != 50 {
		t.Fatalf("k=%d want 50", k)
	}
	// Already 10 expanded: used = 90*10+10*50 = 1400, headroom 1600/40 = 40,
	// plus the 10 already expanded = 50.
	if k := BudgetK(3000, 90, 10, 10, 50); k != 50 {
		t.Fatalf("k=%d want 50", k)
	}
	// Budget below current usage clamps to the already-expanded count or 0.
	if k := BudgetK(100, 90, 10, 10, 50); k != 0 {
		t.Fatalf("k=%d want 0", k)
	}
	// Degenerate encoding sizes: everything may expand.
	if k := BudgetK(1, 3, 10, 4, 10); k != 7 {
		t.Fatalf("k=%d want 7", k)
	}
	// Clamp to total units.
	if k := BudgetK(1<<40, 5, 10, 5, 50); k != 10 {
		t.Fatalf("k=%d want 10", k)
	}
}

func BenchmarkClassifierOffer(b *testing.B) {
	c := NewClassifier(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Offer(Entry{Item: i, Priority: uint64(i*2654435761) % 1_000_000})
	}
}
