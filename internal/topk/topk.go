// Package topk implements the error-bounded top-k machinery of the paper's
// §2 and the single-pass heap classifier of §3.1.4: the sample-size formula
// (Equation 1) and a bounded min-heap that labels the k most frequent
// tracked units as hot in O(u·(1+log k)) for u unique samples.
package topk

import "math"

// DefaultEpsilon and DefaultDelta are the paper's chosen operating point
// (ε = δ = 5%), the "reasonable trade-off between sample size and accuracy".
const (
	DefaultEpsilon = 0.05
	DefaultDelta   = 0.05
)

// SampleSize evaluates Equation (1):
//
//	|S| = ceil( 2/ε² · ln( (2n + k(n−k)) / δ ) )
//
// where n is the number of distinct items (leaf nodes), k the number of
// top items to identify, ε the tolerated classification error and δ the
// failure probability. The paper's typesetting leaves the parenthesization
// of the logarithm's argument ambiguous; this reading reproduces the
// qualitative behaviour of the paper's Figure 2 (quadratic growth in 1/ε,
// mild growth in k) and is documented as an interpretation in DESIGN.md.
func SampleSize(n, k int, eps, delta float64) int {
	if n <= 0 {
		return 0
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if delta <= 0 || delta >= 1 {
		delta = DefaultDelta
	}
	arg := (2*float64(n) + float64(k)*float64(n-k)) / delta
	if arg < math.E {
		arg = math.E
	}
	s := 2 / (eps * eps) * math.Log(arg)
	return int(math.Ceil(s))
}

// Entry is one candidate for the top-k classification: an opaque item
// index (the caller maps it back to its tracked unit) and its priority,
// by default the sum of sampled read and write counters.
type Entry struct {
	Item     int
	Priority uint64
}

// Classifier is a bounded min-heap over Entry priorities. Offer pushes a
// candidate; once the heap holds k entries, a new candidate displaces the
// current minimum only if it is strictly more frequent. Displaced items
// are reported so the caller can mark them cold again, exactly as the
// paper describes ("when nodes are displaced from the priority queue, they
// are marked cold again").
type Classifier struct {
	heap []Entry
	k    int
	// counters for the Figure 6 experiment
	inserts  int
	removals int
}

// NewClassifier creates a classifier for the top k items. k <= 0 yields a
// classifier that rejects everything (memory budget already exhausted).
func NewClassifier(k int) *Classifier {
	if k < 0 {
		k = 0
	}
	return &Classifier{k: k, heap: make([]Entry, 0, min(k, 4096))}
}

// K returns the configured capacity.
func (c *Classifier) K() int { return c.k }

// Len returns the number of currently hot entries.
func (c *Classifier) Len() int { return len(c.heap) }

// Stats returns the number of heap inserts and removals performed, the
// quantities plotted in the paper's Figure 6.
func (c *Classifier) Stats() (inserts, removals int) { return c.inserts, c.removals }

// Offer submits a candidate. It returns (displaced, true) when an earlier
// entry fell out of the top-k, (Entry{}, false) otherwise. When the
// candidate itself does not qualify, it is returned as displaced.
func (c *Classifier) Offer(e Entry) (displaced Entry, evicted bool) {
	if c.k == 0 {
		return e, true
	}
	if len(c.heap) < c.k {
		c.heap = append(c.heap, e)
		c.siftUp(len(c.heap) - 1)
		c.inserts++
		return Entry{}, false
	}
	if e.Priority <= c.heap[0].Priority {
		return e, true
	}
	displaced = c.heap[0]
	c.heap[0] = e
	c.siftDown(0)
	c.inserts++
	c.removals++
	return displaced, true
}

// Hot returns the current top-k entries in arbitrary (heap) order. The
// slice aliases internal storage and is only valid until the next Offer.
func (c *Classifier) Hot() []Entry { return c.heap }

// Threshold returns the smallest priority currently classified hot, or 0
// when the heap is not yet full.
func (c *Classifier) Threshold() uint64 {
	if len(c.heap) < c.k || len(c.heap) == 0 {
		return 0
	}
	return c.heap[0].Priority
}

// Reset empties the classifier, keeping capacity.
func (c *Classifier) Reset(k int) {
	if k < 0 {
		k = 0
	}
	c.k = k
	c.heap = c.heap[:0]
	c.inserts, c.removals = 0, 0
}

func (c *Classifier) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent].Priority <= c.heap[i].Priority {
			return
		}
		c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
		i = parent
	}
}

func (c *Classifier) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.heap[l].Priority < c.heap[smallest].Priority {
			smallest = l
		}
		if r < n && c.heap[r].Priority < c.heap[smallest].Priority {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.heap[i], c.heap[smallest] = c.heap[smallest], c.heap[i]
		i = smallest
	}
}

// BudgetK approximates the number of tracked units that can be expanded
// without exceeding the memory budget (paper §3, "Sample-based
// Classification"): with nc compressed units of mc bytes each and nu
// uncompressed units of mu bytes, k = (mb − (nc·mc + nu·mu)) / (mu − mc).
// The result is clamped to [0, nc+nu].
func BudgetK(budget, nc, mc, nu, mu int64) int {
	if mu <= mc {
		return int(nc + nu)
	}
	k := (budget - (nc*mc + nu*mu)) / (mu - mc)
	// Already-expanded units stay countable against the budget: every
	// uncompressed unit occupies one of the expandable slots.
	k += nu
	if k < 0 {
		k = 0
	}
	if k > nc+nu {
		k = nc + nu
	}
	return int(k)
}
