// Package fst implements the Fast Succinct Trie of Zhang et al. (SIGMOD
// 2018) as used by the paper's Hybrid Trie (§4.2): a static, pointer-free
// trie over prefix-free byte-string keys. The hot upper levels use the
// LOUDS-dense encoding (two 256-bit bitmaps per node, constant-time child
// steps via rank), the remaining levels LOUDS-sparse (one explicit label
// byte plus two bits per edge). Child positions are computed with
// rank/select over the bit vectors of internal/bitutil instead of stored
// pointers.
//
// Unlike SuRF (a filter), this FST stores complete keys and one uint64
// value per key. Keys must be sorted, unique, and prefix-free (append a
// terminator for variable-length keys; see art.Terminate).
//
// Node numbering is global BFS order: dense nodes first (0..DenseNodes-1),
// then sparse nodes. The Hybrid Trie stores these numbers in tagged ART
// handles and resumes lookups mid-trie via LookupFrom.
package fst

import (
	"fmt"
	"sync"

	"ahi/internal/bitutil"
)

// Config controls the dense/sparse split.
type Config struct {
	// DenseLevels forces the number of LOUDS-dense levels: 0 encodes the
	// whole trie sparsely (the paper's FST-sparse variant), a large value
	// densely (FST-dense). Negative selects automatically like SuRF: a
	// level is dense while its dense encoding costs at most SizeRatio
	// times its sparse encoding.
	DenseLevels int
	// SizeRatio is the auto-selection threshold (default 16, SuRF's R).
	SizeRatio int
}

// AutoDense returns a Config with SuRF-style automatic level selection.
func AutoDense() Config { return Config{DenseLevels: -1, SizeRatio: 16} }

// FST is the immutable trie. Build it with New.
type FST struct {
	// Dense part.
	dLabels   *bitutil.BitVector // nd*256 bits
	dHasChild *bitutil.BitVector // nd*256 bits
	dValues   []uint64
	nd        int // dense node count
	dEdges    int // total has-child edges in the dense part

	// Sparse part.
	sLabels   []byte
	sHasChild *bitutil.BitVector
	sLouds    *bitutil.BitVector
	sValues   []uint64
	ns        int // sparse node count

	height  int
	numKeys int
}

// levelData accumulates one BFS level during construction.
type levelData struct {
	labels   []byte
	hasChild []bool
	louds    []bool
	values   []uint64 // aligned with leaf edges, in position order
	nodes    int
}

// rng is one pending key range in the BFS construction: keys[lo:hi] share
// a prefix of length depth and form one trie node.
type rng struct{ lo, hi, depth int }

// buildScratch holds the transient state of New — the BFS range queues and
// the per-level accumulation buffers. Nothing in it survives construction
// (the flattening loops copy every label, bit and value into the FST), so
// the backing arrays are pooled: the Hybrid Trie rebuilds subtries on
// every compaction, and repeated builds reuse buffers instead of growing
// them from nil each time.
type buildScratch struct {
	queue, next []rng
	levels      []levelData
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// New builds an FST from sorted, unique, prefix-free keys and their
// values. It panics on unsorted or prefix-violating input, because a
// silently corrupt static index would poison every experiment above it.
func New(cfg Config, keys [][]byte, vals []uint64) *FST {
	if len(keys) != len(vals) {
		panic("fst: keys/vals length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if cmp := compareBytes(keys[i-1], keys[i]); cmp >= 0 {
			panic(fmt.Sprintf("fst: keys not sorted/unique at %d", i))
		}
	}
	if cfg.SizeRatio <= 0 {
		cfg.SizeRatio = 16
	}
	f := &FST{numKeys: len(keys)}
	if len(keys) == 0 {
		var empty bitutil.Builder
		f.dLabels = empty.Build()
		var e2, e3, e4 bitutil.Builder
		f.dHasChild = e2.Build()
		f.sHasChild = e3.Build()
		f.sLouds = e4.Build()
		return f
	}

	sc := buildPool.Get().(*buildScratch)
	levels := buildLevels(sc, keys, vals)
	f.height = len(levels)

	// Pick the dense cutoff.
	denseLevels := cfg.DenseLevels
	if denseLevels < 0 {
		denseLevels = 0
		for _, lv := range levels {
			denseBits := lv.nodes * 512
			sparseBits := len(lv.labels) * 10
			if sparseBits == 0 || denseBits > cfg.SizeRatio*sparseBits {
				break
			}
			denseLevels++
		}
	}
	if denseLevels > len(levels) {
		denseLevels = len(levels)
	}

	// Flatten the dense part.
	var dl, dh bitutil.Builder
	for _, lv := range levels[:denseLevels] {
		for i, lab := range lv.labels {
			if lv.louds[i] {
				dl.AppendN(false, 256)
				dh.AppendN(false, 256)
			}
			pos := dl.Len() - 256 + int(lab)
			dl.Set(pos)
			if lv.hasChild[i] {
				dh.Set(pos)
			}
		}
		f.nd += lv.nodes
		f.dValues = append(f.dValues, lv.values...)
	}
	f.dLabels = dl.Build()
	f.dHasChild = dh.Build()
	f.dEdges = f.dHasChild.Ones()

	// Flatten the sparse part.
	var sh, sl bitutil.Builder
	for _, lv := range levels[denseLevels:] {
		for i, lab := range lv.labels {
			f.sLabels = append(f.sLabels, lab)
			sh.Append(lv.hasChild[i])
			sl.Append(lv.louds[i])
		}
		f.ns += lv.nodes
		f.sValues = append(f.sValues, lv.values...)
	}
	f.sHasChild = sh.Build()
	f.sLouds = sl.Build()
	buildPool.Put(sc)
	return f
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// buildLevels runs the BFS construction over the implied trie, reusing
// the scratch's queues and level buffers. The returned levels alias the
// scratch; the caller must finish flattening before pooling it again.
func buildLevels(sc *buildScratch, keys [][]byte, vals []uint64) []levelData {
	queue := append(sc.queue[:0], rng{0, len(keys), 0})
	next := sc.next[:0]
	levels := sc.levels[:0]
	for len(queue) > 0 {
		next = next[:0]
		var lv levelData
		if len(levels) < cap(levels) {
			// Reclaim the buffers of the element append is about to occupy.
			old := levels[:len(levels)+1][len(levels)]
			lv = levelData{
				labels:   old.labels[:0],
				hasChild: old.hasChild[:0],
				louds:    old.louds[:0],
				values:   old.values[:0],
			}
		}
		for _, r := range queue {
			lv.nodes++
			first := true
			i := r.lo
			for i < r.hi {
				if r.depth >= len(keys[i]) {
					panic(fmt.Sprintf("fst: key %d is a prefix of a later key (input not prefix-free)", i))
				}
				lab := keys[i][r.depth]
				j := i + 1
				for j < r.hi && r.depth < len(keys[j]) && keys[j][r.depth] == lab {
					j++
				}
				leafEdge := j == i+1 && len(keys[i]) == r.depth+1
				lv.labels = append(lv.labels, lab)
				lv.louds = append(lv.louds, first)
				lv.hasChild = append(lv.hasChild, !leafEdge)
				if leafEdge {
					lv.values = append(lv.values, vals[i])
				} else {
					next = append(next, rng{i, j, r.depth + 1})
				}
				first = false
				i = j
			}
		}
		levels = append(levels, lv)
		queue, next = next, queue
	}
	sc.queue, sc.next, sc.levels = queue, next, levels
	return levels
}

// Len returns the number of keys.
func (f *FST) Len() int { return f.numKeys }

// Height returns the number of trie levels.
func (f *FST) Height() int { return f.height }

// DenseNodes returns the number of LOUDS-dense nodes; node numbers below
// this are dense.
func (f *FST) DenseNodes() int { return f.nd }

// SparseNodes returns the number of LOUDS-sparse nodes.
func (f *FST) SparseNodes() int { return f.ns }

// NumNodes returns the total node count.
func (f *FST) NumNodes() int { return f.nd + f.ns }

// Bytes returns the approximate heap footprint.
func (f *FST) Bytes() int64 {
	return int64(f.dLabels.Bytes() + f.dHasChild.Bytes() + len(f.dValues)*8 +
		len(f.sLabels) + f.sHasChild.Bytes() + f.sLouds.Bytes() + len(f.sValues)*8)
}

// Root returns the root node number (0). Present for symmetry with the
// Hybrid Trie's handle plumbing.
func (f *FST) Root() uint32 { return 0 }

// sparseRange returns the label positions [start, end) of sparse node s.
func (f *FST) sparseRange(s int) (int, int) {
	start := f.sLouds.Select1(s + 1)
	end := f.sLouds.NextSet(start + 1)
	if end < 0 {
		end = len(f.sLabels)
	}
	return start, end
}

// step advances from node via label b. It returns the child node number
// (when hasChild), the value (when a leaf edge), or found=false.
func (f *FST) step(node int, b byte) (child int, val uint64, isLeaf, found bool) {
	if node < f.nd {
		pos := node*256 + int(b)
		if !f.dLabels.Get(pos) {
			return 0, 0, false, false
		}
		if f.dHasChild.Get(pos) {
			return f.dHasChild.Rank1(pos + 1), 0, false, true
		}
		vi := f.dLabels.Rank1(pos) - f.dHasChild.Rank1(pos)
		return 0, f.dValues[vi], true, true
	}
	s := node - f.nd
	start, end := f.sparseRange(s)
	for p := start; p < end; p++ {
		if f.sLabels[p] == b {
			if f.sHasChild.Get(p) {
				return f.dEdges + f.sHasChild.Rank1(p+1), 0, false, true
			}
			return 0, f.sValues[p-f.sHasChild.Rank1(p)], true, true
		}
		if f.sLabels[p] > b {
			break
		}
	}
	return 0, 0, false, false
}

// Lookup returns the value stored under key.
func (f *FST) Lookup(key []byte) (uint64, bool) {
	return f.LookupFrom(0, key, 0)
}

// LookupFrom resumes a lookup at the given node, consuming key[depth:].
// The Hybrid Trie calls this after traversing its ART levels.
func (f *FST) LookupFrom(node uint32, key []byte, depth int) (uint64, bool) {
	if f.numKeys == 0 {
		return 0, false
	}
	n := int(node)
	for d := depth; d < len(key); d++ {
		child, val, isLeaf, found := f.step(n, key[d])
		if !found {
			return 0, false
		}
		if isLeaf {
			if d == len(key)-1 {
				return val, true
			}
			return 0, false
		}
		n = child
	}
	return 0, false
}

// Child is one outgoing edge of a node.
type Child struct {
	Label  byte
	Node   uint32 // child node number (when !IsLeaf)
	Val    uint64 // value (when IsLeaf)
	IsLeaf bool
}

// Children enumerates a node's edges in label order — the FST→ART
// expansion path of the Hybrid Trie ("labels stored within the FST node
// must first be collected", §4.2.2).
func (f *FST) Children(node uint32) []Child {
	n := int(node)
	var out []Child
	if n < f.nd {
		base := n * 256
		for pos := f.dLabels.NextSet(base); pos >= 0 && pos < base+256; pos = f.dLabels.NextSet(pos + 1) {
			b := byte(pos - base)
			if f.dHasChild.Get(pos) {
				out = append(out, Child{Label: b, Node: uint32(f.dHasChild.Rank1(pos + 1))})
			} else {
				vi := f.dLabels.Rank1(pos) - f.dHasChild.Rank1(pos)
				out = append(out, Child{Label: b, Val: f.dValues[vi], IsLeaf: true})
			}
		}
		return out
	}
	s := n - f.nd
	start, end := f.sparseRange(s)
	for p := start; p < end; p++ {
		if f.sHasChild.Get(p) {
			out = append(out, Child{Label: f.sLabels[p], Node: uint32(f.dEdges + f.sHasChild.Rank1(p+1))})
		} else {
			out = append(out, Child{Label: f.sLabels[p], Val: f.sValues[p-f.sHasChild.Rank1(p)], IsLeaf: true})
		}
	}
	return out
}

// DescendPath walks toDepth bytes of key from the root and returns the
// node reached, or ok=false if the walk leaves the trie or hits a leaf
// edge first. The Hybrid Trie uses it to locate its cutoff-level nodes.
func (f *FST) DescendPath(key []byte, toDepth int) (uint32, bool) {
	if f.numKeys == 0 {
		return 0, false
	}
	n := 0
	for d := 0; d < toDepth; d++ {
		if d >= len(key) {
			return 0, false
		}
		child, _, isLeaf, found := f.step(n, key[d])
		if !found || isLeaf {
			return 0, false
		}
		n = child
	}
	return uint32(n), true
}

// NumChildren returns a node's fanout (labels including leaf edges).
func (f *FST) NumChildren(node uint32) int {
	n := int(node)
	if n < f.nd {
		return f.dLabels.Rank1((n+1)*256) - f.dLabels.Rank1(n*256)
	}
	start, end := f.sparseRange(n - f.nd)
	return end - start
}
