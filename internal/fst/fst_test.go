package fst

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ahi/internal/dataset"
)

func u64key(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func u64keys(keys []uint64) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = u64key(k)
	}
	return out
}

func seqVals(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i) * 3
	}
	return v
}

func configs() map[string]Config {
	return map[string]Config{
		"sparse": {DenseLevels: 0},
		"dense":  {DenseLevels: 64},
		"auto":   AutoDense(),
		"mixed2": {DenseLevels: 2},
	}
}

func TestLookupU64AllConfigs(t *testing.T) {
	keys := dataset.OSM(30000, 1)
	vals := seqVals(len(keys))
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			f := New(cfg, u64keys(keys), vals)
			if f.Len() != len(keys) {
				t.Fatalf("Len=%d", f.Len())
			}
			for i, k := range keys {
				v, ok := f.Lookup(u64key(k))
				if !ok || v != vals[i] {
					t.Fatalf("Lookup(%d)=(%d,%v) want %d", k, v, ok, vals[i])
				}
			}
			// Misses.
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < 20000; i++ {
				k := rng.Uint64()
				idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
				if idx < len(keys) && keys[idx] == k {
					continue
				}
				if _, ok := f.Lookup(u64key(k)); ok {
					t.Fatalf("phantom %d", k)
				}
			}
		})
	}
}

func TestLookupEmails(t *testing.T) {
	emails := dataset.Emails(15000, 3)
	keys := make([][]byte, len(emails))
	for i, e := range emails {
		keys[i] = append([]byte(e), 0) // terminator: prefix-free
	}
	vals := seqVals(len(keys))
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			f := New(cfg, keys, vals)
			for i := range keys {
				v, ok := f.Lookup(keys[i])
				if !ok || v != vals[i] {
					t.Fatalf("Lookup(%q) failed", emails[i])
				}
			}
			if _, ok := f.Lookup(append([]byte("zzz@nonexistent"), 0)); ok {
				t.Fatal("phantom email")
			}
			// A non-terminated prefix of a stored key must miss.
			if _, ok := f.Lookup([]byte(emails[0])); ok {
				t.Fatal("prefix matched without terminator")
			}
		})
	}
}

func TestDenseVsSparseSizes(t *testing.T) {
	keys := dataset.OSM(50000, 5)
	vals := seqVals(len(keys))
	fd := New(Config{DenseLevels: 64}, u64keys(keys), vals)
	fs := New(Config{DenseLevels: 0}, u64keys(keys), vals)
	if fd.DenseNodes() == 0 || fd.SparseNodes() != 0 {
		t.Fatalf("dense config wrong: %d dense %d sparse", fd.DenseNodes(), fd.SparseNodes())
	}
	if fs.DenseNodes() != 0 || fs.SparseNodes() == 0 {
		t.Fatalf("sparse config wrong")
	}
	// Table 2's direction: for low-fanout deep levels, the sparse encoding
	// is smaller than all-dense.
	if fs.Bytes() >= fd.Bytes() {
		t.Fatalf("sparse (%d) should be smaller than dense (%d) here", fs.Bytes(), fd.Bytes())
	}
	auto := New(AutoDense(), u64keys(keys), vals)
	if auto.DenseNodes() == 0 || auto.SparseNodes() == 0 {
		t.Fatalf("auto config should mix: %d/%d", auto.DenseNodes(), auto.SparseNodes())
	}
	if auto.Bytes() > fd.Bytes() {
		t.Fatal("auto should not exceed all-dense size")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	f := New(AutoDense(), nil, nil)
	if _, ok := f.Lookup([]byte("x")); ok {
		t.Fatal("empty FST hit")
	}
	it := NewIterator(f)
	if it.SeekFirst() {
		t.Fatal("empty iterator valid")
	}
	f1 := New(AutoDense(), [][]byte{{5, 0}}, []uint64{99})
	if v, ok := f1.Lookup([]byte{5, 0}); !ok || v != 99 {
		t.Fatal("single-key lookup failed")
	}
	if _, ok := f1.Lookup([]byte{5}); ok {
		t.Fatal("partial key hit")
	}
	if _, ok := f1.Lookup([]byte{5, 0, 1}); ok {
		t.Fatal("over-long key hit")
	}
}

func TestChildrenMatchesTrieShape(t *testing.T) {
	keys := [][]byte{
		{1, 1, 0}, {1, 2, 0}, {1, 2, 1}, {2, 0}, {3, 7, 7, 0},
	}
	vals := []uint64{10, 20, 30, 40, 50}
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			f := New(cfg, keys, vals)
			root := f.Children(0)
			if len(root) != 3 {
				t.Fatalf("root children=%d want 3", len(root))
			}
			if root[0].Label != 1 || root[1].Label != 2 || root[2].Label != 3 {
				t.Fatalf("root labels wrong: %+v", root)
			}
			if root[0].IsLeaf || root[1].IsLeaf || root[2].IsLeaf {
				t.Fatal("root edges must be internal")
			}
			// Follow label 2 -> node with single leaf edge 0 (val 40).
			n2 := f.Children(root[1].Node)
			if len(n2) != 1 || !n2[0].IsLeaf || n2[0].Val != 40 || n2[0].Label != 0 {
				t.Fatalf("node2 children: %+v", n2)
			}
			if f.NumChildren(root[1].Node) != 1 {
				t.Fatal("NumChildren wrong")
			}
		})
	}
}

func TestDescendPath(t *testing.T) {
	keys := dataset.OSM(5000, 7)
	f := New(AutoDense(), u64keys(keys), seqVals(len(keys)))
	k := u64key(keys[1234])
	node, ok := f.DescendPath(k, 3)
	if !ok {
		t.Fatal("descend failed")
	}
	// Resuming from that node must find the key.
	if v, ok := f.LookupFrom(node, k, 3); !ok || v != uint64(1234)*3 {
		t.Fatalf("LookupFrom failed: %d %v", v, ok)
	}
	// Descending along a non-existent path fails.
	bad := append([]byte{}, k...)
	bad[0] ^= 0x55
	if _, ok := f.DescendPath(bad, 3); ok {
		// The flipped first byte may still exist in the trie: verify by
		// checking the true lookup misses instead.
		if _, hit := f.Lookup(bad); hit {
			t.Fatal("flipped key should miss")
		}
	}
}

func TestIteratorFullOrder(t *testing.T) {
	keys := dataset.OSM(20000, 9)
	vals := seqVals(len(keys))
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			f := New(cfg, u64keys(keys), vals)
			it := NewIterator(f)
			i := 0
			for ok := it.SeekFirst(); ok; ok = it.Next() {
				if !bytes.Equal(it.Key(), u64key(keys[i])) {
					t.Fatalf("iter key %d mismatch", i)
				}
				if it.Value() != vals[i] {
					t.Fatalf("iter val %d mismatch", i)
				}
				i++
			}
			if i != len(keys) {
				t.Fatalf("iterated %d of %d", i, len(keys))
			}
		})
	}
}

func TestIteratorSeek(t *testing.T) {
	keys := dataset.OSM(10000, 11)
	f := New(AutoDense(), u64keys(keys), seqVals(len(keys)))
	it := NewIterator(f)
	// Seek to existing keys.
	for _, idx := range []int{0, 1, 500, 9998, 9999} {
		if !it.Seek(u64key(keys[idx])) {
			t.Fatalf("Seek(keys[%d]) invalid", idx)
		}
		if !bytes.Equal(it.Key(), u64key(keys[idx])) {
			t.Fatalf("Seek(keys[%d]) landed elsewhere", idx)
		}
	}
	// Seek between keys lands on the successor.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		idx := rng.Intn(len(keys) - 1)
		probe := keys[idx] + 1
		want := idx + 1
		for keys[want] < probe {
			want++
		}
		if keys[idx+1] == probe {
			want = idx + 1
		}
		if !it.Seek(u64key(probe)) {
			t.Fatalf("Seek(%d) invalid", probe)
		}
		got := binary.BigEndian.Uint64(it.Key())
		idxWant := sort.Search(len(keys), func(j int) bool { return keys[j] >= probe })
		if got != keys[idxWant] {
			t.Fatalf("Seek(%d) got %d want %d", probe, got, keys[idxWant])
		}
	}
	// Seek beyond the last key.
	if it.Seek(u64key(keys[len(keys)-1] + 1)) {
		t.Fatal("Seek past end should be invalid")
	}
}

func TestIteratorSeekVariableLength(t *testing.T) {
	raw := []string{"app", "apple", "applied", "apply", "banana", "band", "bx"}
	var keys [][]byte
	for _, s := range raw {
		keys = append(keys, append([]byte(s), 0))
	}
	f := New(Config{DenseLevels: 1}, keys, seqVals(len(keys)))
	it := NewIterator(f)
	// "appl" is between "app" and "apple".
	if !it.Seek(append([]byte("appl"), 0)) {
		t.Fatal("seek invalid")
	}
	if string(it.Key()) != "apple\x00" {
		t.Fatalf("got %q", it.Key())
	}
	// Seeking an exact prefix key.
	if !it.Seek(append([]byte("app"), 0)) || string(it.Key()) != "app\x00" {
		t.Fatal("exact seek failed")
	}
	// Past everything in the 'b' subtree.
	if it.Seek(append([]byte("bz"), 0)) {
		t.Fatal("seek past end valid")
	}
	// Between subtrees.
	if !it.Seek(append([]byte("az"), 0)) || string(it.Key()) != "banana\x00" {
		t.Fatalf("between-subtree seek got %q", it.Key())
	}
}

func TestSubtreeIterator(t *testing.T) {
	keys := [][]byte{
		{1, 1, 0}, {1, 2, 0}, {1, 2, 1}, {2, 0}, {3, 7, 7, 0},
	}
	f := New(Config{DenseLevels: 0}, keys, []uint64{10, 20, 30, 40, 50})
	root := f.Children(0)
	// Subtree under label 1 contains suffixes {1,0},{2,0},{2,1}.
	it := NewIteratorAt(f, root[0].Node)
	var got [][]byte
	for ok := it.SeekFirst(); ok; ok = it.Next() {
		got = append(got, append([]byte{}, it.Key()...))
	}
	want := [][]byte{{1, 0}, {2, 0}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("subtree iterated %d", len(got))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("subtree key %d = %v want %v", i, got[i], want[i])
		}
	}
	// Seek within the subtree.
	if !it.Seek([]byte{2, 0}) || !bytes.Equal(it.Key(), []byte{2, 0}) || it.Value() != 20 {
		t.Fatal("subtree seek failed")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("unsorted", func() {
		New(AutoDense(), [][]byte{{2, 0}, {1, 0}}, []uint64{1, 2})
	})
	mustPanic("duplicate", func() {
		New(AutoDense(), [][]byte{{1, 0}, {1, 0}}, []uint64{1, 2})
	})
	mustPanic("prefix", func() {
		New(AutoDense(), [][]byte{{1}, {1, 0}}, []uint64{1, 2})
	})
	mustPanic("length mismatch", func() {
		New(AutoDense(), [][]byte{{1}}, nil)
	})
}

func TestHeightAndCounts(t *testing.T) {
	keys := u64keys(dataset.OSM(1000, 13))
	f := New(AutoDense(), keys, seqVals(len(keys)))
	if f.Height() != 8 {
		t.Fatalf("height=%d want 8 for fixed 8-byte keys", f.Height())
	}
	if f.NumNodes() != f.DenseNodes()+f.SparseNodes() {
		t.Fatal("node counts inconsistent")
	}
	if f.Bytes() <= 0 {
		t.Fatal("Bytes")
	}
}

func BenchmarkFSTLookupAuto(b *testing.B) {
	keys := dataset.OSM(200000, 1)
	f := New(AutoDense(), u64keys(keys), seqVals(len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(u64key(keys[i%len(keys)]))
	}
}

func BenchmarkFSTLookupSparse(b *testing.B) {
	keys := dataset.OSM(200000, 1)
	f := New(Config{DenseLevels: 0}, u64keys(keys), seqVals(len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(u64key(keys[i%len(keys)]))
	}
}

func TestLookupFromMidTrie(t *testing.T) {
	keys := dataset.OSM(5000, 21)
	f := New(Config{DenseLevels: 3}, u64keys(keys), seqVals(len(keys)))
	// Resume from every depth along one key's path.
	k := u64key(keys[2500])
	for d := 0; d < 8; d++ {
		node, ok := f.DescendPath(k, d)
		if !ok {
			t.Fatalf("DescendPath depth %d failed", d)
		}
		v, ok := f.LookupFrom(node, k, d)
		if !ok || v != uint64(2500)*3 {
			t.Fatalf("LookupFrom depth %d = (%d,%v)", d, v, ok)
		}
	}
	// Resuming with a non-matching suffix misses.
	node, _ := f.DescendPath(k, 4)
	bad := append([]byte{}, k...)
	bad[7] ^= 0xff
	if _, ok := f.LookupFrom(node, bad, 4); ok {
		idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= binary.BigEndian.Uint64(bad) })
		if idx >= len(keys) || keys[idx] != binary.BigEndian.Uint64(bad) {
			t.Fatal("phantom suffix match")
		}
	}
}

func TestChildrenConsistentWithLookup(t *testing.T) {
	// Walking Children() edges from the root must reach every key with the
	// same values Lookup reports — the invariant the Hybrid Trie's
	// expansions rely on.
	keys := dataset.OSM(2000, 23)
	f := New(AutoDense(), u64keys(keys), seqVals(len(keys)))
	count := 0
	var walk func(node uint32, prefix []byte)
	walk = func(node uint32, prefix []byte) {
		for _, c := range f.Children(node) {
			path := append(prefix, c.Label)
			if c.IsLeaf {
				v, ok := f.Lookup(path)
				if !ok || v != c.Val {
					t.Fatalf("edge value mismatch at %x: (%d,%v) vs %d", path, v, ok, c.Val)
				}
				count++
				continue
			}
			walk(c.Node, path)
		}
	}
	walk(0, nil)
	if count != len(keys) {
		t.Fatalf("children walk found %d of %d keys", count, len(keys))
	}
}

func TestQuickFSTAgainstSortedSlice(t *testing.T) {
	fn := func(raw []uint16, dense uint8) bool {
		set := map[uint64]bool{}
		for _, r := range raw {
			set[uint64(r)] = true
		}
		if len(set) == 0 {
			return true
		}
		var ks []uint64
		for k := range set {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		bk := make([][]byte, len(ks))
		vals := make([]uint64, len(ks))
		for i, k := range ks {
			bk[i] = []byte{byte(k >> 8), byte(k), 0}
			vals[i] = k * 7
		}
		f := New(Config{DenseLevels: int(dense % 4)}, bk, vals)
		for i := range bk {
			if v, ok := f.Lookup(bk[i]); !ok || v != vals[i] {
				return false
			}
		}
		// Seek semantics match sort.Search on the sorted slice.
		it := NewIterator(f)
		for probe := 0; probe < 1<<16; probe += 997 {
			key := []byte{byte(probe >> 8), byte(probe), 0}
			idx := sort.Search(len(ks), func(j int) bool { return ks[j] >= uint64(probe) })
			got := it.Seek(key)
			if idx == len(ks) {
				if got {
					return false
				}
				continue
			}
			if !got || !bytes.Equal(it.Key(), bk[idx]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
