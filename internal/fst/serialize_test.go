package fst

import (
	"bytes"
	"errors"
	"testing"

	"ahi/internal/dataset"
)

func TestSerializeRoundTrip(t *testing.T) {
	keys := dataset.OSM(20000, 31)
	vals := seqVals(len(keys))
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			f := New(cfg, u64keys(keys), vals)
			var buf bytes.Buffer
			n, err := f.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d of %d bytes", n, buf.Len())
			}
			g, err := ReadFST(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != f.Len() || g.Height() != f.Height() ||
				g.DenseNodes() != f.DenseNodes() || g.SparseNodes() != f.SparseNodes() {
				t.Fatal("metadata mismatch")
			}
			for i, k := range keys {
				v, ok := g.Lookup(u64key(k))
				if !ok || v != vals[i] {
					t.Fatalf("loaded FST lost key %d", k)
				}
			}
			// Iterators over the loaded trie still work (directories were
			// rebuilt correctly).
			it := NewIterator(g)
			count := 0
			for ok := it.SeekFirst(); ok; ok = it.Next() {
				count++
			}
			if count != len(keys) {
				t.Fatalf("loaded iterator visited %d", count)
			}
		})
	}
}

func TestSerializeEmails(t *testing.T) {
	emails := dataset.Emails(5000, 33)
	keys := make([][]byte, len(emails))
	for i, e := range emails {
		keys[i] = append([]byte(e), 0)
	}
	f := New(AutoDense(), keys, seqVals(len(keys)))
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	onDisk := buf.Len()
	g, err := ReadFST(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if v, ok := g.Lookup(keys[i]); !ok || v != uint64(i)*3 {
			t.Fatalf("email %q lost", emails[i])
		}
	}
	// The serialized form should be in the ballpark of the in-memory
	// succinct footprint (directories excluded, headers added).
	if int64(onDisk) > f.Bytes()*2 {
		t.Fatalf("on-disk %d vs in-memory %d", onDisk, f.Bytes())
	}
}

func TestSerializeRejectsCorrupt(t *testing.T) {
	f := New(AutoDense(), [][]byte{{1, 0}, {2, 0}}, []uint64{1, 2})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := ReadFST(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[8] ^= 0xff
	if _, err := ReadFST(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated payload.
	if _, err := ReadFST(bytes.NewReader(good[:len(good)-9])); err == nil {
		t.Fatal("truncated input accepted")
	}
	// Empty input.
	if _, err := ReadFST(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSerializeEmpty(t *testing.T) {
	f := New(AutoDense(), nil, nil)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFST(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatal("empty round trip")
	}
	if _, ok := g.Lookup([]byte{1}); ok {
		t.Fatal("empty FST hit after load")
	}
}

// TestSerializeBitFlips flips one bit at every byte offset of a valid
// stream: the CRC trailer covers everything before it, so every flip must
// be rejected with ErrCorrupt — never loaded silently.
func TestSerializeBitFlips(t *testing.T) {
	f := New(AutoDense(), [][]byte{{1, 0}, {2, 0}, {3, 1, 0}, {9, 9, 0}}, []uint64{1, 2, 3, 4})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadFST(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	bad := make([]byte, len(good))
	for off := 0; off < len(good); off++ {
		copy(bad, good)
		bad[off] ^= 1 << (off % 8)
		if _, err := ReadFST(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: error not ErrCorrupt: %v", off, err)
		}
	}
}

// TestSerializeTruncations cuts the stream at every length.
func TestSerializeTruncations(t *testing.T) {
	f := New(AutoDense(), [][]byte{{1, 0}, {2, 0}}, []uint64{1, 2})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for n := 0; n < len(good); n++ {
		if _, err := ReadFST(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(good))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error not ErrCorrupt: %v", n, err)
		}
	}
}
