package fst

// Iterator walks keys of an FST subtree in ascending order. It can be
// rooted at any node (the Hybrid Trie stitches per-subtree iterators under
// its ART levels); Key returns the byte suffix below the iterator's root.
type Iterator struct {
	f      *FST
	root   int
	frames []iterFrame
	key    []byte // labels along the frame stack
	val    uint64
	valid  bool
}

// iterFrame is one level of the DFS: a node plus the cursor over its
// edges. Dense frames iterate bit positions of dLabels within the node's
// 256-bit block; sparse frames iterate label positions.
type iterFrame struct {
	node     int
	pos, end int
	dense    bool
}

// NewIterator returns an iterator over the whole trie.
func NewIterator(f *FST) *Iterator { return NewIteratorAt(f, 0) }

// NewIteratorAt returns an iterator over the subtree rooted at node.
func NewIteratorAt(f *FST, node uint32) *Iterator {
	return &Iterator{f: f, root: int(node)}
}

// frameFor opens a frame on node positioned at its first edge.
func (it *Iterator) frameFor(node int) iterFrame {
	f := it.f
	if node < f.nd {
		base := node * 256
		pos := f.dLabels.NextSet(base)
		return iterFrame{node: node, pos: pos, end: base + 256, dense: true}
	}
	start, end := f.sparseRange(node - f.nd)
	return iterFrame{node: node, pos: start, end: end}
}

// label returns the current edge's label byte.
func (fr *iterFrame) label(f *FST) byte {
	if fr.dense {
		return byte(fr.pos - fr.node*256)
	}
	return f.sLabels[fr.pos]
}

// edge resolves the current edge.
func (fr *iterFrame) edge(f *FST) (child int, val uint64, isLeaf bool) {
	if fr.dense {
		if f.dHasChild.Get(fr.pos) {
			return f.dHasChild.Rank1(fr.pos + 1), 0, false
		}
		vi := f.dLabels.Rank1(fr.pos) - f.dHasChild.Rank1(fr.pos)
		return 0, f.dValues[vi], true
	}
	if f.sHasChild.Get(fr.pos) {
		return f.dEdges + f.sHasChild.Rank1(fr.pos+1), 0, false
	}
	return 0, f.sValues[fr.pos-f.sHasChild.Rank1(fr.pos)], true
}

// exhausted reports whether the cursor ran past the node's edges.
func (fr *iterFrame) exhausted() bool {
	return fr.pos < 0 || fr.pos >= fr.end
}

// advance moves the cursor to the node's next edge. Advancing an already
// exhausted dense frame must stay exhausted: restarting NextSet at bit 0
// would wrap into another node's label block.
func (fr *iterFrame) advance(f *FST) {
	if fr.dense {
		if fr.pos < 0 {
			return
		}
		fr.pos = f.dLabels.NextSet(fr.pos + 1)
		if fr.pos < 0 || fr.pos >= fr.end {
			fr.pos = -1
		}
		return
	}
	fr.pos++
}

// push opens node and appends its first edge's label to the key.
func (it *Iterator) push(node int) {
	fr := it.frameFor(node)
	it.frames = append(it.frames, fr)
	it.key = append(it.key, 0)
	it.syncLabel()
}

func (it *Iterator) syncLabel() {
	top := &it.frames[len(it.frames)-1]
	if !top.exhausted() {
		it.key[len(it.key)-1] = top.label(it.f)
	}
}

func (it *Iterator) pop() {
	it.frames = it.frames[:len(it.frames)-1]
	it.key = it.key[:len(it.key)-1]
}

// descendMin repeatedly takes the current edge downward until a leaf edge
// is reached, then marks the iterator valid.
func (it *Iterator) descendMin() {
	for {
		top := &it.frames[len(it.frames)-1]
		if top.exhausted() {
			it.nextUp()
			return
		}
		child, val, isLeaf := top.edge(it.f)
		if isLeaf {
			it.val = val
			it.valid = true
			return
		}
		it.push(child)
	}
}

// nextUp advances the deepest non-exhausted frame and descends again.
func (it *Iterator) nextUp() {
	for len(it.frames) > 0 {
		top := &it.frames[len(it.frames)-1]
		top.advance(it.f)
		if !top.exhausted() {
			it.syncLabel()
			it.descendMin()
			return
		}
		it.pop()
	}
	it.valid = false
}

// SeekFirst positions at the subtree's smallest key.
func (it *Iterator) SeekFirst() bool {
	it.reset()
	if it.f.numKeys == 0 {
		return false
	}
	it.push(it.root)
	it.descendMin()
	return it.valid
}

func (it *Iterator) reset() {
	it.frames = it.frames[:0]
	it.key = it.key[:0]
	it.valid = false
}

// Seek positions at the first key (suffix, relative to the iterator root)
// >= from.
func (it *Iterator) Seek(from []byte) bool {
	it.reset()
	if it.f.numKeys == 0 {
		return false
	}
	it.push(it.root)
	for d := 0; ; d++ {
		top := &it.frames[len(it.frames)-1]
		if d >= len(from) {
			// from exhausted: everything below is >= from.
			it.descendMin()
			return it.valid
		}
		// Advance the cursor to the first label >= from[d].
		for !top.exhausted() && top.label(it.f) < from[d] {
			top.advance(it.f)
		}
		if top.exhausted() {
			it.nextUp()
			return it.valid
		}
		it.syncLabel()
		if top.label(it.f) > from[d] {
			it.descendMin()
			return it.valid
		}
		// Exact label match: descend.
		child, val, isLeaf := top.edge(it.f)
		if isLeaf {
			if d == len(from)-1 {
				it.val = val
				it.valid = true
				return true
			}
			// The leaf's key is a strict prefix of from, hence smaller:
			// move to the next edge.
			top.advance(it.f)
			if top.exhausted() {
				it.nextUp()
			} else {
				it.syncLabel()
				it.descendMin()
			}
			return it.valid
		}
		it.push(child)
	}
}

// Next advances to the following key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	it.nextUp()
	return it.valid
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key suffix (relative to the iterator's root).
// The slice is reused by Next/Seek; copy it to retain.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() uint64 { return it.val }
