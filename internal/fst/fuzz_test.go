package fst

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzFSTBuildAndLookup derives a sorted, unique, prefix-free key set from
// the fuzz input, builds both dense and sparse FSTs, and verifies lookups,
// misses and full iteration order.
func FuzzFSTBuildAndLookup(f *testing.F) {
	f.Add([]byte("hello world this is a trie"), uint8(2))
	f.Add([]byte{1, 2, 3, 250, 251, 252, 9, 9, 9, 8}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, dense uint8) {
		set := map[string]bool{}
		for i := 0; i+3 <= len(raw); i += 3 {
			k := bytes.ReplaceAll(raw[i:i+3], []byte{0}, []byte{11})
			set[string(append(k, 0))] = true // terminator: prefix-free
		}
		if len(set) == 0 {
			return
		}
		keys := make([][]byte, 0, len(set))
		for k := range set {
			keys = append(keys, []byte(k))
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i) * 3
		}
		fst := New(Config{DenseLevels: int(dense % 5)}, keys, vals)
		for i, k := range keys {
			if v, ok := fst.Lookup(k); !ok || v != vals[i] {
				t.Fatalf("Lookup(%x)=(%d,%v) want %d", k, v, ok, vals[i])
			}
			// Mutate one byte: must miss or match another stored key.
			bad := append([]byte{}, k...)
			bad[0] ^= 0x5a
			if v, ok := fst.Lookup(bad); ok {
				if !set[string(bad)] {
					t.Fatalf("phantom key %x -> %d", bad, v)
				}
			}
		}
		it := NewIterator(fst)
		i := 0
		for ok := it.SeekFirst(); ok; ok = it.Next() {
			if !bytes.Equal(it.Key(), keys[i]) || it.Value() != vals[i] {
				t.Fatalf("iteration diverged at %d", i)
			}
			i++
		}
		if i != len(keys) {
			t.Fatalf("iterated %d of %d", i, len(keys))
		}
	})
}
