package fst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ahi/internal/bitutil"
)

// Serialization format (version 1): a magic/version header, the scalar
// layout fields, then each section as a uint64-word stream. Rank/select
// directories are rebuilt at load time, so the on-disk form is close to
// the succinct in-memory payload. All integers are little-endian.
const (
	fstMagic   = uint64(0x4148494653543031) // "AHIFST01"
	fstVersion = uint64(1)
)

// WriteTo serializes the FST. It implements io.WriterTo.
func (f *FST) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(vals ...uint64) error {
		for _, v := range vals {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], v)
			n, err := bw.Write(buf[:])
			written += int64(n)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(fstMagic, fstVersion,
		uint64(f.nd), uint64(f.ns), uint64(f.dEdges),
		uint64(f.height), uint64(f.numKeys)); err != nil {
		return written, err
	}
	var words []uint64
	words = f.dLabels.AppendUint64s(words)
	words = f.dHasChild.AppendUint64s(words)
	words = append(words, uint64(len(f.dValues)))
	words = append(words, f.dValues...)
	words = append(words, uint64(len(f.sLabels)))
	words = appendBytesAsWords(words, f.sLabels)
	words = f.sHasChild.AppendUint64s(words)
	words = f.sLouds.AppendUint64s(words)
	words = append(words, uint64(len(f.sValues)))
	words = append(words, f.sValues...)
	if err := emit(uint64(len(words))); err != nil {
		return written, err
	}
	if err := emit(words...); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadFST deserializes an FST written by WriteTo.
func ReadFST(r io.Reader) (*FST, error) {
	br := bufio.NewReader(r)
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	head := make([]uint64, 7)
	for i := range head {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("fst: reading header: %w", err)
		}
		head[i] = v
	}
	if head[0] != fstMagic {
		return nil, fmt.Errorf("fst: bad magic %#x", head[0])
	}
	if head[1] != fstVersion {
		return nil, fmt.Errorf("fst: unsupported version %d", head[1])
	}
	f := &FST{
		nd: int(head[2]), ns: int(head[3]), dEdges: int(head[4]),
		height: int(head[5]), numKeys: int(head[6]),
	}
	nWords, err := readU64()
	if err != nil {
		return nil, err
	}
	words := make([]uint64, nWords)
	for i := range words {
		if words[i], err = readU64(); err != nil {
			return nil, fmt.Errorf("fst: reading payload: %w", err)
		}
	}
	if f.dLabels, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.dHasChild, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.dValues, words, err = takeU64s(words); err != nil {
		return nil, err
	}
	if f.sLabels, words, err = takeBytes(words); err != nil {
		return nil, err
	}
	if f.sHasChild, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.sLouds, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.sValues, words, err = takeU64s(words); err != nil {
		return nil, err
	}
	if len(words) != 0 {
		return nil, fmt.Errorf("fst: %d trailing payload words", len(words))
	}
	return f, nil
}

func appendBytesAsWords(dst []uint64, b []byte) []uint64 {
	for i := 0; i < len(b); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * j)
		}
		dst = append(dst, w)
	}
	return dst
}

func takeU64s(src []uint64) ([]uint64, []uint64, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("fst: truncated section")
	}
	n := int(src[0])
	src = src[1:]
	if n < 0 || n > len(src) {
		return nil, nil, fmt.Errorf("fst: corrupt section length %d", n)
	}
	out := make([]uint64, n)
	copy(out, src[:n])
	return out, src[n:], nil
}

func takeBytes(src []uint64) ([]byte, []uint64, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("fst: truncated byte section")
	}
	n := int(src[0])
	src = src[1:]
	words := (n + 7) / 8
	if n < 0 || words > len(src) {
		return nil, nil, fmt.Errorf("fst: corrupt byte section length %d", n)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte(src[i/8] >> (8 * (i % 8)))
	}
	return out, src[words:], nil
}
