package fst

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ahi/internal/bitutil"
)

// Serialization format (version 2): a magic/version header, the scalar
// layout fields, each section as a uint64-word stream, then a CRC-32C
// trailer word covering every preceding byte. Rank/select directories are
// rebuilt at load time, so the on-disk form is close to the succinct
// in-memory payload. All integers are little-endian. Version-1 streams
// (no trailer) still load; writers always emit version 2.
const (
	fstMagic   = uint64(0x4148494653543031) // "AHIFST01"
	fstVersion = uint64(2)
)

// ErrCorrupt is wrapped by every decode error caused by a damaged stream
// — bad magic, truncation, implausible section lengths, or a checksum
// mismatch — as opposed to I/O failures from the underlying reader.
var ErrCorrupt = errors.New("fst: corrupt stream")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the FST. It implements io.WriterTo.
func (f *FST) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	var crc uint32
	emit := func(vals ...uint64) error {
		for _, v := range vals {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], v)
			crc = crc32.Update(crc, castagnoli, buf[:])
			n, err := bw.Write(buf[:])
			written += int64(n)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(fstMagic, fstVersion,
		uint64(f.nd), uint64(f.ns), uint64(f.dEdges),
		uint64(f.height), uint64(f.numKeys)); err != nil {
		return written, err
	}
	var words []uint64
	words = f.dLabels.AppendUint64s(words)
	words = f.dHasChild.AppendUint64s(words)
	words = append(words, uint64(len(f.dValues)))
	words = append(words, f.dValues...)
	words = append(words, uint64(len(f.sLabels)))
	words = appendBytesAsWords(words, f.sLabels)
	words = f.sHasChild.AppendUint64s(words)
	words = f.sLouds.AppendUint64s(words)
	words = append(words, uint64(len(f.sValues)))
	words = append(words, f.sValues...)
	if err := emit(uint64(len(words))); err != nil {
		return written, err
	}
	if err := emit(words...); err != nil {
		return written, err
	}
	// Trailer: the running CRC, itself excluded from the checksum.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(crc))
	n, err := bw.Write(buf[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadFST deserializes an FST written by WriteTo.
func ReadFST(r io.Reader) (*FST, error) {
	br := bufio.NewReader(r)
	var crc uint32
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("truncated: %w", ErrCorrupt)
			}
			return 0, err
		}
		crc = crc32.Update(crc, castagnoli, buf[:])
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	head := make([]uint64, 7)
	for i := range head {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("fst: reading header: %w", err)
		}
		head[i] = v
	}
	if head[0] != fstMagic {
		return nil, fmt.Errorf("fst: bad magic %#x: %w", head[0], ErrCorrupt)
	}
	if head[1] != 1 && head[1] != fstVersion {
		return nil, fmt.Errorf("fst: unsupported version %d: %w", head[1], ErrCorrupt)
	}
	f := &FST{
		nd: int(head[2]), ns: int(head[3]), dEdges: int(head[4]),
		height: int(head[5]), numKeys: int(head[6]),
	}
	nWords, err := readU64()
	if err != nil {
		return nil, err
	}
	if nWords > 1<<40 {
		return nil, fmt.Errorf("fst: implausible payload length %d: %w", nWords, ErrCorrupt)
	}
	// Grow as data actually arrives: a corrupt length must not translate
	// into a huge up-front allocation before the stream runs dry.
	words := make([]uint64, 0, min(nWords, 1<<20))
	for i := uint64(0); i < nWords; i++ {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("fst: reading payload: %w", err)
		}
		words = append(words, v)
	}
	if head[1] == fstVersion {
		// Snapshot before the trailer word feeds the hash; compare the full
		// word so flips in its zero upper half are caught too.
		want := uint64(crc)
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("fst: reading checksum trailer: %w", ErrCorrupt)
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != want {
			return nil, fmt.Errorf("fst: checksum mismatch %#x != %#x: %w", got, want, ErrCorrupt)
		}
	}
	if f.dLabels, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.dHasChild, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.dValues, words, err = takeU64s(words); err != nil {
		return nil, err
	}
	if f.sLabels, words, err = takeBytes(words); err != nil {
		return nil, err
	}
	if f.sHasChild, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.sLouds, words, err = bitutil.BitVectorFromUint64s(words); err != nil {
		return nil, err
	}
	if f.sValues, words, err = takeU64s(words); err != nil {
		return nil, err
	}
	if len(words) != 0 {
		return nil, fmt.Errorf("fst: %d trailing payload words: %w", len(words), ErrCorrupt)
	}
	return f, nil
}

func appendBytesAsWords(dst []uint64, b []byte) []uint64 {
	for i := 0; i < len(b); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * j)
		}
		dst = append(dst, w)
	}
	return dst
}

func takeU64s(src []uint64) ([]uint64, []uint64, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("fst: truncated section: %w", ErrCorrupt)
	}
	n := int(src[0])
	src = src[1:]
	if n < 0 || n > len(src) {
		return nil, nil, fmt.Errorf("fst: corrupt section length %d: %w", n, ErrCorrupt)
	}
	out := make([]uint64, n)
	copy(out, src[:n])
	return out, src[n:], nil
}

func takeBytes(src []uint64) ([]byte, []uint64, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("fst: truncated byte section: %w", ErrCorrupt)
	}
	n := int(src[0])
	src = src[1:]
	words := (n + 7) / 8
	if n < 0 || words > len(src) {
		return nil, nil, fmt.Errorf("fst: corrupt byte section length %d: %w", n, ErrCorrupt)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte(src[i/8] >> (8 * (i % 8)))
	}
	return out, src[words:], nil
}
