package hybridtrie

import (
	"bytes"
	"errors"
	"testing"

	"ahi/internal/art"
	"ahi/internal/dataset"
	"ahi/internal/fst"
)

// buildSmallTrie builds a compact trie for the byte-level corruption
// sweeps (every offset of the stream gets its own decode attempt).
func buildSmallTrie(t *testing.T) *Trie {
	t.Helper()
	keys := u64keys(dataset.UserIDs(64, 61))
	vals := seqVals(len(keys))
	return Build(Config{CArt: 2, FST: fst.AutoDense()}, keys, vals)
}

func TestTrieSerializeRoundTrip(t *testing.T) {
	keys := dataset.UserIDs(30000, 61)
	bk := u64keys(keys)
	tr := Build(Config{CArt: 2, FST: fst.AutoDense()}, bk, seqVals(len(keys)))
	// Expand a couple of subtrees so the saved trie carries migrations.
	for _, idx := range []int{0, len(keys) / 2} {
		var bv boundaryVisit
		var prefix []byte
		tr.lookup(bk[idx], func(v boundaryVisit) {
			if v.handle.Kind() == 6 && prefix == nil {
				bv = v
				prefix = append([]byte{}, v.prefix...)
			}
		})
		if prefix != nil {
			tr.Expand(bv.handle, bv.parent, bv.label, prefix)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != tr.Len() || g.CArt() != tr.CArt() || g.Expanded() != tr.Expanded() {
		t.Fatal("metadata mismatch")
	}
	for i, k := range bk {
		if v, ok := g.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("key %x lost after load", k)
		}
	}
	// Scans and further migrations still work.
	n := g.Scan(nil, 100, func(k []byte, v uint64) bool { return true }, nil)
	if n != 100 {
		t.Fatalf("scan on loaded trie visited %d", n)
	}
	if err := g.Validate(bk[:1000]); err != nil {
		t.Fatal(err)
	}
}

func TestTrieSerializeRejectsCorrupt(t *testing.T) {
	tr := Build(Config{CArt: 1, FST: fst.AutoDense()},
		[][]byte{{1, 0}, {2, 0}}, []uint64{1, 2})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, buf.Bytes()...)
	bad[0] ^= 0x10
	if _, err := ReadTrie(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestTrieSerializeBitFlips flips one bit at every byte offset: header
// flips must surface hybridtrie.ErrCorrupt, flips inside the embedded
// streams the corresponding fst/art sentinel — nothing loads silently.
func TestTrieSerializeBitFlips(t *testing.T) {
	tr := buildSmallTrie(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadTrie(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	bad := make([]byte, len(good))
	for off := 0; off < len(good); off++ {
		copy(bad, good)
		bad[off] ^= 1 << (off % 8)
		_, err := ReadTrie(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
		corrupt := errors.Is(err, ErrCorrupt) || errors.Is(err, fst.ErrCorrupt) || errors.Is(err, art.ErrCorrupt)
		if !corrupt {
			t.Fatalf("flip at offset %d: untyped error: %v", off, err)
		}
		if off < 80 && !errors.Is(err, ErrCorrupt) { // 9 header words + CRC word
			t.Fatalf("header flip at offset %d not hybridtrie.ErrCorrupt: %v", off, err)
		}
	}
}

// TestTrieSerializeTruncations cuts the stream at every length.
func TestTrieSerializeTruncations(t *testing.T) {
	tr := buildSmallTrie(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for n := 0; n < len(good); n++ {
		if _, err := ReadTrie(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(good))
		}
	}
}
