package hybridtrie

import (
	"bytes"
	"testing"

	"ahi/internal/dataset"
	"ahi/internal/fst"
)

func TestTrieSerializeRoundTrip(t *testing.T) {
	keys := dataset.UserIDs(30000, 61)
	bk := u64keys(keys)
	tr := Build(Config{CArt: 2, FST: fst.AutoDense()}, bk, seqVals(len(keys)))
	// Expand a couple of subtrees so the saved trie carries migrations.
	for _, idx := range []int{0, len(keys) / 2} {
		var bv boundaryVisit
		var prefix []byte
		tr.lookup(bk[idx], func(v boundaryVisit) {
			if v.handle.Kind() == 6 && prefix == nil {
				bv = v
				prefix = append([]byte{}, v.prefix...)
			}
		})
		if prefix != nil {
			tr.Expand(bv.handle, bv.parent, bv.label, prefix)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != tr.Len() || g.CArt() != tr.CArt() || g.Expanded() != tr.Expanded() {
		t.Fatal("metadata mismatch")
	}
	for i, k := range bk {
		if v, ok := g.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("key %x lost after load", k)
		}
	}
	// Scans and further migrations still work.
	n := g.Scan(nil, 100, func(k []byte, v uint64) bool { return true }, nil)
	if n != 100 {
		t.Fatalf("scan on loaded trie visited %d", n)
	}
	if err := g.Validate(bk[:1000]); err != nil {
		t.Fatal(err)
	}
}

func TestTrieSerializeRejectsCorrupt(t *testing.T) {
	tr := Build(Config{CArt: 1, FST: fst.AutoDense()},
		[][]byte{{1, 0}, {2, 0}}, []uint64{1, 2})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, buf.Bytes()...)
	bad[0] ^= 0x10
	if _, err := ReadTrie(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}
