package hybridtrie

import (
	"ahi/internal/art"
	"ahi/internal/core"
	"ahi/internal/hashmap"
	"ahi/internal/obs"
)

// Ctx is the tracked context per boundary handle: the parent node, the key
// label under which the handle hangs, and the root path — the paper's
// "parent identifier, key label within the parent, and the FST node
// number" (§4.2.2; the FST number is the handle itself here). The path
// prefix lets compactions re-derive FST node numbers and expansions build
// full leaf keys.
type Ctx struct {
	Parent art.Handle
	Label  byte
	Prefix []byte // key bytes from the root to the handle (len == depth)
}

// AdaptiveConfig configures an adaptive Hybrid Trie (AHI-Trie).
type AdaptiveConfig struct {
	Trie Config
	// MemoryBudget bounds the total (FST + ART) size in bytes; 0 = off.
	MemoryBudget int64
	// RelativeBudget, if positive, bounds the ART overlay to this fraction
	// of a fully expanded trie (estimated as FST size + expansion average
	// times the node count); see core.Config.RelativeBudget.
	RelativeBudget float64
	// Sampling knobs (defaults as in core).
	InitialSkip      int
	MinSkip, MaxSkip int
	FixedSkip        bool
	DisableBloom     bool
	Epsilon, Delta   float64
	MaxSampleSize    int
	OnAdapt          func(core.AdaptInfo)
	// Obs attaches an observability sink (metrics, migration trace, epoch
	// snapshots); nil disables all instrumentation. ObsSource labels the
	// trie's series in a shared registry.
	Obs       *obs.Observability
	ObsSource string
}

// Adaptive is the workload-adaptive Hybrid Trie. The paper evaluates the
// trie single-threaded (inserts are future work); so does this type: use
// one Session from one goroutine.
type Adaptive struct {
	Trie *Trie
	Mgr  *core.Manager[uint64, Ctx]

	// freedThisPhase guards against acting on handles freed earlier in the
	// same adaptation pass (a compaction tears down nested expansions).
	freedThisPhase map[uint64]struct{}

	// OnMigrate, if set, observes every migration attempt (debug/tracing).
	OnMigrate func(id uint64, ctx Ctx, target core.Encoding, newID uint64, ok bool)
}

// BuildAdaptive constructs the trie and wires the adaptation manager.
func BuildAdaptive(cfg AdaptiveConfig, keys [][]byte, vals []uint64) *Adaptive {
	return WireAdaptive(Build(cfg.Trie, keys, vals), cfg)
}

// WireAdaptive attaches an adaptation manager to an existing trie (e.g.
// one loaded with ReadTrie). The cfg.Trie field is ignored.
func WireAdaptive(t *Trie, cfg AdaptiveConfig) *Adaptive {
	// Defer slot recycling across each adaptation pass: a slot freed by a
	// compaction must not be handed to an expansion while the pass may
	// still process stale references to the old handle (ABA).
	t.art.SetDeferFrees(true)
	a := &Adaptive{Trie: t, freedThisPhase: map[uint64]struct{}{}}
	userAdapt := cfg.OnAdapt
	mcfg := core.Config[uint64, Ctx]{
		Hash:           hashmap.HashU64,
		Units:          a.unitCounts,
		UsedMemory:     t.Bytes,
		Heuristic:      a.heuristic,
		Migrate:        a.migrate,
		MemoryBudget:   cfg.MemoryBudget,
		RelativeBudget: cfg.RelativeBudget,
		Epsilon:        cfg.Epsilon,
		Delta:          cfg.Delta,
		InitialSkip:    cfg.InitialSkip,
		MinSkip:        cfg.MinSkip,
		MaxSkip:        cfg.MaxSkip,
		AdaptiveSkip:   !cfg.FixedSkip,
		MaxSampleSize:  cfg.MaxSampleSize,
		DisableBloom:   cfg.DisableBloom,
		Mode:           core.SingleThreaded,
		OnAdapt: func(ai core.AdaptInfo) {
			clear(a.freedThisPhase)
			a.Trie.art.FlushFrees()
			if userAdapt != nil {
				userAdapt(ai)
			}
		},
	}
	if cfg.Obs != nil {
		mcfg.Obs = cfg.Obs.Index(cfg.ObsSource, EncodingName)
		mcfg.Distribution = a.distribution
		mcfg.EncodingOf = func(id uint64) (core.Encoding, bool) {
			if art.Handle(id).Kind() == art.KindFST {
				return EncFST, true
			}
			return EncART, true
		}
	}
	a.Mgr = core.New(mcfg)
	return a
}

// EncodingName names the trie's encodings for observability output.
func EncodingName(e uint8) string {
	switch core.Encoding(e) {
	case EncFST:
		return "fst"
	case EncART:
		return "art"
	default:
		return "unknown"
	}
}

// distribution reports the compact (FST) vs. expanded (ART) population for
// epoch snapshots. The FST's byte figure is the static structure; the ART
// class carries the overlay's full footprint.
func (a *Adaptive) distribution() []obs.EncodingClass {
	t := a.Trie
	expanded := t.expandedCnt
	total := int64(t.fst.NumNodes())
	if total < expanded {
		total = expanded
	}
	return []obs.EncodingClass{
		{Name: "fst", Units: total - expanded, Bytes: t.FSTBytes()},
		{Name: "art", Units: expanded, Bytes: t.ARTBytes()},
	}
}

// unitCounts: the compact units are the FST's non-expanded nodes (their
// marginal cost is zero — the FST is static), the expanded units the ART
// shadows. The expansion cost per unit is the observed average ART bytes
// added beyond the static top.
func (a *Adaptive) unitCounts() core.UnitCounts {
	t := a.Trie
	expanded := t.expandedCnt
	total := int64(t.fst.NumNodes())
	if total < expanded {
		total = expanded
	}
	avgExp := int64(300)
	if expanded > 0 {
		if extra := t.art.Bytes() - t.artTopBytes; extra > 0 {
			avgExp = extra / expanded
		}
	}
	return core.UnitCounts{
		Compressed:      total - expanded,
		Uncompressed:    expanded,
		CompressedAvg:   0,
		UncompressedAvg: avgExp,
	}
}

// heuristic: hot FST handles expand when budget allows; expanded nodes
// cold for two consecutive phases compact; entries never hot across their
// remembered history stop being tracked.
func (a *Adaptive) heuristic(id uint64, _ *Ctx, st *core.Stats, env core.Env) core.Action {
	h := art.Handle(id)
	isFST := h.Kind() == art.KindFST
	if env.Hot {
		if isFST && env.BudgetRemaining > 512 {
			return core.Action{Target: EncART, Migrate: true}
		}
		return core.Action{}
	}
	switch {
	case st.HistoryLen >= 6 && st.HotCount() == 0:
		if !isFST {
			return core.Action{Target: EncFST, Migrate: true, Evict: true}
		}
		return core.Action{Evict: true}
	case !isFST && st.HistoryLen >= 2 && st.History&0b11 == 0:
		return core.Action{Target: EncFST, Migrate: true}
	}
	return core.Action{}
}

// migrate dispatches to Expand/Compact, honoring the freed-handle guard.
func (a *Adaptive) migrate(id uint64, ctx Ctx, target core.Encoding) (uint64, bool) {
	newID, ok := a.migrateInner(id, ctx, target)
	if a.OnMigrate != nil {
		a.OnMigrate(id, ctx, target, newID, ok)
	}
	return newID, ok
}

func (a *Adaptive) migrateInner(id uint64, ctx Ctx, target core.Encoding) (uint64, bool) {
	if _, dead := a.freedThisPhase[id]; dead {
		return id, false
	}
	if _, dead := a.freedThisPhase[uint64(ctx.Parent)]; dead {
		return id, false
	}
	h := art.Handle(id)
	switch target {
	case EncART:
		nh, ok := a.Trie.Expand(h, ctx.Parent, ctx.Label, ctx.Prefix)
		return uint64(nh), ok
	case EncFST:
		// Record and forget every tracked unit under the torn-down
		// subtree before freeing it, so no stale handle survives.
		a.markFreed(h)
		nh, ok := a.Trie.Compact(h, ctx.Parent, ctx.Label, ctx.Prefix)
		if !ok {
			return id, false
		}
		return uint64(nh), true
	}
	return id, false
}

func (a *Adaptive) markFreed(h art.Handle) {
	switch h.Kind() {
	case art.KindNode4, art.KindNode16, art.KindNode48, art.KindNode256:
	default:
		return
	}
	a.freedThisPhase[uint64(h)] = struct{}{}
	for _, e := range a.Trie.art.Children(h) {
		a.Mgr.Forget(uint64(e.Child))
		a.markFreed(e.Child)
	}
}

// Session performs tracked operations. Single-threaded.
type Session struct {
	a       *Adaptive
	sampler *core.Sampler[uint64, Ctx]
}

// NewSession creates the (single) tracked session.
func (a *Adaptive) NewSession() *Session {
	return &Session{a: a, sampler: a.Mgr.NewSampler()}
}

// Lookup is a tracked point query (Listing 2).
func (s *Session) Lookup(key []byte) (uint64, bool) {
	if !s.sampler.IsSample() {
		return s.a.Trie.Lookup(key)
	}
	return s.a.Trie.lookup(key, func(v boundaryVisit) {
		s.track(v, core.Read)
	})
}

// Scan is a tracked range scan; boundary nodes the scan enters are
// tracked with the Scan access type.
func (s *Session) Scan(from []byte, n int, fn func(key []byte, val uint64) bool) int {
	if !s.sampler.IsSample() {
		return s.a.Trie.Scan(from, n, fn, nil)
	}
	return s.a.Trie.Scan(from, n, fn, func(v boundaryVisit) {
		s.track(v, core.Scan)
	})
}

func (s *Session) track(v boundaryVisit, at core.AccessType) {
	prefix := append([]byte{}, v.prefix...)
	s.sampler.Track(uint64(v.handle), at, Ctx{Parent: v.parent, Label: v.label, Prefix: prefix})
}

// Train implements the offline variant (§3.2) for the trie: per-key
// predicted frequencies aggregate onto boundary handles, which are then
// expanded hottest-first within the budget.
func (a *Adaptive) Train(keys [][]byte, freqs []uint64) int {
	agg := map[uint64]core.IDFreq[uint64, Ctx]{}
	for i, k := range keys {
		var bv boundaryVisit
		var bvPrefix []byte
		seen := false
		a.Trie.lookup(k, func(v boundaryVisit) {
			if v.handle.Kind() == art.KindFST && !seen {
				bv = v
				bvPrefix = append([]byte{}, v.prefix...)
				seen = true
			}
		})
		if !seen {
			continue
		}
		id := uint64(bv.handle)
		e := agg[id]
		e.ID = id
		e.Freq += freqs[i]
		e.Ctx = Ctx{Parent: bv.parent, Label: bv.label, Prefix: bvPrefix}
		agg[id] = e
	}
	list := make([]core.IDFreq[uint64, Ctx], 0, len(agg))
	for _, e := range agg {
		list = append(list, e)
	}
	return a.Mgr.TrainOffline(list)
}
