// Package hybridtrie implements the paper's Hybrid Trie (§4.2): a
// level-wise combination of the Adaptive Radix Tree and the Fast Succinct
// Trie. Levels 0..CArt-1 are ART; everything below is FST (whose own
// dense/sparse split realizes the c_FST cutoff). Tagged ART handles embed
// FST node numbers at the boundary, and the adaptation framework expands
// hot FST nodes into ART nodes (vertical, branch-wise refinement) and
// compacts cold expansions back to their FST node numbers.
//
// The FST is static and holds the complete key set, so expansions
// duplicate a node's labels in ART form and compactions simply restore the
// FST node number — exactly the paper's design, which leaves inserts to
// future work (§4.2.2). Lookups and scans are supported.
package hybridtrie

import (
	"bytes"
	"fmt"

	"ahi/internal/art"
	"ahi/internal/fst"
)

// Encodings of the tracked units, consumed by the CSHF.
const (
	// EncFST is the compact encoding: the node lives only in the FST.
	EncFST = 0
	// EncART is the expanded encoding: an ART node shadows the FST node.
	EncART = 1
)

// Config configures the build-time combination.
type Config struct {
	// CArt is the number of top levels represented by ART (the paper's
	// c_ART cutoff; boundary handles sit at key depth CArt).
	CArt int
	// FST configures the dense/sparse split of the succinct part (c_FST).
	FST fst.Config
}

// Trie is the Hybrid Trie. It is immutable in content; encodings migrate
// at run-time. Not safe for concurrent mutation (the paper evaluates the
// Hybrid Trie single-threaded).
type Trie struct {
	art  *art.Tree
	fst  *fst.FST
	cArt int

	numKeys     int
	artTopBytes int64 // ART footprint right after build (the static top)
	expandedCnt int64
	expansions  int64
	compactions int64
	maxKeyLen   int
}

// Build constructs the trie from sorted, unique, prefix-free keys. Keys
// shorter than CArt live entirely in ART; each distinct CArt-byte prefix
// with longer keys becomes a boundary handle pointing into the FST.
func Build(cfg Config, keys [][]byte, vals []uint64) *Trie {
	if cfg.CArt < 1 {
		cfg.CArt = 1
	}
	t := &Trie{cArt: cfg.CArt, numKeys: len(keys)}
	t.fst = fst.New(cfg.FST, keys, vals)
	t.art = art.New()

	markers := make(map[string]uint32)
	for i := 0; i < len(keys); {
		k := keys[i]
		if t.maxKeyLen < len(k) {
			t.maxKeyLen = len(k)
		}
		if len(k) <= cfg.CArt {
			t.art.Insert(k, vals[i])
			i++
			continue
		}
		prefix := k[:cfg.CArt]
		j := i + 1
		for j < len(keys) && len(keys[j]) > cfg.CArt && bytes.Equal(keys[j][:cfg.CArt], prefix) {
			if t.maxKeyLen < len(keys[j]) {
				t.maxKeyLen = len(keys[j])
			}
			j++
		}
		node, ok := t.fst.DescendPath(prefix, cfg.CArt)
		if !ok {
			panic(fmt.Sprintf("hybridtrie: FST lacks path for prefix %q", prefix))
		}
		// Insert a marker leaf carrying the prefix; replaced below by a
		// tagged FST handle.
		t.art.Insert(prefix, uint64(node))
		markers[string(prefix)] = node
		i = j
	}
	t.replaceMarkers(t.art.Root(), markers, 0)
	// Degenerate case: a single prefix group leaves the root as a marker
	// leaf. Wrap it in a one-child node with the prefix as compressed
	// path so traversal still consumes exactly CArt bytes before crossing
	// into the FST.
	if r := t.art.Root(); r.Kind() == art.KindLeaf {
		if node, ok := markers[string(t.art.LeafKey(r))]; ok {
			p := append([]byte{}, t.art.LeafKey(r)...)
			t.art.Free(r)
			nh := t.art.NewNode([]art.ChildEntry{{Label: p[len(p)-1], Child: art.MakeHandle(art.KindFST, uint64(node))}})
			t.art.SetNodePrefix(nh, p[:len(p)-1])
			t.art.SetRoot(nh)
		}
	}
	t.artTopBytes = t.art.Bytes()
	return t
}

// replaceMarkers swaps marker leaves for tagged FST handles. depth counts
// the key bytes consumed to reach h. Lazy leaf expansion may hang a marker
// leaf above the cutoff level; such handles are wrapped in a single-child
// chain node spelling the remaining prefix bytes, so that every boundary
// handle is crossed after consuming exactly CArt bytes — the depth the
// FST resume (LookupFrom) and compaction (DescendPath) rely on.
func (t *Trie) replaceMarkers(h art.Handle, markers map[string]uint32, depth int) {
	switch h.Kind() {
	case art.KindEmpty, art.KindLeaf, art.KindFST:
		return
	}
	_, plen := t.art.Prefix(h)
	childDepth := depth + plen + 1
	for _, e := range t.art.Children(h) {
		switch e.Child.Kind() {
		case art.KindLeaf:
			key := t.art.LeafKey(e.Child)
			node, ok := markers[string(key)]
			if !ok {
				continue
			}
			fh := art.MakeHandle(art.KindFST, uint64(node))
			if childDepth < len(key) {
				// Shallow leaf: wrap in a chain consuming the rest.
				nh := t.art.NewNode([]art.ChildEntry{{Label: key[len(key)-1], Child: fh}})
				t.art.SetNodePrefix(nh, key[childDepth:len(key)-1])
				fh = nh
			}
			t.art.SetChild(h, e.Label, fh)
			t.art.Free(e.Child)
		case art.KindNode4, art.KindNode16, art.KindNode48, art.KindNode256:
			t.replaceMarkers(e.Child, markers, childDepth)
		}
	}
}

// Len returns the number of keys.
func (t *Trie) Len() int { return t.numKeys }

// CArt returns the ART/FST cutoff level.
func (t *Trie) CArt() int { return t.cArt }

// Bytes returns the combined footprint: the static FST plus the ART part
// (top levels and expansions).
func (t *Trie) Bytes() int64 { return t.art.Bytes() + t.fst.Bytes() }

// FSTBytes returns the static succinct part's footprint.
func (t *Trie) FSTBytes() int64 { return t.fst.Bytes() }

// ARTBytes returns the ART part's footprint.
func (t *Trie) ARTBytes() int64 { return t.art.Bytes() }

// Expanded returns the number of currently expanded (ART-shadowed) nodes.
func (t *Trie) Expanded() int64 { return t.expandedCnt }

// Expansions and Compactions return cumulative migration counts (Fig. 20).
func (t *Trie) Expansions() int64  { return t.expansions }
func (t *Trie) Compactions() int64 { return t.compactions }

// boundaryVisit reports one traversal step at or below the cutoff. prefix
// spells the key bytes from the root to the handle (it aliases traversal
// state: observers must copy to retain).
type boundaryVisit struct {
	handle art.Handle
	parent art.Handle
	label  byte
	prefix []byte
}

// lookup walks the hybrid structure; visit (optional) observes every
// handle crossed at depth >= cArt, mirroring Listing 2's tracking points.
func (t *Trie) lookup(key []byte, visit func(boundaryVisit)) (uint64, bool) {
	h := t.art.Root()
	var parent art.Handle
	var label byte
	depth := 0
	for {
		switch h.Kind() {
		case art.KindEmpty:
			return 0, false
		case art.KindLeaf:
			if bytes.Equal(t.art.LeafKey(h), key) {
				return t.art.LeafVal(h), true
			}
			return 0, false
		case art.KindFST:
			if visit != nil {
				visit(boundaryVisit{handle: h, parent: parent, label: label, prefix: key[:depth]})
			}
			return t.fst.LookupFrom(uint32(h.Index()), key, depth)
		}
		// Inner ART node.
		if visit != nil && depth >= t.cArt {
			visit(boundaryVisit{handle: h, parent: parent, label: label, prefix: key[:depth]})
		}
		p, plen := t.art.Prefix(h)
		if plen > 0 {
			if depth+plen > len(key) || !bytes.Equal(key[depth:depth+plen], p) {
				return 0, false
			}
			depth += plen
		}
		if depth >= len(key) {
			return 0, false
		}
		parent, label = h, key[depth]
		h = t.art.FindChild(h, key[depth])
		depth++
	}
}

// Lookup returns the value stored under key.
func (t *Trie) Lookup(key []byte) (uint64, bool) { return t.lookup(key, nil) }

// Scan visits up to n keys >= from in order; fn may stop early. onBoundary
// (optional) observes boundary handles the scan enters.
func (t *Trie) Scan(from []byte, n int, fn func(key []byte, val uint64) bool, onBoundary func(boundaryVisit)) int {
	visited := 0
	prefix := make([]byte, 0, t.maxKeyLen)
	t.scanNode(t.art.Root(), prefix, from, n, &visited, fn, onBoundary, 0, 0)
	return visited
}

// scanNode walks handle h whose path from the root spells prefix.
// from == nil means no lower bound.
func (t *Trie) scanNode(h art.Handle, prefix []byte, from []byte, n int, visited *int,
	fn func([]byte, uint64) bool, onBoundary func(boundaryVisit), parent art.Handle, label byte) bool {
	if h.IsEmpty() || *visited >= n {
		return *visited < n
	}
	switch h.Kind() {
	case art.KindLeaf:
		k := t.art.LeafKey(h)
		if from != nil && bytes.Compare(k, from) < 0 {
			return true
		}
		*visited++
		return fn(k, t.art.LeafVal(h)) && *visited < n
	case art.KindFST:
		if onBoundary != nil {
			onBoundary(boundaryVisit{handle: h, parent: parent, label: label, prefix: prefix})
		}
		it := fst.NewIteratorAt(t.fst, uint32(h.Index()))
		var ok bool
		switch rel := relate(from, prefix); rel {
		case relAll:
			ok = it.SeekFirst()
		case relSeek:
			ok = it.Seek(from[len(prefix):])
		default: // relSkip
			return true
		}
		key := append([]byte{}, prefix...)
		for ; ok && *visited < n; ok = it.Next() {
			key = append(key[:len(prefix)], it.Key()...)
			*visited++
			if !fn(key, it.Value()) {
				return false
			}
		}
		return *visited < n
	}
	// Inner ART node: extend the prefix with the compressed path.
	p, plen := t.art.Prefix(h)
	if plen > 0 {
		prefix = append(prefix, p...)
	}
	switch relate(from, prefix) {
	case relSkip:
		return true
	case relAll:
		from = nil
	}
	ok := t.art.EachChild(h, func(label byte, childH art.Handle) bool {
		child := append(prefix, label)
		sub := from
		switch relate(from, child) {
		case relSkip:
			return true
		case relAll:
			sub = nil
		}
		return t.scanNode(childH, child, sub, n, visited, fn, onBoundary, h, label)
	})
	if !ok {
		return false
	}
	return *visited < n
}

type relation int

const (
	relAll  relation = iota // every key under prefix is >= from
	relSeek                 // from lies inside the prefix's subtree
	relSkip                 // every key under prefix is < from
)

// relate classifies the subtree at path prefix against the lower bound.
func relate(from, prefix []byte) relation {
	if from == nil {
		return relAll
	}
	if len(from) <= len(prefix) {
		if bytes.Compare(from, prefix[:min(len(from), len(prefix))]) <= 0 {
			return relAll
		}
		return relSkip
	}
	switch bytes.Compare(from[:len(prefix)], prefix) {
	case -1:
		return relAll
	case 1:
		return relSkip
	}
	return relSeek
}

// Expand migrates the FST node behind a boundary handle into an ART node
// whose children are FST handles (or value leaves for keys terminating one
// byte below). pathPrefix spells the key bytes from the root to the node.
// It returns the new ART handle.
func (t *Trie) Expand(h art.Handle, parent art.Handle, label byte, pathPrefix []byte) (art.Handle, bool) {
	if h.Kind() != art.KindFST {
		return h, false
	}
	// Verify the parent still references h (contexts can go stale).
	if parent.IsEmpty() || t.art.FindChild(parent, label) != h {
		if !(parent.IsEmpty() && t.art.Root() == h) {
			return h, false
		}
	}
	node := uint32(h.Index())
	children := t.fst.Children(node)
	if len(children) == 0 {
		return h, false
	}
	entries := make([]art.ChildEntry, 0, len(children))
	keyBuf := make([]byte, len(pathPrefix)+1)
	copy(keyBuf, pathPrefix)
	for _, c := range children {
		if c.IsLeaf {
			keyBuf[len(pathPrefix)] = c.Label
			entries = append(entries, art.ChildEntry{Label: c.Label, Child: t.art.NewLeafHandle(keyBuf, c.Val)})
		} else {
			entries = append(entries, art.ChildEntry{Label: c.Label, Child: art.MakeHandle(art.KindFST, uint64(c.Node))})
		}
	}
	nh := t.art.NewNode(entries)
	if parent.IsEmpty() {
		t.art.SetRoot(nh)
	} else {
		t.art.SetChild(parent, label, nh)
	}
	t.expandedCnt++
	t.expansions++
	return nh, true
}

// Compact undoes an expansion: the ART node (and any deeper expansions
// under it) is freed and the parent points back at the FST node number,
// recovered by descending the FST along pathPrefix. Migrating this way
// "does not involve the construction of a new node" (§4.2.2) beyond the
// descent, matching the paper's cheap compaction.
func (t *Trie) Compact(h art.Handle, parent art.Handle, label byte, pathPrefix []byte) (art.Handle, bool) {
	switch h.Kind() {
	case art.KindNode4, art.KindNode16, art.KindNode48, art.KindNode256:
	default:
		return h, false
	}
	if parent.IsEmpty() || t.art.FindChild(parent, label) != h {
		if !(parent.IsEmpty() && t.art.Root() == h) {
			return h, false
		}
	}
	node, ok := t.fst.DescendPath(pathPrefix, len(pathPrefix))
	if !ok {
		return h, false
	}
	// Count nested expansions being torn down.
	t.expandedCnt -= int64(t.countExpanded(h))
	fh := art.MakeHandle(art.KindFST, uint64(node))
	if parent.IsEmpty() {
		t.art.SetRoot(fh)
	} else {
		t.art.SetChild(parent, label, fh)
	}
	t.art.FreeSubtree(h)
	t.compactions++
	return fh, true
}

func (t *Trie) countExpanded(h art.Handle) int {
	switch h.Kind() {
	case art.KindNode4, art.KindNode16, art.KindNode48, art.KindNode256:
	default:
		return 0
	}
	n := 1
	for _, e := range t.art.Children(h) {
		n += t.countExpanded(e.Child)
	}
	return n
}

// ScanPrefix visits every key beginning with prefix, in order, up to n
// (n < 0 means unbounded). It is a Scan that stops at the first key
// outside the prefix.
func (t *Trie) ScanPrefix(prefix []byte, n int, fn func(key []byte, val uint64) bool) int {
	if n < 0 {
		n = t.numKeys
	}
	visited := 0
	t.Scan(prefix, n, func(k []byte, v uint64) bool {
		if len(k) < len(prefix) || !bytes.Equal(k[:len(prefix)], prefix) {
			return false
		}
		visited++
		return fn(k, v)
	}, nil)
	return visited
}

// Validate cross-checks hybrid lookups against the underlying FST for a
// sample of keys (test helper).
func (t *Trie) Validate(keys [][]byte) error {
	for _, k := range keys {
		want, wok := t.fst.Lookup(k)
		got, gok := t.Lookup(k)
		if wok != gok || want != got {
			return fmt.Errorf("hybrid/fst mismatch for %q: (%d,%v) vs (%d,%v)", k, got, gok, want, wok)
		}
	}
	return nil
}
