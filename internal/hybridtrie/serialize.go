package hybridtrie

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ahi/internal/art"
	"ahi/internal/fst"
)

// Serialization (version 2): the trie header (cutoff level, key count,
// migration counters and size baselines) protected by its own CRC-32C
// word, followed by the embedded FST and ART streams, each carrying its
// own checksum trailer. The loaded trie resumes exactly where the saved
// one was, including its current expansions. Version-1 headers (no CRC
// word) still load; writers always emit version 2.
const (
	trieMagic   = uint64(0x4148494854523031) // "AHIHTR01"
	trieVersion = uint64(2)
)

// ErrCorrupt is wrapped by every decode error caused by a damaged header
// — bad magic, truncation, or a checksum mismatch. Damage inside the
// embedded streams surfaces as fst.ErrCorrupt or art.ErrCorrupt.
var ErrCorrupt = errors.New("hybridtrie: corrupt stream")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the trie. It implements io.WriterTo.
func (t *Trie) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	var crc uint32
	emit := func(vals ...uint64) error {
		for _, v := range vals {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], v)
			crc = crc32.Update(crc, castagnoli, buf[:])
			n, err := bw.Write(buf[:])
			written += int64(n)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(trieMagic, trieVersion,
		uint64(t.cArt), uint64(t.numKeys), uint64(t.maxKeyLen),
		uint64(t.artTopBytes), uint64(t.expandedCnt),
		uint64(t.expansions), uint64(t.compactions)); err != nil {
		return written, err
	}
	// Header CRC word (the embedded streams below carry their own).
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(crc))
	n0, err := bw.Write(buf[:])
	written += int64(n0)
	if err != nil {
		return written, err
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	n, err := t.fst.WriteTo(w)
	written += n
	if err != nil {
		return written, err
	}
	n, err = t.art.WriteTo(w)
	written += n
	return written, err
}

// ReadTrie deserializes a trie written by WriteTo.
func ReadTrie(r io.Reader) (*Trie, error) {
	br := bufio.NewReader(r)
	head := make([]uint64, 9)
	var buf [8]byte
	var crc uint32
	for i := range head {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("hybridtrie: reading header: %w", ErrCorrupt)
		}
		crc = crc32.Update(crc, castagnoli, buf[:])
		head[i] = binary.LittleEndian.Uint64(buf[:])
	}
	if head[0] != trieMagic {
		return nil, fmt.Errorf("hybridtrie: bad magic %#x: %w", head[0], ErrCorrupt)
	}
	if head[1] != 1 && head[1] != trieVersion {
		return nil, fmt.Errorf("hybridtrie: unsupported version %d: %w", head[1], ErrCorrupt)
	}
	if head[1] == trieVersion {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("hybridtrie: reading header checksum: %w", ErrCorrupt)
		}
		// Full-word compare: flips in the trailer's zero upper half count.
		if got := binary.LittleEndian.Uint64(buf[:]); got != uint64(crc) {
			return nil, fmt.Errorf("hybridtrie: header checksum mismatch %#x != %#x: %w", got, crc, ErrCorrupt)
		}
	}
	t := &Trie{
		cArt: int(head[2]), numKeys: int(head[3]), maxKeyLen: int(head[4]),
		artTopBytes: int64(head[5]), expandedCnt: int64(head[6]),
		expansions: int64(head[7]), compactions: int64(head[8]),
	}
	var err error
	if t.fst, err = fst.ReadFST(br); err != nil {
		return nil, err
	}
	if t.art, err = art.ReadTree(br); err != nil {
		return nil, err
	}
	return t, nil
}
