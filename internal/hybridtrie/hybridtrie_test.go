package hybridtrie

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"ahi/internal/art"
	"ahi/internal/dataset"
	"ahi/internal/fst"
	"ahi/internal/workload"
)

func u64key(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func u64keys(keys []uint64) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = u64key(k)
	}
	return out
}

func seqVals(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i)
	}
	return v
}

func buildU64(t *testing.T, n int, cArt int, seed int64) (*Trie, []uint64) {
	t.Helper()
	keys := dataset.UserIDs(n, seed)
	tr := Build(Config{CArt: cArt, FST: fst.AutoDense()}, u64keys(keys), seqVals(len(keys)))
	return tr, keys
}

func TestLookupU64(t *testing.T) {
	for _, cArt := range []int{1, 2, 4, 6} {
		tr, keys := buildU64(t, 30000, cArt, 1)
		if tr.Len() != len(keys) {
			t.Fatalf("Len=%d", tr.Len())
		}
		for i, k := range keys {
			v, ok := tr.Lookup(u64key(k))
			if !ok || v != uint64(i) {
				t.Fatalf("cArt=%d: Lookup(%d)=(%d,%v) want %d", cArt, k, v, ok, i)
			}
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 10000; i++ {
			k := rng.Uint64()
			idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
			if idx < len(keys) && keys[idx] == k {
				continue
			}
			if _, ok := tr.Lookup(u64key(k)); ok {
				t.Fatalf("cArt=%d: phantom %d", cArt, k)
			}
		}
	}
}

func TestLookupEmails(t *testing.T) {
	emails := dataset.Emails(15000, 3)
	keys := make([][]byte, len(emails))
	for i, e := range emails {
		keys[i] = append([]byte(e), 0)
	}
	for _, cArt := range []int{4, 9} {
		tr := Build(Config{CArt: cArt, FST: fst.AutoDense()}, keys, seqVals(len(keys)))
		for i := range keys {
			v, ok := tr.Lookup(keys[i])
			if !ok || v != uint64(i) {
				t.Fatalf("cArt=%d: Lookup(%q) failed", cArt, emails[i])
			}
		}
		if _, ok := tr.Lookup(append([]byte("zzzz@none"), 0)); ok {
			t.Fatal("phantom email")
		}
	}
}

func TestShortKeysLiveInART(t *testing.T) {
	// Keys shorter than CArt stay entirely in ART.
	keys := [][]byte{{1, 0}, {1, 1, 1, 1, 1, 1, 0}, {2, 0}, {2, 3, 4, 5, 6, 7, 0}}
	tr := Build(Config{CArt: 4, FST: fst.AutoDense()}, keys, []uint64{10, 11, 12, 13})
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(10+i) {
			t.Fatalf("Lookup(%v)=(%d,%v)", k, v, ok)
		}
	}
}

func TestSinglePrefixGroupRootCase(t *testing.T) {
	// All keys share the CArt prefix: the ART part degenerates to a
	// single boundary chain.
	var keys [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, []byte{9, 9, 9, 9, byte(i), byte(i * 3), 0})
	}
	tr := Build(Config{CArt: 4, FST: fst.AutoDense()}, keys, seqVals(len(keys)))
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Lookup(%v) failed", k)
		}
	}
	if _, ok := tr.Lookup([]byte{9, 9, 9, 8, 0, 0, 0}); ok {
		t.Fatal("phantom under wrong prefix")
	}
}

func TestScanOrdered(t *testing.T) {
	tr, keys := buildU64(t, 20000, 4, 5)
	var got []uint64
	n := tr.Scan(nil, len(keys)+1, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	}, nil)
	if n != len(keys) {
		t.Fatalf("full scan visited %d of %d", n, len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan order broken at %d", i)
		}
	}
	// Ranged scans.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		start := rng.Intn(len(keys) - 60)
		var g []uint64
		tr.Scan(u64key(keys[start]), 50, func(k []byte, v uint64) bool {
			g = append(g, binary.BigEndian.Uint64(k))
			return true
		}, nil)
		if len(g) != 50 {
			t.Fatalf("ranged scan got %d", len(g))
		}
		for i := range g {
			if g[i] != keys[start+i] {
				t.Fatalf("ranged scan mismatch at %d (trial %d)", i, trial)
			}
		}
	}
	// From a non-existent key.
	probe := keys[100] + 1
	idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= probe })
	var g []uint64
	tr.Scan(u64key(probe), 3, func(k []byte, v uint64) bool {
		g = append(g, binary.BigEndian.Uint64(k))
		return true
	}, nil)
	if len(g) != 3 || g[0] != keys[idx] {
		t.Fatalf("successor scan wrong: %v", g)
	}
}

func TestExpandCompactRoundTrip(t *testing.T) {
	tr, keys := buildU64(t, 20000, 2, 9)
	sizeBefore := tr.Bytes()

	// Grab a boundary handle via a traced lookup.
	var bv boundaryVisit
	var prefix []byte
	k := u64key(keys[500])
	tr.lookup(k, func(v boundaryVisit) {
		if v.handle.Kind() == 6 { // art.KindFST
			bv = v
			prefix = append([]byte{}, v.prefix...)
		}
	})
	if bv.handle.IsEmpty() {
		t.Fatal("no boundary crossed")
	}
	nh, ok := tr.Expand(bv.handle, bv.parent, bv.label, prefix)
	if !ok {
		t.Fatal("expand failed")
	}
	if tr.Expanded() != 1 || tr.Expansions() != 1 {
		t.Fatalf("counters: %d %d", tr.Expanded(), tr.Expansions())
	}
	if tr.Bytes() <= sizeBefore {
		t.Fatal("expansion did not grow the index")
	}
	// All lookups still correct after expansion.
	for i, kk := range keys {
		if v, ok := tr.Lookup(u64key(kk)); !ok || v != uint64(i) {
			t.Fatalf("post-expand lookup lost %d", kk)
		}
	}
	// Scans still ordered across the expanded subtree.
	cnt := 0
	prev := uint64(0)
	tr.Scan(nil, len(keys)+1, func(kb []byte, v uint64) bool {
		k := binary.BigEndian.Uint64(kb)
		if cnt > 0 && k <= prev {
			t.Fatalf("scan order after expand broken")
		}
		prev = k
		cnt++
		return true
	}, nil)
	if cnt != len(keys) {
		t.Fatalf("scan after expand visited %d", cnt)
	}

	// Compact back.
	fh, ok := tr.Compact(nh, bv.parent, bv.label, prefix)
	if !ok {
		t.Fatal("compact failed")
	}
	if fh != bv.handle {
		t.Fatalf("compaction restored different node: %v vs %v", fh, bv.handle)
	}
	if tr.Expanded() != 0 || tr.Compactions() != 1 {
		t.Fatalf("counters after compact: %d %d", tr.Expanded(), tr.Compactions())
	}
	for i, kk := range keys {
		if v, ok := tr.Lookup(u64key(kk)); !ok || v != uint64(i) {
			t.Fatalf("post-compact lookup lost %d", kk)
		}
	}
}

func TestExpandRejectsStaleContext(t *testing.T) {
	tr, keys := buildU64(t, 5000, 2, 11)
	var bv boundaryVisit
	var prefix []byte
	tr.lookup(u64key(keys[0]), func(v boundaryVisit) {
		bv = v
		prefix = append([]byte{}, v.prefix...)
	})
	// Wrong label: parent does not reference the handle there.
	if _, ok := tr.Expand(bv.handle, bv.parent, bv.label+1, prefix); ok {
		t.Fatal("expand accepted stale context")
	}
	// Wrong kind.
	if _, ok := tr.Expand(bv.parent, bv.parent, bv.label, prefix); ok {
		t.Fatal("expand accepted non-FST handle")
	}
}

func TestAdaptiveExpandsHotPrefixes(t *testing.T) {
	keys := dataset.UserIDs(60000, 13)
	cfg := AdaptiveConfig{
		Trie:        Config{CArt: 2, FST: fst.AutoDense()},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
	}
	a := BuildAdaptive(cfg, u64keys(keys), seqVals(len(keys)))
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.2, 3)
	for i := 0; i < 2_000_000; i++ {
		j := z.Draw()
		v, ok := s.Lookup(u64key(keys[j]))
		if !ok || v != uint64(j) {
			t.Fatalf("lookup lost %d", keys[j])
		}
	}
	if a.Mgr.Adaptations() == 0 || a.Trie.Expansions() == 0 {
		t.Fatalf("no adaptation activity: %d adapts, %d expansions", a.Mgr.Adaptations(), a.Trie.Expansions())
	}
	if a.Trie.Expanded() == 0 {
		t.Fatal("nothing stayed expanded")
	}
	// Everything still correct.
	for i := 0; i < len(keys); i += 37 {
		if v, ok := a.Trie.Lookup(u64key(keys[i])); !ok || v != uint64(i) {
			t.Fatalf("post-adaptation lookup lost %d", keys[i])
		}
	}
	if err := a.Trie.Validate(u64keys(keys[:2000])); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivePhaseShiftCompactsTrie(t *testing.T) {
	keys := dataset.UserIDs(60000, 17)
	cfg := AdaptiveConfig{
		Trie:        Config{CArt: 2, FST: fst.AutoDense()},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 32,
	}
	a := BuildAdaptive(cfg, u64keys(keys), seqVals(len(keys)))
	s := a.NewSession()
	rng := rand.New(rand.NewSource(5))
	hot := len(keys) / 50
	for i := 0; i < 1_500_000; i++ {
		s.Lookup(u64key(keys[rng.Intn(hot)]))
	}
	exp1 := a.Trie.Expanded()
	if exp1 == 0 {
		t.Fatal("phase 1 expanded nothing")
	}
	lo := len(keys) - hot
	for i := 0; i < 5_000_000; i++ {
		s.Lookup(u64key(keys[lo+rng.Intn(hot)]))
	}
	if a.Trie.Compactions() == 0 {
		t.Fatal("phase shift triggered no compactions")
	}
	// Correctness after heavy migration churn.
	for i := 0; i < len(keys); i += 53 {
		if v, ok := a.Trie.Lookup(u64key(keys[i])); !ok || v != uint64(i) {
			t.Fatalf("lookup lost %d after churn", keys[i])
		}
	}
	var prev uint64
	cnt := 0
	a.Trie.Scan(nil, len(keys)+1, func(kb []byte, v uint64) bool {
		k := binary.BigEndian.Uint64(kb)
		if cnt > 0 && k <= prev {
			t.Fatal("scan order broken after churn")
		}
		prev = k
		cnt++
		return true
	}, nil)
	if cnt != len(keys) {
		t.Fatalf("scan after churn visited %d of %d", cnt, len(keys))
	}
}

func TestAdaptiveScansTrackAndExpand(t *testing.T) {
	keys := dataset.UserIDs(40000, 19)
	cfg := AdaptiveConfig{
		Trie:        Config{CArt: 2, FST: fst.AutoDense()},
		InitialSkip: 2, MinSkip: 1, MaxSkip: 16,
	}
	a := BuildAdaptive(cfg, u64keys(keys), seqVals(len(keys)))
	s := a.NewSession()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 400_000; i++ {
		j := rng.Intn(300)
		s.Scan(u64key(keys[j]), 20, func(k []byte, v uint64) bool { return true })
	}
	if a.Trie.Expansions() == 0 {
		t.Fatal("scan-only workload expanded nothing")
	}
}

func TestAdaptiveBudget(t *testing.T) {
	keys := dataset.UserIDs(50000, 29)
	base := Build(Config{CArt: 2, FST: fst.AutoDense()}, u64keys(keys), seqVals(len(keys)))
	budget := base.Bytes() + base.Bytes()/20 // 5% headroom over the compact build
	cfg := AdaptiveConfig{
		Trie:         Config{CArt: 2, FST: fst.AutoDense()},
		MemoryBudget: budget,
		InitialSkip:  4, MinSkip: 2, MaxSkip: 64,
	}
	a := BuildAdaptive(cfg, u64keys(keys), seqVals(len(keys)))
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.1, 31)
	for i := 0; i < 2_000_000; i++ {
		s.Lookup(u64key(keys[z.Draw()]))
	}
	if used := a.Trie.Bytes(); used > budget+budget/20 {
		t.Fatalf("budget blown: %d > %d", used, budget)
	}
	if a.Trie.Expansions() == 0 {
		t.Fatal("budget so tight nothing expanded")
	}
}

func TestTrainedTrie(t *testing.T) {
	keys := dataset.UserIDs(40000, 37)
	cfg := AdaptiveConfig{Trie: Config{CArt: 2, FST: fst.AutoDense()}}
	a := BuildAdaptive(cfg, u64keys(keys), seqVals(len(keys)))
	// Predict: first 1000 keys hot.
	var tk [][]byte
	var tf []uint64
	for i := 0; i < 1000; i++ {
		tk = append(tk, u64key(keys[i]))
		tf = append(tf, uint64(1000-i))
	}
	migs := a.Train(tk, tf)
	if migs == 0 {
		t.Fatal("training expanded nothing")
	}
	if a.Trie.Expanded() == 0 {
		t.Fatal("no expanded nodes after training")
	}
	for i := 0; i < len(keys); i += 41 {
		if v, ok := a.Trie.Lookup(u64key(keys[i])); !ok || v != uint64(i) {
			t.Fatalf("post-training lookup lost %d", keys[i])
		}
	}
}

func TestHybridMatchesFSTEverywhere(t *testing.T) {
	emails := dataset.Emails(8000, 41)
	keys := make([][]byte, len(emails))
	for i, e := range emails {
		keys[i] = append([]byte(e), 0)
	}
	tr := Build(Config{CArt: 6, FST: fst.Config{DenseLevels: 2}}, keys, seqVals(len(keys)))
	if err := tr.Validate(keys); err != nil {
		t.Fatal(err)
	}
	// Also probe mutated keys.
	rng := rand.New(rand.NewSource(2))
	probes := make([][]byte, 0, 2000)
	for i := 0; i < 2000; i++ {
		p := append([]byte{}, keys[rng.Intn(len(keys))]...)
		p[rng.Intn(len(p)-1)] ^= byte(1 + rng.Intn(255))
		probes = append(probes, p)
	}
	if err := tr.Validate(probes); err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefix(t *testing.T) {
	emails := dataset.Emails(10000, 51)
	keys := make([][]byte, len(emails))
	for i, e := range emails {
		keys[i] = append([]byte(e), 0)
	}
	tr := Build(Config{CArt: 6, FST: fst.AutoDense()}, keys, seqVals(len(keys)))
	prefix := []byte("gmail.com@")
	want := 0
	for _, e := range emails {
		if len(e) >= len(prefix) && e[:len(prefix)] == string(prefix) {
			want++
		}
	}
	got := tr.ScanPrefix(prefix, -1, func(k []byte, v uint64) bool { return true })
	if got != want {
		t.Fatalf("ScanPrefix found %d of %d", got, want)
	}
	// Bounded.
	if n := tr.ScanPrefix(prefix, 5, func(k []byte, v uint64) bool { return true }); n != 5 {
		t.Fatalf("bounded prefix scan %d", n)
	}
	// Absent prefix.
	if n := tr.ScanPrefix([]byte("zzzz@"), -1, func(k []byte, v uint64) bool { return true }); n != 0 {
		t.Fatalf("phantom prefix scan %d", n)
	}
}

func TestAdaptiveRelativeBudget(t *testing.T) {
	keys := dataset.UserIDs(30000, 53)
	a := BuildAdaptive(AdaptiveConfig{
		Trie:           Config{CArt: 2, FST: fst.AutoDense()},
		RelativeBudget: 0.5,
		InitialSkip:    4, MinSkip: 2, MaxSkip: 32,
	}, u64keys(keys), seqVals(len(keys)))
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.2, 7)
	for i := 0; i < 1_000_000; i++ {
		s.Lookup(u64key(keys[z.Draw()]))
	}
	if a.Trie.Expansions() == 0 {
		t.Fatal("relative budget blocked all expansions")
	}
	// Relative budgets are estimates over the expansion average; allow
	// generous slack but require boundedness.
	if a.Trie.Bytes() > a.Trie.FSTBytes()*3 {
		t.Fatalf("relative budget unbounded: %d vs FST %d", a.Trie.Bytes(), a.Trie.FSTBytes())
	}
}

func TestRelate(t *testing.T) {
	cases := []struct {
		from, prefix string
		want         relation
	}{
		{"", "abc", relAll},
		{"ab", "abc", relAll},
		{"abc", "abc", relAll},
		{"abd", "abc", relSkip},
		{"abcd", "abc", relSeek},
		{"abb", "abc", relAll},
		{"b", "abc", relSkip},
		{"a", "abc", relAll},
	}
	for _, c := range cases {
		if got := relate([]byte(c.from), []byte(c.prefix)); got != c.want {
			t.Fatalf("relate(%q,%q)=%v want %v", c.from, c.prefix, got, c.want)
		}
	}
	if relate(nil, []byte("x")) != relAll {
		t.Fatal("nil from must be relAll")
	}
}

func TestSizeOrderingARTvsHybridvsFST(t *testing.T) {
	// Table 2 / Figure 19 direction: FST < Hybrid(initial) << ART.
	keys := dataset.UserIDs(50000, 43)
	bk := u64keys(keys)
	vals := seqVals(len(keys))
	f := fst.New(fst.AutoDense(), bk, vals)
	tr := Build(Config{CArt: 2, FST: fst.AutoDense()}, bk, vals)
	// A pure ART for comparison.
	at := newPureART(bk, vals)
	if !(f.Bytes() <= tr.Bytes()) {
		t.Fatalf("hybrid (%d) smaller than FST (%d)?", tr.Bytes(), f.Bytes())
	}
	if !(tr.Bytes() < at) {
		t.Fatalf("hybrid (%d) not smaller than ART (%d)", tr.Bytes(), at)
	}
	// The hybrid's ART top should be a small fraction of the total.
	if tr.ARTBytes()*2 > tr.Bytes() {
		t.Fatalf("ART top too large: %d of %d", tr.ARTBytes(), tr.Bytes())
	}
}

func newPureART(keys [][]byte, vals []uint64) int64 {
	a := art.New()
	for i := range keys {
		a.Insert(keys[i], vals[i])
	}
	return a.Bytes()
}

func TestQuickHybridAgainstSortedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(3000)
		set := map[uint64]bool{}
		for len(set) < n {
			set[rng.Uint64()>>uint(rng.Intn(32))] = true
		}
		var keys []uint64
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		cArt := 1 + rng.Intn(5)
		tr := Build(Config{CArt: cArt, FST: fst.Config{DenseLevels: rng.Intn(4)}}, u64keys(keys), seqVals(len(keys)))
		for i, k := range keys {
			if v, ok := tr.Lookup(u64key(k)); !ok || v != uint64(i) {
				t.Fatalf("trial %d cArt %d: lost %d", trial, cArt, k)
			}
		}
		// Ordered scan equivalence.
		var got []uint64
		tr.Scan(nil, n+1, func(kb []byte, v uint64) bool {
			got = append(got, binary.BigEndian.Uint64(kb))
			return true
		}, nil)
		if len(got) != n {
			t.Fatalf("trial %d: scan %d of %d", trial, len(got), n)
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: scan order", trial)
			}
		}
	}
}

func TestBoundaryPrefixBytes(t *testing.T) {
	tr, keys := buildU64(t, 10000, 3, 47)
	k := u64key(keys[42])
	var prefixes [][]byte
	tr.lookup(k, func(v boundaryVisit) {
		prefixes = append(prefixes, append([]byte{}, v.prefix...))
	})
	if len(prefixes) == 0 {
		t.Fatal("no boundary visits")
	}
	for _, p := range prefixes {
		if !bytes.HasPrefix(k, p) {
			t.Fatalf("visit prefix %v not a prefix of key %v", p, k)
		}
		if len(p) < 3 {
			t.Fatalf("boundary above cArt: %v", p)
		}
	}
}
