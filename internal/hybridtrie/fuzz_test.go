package hybridtrie

import (
	"bytes"
	"sort"
	"testing"

	"ahi/internal/art"
	"ahi/internal/fst"
)

// FuzzHybridMigrations derives a key set from the input, builds the trie,
// then replays a tape of lookups interleaved with expansions and
// compactions of traversed boundary nodes, cross-checking every lookup
// against a map and finally verifying full scan order.
func FuzzHybridMigrations(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(2))
	f.Add([]byte{1, 2, 3, 4, 250, 251, 252, 253, 9, 8, 7, 6, 5}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, cArtRaw uint8) {
		if len(raw) < 8 {
			return
		}
		cArt := int(cArtRaw%4) + 1
		set := map[string]uint64{}
		for i := 0; i+4 <= len(raw); i += 2 {
			k := bytes.ReplaceAll(raw[i:i+4], []byte{0}, []byte{13})
			set[string(append(k, 0))] = uint64(i)
		}
		if len(set) < 2 {
			return
		}
		keys := make([][]byte, 0, len(set))
		for k := range set {
			keys = append(keys, []byte(k))
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		vals := make([]uint64, len(keys))
		for i, k := range keys {
			vals[i] = set[string(k)]
		}
		tr := Build(Config{CArt: cArt, FST: fst.Config{DenseLevels: int(cArtRaw % 3)}}, keys, vals)
		tr.art.SetDeferFrees(true)
		// Tape: lookups with interleaved migrations of traversed handles.
		for step, b := range raw {
			k := keys[int(b)%len(keys)]
			var bv boundaryVisit
			var prefix []byte
			seen := false
			v, ok := tr.lookup(k, func(x boundaryVisit) {
				if !seen {
					bv, seen = x, true
					prefix = append([]byte{}, x.prefix...)
				}
			})
			if !ok || v != set[string(k)] {
				t.Fatalf("step %d: lookup(%x) = (%d,%v) want %d", step, k, v, ok, set[string(k)])
			}
			if seen {
				switch step % 3 {
				case 0:
					if bv.handle.Kind() == art.KindFST {
						tr.Expand(bv.handle, bv.parent, bv.label, prefix)
					}
				case 1:
					switch bv.handle.Kind() {
					case art.KindNode4, art.KindNode16, art.KindNode48, art.KindNode256:
						if len(prefix) >= cArt { // only expanded nodes
							tr.Compact(bv.handle, bv.parent, bv.label, prefix)
							tr.art.FlushFrees()
						}
					}
				}
			}
		}
		// Everything still present and ordered.
		for i, k := range keys {
			if v, ok := tr.Lookup(k); !ok || v != vals[i] {
				t.Fatalf("final lookup(%x) lost", k)
			}
		}
		i := 0
		tr.Scan(nil, len(keys)+1, func(k []byte, v uint64) bool {
			if !bytes.Equal(k, keys[i]) {
				t.Fatalf("scan order diverged at %d: %x vs %x", i, k, keys[i])
			}
			i++
			return true
		}, nil)
		if i != len(keys) {
			t.Fatalf("scan visited %d of %d", i, len(keys))
		}
	})
}
