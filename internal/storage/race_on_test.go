//go:build race

package storage

const raceEnabled = true
