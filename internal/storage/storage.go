// Package storage supports the paper's Figure 3 motivation experiment:
// read and write latencies of compressed vs. uncompressed B+-tree leaf
// nodes across storage devices. The original uses a Samsung 870 SATA SSD,
// a 970 NVMe drive, Intel Optane persistent memory and DRAM with dropped
// caches; none of that hardware is assumed here, so device access costs
// come from a published-latency model (DESIGN.md §4) while the
// (de)compression CPU cost is measured live with stdlib flate standing in
// for LZ4. The orders of magnitude between device classes — the figure's
// actual point — are preserved.
package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Device models one storage class with fixed random-access latencies plus
// a transfer term.
type Device struct {
	Name     string
	ReadLat  time.Duration
	WriteLat time.Duration
	// SyncLat is the cost of making previously written data durable (an
	// fsync/flush barrier): drive cache flush on SATA, reduced on NVMe,
	// a persistence fence on PMEM, and a no-op modeled at memory cost on
	// DRAM (no durability to buy). Drives the durability experiment's
	// per-device fsync-policy sweep.
	SyncLat time.Duration
	// MBps is the sustained transfer bandwidth for the size-dependent
	// term of an access.
	MBps float64
}

// The modeled device classes of Figure 3, with latency envelopes from
// public datasheets/benchmarks (QD1 4 KiB random access).
var (
	SATASSD = Device{Name: "Samsung 870 SSD", ReadLat: 80 * time.Microsecond, WriteLat: 45 * time.Microsecond, SyncLat: 2 * time.Millisecond, MBps: 530}
	NVMeSSD = Device{Name: "Samsung 970 NVMe", ReadLat: 20 * time.Microsecond, WriteLat: 14 * time.Microsecond, SyncLat: 80 * time.Microsecond, MBps: 3000}
	PMEM    = Device{Name: "PMEM", ReadLat: 1500 * time.Nanosecond, WriteLat: 2500 * time.Nanosecond, SyncLat: 4 * time.Microsecond, MBps: 6000}
	DRAM    = Device{Name: "DRAM", ReadLat: 90 * time.Nanosecond, WriteLat: 90 * time.Nanosecond, SyncLat: 100 * time.Nanosecond, MBps: 25000}
)

// Devices lists the Figure 3 device classes in the paper's order.
var Devices = []Device{SATASSD, NVMeSSD, PMEM, DRAM}

// AccessTime returns the simulated device time for transferring size
// bytes, excluding any CPU (compression) work.
func (d Device) AccessTime(size int, write bool) time.Duration {
	lat := d.ReadLat
	if write {
		lat = d.WriteLat
	}
	transfer := time.Duration(float64(size) / (d.MBps * 1e6) * 1e9)
	return lat + transfer
}

// SyncTime returns the modeled durability-barrier cost of one fsync that
// covers size buffered bytes: the fixed flush latency plus the transfer
// of whatever the barrier forces out. Group commit amortizes exactly this
// term — batch n records per barrier and each pays SyncTime/n.
func (d Device) SyncTime(size int) time.Duration {
	transfer := time.Duration(float64(size) / (d.MBps * 1e6) * 1e9)
	return d.SyncLat + transfer
}

// EncodeLeaf serializes a leaf node image (count + keys + values), the
// on-device representation of an uncompressed node.
func EncodeLeaf(keys, vals []uint64) []byte {
	buf := make([]byte, 8+len(keys)*8+len(vals)*8)
	binary.LittleEndian.PutUint64(buf, uint64(len(keys)))
	off := 8
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
	}
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	return buf
}

// DecodeLeaf reverses EncodeLeaf.
func DecodeLeaf(img []byte) (keys, vals []uint64, err error) {
	if len(img) < 8 {
		return nil, nil, fmt.Errorf("storage: leaf image too short (%d bytes)", len(img))
	}
	n := int(binary.LittleEndian.Uint64(img))
	if len(img) != 8+16*n {
		return nil, nil, fmt.Errorf("storage: leaf image size %d does not match count %d", len(img), n)
	}
	keys = make([]uint64, n)
	vals = make([]uint64, n)
	off := 8
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(img[off:])
		off += 8
	}
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(img[off:])
		off += 8
	}
	return keys, vals, nil
}

// flateWriters pools deflate encoders: constructing one allocates large
// internal tables, which would dominate per-node compression timings the
// way no real system lets it (engines reuse codec contexts).
var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// Compress deflates a node image (LZ4's stand-in; see the package doc).
func Compress(raw []byte) []byte {
	var buf bytes.Buffer
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	_, _ = w.Write(raw)
	_ = w.Close()
	flateWriters.Put(w)
	return buf.Bytes()
}

// Decompress inflates a node image.
func Decompress(compressed []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	return io.ReadAll(r)
}

// AccessResult is one measured cell of Figure 3.
type AccessResult struct {
	Device     string
	Compressed bool
	Write      bool
	// DeviceTime is the simulated transfer cost, CPUTime the measured
	// (de)compression + (de)serialization cost; Total is their sum.
	DeviceTime time.Duration
	CPUTime    time.Duration
	Total      time.Duration
	Bytes      int
}

// MeasureAccess simulates one node access on a device: reads transfer the
// stored image and decompress it if needed; writes (re-)compress the image
// and transfer the result. CPU work runs for real; device time is modeled.
func MeasureAccess(d Device, raw []byte, compressed, write bool) AccessResult {
	res := AccessResult{Device: d.Name, Compressed: compressed, Write: write}
	img := raw
	if compressed {
		img = Compress(raw)
		// Time the CPU leg over several iterations and keep the minimum:
		// one-shot timings are dominated by flate's table setup and
		// scheduler noise.
		const reps = 8
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if write {
				img = Compress(raw)
			} else {
				out, err := Decompress(img)
				if err != nil || len(out) != len(raw) {
					panic("storage: decompression round-trip failed")
				}
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		res.CPUTime = best
	}
	res.Bytes = len(img)
	res.DeviceTime = d.AccessTime(len(img), write)
	res.Total = res.DeviceTime + res.CPUTime
	return res
}
