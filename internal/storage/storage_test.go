package storage

import (
	"math/rand"
	"testing"
	"time"
)

func sampleLeaf(n int, seed int64) ([]uint64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	base := uint64(1 << 40)
	for i := range keys {
		base += uint64(rng.Intn(4096) + 1)
		keys[i] = base
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	return keys, vals
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	keys, vals := sampleLeaf(179, 1)
	img := EncodeLeaf(keys, vals)
	gotK, gotV, err := DecodeLeaf(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gotK[i] != keys[i] || gotV[i] != vals[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeLeaf([]byte{1, 2}); err == nil {
		t.Fatal("short image accepted")
	}
	img := EncodeLeaf([]uint64{1}, []uint64{2})
	if _, _, err := DecodeLeaf(img[:len(img)-1]); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestCompressionShrinksLeafImages(t *testing.T) {
	keys, vals := sampleLeaf(179, 2)
	raw := EncodeLeaf(keys, vals)
	comp := Compress(raw)
	// The paper reports up to 47% reduction for 70%-occupied leaves;
	// clustered keys compress well under flate too.
	if float64(len(comp)) > 0.85*float64(len(raw)) {
		t.Fatalf("compression too weak: %d -> %d", len(raw), len(comp))
	}
	out, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(raw) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeviceOrdering(t *testing.T) {
	// Figure 3's premise: DRAM << PMEM << NVMe << SATA for random access.
	size := 4096
	var prev time.Duration
	for i := len(Devices) - 1; i >= 0; i-- { // DRAM..SATA
		at := Devices[i].AccessTime(size, false)
		if at <= prev {
			t.Fatalf("device ordering violated at %s", Devices[i].Name)
		}
		prev = at
	}
}

func TestAccessTimeIncludesTransfer(t *testing.T) {
	small := DRAM.AccessTime(64, false)
	large := DRAM.AccessTime(1<<20, false)
	if large <= small {
		t.Fatal("transfer term missing")
	}
}

func TestMeasureAccessShape(t *testing.T) {
	keys, vals := sampleLeaf(179, 3)
	raw := EncodeLeaf(keys, vals)
	// Compressed images must be smaller and carry CPU cost.
	rc := MeasureAccess(DRAM, raw, true, false)
	ru := MeasureAccess(DRAM, raw, false, false)
	if rc.Bytes >= ru.Bytes {
		t.Fatalf("compressed image not smaller: %d vs %d", rc.Bytes, ru.Bytes)
	}
	if rc.CPUTime == 0 {
		t.Fatal("compressed access must pay CPU")
	}
	if ru.CPUTime != 0 {
		t.Fatal("uncompressed access must not pay CPU")
	}
	// In-memory compressed access is far faster than uncompressed SATA IO
	// (the figure's core argument for keeping compressed data in DRAM).
	// Race instrumentation slows real decompression ~10x while the modeled
	// device latency stays fixed, so the comparison only holds uninstrumented.
	if raceEnabled {
		t.Skip("timing comparison is distorted by race instrumentation")
	}
	sata := MeasureAccess(SATASSD, raw, false, false)
	if rc.Total >= sata.Total {
		t.Fatalf("DRAM+decompress (%v) should beat SATA (%v)", rc.Total, sata.Total)
	}
}

func TestMeasureAccessWritePath(t *testing.T) {
	keys, vals := sampleLeaf(179, 5)
	raw := EncodeLeaf(keys, vals)
	wc := MeasureAccess(NVMeSSD, raw, true, true)
	wu := MeasureAccess(NVMeSSD, raw, false, true)
	if wc.CPUTime == 0 {
		t.Fatal("compressed write must pay compression CPU")
	}
	if wc.Bytes >= wu.Bytes {
		t.Fatal("compressed write should transfer fewer bytes")
	}
	// Write latencies include the device term.
	if wc.DeviceTime <= 0 || wu.DeviceTime <= 0 {
		t.Fatal("device time missing")
	}
}
