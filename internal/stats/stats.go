// Package stats provides the measurement plumbing of the evaluation:
// latency recorders, fixed-interval time series (the paper plots one point
// per 1M queries), percentile summaries, and the space/performance cost
// function C = P·S^r of Zhang et al. used in Figures 13 and 17.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates operation latencies cheaply: a running sum and
// count plus a bounded reservoir for percentiles.
type Recorder struct {
	sum       time.Duration
	count     int64
	reservoir []time.Duration
	cap       int
	seen      int64
	rng       uint64
	// sorted is the percentile scratch: a copy of the reservoir, sorted
	// lazily on the first Percentile call and reused until the next
	// Observe/Reset. The reservoir itself is never reordered, so sampling
	// stays uniform across interleaved Percentile calls.
	sorted      []time.Duration
	sortedValid bool
}

// NewRecorder creates a recorder with a reservoir of the given size.
func NewRecorder(reservoirSize int) *Recorder {
	if reservoirSize < 1 {
		reservoirSize = 1
	}
	return &Recorder{cap: reservoirSize, rng: 0x9e3779b97f4a7c15}
}

// Observe records one latency.
func (r *Recorder) Observe(d time.Duration) {
	r.sum += d
	r.count++
	r.seen++
	r.sortedValid = false
	if len(r.reservoir) < r.cap {
		r.reservoir = append(r.reservoir, d)
		return
	}
	// Vitter's Algorithm R with a cheap xorshift.
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	if idx := r.rng % uint64(r.seen); idx < uint64(r.cap) {
		r.reservoir[idx] = d
	}
}

// Count returns the number of observations.
func (r *Recorder) Count() int64 { return r.count }

// Mean returns the average latency, or 0 when empty.
func (r *Recorder) Mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return time.Duration(int64(r.sum) / r.count)
}

// Percentile returns the p-th percentile (p in [0,100]) from the
// reservoir. Consecutive calls without an intervening Observe reuse one
// sorted copy, so the usual p50/p95/p99 triplet sorts once.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.reservoir) == 0 {
		return 0
	}
	if !r.sortedValid {
		r.sorted = append(r.sorted[:0], r.reservoir...)
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
		r.sortedValid = true
	}
	idx := int(math.Ceil(p/100*float64(len(r.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.sorted) {
		idx = len(r.sorted) - 1
	}
	return r.sorted[idx]
}

// Reset clears all observations.
func (r *Recorder) Reset() {
	r.sum, r.count, r.seen = 0, 0, 0
	r.reservoir = r.reservoir[:0]
	r.sortedValid = false
}

// Point is one interval of a time series: mean latency and index size after
// `Ops` cumulative operations.
type Point struct {
	Ops        int64
	MeanNs     float64
	IndexBytes int64
	Extra      map[string]float64
}

// TimeSeries buckets observations into fixed-size operation intervals,
// mirroring the paper's "intervals of 1M queries" plots.
type TimeSeries struct {
	Interval int64
	points   []Point
	curSum   time.Duration
	curN     int64
	total    int64
}

// NewTimeSeries creates a series with the given operations-per-point
// interval.
func NewTimeSeries(interval int64) *TimeSeries {
	if interval < 1 {
		interval = 1
	}
	return &TimeSeries{Interval: interval}
}

// Observe records one operation latency; when the interval fills, a point
// is emitted with the supplied current index size.
func (ts *TimeSeries) Observe(d time.Duration, indexBytes func() int64) {
	ts.curSum += d
	ts.curN++
	ts.total++
	if ts.curN == ts.Interval {
		ts.flush(indexBytes())
	}
}

func (ts *TimeSeries) flush(indexBytes int64) {
	if ts.curN == 0 {
		return
	}
	ts.points = append(ts.points, Point{
		Ops:        ts.total,
		MeanNs:     float64(ts.curSum.Nanoseconds()) / float64(ts.curN),
		IndexBytes: indexBytes,
	})
	ts.curSum, ts.curN = 0, 0
}

// Finish flushes any partial interval.
func (ts *TimeSeries) Finish(indexBytes int64) { ts.flush(indexBytes) }

// Points returns the emitted points.
func (ts *TimeSeries) Points() []Point { return ts.points }

// Annotate attaches a named value to the most recent point (used for
// migration counts per interval in Figure 20).
func (ts *TimeSeries) Annotate(key string, v float64) {
	if len(ts.points) == 0 {
		return
	}
	p := &ts.points[len(ts.points)-1]
	if p.Extra == nil {
		p.Extra = map[string]float64{}
	}
	p.Extra[key] += v
}

// Cost evaluates the space/performance cost function C = P · S^r of Zhang
// et al. (2018): P is a latency (performance, lower is better), S a size in
// bytes, and r the relative importance of space. r = 1 weighs both equally;
// r < 1 favours performance, r > 1 favours space.
func Cost(latencyNs float64, sizeBytes int64, r float64) float64 {
	return latencyNs * math.Pow(float64(sizeBytes), r)
}

// HumanBytes formats a byte count for tables ("2.36GB" style).
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}
