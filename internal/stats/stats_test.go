package stats

import (
	"testing"
	"time"
)

func TestRecorderMeanAndCount(t *testing.T) {
	r := NewRecorder(100)
	for i := 1; i <= 10; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != 10 {
		t.Fatalf("Count=%d", r.Count())
	}
	if got := r.Mean(); got != 5500*time.Nanosecond {
		t.Fatalf("Mean=%v", got)
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRecorderPercentile(t *testing.T) {
	r := NewRecorder(1000)
	for i := 1; i <= 1000; i++ {
		r.Observe(time.Duration(i))
	}
	if p := r.Percentile(50); p < 480 || p > 520 {
		t.Fatalf("p50=%v", p)
	}
	if p := r.Percentile(100); p != 1000 {
		t.Fatalf("p100=%v", p)
	}
	if p := r.Percentile(0); p != 1 {
		t.Fatalf("p0=%v", p)
	}
}

func TestRecorderReservoirBounded(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 10000; i++ {
		r.Observe(time.Duration(i))
	}
	if len(r.reservoir) != 64 {
		t.Fatalf("reservoir grew to %d", len(r.reservoir))
	}
	if r.Count() != 10000 {
		t.Fatalf("Count=%d", r.Count())
	}
}

func TestTimeSeriesIntervals(t *testing.T) {
	ts := NewTimeSeries(10)
	size := int64(100)
	for i := 0; i < 35; i++ {
		ts.Observe(time.Duration(i), func() int64 { return size })
	}
	ts.Finish(size)
	pts := ts.Points()
	if len(pts) != 4 {
		t.Fatalf("points=%d want 4", len(pts))
	}
	if pts[0].Ops != 10 || pts[3].Ops != 35 {
		t.Fatalf("ops %d %d", pts[0].Ops, pts[3].Ops)
	}
	// First interval mean of 0..9 = 4.5 ns.
	if pts[0].MeanNs != 4.5 {
		t.Fatalf("mean=%v", pts[0].MeanNs)
	}
	if pts[0].IndexBytes != 100 {
		t.Fatalf("size=%d", pts[0].IndexBytes)
	}
}

func TestTimeSeriesAnnotate(t *testing.T) {
	ts := NewTimeSeries(1)
	ts.Annotate("x", 1) // no points yet: must not panic
	ts.Observe(time.Nanosecond, func() int64 { return 0 })
	ts.Annotate("migrations", 3)
	ts.Annotate("migrations", 2)
	if got := ts.Points()[0].Extra["migrations"]; got != 5 {
		t.Fatalf("annotation=%v", got)
	}
}

func TestCostOrdering(t *testing.T) {
	// Smaller and faster must always cost less at any r > 0.
	if !(Cost(100, 1000, 1) < Cost(200, 2000, 1)) {
		t.Fatal("cost not monotone")
	}
	// r = 0 ignores space entirely.
	if Cost(100, 1, 0) != Cost(100, 1<<40, 0) {
		t.Fatal("r=0 must ignore size")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:         "512B",
		2048:        "2.00KB",
		2536 << 20:  "2.48GB",
		1 << 40:     "1.00TB",
		3 * 1 << 10: "3.00KB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d)=%q want %q", in, got, want)
		}
	}
}

func TestReservoirIsRepresentative(t *testing.T) {
	// Feed a known uniform range; the reservoir median must land near the
	// population median (Vitter's Algorithm R property).
	r := NewRecorder(256)
	for i := 1; i <= 100_000; i++ {
		r.Observe(time.Duration(i))
	}
	p50 := float64(r.Percentile(50))
	if p50 < 30_000 || p50 > 70_000 {
		t.Fatalf("reservoir p50 %v far from population median", p50)
	}
}

func TestPercentileDoesNotPerturbSampling(t *testing.T) {
	// Interleaving Percentile calls with Observe must leave the reservoir's
	// sampling decisions untouched: Percentile sorts a private scratch, so
	// two recorders fed the same stream end with identical reservoirs even
	// when only one of them was queried midway.
	a, b := NewRecorder(64), NewRecorder(64)
	for i := 1; i <= 10_000; i++ {
		d := time.Duration(i*7919 + 13)
		a.Observe(d)
		b.Observe(d)
		if i%1000 == 0 {
			a.Percentile(50)
			a.Percentile(99)
		}
	}
	if len(a.reservoir) != len(b.reservoir) {
		t.Fatalf("reservoir sizes diverged: %d vs %d", len(a.reservoir), len(b.reservoir))
	}
	for i := range a.reservoir {
		if a.reservoir[i] != b.reservoir[i] {
			t.Fatalf("reservoir slot %d diverged: %v vs %v", i, a.reservoir[i], b.reservoir[i])
		}
	}
}

func TestPercentileCacheInvalidation(t *testing.T) {
	r := NewRecorder(16)
	for i := 1; i <= 10; i++ {
		r.Observe(time.Duration(i))
	}
	if got := r.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	// A later Observe must invalidate the cached sorted scratch.
	r.Observe(1000)
	if got := r.Percentile(100); got != 1000 {
		t.Fatalf("p100 after new max = %v, want 1000", got)
	}
	r.Reset()
	if got := r.Percentile(100); got != 0 {
		t.Fatalf("p100 after reset = %v, want 0", got)
	}
}
