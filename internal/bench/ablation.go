package bench

import (
	"fmt"

	"ahi/internal/btree"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Config    string
	LatencyNs float64
	Bytes     int64
	Extra     string
}

// RunAblationBloom isolates the Bloom filter in front of the sample map:
// with the filter, one-off accesses never allocate tracking entries.
func RunAblationBloom(sc Scale) ([]AblationRow, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 2
	// Interleave repetitions and keep minima (CPU-frequency drift would
	// otherwise dominate the few-percent tracking signal).
	lat := [2]float64{1e18, 1e18}
	var extras [2]string
	var sizes [2]int64
	for rep := 0; rep < 3; rep++ {
		for i, disable := range []bool{false, true} {
			a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
				Tree:         btree.Config{DefaultEncoding: btree.EncSuccinct},
				MemoryBudget: budget,
				DisableBloom: disable,
				InitialSkip:  20, FixedSkip: true,
			}, keys, vals)
			gen := workload.NewGenerator(workload.W13, len(keys), 5)
			r := runOps(sessionIndex{a.NewSession(), a}, gen, keys, ops/2, 0)
			if r.MeanNs < lat[i] {
				lat[i] = r.MeanNs
			}
			sizes[i] = a.Tree.Bytes()
			extras[i] = fmt.Sprintf("tracked=%d framework=%s", a.Mgr.TrackedUnits(), stats.HumanBytes(a.Mgr.Bytes()))
		}
	}
	rows := []AblationRow{
		{Config: "with bloom filter", LatencyNs: lat[0], Bytes: sizes[0], Extra: extras[0]},
		{Config: "without bloom filter", LatencyNs: lat[1], Bytes: sizes[1], Extra: extras[1]},
	}
	return rows, ablationTable("Ablation: Bloom filter before the sample map", rows)
}

// RunAblationAdaptiveSkip compares the adaptive skip-length controller
// against fixed skips at both extremes.
func RunAblationAdaptiveSkip(sc Scale) ([]AblationRow, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 2
	var rows []AblationRow
	type cfg struct {
		name  string
		fixed bool
		skip  int
	}
	for _, c := range []cfg{
		{"adaptive skip [4,128]", false, 8},
		{"fixed skip 4", true, 4},
		{"fixed skip 128", true, 128},
	} {
		a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
			Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct},
			MemoryBudget:  budget,
			InitialSkip:   c.skip,
			MinSkip:       4,
			MaxSkip:       128,
			FixedSkip:     c.fixed,
			MaxSampleSize: ops / 256,
		}, keys, vals)
		gen := workload.NewGenerator(workload.W11, len(keys), 5)
		r := runOps(sessionIndex{a.NewSession(), a}, gen, keys, ops, 0)
		rows = append(rows, AblationRow{
			Config: c.name, LatencyNs: r.MeanNs, Bytes: a.Tree.Bytes(),
			Extra: fmt.Sprintf("final skip=%d adapts=%d migrations=%d", a.Mgr.SkipLength(), a.Mgr.Adaptations(), a.Mgr.Migrations()),
		})
	}
	return rows, ablationTable("Ablation: adaptive vs fixed skip length", rows)
}

// RunAblationEagerExpand isolates the eager expand-on-insert policy of
// §5.2 under the write-dominated W5.1.
func RunAblationEagerExpand(sc Scale) ([]AblationRow, Table) {
	ops := sc.OpsPerPhase / 2
	var rows []AblationRow
	for _, eager := range []bool{true, false} {
		keys := dataset.OSM(sc.OSMKeys, 1)
		vals := make([]uint64, len(keys))
		budget := adaptiveBudget(keys, vals, 4)
		cfg := btree.AdaptiveConfig{
			Tree:         btree.Config{DefaultEncoding: btree.EncSuccinct},
			MemoryBudget: budget,
		}
		cfg.NoEagerExpand = !eager
		a := btree.BulkLoadAdaptive(cfg, keys, vals)
		ix := sessionIndex{a.NewSession(), a}
		gen := workload.NewGenerator(workload.W51, len(keys), 5)
		r := runOps(ix, gen, keys, ops, 0)
		name := "eager expand-on-insert"
		if !eager {
			name = "write-in-place (re-encode)"
		}
		rows = append(rows, AblationRow{
			Config: name, LatencyNs: r.MeanNs, Bytes: a.Tree.Bytes(),
			Extra: fmt.Sprintf("expansions=%d", a.Tree.Expansions()),
		})
	}
	return rows, ablationTable("Ablation: eager expansion on insert (W5.1)", rows)
}

// RunAblationHistory compares migrate-on-first-classification against the
// history-confirmed policy (the default CSHF waits for two consecutive
// cold phases before compacting).
func RunAblationHistory(sc Scale) ([]AblationRow, Table) {
	ops := sc.OpsPerPhase / 2
	var rows []AblationRow
	for _, impatient := range []bool{false, true} {
		keys := dataset.OSM(sc.OSMKeys, 1)
		vals := make([]uint64, len(keys))
		budget := adaptiveBudget(keys, vals, 4)
		initial, minS, maxS, maxSample := sc.sampling()
		a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
			Tree:                btree.Config{DefaultEncoding: btree.EncSuccinct},
			MemoryBudget:        budget,
			ImpatientCompaction: impatient,
			InitialSkip:         initial,
			MinSkip:             minS,
			MaxSkip:             maxS,
			MaxSampleSize:       maxSample,
		}, keys, vals)
		// Alternate two disjoint hot ranges every ops/8 operations: the
		// impatient policy compacts each range the moment the other takes
		// over, paying re-expansion when it returns.
		s := sessionIndex{a.NewSession(), a}
		var sum float64
		for phase := 0; phase < 8; phase++ {
			spec := workload.W11
			gen := workload.NewGenerator(spec, len(keys)/4, int64(phase)*13+5)
			window := keys
			if phase%2 == 1 {
				window = keys[len(keys)/2:]
			}
			r := runOps(s, gen, window, ops/8, 0)
			sum += r.MeanNs
		}
		r1 := runResult{MeanNs: sum / 8}
		r2 := r1
		name := "history-confirmed compaction"
		if impatient {
			name = "compact on first cold phase"
		}
		rows = append(rows, AblationRow{
			Config:    name,
			LatencyNs: (r1.MeanNs + r2.MeanNs) / 2,
			Bytes:     a.Tree.Bytes(),
			Extra:     fmt.Sprintf("migrations=%d adapts=%d", a.Mgr.Migrations(), a.Mgr.Adaptations()),
		})
	}
	return rows, ablationTable("Ablation: classification-history confirmation", rows)
}

// RunAblationDecentralized compares the paper's centralized sampling
// manager against the decentralized alternative §3 argues against: an
// information unit embedded in every leaf, updated on every access, swept
// wholesale at adaptation time.
func RunAblationDecentralized(sc Scale) ([]AblationRow, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 2
	var rows []AblationRow

	// Centralized (the paper's design).
	initial, minS, maxS, maxSample := sc.sampling()
	a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct},
		MemoryBudget:  budget,
		InitialSkip:   initial,
		MinSkip:       minS,
		MaxSkip:       maxS,
		MaxSampleSize: maxSample,
	}, keys, vals)
	gen := workload.NewGenerator(workload.W11, len(keys), 5)
	r := runOps(sessionIndex{a.NewSession(), a}, gen, keys, ops, 0)
	rows = append(rows, AblationRow{
		Config: "centralized sampling (paper)", LatencyNs: r.MeanNs, Bytes: a.Tree.Bytes(),
		Extra: fmt.Sprintf("tracking=%s", stats.HumanBytes(a.Mgr.Bytes())),
	})

	// Decentralized: per-leaf IUs, every access tracked.
	d := btree.NewDecentralized(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals,
		int64(ops/8), budget)
	gen = workload.NewGenerator(workload.W11, len(keys), 5)
	r = runOps(decentralizedIndex{d}, gen, keys, ops, 0)
	rows = append(rows, AblationRow{
		Config: "decentralized IUs (every access)", LatencyNs: r.MeanNs, Bytes: d.Tree.Bytes(),
		Extra: fmt.Sprintf("tracking=%s (IUs on every leaf)", stats.HumanBytes(d.IUBytes())),
	})
	return rows, ablationTable("Ablation: centralized sampling vs decentralized IUs", rows)
}

// decentralizedIndex adapts the decentralized tree.
type decentralizedIndex struct{ d *btree.Decentralized }

func (x decentralizedIndex) Lookup(k uint64) (uint64, bool) { return x.d.Lookup(k) }
func (x decentralizedIndex) Insert(k, v uint64) bool        { return x.d.Insert(k, v) }
func (x decentralizedIndex) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return x.d.Scan(from, n, fn)
}
func (x decentralizedIndex) Bytes() int64 { return x.d.Bytes() }

func ablationTable(title string, rows []AblationRow) Table {
	tbl := Table{Title: title, Header: []string{"config", "lat ns", "size", "notes"}}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Config, f1(r.LatencyNs), stats.HumanBytes(r.Bytes), r.Extra})
	}
	return tbl
}
