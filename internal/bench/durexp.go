package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/storage"
	"ahi/internal/wal"
)

// durability: the write-ahead-log experiment. Part one measures the real
// durable tree: concurrent writers insert through each fsync policy
// (plus a WAL-off baseline) against a log in a temp directory, recording
// per-op cost, tail latency, and how far group commit amortizes each
// fsync; the directory is then reopened to measure recovery — warm from
// the auto-checkpoint, replaying the tail. Part two is the per-device
// fsync-policy sweep over the storage model: the Device.SyncLat term
// prices one durability barrier per device class, and group size divides
// it — the table shows the per-record overhead an acked write pays on
// each device at increasing group-commit batch sizes.

// DurRow is one measured fsync-policy configuration.
type DurRow struct {
	Policy  string
	Workers int
	NsOp    float64
	P99Us   float64
	// RecsPerFsync is GroupedRecords/Fsyncs — the achieved group-commit
	// amortization. Only the always policy groups commits, so the other
	// rows read 0 (their fsyncs cover buffered records, not ack groups).
	RecsPerFsync float64
	Fsyncs       int64
	// Recovery of the same directory after Close.
	RecoverMs float64
	Replayed  int
	WarmStart bool
}

// DurDeviceRow is one device class in the modeled sync-cost sweep.
type DurDeviceRow struct {
	Device string
	SyncUs float64
	// PerRecUs[i] is the modeled per-record barrier cost at group size
	// durGroupSizes[i].
	PerRecUs []float64
}

// DurResult is the durability experiment outcome.
type DurResult struct {
	Rows    []DurRow
	Devices []DurDeviceRow
}

var durGroupSizes = []int{1, 8, 64}

// durInsertFrame is the on-log footprint of one insert record: frame
// header plus key and value.
const durInsertFrame = 9 + 16

func durOps(sc Scale, policy string) int {
	base := sc.OpsPerPhase / 10
	if policy == "always" {
		// Every commit waits on a group fsync: bound the fsync count so the
		// row measures amortization, not the disk.
		if base > 4000 {
			base = 4000
		}
		return base
	}
	if base > 100_000 {
		base = 100_000
	}
	return base
}

func durRun(sc Scale, policy string) DurRow {
	const workers = 4
	row := DurRow{Policy: policy, Workers: workers}
	ops := durOps(sc, policy)

	dir, err := os.MkdirTemp("", "ahi-durexp-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	cfg := btree.AdaptiveConfig{
		Tree: btree.Config{DefaultEncoding: btree.EncSuccinct},
		Mode: core.GS, // four writer sessions run concurrently
	}
	if policy != "off" {
		pol, perr := wal.PolicyByName(policy)
		if perr != nil {
			panic(perr)
		}
		cfg.Dur = &btree.DurabilityConfig{
			Dir:             dir,
			Policy:          pol,
			CheckpointEvery: int64(ops/2 + 1), // one auto checkpoint mid-run
		}
	}
	a, _, err := btree.OpenAdaptive(cfg)
	if err != nil {
		panic(err)
	}

	lats := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := a.NewSession()
			per := ops / workers
			l := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				k := uint64(w*per+i)*16 + 1
				c0 := time.Now()
				s.Insert(k, k)
				l = append(l, time.Since(c0))
			}
			lats[w] = l
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row.NsOp = float64(elapsed.Nanoseconds()) / float64(len(all))
	row.P99Us = float64(all[len(all)*99/100].Nanoseconds()) / 1e3

	if st := a.WALStats(); st != nil {
		row.Fsyncs = st.Fsyncs.Load()
		if row.Fsyncs > 0 {
			row.RecsPerFsync = float64(st.GroupedRecords.Load()) / float64(row.Fsyncs)
		}
	}
	a.Close()

	if policy != "off" {
		r0 := time.Now()
		b, rst, err := btree.OpenAdaptive(cfg)
		if err != nil {
			panic(err)
		}
		row.RecoverMs = float64(time.Since(r0).Nanoseconds()) / 1e6
		row.Replayed = rst.Replayed
		row.WarmStart = rst.WarmStart
		b.Close()
	}
	return row
}

// RunDurability runs the measured fsync-policy sweep and the modeled
// per-device sync-cost table.
func RunDurability(sc Scale) (DurResult, Table) {
	var res DurResult
	for _, policy := range []string{"off", "os", "interval", "always"} {
		res.Rows = append(res.Rows, durRun(sc, policy))
	}
	for _, d := range storage.Devices {
		dr := DurDeviceRow{Device: d.Name, SyncUs: float64(d.SyncLat.Nanoseconds()) / 1e3}
		for _, g := range durGroupSizes {
			perRec := float64(d.SyncTime(durInsertFrame*g).Nanoseconds()) / float64(g) / 1e3
			dr.PerRecUs = append(dr.PerRecUs, perRec)
		}
		res.Devices = append(res.Devices, dr)
	}

	t := Table{
		Title:  "durability: fsync policies (4 writers) and modeled per-device barrier cost",
		Header: []string{"policy", "ns/op", "p99 µs", "recs/fsync", "recover ms", "replayed", "warm"},
	}
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			r.Policy, fmt.Sprintf("%.0f", r.NsOp), fmt.Sprintf("%.1f", r.P99Us),
			fmt.Sprintf("%.1f", r.RecsPerFsync), fmt.Sprintf("%.2f", r.RecoverMs),
			fmt.Sprintf("%d", r.Replayed), fmt.Sprintf("%v", r.WarmStart),
		})
	}
	return res, t
}

func renderDurDevices(w io.Writer, rows []DurDeviceRow) {
	t := Table{
		Title:  "modeled per-record barrier cost by device and group-commit size (µs)",
		Header: []string{"device", "sync µs", "g=1", "g=8", "g=64"},
	}
	for _, d := range rows {
		t.Rows = append(t.Rows, []string{
			d.Device, fmt.Sprintf("%.2f", d.SyncUs),
			fmt.Sprintf("%.2f", d.PerRecUs[0]), fmt.Sprintf("%.2f", d.PerRecUs[1]), fmt.Sprintf("%.2f", d.PerRecUs[2]),
		})
	}
	t.Render(w)
}

// RecordDurability runs the experiment, renders both tables to w, and
// writes the metrics JSON (BENCH_durability.json format) to path.
func RecordDurability(sc Scale, path string, w io.Writer) error {
	res, tbl := RunDurability(sc)
	tbl.Render(w)
	renderDurDevices(w, res.Devices)
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp durability -scale %s -record %s", sc.Name, path),
		Scale:    fmt.Sprintf("%s (%d..%d sequential inserts per policy, 4 writers)", sc.Name, durOps(sc, "always"), durOps(sc, "os")),
		CPU:      cpuModel(),
		Procs:    runtime.GOMAXPROCS(0),
		Notes: "measured rows run against a WAL in a temp directory on this machine's filesystem; " +
			"the device table is the storage model's SyncLat term, not a measurement",
		Metrics: map[string]float64{},
	}
	for _, r := range res.Rows {
		key := "durability/" + r.Policy
		doc.Metrics[key+"_nsop"] = round2(r.NsOp)
		doc.Metrics[key+"_p99_us"] = round2(r.P99Us)
		doc.Metrics[key+"_recs_per_fsync"] = round2(r.RecsPerFsync)
		if r.Policy != "off" {
			doc.Metrics[key+"_recover_ms"] = round2(r.RecoverMs)
			doc.Metrics[key+"_replayed"] = float64(r.Replayed)
		}
	}
	for _, d := range res.Devices {
		for i, g := range durGroupSizes {
			doc.Metrics[fmt.Sprintf("durability/model_%s_g%d_us", shortDevice(d.Device), g)] = round2(d.PerRecUs[i])
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func shortDevice(name string) string {
	switch name {
	case storage.SATASSD.Name:
		return "sata"
	case storage.NVMeSSD.Name:
		return "nvme"
	case storage.PMEM.Name:
		return "pmem"
	default:
		return "dram"
	}
}
