package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/shard"
	"ahi/internal/workload"
)

// The scaling experiment measures how the concurrency-first adaptation
// path scales with cores: GOMAXPROCS x shard count x concurrent client
// goroutines, all serving batched Zipfian lookups against one sharded
// adaptive tree while the shared migrator pool re-encodes behind them.
// With inline fallbacks gone the serve path never pays a migration, so
// added clients should translate into aggregate throughput — bounded by
// the machine's actual core count, which the recorded JSON states
// honestly (a 1-core host serializes every cell onto the same CPU).

// Scaling sweep axes.
var (
	scalingProcs   = []int{1, 2, 4}
	scalingShards  = []int{1, 4}
	scalingClients = []int{1, 2, 4}
)

// scalingBatch is the lookup batch size every client issues; 128 matches
// the serving sweep's largest (fully amortized) batch cell.
const scalingBatch = 128

// ScalingRow is one (procs, shards, clients) cell.
type ScalingRow struct {
	Procs   int
	Shards  int
	Clients int
	// MopsPerS is aggregate throughput across all clients.
	MopsPerS float64
	// Speedup is vs the clients=1 cell of the same (procs, shards) pair.
	Speedup float64
}

// ScalingResult is the sweep plus the migration telemetry accumulated
// over every cell.
type ScalingResult struct {
	Rows          []ScalingRow
	Backpressured int64
	Coalesced     int64
	Steals        int64
}

// RunScaling sweeps the three axes. GOMAXPROCS is set per (procs,
// shards) pair — before the tree is built, so worker-pool and queue
// sizing see the value a real deployment of that width would — and
// restored afterwards.
func RunScaling(sc Scale) (ScalingResult, Table) {
	keys := dataset.YCSBKeys(sc.ConsecU64, 5)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	opsPerClient := sc.OpsPerPhase / 4
	opsPerClient -= opsPerClient % scalingBatch
	if opsPerClient < scalingBatch {
		opsPerClient = scalingBatch
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var res ScalingResult
	for _, procs := range scalingProcs {
		for _, shards := range scalingShards {
			runtime.GOMAXPROCS(procs)
			cells := scalingSweep(sc, keys, vals, budget, shards, opsPerClient, &res)
			var base float64
			for ci, clients := range scalingClients {
				row := ScalingRow{
					Procs: procs, Shards: shards, Clients: clients,
					MopsPerS: cells[ci],
				}
				if ci == 0 {
					base = row.MopsPerS
				}
				row.Speedup = row.MopsPerS / base
				res.Rows = append(res.Rows, row)
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	tbl := Table{
		Title:  "Multi-core scaling: GOMAXPROCS x shards x clients",
		Header: []string{"procs", "shards", "clients", "Mops/s", "speedup"},
	}
	for _, r := range res.Rows {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Procs), fmt.Sprint(r.Shards), fmt.Sprint(r.Clients),
			f2(r.MopsPerS), f2(r.Speedup) + "x",
		})
	}
	return res, tbl
}

// scalingSweep builds one sharded tree at the current GOMAXPROCS and
// times every client count against it, returning aggregate Mops/s per
// entry of scalingClients. One tree per (procs, shards) pair keeps the
// client axis honest: every cell sees the identical index layout.
func scalingSweep(sc Scale, keys, vals []uint64, budget int64, shards, opsPerClient int, res *ScalingResult) []float64 {
	initial, minS, maxS, maxSample := sc.sampling()
	acfg := btree.AdaptiveConfig{
		Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct},
		MemoryBudget:    budget,
		InitialSkip:     initial,
		MinSkip:         minS,
		MaxSkip:         maxS,
		MaxSampleSize:   maxSample,
		Mode:            core.GS,
		AsyncMigrations: true,
	}
	s := shard.BulkLoad(shard.Config{Shards: shards, Adaptive: acfg}, keys, vals)

	// Per-client pre-generated Zipfian streams: draws happen outside the
	// timed region, and each client gets a distinct seed so concurrent
	// cells are not lock-step identical.
	maxClients := scalingClients[len(scalingClients)-1]
	streams := make([][]uint64, maxClients)
	for c := range streams {
		d := workload.NewZipf(len(keys), 1.1, int64(7+c))
		st := make([]uint64, opsPerClient)
		for i := range st {
			st[i] = keys[d.Draw()]
		}
		streams[c] = st
	}

	// Untimed warmup converges the adaptive state once per tree.
	warm(s, streams[0])
	s.DrainMigrations()

	out := make([]float64, len(scalingClients))
	for ci, clients := range scalingClients {
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			go func(stream []uint64) {
				defer wg.Done()
				qv := make([]uint64, scalingBatch)
				qf := make([]bool, scalingBatch)
				<-start
				for off := 0; off < len(stream); off += scalingBatch {
					s.LookupBatch(stream[off:off+scalingBatch], qv, qf)
				}
			}(streams[c])
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		elapsed := time.Since(t0)
		out[ci] = float64(clients*opsPerClient) / elapsed.Seconds() / 1e6
	}

	s.DrainMigrations()
	for i := 0; i < s.Shards(); i++ {
		mgr := s.Shard(i).Mgr
		res.Backpressured += mgr.Backpressured()
		res.Coalesced += mgr.CoalescedTriggers()
	}
	res.Steals += s.Steals()
	s.Close()
	runtime.GC()
	return out
}

func warm(s *shard.ShardedBTree, stream []uint64) {
	qv := make([]uint64, scalingBatch)
	qf := make([]bool, scalingBatch)
	for off := 0; off < len(stream); off += scalingBatch {
		s.LookupBatch(stream[off:off+scalingBatch], qv, qf)
	}
}

// RecordScaling runs the sweep once, renders the table to w, and writes
// the metrics JSON (BENCH_scaling.json format) to path.
func RecordScaling(sc Scale, path string, w io.Writer) error {
	res, tbl := RunScaling(sc)
	tbl.Render(w)
	fmt.Fprintf(w, "pipeline: backpressured=%d coalesced=%d steals=%d\n",
		res.Backpressured, res.Coalesced, res.Steals)
	hostProcs := runtime.GOMAXPROCS(0)
	notes := "speedups are vs the clients=1 cell of the same (procs, shards) pair; " +
		"GOMAXPROCS is forced per cell regardless of physical cores"
	if hostProcs == 1 {
		notes += "; RECORDED ON A 1-CORE HOST: procs>1 cells time-slice one CPU, so " +
			"client speedups reflect batching/queueing overlap only, not parallelism — " +
			"re-record on a multi-core machine for real scaling curves"
	}
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp scaling -scale %s -record %s", sc.Name, path),
		Scale: fmt.Sprintf("%s (%d YCSB u64 keys, %d lookups per client, batch %d)",
			sc.Name, sc.ConsecU64, sc.OpsPerPhase/4, scalingBatch),
		CPU:     cpuModel(),
		Procs:   hostProcs,
		Notes:   notes,
		Metrics: map[string]float64{},
	}
	for _, r := range res.Rows {
		key := fmt.Sprintf("scaling/p%d_s%d_c%d", r.Procs, r.Shards, r.Clients)
		doc.Metrics[key+"_mops"] = round2(r.MopsPerS)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
	}
	doc.Metrics["pipeline/backpressured"] = float64(res.Backpressured)
	doc.Metrics["pipeline/coalesced"] = float64(res.Coalesced)
	doc.Metrics["pipeline/steals"] = float64(res.Steals)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
