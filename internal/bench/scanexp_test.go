package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScanShape runs the length x encoding x shards sweep at micro scale
// and checks the grid is complete with non-empty cells. Matched by the CI
// smoke job (go test -run Scan).
func TestScanShape(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 8_000
	res, tbl := RunScan(sc)

	wantKernel := len(scanEncs) * len(scanLens)
	if len(res.Kernel) != wantKernel || len(tbl.Rows) != wantKernel {
		t.Fatalf("kernel rows=%d want %d", len(res.Kernel), wantKernel)
	}
	for _, r := range res.Kernel {
		if r.ElemMps <= 0 || r.BulkMps <= 0 || r.FuseMps <= 0 || r.Speedup <= 0 {
			t.Fatalf("empty kernel cell: %+v", r)
		}
	}
	if wantShard := len(scanShards) * len(scanScanners); len(res.Shard) != wantShard {
		t.Fatalf("shard rows=%d want %d", len(res.Shard), wantShard)
	}
	for _, r := range res.Shard {
		if r.Mps <= 0 {
			t.Fatalf("empty shard cell: %+v", r)
		}
	}
	if res.MixKops <= 0 {
		t.Fatalf("YCSB-E-long mix throughput %v", res.MixKops)
	}
	if res.RatioLen256 <= 0 {
		t.Fatalf("succinct len256 ratio %v", res.RatioLen256)
	}
	// The >=3x acceptance floor is asserted only on the recorded run (see
	// BENCH_scan.json notes): the micro-scale smoke tree is too small for
	// stable ratios under CI noise.
}

// TestRecordScanSchema writes a real BENCH_scan.json to a temp path and
// validates the schema CI depends on: header fields, one metric per
// kernel cell and implementation, the shard cells, the mix entry, and the
// headline ratio key.
func TestRecordScanSchema(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 8_000
	path := filepath.Join(t.TempDir(), "BENCH_scan.json")
	if err := RecordScan(sc, path, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_scan.json is not valid JSON: %v", err)
	}
	if doc.Recorded == "" || doc.Command == "" || doc.CPU == "" || doc.Procs <= 0 || doc.Notes == "" {
		t.Fatalf("missing header fields: %+v", doc)
	}
	for _, enc := range scanEncs {
		for _, ln := range scanLens {
			for _, suffix := range []string{"_elem_mps", "_bulk_mps", "_batch_mps", "_speedup"} {
				key := fmt.Sprintf("scan/%s_len%d%s", encName(enc), ln, suffix)
				v, ok := doc.Metrics[key]
				if !ok || v <= 0 {
					t.Fatalf("metric %s missing or non-positive (%v)", key, v)
				}
			}
		}
	}
	for _, shards := range scanShards {
		for _, scanners := range scanScanners {
			key := fmt.Sprintf("scan/shards%d_scanners%d_mps", shards, scanners)
			if v, ok := doc.Metrics[key]; !ok || v <= 0 {
				t.Fatalf("metric %s missing or non-positive (%v)", key, v)
			}
		}
	}
	for _, key := range []string{"scan/ycsbe_long_kops", "scan/ratio_succinct_len256"} {
		if v, ok := doc.Metrics[key]; !ok || v <= 0 {
			t.Fatalf("metric %s missing or non-positive (%v)", key, v)
		}
	}
}
