package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durTestScale keeps the sweep small enough for CI: a few hundred fsyncs
// on the always row, thousands of buffered commits elsewhere.
func durTestScale() Scale {
	sc := Tiny
	sc.OpsPerPhase = 40_000
	return sc
}

func TestRunDurability(t *testing.T) {
	res, tbl := RunDurability(durTestScale())
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Policy == "off" {
			continue
		}
		if r.Replayed == 0 && !r.WarmStart {
			t.Fatalf("%s: recovery saw neither checkpoint nor log (%+v)", r.Policy, r)
		}
		if !r.WarmStart {
			t.Fatalf("%s: auto checkpoint never fired", r.Policy)
		}
	}
	// The always row must actually have fsynced on the commit path.
	for _, r := range res.Rows {
		if r.Policy == "always" && r.Fsyncs == 0 {
			t.Fatal("always policy recorded zero fsyncs")
		}
	}
	if len(res.Devices) != 4 {
		t.Fatalf("device rows: %d", len(res.Devices))
	}
	for _, d := range res.Devices {
		// Group commit must strictly amortize the modeled barrier.
		if !(d.PerRecUs[0] > d.PerRecUs[1] && d.PerRecUs[1] > d.PerRecUs[2]) {
			t.Fatalf("%s: per-record cost not monotone over group size: %v", d.Device, d.PerRecUs)
		}
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows: %d", len(tbl.Rows))
	}
}

// TestRecordDurabilitySchema writes a real BENCH_durability.json to a
// temp path and validates the schema CI depends on.
func TestRecordDurabilitySchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_durability.json")
	if err := RecordDurability(durTestScale(), path, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_durability.json is not valid JSON: %v", err)
	}
	if doc.Recorded == "" || doc.Command == "" || doc.CPU == "" || doc.Procs <= 0 {
		t.Fatalf("missing header fields: %+v", doc)
	}
	for _, key := range []string{
		"durability/off_nsop", "durability/always_nsop", "durability/always_p99_us",
		"durability/always_recs_per_fsync", "durability/os_recover_ms", "durability/interval_replayed",
		"durability/model_sata_g1_us", "durability/model_nvme_g64_us", "durability/model_dram_g8_us",
	} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Fatalf("metric %q missing (have %d metrics)", key, len(doc.Metrics))
		}
	}
}
