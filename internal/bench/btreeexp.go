package bench

import (
	"fmt"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/dualstage"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

// Table1Row is one leaf encoding of Table 1.
type Table1Row struct {
	Encoding  string
	AvgBytes  int64
	LatencyNs float64
}

// RunTable1 reproduces Table 1: average size and uniform-lookup latency
// per leaf encoding on the OSM dataset at 70% occupancy. Instruction/LLC
// counters are unavailable in Go; latency and the decoded-payload size
// carry the ranking (DESIGN.md §4).
func RunTable1(sc Scale) ([]Table1Row, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ops := sc.OpsPerPhase / 4
	encs := []core.Encoding{btree.EncGapped, btree.EncPacked, btree.EncSuccinct}
	trees := make([]*btree.Tree, len(encs))
	for i, enc := range encs {
		trees[i] = btree.BulkLoad(btree.Config{DefaultEncoding: enc}, keys, vals)
	}
	// Interleave repetitions and keep minima (see RunFig5's rationale).
	lat := []float64{1e18, 1e18, 1e18}
	for rep := 0; rep < 3; rep++ {
		for i := range encs {
			gen := workload.NewGenerator(workload.Spec{
				Name: "uniform-reads", Mix: []workload.Mix{{Frac: 1, Kind: workload.OpRead, Dist: workload.DistUniform}},
			}, len(keys), 3)
			if r := runOps(treeIndex{trees[i]}, gen, keys, ops, 0); r.MeanNs < lat[i] {
				lat[i] = r.MeanNs
			}
		}
	}
	var rows []Table1Row
	for i, enc := range encs {
		s, p, g := trees[i].LeafBytes()
		sc2, pc, gc := trees[i].LeafCounts()
		var avg int64
		if n := sc2 + pc + gc; n > 0 {
			avg = (s + p + g) / n
		}
		rows = append(rows, Table1Row{
			Encoding:  btree.EncodingName(enc),
			AvgBytes:  avg,
			LatencyNs: lat[i],
		})
	}
	tbl := Table{
		Title:  "Table 1: leaf encodings at 70% occupancy (OSM, uniform lookups)",
		Header: []string{"encoding", "avg leaf bytes", "lookup ns"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Encoding, fmt.Sprint(r.AvgBytes), f1(r.LatencyNs)})
	}
	return rows, tbl
}

// Fig9Row is one migration direction at one index size.
type Fig9Row struct {
	From, To  string
	IndexSize string
	PerNodeNs float64
}

// RunFig9 reproduces Figure 9: per-leaf migration cost between the three
// encodings for a cache-resident and a larger index.
func RunFig9(sc Scale) ([]Fig9Row, Table) {
	var rows []Fig9Row
	sizes := []struct {
		name string
		keys int
	}{
		{"small (~cache)", sc.OSMKeys / 16},
		{"large", sc.OSMKeys},
	}
	encs := []core.Encoding{btree.EncSuccinct, btree.EncPacked, btree.EncGapped}
	for _, size := range sizes {
		keys := dataset.OSM(size.keys, 11)
		vals := make([]uint64, len(keys))
		tr := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncGapped}, keys, vals)
		leaves := collectLeaves(tr)
		for _, from := range encs {
			for _, to := range encs {
				if from == to {
					continue
				}
				// Bring all leaves to the source encoding, then time the
				// migration sweep. Repeat and keep the minimum: a single
				// sweep is short enough that one GC cycle landing inside
				// the timed window distorts the per-node cost (same
				// policy as the fig5/tbl1 timing sweeps).
				const reps = 3
				var best float64
				for r := 0; r < reps; r++ {
					for _, l := range leaves {
						tr.MigrateLeaf(l, from)
					}
					start := time.Now()
					for _, l := range leaves {
						tr.MigrateLeaf(l, to)
					}
					el := float64(time.Since(start).Nanoseconds()) / float64(len(leaves))
					if r == 0 || el < best {
						best = el
					}
				}
				rows = append(rows, Fig9Row{
					From: btree.EncodingName(from), To: btree.EncodingName(to),
					IndexSize: size.name,
					PerNodeNs: best,
				})
			}
		}
	}
	tbl := Table{
		Title:  "Figure 9: leaf-encoding migration costs",
		Header: []string{"index", "from", "to", "ns/node"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.IndexSize, r.From, r.To, f1(r.PerNodeNs)})
	}
	return rows, tbl
}

func collectLeaves(tr *btree.Tree) []*btree.Leaf {
	var leaves []*btree.Leaf
	tr.WalkLeaves(func(l *btree.Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	return leaves
}

// TreeVariant names one competitor of the Figure 12–17 experiments.
type TreeVariant string

// The evaluated B+-tree variants.
const (
	VariantAHI        TreeVariant = "AHI-BTree"
	VariantPreTrained TreeVariant = "Pre-Trained"
	VariantSuccinct   TreeVariant = "Succinct"
	VariantPacked     TreeVariant = "Packed"
	VariantGapped     TreeVariant = "Gapped"
)

// buildVariant constructs one tree variant over the keys; budgetBytes == 0
// leaves the adaptive variants unbounded. trainSpec (optional) is replayed
// for the Pre-Trained variant's offline training.
func buildVariant(sc Scale, v TreeVariant, keys, vals []uint64, budgetBytes int64, trainSpec *workload.Spec, trainOps int) kvIndex {
	switch v {
	case VariantSuccinct:
		return treeIndex{btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals)}
	case VariantPacked:
		return treeIndex{btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncPacked}, keys, vals)}
	case VariantGapped:
		return treeIndex{btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncGapped}, keys, vals)}
	}
	initial, minS, maxS, maxSample := sc.sampling()
	cfg := btree.AdaptiveConfig{
		Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct},
		MemoryBudget:  budgetBytes,
		InitialSkip:   initial,
		MinSkip:       minS,
		MaxSkip:       maxS,
		MaxSampleSize: maxSample,
	}
	a := btree.BulkLoadAdaptive(cfg, keys, vals)
	if v == VariantPreTrained && trainSpec != nil {
		freqs := map[uint64]uint64{}
		gen := workload.NewGenerator(*trainSpec, len(keys), 12345)
		for i := 0; i < trainOps; i++ {
			op := gen.Next()
			freqs[keys[op.Index]]++
		}
		a.Train(freqs)
	}
	return sessionIndex{a.NewSession(), a}
}

// Fig12Result carries the full phase experiment.
type Fig12Result struct {
	// Series is the adaptive tree's per-interval latency/size trace across
	// all three phases.
	Series []seriesPoint
	// PhaseMeans[variant][phase] is the mean latency.
	PhaseMeans map[TreeVariant][3]float64
	// FinalBytes per variant; SamplingBytes for the adaptive tree.
	FinalBytes    map[TreeVariant]int64
	SamplingBytes int64
}

// RunFig12 reproduces Figure 12: workloads W1.1→W1.2→W1.3 on the OSM
// dataset across all five tree variants.
func RunFig12(sc Scale) (*Fig12Result, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4) // 25% of the gapped footprint headroom
	specs := []workload.Spec{workload.W11, workload.W12, workload.W13}
	res := &Fig12Result{
		PhaseMeans: map[TreeVariant][3]float64{},
		FinalBytes: map[TreeVariant]int64{},
	}
	for _, v := range []TreeVariant{VariantAHI, VariantPreTrained, VariantSuccinct, VariantPacked, VariantGapped} {
		w11 := workload.W11
		ix := buildVariant(sc, v, keys, vals, budget, &w11, sc.OpsPerPhase/4)
		var means [3]float64
		for phase, spec := range specs {
			gen := workload.NewGenerator(spec, len(keys), int64(phase+1)*17)
			interval := int64(0)
			if v == VariantAHI {
				interval = sc.Interval
			}
			r := runOps(ix, gen, keys, sc.OpsPerPhase, interval)
			means[phase] = r.MeanNs
			if v == VariantAHI {
				res.Series = append(res.Series, r.Series...)
			}
		}
		res.PhaseMeans[v] = means
		res.FinalBytes[v] = ix.Bytes()
		if v == VariantAHI {
			res.SamplingBytes = ix.(sessionIndex).a.Mgr.Bytes()
		}
	}
	tbl := Table{
		Title:  "Figure 12: W1.1 / W1.2 / W1.3 phases on OSM",
		Header: []string{"variant", "W1.1 ns", "W1.2 ns", "W1.3 ns", "final size"},
	}
	for _, v := range []TreeVariant{VariantAHI, VariantPreTrained, VariantSuccinct, VariantPacked, VariantGapped} {
		m := res.PhaseMeans[v]
		tbl.Rows = append(tbl.Rows, []string{
			string(v), f1(m[0]), f1(m[1]), f1(m[2]), stats.HumanBytes(res.FinalBytes[v]),
		})
	}
	tbl.Rows = append(tbl.Rows, []string{"(sampling framework)", "", "", "", stats.HumanBytes(res.SamplingBytes)})
	return res, tbl
}

// adaptiveBudget grants the compact baseline size plus 1/div of the
// gapped–succinct gap (the space the adaptation may spend on hot nodes).
func adaptiveBudget(keys, vals []uint64, div int64) int64 {
	succ := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals).Bytes()
	gap := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncGapped}, keys, vals).Bytes()
	return succ + (gap-succ)/div
}

// Fig13Row is one point of the cost-function scatter.
type Fig13Row struct {
	Variant   TreeVariant
	Workload  string
	LatencyNs float64
	Bytes     int64
	Cost      float64 // C = P · S (r = 1)
}

// RunFig13 reproduces Figure 13 from Figure 12's machinery: latency/size
// points under W1.2 and W1.3 with the equal-importance cost function.
func RunFig13(sc Scale) ([]Fig13Row, Table) {
	res, _ := RunFig12(sc)
	var rows []Fig13Row
	for wi, name := range []string{"W1.2", "W1.3"} {
		for _, v := range []TreeVariant{VariantAHI, VariantPreTrained, VariantSuccinct, VariantPacked, VariantGapped} {
			lat := res.PhaseMeans[v][wi+1]
			b := res.FinalBytes[v]
			rows = append(rows, Fig13Row{
				Variant: v, Workload: name, LatencyNs: lat, Bytes: b,
				Cost: stats.Cost(lat, b, 1),
			})
		}
	}
	tbl := Table{
		Title:  "Figure 13: cost function C = P*S (r=1)",
		Header: []string{"workload", "variant", "lat ns", "size", "cost"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.Workload, string(r.Variant), f1(r.LatencyNs), stats.HumanBytes(r.Bytes),
			fmt.Sprintf("%.3g", r.Cost),
		})
	}
	return rows, tbl
}

// Fig14Row is one α point of the skew sweep.
type Fig14Row struct {
	Alpha     float64
	Variant   TreeVariant
	LatencyNs float64
	Bytes     int64
}

// RunFig14 reproduces Figure 14: W1.1 with varying Zipf α ∈ (0, 1.6].
func RunFig14(sc Scale) ([]Fig14Row, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 2
	var rows []Fig14Row
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6} {
		spec := workload.W11
		spec.ZipfAlpha = alpha
		for _, v := range []TreeVariant{VariantAHI, VariantPreTrained, VariantSuccinct, VariantPacked, VariantGapped} {
			ix := buildVariant(sc, v, keys, vals, budget, &spec, ops/4)
			gen := workload.NewGenerator(spec, len(keys), int64(alpha*100))
			r := runOps(ix, gen, keys, ops, 0)
			rows = append(rows, Fig14Row{Alpha: alpha, Variant: v, LatencyNs: r.MeanNs, Bytes: ix.Bytes()})
		}
	}
	tbl := Table{
		Title:  "Figure 14: skew sweep (W1.1, varying alpha)",
		Header: []string{"alpha", "variant", "lat ns", "size"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{f1(r.Alpha), string(r.Variant), f1(r.LatencyNs), stats.HumanBytes(r.Bytes)})
	}
	return rows, tbl
}

// Fig15Row is one memory-budget point.
type Fig15Row struct {
	BudgetBytes int64
	LatencyNs   float64
	Bytes       int64
	GappedFrac  float64
}

// RunFig15 reproduces Figure 15: consecutive keys under W1.1 with a sweep
// of absolute memory budgets between the succinct and gapped footprints.
func RunFig15(sc Scale) ([]Fig15Row, Table) {
	keys := dataset.ConsecutiveU64(sc.ConsecU64, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	succ := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals).Bytes()
	gap := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncGapped}, keys, vals).Bytes()
	ops := sc.OpsPerPhase / 2
	var rows []Fig15Row
	for _, frac := range []float64{0.05, 0.25, 0.5, 0.75, 1.0} {
		budget := succ + int64(frac*float64(gap-succ))
		initial, minS, maxS, maxSample := sc.sampling()
		a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
			Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct},
			MemoryBudget:  budget,
			InitialSkip:   initial,
			MinSkip:       minS,
			MaxSkip:       maxS,
			MaxSampleSize: maxSample,
		}, keys, vals)
		gen := workload.NewGenerator(workload.W11, len(keys), 77)
		r := runOps(sessionIndex{a.NewSession(), a}, gen, keys, ops, 0)
		s, p, g := a.Tree.LeafCounts()
		rows = append(rows, Fig15Row{
			BudgetBytes: budget,
			LatencyNs:   r.MeanNs,
			Bytes:       a.Tree.Bytes(),
			GappedFrac:  float64(g) / float64(s+p+g),
		})
	}
	tbl := Table{
		Title:  "Figure 15: memory-budget sweep (consecutive keys, W1.1)",
		Header: []string{"budget", "lat ns", "size", "gapped leaf frac"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			stats.HumanBytes(r.BudgetBytes), f1(r.LatencyNs), stats.HumanBytes(r.Bytes), f2(r.GappedFrac),
		})
	}
	return rows, tbl
}

// Fig16Result traces the write-then-scan phase experiment.
type Fig16Result struct {
	Series      map[TreeVariant][]seriesPoint // both phases concatenated
	Expansions  int64
	Compactions int64
}

// RunFig16 reproduces Figure 16: write-dominated W5.1 followed by
// scan-dominated W5.2 on the OSM dataset.
func RunFig16(sc Scale) (*Fig16Result, Table) {
	res := &Fig16Result{Series: map[TreeVariant][]seriesPoint{}}
	variants := []TreeVariant{VariantAHI, VariantSuccinct, VariantPacked, VariantGapped}
	tbl := Table{
		Title:  "Figure 16: W5.1 (writes) then W5.2 (scans) on OSM",
		Header: []string{"variant", "W5.1 ns", "W5.2 ns", "size after W5.1", "size after W5.2"},
	}
	for _, v := range variants {
		keys := dataset.OSM(sc.OSMKeys, 1)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i)
		}
		ix := buildVariant(sc, v, keys, vals, adaptiveBudget(keys, vals, 4), nil, 0)
		g1 := workload.NewGenerator(workload.W51, len(keys), 31)
		r1 := runOps(ix, g1, keys, sc.OpsPerPhase/2, sc.Interval)
		size1 := ix.Bytes()
		g2 := workload.NewGenerator(workload.W52, len(keys), 33)
		r2 := runOps(ix, g2, keys, sc.OpsPerPhase/2, sc.Interval)
		res.Series[v] = append(append([]seriesPoint{}, r1.Series...), r2.Series...)
		if v == VariantAHI {
			a := ix.(sessionIndex).a
			res.Expansions = a.Tree.Expansions()
			res.Compactions = a.Tree.Compactions()
		}
		tbl.Rows = append(tbl.Rows, []string{
			string(v), f1(r1.MeanNs), f1(r2.MeanNs),
			stats.HumanBytes(size1), stats.HumanBytes(ix.Bytes()),
		})
	}
	tbl.Rows = append(tbl.Rows, []string{
		"(AHI migrations)", fmt.Sprintf("expand=%d", res.Expansions),
		fmt.Sprintf("compact=%d", res.Compactions), "", "",
	})
	return res, tbl
}

// Fig17Row is one index point of the Dual-Stage comparison.
type Fig17Row struct {
	Index     string
	Workload  string
	LatencyNs float64
	Bytes     int64
}

// RunFig17 reproduces Figure 17: AHI-BTree vs. the Dual-Stage baselines
// (packed and succinct static stages) plus the static trees, on W2 and W4
// over consecutive keys.
func RunFig17(sc Scale) ([]Fig17Row, Table) {
	keys := dataset.ConsecutiveU64(sc.ConsecU64, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 2
	var rows []Fig17Row
	for _, wname := range []string{"W2", "W4"} {
		spec := workload.Specs[wname]
		run := func(name string, ix kvIndex) {
			gen := workload.NewGenerator(spec, len(keys), 3)
			r := runOps(ix, gen, keys, ops, 0)
			rows = append(rows, Fig17Row{Index: name, Workload: wname, LatencyNs: r.MeanNs, Bytes: ix.Bytes()})
		}
		run("AHI-BTree", buildVariant(sc, VariantAHI, keys, vals, budget, nil, 0))
		run("Succinct", buildVariant(sc, VariantSuccinct, keys, vals, 0, nil, 0))
		run("Packed", buildVariant(sc, VariantPacked, keys, vals, 0, nil, 0))
		run("Gapped", buildVariant(sc, VariantGapped, keys, vals, 0, nil, 0))
		run("DualStage-Packed", dsIndex{dualstage.New(dualstage.Config{Static: dualstage.Packed}, keys, vals)})
		run("DualStage-Succinct", dsIndex{dualstage.New(dualstage.Config{Static: dualstage.Succinct}, keys, vals)})
	}
	tbl := Table{
		Title:  "Figure 17: AHI-BTree vs Dual-Stage",
		Header: []string{"workload", "index", "lat ns", "size"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Workload, r.Index, f1(r.LatencyNs), stats.HumanBytes(r.Bytes)})
	}
	return rows, tbl
}

// dsIndex adapts the Dual-Stage index.
type dsIndex struct{ ix *dualstage.Index }

func (d dsIndex) Lookup(k uint64) (uint64, bool) { return d.ix.Lookup(k) }
func (d dsIndex) Insert(k, v uint64) bool        { d.ix.Insert(k, v); return true }
func (d dsIndex) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return d.ix.Scan(from, n, fn)
}
func (d dsIndex) Bytes() int64 { return d.ix.Bytes() }
