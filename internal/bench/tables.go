package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ahi/internal/workload"
)

// RunTable3 renders the workload definitions of Table 3 from the
// declarative specs in internal/workload.
func RunTable3() Table {
	tbl := Table{
		Title:  "Table 3: workload definitions",
		Header: []string{"workload", "reads", "scans", "inserts", "scan len", "zipf a"},
	}
	order := []string{"W1.1", "W1.2", "W1.3", "W2", "W3", "W4", "W5.1", "W5.2", "W6.1", "W6.2"}
	distName := map[workload.DistKind]string{
		workload.DistUniform: "Uniform", workload.DistZipfian: "Zipfian",
		workload.DistNormal: "Normal", workload.DistLognormal: "Lognormal",
		workload.DistPrefixRandom: "prefix-rand.", workload.DistHotSet: "HotSet",
	}
	for _, name := range order {
		spec := workload.Specs[name]
		cell := map[workload.OpKind]string{}
		total := 0.0
		for _, m := range spec.Mix {
			total += m.Frac
		}
		for _, m := range spec.Mix {
			cell[m.Kind] = fmt.Sprintf("%.0f%% %s", 100*m.Frac/total, distName[m.Dist])
		}
		scanLen := ""
		if spec.ScanMax > 0 {
			scanLen = fmt.Sprintf("[%d,%d]", spec.ScanMin, spec.ScanMax)
		}
		zipf := ""
		if spec.ZipfAlpha > 0 {
			zipf = f1(spec.ZipfAlpha)
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, cell[workload.OpRead], cell[workload.OpScan], cell[workload.OpInsert], scanLen, zipf,
		})
	}
	return tbl
}

// Table4Row is one function's LoC accounting.
type Table4Row struct {
	Index    string
	Function string
	Logic    int
	Tracking int
}

// RunTable4 reproduces Table 4: lines of code of the lookup/insert paths
// split into index logic and workload-tracking hooks, counted from this
// repository's own sources (comments, blank lines, and brace-only lines
// excluded, as in the paper).
func RunTable4(repoRoot string) ([]Table4Row, Table, error) {
	type span struct {
		index, function, file, fn string
		trackMarkers              []string
	}
	spans := []span{
		{"B+-tree (plain)", "Lookup", "internal/btree/btree.go", "func (t *Tree) Lookup", nil},
		{"B+-tree (plain)", "Insert", "internal/btree/btree.go", "func (t *Tree) insertTracked", nil},
		{"AHI-BTree", "Lookup", "internal/btree/adaptive.go", "func (s *Session) Lookup", []string{"sampler", "Track"}},
		{"AHI-BTree", "Insert", "internal/btree/adaptive.go", "func (s *Session) Insert", []string{"sampler", "Track"}},
		{"ART", "Lookup", "internal/art/art.go", "func (t *Tree) Lookup", nil},
		{"FST", "Lookup", "internal/fst/fst.go", "func (f *FST) LookupFrom", nil},
		{"Hybrid Trie", "Lookup", "internal/hybridtrie/hybridtrie.go", "func (t *Trie) lookup", []string{"visit"}},
		{"AHI-Trie", "Lookup", "internal/hybridtrie/adaptive.go", "func (s *Session) Lookup", []string{"sampler", "track"}},
	}
	var rows []Table4Row
	for _, sp := range spans {
		logic, tracking, err := countFunctionLoC(filepath.Join(repoRoot, sp.file), sp.fn, sp.trackMarkers)
		if err != nil {
			return nil, Table{}, fmt.Errorf("%s %s: %w", sp.index, sp.function, err)
		}
		rows = append(rows, Table4Row{Index: sp.index, Function: sp.function, Logic: logic, Tracking: tracking})
	}
	tbl := Table{
		Title:  "Table 4: lines of code of lookup/insert paths (logic vs tracking)",
		Header: []string{"index", "function", "logic LoC", "tracking LoC"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Index, r.Function, fmt.Sprint(r.Logic), fmt.Sprint(r.Tracking)})
	}
	return rows, tbl, nil
}

// countFunctionLoC counts the non-comment, non-blank, non-brace-only lines
// of the function starting at the given signature prefix; lines containing
// any tracking marker count as tracking instead of logic.
func countFunctionLoC(path, signature string, trackMarkers []string) (logic, tracking int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	inFn := false
	depth := 0
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if !inFn {
			if strings.HasPrefix(line, signature) {
				inFn = true
				depth = strings.Count(line, "{") - strings.Count(line, "}")
			}
			continue
		}
		depth += strings.Count(line, "{") - strings.Count(line, "}")
		if depth <= 0 {
			break
		}
		if trimmed == "" || trimmed == "{" || trimmed == "}" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		isTracking := false
		for _, m := range trackMarkers {
			if strings.Contains(trimmed, m) {
				isTracking = true
				break
			}
		}
		if isTracking {
			tracking++
		} else {
			logic++
		}
	}
	if !inFn {
		return 0, 0, fmt.Errorf("function %q not found in %s", signature, path)
	}
	return logic, tracking, sc.Err()
}
