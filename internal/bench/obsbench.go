package bench

import (
	"fmt"
	"io"

	"ahi/internal/btree"
	"ahi/internal/obs"
	"ahi/internal/shard"
	"ahi/internal/workload"
)

// RunTraced drives the observability layer end to end: a skewed lookup
// phase against an adaptive tree (source "btree", asynchronous
// migrations) followed by a batched phase against a small sharded
// front-end (sources "shard0".."shardN"), all recording into o — with
// the flight recorder on (1/8 sampling), so the dump carries op events
// for ahimon -explain-tail. The caller then serializes o.Dump() for
// ahimon --replay; the printed table summarizes what was captured.
func RunTraced(sc Scale, o *obs.Observability, w io.Writer) error {
	o.EnableTracing(obs.FlightConfig{SampleEvery: 8})
	n := sc.ConsecU64
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 16
		vals[i] = uint64(i)
	}
	initialSkip, minSkip, maxSkip, maxSample := sc.sampling()

	// Phase 1: single adaptive tree, skewed point lookups.
	a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct},
		RelativeBudget:  0.5,
		InitialSkip:     initialSkip,
		MinSkip:         minSkip,
		MaxSkip:         maxSkip,
		MaxSampleSize:   maxSample,
		AsyncMigrations: true,
		Obs:             o,
		ObsSource:       "btree",
	}, keys, vals)
	s := a.NewSession()
	z := workload.NewZipf(n, 1.1, 7)
	var sink uint64
	for i := 0; i < sc.OpsPerPhase/2; i++ {
		v, _ := s.Lookup(keys[z.Draw()])
		sink += v
	}
	a.DrainMigrations()
	a.Close()

	// Phase 2: sharded front-end, batched lookups — populates the
	// per-shard sources in the same registry.
	st := shard.BulkLoad(shard.Config{
		Shards: 2,
		Adaptive: btree.AdaptiveConfig{
			Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct},
			RelativeBudget:  0.5,
			InitialSkip:     initialSkip,
			MinSkip:         minSkip,
			MaxSkip:         maxSkip,
			MaxSampleSize:   maxSample,
			AsyncMigrations: true,
		},
		Obs: o,
	}, keys, vals)
	const batch = 512
	bk := make([]uint64, batch)
	bv := make([]uint64, batch)
	bf := make([]bool, batch)
	for done := 0; done < sc.OpsPerPhase/2; done += batch {
		for j := range bk {
			bk[j] = keys[z.Draw()]
		}
		st.LookupBatch(bk, bv, bf)
	}
	st.DrainMigrations()
	st.Close()
	_ = sink

	d := o.Dump()
	t := Table{
		Title:  "observability capture: migration trace + epoch snapshots",
		Header: []string{"what", "count"},
		Rows: [][]string{
			{"trace events retained", fmt.Sprint(len(d.Trace))},
			{"trace events total", fmt.Sprint(d.TraceTotal)},
			{"epoch snapshots retained", fmt.Sprint(len(d.Snapshots))},
			{"op events retained", fmt.Sprint(len(d.Ops))},
			{"op events recorded", fmt.Sprint(d.OpsTotal)},
			{"metric series", fmt.Sprint(len(d.Metrics))},
		},
	}
	t.Render(w)
	return d.Validate()
}
