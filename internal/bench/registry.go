package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale, w io.Writer) error
}

// Registry lists every experiment by id ("fig12", "tbl1", ...). With csv
// set, tables render as CSV (series sparklines are suppressed).
func Registry(repoRoot string, csv bool) map[string]Experiment {
	render := func(t Table, w io.Writer) {
		if csv {
			t.RenderCSV(w)
			return
		}
		t.Render(w)
	}
	wrap := func(id, title string, f func(Scale) Table) Experiment {
		return Experiment{ID: id, Title: title, Run: func(sc Scale, w io.Writer) error {
			render(f(sc), w)
			return nil
		}}
	}
	reg := map[string]Experiment{}
	add := func(e Experiment) { reg[e.ID] = e }

	add(wrap("fig2", "Eq.(1) sample sizes & top-k precision", func(sc Scale) Table { _, t := RunFig2(sc); return t }))
	add(wrap("fig2x", "appendix: fig2 for other distributions", func(sc Scale) Table { _, t := RunFig2Appendix(sc); return t }))
	add(wrap("fig3", "storage-device leaf access latencies", func(sc Scale) Table { _, t := RunFig3(sc); return t }))
	add(wrap("fig5", "sampling overhead vs skip length", func(sc Scale) Table { _, t := RunFig5(sc); return t }))
	add(wrap("fig5x", "appendix: fig5 for other workloads", func(sc Scale) Table { _, t := RunFig5Appendix(sc); return t }))
	add(wrap("fig6", "classification cost & map size", func(sc Scale) Table { _, t := RunFig6(sc); return t }))
	add(wrap("tbl1", "leaf encodings", func(sc Scale) Table { _, t := RunTable1(sc); return t }))
	add(wrap("fig9", "migration cost matrix", func(sc Scale) Table { _, t := RunFig9(sc); return t }))
	add(wrap("tbl2", "trie encodings", func(sc Scale) Table { _, t := RunTable2(sc); return t }))
	add(Experiment{ID: "fig12", Title: "W1 phases on OSM", Run: func(sc Scale, w io.Writer) error {
		res, t := RunFig12(sc)
		render(t, w)
		if !csv {
			renderSeries(w, "AHI-BTree", res.Series)
			fmt.Fprintln(w)
		}
		return nil
	}})
	add(wrap("fig13", "cost function scatter", func(sc Scale) Table { _, t := RunFig13(sc); return t }))
	add(wrap("fig14", "skew sweep", func(sc Scale) Table { _, t := RunFig14(sc); return t }))
	add(wrap("fig15", "memory budget sweep", func(sc Scale) Table { _, t := RunFig15(sc); return t }))
	add(Experiment{ID: "fig16", Title: "write/scan phases", Run: func(sc Scale, w io.Writer) error {
		res, t := RunFig16(sc)
		render(t, w)
		if !csv {
			for _, v := range []TreeVariant{VariantAHI, VariantSuccinct, VariantGapped} {
				renderSeries(w, string(v), res.Series[v])
			}
			fmt.Fprintln(w)
		}
		return nil
	}})
	add(wrap("fig17", "dual-stage comparison", func(sc Scale) Table { _, t := RunFig17(sc); return t }))
	add(wrap("fig18", "GS vs TLS threads", func(sc Scale) Table { _, t := RunFig18(sc); return t }))
	add(wrap("fig19", "emails point & scan", func(sc Scale) Table { _, t := RunFig19(sc); return t }))
	add(Experiment{ID: "fig20", Title: "prefix-random phase shift", Run: func(sc Scale, w io.Writer) error {
		res, t := RunFig20(sc)
		render(t, w)
		if !csv {
			for _, name := range []string{"AHI-Trie", "ART", "FST", "Pre-Trained"} {
				renderSeries(w, name, res.Series[name])
			}
			fmt.Fprintf(w, "adaptations: %d (skip lengths: ", len(res.Adaptations))
			for i, ai := range res.Adaptations {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprint(w, ai.NewSkip)
			}
			fmt.Fprintln(w, ")")
			fmt.Fprintln(w)
		}
		return nil
	}})
	add(Experiment{ID: "tbl3", Title: "workload definitions", Run: func(sc Scale, w io.Writer) error {
		render(RunTable3(), w)
		return nil
	}})
	add(Experiment{ID: "tbl4", Title: "lines-of-code accounting", Run: func(sc Scale, w io.Writer) error {
		_, t, err := RunTable4(repoRoot)
		if err != nil {
			return err
		}
		render(t, w)
		return nil
	}})
	add(wrap("abl-bloom", "ablation: bloom filter", func(sc Scale) Table { _, t := RunAblationBloom(sc); return t }))
	add(wrap("abl-skip", "ablation: adaptive skip", func(sc Scale) Table { _, t := RunAblationAdaptiveSkip(sc); return t }))
	add(wrap("abl-eager", "ablation: eager expand", func(sc Scale) Table { _, t := RunAblationEagerExpand(sc); return t }))
	add(wrap("abl-history", "ablation: history byte", func(sc Scale) Table { _, t := RunAblationHistory(sc); return t }))
	add(wrap("abl-decentral", "ablation: centralized vs decentralized tracking", func(sc Scale) Table { _, t := RunAblationDecentralized(sc); return t }))
	add(wrap("micro", "microbenchmarks: rank/select, migration pipeline", func(sc Scale) Table { _, t := RunMicro(sc); return t }))
	add(wrap("ext-ycsb", "extension: YCSB core workloads A-F", func(sc Scale) Table { _, t := RunYCSB(sc); return t }))
	add(Experiment{ID: "serving", Title: "sharded batch serving layer", Run: func(sc Scale, w io.Writer) error {
		res, t := RunServing(sc)
		render(t, w)
		if !csv {
			fmt.Fprintf(w, "pipeline: queued=%d inline_fallbacks=%d backpressured=%d coalesced=%d steals=%d max_depth=%d last_drain=%.1fus\n\n",
				res.Queued, res.InlineFallbacks, res.Backpressured, res.Coalesced, res.Steals, res.MaxPipeDepth, res.LastDrainUs)
		}
		return nil
	}})
	add(Experiment{ID: "scaling", Title: "multi-core scaling sweep (procs x shards x clients)", Run: func(sc Scale, w io.Writer) error {
		res, t := RunScaling(sc)
		render(t, w)
		if !csv {
			fmt.Fprintf(w, "pipeline: backpressured=%d steals=%d\n\n", res.Backpressured, res.Steals)
		}
		return nil
	}})
	add(Experiment{ID: "scan", Title: "fused range-scan serving (length x encoding x shards)", Run: func(sc Scale, w io.Writer) error {
		res, t := RunScan(sc)
		render(t, w)
		if !csv {
			fmt.Fprintf(w, "shards x scanners (len=256): ")
			for _, r := range res.Shard {
				fmt.Fprintf(w, "s%d/c%d=%.1f ", r.Shards, r.Scanners, r.Mps)
			}
			fmt.Fprintf(w, "Mpairs/s; YCSB-E-long mix %.1f Kops/s\n\n", res.MixKops)
		}
		return nil
	}})
	add(Experiment{ID: "cache", Title: "read-path cache & negative filters", Run: func(sc Scale, w io.Writer) error {
		res, t := RunCache(sc)
		render(t, w)
		if !csv {
			renderCacheReplay(w, res.ReplayRows)
			renderCacheMiss(w, res.MissRows)
			fmt.Fprintln(w)
		}
		return nil
	}})
	add(Experiment{ID: "obslat", Title: "per-op tracing overhead & tail attribution", Run: func(sc Scale, w io.Writer) error {
		res, t := RunObsLat(sc)
		render(t, w)
		if !csv {
			fmt.Fprintf(w, "flight recorder: %d events recorded (%d slow); tail attribution %.1f%% named",
				res.OpsRecorded, res.OpsSlow, 100*res.TailNamedFraction)
			if res.TopTailCause != "" {
				fmt.Fprintf(w, " — %s", res.TopTailCause)
			}
			fmt.Fprintln(w)
			fmt.Fprintln(w)
		}
		return nil
	}})
	add(wrap("ext-paging", "extension: paging under a DRAM ceiling", func(sc Scale) Table { _, t := RunPaging(sc); return t }))
	add(Experiment{ID: "durability", Title: "WAL fsync policies, group commit & recovery", Run: func(sc Scale, w io.Writer) error {
		res, t := RunDurability(sc)
		render(t, w)
		if !csv {
			renderDurDevices(w, res.Devices)
		}
		return nil
	}})
	return reg
}

// IDs returns all experiment ids in stable order.
func IDs(reg map[string]Experiment) []string {
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in order, writing to w.
func RunAll(reg map[string]Experiment, sc Scale, w io.Writer) error {
	for _, id := range IDs(reg) {
		fmt.Fprintf(w, "### %s — %s\n", id, reg[id].Title)
		if err := reg[id].Run(sc, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
