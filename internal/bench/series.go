package bench

import (
	"fmt"
	"io"
	"strings"
)

// sparkline renders values as a unicode mini-chart (min-max normalized).
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// renderSeries prints one labeled latency/size trace (the paper's
// over-time plots, Figures 12, 16 and 20).
func renderSeries(w io.Writer, label string, pts []seriesPoint) {
	if len(pts) == 0 {
		return
	}
	lat := make([]float64, len(pts))
	size := make([]float64, len(pts))
	minLat, maxLat := pts[0].MeanNs, pts[0].MeanNs
	for i, p := range pts {
		lat[i] = p.MeanNs
		size[i] = float64(p.Bytes)
		if p.MeanNs < minLat {
			minLat = p.MeanNs
		}
		if p.MeanNs > maxLat {
			maxLat = p.MeanNs
		}
	}
	fmt.Fprintf(w, "%-12s latency %s  [%.0f..%.0f ns]\n", label, sparkline(lat), minLat, maxLat)
	fmt.Fprintf(w, "%-12s size    %s  [%.2f..%.2f MB]\n", label,
		sparkline(size), size[0]/(1<<20), size[len(size)-1]/(1<<20))
}
