package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/shard"
	"ahi/internal/workload"
)

// The serving experiment measures the sharded batch front-end: how much
// throughput batching (interleaved traversal, leaf-run amortization,
// branchless leaf kernels) and key-range sharding (shallower per-shard
// trees, per-shard adaptation) buy over routed single-key operations.
// batch=1 at 1 shard is the single-op baseline every speedup is relative
// to. The sweep runs two YCSB-style read workloads: "skewed" (static
// Zipfian, the adaptive steady state) and "shifting" (a hot set that
// jumps to a new key range each phase, keeping the migration pipeline
// busy while serving).

// servingBatches and servingShards are the sweep axes.
var (
	servingBatches = []int{1, 8, 32, 128}
	servingShards  = []int{1, 4, 16}
)

// ServingRow is one (workload, shards, batch) cell of the sweep.
type ServingRow struct {
	Workload string
	Shards   int
	Batch    int
	MeanNs   float64
	MopsPerS float64
	// Speedup is relative to the same workload's batch=1/shards=1 cell.
	Speedup float64
}

// ServingResult carries the sweep plus the migration-pipeline pressure
// observed while serving (AdaptInfo's queue telemetry, aggregated over
// every adaptation phase of every shard).
type ServingResult struct {
	Rows []ServingRow
	// Queued counts migrations accepted into the asynchronous pipeline.
	// InlineFallbacks is kept for schema continuity and is always 0 now:
	// a full queue parks the trigger as backpressure instead of migrating
	// on the serve path.
	Queued          int64
	InlineFallbacks int64
	// Backpressured counts triggers parked as deferred intents because
	// the queue was full; Coalesced the repeat triggers folded into an
	// already-parked intent.
	Backpressured int64
	Coalesced     int64
	// Steals counts migrations executed by a non-home pool worker.
	Steals int64
	// MaxPipeDepth is the deepest queue observed at any phase end.
	MaxPipeDepth int
	// LastDrainUs is the slowest final DrainMigrations across shards.
	LastDrainUs float64
}

// servingWorkload generates per-phase access distributions.
type servingWorkload struct {
	name   string
	phases int
	dist   func(phase, n int) workload.Dist
}

// Serving workload seeds. Every sub-run (each warmup and each timed pass)
// re-seeds by calling wl.dist afresh, so all repetitions and batch sizes
// draw the identical key sequence — cells differ only in batching, never
// in workload noise. The seeds are recorded in BENCH_serving.json.
const (
	servingSkewedSeed       = 7  // static Zipfian draw sequence
	servingShiftingSeedBase = 31 // phase p draws with seed base+p
)

func servingWorkloads() []servingWorkload {
	return []servingWorkload{
		// Static Zipfian reads: hot keys cluster at the low end of the key
		// space, so sorted batches collapse onto few leaves.
		{name: "skewed", phases: 1, dist: func(_, n int) workload.Dist {
			return workload.NewZipf(n, 1.1, servingSkewedSeed)
		}},
		// A 5%-of-keyspace hot set serving 90% of reads, jumping to the
		// next quarter of the key space each phase — the adaptation
		// managers keep migrating behind the moving range.
		{name: "shifting", phases: 4, dist: func(p, n int) workload.Dist {
			return workload.NewHotSet(n, (p*n)/4, 0.05, 0.9, int64(servingShiftingSeedBase+p))
		}},
	}
}

// RunServing sweeps batch size x shard count over both workloads.
func RunServing(sc Scale) (ServingResult, Table) {
	keys := dataset.YCSBKeys(sc.ConsecU64, 5)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 4

	var res ServingResult
	for _, wl := range servingWorkloads() {
		var baseNs float64
		for _, shards := range servingShards {
			cells := servingSweep(sc, keys, vals, budget, shards, ops, wl, &res)
			for bi, batch := range servingBatches {
				meanNs := cells[bi]
				row := ServingRow{
					Workload: wl.name, Shards: shards, Batch: batch,
					MeanNs:   meanNs,
					MopsPerS: 1e3 / meanNs,
				}
				if shards == servingShards[0] && batch == servingBatches[0] {
					baseNs = meanNs
				}
				row.Speedup = baseNs / meanNs
				res.Rows = append(res.Rows, row)
			}
		}
	}

	tbl := Table{
		Title:  "Serving layer: batch size x shard count",
		Header: []string{"workload", "shards", "batch", "lat ns", "Mops/s", "speedup"},
	}
	for _, r := range res.Rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.Workload, fmt.Sprint(r.Shards), fmt.Sprint(r.Batch),
			f1(r.MeanNs), f2(r.MopsPerS), f2(r.Speedup) + "x",
		})
	}
	return res, tbl
}

// servingReps timed repetitions run per batch size; the fastest one is
// reported, which filters scheduler and frequency noise on shared boxes.
const servingReps = 3

// servingSweep builds one sharded tree for the (workload, shards) pair
// and times every batch size against it, returning mean ns/op per entry
// of servingBatches. A shared tree keeps the comparison fair: every
// batch size sees the identical index layout and adaptation state
// instead of a freshly converged rebuild. Before each timed repetition
// the phase-0 distribution is served untimed until the sampled counters
// and migration pipeline settle, so cells measure the adaptive steady
// state; the shifting workload still pays for migrations inside the
// timed region each time its hot set jumps to a new range.
func servingSweep(sc Scale, keys, vals []uint64, budget int64, shards, ops int, wl servingWorkload, res *ServingResult) []float64 {
	initial, minS, maxS, maxSample := sc.sampling()
	acfg := btree.AdaptiveConfig{
		Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct},
		MemoryBudget:    budget,
		InitialSkip:     initial,
		MinSkip:         minS,
		MaxSkip:         maxS,
		MaxSampleSize:   maxSample,
		AsyncMigrations: true,
		OnAdapt: func(info core.AdaptInfo) {
			res.Queued += int64(info.Queued)
			if info.PipeDepth > res.MaxPipeDepth {
				res.MaxPipeDepth = info.PipeDepth
			}
		},
	}
	workers := shards
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	s := shard.BulkLoad(shard.Config{Shards: shards, Workers: workers, Adaptive: acfg}, keys, vals)

	// Rep-major order: every batch size gets a pass after the tree has
	// fully settled, so no cell is systematically advantaged by running
	// later in the sweep.
	out := make([]float64, len(servingBatches))
	for rep := 0; rep < servingReps; rep++ {
		for bi, batch := range servingBatches {
			ns := servingPass(s, keys, batch, ops, wl)
			if out[bi] == 0 || ns < out[bi] {
				out[bi] = ns
			}
		}
	}

	s.DrainMigrations()
	for i := 0; i < s.Shards(); i++ {
		mgr := s.Shard(i).Mgr
		res.InlineFallbacks += mgr.InlineFallbacks()
		res.Backpressured += mgr.Backpressured()
		res.Coalesced += mgr.CoalescedTriggers()
		if us := float64(mgr.LastDrainNs()) / 1e3; us > res.LastDrainUs {
			res.LastDrainUs = us
		}
	}
	res.Steals += s.Steals()
	s.Close()
	// Level the field between sweeps: each builds and abandons a full
	// tree, so without a collection here later sweeps would be timed
	// under the accumulated garbage of earlier ones.
	runtime.GC()
	return out
}

// servingPass serves one warmup plus all workload phases at the given
// batch size and returns the timed mean ns/op. Draws are generated
// outside the timed region (mirroring runOps); batch=1 issues routed
// single-key lookups — the baseline's full per-op cost: route, shard
// mutex, session tracking, one root-to-leaf descent per key.
func servingPass(s *shard.ShardedBTree, keys []uint64, batch, ops int, wl servingWorkload) float64 {
	// Timing chunk: a multiple of the batch size, at least timedBatch ops,
	// so single-op and batched cells are timed at the same granularity.
	chunk := timedBatch
	if batch > chunk {
		chunk = batch
	}
	chunk -= chunk % batch
	buf := make([]uint64, chunk)
	qv := make([]uint64, batch)
	qf := make([]bool, batch)
	var sink uint64

	// Untimed warmup on the phase-0 distribution: every batch size starts
	// from the same converged state regardless of where the previous pass
	// left the hot set.
	{
		d := wl.dist(0, len(keys))
		wb := make([]uint64, batch)
		for done := 0; done < ops/2; done += batch {
			for i := range wb {
				wb[i] = keys[d.Draw()]
			}
			if batch == 1 {
				v, _ := s.Lookup(wb[0])
				sink += v
			} else {
				s.LookupBatch(wb, qv, qf)
				sink += qv[0]
			}
		}
		s.DrainMigrations()
	}

	var elapsed time.Duration
	total := 0
	perPhase := ops / wl.phases
	for p := 0; p < wl.phases; p++ {
		d := wl.dist(p, len(keys))
		for done := 0; done < perPhase; {
			c := chunk
			if rem := perPhase - done; rem < c {
				c = rem - rem%batch
				if c == 0 {
					c = batch // round the tail up to one whole batch
				}
			}
			for i := 0; i < c; i++ {
				buf[i] = keys[d.Draw()]
			}
			start := time.Now()
			if batch == 1 {
				for i := 0; i < c; i++ {
					v, _ := s.Lookup(buf[i])
					sink += v
				}
			} else {
				for off := 0; off < c; off += batch {
					s.LookupBatch(buf[off:off+batch], qv, qf)
					sink += qv[0]
				}
			}
			elapsed += time.Since(start)
			done += c
			total += c
		}
	}
	_ = sink
	return float64(elapsed.Nanoseconds()) / float64(total)
}

// RecordServing runs the sweep once, renders the table to w, and writes
// the metrics JSON (BENCH_serving.json format) to path.
func RecordServing(sc Scale, path string, w io.Writer) error {
	res, tbl := RunServing(sc)
	tbl.Render(w)
	fmt.Fprintf(w, "pipeline: queued=%d inline_fallbacks=%d backpressured=%d coalesced=%d steals=%d max_depth=%d last_drain=%.1fus\n",
		res.Queued, res.InlineFallbacks, res.Backpressured, res.Coalesced, res.Steals, res.MaxPipeDepth, res.LastDrainUs)
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Seeds    map[string]int64   `json:"seeds"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp serving -scale %s -record %s", sc.Name, path),
		Scale: fmt.Sprintf("%s (%d YCSB u64 keys, %d lookups per cell)",
			sc.Name, sc.ConsecU64, sc.OpsPerPhase/4),
		CPU:   cpuModel(),
		Procs: runtime.GOMAXPROCS(0),
		Seeds: map[string]int64{
			"skewed":        servingSkewedSeed,
			"shifting_base": servingShiftingSeedBase, // phase p uses base+p
		},
		Notes: "speedups are vs the batch=1/shards=1 cell of the same workload; " +
			"every sub-run re-seeds its distribution from the documented seeds, " +
			"so all cells replay identical key sequences; " +
			"on a single-core host shard counts > 1 cannot add aggregate throughput " +
			"(no parallel workers), so multi-shard rows measure routing overhead only",
		Metrics: map[string]float64{},
	}
	for _, r := range res.Rows {
		key := fmt.Sprintf("serving/%s/s%d_b%d", r.Workload, r.Shards, r.Batch)
		doc.Metrics[key+"_mops"] = round2(r.MopsPerS)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
	}
	doc.Metrics["pipeline/queued"] = float64(res.Queued)
	doc.Metrics["pipeline/inline_fallbacks"] = float64(res.InlineFallbacks)
	doc.Metrics["pipeline/backpressured"] = float64(res.Backpressured)
	doc.Metrics["pipeline/coalesced"] = float64(res.Coalesced)
	doc.Metrics["pipeline/steals"] = float64(res.Steals)
	doc.Metrics["pipeline/max_depth"] = float64(res.MaxPipeDepth)
	doc.Metrics["pipeline/last_drain_us"] = round2(res.LastDrainUs)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// cpuModel best-effort reads the CPU model for the metrics header.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
			}
		}
	}
	return runtime.GOARCH
}
