package bench

import (
	"ahi/internal/btree"
	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/storage"
	"ahi/internal/workload"
)

// PagingRow is one index variant under a DRAM ceiling.
type PagingRow struct {
	Index       string
	IndexBytes  int64
	ResidentPct float64
	// EffectiveNs = measured in-memory latency + simulated paging IO for
	// the non-resident fraction of leaf accesses.
	MeasuredNs  float64
	EffectiveNs float64
}

// RunPaging is an extension reproducing the paper's motivating argument
// end to end (§1, §3, Figure 3): give every index the same DRAM ceiling;
// the fraction of an index that exceeds it lives on NVMe, and uniformly
// distributed leaf accesses pay the device read for non-resident leaves.
// The compact and adaptive variants stay resident; the Gapped tree pages.
//
// The DRAM ceiling is set between the succinct and gapped footprints
// (1.5x succinct), the regime the paper's AWS-pricing argument targets.
func RunPaging(sc Scale) ([]PagingRow, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	succ := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals).Bytes()
	ceiling := succ + succ/2
	ops := sc.OpsPerPhase / 4
	nvmeRead := float64(storage.NVMeSSD.AccessTime(4096, false).Nanoseconds())

	var rows []PagingRow
	for _, v := range []TreeVariant{VariantAHI, VariantSuccinct, VariantPacked, VariantGapped} {
		ix := buildVariant(sc, v, keys, vals, ceiling, nil, 0)
		gen := workload.NewGenerator(workload.W11, len(keys), 9)
		r := runOps(ix, gen, keys, ops, 0)
		size := ix.Bytes()
		resident := 1.0
		if size > ceiling {
			resident = float64(ceiling) / float64(size)
		}
		// A uniformly chosen leaf misses DRAM with probability
		// (1 - resident); each miss pays one simulated NVMe read.
		missFrac := 1 - resident
		rows = append(rows, PagingRow{
			Index:       string(v),
			IndexBytes:  size,
			ResidentPct: 100 * resident,
			MeasuredNs:  r.MeanNs,
			EffectiveNs: r.MeanNs + missFrac*nvmeRead,
		})
	}
	tbl := Table{
		Title:  "Extension: paging under a DRAM ceiling (W1.1, ceiling = 1.5x succinct)",
		Header: []string{"index", "size", "resident %", "in-memory ns", "effective ns (with paging)"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.Index, stats.HumanBytes(r.IndexBytes), f1(r.ResidentPct), f1(r.MeasuredNs), f1(r.EffectiveNs),
		})
	}
	return rows, tbl
}
