package bench

import (
	"fmt"
	"sort"
	"time"

	"ahi/internal/art"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/fst"
	"ahi/internal/hybridtrie"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

// u64keys converts sorted uint64 keys into big-endian byte keys.
func u64keys(keys []uint64) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = dataset.KeyBytes(k)
	}
	return out
}

// byteIndex is the operation surface of the trie experiments.
type byteIndex interface {
	Lookup(key []byte) (uint64, bool)
	Scan(from []byte, n int, fn func(key []byte, val uint64) bool) int
	Bytes() int64
}

type artIndex struct{ t *art.Tree }

func (x artIndex) Lookup(k []byte) (uint64, bool) { return x.t.Lookup(k) }
func (x artIndex) Scan(from []byte, n int, fn func([]byte, uint64) bool) int {
	return x.t.Scan(from, n, fn)
}
func (x artIndex) Bytes() int64 { return x.t.Bytes() }

type fstIndex struct{ f *fst.FST }

func (x fstIndex) Lookup(k []byte) (uint64, bool) { return x.f.Lookup(k) }
func (x fstIndex) Scan(from []byte, n int, fn func([]byte, uint64) bool) int {
	it := fst.NewIterator(x.f)
	visited := 0
	for ok := it.Seek(from); ok && visited < n; ok = it.Next() {
		visited++
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return visited
}
func (x fstIndex) Bytes() int64 { return x.f.Bytes() }

type trieIndex struct{ t *hybridtrie.Trie }

func (x trieIndex) Lookup(k []byte) (uint64, bool) { return x.t.Lookup(k) }
func (x trieIndex) Scan(from []byte, n int, fn func([]byte, uint64) bool) int {
	return x.t.Scan(from, n, fn, nil)
}
func (x trieIndex) Bytes() int64 { return x.t.Bytes() }

type trieSessionIndex struct {
	s *hybridtrie.Session
	a *hybridtrie.Adaptive
}

func (x trieSessionIndex) Lookup(k []byte) (uint64, bool) { return x.s.Lookup(k) }
func (x trieSessionIndex) Scan(from []byte, n int, fn func([]byte, uint64) bool) int {
	return x.s.Scan(from, n, fn)
}
func (x trieSessionIndex) Bytes() int64 { return x.a.Trie.Bytes() }

// runByteOps drives a byte-keyed index with a workload generator.
func runByteOps(ix byteIndex, gen *workload.Generator, keys [][]byte, ops int, interval int64) runResult {
	var res runResult
	var curSum time.Duration
	var curN int64
	var sink uint64
	done := 0
	opBuf := make([]workload.Op, timedBatch)
	for done < ops {
		batch := timedBatch
		if rem := ops - done; rem < batch {
			batch = rem
		}
		gen.Fill(opBuf[:batch])
		start := time.Now()
		for _, op := range opBuf[:batch] {
			switch op.Kind {
			case workload.OpRead:
				v, _ := ix.Lookup(keys[op.Index])
				sink += v
			case workload.OpScan:
				ix.Scan(keys[op.Index], op.ScanLen, func(k []byte, v uint64) bool {
					sink += v
					return true
				})
			}
		}
		el := time.Since(start)
		done += batch
		res.Elapsed += el
		curSum += el
		curN += int64(batch)
		if interval > 0 && curN >= interval {
			res.Series = append(res.Series, seriesPoint{Ops: int64(done), MeanNs: float64(curSum.Nanoseconds()) / float64(curN), Bytes: ix.Bytes()})
			curSum, curN = 0, 0
		}
	}
	if interval > 0 && curN > 0 {
		res.Series = append(res.Series, seriesPoint{Ops: int64(done), MeanNs: float64(curSum.Nanoseconds()) / float64(curN), Bytes: ix.Bytes()})
	}
	res.Ops = int64(ops)
	res.MeanNs = float64(res.Elapsed.Nanoseconds()) / float64(ops)
	res.FinalBytes = ix.Bytes()
	_ = sink
	return res
}

// Table2Row is one trie variant of Table 2.
type Table2Row struct {
	Index     string
	Bytes     int64
	LatencyNs float64
	Height    int
}

// RunTable2 reproduces Table 2: ART vs. FST-dense vs. FST-sparse on the
// prefix-random dataset (user ids), point lookups.
func RunTable2(sc Scale) ([]Table2Row, Table) {
	keys := dataset.UserIDs(sc.UserIDs, 3)
	bk := u64keys(keys)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ops := sc.OpsPerPhase / 2
	spec := workload.W3
	var rows []Table2Row

	at := art.New()
	for i := range bk {
		at.Insert(bk[i], vals[i])
	}
	fd := fst.New(fst.Config{DenseLevels: 64}, bk, vals)
	fs := fst.New(fst.Config{DenseLevels: 0}, bk, vals)

	for _, e := range []struct {
		name   string
		ix     byteIndex
		height int
	}{
		{"ART", artIndex{at}, 8},
		{"FST-dense", fstIndex{fd}, fd.Height()},
		{"FST-sparse", fstIndex{fs}, fs.Height()},
	} {
		gen := workload.NewGenerator(spec, len(keys), 7)
		r := runByteOps(e.ix, gen, bk, ops, 0)
		rows = append(rows, Table2Row{Index: e.name, Bytes: e.ix.Bytes(), LatencyNs: r.MeanNs, Height: e.height})
	}
	tbl := Table{
		Title:  "Table 2: trie encodings on prefix-random user ids",
		Header: []string{"index", "size", "lookup ns", "height"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Index, stats.HumanBytes(r.Bytes), f1(r.LatencyNs), fmt.Sprint(r.Height)})
	}
	return rows, tbl
}

// Fig19Row is one index point of the email experiment.
type Fig19Row struct {
	Index     string
	Workload  string // point (W6.1) or scan (W6.2)
	LatencyNs float64
	Bytes     int64
}

// RunFig19 reproduces Figure 19: point lookups (W6.1) and scans (W6.2)
// over unique email addresses for ART, FST, AHI-Trie, and the pre-trained
// Hybrid Trie.
func RunFig19(sc Scale) ([]Fig19Row, Table) {
	emails := dataset.Emails(sc.Emails, 5)
	bk := make([][]byte, len(emails))
	for i, e := range emails {
		bk[i] = append([]byte(e), 0)
	}
	vals := make([]uint64, len(bk))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ops := sc.OpsPerPhase / 4
	const cArt = 9 // the paper: ART stores the upper 9 levels for emails
	var rows []Fig19Row

	for _, wl := range []struct {
		name string
		spec workload.Spec
	}{
		{"point (W6.1)", workload.W61},
		{"scan (W6.2)", workload.W62},
	} {
		at := art.New()
		for i := range bk {
			at.Insert(bk[i], vals[i])
		}
		f := fst.New(fst.AutoDense(), bk, vals)
		initial, minS, maxS, maxSample := sc.sampling()
		adaptive := hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
			Trie:          hybridtrie.Config{CArt: cArt, FST: fst.AutoDense()},
			InitialSkip:   initial,
			MinSkip:       minS,
			MaxSkip:       maxS,
			MaxSampleSize: maxSample,
		}, bk, vals)
		trained := hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
			Trie: hybridtrie.Config{CArt: cArt, FST: fst.AutoDense()},
		}, bk, vals)
		{
			gen := workload.NewGenerator(wl.spec, len(bk), 21)
			freq := make([]uint64, len(bk))
			for i := 0; i < ops/4; i++ {
				freq[gen.Next().Index]++
			}
			trained.Train(bk, freq)
		}
		for _, e := range []struct {
			name string
			ix   byteIndex
		}{
			{"ART", artIndex{at}},
			{"FST", fstIndex{f}},
			{"AHI-Trie", trieSessionIndex{adaptive.NewSession(), adaptive}},
			{"Pre-Trained", trieIndex{trained.Trie}},
		} {
			gen := workload.NewGenerator(wl.spec, len(bk), 9)
			r := runByteOps(e.ix, gen, bk, ops, 0)
			rows = append(rows, Fig19Row{Index: e.name, Workload: wl.name, LatencyNs: r.MeanNs, Bytes: e.ix.Bytes()})
		}
	}
	tbl := Table{
		Title:  "Figure 19: point & scan on email addresses",
		Header: []string{"workload", "index", "lat ns", "size"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Workload, r.Index, f1(r.LatencyNs), stats.HumanBytes(r.Bytes)})
	}
	return rows, tbl
}

// Fig20Result traces the prefix-random phase-shift experiment.
type Fig20Result struct {
	Series      map[string][]seriesPoint
	Adaptations []core.AdaptInfo
	Expansions  int64
	Compactions int64
}

// RunFig20 reproduces Figure 20: the dbbench prefix-random workload (W3)
// over user ids, two phases with disjoint hot prefix ranges, for the
// adaptive and pre-trained Hybrid Trie, ART and FST.
func RunFig20(sc Scale) (*Fig20Result, Table) {
	keys := dataset.UserIDs(sc.UserIDs, 13)
	bk := u64keys(keys)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	const cArt = 2
	res := &Fig20Result{Series: map[string][]seriesPoint{}}
	tbl := Table{
		Title:  "Figure 20: prefix-random (W3) phase shift on user ids",
		Header: []string{"index", "phase-1 ns", "phase-2 ns", "final size", "expansions", "compactions"},
	}

	runPhases := func(name string, ix byteIndex, setPhase func(int)) (p1, p2 float64) {
		gen := workload.NewGenerator(workload.W3, len(bk), 41)
		gen.SetPhase(0)
		if setPhase != nil {
			setPhase(0)
		}
		r1 := runByteOps(ix, gen, bk, sc.OpsPerPhase/2, sc.Interval)
		gen.SetPhase(1)
		r2 := runByteOps(ix, gen, bk, sc.OpsPerPhase/2, sc.Interval)
		res.Series[name] = append(append([]seriesPoint{}, r1.Series...), r2.Series...)
		return r1.MeanNs, r2.MeanNs
	}

	// ART baseline.
	at := art.New()
	for i := range bk {
		at.Insert(bk[i], vals[i])
	}
	p1, p2 := runPhases("ART", artIndex{at}, nil)
	tbl.Rows = append(tbl.Rows, []string{"ART", f1(p1), f1(p2), stats.HumanBytes(at.Bytes()), "", ""})

	// FST baseline.
	f := fst.New(fst.AutoDense(), bk, vals)
	p1, p2 = runPhases("FST", fstIndex{f}, nil)
	tbl.Rows = append(tbl.Rows, []string{"FST", f1(p1), f1(p2), stats.HumanBytes(f.Bytes()), "", ""})

	// Adaptive Hybrid Trie with adaptation trace.
	initial, minS, maxS, maxSample := sc.sampling()
	a := hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
		Trie:          hybridtrie.Config{CArt: cArt, FST: fst.AutoDense()},
		InitialSkip:   initial,
		MinSkip:       minS,
		MaxSkip:       maxS,
		MaxSampleSize: maxSample,
		OnAdapt:       func(ai core.AdaptInfo) { res.Adaptations = append(res.Adaptations, ai) },
	}, bk, vals)
	p1, p2 = runPhases("AHI-Trie", trieSessionIndex{a.NewSession(), a}, nil)
	res.Expansions = a.Trie.Expansions()
	res.Compactions = a.Trie.Compactions()
	tbl.Rows = append(tbl.Rows, []string{"AHI-Trie", f1(p1), f1(p2),
		stats.HumanBytes(a.Trie.Bytes()), fmt.Sprint(res.Expansions), fmt.Sprint(res.Compactions)})

	// Pre-trained on phase 1 (static thereafter).
	trained := hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
		Trie: hybridtrie.Config{CArt: cArt, FST: fst.AutoDense()},
	}, bk, vals)
	{
		gen := workload.NewGenerator(workload.W3, len(bk), 41)
		gen.SetPhase(0)
		freq := make([]uint64, len(bk))
		for i := 0; i < sc.OpsPerPhase/8; i++ {
			freq[gen.Next().Index]++
		}
		trained.Train(bk, freq)
	}
	p1, p2 = runPhases("Pre-Trained", trieIndex{trained.Trie}, nil)
	tbl.Rows = append(tbl.Rows, []string{"Pre-Trained", f1(p1), f1(p2), stats.HumanBytes(trained.Trie.Bytes()), "", ""})

	sort.Slice(tbl.Rows, func(i, j int) bool { return tbl.Rows[i][0] < tbl.Rows[j][0] })
	return res, tbl
}
