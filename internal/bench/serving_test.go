package bench

import "testing"

// TestServingShape runs the full batch x shard sweep at micro scale and
// checks structure plus the batching win. Matched by the CI smoke job
// (go test -run Serving).
func TestServingShape(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 32_000
	res, tbl := RunServing(sc)

	want := 2 * len(servingShards) * len(servingBatches)
	if len(res.Rows) != want || len(tbl.Rows) != want {
		t.Fatalf("rows=%d want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r.MeanNs <= 0 || r.MopsPerS <= 0 || r.Speedup <= 0 {
			t.Fatalf("empty cell: %+v", r)
		}
		if r.Shards == servingShards[0] && r.Batch == servingBatches[0] && r.Speedup != 1 {
			t.Fatalf("baseline cell speedup %v != 1: %+v", r.Speedup, r)
		}
	}
	// The shifting workload must exercise the async migration pipeline.
	if res.Queued == 0 {
		t.Fatal("no migrations queued: async pipeline unused")
	}

	// Timing is informational only at this scale: a 100k-key tree is
	// fully cache-resident and 32k ops is far below thermal/scheduler
	// noise, so asserting speedup thresholds here is roulette. The real
	// ratios are measured by the recorded sweep (BENCH_serving.json).
	cell := func(wl string, shards, batch int) ServingRow {
		for _, r := range res.Rows {
			if r.Workload == wl && r.Shards == shards && r.Batch == batch {
				return r
			}
		}
		t.Fatalf("missing cell %s/s%d/b%d", wl, shards, batch)
		return ServingRow{}
	}
	t.Logf("skewed s1 b128 speedup %.2f, s4 b128 speedup %.2f",
		cell("skewed", 1, 128).Speedup, cell("skewed", 4, 128).Speedup)
}
