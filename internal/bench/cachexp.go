package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ahi/internal/btree"
	"ahi/internal/dataset"
	"ahi/internal/workload"
)

// The cache experiment measures the read-path additions: the per-tree
// hot-key result cache (probed before the tree walk, charged against the
// memory budget) and the per-cold-leaf negative-lookup Bloom filters.
//
// Part 1 — hit path: Zipf skew x cache fraction sweep over a 95/5
// read/overwrite mix through sessions, in two operation modes: single-key
// (Lookup/Insert per op — the point-query path, where every uncached hot
// key pays a full root-to-leaf descent and cold-leaf decode) and batched
// (LookupBatch/InsertBatch at 128, where the AMAC kernel already collapses
// duplicate hot keys onto shared leaf runs, so the cache's headroom is
// structurally smaller). The fraction=0 column of each (skew, mode) is the
// baseline; the cache columns trade that slice of the SAME memory budget
// for cached results, so speedups are iso-memory.
//
// Part 2 — miss path: load the even-indexed half of the key space into a
// fixed all-Succinct tree and query only absent keys, filters off vs on.

// cacheSkews, cacheFractions and cacheOpBatches are the sweep axes;
// batch=1 issues per-key Lookup/Insert, batch>1 the batched session ops.
var (
	cacheSkews     = []float64{0.8, 0.99, 1.2}
	cacheFractions = []float64{0, 0.05, 0.10}
	cacheOpBatches = []int{1, cacheBatchSize}
)

// Cache experiment seeds; every sub-run re-seeds its distribution so all
// cells replay identical key sequences. Recorded in BENCH_cache.json.
const (
	cacheSweepSeed  = 11 // Zipf draw sequence, hit-path sweep
	cacheMissSeed   = 13 // uniform draw sequence, miss-path part
	cacheInsertSeed = 17 // overwrite-key draw sequence
)

// cacheBatchSize is the session batch size; cacheInsertEvery makes one
// batch in twenty an overwrite batch (the 95/5 mix).
const (
	cacheBatchSize   = 128
	cacheInsertEvery = 20
	cacheNegBits     = 6
)

// Sampling knobs for the cache cells: the paper-default skip band
// [50, 500] rather than the aggressive skips the adaptation experiments
// use. Sampled lookups bypass the cache by design (the adaptation signal
// must not see hit filtering), so a skip of 4 would take a quarter of all
// traffic away from the cache — no serving deployment samples that hard.
// MaxSampleSize keeps phases completing at these skips.
const (
	cacheSkip      = 50
	cacheMaxSkip   = 500
	cacheMaxSample = 2048
)

// CacheRow is one (skew, batch, fraction) cell of the hit-path sweep.
// MeanNs/MopsPerS/Speedup cover the LOOKUPS of the mix: the 5% overwrites
// run interleaved (they keep invalidation pressure on the cache and the
// migration pipeline busy) but are timed separately as WriteNs — an
// overwrite into a Succinct leaf re-encodes the whole leaf, and folding
// that into the lookup number would drown the read path under write cost
// common to both columns.
type CacheRow struct {
	Skew     float64
	Batch    int
	Fraction float64
	MeanNs   float64
	MopsPerS float64
	// Speedup is relative to the fraction=0 cell of the same skew and
	// batch mode.
	Speedup float64
	// WriteNs is the mean cost of the overwrite ops of the mix.
	WriteNs float64
	// HitRate is cache hits / (hits + misses) over the timed passes.
	HitRate float64
	// CacheBytes is the cache's budget charge; BudgetShare = CacheBytes
	// over the configured memory budget.
	CacheBytes  int64
	BudgetShare float64
}

// CacheReplayRow is one (fraction, batch) cell of the working-set replay
// part: pure Zipf(0.99) lookups over a pre-drawn, cycled query pool — the
// converged regime where the working set has materialized and repeats, as
// request traffic against a serving index does. This is the configuration
// the CI gate benchmarks (BenchmarkSessionLookup*/BenchmarkLookupBatch*)
// run, and where the headline cache speedup lives; the sweep above keeps
// drawing fresh tail keys forever, which is the harsher, churn-heavy view.
type CacheReplayRow struct {
	Batch    int
	Fraction float64
	MeanNs   float64
	MopsPerS float64
	Speedup  float64
	HitRate  float64
}

// CacheMissRow is one filters-off/on cell of the miss-path part.
type CacheMissRow struct {
	Filters  bool
	MeanNs   float64
	Speedup  float64
	NegHits  int64
	IndexMiB float64
}

// CacheResult carries all three parts.
type CacheResult struct {
	Rows       []CacheRow
	ReplayRows []CacheReplayRow
	MissRows   []CacheMissRow
}

// cacheReps timed repetitions per cell; the fastest is reported.
const cacheReps = 3

// RunCache sweeps skew x cache fraction and runs the miss-path part.
func RunCache(sc Scale) (CacheResult, Table) {
	keys := dataset.YCSBKeys(sc.ConsecU64, 5)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	// Tight budget — just above the all-Succinct floor. This is the regime
	// the cache is built for: under memory pressure most leaves stay in
	// the compressed encoding and every uncached hot lookup pays the
	// decode. With a roomy budget the adaptation manager expands the hot
	// leaves itself and a result cache has much less to add.
	budget := adaptiveBudget(keys, vals, 16)
	ops := sc.OpsPerPhase / 4

	var res CacheResult
	for _, skew := range cacheSkews {
		for _, batch := range cacheOpBatches {
			var baseNs float64
			for _, frac := range cacheFractions {
				row := cacheCell(keys, vals, budget, skew, frac, batch, ops)
				if frac == cacheFractions[0] {
					baseNs = row.MeanNs
				}
				row.Speedup = baseNs / row.MeanNs
				res.Rows = append(res.Rows, row)
			}
		}
	}
	res.ReplayRows = cacheReplayPart(keys, vals, budget, ops)
	res.MissRows = cacheMissPart(sc, keys, vals, ops)

	tbl := Table{
		Title:  "Read-path cache: Zipf skew x op mode x cache fraction (95/5 mix, iso-memory)",
		Header: []string{"skew", "batch", "frac", "look ns", "Mops/s", "speedup", "write ns", "hit%", "cache", "of budget"},
	}
	for _, r := range res.Rows {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", r.Skew), fmt.Sprint(r.Batch),
			fmt.Sprintf("%.0f%%", 100*r.Fraction),
			f1(r.MeanNs), f2(r.MopsPerS), f2(r.Speedup) + "x",
			f1(r.WriteNs),
			fmt.Sprintf("%.1f", 100*r.HitRate),
			fmt.Sprintf("%.1fKiB", float64(r.CacheBytes)/1024),
			fmt.Sprintf("%.1f%%", 100*r.BudgetShare),
		})
	}
	return res, tbl
}

// cacheTree builds the adaptive tree every hit-path cell runs against.
func cacheTree(keys, vals []uint64, budget int64, frac float64) *btree.Adaptive {
	return btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct, NegFilterBits: cacheNegBits},
		MemoryBudget:  budget,
		InitialSkip:   cacheSkip,
		MinSkip:       cacheSkip,
		MaxSkip:       cacheMaxSkip,
		MaxSampleSize: cacheMaxSample,
		CacheFraction: frac,
	}, keys, vals)
}

// cacheCell builds one adaptive tree and times the 95/5 mix against it
// in the given op mode (batch=1: per-key Lookup/Insert, else batched).
func cacheCell(keys, vals []uint64, budget int64, skew, frac float64, batch, ops int) CacheRow {
	a := cacheTree(keys, vals, budget, frac)
	s := a.NewSession()

	qk := make([]uint64, cacheBatchSize)
	qv := make([]uint64, cacheBatchSize)
	qf := make([]bool, cacheBatchSize)
	ik := make([]uint64, cacheBatchSize)
	iv := make([]uint64, cacheBatchSize)
	ib := make([]bool, cacheBatchSize)
	var sink uint64

	// Untimed warmup at the same distribution: lets the sampler converge,
	// the hot leaves expand, and the cache fill before anything is timed.
	warm := workload.NewZipf(len(keys), skew, cacheSweepSeed)
	for done := 0; done < ops/2; done += cacheBatchSize {
		for i := range qk {
			qk[i] = keys[warm.Draw()]
		}
		s.LookupBatch(qk, qv, qf)
		sink += qv[0]
	}

	var best, bestWrite float64
	var hits, misses int64
	for rep := 0; rep < cacheReps; rep++ {
		// Re-seed per repetition: identical draw sequences for every cell.
		d := workload.NewZipf(len(keys), skew, cacheSweepSeed)
		ins := workload.NewZipf(len(keys), skew, cacheInsertSeed)
		before := a.CacheStats()
		var readNs, writeNs time.Duration
		reads, writes := 0, 0
		if batch == 1 {
			// Draws are generated per chunk outside the timed region and
			// ops timed chunk-wise: per-op timestamps would cost more than
			// a cache hit does. Each chunk runs its ~5% overwrites first
			// (timed as writes), then its lookups (timed as reads).
			const chunk = 1024
			ck := make([]uint64, chunk)
			for done := 0; done < ops; done += chunk {
				c := chunk
				if rem := ops - done; rem < c {
					c = rem
				}
				w := c / cacheInsertEvery
				for i := 0; i < w; i++ {
					ck[i] = keys[ins.Draw()]
				}
				start := time.Now()
				for i := 0; i < w; i++ {
					s.Insert(ck[i], uint64(done+i))
				}
				writeNs += time.Since(start)
				writes += w
				r := c - w
				for i := 0; i < r; i++ {
					ck[i] = keys[d.Draw()]
				}
				start = time.Now()
				for i := 0; i < r; i++ {
					v, _ := s.Lookup(ck[i])
					sink += v
				}
				readNs += time.Since(start)
				reads += r
			}
		} else {
			batches := 0
			for done := 0; done < ops; done += batch {
				batches++
				if batches%cacheInsertEvery == 0 {
					// Overwrite batch: new values for existing (hot-skewed)
					// keys, exercising invalidation against a warm cache.
					for i := range ik {
						ik[i] = keys[ins.Draw()]
						iv[i] = uint64(done + i)
					}
					start := time.Now()
					s.InsertBatch(ik, iv, ib)
					writeNs += time.Since(start)
					writes += batch
					continue
				}
				for i := range qk {
					qk[i] = keys[d.Draw()]
				}
				start := time.Now()
				s.LookupBatch(qk, qv, qf)
				readNs += time.Since(start)
				reads += batch
				sink += qv[0]
			}
		}
		after := a.CacheStats()
		hits += after.Hits - before.Hits
		misses += after.Misses - before.Misses
		ns := float64(readNs.Nanoseconds()) / float64(reads)
		if best == 0 || ns < best {
			best = ns
		}
		if writes > 0 {
			wns := float64(writeNs.Nanoseconds()) / float64(writes)
			if bestWrite == 0 || wns < bestWrite {
				bestWrite = wns
			}
		}
	}
	_ = sink

	row := CacheRow{
		Skew: skew, Batch: batch, Fraction: frac,
		MeanNs:     best,
		MopsPerS:   1e3 / best,
		WriteNs:    bestWrite,
		CacheBytes: a.CacheBytes(),
	}
	if tot := hits + misses; tot > 0 {
		row.HitRate = float64(hits) / float64(tot)
	}
	if budget > 0 {
		row.BudgetShare = float64(row.CacheBytes) / float64(budget)
	}
	a.Close()
	runtime.GC()
	return row
}

// cacheReplayPool is the number of pre-drawn Zipf(0.99) queries the
// replay part cycles through; a power of two so window offsets wrap with
// a mask. Large enough (256K draws) that the pool's own key diversity is
// the workload's, not an artifact of the pool size.
const cacheReplayPool = 1 << 18

// cacheReplayPart times pure lookups over a fixed, pre-drawn Zipf(0.99)
// query pool, cycled. Unlike the sweep no fresh tail keys are drawn inside
// the timed region: the working set has materialized and repeats, which is
// what converged request traffic against a serving index looks like and
// exactly what the CI gate benchmarks measure. The headline cache speedup
// lives here; the fresh-draw 95/5 sweep above is the harsher view.
func cacheReplayPart(keys, vals []uint64, budget int64, ops int) []CacheReplayRow {
	pool := make([]uint64, cacheReplayPool)
	d := workload.NewZipf(len(keys), 0.99, cacheSweepSeed)
	for i := range pool {
		pool[i] = keys[d.Draw()]
	}
	qv := make([]uint64, cacheBatchSize)
	qf := make([]bool, cacheBatchSize)
	var rows []CacheReplayRow
	base := map[int]float64{}
	for _, frac := range []float64{0, 0.10} {
		a := cacheTree(keys, vals, budget, frac)
		s := a.NewSession()
		// Warm: full batched passes over the pool fill the cache and let
		// the sampler converge before anything is timed.
		for pass := 0; pass < 2; pass++ {
			for off := 0; off+cacheBatchSize <= len(pool); off += cacheBatchSize {
				s.LookupBatch(pool[off:off+cacheBatchSize], qv, qf)
			}
		}
		for _, batch := range cacheOpBatches {
			before := a.CacheStats()
			var best float64
			var sink uint64
			for rep := 0; rep < cacheReps; rep++ {
				var elapsed time.Duration
				if batch == 1 {
					const chunk = 1024
					for done := 0; done < ops; done += chunk {
						c := chunk
						if rem := ops - done; rem < c {
							c = rem
						}
						off := done & (len(pool) - 1)
						start := time.Now()
						for i := off; i < off+c; i++ {
							v, _ := s.Lookup(pool[i])
							sink += v
						}
						elapsed += time.Since(start)
					}
				} else {
					start := time.Now()
					for done := 0; done < ops; done += batch {
						off := done & (len(pool) - 1)
						s.LookupBatch(pool[off:off+batch], qv, qf)
					}
					elapsed = time.Since(start)
				}
				ns := float64(elapsed.Nanoseconds()) / float64(ops)
				if best == 0 || ns < best {
					best = ns
				}
			}
			_ = sink
			after := a.CacheStats()
			row := CacheReplayRow{
				Batch: batch, Fraction: frac,
				MeanNs: best, MopsPerS: 1e3 / best,
			}
			if tot := (after.Hits - before.Hits) + (after.Misses - before.Misses); tot > 0 {
				row.HitRate = float64(after.Hits-before.Hits) / float64(tot)
			}
			if frac == 0 {
				base[batch] = best
			}
			row.Speedup = base[batch] / best
			rows = append(rows, row)
		}
		a.Close()
		runtime.GC()
	}
	return rows
}

func renderCacheReplay(w io.Writer, rows []CacheReplayRow) {
	tbl := Table{
		Title:  "Working-set replay: pure Zipf(0.99) lookups over a cycled 256K-draw pool",
		Header: []string{"batch", "frac", "lat ns", "Mops/s", "speedup", "hit%"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Batch), fmt.Sprintf("%.0f%%", 100*r.Fraction),
			f1(r.MeanNs), f2(r.MopsPerS), f2(r.Speedup) + "x",
			fmt.Sprintf("%.1f", 100*r.HitRate),
		})
	}
	tbl.Render(w)
}

// cacheMissPart loads every even-indexed key into a fixed all-Succinct
// tree and queries only odd-indexed (absent) keys, filters off vs on.
func cacheMissPart(sc Scale, keys, vals []uint64, ops int) []CacheMissRow {
	half := len(keys) / 2
	lk := make([]uint64, 0, half)
	lv := make([]uint64, 0, half)
	miss := make([]uint64, 0, half)
	for i := 0; i+1 < len(keys); i += 2 {
		lk = append(lk, keys[i])
		lv = append(lv, vals[i])
		miss = append(miss, keys[i+1])
	}

	qk := make([]uint64, cacheBatchSize)
	qv := make([]uint64, cacheBatchSize)
	qf := make([]bool, cacheBatchSize)
	var rows []CacheMissRow
	var baseNs float64
	for _, bits := range []int{0, cacheNegBits} {
		t := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct, NegFilterBits: bits}, lk, lv)
		var best float64
		for rep := 0; rep < cacheReps; rep++ {
			d := workload.NewUniform(len(miss), cacheMissSeed)
			var elapsed time.Duration
			for done := 0; done < ops; done += cacheBatchSize {
				for i := range qk {
					qk[i] = miss[d.Draw()]
				}
				start := time.Now()
				t.LookupBatch(qk, qv, qf)
				elapsed += time.Since(start)
			}
			ns := float64(elapsed.Nanoseconds()) / float64(ops)
			if best == 0 || ns < best {
				best = ns
			}
		}
		row := CacheMissRow{
			Filters:  bits > 0,
			MeanNs:   best,
			NegHits:  t.NegFilterHits(),
			IndexMiB: float64(t.Bytes()) / (1 << 20),
		}
		if bits == 0 {
			baseNs = best
		}
		row.Speedup = baseNs / best
		rows = append(rows, row)
		runtime.GC()
	}
	return rows
}

// RecordCache runs the experiment once, renders both tables to w, and
// writes the metrics JSON (BENCH_cache.json format) to path.
func RecordCache(sc Scale, path string, w io.Writer) error {
	res, tbl := RunCache(sc)
	tbl.Render(w)
	renderCacheReplay(w, res.ReplayRows)
	renderCacheMiss(w, res.MissRows)
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Seeds    map[string]int64   `json:"seeds"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp cache -scale %s -record %s", sc.Name, path),
		Scale: fmt.Sprintf("%s (%d YCSB u64 keys, %d ops per cell, batch %d)",
			sc.Name, sc.ConsecU64, sc.OpsPerPhase/4, cacheBatchSize),
		CPU:   cpuModel(),
		Procs: runtime.GOMAXPROCS(0),
		Seeds: map[string]int64{
			"sweep":  cacheSweepSeed,
			"miss":   cacheMissSeed,
			"insert": cacheInsertSeed,
		},
		Notes: "95/5 read/overwrite mix through one session; speedups are vs the " +
			"fraction=0 cell of the same skew and op mode under the SAME total " +
			"memory budget (cache bytes are charged against it); b1 rows are " +
			"per-key Lookup/Insert, b128 rows the batched ops, whose AMAC kernel " +
			"already collapses duplicate hot keys and so leaves the cache less " +
			"headroom; replay rows are pure lookups cycling a pre-drawn 256K " +
			"Zipf(0.99) pool (the converged serving regime the CI benchmarks " +
			"measure); miss rows query only absent keys against a fixed " +
			"all-Succinct tree; sampling runs at the paper-default skip band " +
			"[50,500]",
		Metrics: map[string]float64{},
	}
	for _, r := range res.Rows {
		key := fmt.Sprintf("cache/zipf%.2f/b%d/frac%.2f", r.Skew, r.Batch, r.Fraction)
		doc.Metrics[key+"_mops"] = round2(r.MopsPerS)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
		doc.Metrics[key+"_hit_rate"] = round2(r.HitRate)
		doc.Metrics[key+"_write_ns"] = round2(r.WriteNs)
		doc.Metrics[key+"_budget_share"] = round2(r.BudgetShare * 100)
	}
	for _, r := range res.ReplayRows {
		key := fmt.Sprintf("cache/replay/b%d/frac%.2f", r.Batch, r.Fraction)
		doc.Metrics[key+"_ns"] = round2(r.MeanNs)
		doc.Metrics[key+"_mops"] = round2(r.MopsPerS)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
		doc.Metrics[key+"_hit_rate"] = round2(r.HitRate)
	}
	for _, r := range res.MissRows {
		key := "cache/miss/filters_off"
		if r.Filters {
			key = "cache/miss/filters_on"
		}
		doc.Metrics[key+"_ns"] = round2(r.MeanNs)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
		doc.Metrics[key+"_neg_hits"] = float64(r.NegHits)
		doc.Metrics[key+"_index_mib"] = round2(r.IndexMiB)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func renderCacheMiss(w io.Writer, rows []CacheMissRow) {
	tbl := Table{
		Title:  "Negative lookups: per-leaf Bloom filters off vs on (all misses)",
		Header: []string{"filters", "lat ns", "speedup", "filter rejects", "index MiB"},
	}
	for _, r := range rows {
		on := "off"
		if r.Filters {
			on = "on"
		}
		tbl.Rows = append(tbl.Rows, []string{
			on, f1(r.MeanNs), f2(r.Speedup) + "x",
			fmt.Sprint(r.NegHits), fmt.Sprintf("%.2f", r.IndexMiB),
		})
	}
	tbl.Render(w)
}
