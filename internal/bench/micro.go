package bench

import (
	"fmt"
	"math/rand"
	"time"

	"ahi/internal/bitutil"
	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/workload"
)

// This file holds the building-block microbenchmarks behind the paper's
// macro numbers: rank/select probes on a large bit vector (every succinct
// lookup bottoms out in these), leaf re-encoding throughput (the cost each
// migration pays), and the foreground stall an adaptation phase imposes
// with and without the asynchronous migration pipeline.

// MicroRow is one measured microbenchmark metric.
type MicroRow struct {
	Metric string
	Value  float64
	Unit   string
}

// RunMicro executes all microbenchmarks at the given scale.
func RunMicro(sc Scale) ([]MicroRow, Table) {
	rows := rankSelectMicro()
	rows = append(rows, migrationMicro(sc)...)
	rows = append(rows, pipelineMicro(sc)...)
	t := Table{
		Title:  "microbenchmarks: rank/select, migration throughput, adaptation stall",
		Header: []string{"metric", "value", "unit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Metric, fmt.Sprintf("%.1f", r.Value), r.Unit})
	}
	return rows, t
}

// microBits sizes the benchmark bit vector; >= 1M bits so every probe
// walks the full directory hierarchy instead of staying in cache lines
// shared with the samples.
const microBits = 1 << 21

func rankSelectMicro() []MicroRow {
	rng := rand.New(rand.NewSource(1))
	var dense, sparse bitutil.Builder
	for i := 0; i < microBits; i++ {
		dense.Append(rng.Intn(2) == 0)
		sparse.Append(rng.Intn(50) == 0)
	}
	dv, sv := dense.Build(), sparse.Build()

	const probes = 1 << 20
	timed := func(f func(i int)) float64 {
		start := time.Now()
		for i := 0; i < probes; i++ {
			f(i)
		}
		return float64(time.Since(start).Nanoseconds()) / probes
	}
	// The multiplicative stride visits probe positions in cache-hostile
	// order, like real select-driven trie traversals do.
	pos := func(i, n int) int { return int(uint(i*2654435761) % uint(n)) }

	var sink int
	rows := []MicroRow{
		{"bitvector/rank1", timed(func(i int) { sink += dv.Rank1(pos(i, dv.Len())) }), "ns/op"},
		{"bitvector/select1", timed(func(i int) { sink += dv.Select1(1 + pos(i, dv.Ones())) }), "ns/op"},
		{"bitvector/select0", timed(func(i int) { sink += dv.Select0(1 + pos(i, dv.Zeros())) }), "ns/op"},
		{"bitvector/select1-sparse", timed(func(i int) { sink += sv.Select1(1 + pos(i, sv.Ones())) }), "ns/op"},
	}
	_ = sink
	return rows
}

// migrationMicro measures raw leaf re-encoding throughput: every leaf of a
// bulk-loaded tree migrates Succinct -> Gapped -> Succinct repeatedly.
func migrationMicro(sc Scale) []MicroRow {
	n := sc.ConsecU64
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 16
		vals[i] = uint64(i)
	}
	t := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncSuccinct}, keys, vals)
	var leaves []*btree.Leaf
	t.WalkLeaves(func(l *btree.Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	const rounds = 4
	migs := 0
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, l := range leaves {
			if t.MigrateLeaf(l, btree.EncGapped) {
				migs++
			}
		}
		for _, l := range leaves {
			if t.MigrateLeaf(l, btree.EncSuccinct) {
				migs++
			}
		}
	}
	el := time.Since(start)
	return []MicroRow{
		{"migration/leaf-reencode", float64(el.Nanoseconds()) / float64(migs), "ns/migration"},
		{"migration/throughput", float64(migs) / el.Seconds() / 1000, "k-migrations/s"},
	}
}

// pipelineMicro runs the same skewed lookup workload against an adaptive
// tree with inline and with asynchronous migrations, timing every
// operation individually. The ops that trip an adaptation phase (observed
// via OnAdapt, which fires inside the triggering op) are averaged
// separately: inline, such a lookup pays for every leaf re-encoding of
// the phase; with the pipeline it pays classification only.
func pipelineMicro(sc Scale) []MicroRow {
	n := sc.ConsecU64
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 16
		vals[i] = uint64(i)
	}
	initialSkip, minSkip, maxSkip, maxSample := sc.sampling()
	ops := sc.OpsPerPhase / 2

	run := func(async bool) (meanNs, adaptNs float64) {
		adaptHit := false
		a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
			Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct},
			RelativeBudget:  0.5,
			InitialSkip:     initialSkip,
			MinSkip:         minSkip,
			MaxSkip:         maxSkip,
			MaxSampleSize:   maxSample,
			AsyncMigrations: async,
			OnAdapt:         func(core.AdaptInfo) { adaptHit = true },
		}, keys, vals)
		defer a.Close()
		s := a.NewSession()
		z := workload.NewZipf(n, 1.1, 7)
		var sink uint64
		var total, adaptTotal time.Duration
		adaptOps := 0
		for i := 0; i < ops; i++ {
			k := keys[z.Draw()]
			start := time.Now()
			v, _ := s.Lookup(k)
			el := time.Since(start)
			sink += v
			total += el
			if adaptHit {
				adaptHit = false
				adaptTotal += el
				adaptOps++
			}
		}
		a.DrainMigrations()
		_ = sink
		if adaptOps == 0 {
			return float64(total.Nanoseconds()) / float64(ops), 0
		}
		return float64(total.Nanoseconds()) / float64(ops),
			float64(adaptTotal.Nanoseconds()) / float64(adaptOps)
	}

	syncMean, syncAdapt := run(false)
	asyncMean, asyncAdapt := run(true)
	return []MicroRow{
		{"adapt-stall/inline-mean", syncMean, "ns/op"},
		{"adapt-stall/inline-adapt-op", syncAdapt / 1000, "us"},
		{"adapt-stall/async-mean", asyncMean, "ns/op"},
		{"adapt-stall/async-adapt-op", asyncAdapt / 1000, "us"},
	}
}
