package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScalingShape runs the procs x shards x clients sweep at micro
// scale and checks the grid is complete and every cell non-empty.
// Matched by the CI smoke job (go test -run Scaling).
func TestScalingShape(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 32_000
	res, tbl := RunScaling(sc)

	want := len(scalingProcs) * len(scalingShards) * len(scalingClients)
	if len(res.Rows) != want || len(tbl.Rows) != want {
		t.Fatalf("rows=%d want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r.MopsPerS <= 0 || r.Speedup <= 0 {
			t.Fatalf("empty cell: %+v", r)
		}
		if r.Clients == scalingClients[0] && r.Speedup != 1 {
			t.Fatalf("clients=1 cell speedup %v != 1: %+v", r.Speedup, r)
		}
	}
	// Absolute speedup thresholds are not asserted: on a 1-core host the
	// client axis cannot add parallelism. The recorded sweep's notes
	// field carries the host context for BENCH_scaling.json consumers.
}

// TestRecordScalingSchema writes a real BENCH_scaling.json to a temp
// path and validates the schema CI depends on: the header fields, one
// _mops and one _speedup metric per sweep cell, and the pipeline
// telemetry keys.
func TestRecordScalingSchema(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 16_000
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := RecordScaling(sc, path, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_scaling.json is not valid JSON: %v", err)
	}
	if doc.Recorded == "" || doc.Command == "" || doc.CPU == "" || doc.Procs <= 0 {
		t.Fatalf("missing header fields: %+v", doc)
	}
	for _, procs := range scalingProcs {
		for _, shards := range scalingShards {
			for _, clients := range scalingClients {
				for _, suffix := range []string{"_mops", "_speedup"} {
					key := fmt.Sprintf("scaling/p%d_s%d_c%d%s", procs, shards, clients, suffix)
					v, ok := doc.Metrics[key]
					if !ok || v <= 0 {
						t.Fatalf("metric %s missing or non-positive (%v)", key, v)
					}
				}
			}
		}
	}
	for _, key := range []string{"pipeline/backpressured", "pipeline/coalesced", "pipeline/steals"} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Fatalf("telemetry metric %s missing", key)
		}
	}
}
