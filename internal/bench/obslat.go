package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ahi/internal/btree"
	"ahi/internal/obs"
	"ahi/internal/workload"
)

// obslat: the observability-overhead sweep. One Zipf(0.99) 90/10
// read/write workload runs against four identically built adaptive trees
// that differ only in instrumentation — no bundle at all, bundle attached
// with tracing off, and the flight recorder sampling 1/64 then 1/8 — so
// the deltas isolate what each layer costs. The traced run's dump then
// feeds the same tail attribution ahimon -explain-tail performs, and the
// result records how much of the >p999 tail carries a named cause.

// ObsLatRow is one instrumentation configuration's cost.
type ObsLatRow struct {
	Config      string
	NsOp        float64
	OverheadPct float64 // vs the no-obs row
}

// ObsLatResult is the sweep outcome plus the traced run's tail analysis.
type ObsLatResult struct {
	Rows []ObsLatRow
	// OpsRecorded / OpsSlow count the 1/64 run's committed events.
	OpsRecorded int64
	OpsSlow     int64
	// TailNamedFraction is the share of >p999 traced lookups attributed to
	// a non-unknown cause (the ISSUE's ≥90% acceptance bar).
	TailNamedFraction float64
	TopTailCause      string
	TailReports       []obs.TailReport
}

// obsLatZipf is the sweep's skew (the paper's standard hot-set shape).
const obsLatZipf = 0.99

func obsLatTree(sc Scale, o *obs.Observability) *btree.Adaptive {
	n := sc.ConsecU64
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 16
		vals[i] = uint64(i)
	}
	initialSkip, minSkip, maxSkip, maxSample := sc.sampling()
	return btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct, NegFilterBits: 6},
		RelativeBudget:  0.5,
		InitialSkip:     initialSkip,
		MinSkip:         minSkip,
		MaxSkip:         maxSkip,
		MaxSampleSize:   maxSample,
		AsyncMigrations: true,
		Obs:             o,
		ObsSource:       "btree",
	}, keys, vals)
}

// obsLatRun drives the mixed workload once and returns ns/op. Inserts
// land at odd offsets inside existing leaf ranges (keys are i*16), so
// writes stress leaf locks without endlessly growing the tree.
func obsLatRun(sc Scale, a *btree.Adaptive) float64 {
	s := a.NewSession()
	n := sc.ConsecU64
	z := workload.NewZipf(n, obsLatZipf, 7)
	ops := sc.OpsPerPhase
	// Pre-draw the access sequence; the timed loop measures index ops.
	seq := make([]uint64, ops)
	for i := range seq {
		seq[i] = uint64(z.Draw()) * 16
	}
	var sink uint64
	t0 := time.Now()
	for i, k := range seq {
		if i%10 == 9 {
			s.Insert(k+1+uint64(i%14), uint64(i))
		} else {
			v, _ := s.Lookup(k)
			sink += v
		}
	}
	elapsed := time.Since(t0)
	_ = sink
	a.DrainMigrations()
	a.Close()
	runtime.GC()
	return float64(elapsed.Nanoseconds()) / float64(len(seq))
}

// RunObsLat runs the instrumentation-overhead sweep.
func RunObsLat(sc Scale) (ObsLatResult, Table) {
	var res ObsLatResult

	configs := []struct {
		name        string
		sampleEvery int // -1 = no bundle, 0 = bundle without tracing
	}{
		{"no-obs", -1},
		{"obs-off", 0},
		{"traced-1/64", 64},
		{"traced-1/8", 8},
	}
	var tracedDump *obs.Dump
	for _, cfg := range configs {
		var o *obs.Observability
		if cfg.sampleEvery >= 0 {
			o = obs.New(0, 0)
			if cfg.sampleEvery > 0 {
				o.EnableTracing(obs.FlightConfig{SampleEvery: cfg.sampleEvery})
			}
		}
		a := obsLatTree(sc, o)
		nsOp := obsLatRun(sc, a)
		res.Rows = append(res.Rows, ObsLatRow{Config: cfg.name, NsOp: nsOp})
		if cfg.sampleEvery == 64 {
			d := o.Dump()
			tracedDump = &d
			res.OpsRecorded = d.OpsTotal
			for i := range d.Ops {
				if d.Ops[i].Slow {
					res.OpsSlow++
				}
			}
		}
	}
	base := res.Rows[0].NsOp
	for i := range res.Rows {
		res.Rows[i].OverheadPct = 100 * (res.Rows[i].NsOp - base) / base
	}

	if tracedDump != nil && len(tracedDump.Ops) > 0 {
		res.TailReports = obs.ExplainTail(tracedDump.Ops, 0.999)
		for _, rep := range res.TailReports {
			if rep.Kind != obs.OpLookup {
				continue
			}
			res.TailNamedFraction = rep.NamedFraction()
			if len(rep.Causes) > 0 {
				c := rep.Causes[0]
				res.TopTailCause = fmt.Sprintf("%.0f%% of >p%g lookups: %s",
					100*c.Fraction, rep.Quantile*100, c.Cause)
			}
		}
	}

	t := Table{
		Title:  "obslat: per-op tracing overhead (Zipf 0.99, 90/10 read/write)",
		Header: []string{"config", "ns/op", "overhead"},
	}
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			r.Config, fmt.Sprintf("%.1f", r.NsOp), fmt.Sprintf("%+.1f%%", r.OverheadPct),
		})
	}
	return res, t
}

// RecordObsLat runs the sweep once, renders the table to w, and writes
// the metrics JSON (BENCH_obs.json format) to path.
func RecordObsLat(sc Scale, path string, w io.Writer) error {
	res, tbl := RunObsLat(sc)
	tbl.Render(w)
	fmt.Fprintf(w, "flight recorder: %d events recorded (%d slow); tail attribution %.1f%% named",
		res.OpsRecorded, res.OpsSlow, 100*res.TailNamedFraction)
	if res.TopTailCause != "" {
		fmt.Fprintf(w, " — %s", res.TopTailCause)
	}
	fmt.Fprintln(w)
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp obslat -scale %s -record %s", sc.Name, path),
		Scale: fmt.Sprintf("%s (%d consecutive u64 keys, %d mixed ops per config)",
			sc.Name, sc.ConsecU64, sc.OpsPerPhase),
		CPU:   cpuModel(),
		Procs: runtime.GOMAXPROCS(0),
		Notes: "overhead is vs the no-obs row of the same in-process run; the CI gate " +
			"instead compares dedicated Go benchmarks (benchgate -ratio) for stability",
		Metrics: map[string]float64{},
	}
	for _, r := range res.Rows {
		key := "obslat/" + r.Config
		doc.Metrics[key+"_nsop"] = round2(r.NsOp)
		doc.Metrics[key+"_overhead_pct"] = round2(r.OverheadPct)
	}
	doc.Metrics["obslat/ops_recorded"] = float64(res.OpsRecorded)
	doc.Metrics["obslat/ops_slow"] = float64(res.OpsSlow)
	doc.Metrics["obslat/tail_named_fraction"] = round2(res.TailNamedFraction)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
