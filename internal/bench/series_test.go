package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("len=%d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("range mapping wrong: %q", s)
	}
	// Constant series: all minimum ticks, no division by zero.
	c := []rune(sparkline([]float64{5, 5, 5}))
	for _, r := range c {
		if r != '▁' {
			t.Fatalf("constant series: %q", string(c))
		}
	}
}

func TestRenderSeries(t *testing.T) {
	var buf bytes.Buffer
	renderSeries(&buf, "x", nil) // no-op
	if buf.Len() != 0 {
		t.Fatal("empty series produced output")
	}
	pts := []seriesPoint{{Ops: 10, MeanNs: 100, Bytes: 1 << 20}, {Ops: 20, MeanNs: 50, Bytes: 2 << 20}}
	renderSeries(&buf, "ahi", pts)
	out := buf.String()
	if !strings.Contains(out, "ahi") || !strings.Contains(out, "latency") || !strings.Contains(out, "size") {
		t.Fatalf("series output wrong:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,2", `say "hi"`}, {"3", "4"}},
	}
	var buf bytes.Buffer
	tbl.RenderCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"1,2"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "# T\n") {
		t.Fatalf("title comment missing:\n%s", out)
	}
}

func TestCSVRegistryMode(t *testing.T) {
	reg := Registry("../..", true)
	var buf bytes.Buffer
	if err := reg["tbl3"].Run(microScale, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload,reads,") {
		t.Fatalf("CSV output missing:\n%s", buf.String())
	}
}
