package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/shard"
	"ahi/internal/workload"
)

// The scan experiment measures the range-scan serving path end to end:
//
//  1. Kernel sweep — scan length x leaf encoding, three implementations
//     per cell: the element-wise keyAt/valAt reference (the pre-kernel
//     Scan), the bulk-decode callback Scan, and the fused ScanBatch (8
//     requests per batch over one walk). The headline metric is the
//     ScanBatch-vs-element-wise speedup on succinct leaves at length
//     >= 256, where the word-at-a-time unpack amortizes best.
//  2. Shard sweep — fused batches crossing shard boundaries, shards x
//     concurrent scanner goroutines, length fixed at 256.
//  3. Mix — the YCSB-E-long analogue (95% scans of 256..1024 keys, 5%
//     inserts, Zipfian starts) served through ScanBatch/InsertBatch on a
//     sharded adaptive tree with async migrations enabled.

// Scan sweep axes.
var (
	scanLens     = []int{16, 64, 256, 1024}
	scanEncs     = []core.Encoding{btree.EncSuccinct, btree.EncPacked, btree.EncGapped}
	scanShards   = []int{1, 4}
	scanScanners = []int{1, 2}
)

// scanBatchReqs is the fused batch width: 8 concurrent range requests per
// walk, matching the batch-lookup ring.
const scanBatchReqs = 8

// ScanKernelRow is one (encoding, length) cell of the kernel sweep.
type ScanKernelRow struct {
	Enc     string
	Len     int
	ElemMps float64 // element-wise reference, Mpairs/s
	BulkMps float64 // bulk-decode callback Scan
	FuseMps float64 // fused ScanBatch
	Speedup float64 // FuseMps / ElemMps
}

// ScanShardRow is one (shards, scanners) cell of the shard sweep.
type ScanShardRow struct {
	Shards   int
	Scanners int
	Mps      float64
}

// ScanResult is the full experiment output.
type ScanResult struct {
	Kernel []ScanKernelRow
	Shard  []ScanShardRow
	// MixKops is YCSB-E-long throughput in Kops/s (one op = one scan or
	// one insert).
	MixKops float64
	// RatioLen256 is the succinct len=256 ScanBatch/element-wise speedup —
	// the acceptance headline.
	RatioLen256 float64
}

func encName(e core.Encoding) string {
	switch e {
	case btree.EncSuccinct:
		return "succinct"
	case btree.EncPacked:
		return "packed"
	default:
		return "gapped"
	}
}

// scanPairsQuota returns how many pairs each cell delivers; scaled so the
// whole sweep stays proportional to the harness scale.
func scanPairsQuota(sc Scale) int {
	q := sc.OpsPerPhase * 4
	if q < 1<<20 {
		q = 1 << 20
	}
	return q
}

// RunScan runs all three parts and renders the kernel sweep as the table.
func RunScan(sc Scale) (ScanResult, Table) {
	keys := dataset.YCSBKeys(sc.ConsecU64, 5)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	quota := scanPairsQuota(sc)

	var res ScanResult
	for _, enc := range scanEncs {
		tr := btree.BulkLoad(btree.Config{DefaultEncoding: enc}, keys, vals)
		for _, ln := range scanLens {
			row := scanKernelCell(tr, keys, enc, ln, quota)
			if enc == btree.EncSuccinct && ln == 256 {
				res.RatioLen256 = row.Speedup
			}
			res.Kernel = append(res.Kernel, row)
		}
		runtime.GC()
	}
	for _, shards := range scanShards {
		for _, scanners := range scanScanners {
			res.Shard = append(res.Shard, scanShardCell(sc, keys, vals, shards, scanners, quota))
		}
	}
	res.MixKops = scanMixCell(sc, keys, vals)

	tbl := Table{
		Title:  "Range-scan serving: length x encoding, Mpairs/s",
		Header: []string{"encoding", "len", "elementwise", "bulk Scan", "ScanBatch", "speedup"},
	}
	for _, r := range res.Kernel {
		tbl.Rows = append(tbl.Rows, []string{
			r.Enc, fmt.Sprint(r.Len), f1(r.ElemMps), f1(r.BulkMps), f1(r.FuseMps), f2(r.Speedup) + "x",
		})
	}
	return res, tbl
}

// scanKernelCell times the three implementations over identical request
// streams: starts stride through the sorted key space so every rep touches
// different leaves (no single-leaf cache residency), each rep delivering
// scanBatchReqs*ln pairs.
func scanKernelCell(tr *btree.Tree, keys []uint64, enc core.Encoding, ln, quota int) ScanKernelRow {
	reps := quota / (scanBatchReqs * ln)
	if reps < 8 {
		reps = 8
	}
	// Pre-generate starts: batch b, slot i begins at a stride offset so
	// the batch's requests are spread over the whole tree.
	starts := make([][]btree.ScanReq, reps)
	stride := len(keys) / (scanBatchReqs + 1)
	for b := range starts {
		reqs := make([]btree.ScanReq, scanBatchReqs)
		for i := range reqs {
			at := (i*stride + b*617) % (len(keys) - ln)
			reqs[i] = btree.ScanReq{From: keys[at], N: ln}
		}
		starts[b] = reqs
	}
	pairs := float64(reps * scanBatchReqs * ln)

	// Interleave three rounds of all three implementations and keep the
	// fastest round each: back-to-back single measurements on a shared
	// host confound implementation cost with frequency and cache-state
	// drift; best-of-N per implementation is robust to one slow round.
	var sink uint64
	var buf btree.ScanBuffer
	elem, bulk, fuse := 0.0, 0.0, 0.0
	best := func(cur float64, t0 time.Time) float64 {
		if mps := pairs / time.Since(t0).Seconds() / 1e6; mps > cur {
			return mps
		}
		return cur
	}
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		for _, reqs := range starts {
			for _, r := range reqs {
				tr.ScanElementwise(r.From, r.N, func(k, v uint64) bool {
					sink += v
					return true
				})
			}
		}
		elem = best(elem, t0)

		t0 = time.Now()
		for _, reqs := range starts {
			for _, r := range reqs {
				tr.Scan(r.From, r.N, func(k, v uint64) bool {
					sink += v
					return true
				})
			}
		}
		bulk = best(bulk, t0)

		t0 = time.Now()
		for _, reqs := range starts {
			buf.Reset(len(reqs))
			tr.ScanBatch(reqs, &buf)
		}
		fuse = best(fuse, t0)
	}
	_ = sink

	return ScanKernelRow{
		Enc: encName(enc), Len: ln,
		ElemMps: elem, BulkMps: bulk, FuseMps: fuse, Speedup: fuse / elem,
	}
}

// scanShardCell times concurrent scanner goroutines issuing fused batches
// (length 256) against one sharded tree.
func scanShardCell(sc Scale, keys, vals []uint64, shards, scanners, quota int) ScanShardRow {
	const ln = 256
	s := shard.BulkLoad(shard.Config{
		Shards: shards,
		Adaptive: btree.AdaptiveConfig{
			Tree: btree.Config{DefaultEncoding: btree.EncSuccinct},
		},
	}, keys, vals)
	defer s.Close()

	batchesPer := quota / (scanBatchReqs * ln * scanners)
	if batchesPer < 8 {
		batchesPer = 8
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < scanners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reqs := make([]btree.ScanReq, scanBatchReqs)
			var buf btree.ScanBuffer
			stride := len(keys) / (scanBatchReqs + 1)
			<-start
			for b := 0; b < batchesPer; b++ {
				for i := range reqs {
					at := (i*stride + b*617 + w*131) % (len(keys) - ln)
					reqs[i] = btree.ScanReq{From: keys[at], N: ln}
				}
				buf.Reset(len(reqs))
				s.ScanBatch(reqs, &buf)
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	pairs := float64(scanners * batchesPer * scanBatchReqs * ln)
	return ScanShardRow{
		Shards: shards, Scanners: scanners,
		Mps: pairs / time.Since(t0).Seconds() / 1e6,
	}
}

// scanMixCell serves the YCSB-E-long mix: scans accumulate into fused
// batches of scanBatchReqs, inserts flush through InsertBatch, against a
// sharded adaptive tree with sampling and async migrations on.
func scanMixCell(sc Scale, keys, vals []uint64) float64 {
	initial, minS, maxS, maxSample := sc.sampling()
	s := shard.BulkLoad(shard.Config{
		Shards: 4,
		Adaptive: btree.AdaptiveConfig{
			Tree:            btree.Config{DefaultEncoding: btree.EncSuccinct, ExpandOnInsert: true},
			MemoryBudget:    adaptiveBudget(keys, vals, 4),
			InitialSkip:     initial,
			MinSkip:         minS,
			MaxSkip:         maxS,
			MaxSampleSize:   maxSample,
			Mode:            core.GS,
			AsyncMigrations: true,
		},
	}, keys, vals)
	defer s.Close()

	ops := sc.OpsPerPhase / 8
	if ops < 20_000 {
		ops = 20_000
	}
	g := workload.NewGenerator(workload.YCSBELong, len(keys), 11)
	type scanOp struct {
		from uint64
		n    int
	}
	// Pre-draw the op tape so generator cost stays outside the timed loop.
	scanTape := make([]scanOp, 0, ops)
	insTape := make([]uint64, 0, ops/8)
	for i := 0; i < ops; i++ {
		op := g.Next()
		if op.Kind == workload.OpScan {
			scanTape = append(scanTape, scanOp{from: keys[op.Index], n: op.ScanLen})
		} else {
			insTape = append(insTape, keys[len(keys)-1]+uint64(len(insTape))+1)
		}
	}

	reqs := make([]btree.ScanReq, 0, scanBatchReqs)
	var buf btree.ScanBuffer
	ik := make([]uint64, 0, 64)
	var iv [64]uint64
	ib := make([]bool, 64)
	t0 := time.Now()
	si, ii := 0, 0
	for si < len(scanTape) || ii < len(insTape) {
		reqs = reqs[:0]
		for si < len(scanTape) && len(reqs) < scanBatchReqs {
			reqs = append(reqs, btree.ScanReq{From: scanTape[si].from, N: scanTape[si].n})
			si++
		}
		if len(reqs) > 0 {
			buf.Reset(len(reqs))
			s.ScanBatch(reqs, &buf)
		}
		ik = ik[:0]
		for ii < len(insTape) && len(ik) < 64 {
			ik = append(ik, insTape[ii])
			ii++
		}
		if len(ik) > 0 {
			s.InsertBatch(ik, iv[:len(ik)], ib[:len(ik)])
		}
	}
	elapsed := time.Since(t0)
	s.DrainMigrations()
	return float64(len(scanTape)+len(insTape)) / elapsed.Seconds() / 1e3
}

// RecordScan runs the experiment, renders the tables to w, and writes the
// metrics JSON (BENCH_scan.json) to path.
func RecordScan(sc Scale, path string, w io.Writer) error {
	res, tbl := RunScan(sc)
	tbl.Render(w)
	fmt.Fprintf(w, "shards x scanners (len=256): ")
	for _, r := range res.Shard {
		fmt.Fprintf(w, "s%d/c%d=%.1f ", r.Shards, r.Scanners, r.Mps)
	}
	fmt.Fprintf(w, "Mpairs/s\nYCSB-E-long mix: %.1f Kops/s\n", res.MixKops)

	hostProcs := runtime.GOMAXPROCS(0)
	notes := fmt.Sprintf(
		"speedup = fused ScanBatch vs the element-wise keyAt/valAt reference scan "+
			"(the pre-kernel Scan path) on identical request streams; acceptance floor "+
			"is >=3x on succinct at len>=256; recorded ratio %.2fx", res.RatioLen256)
	if hostProcs == 1 {
		notes += "; RECORDED ON A 1-CORE HOST: scanner>1 cells time-slice one CPU, so " +
			"the shard sweep shows fan-out overhead, not parallel speedup"
	}
	doc := struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		Scale    string             `json:"scale"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Notes    string             `json:"notes"`
		Metrics  map[string]float64 `json:"metrics"`
	}{
		Recorded: time.Now().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/ahibench -exp scan -scale %s -record %s", sc.Name, path),
		Scale: fmt.Sprintf("%s (%d YCSB u64 keys, %d pairs per kernel cell, batch %d)",
			sc.Name, sc.ConsecU64, scanPairsQuota(sc), scanBatchReqs),
		CPU:     cpuModel(),
		Procs:   hostProcs,
		Notes:   notes,
		Metrics: map[string]float64{},
	}
	for _, r := range res.Kernel {
		key := fmt.Sprintf("scan/%s_len%d", r.Enc, r.Len)
		doc.Metrics[key+"_elem_mps"] = round2(r.ElemMps)
		doc.Metrics[key+"_bulk_mps"] = round2(r.BulkMps)
		doc.Metrics[key+"_batch_mps"] = round2(r.FuseMps)
		doc.Metrics[key+"_speedup"] = round2(r.Speedup)
	}
	for _, r := range res.Shard {
		doc.Metrics[fmt.Sprintf("scan/shards%d_scanners%d_mps", r.Shards, r.Scanners)] = round2(r.Mps)
	}
	doc.Metrics["scan/ycsbe_long_kops"] = round2(res.MixKops)
	doc.Metrics["scan/ratio_succinct_len256"] = round2(res.RatioLen256)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
