package bench

import (
	"sort"

	"ahi/internal/dataset"
	"ahi/internal/stats"
	"ahi/internal/workload"
)

// YCSBRow is one (workload, index) cell of the extension experiment.
type YCSBRow struct {
	Workload  string
	Index     string
	LatencyNs float64
	Bytes     int64
}

// RunYCSB is an extension beyond the paper's evaluation: the adaptive
// B+-tree against the static baselines across the six core YCSB mixes.
// The paper's W4 covers one custom YCSB configuration; this sweep shows
// where adaptivity pays (skewed reads: B, C, D) and where the eager
// expand-on-insert policy dominates (write-heavy: A, F).
func RunYCSB(sc Scale) ([]YCSBRow, Table) {
	keys := dataset.YCSBKeys(sc.ConsecU64, 5)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	budget := adaptiveBudget(keys, vals, 4)
	ops := sc.OpsPerPhase / 4
	letters := make([]string, 0, len(workload.YCSBSpecs))
	for l := range workload.YCSBSpecs {
		letters = append(letters, l)
	}
	sort.Strings(letters)
	var rows []YCSBRow
	for _, l := range letters {
		spec := workload.YCSBSpecs[l]
		for _, v := range []TreeVariant{VariantAHI, VariantSuccinct, VariantGapped} {
			ix := buildVariant(sc, v, keys, vals, budget, nil, 0)
			gen := workload.NewGenerator(spec, len(keys), 11)
			r := runOps(ix, gen, keys, ops, 0)
			rows = append(rows, YCSBRow{Workload: spec.Name, Index: string(v), LatencyNs: r.MeanNs, Bytes: ix.Bytes()})
		}
	}
	tbl := Table{
		Title:  "Extension: YCSB core workloads A-F",
		Header: []string{"workload", "index", "lat ns", "size"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Workload, r.Index, f1(r.LatencyNs), stats.HumanBytes(r.Bytes)})
	}
	return rows, tbl
}
