package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObsLatShape runs the instrumentation sweep at micro scale and
// checks the four configs all produce timings, the traced run committed
// events, and the tail attribution clears the ≥90% named-cause bar.
// Matched by the CI smoke job (go test -run ObsLat).
func TestObsLatShape(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 40_000
	res, tbl := RunObsLat(sc)
	if len(res.Rows) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("rows=%d want 4", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.NsOp <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
		if i == 0 && r.OverheadPct != 0 {
			t.Fatalf("baseline row has overhead %v", r.OverheadPct)
		}
	}
	// Absolute overheads are not asserted here — cross-run timings on a
	// shared runner are noise; the CI gate compares in-run benchmarks.
	if res.OpsRecorded == 0 {
		t.Fatal("traced run committed no events")
	}
	if res.TailNamedFraction < 0.9 {
		t.Fatalf("tail attribution %.2f below the 0.9 bar", res.TailNamedFraction)
	}
	if len(res.TailReports) == 0 || res.TopTailCause == "" {
		t.Fatalf("missing tail analysis: %+v", res)
	}
}

// TestRecordObsLatSchema writes a real BENCH_obs.json to a temp path and
// validates the schema: header fields, one _nsop and one _overhead_pct
// metric per config, and the recorder/attribution keys.
func TestRecordObsLatSchema(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 20_000
	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := RecordObsLat(sc, path, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded string             `json:"recorded"`
		Command  string             `json:"command"`
		CPU      string             `json:"cpu"`
		Procs    int                `json:"procs"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_obs.json is not valid JSON: %v", err)
	}
	if doc.Recorded == "" || doc.Command == "" || doc.CPU == "" || doc.Procs <= 0 {
		t.Fatalf("missing header fields: %+v", doc)
	}
	for _, cfg := range []string{"no-obs", "obs-off", "traced-1/64", "traced-1/8"} {
		for _, suffix := range []string{"_nsop", "_overhead_pct"} {
			key := "obslat/" + cfg + suffix
			if _, ok := doc.Metrics[key]; !ok {
				t.Fatalf("metric %s missing", key)
			}
		}
	}
	for _, key := range []string{"obslat/ops_recorded", "obslat/tail_named_fraction"} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Fatalf("metric %s missing", key)
		}
	}
	if doc.Metrics["obslat/tail_named_fraction"] < 0.9 {
		t.Fatalf("recorded tail_named_fraction %v below bar", doc.Metrics["obslat/tail_named_fraction"])
	}
}
