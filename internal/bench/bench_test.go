package bench

import (
	"bytes"
	"strings"
	"testing"
)

// microScale keeps runner tests fast while still exercising every code
// path end to end.
var microScale = Scale{
	Name: "micro", OSMKeys: 20_000, UserIDs: 20_000, Emails: 10_000,
	ConsecU64: 20_000, OpsPerPhase: 60_000, Interval: 20_000, Threads: 2,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Fatalf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bb") {
		t.Fatalf("render output wrong:\n%s", out)
	}
}

func TestFig2Shape(t *testing.T) {
	rows, tbl := RunFig2(microScale)
	if len(rows) != 10 || len(tbl.Rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
	// |S| must grow as eps shrinks, per k.
	for k := 0; k < 2; k++ {
		base := k * 5
		for i := 1; i < 5; i++ {
			if rows[base+i].SampleSize >= rows[base+i-1].SampleSize {
				t.Fatalf("sample size not decreasing with eps: %+v", rows[base:base+5])
			}
		}
	}
	// Sampled top-k should recover most of the true top-k mass. At micro
	// scale per-item counts are tiny (heavy noise), so the bound is loose;
	// precision must also improve as eps shrinks.
	for _, r := range rows {
		if r.SampledTop < 0.55*r.TrueTopK {
			t.Fatalf("sampled top-k too imprecise: %+v", r)
		}
		if r.SampledTop > r.TrueTopK*1.001 {
			t.Fatalf("sampled top-k exceeds true optimum: %+v", r)
		}
	}
	for k := 0; k < 2; k++ {
		base := k * 5
		if rows[base].SampledTop+0.001 < rows[base+4].SampledTop {
			t.Fatalf("precision should not degrade as eps shrinks: %+v", rows[base:base+5])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows, _ := RunFig3(microScale)
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		key := r.Device
		if r.Compressed {
			key += "+c"
		}
		byKey[key] = r
	}
	// Compressed images must be smaller; DRAM must beat SATA.
	if byKey["DRAM+c"].Bytes >= byKey["DRAM"].Bytes {
		t.Fatal("compression did not shrink")
	}
	if byKey["DRAM"].ReadNs >= byKey["Samsung 870 SSD"].ReadNs {
		t.Fatal("device ordering violated")
	}
	// The figure's argument: compressed-in-DRAM beats uncompressed SATA IO.
	// Race instrumentation slows the measured decompression ~10x, so the
	// CPU-time assertion only holds on uninstrumented builds.
	if !raceEnabled && byKey["DRAM+c"].ReadNs >= byKey["Samsung 870 SSD"].ReadNs {
		t.Fatal("compressed DRAM should beat SATA")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive: unreliable under -short/-race/contended CPUs")
	}
	rows, _ := RunFig5(microScale)
	if len(rows) != 9 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Overhead must fall with growing skip. Compare the two densest
	// configurations against the two sparsest (averaged) with slack:
	// single-point comparisons are timer-noise roulette on shared CPUs.
	dense := (rows[0].NoFilterPct + rows[1].NoFilterPct) / 2
	sparse := (rows[len(rows)-2].NoFilterPct + rows[len(rows)-1].NoFilterPct) / 2
	if dense <= sparse+0.5 {
		t.Fatalf("sampling overhead should fall with skip: dense=%.2f%% sparse=%.2f%%", dense, sparse)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, _ := RunFig6(microScale)
	if len(rows) != 20 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.PerSample <= 0 || r.PerSample > 100_000 {
			t.Fatalf("implausible per-sample cost: %+v", r)
		}
		if r.MapBytes <= 0 {
			t.Fatal("map bytes missing")
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows, _ := RunTable1(microScale)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	byEnc := map[string]Table1Row{}
	for _, r := range rows {
		byEnc[r.Encoding] = r
	}
	if !(byEnc["succinct"].AvgBytes < byEnc["packed"].AvgBytes &&
		byEnc["packed"].AvgBytes < byEnc["gapped"].AvgBytes) {
		t.Fatalf("size ordering broken: %+v", rows)
	}
	// The paper's latency ordering (succinct slower than gapped) holds
	// when the index exceeds the last-level cache; at this micro scale all
	// three trees are cache-resident and the ordering is hardware-
	// dependent, so only sanity-bound the latencies here (EXPERIMENTS.md
	// discusses the regimes).
	for _, r := range rows {
		if r.LatencyNs <= 0 || r.LatencyNs > 100_000 {
			t.Fatalf("implausible latency: %+v", r)
		}
	}
	if byEnc["succinct"].LatencyNs > 5*byEnc["gapped"].LatencyNs {
		t.Fatalf("succinct latency out of family: %+v", rows)
	}
}

func TestFig9Shape(t *testing.T) {
	rows, _ := RunFig9(microScale)
	if len(rows) != 12 { // 6 directions x 2 sizes
		t.Fatalf("rows=%d", len(rows))
	}
	cost := map[string]float64{}
	for _, r := range rows {
		if r.PerNodeNs <= 0 {
			t.Fatalf("non-positive migration cost: %+v", r)
		}
		if r.IndexSize == "large" {
			cost[r.From+">"+r.To] = r.PerNodeNs
		}
	}
	// Succinct-involving migrations re-encode the payload and must cost
	// more than the packed<->gapped memcpy pair.
	if cost["succinct>gapped"] <= cost["packed>gapped"] {
		t.Fatalf("migration cost shape off: %+v", cost)
	}
	if cost["gapped>succinct"] <= cost["gapped>packed"] {
		t.Fatalf("migration cost shape off: %+v", cost)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, _ := RunTable2(microScale)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	by := map[string]Table2Row{}
	for _, r := range rows {
		by[r.Index] = r
	}
	// ART is the largest and fastest; the succinct encodings are smaller.
	if !(by["ART"].Bytes > by["FST-sparse"].Bytes) {
		t.Fatalf("ART should dominate size: %+v", rows)
	}
	if !(by["ART"].LatencyNs < by["FST-sparse"].LatencyNs) {
		t.Fatalf("ART should be fastest: %+v", rows)
	}
}

func TestFig12Shape(t *testing.T) {
	res, _ := RunFig12(microScale)
	if len(res.Series) == 0 {
		t.Fatal("no adaptive series")
	}
	// The gapped tree is the largest; the adaptive tree must be smaller
	// than gapped and the sampling framework far smaller than the index.
	if res.FinalBytes[VariantAHI] >= res.FinalBytes[VariantGapped] {
		t.Fatalf("AHI (%d) not smaller than gapped (%d)",
			res.FinalBytes[VariantAHI], res.FinalBytes[VariantGapped])
	}
	if res.FinalBytes[VariantSuccinct] > res.FinalBytes[VariantAHI] {
		t.Fatalf("succinct should be the floor: %+v", res.FinalBytes)
	}
	if res.SamplingBytes <= 0 || res.SamplingBytes > res.FinalBytes[VariantAHI]/4 {
		t.Fatalf("sampling framework bytes implausible: %d", res.SamplingBytes)
	}
	for v, m := range res.PhaseMeans {
		for p, ns := range m {
			if ns <= 0 {
				t.Fatalf("%s phase %d latency missing", v, p)
			}
		}
	}
}

func TestFig15Shape(t *testing.T) {
	rows, _ := RunFig15(microScale)
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Larger budgets => more expanded leaves and not-larger latency trend
	// (allow noise: compare the extremes).
	if rows[0].GappedFrac > rows[len(rows)-1].GappedFrac {
		t.Fatalf("gapped fraction should grow with budget: %+v", rows)
	}
	for _, r := range rows {
		if r.Bytes > r.BudgetBytes+r.BudgetBytes/10 {
			t.Fatalf("budget exceeded: %+v", r)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	rows, _ := RunFig17(microScale)
	if len(rows) != 12 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.LatencyNs <= 0 || r.Bytes <= 0 {
			t.Fatalf("empty cell: %+v", r)
		}
	}
}

func TestFig19Shape(t *testing.T) {
	rows, _ := RunFig19(microScale)
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	by := map[string]Fig19Row{}
	for _, r := range rows {
		if strings.HasPrefix(r.Workload, "point") {
			by[r.Index] = r
		}
	}
	if !(by["FST"].Bytes < by["ART"].Bytes) {
		t.Fatalf("FST should be smaller than ART: %+v", rows)
	}
	if !(by["AHI-Trie"].Bytes < by["ART"].Bytes) {
		t.Fatalf("hybrid should be smaller than ART: %+v", rows)
	}
	if !(by["ART"].LatencyNs < by["FST"].LatencyNs) {
		t.Fatalf("ART should be faster than FST: %+v", rows)
	}
}

func TestFig20Shape(t *testing.T) {
	res, _ := RunFig20(microScale)
	if len(res.Series["AHI-Trie"]) == 0 || len(res.Series["ART"]) == 0 {
		t.Fatal("series missing")
	}
	if len(res.Adaptations) == 0 {
		t.Fatal("no adaptations recorded")
	}
	if res.Expansions == 0 {
		t.Fatal("no expansions on a 95%-hot prefix workload")
	}
}

func TestTable3Renders(t *testing.T) {
	tbl := RunTable3()
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows=%d", len(tbl.Rows))
	}
}

func TestTable4CountsLoC(t *testing.T) {
	rows, _, err := RunTable4("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Logic <= 0 {
			t.Fatalf("zero logic LoC: %+v", r)
		}
	}
	// Adaptive variants carry tracking lines; plain ones do not.
	for _, r := range rows {
		if strings.HasPrefix(r.Index, "AHI") && r.Tracking == 0 {
			t.Fatalf("adaptive path without tracking lines: %+v", r)
		}
		if (r.Index == "ART" || r.Index == "B+-tree (plain)") && r.Tracking != 0 {
			t.Fatalf("plain path counted tracking lines: %+v", r)
		}
	}
}

func TestRegistryRunsEverythingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run is slow")
	}
	reg := Registry("../..", false)
	if len(reg) != 34 {
		t.Fatalf("registry size %d", len(reg))
	}
	// Smoke-run the cheap experiments through the registry interface.
	var buf bytes.Buffer
	for _, id := range []string{"tbl3", "tbl4", "fig3", "fig6"} {
		if err := reg[id].Run(microScale, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("output missing")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if rows, _ := RunAblationBloom(microScale); len(rows) != 2 {
		t.Fatal("bloom ablation rows")
	}
	if rows, _ := RunAblationEagerExpand(microScale); len(rows) != 2 {
		t.Fatal("eager ablation rows")
	}
}

func TestPagingExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, _ := RunPaging(microScale)
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	by := map[string]PagingRow{}
	for _, r := range rows {
		by[r.Index] = r
	}
	if by["Succinct"].ResidentPct < 99.9 {
		t.Fatalf("succinct must fit the ceiling: %+v", by["Succinct"])
	}
	if by["Gapped"].ResidentPct > 90 {
		t.Fatalf("gapped must exceed the ceiling: %+v", by["Gapped"])
	}
	// The motivating claim: once paging is charged, gapped loses to the
	// resident variants.
	if by["Gapped"].EffectiveNs <= by["AHI-BTree"].EffectiveNs {
		t.Fatalf("paging should sink gapped: %+v vs %+v", by["Gapped"], by["AHI-BTree"])
	}
}

func TestYCSBExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: 7 workloads x 3 variants")
	}
	sc := microScale
	sc.OpsPerPhase = 40_000
	rows, _ := RunYCSB(sc)
	if len(rows) != 21 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.LatencyNs <= 0 || r.Bytes <= 0 {
			t.Fatalf("empty cell: %+v", r)
		}
	}
}

func TestAblationDecentralized(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, _ := RunAblationDecentralized(microScale)
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	// The decentralized scheme pays tracking space on every leaf; the
	// centralized one only on sampled, re-seen ones.
	if rows[0].LatencyNs <= 0 || rows[1].LatencyNs <= 0 {
		t.Fatalf("latencies missing: %+v", rows)
	}
}

func TestFig2Appendix(t *testing.T) {
	rows, _ := RunFig2Appendix(microScale)
	if len(rows) != 20 {
		t.Fatalf("rows=%d", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Dist] = true
		if r.SampledTop > r.TrueTopK*1.001 {
			t.Fatalf("sampled exceeds optimum: %+v", r)
		}
	}
	if !seen["Zipfian"] || !seen["Normal"] {
		t.Fatal("distributions missing")
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: 8 alphas x 5 variants")
	}
	sc := microScale
	sc.OpsPerPhase = 30_000
	rows, _ := RunFig14(sc)
	if len(rows) != 40 {
		t.Fatalf("rows=%d", len(rows))
	}
	// At high skew the adaptive tree must be far smaller than gapped.
	var ahiB, gapB int64
	for _, r := range rows {
		if r.Alpha == 1.6 {
			switch r.Variant {
			case VariantAHI:
				ahiB = r.Bytes
			case VariantGapped:
				gapB = r.Bytes
			}
		}
	}
	if ahiB == 0 || gapB == 0 || ahiB >= gapB {
		t.Fatalf("alpha=1.6 sizes: ahi=%d gapped=%d", ahiB, gapB)
	}
}

func TestFig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, _ := RunFig16(microScale)
	if res.Expansions == 0 {
		t.Fatal("write phase expanded nothing")
	}
	if res.Compactions == 0 {
		t.Fatal("scan phase compacted nothing")
	}
	if len(res.Series[VariantAHI]) == 0 {
		t.Fatal("AHI series missing")
	}
}

func TestFig18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: thread sweep")
	}
	sc := microScale
	sc.Threads = 2
	rows, _ := RunFig18(sc)
	if len(rows) != 8 { // 2 workloads x 2 strategies x {1,2} threads
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MopsPerS <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
	}
}
