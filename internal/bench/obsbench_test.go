package bench

import (
	"io"
	"path/filepath"
	"testing"

	"ahi/internal/obs"
)

// TestTraceDumpSchema runs the traced workload end to end and checks the
// dump round-trips through disk with a schema ahimon --replay accepts:
// valid tag, per-source monotone snapshot epochs, non-negative costs.
func TestTraceDumpSchema(t *testing.T) {
	o := obs.New(0, 0)
	if err := RunTraced(Tiny, o, io.Discard); err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	d := o.Dump()
	d.Experiment = "micro"
	d.Scale = Tiny.Name
	if len(d.Snapshots) == 0 {
		t.Fatal("no epoch snapshots recorded")
	}
	if len(d.Trace) == 0 {
		t.Fatal("no migration trace events recorded")
	}
	sources := map[string]bool{}
	for _, s := range d.Snapshots {
		sources[s.Source] = true
	}
	if !sources["btree"] {
		t.Fatalf("missing btree source in snapshots: %v", sources)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteDump(path, d); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	back, err := obs.ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
	if back.Experiment != "micro" || back.Scale != "tiny" {
		t.Fatalf("metadata lost: exp=%q scale=%q", back.Experiment, back.Scale)
	}
	if len(back.Trace) != len(d.Trace) || len(back.Snapshots) != len(d.Snapshots) {
		t.Fatalf("round-trip changed counts: trace %d->%d snaps %d->%d",
			len(d.Trace), len(back.Trace), len(d.Snapshots), len(back.Snapshots))
	}
}
