package bench

import (
	"fmt"
	"sort"
	"time"

	"ahi/internal/btree"
	"ahi/internal/dataset"
	"ahi/internal/hashmap"
	"ahi/internal/storage"
	"ahi/internal/topk"
	"ahi/internal/workload"
)

// Fig2Row is one (distribution, ε, k) cell of Figure 2: Equation (1)'s
// sample size and the sum of the true vs. sampled top-k frequencies.
type Fig2Row struct {
	Dist       string
	Epsilon    float64
	K          int
	SampleSize int
	TrueTopK   float64 // percent
	SampledTop float64 // percent
}

// RunFig2 reproduces Figure 2 under a Lognormal access distribution. The
// paper's online appendix repeats the experiment for other distributions;
// RunFig2Appendix covers those.
func RunFig2(sc Scale) ([]Fig2Row, Table) {
	// Rank-concentrated lognormal: the paper's Figure 2 regime, where the
	// top-1000 of 1M items carry ~70% of the accesses.
	return runFig2Dist(sc, "Lognormal", func(seed int64) workload.Dist {
		return workload.NewLognormalRank(sc.OSMKeys, 0, 0.25, 1200, seed)
	})
}

// RunFig2Appendix repeats Figure 2 for Zipfian and Normal distributions,
// as the paper's online appendix does ("experiments using other
// distributions show similar results").
func RunFig2Appendix(sc Scale) ([]Fig2Row, Table) {
	rowsZ, tZ := runFig2Dist(sc, "Zipfian", func(seed int64) workload.Dist {
		return workload.NewZipf(sc.OSMKeys, 1.0, seed)
	})
	rowsN, tN := runFig2Dist(sc, "Normal", func(seed int64) workload.Dist {
		return workload.NewNormal(sc.OSMKeys, 0.5, 0.03, seed)
	})
	tbl := Table{
		Title:  "Figure 2 (appendix): other distributions",
		Header: tZ.Header,
		Rows:   append(tZ.Rows, tN.Rows...),
	}
	return append(rowsZ, rowsN...), tbl
}

func runFig2Dist(sc Scale, name string, mk func(seed int64) workload.Dist) ([]Fig2Row, Table) {
	nItems := sc.OSMKeys // "1M items" at the paper's scale
	accesses := sc.OpsPerPhase
	// Generate the access multiset once.
	dist := mk(42)
	counts := make([]uint32, nItems)
	for i := 0; i < accesses; i++ {
		counts[dist.Draw()]++
	}
	type idxCount struct {
		idx int
		c   uint32
	}
	sorted := make([]idxCount, nItems)
	for i, c := range counts {
		sorted[i] = idxCount{i, c}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].c > sorted[j].c })

	var rows []Fig2Row
	for _, k := range []int{250, 1000} {
		var trueSum uint64
		for i := 0; i < k; i++ {
			trueSum += uint64(sorted[i].c)
		}
		truePct := 100 * float64(trueSum) / float64(accesses)
		for _, eps := range []float64{0.02, 0.04, 0.06, 0.08, 0.10} {
			s := topk.SampleSize(nItems, k, eps, 0.05)
			if s > accesses {
				s = accesses
			}
			// Subsample the SAME access stream (a sample of the multiset D,
			// as in §2's definition): replay the stream and keep every
			// (accesses/s)-th access.
			sample := make(map[int]int, s)
			sdist := mk(42)
			skip := accesses / s
			if skip < 1 {
				skip = 1
			}
			for i := 0; i < accesses; i++ {
				v := sdist.Draw()
				if i%skip == 0 {
					sample[v]++
				}
			}
			cls := topk.NewClassifier(k)
			items := make([]int, 0, len(sample))
			for idx := range sample {
				items = append(items, idx)
			}
			sort.Ints(items) // determinism
			for _, idx := range items {
				cls.Offer(topk.Entry{Item: idx, Priority: uint64(sample[idx])})
			}
			// Evaluate the sampled top-k against TRUE frequencies.
			var sampledSum uint64
			for _, e := range cls.Hot() {
				sampledSum += uint64(counts[e.Item])
			}
			rows = append(rows, Fig2Row{
				Dist:    name,
				Epsilon: eps, K: k, SampleSize: s,
				TrueTopK:   truePct,
				SampledTop: 100 * float64(sampledSum) / float64(accesses),
			})
		}
	}
	tbl := Table{
		Title:  fmt.Sprintf("Figure 2: error-bounded top-k sample sizes (%s)", name),
		Header: []string{"dist", "k", "eps", "|S|", "true top-k %", "sampled top-k %"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.Dist, fmt.Sprint(r.K), f2(r.Epsilon), fmt.Sprint(r.SampleSize),
			f2(r.TrueTopK), f2(r.SampledTop),
		})
	}
	return rows, tbl
}

// Fig3Row is one bar of Figure 3.
type Fig3Row struct {
	Device     string
	Compressed bool
	ReadNs     float64
	WriteNs    float64
	Bytes      int
}

// RunFig3 reproduces Figure 3: random read/write latencies to compressed
// and uncompressed 70%-occupied leaf nodes across storage devices.
func RunFig3(sc Scale) ([]Fig3Row, Table) {
	keys := dataset.OSM(btree.LeafCap*7/10, 7)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	raw := storage.EncodeLeaf(keys, vals)
	var rows []Fig3Row
	for _, dev := range storage.Devices {
		for _, compressed := range []bool{false, true} {
			r := storage.MeasureAccess(dev, raw, compressed, false)
			w := storage.MeasureAccess(dev, raw, compressed, true)
			rows = append(rows, Fig3Row{
				Device: dev.Name, Compressed: compressed,
				ReadNs:  float64(r.Total.Nanoseconds()),
				WriteNs: float64(w.Total.Nanoseconds()),
				Bytes:   r.Bytes,
			})
		}
	}
	tbl := Table{
		Title:  "Figure 3: leaf access latency by device (simulated IO + real codec CPU)",
		Header: []string{"device", "encoding", "bytes", "read us", "write us"},
	}
	for _, r := range rows {
		enc := "uncompressed"
		if r.Compressed {
			enc = "compressed"
		}
		tbl.Rows = append(tbl.Rows, []string{
			r.Device, enc, fmt.Sprint(r.Bytes), f2(r.ReadNs / 1000), f2(r.WriteNs / 1000),
		})
	}
	return rows, tbl
}

// Fig5Row is one skip-length point of Figure 5.
type Fig5Row struct {
	Skip          int
	BaselineNs    float64
	NoFilterPct   float64 // overhead of sampling without the Bloom filter
	WithFilterPct float64 // overhead with the filter
	NoFilterNs    float64
	WithFilterNs  float64
}

// RunFig5 reproduces Figure 5 under the paper's log-normal workload;
// RunFig5Appendix repeats it for other workloads ("other workloads show
// similar overhead").
func RunFig5(sc Scale) ([]Fig5Row, Table) {
	return runFig5Spec(sc, workload.W13)
}

// RunFig5Appendix runs the Figure 5 sweep under the Zipfian W1.1 and the
// Normal W1.2 read mixes.
func RunFig5Appendix(sc Scale) ([]Fig5Row, Table) {
	rows1, t1 := runFig5Spec(sc, workload.W11)
	rows2, t2 := runFig5Spec(sc, workload.W12)
	tbl := Table{
		Title:  "Figure 5 (appendix): other workloads",
		Header: append([]string{"workload"}, t1.Header...),
	}
	for _, r := range t1.Rows {
		tbl.Rows = append(tbl.Rows, append([]string{workload.W11.Name}, r...))
	}
	for _, r := range t2.Rows {
		tbl.Rows = append(tbl.Rows, append([]string{workload.W12.Name}, r...))
	}
	return append(rows1, rows2...), tbl
}

func runFig5Spec(sc Scale, spec workload.Spec) ([]Fig5Row, Table) {
	keys := dataset.OSM(sc.OSMKeys, 1)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ops := sc.OpsPerPhase / 2

	baselineTree := btree.BulkLoad(btree.Config{DefaultEncoding: btree.EncGapped}, keys, vals)

	measure := func(skip int, disableBloom bool) float64 {
		a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
			Tree:         btree.Config{DefaultEncoding: btree.EncGapped},
			InitialSkip:  skip,
			FixedSkip:    true,
			DisableBloom: disableBloom,
			MemoryBudget: 1, // forbid migrations: tracking overhead only
		}, keys, vals)
		g := workload.NewGenerator(spec, len(keys), 5)
		r := runOps(sessionIndex{a.NewSession(), a}, g, keys, ops, 0)
		return r.MeanNs
	}

	// Interleave repetitions across all configurations and keep the
	// minimum: CPU-frequency drift over a sequential sweep would otherwise
	// masquerade as skip-length effects.
	skips := []int{0, 1, 2, 3, 4, 5, 10, 15, 20}
	const reps = 3
	baseNs := 1e18
	noF := make([]float64, len(skips))
	withF := make([]float64, len(skips))
	for i := range skips {
		noF[i], withF[i] = 1e18, 1e18
	}
	for rep := 0; rep < reps; rep++ {
		gen := workload.NewGenerator(spec, len(keys), 5)
		if b := runOps(treeIndex{baselineTree}, gen, keys, ops, 0).MeanNs; b < baseNs {
			baseNs = b
		}
		for i, skip := range skips {
			if v := measure(skip, true); v < noF[i] {
				noF[i] = v
			}
			if v := measure(skip, false); v < withF[i] {
				withF[i] = v
			}
		}
	}
	var rows []Fig5Row
	for i, skip := range skips {
		rows = append(rows, Fig5Row{
			Skip:          skip,
			BaselineNs:    baseNs,
			NoFilterNs:    noF[i],
			WithFilterNs:  withF[i],
			NoFilterPct:   100 * (noF[i] - baseNs) / baseNs,
			WithFilterPct: 100 * (withF[i] - baseNs) / baseNs,
		})
	}
	tbl := Table{
		Title:  "Figure 5: sampling overhead vs skip length (baseline = plain Gapped tree)",
		Header: []string{"skip", "baseline ns", "no-filter ns", "no-filter ov%", "filter ns", "filter ov%"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Skip), f1(r.BaselineNs), f1(r.NoFilterNs), f1(r.NoFilterPct),
			f1(r.WithFilterNs), f1(r.WithFilterPct),
		})
	}
	return rows, tbl
}

// Fig6Row is one (unique samples, k) cell of Figure 6.
type Fig6Row struct {
	Unique    int
	K         int
	PerSample float64 // ns per sample classified
	MapBytes  int
}

// RunFig6 reproduces Figure 6: single-pass heap classification cost per
// sample for varying k, plus the sample hash map's size.
func RunFig6(sc Scale) ([]Fig6Row, Table) {
	var rows []Fig6Row
	for _, unique := range []int{1000, 2000, 5000, 10000} {
		// Build the aggregated sample map as the manager would.
		m := hashmap.NewHopscotch[uint64, uint32](hashmap.HashU64, unique)
		dist := workload.NewZipf(unique, 1.0, int64(unique))
		for i := 0; i < unique*20; i++ {
			m.Upsert(uint64(dist.Draw()), func(v *uint32, _ bool) { *v++ })
		}
		for _, k := range []int{unique / 8, unique / 4, unique / 2, unique, unique * 3 / 2} {
			const reps = 20
			var best time.Duration = 1 << 62
			for rep := 0; rep < reps; rep++ {
				cls := topk.NewClassifier(k)
				start := time.Now()
				m.Range(func(id uint64, c *uint32) bool {
					cls.Offer(topk.Entry{Item: int(id), Priority: uint64(*c)})
					return true
				})
				if el := time.Since(start); el < best {
					best = el
				}
			}
			rows = append(rows, Fig6Row{
				Unique:    unique,
				K:         k,
				PerSample: float64(best.Nanoseconds()) / float64(m.Len()),
				MapBytes:  m.Bytes(),
			})
		}
	}
	tbl := Table{
		Title:  "Figure 6: classification cost per sample and sample-map size",
		Header: []string{"unique", "k", "ns/sample", "map KiB"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Unique), fmt.Sprint(r.K), f2(r.PerSample), f1(float64(r.MapBytes) / 1024),
		})
	}
	return rows, tbl
}
