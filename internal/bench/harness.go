// Package bench contains one runner per table and figure of the paper's
// evaluation (§5) plus the preliminary experiments (§2, §3). Each runner
// builds its indexes and workloads from the synthetic datasets, executes
// the experiment at a configurable scale, and returns the same rows or
// series the paper reports. DESIGN.md §2 maps every experiment to its
// runner; EXPERIMENTS.md records paper-vs-measured shapes.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ahi/internal/btree"
	"ahi/internal/workload"
)

// Scale sizes an experiment. The paper's runs use 50M–400M keys on a
// 64 GB machine; the default scales keep every run laptop-sized while
// preserving skew and structure.
type Scale struct {
	Name      string
	OSMKeys   int
	UserIDs   int
	Emails    int
	ConsecU64 int
	// OpsPerPhase is the number of queries per workload phase.
	OpsPerPhase int
	// Interval is the time-series bucket (ops per plotted point).
	Interval int64
	// Threads is the maximum worker count for Figure 18.
	Threads int
}

// Predefined scales.
var (
	Tiny = Scale{Name: "tiny", OSMKeys: 100_000, UserIDs: 100_000, Emails: 50_000,
		ConsecU64: 100_000, OpsPerPhase: 300_000, Interval: 30_000, Threads: 4}
	Small = Scale{Name: "small", OSMKeys: 1_000_000, UserIDs: 1_000_000, Emails: 200_000,
		ConsecU64: 1_000_000, OpsPerPhase: 2_000_000, Interval: 100_000, Threads: 8}
	Medium = Scale{Name: "medium", OSMKeys: 4_000_000, UserIDs: 4_000_000, Emails: 1_000_000,
		ConsecU64: 4_000_000, OpsPerPhase: 8_000_000, Interval: 400_000, Threads: 16}
)

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "medium":
		return Medium, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (tiny|small|medium)", name)
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	fmt.Fprintf(w, "# %s\n", t.Title)
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	fmt.Fprintln(w)
}

// f formats a float cell.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// kvIndex is the operation surface shared by every benchmarked index.
type kvIndex interface {
	Lookup(k uint64) (uint64, bool)
	Insert(k, v uint64) bool
	Scan(from uint64, n int, fn func(k, v uint64) bool) int
	Bytes() int64
}

// treeIndex adapts a plain (non-adaptive) btree.Tree.
type treeIndex struct{ t *btree.Tree }

func (x treeIndex) Lookup(k uint64) (uint64, bool) { return x.t.Lookup(k) }
func (x treeIndex) Insert(k, v uint64) bool        { return x.t.Insert(k, v) }
func (x treeIndex) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return x.t.Scan(from, n, fn)
}
func (x treeIndex) Bytes() int64 { return x.t.Bytes() }

// sessionIndex adapts an adaptive tree session.
type sessionIndex struct {
	s *btree.Session
	a *btree.Adaptive
}

func (x sessionIndex) Lookup(k uint64) (uint64, bool) { return x.s.Lookup(k) }
func (x sessionIndex) Insert(k, v uint64) bool        { return x.s.Insert(k, v) }
func (x sessionIndex) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return x.s.Scan(from, n, fn)
}
func (x sessionIndex) Bytes() int64 { return x.a.Tree.Bytes() }

// runResult is the measured outcome of a phase run.
type runResult struct {
	MeanNs     float64
	Ops        int64
	Elapsed    time.Duration
	FinalBytes int64
	Series     []seriesPoint
}

type seriesPoint struct {
	Ops    int64
	MeanNs float64
	Bytes  int64
}

// sampling returns adaptation-manager knobs proportional to the scale's
// operation budget. The paper's skip range [50,500] assumes 50M-query
// phases; scaled-down runs need proportionally tighter sampling so several
// adaptation phases fit into each workload phase.
func (sc Scale) sampling() (initialSkip, minSkip, maxSkip, maxSample int) {
	maxSample = sc.OpsPerPhase / 256
	if maxSample < 256 {
		maxSample = 256
	}
	return 8, 4, 32, maxSample
}

// timedBatch is the batching quantum for latency measurement: timing every
// single op would distort sub-100ns operations.
const timedBatch = 512

// runOps executes ops operations of gen against ix, recording a
// time-series point every interval operations (interval <= 0 disables the
// series). Lookups dominate cost; values are ignored.
func runOps(ix kvIndex, gen *workload.Generator, keys []uint64, ops int, interval int64) runResult {
	var res runResult
	var curSum time.Duration
	var curN int64
	var sink uint64
	opBuf := make([]workload.Op, timedBatch)
	done := 0
	for done < ops {
		batch := timedBatch
		if rem := ops - done; rem < batch {
			batch = rem
		}
		gen.Fill(opBuf[:batch])
		start := time.Now()
		for _, op := range opBuf[:batch] {
			switch op.Kind {
			case workload.OpRead:
				v, _ := ix.Lookup(keys[op.Index])
				sink += v
			case workload.OpScan:
				ix.Scan(keys[op.Index], op.ScanLen, func(k, v uint64) bool {
					sink += v
					return true
				})
			case workload.OpInsert:
				// Derive a fresh key adjacent to an existing one so inserts
				// land inside the populated space (the paper's inserts
				// follow the same key distributions as reads). The value is
				// TID-like: huge values would wreck FOR compression and
				// distort every size measurement.
				ix.Insert(keys[op.Index]+1, uint64(op.Index))
			}
		}
		el := time.Since(start)
		done += batch
		res.Elapsed += el
		curSum += el
		curN += int64(batch)
		if interval > 0 && curN >= interval {
			res.Series = append(res.Series, seriesPoint{
				Ops:    int64(done),
				MeanNs: float64(curSum.Nanoseconds()) / float64(curN),
				Bytes:  ix.Bytes(),
			})
			curSum, curN = 0, 0
		}
	}
	if interval > 0 && curN > 0 {
		res.Series = append(res.Series, seriesPoint{
			Ops:    int64(done),
			MeanNs: float64(curSum.Nanoseconds()) / float64(curN),
			Bytes:  ix.Bytes(),
		})
	}
	res.Ops = int64(ops)
	res.MeanNs = float64(res.Elapsed.Nanoseconds()) / float64(ops)
	res.FinalBytes = ix.Bytes()
	_ = sink
	return res
}
