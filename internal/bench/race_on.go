//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this build;
// timing-sensitive shape assertions relax or skip under it.
const raceEnabled = true
