package bench

import (
	"fmt"
	"sync"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/dataset"
	"ahi/internal/workload"
)

// Fig18Row is one (strategy, workload, threads) cell.
type Fig18Row struct {
	Strategy string
	Workload string
	Threads  int
	MopsPerS float64
}

// RunFig18 reproduces Figure 18: throughput of the two concurrent
// adaptation strategies — GS (global cuckoo sample map) and TLS
// (thread-local maps merged per phase) — under the write-dominated W5.1
// and the scan-dominated W5.2, for increasing worker counts.
func RunFig18(sc Scale) ([]Fig18Row, Table) {
	var rows []Fig18Row
	var threadCounts []int
	for t := 1; t <= sc.Threads; t *= 2 {
		threadCounts = append(threadCounts, t)
	}
	for _, wname := range []string{"W5.1", "W5.2"} {
		spec := workload.Specs[wname]
		for _, strategy := range []struct {
			name string
			mode core.ConcurrencyMode
		}{
			{"GS", core.GS},
			{"TLS", core.TLS},
		} {
			for _, threads := range threadCounts {
				keys := dataset.OSM(sc.OSMKeys, 1)
				vals := make([]uint64, len(keys))
				for i := range vals {
					vals[i] = uint64(i)
				}
				initial, minS, maxS, maxSample := sc.sampling()
				a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
					Tree:          btree.Config{DefaultEncoding: btree.EncSuccinct},
					MemoryBudget:  adaptiveBudget(keys, vals, 4),
					Mode:          strategy.mode,
					Workers:       threads,
					InitialSkip:   initial,
					MinSkip:       minS,
					MaxSkip:       maxS,
					MaxSampleSize: maxSample,
				}, keys, vals)
				opsPerWorker := sc.OpsPerPhase / 2 / threads
				var wg sync.WaitGroup
				start := time.Now()
				for w := 0; w < threads; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						s := a.NewSession()
						defer s.Flush()
						gen := workload.NewGenerator(spec, len(keys), int64(w)*101+7)
						runOps(sessionIndex{s, a}, gen, keys, opsPerWorker, 0)
					}(w)
				}
				wg.Wait()
				el := time.Since(start)
				totalOps := float64(opsPerWorker * threads)
				rows = append(rows, Fig18Row{
					Strategy: strategy.name,
					Workload: wname,
					Threads:  threads,
					MopsPerS: totalOps / el.Seconds() / 1e6,
				})
			}
		}
	}
	tbl := Table{
		Title:  "Figure 18: GS vs TLS concurrent adaptation throughput",
		Header: []string{"workload", "strategy", "threads", "Mops/s"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{r.Workload, r.Strategy, fmt.Sprint(r.Threads), f2(r.MopsPerS)})
	}
	return rows, tbl
}
