package bench

import "testing"

// TestCacheShape runs the skew x fraction sweep plus the miss-path part
// at micro scale and checks structure. Matched by the CI smoke job
// (go test -run Cache). Timing ratios are informational at this scale;
// the real numbers come from the recorded sweep (BENCH_cache.json).
func TestCacheShape(t *testing.T) {
	sc := microScale
	sc.OpsPerPhase = 32_000
	res, tbl := RunCache(sc)

	want := len(cacheSkews) * len(cacheOpBatches) * len(cacheFractions)
	if len(res.Rows) != want || len(tbl.Rows) != want {
		t.Fatalf("rows=%d want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r.MeanNs <= 0 || r.MopsPerS <= 0 || r.Speedup <= 0 {
			t.Fatalf("empty cell: %+v", r)
		}
		if r.Fraction == 0 {
			if r.CacheBytes != 0 || r.HitRate != 0 {
				t.Fatalf("fraction=0 cell has cache state: %+v", r)
			}
			if r.Speedup != 1 {
				t.Fatalf("baseline cell speedup %v != 1: %+v", r.Speedup, r)
			}
			continue
		}
		if r.CacheBytes <= 0 {
			t.Fatalf("cache cell without cache bytes: %+v", r)
		}
		// The budget share may round below the nominal fraction (power-of-
		// two bucket count) but must never exceed it.
		if r.BudgetShare > r.Fraction {
			t.Fatalf("cache overshoots its budget slice: %+v", r)
		}
		if r.HitRate <= 0 {
			t.Fatalf("cache cell saw no hits: %+v", r)
		}
	}

	if len(res.ReplayRows) != 4 {
		t.Fatalf("replay rows=%d want 4", len(res.ReplayRows))
	}
	for _, r := range res.ReplayRows {
		if r.MeanNs <= 0 || r.MopsPerS <= 0 || r.Speedup <= 0 {
			t.Fatalf("empty replay cell: %+v", r)
		}
		if r.Fraction == 0 {
			if r.Speedup != 1 || r.HitRate != 0 {
				t.Fatalf("replay baseline cell has cache state: %+v", r)
			}
		} else if r.HitRate <= 0 {
			t.Fatalf("replay cache cell saw no hits: %+v", r)
		}
	}

	if len(res.MissRows) != 2 {
		t.Fatalf("miss rows=%d want 2", len(res.MissRows))
	}
	off, on := res.MissRows[0], res.MissRows[1]
	if off.Filters || !on.Filters {
		t.Fatalf("miss rows misordered: %+v", res.MissRows)
	}
	if off.NegHits != 0 {
		t.Fatalf("filters-off run counted %d filter rejects", off.NegHits)
	}
	if on.NegHits == 0 {
		t.Fatal("filters-on run rejected nothing: filters not wired")
	}
	if on.IndexMiB <= off.IndexMiB {
		t.Fatalf("filters claim no bytes: off=%.3f on=%.3f MiB", off.IndexMiB, on.IndexMiB)
	}
	c := cellCache(t, res, 0.99, 1, 0.10)
	t.Logf("zipf0.99 b1 frac10%% speedup %.2f hit%% %.1f; miss filters-on speedup %.2f",
		c.Speedup, 100*c.HitRate, on.Speedup)
}

func cellCache(t *testing.T, res CacheResult, skew float64, batch int, frac float64) CacheRow {
	t.Helper()
	for _, r := range res.Rows {
		if r.Skew == skew && r.Batch == batch && r.Fraction == frac {
			return r
		}
	}
	t.Fatalf("missing cell zipf%.2f/b%d/frac%.2f", skew, batch, frac)
	return CacheRow{}
}
