package dualstage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ahi/internal/dataset"
)

func fixture(t *testing.T, enc StaticEncoding, n int) (*Index, []uint64, []uint64) {
	t.Helper()
	keys := dataset.OSM(n, 3)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) * 7
	}
	return New(Config{Static: enc}, keys, vals), keys, vals
}

func TestLookupBothEncodings(t *testing.T) {
	for _, enc := range []StaticEncoding{Packed, Succinct} {
		ix, keys, vals := fixture(t, enc, 30000)
		if ix.Len() != len(keys) {
			t.Fatalf("Len=%d", ix.Len())
		}
		for i, k := range keys {
			v, ok := ix.Lookup(k)
			if !ok || v != vals[i] {
				t.Fatalf("enc %d: Lookup(%d)=(%d,%v)", enc, k, v, ok)
			}
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10000; i++ {
			k := rng.Uint64()
			idx := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
			if idx < len(keys) && keys[idx] == k {
				continue
			}
			if _, ok := ix.Lookup(k); ok {
				t.Fatalf("enc %d: phantom %d", enc, k)
			}
		}
	}
}

func TestInsertAndMerge(t *testing.T) {
	ix, keys, _ := fixture(t, Succinct, 20000)
	rng := rand.New(rand.NewSource(5))
	inserted := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() | 1<<63 // disjoint from OSM keys (top bit clear there)
		v := rng.Uint64()
		ix.Insert(k, v)
		inserted[k] = v
	}
	if ix.Merges() == 0 {
		t.Fatal("5000 inserts into 20000 keys must trigger merges at 5%")
	}
	if ix.Len() != len(keys)+len(inserted) {
		t.Fatalf("Len=%d want %d", ix.Len(), len(keys)+len(inserted))
	}
	for k, v := range inserted {
		got, ok := ix.Lookup(k)
		if !ok || got != v {
			t.Fatalf("inserted key %d lost (merged=%d)", k, ix.Merges())
		}
	}
	// Original keys survive merges.
	for i := 0; i < len(keys); i += 101 {
		if _, ok := ix.Lookup(keys[i]); !ok {
			t.Fatalf("static key %d lost after merge", keys[i])
		}
	}
}

func TestUpdateOverwrites(t *testing.T) {
	ix, keys, _ := fixture(t, Packed, 5000)
	ix.Insert(keys[42], 99999)
	if v, ok := ix.Lookup(keys[42]); !ok || v != 99999 {
		t.Fatalf("update lost: %d %v", v, ok)
	}
	if ix.Len() != len(keys) {
		t.Fatalf("update changed Len to %d", ix.Len())
	}
}

func TestDeleteTombstones(t *testing.T) {
	ix, keys, _ := fixture(t, Succinct, 5000)
	if !ix.Delete(keys[7]) {
		t.Fatal("delete failed")
	}
	if ix.Delete(keys[7]) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := ix.Lookup(keys[7]); ok {
		t.Fatal("deleted key visible")
	}
	if ix.Len() != len(keys)-1 {
		t.Fatalf("Len=%d", ix.Len())
	}
	// Re-insert after delete.
	ix.Insert(keys[7], 123)
	if v, ok := ix.Lookup(keys[7]); !ok || v != 123 {
		t.Fatal("reinsert after delete failed")
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len=%d after reinsert", ix.Len())
	}
	// Deleted keys vanish from scans and stay gone across a merge.
	ix.Delete(keys[8])
	found := false
	ix.Scan(keys[8], 1, func(k, v uint64) bool {
		found = k == keys[8]
		return true
	})
	if found {
		t.Fatal("tombstoned key scanned")
	}
	for i := 0; i < 1000; i++ {
		ix.Insert(uint64(1)<<63|uint64(i), 1) // force merges
	}
	if _, ok := ix.Lookup(keys[8]); ok {
		t.Fatal("tombstone lost in merge")
	}
}

func TestScanMergesStages(t *testing.T) {
	ix, keys, vals := fixture(t, Succinct, 10000)
	// Interleave fresh dynamic keys between static ones.
	extra := map[uint64]uint64{}
	for i := 0; i < 200; i++ {
		k := keys[i*37] + 1 // OSM gaps guarantee no collision most of the time
		if _, exists := ix.Lookup(k); exists {
			continue
		}
		ix.Insert(k, 5555)
		extra[k] = 5555
	}
	// Full scan must be ordered and contain both stages.
	var prev uint64
	first := true
	seen := 0
	sawExtra := 0
	ix.Scan(0, 1<<30, func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan order violated: %d after %d", k, prev)
		}
		if _, ok := extra[k]; ok {
			sawExtra++
		}
		prev, first = k, false
		seen++
		return true
	})
	if seen != ix.Len() {
		t.Fatalf("scan visited %d of %d", seen, ix.Len())
	}
	if sawExtra != len(extra) {
		t.Fatalf("scan missed dynamic keys: %d of %d", sawExtra, len(extra))
	}
	// Ranged scan correctness against reference.
	start := keys[500]
	var got []uint64
	ix.Scan(start, 20, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 20 || got[0] < start {
		t.Fatalf("ranged scan wrong: %v", got[:min(len(got), 3)])
	}
	_ = vals
}

func TestSuccinctSmallerThanPacked(t *testing.T) {
	ixP, _, _ := fixture(t, Packed, 30000)
	ixS, _, _ := fixture(t, Succinct, 30000)
	if ixS.Bytes() >= ixP.Bytes() {
		t.Fatalf("succinct static (%d) not smaller than packed (%d)", ixS.Bytes(), ixP.Bytes())
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	keys := dataset.OSM(5000, 9)
	vals := make([]uint64, len(keys))
	ref := map[uint64]uint64{}
	for i, k := range keys {
		vals[i] = uint64(i)
		ref[k] = uint64(i)
	}
	ix := New(Config{Static: Succinct, MergeThreshold: 0.02}, keys, vals)
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 50000; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(3) == 0 {
			k = rng.Uint64()>>16 | 1<<62 // fresh key space
		}
		switch rng.Intn(5) {
		case 0, 1:
			v := rng.Uint64()
			ix.Insert(k, v)
			ref[k] = v
		case 2:
			got := ix.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, got, want)
			}
			delete(ref, k)
		default:
			got, ok := ix.Lookup(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d)=(%d,%v) want (%d,%v) merges=%d", op, k, got, ok, want, wok, ix.Merges())
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d want %d", op, ix.Len(), len(ref))
		}
	}
}

func BenchmarkDualStageLookup(b *testing.B) {
	keys := dataset.OSM(100000, 1)
	vals := make([]uint64, len(keys))
	ix := New(Config{Static: Succinct}, keys, vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(keys[i%len(keys)])
	}
}

func TestMergeCountAndShrink(t *testing.T) {
	keys := dataset.OSM(10000, 21)
	vals := make([]uint64, len(keys))
	ix := New(Config{Static: Succinct, MergeThreshold: 0.01}, keys, vals)
	before := ix.Merges()
	for i := 0; i < 500; i++ {
		ix.Insert(uint64(1)<<62|uint64(i)*7, 1)
	}
	if ix.Merges() <= before {
		t.Fatal("1% threshold with 5% inserts must merge repeatedly")
	}
	// After a merge the dynamic stage restarts near-empty: size near the
	// static footprint.
	static := ix.static.bytes()
	if ix.Bytes() > static+static/2 {
		t.Fatalf("post-merge footprint inflated: %d vs static %d", ix.Bytes(), static)
	}
}

func TestQuickDualStageMatchesMap(t *testing.T) {
	fn := func(seedRaw uint16, opsRaw []uint16) bool {
		keys := dataset.OSM(500, int64(seedRaw)+1)
		vals := make([]uint64, len(keys))
		ref := map[uint64]uint64{}
		for i, k := range keys {
			vals[i] = uint64(i)
			ref[k] = uint64(i)
		}
		ix := New(Config{Static: Succinct, MergeThreshold: 0.05}, keys, vals)
		for i, raw := range opsRaw {
			k := keys[int(raw)%len(keys)]
			switch raw % 3 {
			case 0:
				v := uint64(raw) + 1
				ix.Insert(k, v)
				ref[k] = v
			case 1:
				got := ix.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				got, ok := ix.Lookup(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			}
			_ = i
		}
		return ix.Len() == len(ref)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
