// Package dualstage implements the Dual-Stage hybrid index of Zhang et
// al. (SIGMOD 2016), the baseline of the paper's Figure 17: a dynamic
// stage (a regular B+-tree) absorbs all writes, a compact read-only static
// stage holds the bulk of the data, and a Bloom filter in front of the
// dynamic stage lets point lookups skip it when the key cannot be there.
// When the dynamic stage exceeds a configured fraction of the data, it is
// merged wholesale into the static stage — the expensive merge the
// adaptive approach avoids.
package dualstage

import (
	"math"
	"sort"
	"time"

	"ahi/internal/bitutil"
	"ahi/internal/bloom"
	"ahi/internal/btree"
	"ahi/internal/hashmap"
	"ahi/internal/obs"
)

// StaticEncoding selects the read-only stage's layout.
type StaticEncoding uint8

const (
	// Packed: two dense sorted arrays, plain binary search.
	Packed StaticEncoding = iota
	// Succinct: block-wise frame-of-reference with bit packing.
	Succinct
)

// Config configures the index.
type Config struct {
	Static StaticEncoding
	// MergeThreshold is the dynamic-stage share of all keys that triggers
	// a merge (the paper's benchmark keeps the latest 5% dynamic).
	MergeThreshold float64
	// BloomBitsPerKey sizes the filter over dynamic keys (default 10).
	BloomBitsPerKey int
	// Obs attaches an observability sink: every dynamic→static merge then
	// emits a trace event (trigger "merge", build time = merge duration) and
	// a stage-distribution snapshot. Nil disables instrumentation.
	Obs       *obs.Observability
	ObsSource string
}

// Stage-encoding ids for observability ("from" of a merge is the dynamic
// stage; "to" is the configured static encoding).
const obsEncDynamic = 2

// encodingName names the dual-stage encodings for observability output.
func encodingName(e uint8) string {
	switch e {
	case uint8(Packed):
		return "packed"
	case uint8(Succinct):
		return "succinct"
	case obsEncDynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// succinctBlock is one FOR-coded block of the static stage.
const succinctBlockSize = 256

type succinctBlock struct {
	keys bitutil.FORArray
	vals bitutil.FORArray
}

// staticStage is the immutable compact stage.
type staticStage struct {
	enc StaticEncoding
	// Packed layout.
	keys, vals []uint64
	// Succinct layout.
	mins   []uint64
	blocks []succinctBlock
	n      int
}

func newStatic(enc StaticEncoding, keys, vals []uint64) *staticStage {
	s := &staticStage{enc: enc, n: len(keys)}
	if enc == Packed {
		s.keys = append([]uint64(nil), keys...)
		s.vals = append([]uint64(nil), vals...)
		return s
	}
	for i := 0; i < len(keys); i += succinctBlockSize {
		end := i + succinctBlockSize
		if end > len(keys) {
			end = len(keys)
		}
		s.mins = append(s.mins, keys[i])
		s.blocks = append(s.blocks, succinctBlock{
			keys: bitutil.NewFORArray(keys[i:end]),
			vals: bitutil.NewFORArray(vals[i:end]),
		})
	}
	return s
}

func (s *staticStage) bytes() int64 {
	if s.enc == Packed {
		return int64(len(s.keys)*8 + len(s.vals)*8)
	}
	b := int64(len(s.mins) * 8)
	for i := range s.blocks {
		b += int64(s.blocks[i].keys.Bytes() + s.blocks[i].vals.Bytes())
	}
	return b
}

func (s *staticStage) lookup(k uint64) (uint64, bool) {
	if s.enc == Packed {
		i := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= k })
		if i < len(s.keys) && s.keys[i] == k {
			return s.vals[i], true
		}
		return 0, false
	}
	b := sort.Search(len(s.mins), func(j int) bool { return s.mins[j] > k }) - 1
	if b < 0 {
		return 0, false
	}
	blk := &s.blocks[b]
	i := blk.keys.Search(k)
	if i < blk.keys.Len() && blk.keys.Get(i) == k {
		return blk.vals.Get(i), true
	}
	return 0, false
}

// position returns the global rank of the first key >= k.
func (s *staticStage) position(k uint64) int {
	if s.enc == Packed {
		return sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= k })
	}
	b := sort.Search(len(s.mins), func(j int) bool { return s.mins[j] > k }) - 1
	if b < 0 {
		return 0
	}
	return b*succinctBlockSize + s.blocks[b].keys.Search(k)
}

func (s *staticStage) at(pos int) (uint64, uint64) {
	if s.enc == Packed {
		return s.keys[pos], s.vals[pos]
	}
	b, i := pos/succinctBlockSize, pos%succinctBlockSize
	return s.blocks[b].keys.Get(i), s.blocks[b].vals.Get(i)
}

// appendAll decodes the whole stage (merge path).
func (s *staticStage) appendAll(keys, vals []uint64) ([]uint64, []uint64) {
	if s.enc == Packed {
		return append(keys, s.keys...), append(vals, s.vals...)
	}
	for i := range s.blocks {
		keys = s.blocks[i].keys.AppendTo(keys)
		vals = s.blocks[i].vals.AppendTo(vals)
	}
	return keys, vals
}

// Index is the Dual-Stage hybrid index. Not safe for concurrent mutation.
type Index struct {
	cfg     Config
	dynamic *btree.Tree
	static  *staticStage
	filter  *bloom.Filter
	dynN    int
	live    int
	deletes map[uint64]struct{} // tombstones pending the next merge
	merges  int
	obsx    *obs.Index
}

// New bulk-loads all initial data into the static stage.
func New(cfg Config, keys, vals []uint64) *Index {
	if cfg.MergeThreshold <= 0 || cfg.MergeThreshold >= 1 {
		cfg.MergeThreshold = 0.05
	}
	if cfg.BloomBitsPerKey <= 0 {
		cfg.BloomBitsPerKey = bloom.BitsPerKey
	}
	ix := &Index{
		cfg:     cfg,
		static:  newStatic(cfg.Static, keys, vals),
		deletes: map[uint64]struct{}{},
		live:    len(keys),
	}
	if cfg.Obs != nil {
		ix.obsx = cfg.Obs.Index(cfg.ObsSource, encodingName)
	}
	ix.resetDynamic(len(keys))
	return ix
}

func (ix *Index) resetDynamic(total int) {
	ix.dynamic = btree.New(btree.Config{DefaultEncoding: btree.EncGapped})
	capacity := int(float64(total)*ix.cfg.MergeThreshold) + 16
	ix.filter = bloom.New(capacity, ix.cfg.BloomBitsPerKey)
	ix.dynN = 0
}

// Len returns the number of live keys.
func (ix *Index) Len() int { return ix.live }

// Merges returns how many dynamic→static merges have run.
func (ix *Index) Merges() int { return ix.merges }

// Bytes returns the combined footprint.
func (ix *Index) Bytes() int64 {
	return ix.static.bytes() + ix.dynamic.Bytes() + int64(ix.filter.Bytes())
}

// Lookup returns the value stored under k. The Bloom filter skips the
// dynamic stage for keys that were never written there.
func (ix *Index) Lookup(k uint64) (uint64, bool) {
	if ix.filter.Contains(hashmap.HashU64(k)) {
		if v, ok := ix.dynamic.Lookup(k); ok {
			return v, true
		}
	}
	if len(ix.deletes) > 0 {
		if _, dead := ix.deletes[k]; dead {
			return 0, false
		}
	}
	return ix.static.lookup(k)
}

// Insert stores v under k in the dynamic stage and merges when the stage
// outgrew its share.
func (ix *Index) Insert(k, v uint64) {
	_, wasTomb := ix.deletes[k]
	delete(ix.deletes, k)
	newInDyn := ix.dynamic.Insert(k, v)
	ix.filter.Add(hashmap.HashU64(k))
	if newInDyn {
		ix.dynN++
		if _, inStatic := ix.static.lookup(k); !inStatic || wasTomb {
			ix.live++
		}
	} else if wasTomb {
		ix.live++
	}
	if float64(ix.dynN) > ix.cfg.MergeThreshold*float64(ix.static.n+ix.dynN) {
		ix.merge()
	}
}

// Delete removes k (static copies are tombstoned until the next merge).
func (ix *Index) Delete(k uint64) bool {
	if _, dead := ix.deletes[k]; dead {
		return false
	}
	_, inStatic := ix.static.lookup(k)
	inDyn := ix.dynamic.Delete(k)
	if inStatic {
		ix.deletes[k] = struct{}{}
	}
	if inStatic || inDyn {
		ix.live--
		return true
	}
	return false
}

// Scan visits up to n pairs with key >= from in order, merging both
// stages and honoring tombstones.
func (ix *Index) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	// Pull n candidates from the dynamic stage (it holds few keys).
	type kv struct{ k, v uint64 }
	dyn := make([]kv, 0, min(n, 512))
	ix.dynamic.Scan(from, n, func(k, v uint64) bool {
		dyn = append(dyn, kv{k, v})
		return true
	})
	di := 0
	pos := ix.static.position(from)
	visited := 0
	for visited < n {
		var k, v uint64
		haveStatic := pos < ix.static.n
		haveDyn := di < len(dyn)
		switch {
		case !haveStatic && !haveDyn:
			return visited
		case haveStatic && haveDyn:
			sk, sv := ix.static.at(pos)
			if dyn[di].k <= sk {
				k, v = dyn[di].k, dyn[di].v
				di++
				if dyn[di-1].k == sk {
					pos++ // dynamic shadows static
				}
			} else {
				k, v = sk, sv
				pos++
			}
		case haveStatic:
			k, v = ix.static.at(pos)
			pos++
		default:
			k, v = dyn[di].k, dyn[di].v
			di++
		}
		if _, dead := ix.deletes[k]; dead {
			continue
		}
		visited++
		if !fn(k, v) {
			return visited
		}
	}
	return visited
}

// merge folds the dynamic stage and tombstones into a new static stage.
func (ix *Index) merge() {
	var t0 time.Time
	if ix.obsx != nil {
		t0 = time.Now()
	}
	total := ix.static.n + ix.dynamic.Len()
	keys := make([]uint64, 0, total)
	vals := make([]uint64, 0, total)
	sk, sv := ix.static.appendAll(nil, nil)
	di := 0
	type kv struct{ k, v uint64 }
	dyn := make([]kv, 0, ix.dynamic.Len())
	ix.dynamic.Scan(0, math.MaxInt, func(k, v uint64) bool {
		dyn = append(dyn, kv{k, v})
		return true
	})
	si := 0
	for si < len(sk) || di < len(dyn) {
		var k, v uint64
		switch {
		case si < len(sk) && di < len(dyn):
			if dyn[di].k <= sk[si] {
				k, v = dyn[di].k, dyn[di].v
				if dyn[di].k == sk[si] {
					si++
				}
				di++
			} else {
				k, v = sk[si], sv[si]
				si++
			}
		case si < len(sk):
			k, v = sk[si], sv[si]
			si++
		default:
			k, v = dyn[di].k, dyn[di].v
			di++
		}
		if _, dead := ix.deletes[k]; dead {
			continue
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	ix.static = newStatic(ix.cfg.Static, keys, vals)
	ix.deletes = map[uint64]struct{}{}
	ix.live = len(keys)
	ix.resetDynamic(len(keys))
	ix.merges++
	if x := ix.obsx; x != nil {
		x.RecordMigration(uint32(ix.merges), uint64(ix.merges), obsEncDynamic,
			uint8(ix.cfg.Static), obs.TriggerMerge, false, true, 0,
			time.Since(t0).Nanoseconds())
		x.RecordSnapshot(obs.Snapshot{
			Epoch:      uint32(ix.merges),
			Migrations: 1,
			UsedBytes:  ix.Bytes(),
			Encodings: []obs.EncodingClass{
				{Name: encodingName(uint8(ix.cfg.Static)), Units: int64(ix.static.n), Bytes: ix.static.bytes()},
				{Name: "dynamic", Units: int64(ix.dynN), Bytes: ix.dynamic.Bytes() + int64(ix.filter.Bytes())},
			},
		})
	}
}
