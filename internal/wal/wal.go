// Package wal is the durability layer's write-ahead log: a segmented
// append-only log of CRC32C-framed records with group commit and a
// configurable fsync policy. The log knows nothing about the index that
// uses it — records are (type, payload) pairs stamped with monotonically
// increasing log sequence numbers (LSNs) — and pairs with checkpoint
// files (checkpoint.go) so recovery replays only the tail written after
// the last complete snapshot.
//
// On-disk layout (all integers little-endian):
//
//	dir/
//	  wal-<seq>.seg     log segments, in seq order
//	  ckpt-<lsn>.snap   checkpoint blobs, named by their barrier LSN
//
// Segment = header [magic u64 | version u64 | firstLSN u64 | crc u32],
// then frames. Frame = [crc u32 | len u32 | type u8 | payload]; the CRC
// (Castagnoli) covers len, type and payload, so a torn or zero-filled
// tail fails verification. LSNs are implicit: the i-th frame of a
// segment has LSN firstLSN+i, which keeps frames at 9 bytes of overhead
// and makes cross-segment continuity checkable (the next segment's
// firstLSN must equal the previous segment's end).
//
// Torn-tail policy (applied by Open): an invalid frame in the LAST
// segment is a torn tail — the segment is truncated at the last valid
// frame boundary and the log continues from there; an invalid frame in
// any earlier segment is hard corruption and Open fails with a typed
// error, because records after it were acked durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Record types. The type byte is part of the CRC-protected frame, so a
// replayer can dispatch without trusting the payload.
const (
	// RecNoop carries no payload (torn-tail and framing tests).
	RecNoop uint8 = iota
	// RecInsert is one upsert: [key u64 | value u64].
	RecInsert
	// RecDelete is one delete: [key u64].
	RecDelete
	// RecBatch is a batch of upserts: [n u32 | n × (key u64, value u64)].
	RecBatch
	// RecAdapt is a redo-optional adaptation record: [unit u64 | target u8].
	// Recovery skips these — encoding migrations are re-derived by the
	// adaptation manager, never replayed (Graefe-style separation of
	// structure changes from user writes).
	RecAdapt
	// RecCheckpoint marks a completed checkpoint: [barrier u64]. Purely
	// informational in the log (the checkpoint file is authoritative).
	RecCheckpoint

	numRecTypes
)

// RedoOptional reports whether a record type encodes optional adaptation
// work that recovery skips instead of replaying.
func RedoOptional(typ uint8) bool { return typ == RecAdapt || typ == RecCheckpoint }

// SyncPolicy selects when commits are made durable.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs every commit group before acking — no acked write
	// is ever lost. Concurrent committers share one fsync (group commit).
	SyncAlways SyncPolicy = iota
	// SyncInterval hands records to the OS at commit and fsyncs on a
	// timer: a crash loses at most Interval worth of acked writes (power
	// failure; an index process crash alone loses nothing the OS held).
	SyncInterval
	// SyncOS hands records to the OS at commit and never fsyncs except on
	// rotation and Close — the cheapest policy, durable to process crash
	// but not to power loss.
	SyncOS
)

// String names the policy as used in flags and metrics labels.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOS:
		return "os"
	default:
		return fmt.Sprintf("policy%d", uint8(p))
	}
}

// PolicyByName parses a policy flag value.
func PolicyByName(name string) (SyncPolicy, error) {
	switch name {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "os":
		return SyncOS, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (always|interval|os)", name)
	}
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval fsync period (default 5ms).
	Interval time.Duration
	// SegmentBytes rotates segments past this size (default 16 MiB).
	SegmentBytes int64
	// ObserveFsyncNs, when set, receives every fsync's duration (the
	// durable wiring points it at an obs histogram).
	ObserveFsyncNs func(int64)
	// ObserveGroupN, when set, receives every commit group's record count.
	ObserveGroupN func(int64)
}

func (o *Options) setDefaults() {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
}

// ErrCorrupt is the typed error wrapped by every corruption failure the
// package reports — bad magic, CRC mismatch off the torn tail, broken
// LSN continuity, truncated checkpoint. errors.Is(err, ErrCorrupt)
// distinguishes "the data is damaged" from I/O errors.
var ErrCorrupt = errors.New("wal: corrupt")

const (
	segMagic   = uint64(0x41484957414c3031) // "AHIWAL01"
	segVersion = uint64(1)
	segHdrLen  = 8 + 8 + 8 + 4

	// frameHdrLen is crc u32 + len u32 + type u8.
	frameHdrLen = 4 + 4 + 1

	// MaxRecordBytes bounds one record's payload; larger length fields are
	// treated as corruption (they would otherwise drive huge allocations
	// from a flipped bit).
	MaxRecordBytes = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed record to dst and returns the extended
// slice. The layout is [crc u32 | len u32 | type u8 | payload] with the
// CRC covering everything after itself.
func AppendFrame(dst []byte, typ uint8, payload []byte) []byte {
	off := len(dst)
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[off+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[off:], crc)
	return dst
}

// DecodeFrame decodes the frame at the head of b. It returns the record
// type, its payload (aliasing b), and the total frame size. A short,
// torn, or CRC-invalid frame returns an error wrapping ErrCorrupt; the
// caller decides whether that means "torn tail, truncate here" or "hard
// corruption".
func DecodeFrame(b []byte) (typ uint8, payload []byte, size int, err error) {
	if len(b) < frameHdrLen {
		return 0, nil, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(b))
	}
	n := binary.LittleEndian.Uint32(b[4:])
	if n > MaxRecordBytes {
		return 0, nil, 0, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	size = frameHdrLen + int(n)
	if len(b) < size {
		return 0, nil, 0, fmt.Errorf("%w: truncated record (%d of %d bytes)", ErrCorrupt, len(b), size)
	}
	want := binary.LittleEndian.Uint32(b)
	if got := crc32.Checksum(b[4:size], castagnoli); got != want {
		return 0, nil, 0, fmt.Errorf("%w: record CRC mismatch (got %#x want %#x)", ErrCorrupt, got, want)
	}
	return b[8], b[frameHdrLen:size], size, nil
}

// EncodeInsert renders a RecInsert payload.
func EncodeInsert(dst []byte, k, v uint64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:], k)
	binary.LittleEndian.PutUint64(buf[8:], v)
	return append(dst, buf[:]...)
}

// DecodeInsert parses a RecInsert payload.
func DecodeInsert(p []byte) (k, v uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("%w: insert payload %d bytes", ErrCorrupt, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), nil
}

// EncodeDelete renders a RecDelete payload.
func EncodeDelete(dst []byte, k uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], k)
	return append(dst, buf[:]...)
}

// DecodeDelete parses a RecDelete payload.
func DecodeDelete(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: delete payload %d bytes", ErrCorrupt, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// EncodeBatch renders a RecBatch payload from parallel key/value slices.
func EncodeBatch(dst []byte, keys, vals []uint64) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(keys)))
	dst = append(dst, n[:]...)
	var buf [16]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		binary.LittleEndian.PutUint64(buf[8:], vals[i])
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeBatch parses a RecBatch payload, appending to keys/vals.
func DecodeBatch(p []byte, keys, vals []uint64) ([]uint64, []uint64, error) {
	if len(p) < 4 {
		return keys, vals, fmt.Errorf("%w: batch payload %d bytes", ErrCorrupt, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) != 4+16*n {
		return keys, vals, fmt.Errorf("%w: batch payload %d bytes for count %d", ErrCorrupt, len(p), n)
	}
	for i := 0; i < n; i++ {
		off := 4 + 16*i
		keys = append(keys, binary.LittleEndian.Uint64(p[off:]))
		vals = append(vals, binary.LittleEndian.Uint64(p[off+8:]))
	}
	return keys, vals, nil
}

// EncodeAdapt renders a RecAdapt payload.
func EncodeAdapt(dst []byte, unit uint64, target uint8) []byte {
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:], unit)
	buf[8] = target
	return append(dst, buf[:]...)
}

// DecodeAdapt parses a RecAdapt payload.
func DecodeAdapt(p []byte) (unit uint64, target uint8, err error) {
	if len(p) != 9 {
		return 0, 0, fmt.Errorf("%w: adapt payload %d bytes", ErrCorrupt, len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8], nil
}
