package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats are the log's lifetime counters, exposed to the obs layer as
// ahi_wal_* gauges by the durable index wiring.
type Stats struct {
	Appends         atomic.Int64 // records appended
	AppendedBytes   atomic.Int64 // framed bytes appended
	Writes          atomic.Int64 // write syscalls issued
	Fsyncs          atomic.Int64 // fsync syscalls issued
	FsyncNsTotal    atomic.Int64 // cumulative fsync wall time
	GroupCommits    atomic.Int64 // commit groups acked (SyncAlways)
	GroupedRecords  atomic.Int64 // records acked across those groups
	Rotations       atomic.Int64 // segment rotations
	Checkpoints     atomic.Int64 // checkpoints written
	CheckpointBytes atomic.Int64 // last checkpoint blob size
	SegmentsPruned  atomic.Int64 // segments deleted by checkpoints
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	// Barrier is the newest valid checkpoint's barrier LSN (0: none).
	Barrier uint64
	// Checkpoint is that checkpoint's blob (nil: cold start).
	Checkpoint []byte
	// Segments and Records count the scanned log (records includes those
	// the checkpoint already covers).
	Segments int
	Records  int
	// TornBytes is how much invalid tail was truncated from the last
	// segment (torn/partial writes of a crashed writer).
	TornBytes int64
	// BadCheckpoints counts checkpoint files rejected by validation
	// before a valid one (or none) was found.
	BadCheckpoints int
}

type segMeta struct {
	path     string
	seq      uint64
	firstLSN uint64
	records  int
	// dataBytes is the valid byte length (post-truncation).
	dataBytes int64
}

func (s segMeta) end() uint64 { return s.firstLSN + uint64(s.records) }

// Log is a segmented write-ahead log. Append buffers a record and
// assigns its LSN; Commit makes everything up to an LSN durable per the
// configured policy and blocks until that point is reached (group
// commit: concurrent SyncAlways committers share one fsync). All
// methods are safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	sealed   []segMeta // read-only segments, oldest first
	active   segMeta
	buf      []byte
	bufFirst uint64 // LSN of buf's first record
	nextLSN  uint64 // next LSN to assign
	written  uint64 // highest LSN handed to the OS
	synced   atomic.Uint64
	syncing  bool // an fsync is in flight outside mu
	closed   bool
	sticky   error // first I/O error; the log refuses work after it

	stopIntv chan struct{}
	wg       sync.WaitGroup
	stats    Stats
}

// Open opens (creating if needed) the log in dir: loads the newest valid
// checkpoint, scans the segments, truncates a torn tail, and positions
// the log for appending. Call Replay before the first Append to feed the
// tail into the index.
func Open(dir string, opt Options) (*Log, *RecoveryInfo, error) {
	opt.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	clearTemp(dir)
	info := &RecoveryInfo{}
	if err := loadCheckpointInfo(dir, info); err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt}
	l.cond = sync.NewCond(&l.mu)
	if err := l.scanSegments(info); err != nil {
		return nil, nil, err
	}
	if info.Barrier+1 > l.nextLSN {
		// The checkpoint outran the surviving log (an unsynced tail below
		// the barrier was torn off). Jump the LSN cursor past the barrier
		// so new records are never mistaken for checkpoint-covered ones;
		// the jump forces a fresh segment whose firstLSN documents the gap.
		l.nextLSN = info.Barrier + 1
		if err := l.sealActiveLocked(); err != nil {
			return nil, nil, err
		}
	}
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return nil, nil, err
		}
	}
	l.written = l.nextLSN - 1
	l.synced.Store(l.nextLSN - 1)
	if opt.Policy == SyncInterval {
		l.stopIntv = make(chan struct{})
		l.wg.Add(1)
		go l.intervalSyncer()
	}
	return l, info, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats exposes the log's counters.
func (l *Log) Stats() *Stats { return &l.stats }

// LastLSN returns the highest assigned LSN (0: empty log).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest LSN known durable per the policy's
// strongest guarantee (fsynced).
func (l *Log) DurableLSN() uint64 { return l.synced.Load() }

// Append frames one record into the commit buffer and returns its LSN.
// The record is not durable — not even written — until a Commit covering
// the LSN returns (or, for RecAdapt-style fire-and-forget records, until
// some later commit or sync flushes it).
func (l *Log) Append(typ uint8, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if len(l.buf) == 0 {
		l.bufFirst = l.nextLSN
	}
	before := len(l.buf)
	l.buf = AppendFrame(l.buf, typ, payload)
	lsn := l.nextLSN
	l.nextLSN++
	l.stats.Appends.Add(1)
	l.stats.AppendedBytes.Add(int64(len(l.buf) - before))
	return lsn, nil
}

func (l *Log) usableLocked() error {
	if l.closed {
		return os.ErrClosed
	}
	return l.sticky
}

// Commit makes the log durable up to lsn per the policy and blocks until
// that durability point is reached: written to the OS for SyncOS and
// SyncInterval, fsynced for SyncAlways.
func (l *Log) Commit(lsn uint64) error {
	if l.opt.Policy != SyncAlways {
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.usableLocked(); err != nil {
			return err
		}
		if l.written >= lsn {
			return nil
		}
		return l.flushLocked()
	}
	// Group commit: the first committer to find no fsync in flight
	// becomes the leader — it flushes the whole buffer (its own record
	// plus everything buffered since the last group) and fsyncs outside
	// the lock, so followers keep appending into the next group while the
	// disk works. Followers wait; the leader's broadcast releases every
	// committer whose LSN the group covered.
	l.mu.Lock()
	for l.synced.Load() < lsn {
		if err := l.usableLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		target := l.written
		f := l.f
		l.syncing = true
		l.mu.Unlock()

		crashPoint("pre-fsync")
		start := time.Now()
		serr := f.Sync()
		el := time.Since(start).Nanoseconds()
		crashPoint("post-fsync")
		l.stats.Fsyncs.Add(1)
		l.stats.FsyncNsTotal.Add(el)
		if l.opt.ObserveFsyncNs != nil {
			l.opt.ObserveFsyncNs(el)
		}

		l.mu.Lock()
		l.syncing = false
		if serr != nil {
			l.sticky = serr
			l.cond.Broadcast()
			l.mu.Unlock()
			return serr
		}
		prev := l.synced.Load()
		l.synced.Store(target)
		l.stats.GroupCommits.Add(1)
		l.stats.GroupedRecords.Add(int64(target - prev))
		if l.opt.ObserveGroupN != nil {
			l.opt.ObserveGroupN(int64(target - prev))
		}
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	return nil
}

// AppendCommit is Append followed by Commit.
func (l *Log) AppendCommit(typ uint8, payload []byte) (uint64, error) {
	lsn, err := l.Append(typ, payload)
	if err != nil {
		return 0, err
	}
	return lsn, l.Commit(lsn)
}

// Sync forces an fsync of everything appended so far regardless of
// policy (interval ticks, Close, and checkpoint boundaries use it).
func (l *Log) Sync() error {
	l.mu.Lock()
	for l.syncing {
		if err := l.usableLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		l.cond.Wait()
	}
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	target := l.written
	if l.synced.Load() >= target {
		l.mu.Unlock()
		return nil
	}
	f := l.f
	l.syncing = true
	l.mu.Unlock()

	crashPoint("pre-fsync")
	start := time.Now()
	serr := f.Sync()
	el := time.Since(start).Nanoseconds()
	crashPoint("post-fsync")
	l.stats.Fsyncs.Add(1)
	l.stats.FsyncNsTotal.Add(el)
	if l.opt.ObserveFsyncNs != nil {
		l.opt.ObserveFsyncNs(el)
	}

	l.mu.Lock()
	l.syncing = false
	if serr != nil {
		l.sticky = serr
	} else if l.synced.Load() < target {
		l.synced.Store(target)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return serr
}

func (l *Log) intervalSyncer() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopIntv:
			return
		case <-t.C:
			l.mu.Lock()
			dirty := l.written > l.synced.Load() || len(l.buf) > 0
			l.mu.Unlock()
			if dirty {
				_ = l.Sync()
			}
		}
	}
}

// flushLocked writes the buffered frames to the active segment, rotating
// first when the segment is full. Callers hold mu.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.active.dataBytes > segHdrLen && l.active.dataBytes+int64(len(l.buf)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	crashPoint("pre-write")
	n, err := writeMaybeTorn(l.f, l.buf)
	l.stats.Writes.Add(1)
	crashPoint("post-write")
	if err != nil {
		l.sticky = fmt.Errorf("wal: segment write after %d bytes: %w", n, err)
		return l.sticky
	}
	l.active.dataBytes += int64(len(l.buf))
	l.active.records += int(l.nextLSN - l.bufFirst)
	l.written = l.nextLSN - 1
	l.buf = l.buf[:0]
	return nil
}

// rotateLocked seals the active segment (fsynced so sealed segments are
// always fully durable) and opens the next one. The buffer's first LSN
// becomes the new segment's firstLSN.
func (l *Log) rotateLocked() error {
	for l.syncing {
		l.cond.Wait()
	}
	if err := l.sealActiveLocked(); err != nil {
		return err
	}
	l.stats.Rotations.Add(1)
	return l.createSegmentLocked()
}

func (l *Log) sealActiveLocked() error {
	if l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.sticky = err
		return err
	}
	l.stats.Fsyncs.Add(1)
	l.stats.FsyncNsTotal.Add(time.Since(start).Nanoseconds())
	if err := l.f.Close(); err != nil {
		l.sticky = err
		return err
	}
	if s := l.synced.Load(); s < l.written {
		l.synced.Store(l.written)
	}
	l.sealed = append(l.sealed, l.active)
	l.f = nil
	return nil
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

func ckptName(barrier uint64) string { return fmt.Sprintf("ckpt-%016x.snap", barrier) }

// createSegmentLocked creates the next segment. Its firstLSN is the
// pending buffer's first LSN when rotation races appends, else nextLSN.
func (l *Log) createSegmentLocked() error {
	crashPoint("seg-create")
	first := l.nextLSN
	if len(l.buf) > 0 {
		first = l.bufFirst
	}
	seq := l.active.seq + 1
	if l.f == nil && len(l.sealed) > 0 {
		seq = l.sealed[len(l.sealed)-1].seq + 1
	}
	if seq == 0 {
		seq = 1
	}
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		l.sticky = err
		return err
	}
	hdr := make([]byte, segHdrLen)
	binary.LittleEndian.PutUint64(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:], first)
	binary.LittleEndian.PutUint32(hdr[24:], crc32.Checksum(hdr[:24], castagnoli))
	if _, err := writeMaybeTorn(f, hdr); err != nil {
		f.Close()
		l.sticky = err
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		l.sticky = err
		return err
	}
	l.f = f
	l.active = segMeta{path: path, seq: seq, firstLSN: first, dataBytes: segHdrLen}
	return nil
}

// Close flushes and fsyncs outstanding records and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.stopIntv != nil {
		close(l.stopIntv)
	}
	l.mu.Unlock()
	l.wg.Wait()
	err := l.Sync()
	l.mu.Lock()
	l.closed = true
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// --- Open-time scanning -------------------------------------------------

func clearTemp(dir string) {
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// scanSegments validates every segment, truncates a torn tail off the
// last one, and leaves the log positioned for appending (active segment
// opened, nextLSN set).
func (l *Log) scanSegments(info *RecoveryInfo) error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var metas []segMeta
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		metas = append(metas, segMeta{path: filepath.Join(l.dir, name), seq: seq})
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].seq < metas[j].seq })
	l.nextLSN = 1
	for i := range metas {
		last := i == len(metas)-1
		m, torn, err := scanSegment(metas[i].path, metas[i].seq, last)
		if err != nil {
			return err
		}
		info.TornBytes += torn
		if m == nil {
			// Torn segment creation: the header never fully landed. Only
			// legal on the last segment (scanSegment errors otherwise).
			if err := os.Remove(metas[i].path); err != nil {
				return err
			}
			continue
		}
		if len(l.sealed) > 0 {
			prev := l.sealed[len(l.sealed)-1]
			if m.firstLSN < prev.end() {
				return fmt.Errorf("%w: segment %s firstLSN %d overlaps previous end %d",
					ErrCorrupt, m.path, m.firstLSN, prev.end())
			}
		}
		info.Segments++
		info.Records += m.records
		l.sealed = append(l.sealed, *m)
		l.nextLSN = m.end()
	}
	// Reopen the last surviving segment as the active one.
	if n := len(l.sealed); n > 0 {
		l.active = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		f, err := os.OpenFile(l.active.path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		if err := f.Truncate(l.active.dataBytes); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return err
		}
		l.f = f
	}
	return nil
}

// scanSegment walks one segment's frames. For the last segment, the
// first invalid frame marks the torn tail: the meta's dataBytes stops
// there and torn reports the dropped byte count (the caller truncates).
// For earlier segments an invalid frame is hard corruption. A last
// segment whose header is short or invalid returns (nil, size, nil):
// the creation itself was torn.
func scanSegment(path string, seq uint64, last bool) (*segMeta, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < segHdrLen ||
		binary.LittleEndian.Uint64(b) != segMagic ||
		binary.LittleEndian.Uint32(b[24:]) != crc32.Checksum(b[:24], castagnoli) {
		if last {
			return nil, int64(len(b)), nil
		}
		return nil, 0, fmt.Errorf("%w: segment %s has an invalid header", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint64(b[8:]); v != segVersion {
		return nil, 0, fmt.Errorf("%w: segment %s has unsupported version %d", ErrCorrupt, path, v)
	}
	m := &segMeta{path: path, seq: seq, firstLSN: binary.LittleEndian.Uint64(b[16:]), dataBytes: segHdrLen}
	off := segHdrLen
	for off < len(b) {
		_, _, size, err := DecodeFrame(b[off:])
		if err != nil {
			if last {
				return m, int64(len(b) - off), nil
			}
			return nil, 0, fmt.Errorf("%w: segment %s record %d at offset %d: %v",
				ErrCorrupt, path, m.records, off, err)
		}
		off += size
		m.records++
		m.dataBytes = int64(off)
	}
	return m, 0, nil
}

// Replay streams every record with LSN > barrier to fn, in LSN order.
// Call it after Open and before the first Append; fn receives the
// record's LSN, type and payload (the payload aliases a per-segment
// buffer and must not be retained).
func (l *Log) Replay(barrier uint64, fn func(lsn uint64, typ uint8, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segMeta(nil), l.sealed...)
	if l.f != nil {
		segs = append(segs, l.active)
	}
	l.mu.Unlock()
	for _, m := range segs {
		if m.end() <= barrier+1 {
			continue // fully covered by the checkpoint
		}
		b, err := os.ReadFile(m.path)
		if err != nil {
			return err
		}
		if int64(len(b)) > m.dataBytes {
			b = b[:m.dataBytes]
		}
		off := segHdrLen
		lsn := m.firstLSN
		for off < len(b) {
			typ, payload, size, err := DecodeFrame(b[off:])
			if err != nil {
				return fmt.Errorf("replaying %s at offset %d: %w", m.path, off, err)
			}
			if lsn > barrier {
				if err := fn(lsn, typ, payload); err != nil {
					return err
				}
			}
			off += size
			lsn++
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
