package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint file = [magic u64 | version u64 | barrier u64 | len u64 |
// blob | crc u32], where the trailing CRC (Castagnoli) covers everything
// before it. Files are written to a .tmp name, fsynced, renamed into
// place, and the directory fsynced — a checkpoint either exists whole or
// not at all. The newest file that validates wins; invalid ones (torn
// rename targets cannot exist, but a corrupted disk can still bit-flip)
// are deleted so they are not retried forever.

const (
	ckptMagic   = uint64(0x414849434b503031) // "AHICKP01"
	ckptVersion = uint64(1)
	ckptHdrLen  = 8 + 8 + 8 + 8
)

// WriteCheckpoint atomically persists blob as the checkpoint covering
// every record with LSN ≤ barrier, then prunes segments and older
// checkpoints the new one makes obsolete. The caller guarantees the
// state in blob reflects at least LSNs 1..barrier (the durable index's
// checkpoint barrier protocol does).
func (l *Log) WriteCheckpoint(barrier uint64, blob []byte) error {
	final := filepath.Join(l.dir, ckptName(barrier))
	tmp := final + ".tmp"
	buf := make([]byte, ckptHdrLen, ckptHdrLen+len(blob)+4)
	binary.LittleEndian.PutUint64(buf, ckptMagic)
	binary.LittleEndian.PutUint64(buf[8:], ckptVersion)
	binary.LittleEndian.PutUint64(buf[16:], barrier)
	binary.LittleEndian.PutUint64(buf[24:], uint64(len(blob)))
	buf = append(buf, blob...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf, castagnoli))
	buf = append(buf, crc[:]...)

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	crashPoint("ckpt-write")
	if _, err := writeMaybeTorn(f, buf); err != nil {
		f.Close()
		return err
	}
	crashPoint("ckpt-sync")
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	crashPoint("ckpt-rename")
	l.stats.Checkpoints.Add(1)
	l.stats.CheckpointBytes.Store(int64(len(blob)))

	// The checkpoint is durable; note it in the log (informational) and
	// drop what it supersedes. A crash anywhere in here only leaves
	// harmless extra files for the next checkpoint to collect.
	if _, err := l.AppendCommit(RecCheckpoint, binary.LittleEndian.AppendUint64(nil, barrier)); err != nil {
		return err
	}
	l.prune(barrier)
	return nil
}

// prune deletes sealed segments fully covered by barrier and checkpoint
// files older than the one named by barrier.
func (l *Log) prune(barrier uint64) {
	l.mu.Lock()
	var keep []segMeta
	var drop []string
	for i, m := range l.sealed {
		// A sealed segment is disposable when every LSN it holds is ≤
		// barrier, i.e. the NEXT segment starts at or below barrier+1.
		next := l.active.firstLSN
		if i+1 < len(l.sealed) {
			next = l.sealed[i+1].firstLSN
		}
		if next <= barrier+1 && m.end() <= barrier+1 {
			drop = append(drop, m.path)
		} else {
			keep = append(keep, m)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	crashPoint("ckpt-prune")
	for _, p := range drop {
		if os.Remove(p) == nil {
			l.stats.SegmentsPruned.Add(1)
		}
	}
	ents, _ := os.ReadDir(l.dir)
	for _, e := range ents {
		b, ok := ckptBarrier(e.Name())
		if ok && b < barrier {
			_ = os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	_ = syncDir(l.dir)
}

func ckptBarrier(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	b, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return b, true
}

// loadCheckpointInfo finds the newest valid checkpoint in dir and fills
// info.Barrier/Checkpoint. Invalid candidates are counted and removed.
func loadCheckpointInfo(dir string, info *RecoveryInfo) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var barriers []uint64
	for _, e := range ents {
		if b, ok := ckptBarrier(e.Name()); ok {
			barriers = append(barriers, b)
		}
	}
	sort.Slice(barriers, func(i, j int) bool { return barriers[i] > barriers[j] })
	for _, b := range barriers {
		path := filepath.Join(dir, ckptName(b))
		blob, err := readCheckpointFile(path, b)
		if err != nil {
			info.BadCheckpoints++
			_ = os.Remove(path)
			continue
		}
		info.Barrier = b
		info.Checkpoint = blob
		return nil
	}
	return nil
}

// readCheckpointFile validates one checkpoint file and returns its blob.
func readCheckpointFile(path string, wantBarrier uint64) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < ckptHdrLen+4 {
		return nil, fmt.Errorf("%w: checkpoint %s truncated (%d bytes)", ErrCorrupt, path, len(b))
	}
	if binary.LittleEndian.Uint64(b) != ckptMagic {
		return nil, fmt.Errorf("%w: checkpoint %s has bad magic", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint64(b[8:]); v != ckptVersion {
		return nil, fmt.Errorf("%w: checkpoint %s has unsupported version %d", ErrCorrupt, path, v)
	}
	barrier := binary.LittleEndian.Uint64(b[16:])
	if barrier != wantBarrier {
		return nil, fmt.Errorf("%w: checkpoint %s barrier %d does not match name", ErrCorrupt, path, barrier)
	}
	n := binary.LittleEndian.Uint64(b[24:])
	if uint64(len(b)) != ckptHdrLen+n+4 {
		return nil, fmt.Errorf("%w: checkpoint %s length %d does not match header %d", ErrCorrupt, path, len(b), n)
	}
	end := ckptHdrLen + int(n)
	want := binary.LittleEndian.Uint32(b[end:])
	if got := crc32.Checksum(b[:end], castagnoli); got != want {
		return nil, fmt.Errorf("%w: checkpoint %s CRC mismatch", ErrCorrupt, path)
	}
	blob := make([]byte, n)
	copy(blob, b[ckptHdrLen:end])
	return blob, nil
}
