package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the frame decoder and asserts
// the core safety property: DecodeFrame either returns a frame whose
// re-encoding reproduces the input bytes exactly, or an error wrapping
// ErrCorrupt — never a panic, never an out-of-range size, and never a
// "valid" record that the encoder would not itself have produced.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, RecNoop, nil))
	f.Add(AppendFrame(nil, RecInsert, EncodeInsert(nil, 1, 2)))
	f.Add(AppendFrame(nil, RecBatch, EncodeBatch(nil, []uint64{1, 2}, []uint64{3, 4})))
	torn := AppendFrame(nil, RecDelete, EncodeDelete(nil, 9))
	f.Add(torn[:len(torn)-3])
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, size, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		if size < frameHdrLen || size > len(data) {
			t.Fatalf("size %d out of range for %d input bytes", size, len(data))
		}
		if re := AppendFrame(nil, typ, payload); !bytes.Equal(re, data[:size]) {
			t.Fatal("re-encoded frame differs from accepted input")
		}
		// Typed payloads must decode or reject cleanly too.
		switch typ {
		case RecInsert:
			_, _, _ = DecodeInsert(payload)
		case RecDelete:
			_, _ = DecodeDelete(payload)
		case RecBatch:
			_, _, _ = DecodeBatch(payload, nil, nil)
		case RecAdapt:
			_, _, _ = DecodeAdapt(payload)
		}
	})
}

// FuzzWALStream decodes a whole stream of frames the way segment
// scanning does, asserting forward progress and clean truncation.
func FuzzWALStream(f *testing.F) {
	var seed []byte
	seed = AppendFrame(seed, RecInsert, EncodeInsert(nil, 1, 2))
	seed = AppendFrame(seed, RecNoop, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			_, _, size, err := DecodeFrame(data[off:])
			if err != nil {
				return // torn tail: scanning stops here
			}
			if size <= 0 {
				t.Fatalf("no forward progress at offset %d", off)
			}
			off += size
		}
	})
}
