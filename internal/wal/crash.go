package wal

import (
	"math/rand"
	"os"
	"sync/atomic"
)

// Crash-point injection for the fault harness. Every durability-relevant
// syscall site in this package calls crashPoint (or writeMaybeTorn for
// data writes) with a site label. When armed — only ever in a harness
// child process — the N-th site visit kills the process abruptly with
// CrashExitCode, optionally after writing a torn prefix of the pending
// buffer, simulating a power cut mid-write. Unarmed, the cost is one
// atomic load per site.
//
// Sites, in the order a commit visits them:
//
//	seg-create    creating/rotating a segment file
//	pre-write     before the data write syscall
//	mid-write     the data write itself (torn: a random prefix lands)
//	post-write    after write, before any fsync
//	pre-fsync     before the segment fsync
//	post-fsync    after the segment fsync (commit acked after this)
//	ckpt-write    writing the checkpoint temp file
//	ckpt-sync     fsyncing the checkpoint temp file
//	ckpt-rename   after renaming the checkpoint into place
//	ckpt-prune    while pruning obsolete segments/checkpoints

// CrashExitCode is the child's exit status at an injected crash, so the
// harness can tell injected kills from real failures.
const CrashExitCode = 86

var (
	crashArmed  atomic.Bool
	crashTarget atomic.Int64
	crashCount  atomic.Int64
	crashRNG    atomic.Pointer[rand.Rand]
	crashSite   atomic.Pointer[string]
)

// ArmCrash arms the injector: the target-th syscall site visited from now
// on crashes the process. seed drives the torn-write prefix length. Call
// only from a sacrificial child process.
func ArmCrash(target int64, seed int64) {
	crashCount.Store(0)
	crashTarget.Store(target)
	crashRNG.Store(rand.New(rand.NewSource(seed)))
	crashArmed.Store(true)
}

// DisarmCrash disables the injector (harness calibration runs).
func DisarmCrash() { crashArmed.Store(false) }

// CrashSites reports how many syscall sites have been visited since
// ArmCrash/DisarmCrash — the calibration run's site count bounds the
// harness's randomized crash targets.
func CrashSites() int64 { return crashCount.Load() }

// crashPoint registers one syscall site visit and crashes at the target.
func crashPoint(site string) {
	if !crashArmed.Load() {
		return
	}
	if crashCount.Add(1) == crashTarget.Load() {
		die(site)
	}
}

// writeMaybeTorn performs f.Write(b); at the injected target it writes
// only a random prefix — a torn write — and dies. Returns bytes written
// when not crashing.
func writeMaybeTorn(f *os.File, b []byte) (int, error) {
	if crashArmed.Load() && crashCount.Add(1) == crashTarget.Load() {
		if r := crashRNG.Load(); r != nil && len(b) > 0 {
			if n := r.Intn(len(b)); n > 0 {
				_, _ = f.Write(b[:n])
			}
		}
		die("mid-write")
	}
	return f.Write(b)
}

// die records the site (visible under test) and exits without running
// deferred cleanup — the closest a same-process harness gets to kill -9.
func die(site string) {
	s := site
	crashSite.Store(&s)
	os.Exit(CrashExitCode)
}
