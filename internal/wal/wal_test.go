package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for _, p := range payloads {
		for typ := uint8(0); typ < numRecTypes; typ++ {
			frame := AppendFrame(nil, typ, p)
			gotTyp, gotP, size, err := DecodeFrame(frame)
			if err != nil {
				t.Fatalf("type %d payload %d bytes: %v", typ, len(p), err)
			}
			if gotTyp != typ || size != len(frame) || !bytes.Equal(gotP, p) {
				t.Fatalf("type %d payload %d bytes: round trip mismatch", typ, len(p))
			}
		}
	}
}

// TestFrameCRCEveryOffset flips one bit in every byte of a frame and
// asserts decoding always fails with ErrCorrupt — no single corrupted
// byte may yield a silently valid record.
func TestFrameCRCEveryOffset(t *testing.T) {
	payload := []byte("hello durable world")
	frame := AppendFrame(nil, RecInsert, payload)
	for off := 0; off < len(frame); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[off] ^= 1 << bit
			_, _, _, err := DecodeFrame(mut)
			if err == nil {
				t.Fatalf("bit %d of byte %d flipped: decode succeeded", bit, off)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit %d of byte %d flipped: error %v is not ErrCorrupt", bit, off, err)
			}
		}
	}
}

// TestFrameTornTails decodes every strict prefix of a frame sequence and
// asserts each is rejected at the first incomplete frame.
func TestFrameTornTails(t *testing.T) {
	var full []byte
	full = AppendFrame(full, RecInsert, EncodeInsert(nil, 1, 2))
	full = AppendFrame(full, RecNoop, nil)
	full = AppendFrame(full, RecDelete, EncodeDelete(nil, 3))
	// Sizes of the three complete frames, in order.
	var bounds []int
	for off := 0; off < len(full); {
		_, _, size, err := DecodeFrame(full[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += size
		bounds = append(bounds, off)
	}
	for cut := 0; cut < len(full); cut++ {
		b := full[:cut]
		valid := 0
		for len(b) > 0 {
			_, _, size, err := DecodeFrame(b)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut %d: %v is not ErrCorrupt", cut, err)
				}
				break
			}
			b = b[size:]
			valid++
		}
		want := 0
		for _, end := range bounds {
			if cut >= end {
				want++
			}
		}
		if valid != want {
			t.Fatalf("cut %d: decoded %d complete frames, want %d", cut, valid, want)
		}
	}
}

func TestFrameZeroLengthRecords(t *testing.T) {
	var b []byte
	for i := 0; i < 10; i++ {
		b = AppendFrame(b, RecNoop, nil)
	}
	n := 0
	for len(b) > 0 {
		typ, p, size, err := DecodeFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		if typ != RecNoop || len(p) != 0 {
			t.Fatalf("record %d: type %d payload %d bytes", n, typ, len(p))
		}
		b = b[size:]
		n++
	}
	if n != 10 {
		t.Fatalf("decoded %d records, want 10", n)
	}
}

func TestFrameImplausibleLength(t *testing.T) {
	frame := AppendFrame(nil, RecNoop, nil)
	binary.LittleEndian.PutUint32(frame[4:], MaxRecordBytes+1)
	if _, _, _, err := DecodeFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible length: %v", err)
	}
}

func TestPayloadCodecs(t *testing.T) {
	k, v, err := DecodeInsert(EncodeInsert(nil, 7, 9))
	if err != nil || k != 7 || v != 9 {
		t.Fatalf("insert: %d %d %v", k, v, err)
	}
	dk, err := DecodeDelete(EncodeDelete(nil, 11))
	if err != nil || dk != 11 {
		t.Fatalf("delete: %d %v", dk, err)
	}
	keys := []uint64{1, 5, 9}
	vals := []uint64{2, 6, 10}
	gk, gv, err := DecodeBatch(EncodeBatch(nil, keys, vals), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gk[i] != keys[i] || gv[i] != vals[i] {
			t.Fatalf("batch slot %d: %d %d", i, gk[i], gv[i])
		}
	}
	unit, target, err := DecodeAdapt(EncodeAdapt(nil, 42, 2))
	if err != nil || unit != 42 || target != 2 {
		t.Fatalf("adapt: %d %d %v", unit, target, err)
	}
	for _, bad := range [][]byte{nil, {1}, make([]byte, 15), make([]byte, 17)} {
		if _, _, err := DecodeInsert(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("insert payload %d bytes accepted", len(bad))
		}
	}
	if _, _, err := DecodeBatch([]byte{3, 0, 0, 0}, nil, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("short batch accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOS} {
		got, err := PolicyByName(p.String())
		if err != nil || got != p {
			t.Fatalf("%v: %v %v", p, got, err)
		}
	}
	if _, err := PolicyByName("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func replayAll(t *testing.T, l *Log, barrier uint64) (keys []uint64, types []uint8) {
	t.Helper()
	err := l.Replay(barrier, func(lsn uint64, typ uint8, p []byte) error {
		types = append(types, typ)
		if typ == RecInsert {
			k, _, err := DecodeInsert(p)
			if err != nil {
				return err
			}
			keys = append(keys, k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, types
}

func TestLogAppendReopenReplay(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOS} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, info, err := Open(dir, Options{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if info.Barrier != 0 || info.Checkpoint != nil {
				t.Fatalf("fresh dir has checkpoint: %+v", info)
			}
			const n = 500
			for i := uint64(0); i < n; i++ {
				if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i*2)); err != nil {
					t.Fatal(err)
				}
			}
			if got := l.LastLSN(); got != n {
				t.Fatalf("LastLSN %d want %d", got, n)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, info2, err := Open(dir, Options{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if info2.Records != n {
				t.Fatalf("recovered %d records want %d", info2.Records, n)
			}
			keys, _ := replayAll(t, l2, 0)
			if len(keys) != n {
				t.Fatalf("replayed %d records want %d", len(keys), n)
			}
			for i, k := range keys {
				if k != uint64(i) {
					t.Fatalf("record %d: key %d", i, k)
				}
			}
			// The log must keep assigning monotonically after reopen.
			lsn, err := l2.AppendCommit(RecInsert, EncodeInsert(nil, 999, 999))
			if err != nil || lsn != n+1 {
				t.Fatalf("post-reopen LSN %d want %d (%v)", lsn, n+1, err)
			}
		})
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncOS, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(0); i < n; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if rot := l.Stats().Rotations.Load(); rot == 0 {
		t.Fatal("no rotations at a 512-byte segment size")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Segments < 2 || info.Records != n {
		t.Fatalf("recovered %d segments / %d records", info.Segments, info.Records)
	}
	keys, _ := replayAll(t, l2, 0)
	if len(keys) != n {
		t.Fatalf("replayed %d want %d", len(keys), n)
	}
}

// TestLogTornTailTruncated appends garbage (a torn final write) to the
// last segment and asserts Open drops exactly the garbage.
func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes %d want %d", info.TornBytes, len(torn))
	}
	if keys, _ := replayAll(t, l2, 0); len(keys) != 10 {
		t.Fatalf("replayed %d want 10", len(keys))
	}
}

// TestLogMidCorruptionFatal flips a byte in the middle of a sealed (non
// last) segment: that is not a torn tail and Open must refuse.
func TestLogMidCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	b[segHdrLen+frameHdrLen] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, segName(1)), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: %v", err)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, k, k)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.DurableLSN() != workers*per {
		t.Fatalf("DurableLSN %d want %d", l.DurableLSN(), workers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != workers*per {
		t.Fatalf("recovered %d records", info.Records)
	}
}

func TestCheckpointRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	barrier := l.LastLSN()
	blob := []byte("adaptive state snapshot")
	if err := l.WriteCheckpoint(barrier, blob); err != nil {
		t.Fatal(err)
	}
	if l.Stats().SegmentsPruned.Load() == 0 {
		t.Fatal("checkpoint pruned no segments despite 256-byte segments")
	}
	for i := uint64(100); i < 110; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Barrier != barrier || !bytes.Equal(info.Checkpoint, blob) {
		t.Fatalf("recovered barrier %d blob %q", info.Barrier, info.Checkpoint)
	}
	keys, types := replayAll(t, l2, info.Barrier)
	if len(keys) != 10 || keys[0] != 100 {
		t.Fatalf("replayed tail %v", keys)
	}
	for _, typ := range types {
		if typ == RecCheckpoint && !RedoOptional(typ) {
			t.Fatal("RecCheckpoint must be redo-optional")
		}
	}
}

// TestCheckpointCorruptFallsBack bit-flips the newest checkpoint and
// asserts Open falls back to the full log (barrier 0).
func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(20, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName(20))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open(dir, Options{})
	if err == nil {
		// Pruning may have removed pre-barrier segments; recovery falls
		// back to whatever log survives, but must NOT trust the bad blob.
		if info.Checkpoint != nil {
			t.Fatal("corrupt checkpoint blob was accepted")
		}
		if info.BadCheckpoints != 1 {
			t.Fatalf("BadCheckpoints %d want 1", info.BadCheckpoints)
		}
	}
}

// TestBarrierBeyondTornTail exercises the LSN-jump path: a checkpoint
// whose barrier exceeds the surviving log tail (the unsynced tail died
// with the process) must still yield monotonic LSNs after reopen.
func TestBarrierBeyondTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(10, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the whole post-checkpoint segment tail being torn off:
	// truncate the active segment back to its header.
	var segs []string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			segs = append(segs, e.Name())
		}
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(filepath.Join(dir, last), segHdrLen); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Barrier != 10 {
		t.Fatalf("barrier %d", info.Barrier)
	}
	lsn, err := l2.AppendCommit(RecInsert, EncodeInsert(nil, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= info.Barrier {
		t.Fatalf("post-recovery LSN %d not beyond barrier %d", lsn, info.Barrier)
	}
	if keys, _ := replayAll(t, l2, info.Barrier); len(keys) != 1 {
		t.Fatalf("replayed %d records want 1 (the new one)", len(keys))
	}
}

func TestRedoOptionalTypes(t *testing.T) {
	want := map[uint8]bool{
		RecNoop: false, RecInsert: false, RecDelete: false,
		RecBatch: false, RecAdapt: true, RecCheckpoint: true,
	}
	for typ, w := range want {
		if RedoOptional(typ) != w {
			t.Fatalf("RedoOptional(%d) != %v", typ, w)
		}
	}
}

func TestLogManyReopens(t *testing.T) {
	dir := t.TempDir()
	total := uint64(0)
	for round := 0; round < 5; round++ {
		l, info, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(info.Records) != total {
			t.Fatalf("round %d: recovered %d records want %d", round, info.Records, total)
		}
		for i := 0; i < 30; i++ {
			if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, total, total)); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ckptName(5)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived open: %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecNoop, nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func BenchmarkAppendCommitOS(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncOS})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendCommit(RecInsert, EncodeInsert(nil, uint64(i), uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "wal")
	defer os.RemoveAll(dir)
	l, info, _ := Open(dir, Options{Policy: SyncAlways})
	_ = l.Replay(info.Barrier, func(lsn uint64, typ uint8, p []byte) error { return nil })
	lsn, _ := l.AppendCommit(RecInsert, EncodeInsert(nil, 1, 100))
	fmt.Println(lsn)
	l.Close()
	// Output: 1
}
