package btree

import (
	"ahi/internal/core"
	"ahi/internal/obs"
)

// Flight-recorder integration: when the attached Observability bundle has
// tracing enabled (obs.EnableTracing), every Session binds the tree's
// per-source OpRecorder scope and its operations run through the traced
// variants below. They mirror the fast paths exactly — same cache
// bypass/admission rules, same sampling semantics — but thread an
// obs.OpEvent through the descent so each op leaves with its lifecycle
// stages measured: cache probe (and torn seqlock ways), negative-filter
// rejection, descent depth and B-link right-hops, epoch-pin spins, insert
// write-retries, parked-intent backpressure, and overlap with in-flight
// migrations. Untraced sessions (rec == nil) pay exactly one predictable
// branch per operation.

// lookupLeafProf is lookupLeaf with stage accounting into ev: descent
// depth, right-link chases, epoch-pin spins and negative-filter hits.
func (t *Tree) lookupLeafProf(k uint64, ev *obs.OpEvent) (uint64, *Leaf, bool) {
	slot := t.epochs.pinProf(&ev.PinSpins)
	node := t.root.Load()
	var leaf *Leaf
	for {
		b := node.box.Load()
		if !b.covers(k) && b.next != nil {
			node = b.next
			ev.RightHops++
			continue
		}
		ev.Depth++
		c := b.children[b.childIdx(k)]
		if b.leafLevel() {
			leaf = c.leaf
			break
		}
		node = c.inner
	}
	var lb *leafBox
	for {
		lb = leaf.box.Load()
		if lb.covers(k) || lb.next == nil {
			break
		}
		leaf = lb.next
		ev.RightHops++
	}
	if sp, ok := lb.p.(*succinct); ok && !sp.mayContain(k) {
		t.negHits.Add(1)
		ev.NegFiltered = true
		t.epochs.unpin(slot)
		return 0, leaf, false
	}
	if i, found := lb.p.search(k); found {
		v := lb.p.valAt(i)
		t.epochs.unpin(slot)
		return v, leaf, true
	}
	t.epochs.unpin(slot)
	return 0, leaf, false
}

// beginOp arms the session probe for one traced op and returns its event.
func (s *Session) beginOp(kind obs.OpKind, key uint64) *obs.OpEvent {
	s.recTick++
	s.rec.Begin(&s.probe, kind, key, s.recTick&s.rec.SampleMask() == 0)
	return &s.probe.Ev
}

// finishOp stamps the cross-op signals only the end of the op can see —
// migration overlap (with the exemplar trace seq) and parked-intent
// backpressure — and commits the probe.
func (s *Session) finishOp() {
	ev := &s.probe.Ev
	if s.a.Tree.migActive.Load() > 0 {
		ev.MigOverlap = true
		ev.MigSeq = s.rec.MigrationSeqHint()
	}
	if d := s.a.Mgr.DeferredMigrations(); d > 0 {
		ev.Deferred = int32(d)
	}
	s.probe.End()
}

func (s *Session) lookupTraced(k uint64) (uint64, bool) {
	ev := s.beginOp(obs.OpLookup, k)
	sample := s.sampler.IsSample()
	var v uint64
	var ok bool
	if s.c == nil {
		var leaf *Leaf
		v, leaf, ok = s.a.Tree.lookupLeafProf(k, ev)
		if sample {
			s.sampler.Track(leaf, core.Read, LeafCtx{})
		}
	} else {
		var snap uint64
		served := false
		if sample {
			snap = s.c.Snap(k)
		} else if cv, sn, torn, hit := s.c.ProbeOrSnapProf(k); hit {
			ev.CacheTorn = torn
			ev.CacheHit = true
			v, ok, served = cv, true, true
		} else {
			ev.CacheTorn = torn
			snap = sn
		}
		if !served {
			var leaf *Leaf
			v, leaf, ok = s.a.Tree.lookupLeafProf(k, ev)
			if sample {
				s.sampler.Track(leaf, core.Read, LeafCtx{})
			}
			if ok {
				s.c.Admit(k, v, snap, sample, sample || s.admitGate())
			}
		}
	}
	ev.Found = ok
	s.finishOp()
	return v, ok
}

func (s *Session) insertTraced(k, v uint64) bool {
	ev := s.beginOp(obs.OpInsert, k)
	sample := s.sampler.IsSample()
	inserted, leaf, expanded := s.a.Tree.insertTrackedProf(k, v, &ev.WriteRetries)
	if sample || expanded {
		s.sampler.Track(leaf, core.Insert, LeafCtx{})
	}
	ev.Found = inserted
	s.finishOp()
	return inserted
}

func (s *Session) deleteTraced(k uint64) bool {
	ev := s.beginOp(obs.OpDelete, k)
	sample := s.sampler.IsSample()
	ok := s.a.Tree.Delete(k)
	if sample {
		_, leaf, _ := s.a.Tree.lookupLeafProf(k, ev)
		s.sampler.Track(leaf, core.Delete, LeafCtx{})
	}
	ev.Found = ok
	s.finishOp()
	return ok
}

func (s *Session) scanTraced(from uint64, n int, fn func(k, v uint64) bool) int {
	ev := s.beginOp(obs.OpScan, from)
	var visited int
	if !s.sampler.IsSample() {
		visited = s.a.Tree.Scan(from, n, fn)
	} else {
		visited = s.a.Tree.scanLeaves(from, n, fn, func(l *Leaf) {
			s.sampler.Track(l, core.Scan, LeafCtx{})
		})
	}
	ev.Ops = int32(visited)
	ev.BulkDecode = true
	s.finishOp()
	return visited
}

// scanBatchTraced records one coarse event per fused scan batch: pairs
// delivered (Ops), request count (Fanout), leaves visited, and the
// cross-op signals finishOp stamps.
func (s *Session) scanBatchTraced(reqs []ScanReq, sink ScanSink) int {
	var k0 uint64
	if len(reqs) > 0 {
		k0 = reqs[0].From
	}
	ev := s.beginOp(obs.OpScanBatch, k0)
	n, leaves := s.scanBatchFast(reqs, sink)
	ev.Ops = int32(n)
	ev.Fanout = int32(len(reqs))
	ev.Leaves = int32(leaves)
	ev.BulkDecode = true
	s.finishOp()
	return n
}

// Batch ops record one coarse event per call (kind, size, duration, and
// the cross-op signals) rather than per-key stage detail: the batch
// kernels are interleaved across keys, so per-key attribution would mean
// per-key probes — exactly the overhead batching exists to amortize.

func (s *Session) lookupBatchTraced(keys, vals []uint64, found []bool) {
	var k0 uint64
	if len(keys) > 0 {
		k0 = keys[0]
	}
	ev := s.beginOp(obs.OpLookupBatch, k0)
	s.lookupBatchFast(keys, vals, found)
	ev.Ops = int32(len(keys))
	s.finishOp()
}

func (s *Session) insertBatchTraced(keys, vals []uint64, inserted []bool) {
	var k0 uint64
	if len(keys) > 0 {
		k0 = keys[0]
	}
	ev := s.beginOp(obs.OpInsertBatch, k0)
	s.insertBatchFast(keys, vals, inserted)
	ev.Ops = int32(len(keys))
	s.finishOp()
}
