package btree

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"ahi/internal/core"
)

// scanTree bulk-loads n pairs (keys i*3, vals i*3+1) with the given
// default encoding.
func scanTree(tb testing.TB, enc core.Encoding, n int) (*Tree, []uint64, []uint64) {
	tb.Helper()
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = uint64(i)*3 + 1
	}
	return BulkLoad(Config{DefaultEncoding: enc}, keys, vals), keys, vals
}

// collectElementwise gathers up to n pairs from the element-wise
// reference scan — the oracle every bulk path must match.
func collectElementwise(tr *Tree, from uint64, n int) ([]uint64, []uint64) {
	var ks, vs []uint64
	tr.ScanElementwise(from, n, func(k, v uint64) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

func TestScanBatchMatchesElementwiseOracle(t *testing.T) {
	for _, enc := range []core.Encoding{EncSuccinct, EncPacked, EncGapped} {
		tr, keys, _ := scanTree(t, enc, 40_000)
		rng := rand.New(rand.NewSource(int64(enc) + 1))
		var buf ScanBuffer
		for round := 0; round < 30; round++ {
			nreq := 1 + rng.Intn(12)
			reqs := make([]ScanReq, nreq)
			for i := range reqs {
				// Starts anywhere (incl. between keys and past the max key),
				// lengths from tiny to multi-leaf; a few overlapping pairs.
				reqs[i] = ScanReq{
					From: uint64(rng.Intn(len(keys)*3 + 1000)),
					N:    rng.Intn(1500),
				}
				if i > 0 && rng.Intn(3) == 0 {
					reqs[i].From = reqs[i-1].From + uint64(rng.Intn(64)) // overlap
				}
			}
			buf.Reset(nreq)
			got := tr.ScanBatch(reqs, &buf)
			total := 0
			for i, r := range reqs {
				wk, wv := collectElementwise(tr, r.From, r.N)
				total += len(wk)
				if len(buf.Keys(i)) != len(wk) {
					t.Fatalf("enc=%v round=%d req=%d (%+v): got %d pairs, want %d",
						enc, round, i, r, len(buf.Keys(i)), len(wk))
				}
				for j := range wk {
					if buf.Keys(i)[j] != wk[j] || buf.Vals(i)[j] != wv[j] {
						t.Fatalf("enc=%v req=%d pair %d: got (%d,%d) want (%d,%d)",
							enc, i, j, buf.Keys(i)[j], buf.Vals(i)[j], wk[j], wv[j])
					}
				}
			}
			if got != total {
				t.Fatalf("enc=%v round=%d: ScanBatch returned %d, delivered %d", enc, round, got, total)
			}
		}
	}
}

func TestScanBatchEdgeCases(t *testing.T) {
	tr, keys, _ := scanTree(t, EncSuccinct, 5_000)
	var buf ScanBuffer

	// Empty batch, zero/negative N, start past the last key.
	if n := tr.ScanBatch(nil, &buf); n != 0 {
		t.Fatalf("empty batch delivered %d", n)
	}
	buf.Reset(3)
	n := tr.ScanBatch([]ScanReq{
		{From: 0, N: 0},
		{From: 10, N: -5},
		{From: keys[len(keys)-1] + 1, N: 100},
	}, &buf)
	if n != 0 || buf.Len(0) != 0 || buf.Len(1) != 0 || buf.Len(2) != 0 {
		t.Fatalf("degenerate requests delivered %d pairs", n)
	}

	// A request larger than the key count drains the whole tree.
	buf.Reset(1)
	tr.ScanBatch([]ScanReq{{From: 0, N: len(keys) * 2}}, &buf)
	if buf.Len(0) != len(keys) {
		t.Fatalf("huge request delivered %d pairs, want %d", buf.Len(0), len(keys))
	}

	// Identical Froms must each get their own full result.
	buf.Reset(2)
	tr.ScanBatch([]ScanReq{{From: 300, N: 40}, {From: 300, N: 40}}, &buf)
	for i := 0; i < 2; i++ {
		if buf.Len(i) != 40 {
			t.Fatalf("duplicate req %d delivered %d pairs", i, buf.Len(i))
		}
	}
}

func TestScanMatchesElementwise(t *testing.T) {
	// The compatibility wrapper (callback Scan) now rides the bulk decode
	// kernel; it must stay pair-for-pair identical to the element-wise
	// path, including the early-stop count.
	for _, enc := range []core.Encoding{EncSuccinct, EncPacked, EncGapped} {
		tr, keys, _ := scanTree(t, enc, 10_000)
		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 20; round++ {
			from := uint64(rng.Intn(len(keys) * 3))
			n := 1 + rng.Intn(2000)
			gk, gv := make([]uint64, 0, n), make([]uint64, 0, n)
			got := tr.Scan(from, n, func(k, v uint64) bool {
				gk = append(gk, k)
				gv = append(gv, v)
				return true
			})
			wk, wv := collectElementwise(tr, from, n)
			if got != len(wk) || len(gk) != len(wk) {
				t.Fatalf("enc=%v: Scan visited %d, want %d", enc, got, len(wk))
			}
			for j := range wk {
				if gk[j] != wk[j] || gv[j] != wv[j] {
					t.Fatalf("enc=%v pair %d: got (%d,%d) want (%d,%d)", enc, j, gk[j], gv[j], wk[j], wv[j])
				}
			}
			// Early stop after m pairs reports m (the stopping pair counts).
			m := 1 + rng.Intn(n)
			seen := 0
			got = tr.Scan(from, n, func(k, v uint64) bool {
				seen++
				return seen < m
			})
			want := m
			if len(wk) < m {
				want = len(wk)
			}
			if got != want {
				t.Fatalf("enc=%v early stop: visited %d, want %d", enc, got, want)
			}
		}
	}
}

// TestScanRepinDoesNotBlockReclaim is the satellite-1 regression test: a
// long scan must re-pin its reader slot every scanRepinLeaves hops, so
// leaf images retired while it runs become reclaimable before it ends.
// The churn runs inside the scan callback (same goroutine), making the
// interleaving deterministic: retire a batch of images early in the walk,
// keep scanning far enough to cross several re-pin boundaries, then
// demand reclamation while the scan is still in flight.
func TestScanRepinDoesNotBlockReclaim(t *testing.T) {
	tr, keys, _ := epochTree(t, 60_000)
	var leaves []*Leaf
	tr.WalkLeaves(func(l *Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	if len(leaves) < 3*scanRepinLeaves {
		t.Fatalf("need > %d leaves, got %d", 3*scanRepinLeaves, len(leaves))
	}
	// Churn/check trigger points, far enough apart that the walk crosses
	// several re-pin boundaries in between even at full leaf occupancy.
	churnAt := 10
	checkAt := churnAt + 3*scanRepinLeaves*LeafCap
	var retired int64
	reclaimedBefore := int64(-1)
	scanned := 0
	visited := tr.Scan(0, len(keys), func(k, v uint64) bool {
		scanned++
		switch scanned {
		case churnAt:
			// Retire a pile of images: migrate early (already-visited)
			// leaves back and forth. The auto-reclaim these retirements
			// trigger cannot free anything yet — this scan's current pin
			// predates every retirement.
			before := tr.epochs.retiredTotal.Load()
			for _, l := range leaves[:2*scanRepinLeaves] {
				if tr.MigrateLeaf(l, EncGapped) {
					tr.MigrateLeaf(l, EncSuccinct)
				}
			}
			retired = tr.epochs.retiredTotal.Load() - before
			reclaimedBefore = tr.epochs.reclaimedTotal.Load()
		case checkAt:
			tr.epochs.reclaim()
		}
		return true
	})
	if visited != len(keys) {
		t.Fatalf("churned scan visited %d pairs, want %d", visited, len(keys))
	}
	if retired < int64(2*scanRepinLeaves) {
		t.Fatalf("churn retired only %d images", retired)
	}
	freed := tr.epochs.reclaimedTotal.Load() - reclaimedBefore
	if freed < retired {
		t.Fatalf("mid-scan reclaim freed %d of %d retired images; the scan's pin still blocks the grace window", freed, retired)
	}
}

// TestScanBatchVsIteratorUnderMigrationChurn is the satellite-2 oracle:
// with a migrator goroutine re-encoding random leaves (content-preserving
// by construction), a full iterator walk and a fused ScanBatch over the
// same ranges must both observe the exact static key set, in order. Run
// under -race this also exercises bulk decode against concurrent box
// swaps and epoch reclamation.
func TestScanBatchVsIteratorUnderMigrationChurn(t *testing.T) {
	tr, keys, _ := epochTree(t, 30_000)
	var leaves []*Leaf
	tr.WalkLeaves(func(l *Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(42))
		encs := []core.Encoding{EncGapped, EncPacked, EncSuccinct}
		for {
			select {
			case <-stop:
				return
			default:
			}
			l := leaves[rng.Intn(len(leaves))]
			tr.MigrateLeaf(l, encs[rng.Intn(len(encs))])
		}
	}()

	rng := rand.New(rand.NewSource(7))
	var buf ScanBuffer
	for round := 0; round < 40; round++ {
		nreq := 4
		reqs := make([]ScanReq, nreq)
		for i := range reqs {
			reqs[i] = ScanReq{From: uint64(rng.Intn(len(keys) * 7)), N: 500 + rng.Intn(1000)}
		}
		buf.Reset(nreq)
		tr.ScanBatch(reqs, &buf)
		it := tr.NewIterator()
		for i, r := range reqs {
			got := 0
			for ok := it.Seek(r.From); ok && got < r.N; ok = it.Next() {
				if it.Key() != buf.Keys(i)[got] || it.Value() != buf.Vals(i)[got] {
					t.Errorf("round %d req %d pair %d: iterator (%d,%d) vs ScanBatch (%d,%d)",
						round, i, got, it.Key(), it.Value(), buf.Keys(i)[got], buf.Vals(i)[got])
				}
				got++
				if t.Failed() {
					break
				}
			}
			if got != buf.Len(i) {
				t.Errorf("round %d req %d: iterator saw %d pairs, ScanBatch %d", round, i, got, buf.Len(i))
			}
			if t.Failed() {
				break
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	<-done
}

func TestScanBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tr, _, _ := scanTree(t, EncSuccinct, 40_000)
	reqs := []ScanReq{
		{From: 3_000, N: 256}, {From: 30_000, N: 256},
		{From: 60_000, N: 256}, {From: 90_000, N: 256},
		{From: 91_000, N: 256}, {From: 100_000, N: 256},
		{From: 110_000, N: 256}, {From: 111_000, N: 256},
	}
	var buf ScanBuffer
	// Warm the pools and grow the buffer to steady state.
	for i := 0; i < 4; i++ {
		buf.Reset(len(reqs))
		tr.ScanBatch(reqs, &buf)
	}
	allocs := testing.AllocsPerRun(50, func() {
		buf.Reset(len(reqs))
		tr.ScanBatch(reqs, &buf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScanBatch allocated %.1f/op, want 0", allocs)
	}
}

func TestSessionScanBatchTracksSampledLeaves(t *testing.T) {
	keys := make([]uint64, 20_000)
	vals := make([]uint64, 20_000)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = uint64(i)
	}
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:        Config{DefaultEncoding: EncSuccinct},
		InitialSkip: 1, MinSkip: 1, MaxSkip: 1,
		FixedSkip:    true,
		DisableBloom: true, // count first sightings directly in the store
	}, keys, vals)
	defer a.Close()
	s := a.NewSession()
	var buf ScanBuffer
	buf.Reset(2)
	n := s.ScanBatch([]ScanReq{{From: 0, N: 600}, {From: 30_000, N: 600}}, &buf)
	if n != 1200 {
		t.Fatalf("delivered %d pairs, want 1200", n)
	}
	s.Flush()
	if got := a.Mgr.TrackedUnits(); got == 0 {
		t.Fatal("skip=1 sampled ScanBatch tracked no leaves")
	}
}

func TestScanBatchReturnValuesAndLeafCount(t *testing.T) {
	tr, _, _ := scanTree(t, EncPacked, 10_000)
	var buf ScanBuffer
	buf.Reset(1)
	var tracked int32
	n, leaves := tr.scanBatchTracked([]ScanReq{{From: 0, N: 1000}}, &buf, func(*Leaf) {
		atomic.AddInt32(&tracked, 1)
	})
	if n != 1000 {
		t.Fatalf("delivered %d, want 1000", n)
	}
	if leaves == 0 || int(tracked) != leaves {
		t.Fatalf("leaf count %d, callback saw %d", leaves, tracked)
	}
}

// --- Benchmarks feeding the CI gates -----------------------------------

// benchScanTree: 256k succinct-encoded pairs, the recorded configuration
// of the BENCH_scan.json ratio.
func benchScanTree(b *testing.B) (*Tree, int) {
	n := 1 << 18
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = uint64(i)
	}
	return BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals), n
}

const benchScanLen = 256

func benchReqs(n int, rng *rand.Rand) []ScanReq {
	reqs := make([]ScanReq, 8)
	for i := range reqs {
		reqs[i] = ScanReq{From: uint64(rng.Intn(n)) * 3, N: benchScanLen}
	}
	return reqs
}

// BenchmarkScanBatchSuccinct is the fused bulk path: 8 requests × 256
// pairs per op. Paired with BenchmarkScanElementwiseSuccinct in the same
// run, benchgate -ratio enforces the bulk-vs-element-wise speedup floor;
// -zero-allocs asserts the steady-state loop stays allocation-free.
func BenchmarkScanBatchSuccinct(b *testing.B) {
	tr, n := benchScanTree(b)
	rng := rand.New(rand.NewSource(1))
	reqs := benchReqs(n, rng)
	var buf ScanBuffer
	buf.Reset(len(reqs))
	tr.ScanBatch(reqs, &buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset(len(reqs))
		tr.ScanBatch(reqs, &buf)
	}
}

// BenchmarkScanElementwiseSuccinct is the pre-kernel baseline: the same 8
// ranges served by per-element keyAt/valAt scans.
func BenchmarkScanElementwiseSuccinct(b *testing.B) {
	tr, n := benchScanTree(b)
	rng := rand.New(rand.NewSource(1))
	reqs := benchReqs(n, rng)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			tr.ScanElementwise(r.From, r.N, func(k, v uint64) bool {
				sink += v
				return true
			})
		}
	}
	_ = sink
}

// BenchmarkScanBulkSuccinct is the compatibility wrapper (callback Scan
// on the bulk kernel) over the same ranges — the middle bar of the sweep.
func BenchmarkScanBulkSuccinct(b *testing.B) {
	tr, n := benchScanTree(b)
	rng := rand.New(rand.NewSource(1))
	reqs := benchReqs(n, rng)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			tr.Scan(r.From, r.N, func(k, v uint64) bool {
				sink += v
				return true
			})
		}
	}
	_ = sink
}
