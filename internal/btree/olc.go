// Package btree implements the paper's Hybrid B+-tree (§4.1): a B+-tree
// whose leaf nodes carry one of three encodings — Gapped (the traditional
// slotted layout), Packed (dense arrays), or Succinct (frame-of-reference
// plus bit packing) — and migrate between them at run-time under the
// adaptation manager of internal/core. Concurrency uses Optimistic Lock
// Coupling (Leis et al., §4.1.5).
package btree

import (
	"runtime"
	"sync/atomic"
)

// errRestart signals an optimistic validation failure; operations retry
// from the root. Using a sentinel value instead of panics keeps restart
// handling explicit in the traversal loops.
type errRestartT struct{}

// olcLock is the version lock of Optimistic Lock Coupling: a 64-bit word
// holding a version counter in the upper bits, a locked flag in bit 1 and
// an obsolete flag in bit 0. Readers proceed without writing and validate
// the version afterwards; writers bump the version on unlock.
type olcLock struct {
	v atomic.Uint64
}

const (
	lockBit     = uint64(0b10)
	obsoleteBit = uint64(0b01)
)

func isLocked(v uint64) bool   { return v&lockBit != 0 }
func isObsolete(v uint64) bool { return v&obsoleteBit != 0 }

// readLock returns a stable version snapshot, spinning while a writer
// holds the lock. ok is false when the node is obsolete.
func (l *olcLock) readLock() (version uint64, ok bool) {
	for {
		v := l.v.Load()
		if isLocked(v) {
			runtime.Gosched()
			continue
		}
		if isObsolete(v) {
			return 0, false
		}
		return v, true
	}
}

// check reports whether the version is still valid (no writer intervened).
func (l *olcLock) check(version uint64) bool {
	return l.v.Load() == version
}

// upgrade atomically converts a read snapshot into a write lock.
func (l *olcLock) upgrade(version uint64) bool {
	return l.v.CompareAndSwap(version, version|lockBit)
}

// writeLock acquires the lock pessimistically (spins).
func (l *olcLock) writeLock() bool {
	for {
		v := l.v.Load()
		if isObsolete(v) {
			return false
		}
		if isLocked(v) {
			runtime.Gosched()
			continue
		}
		if l.v.CompareAndSwap(v, v|lockBit) {
			return true
		}
	}
}

// unlock releases a write lock, bumping the version.
func (l *olcLock) unlock() {
	l.v.Add(lockBit) // 0b10 + 0b10 carries into the version bits
}

// unlockObsolete releases the write lock and marks the node dead.
func (l *olcLock) unlockObsolete() {
	l.v.Add(lockBit | obsoleteBit)
}
