package btree

import (
	"sync"
	"testing"
)

func TestIteratorFullOrder(t *testing.T) {
	keys, vals := sortedPairs(30000, 21)
	for name, cfg := range treeConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := BulkLoad(cfg, keys, vals)
			it := tr.NewIterator()
			i := 0
			for ok := it.SeekFirst(); ok; ok = it.Next() {
				if it.Key() != keys[i] || it.Value() != vals[i] {
					t.Fatalf("pos %d: got (%d,%d) want (%d,%d)", i, it.Key(), it.Value(), keys[i], vals[i])
				}
				i++
			}
			if i != len(keys) {
				t.Fatalf("iterated %d of %d", i, len(keys))
			}
			if it.Valid() {
				t.Fatal("exhausted iterator still valid")
			}
		})
	}
}

func TestIteratorSeek(t *testing.T) {
	keys, vals := sortedPairs(10000, 22)
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	it := tr.NewIterator()
	// Exact key.
	if !it.Seek(keys[777]) || it.Key() != keys[777] {
		t.Fatal("exact seek failed")
	}
	// Between keys: successor.
	if !it.Seek(keys[777]+1) || it.Key() != keys[778] {
		t.Fatal("successor seek failed")
	}
	// Before everything.
	if !it.Seek(0) || it.Key() != keys[0] {
		t.Fatal("seek 0 failed")
	}
	// Past the end.
	if it.Seek(keys[len(keys)-1] + 1) {
		t.Fatal("seek past end should be invalid")
	}
	if it.Next() {
		t.Fatal("Next on invalid iterator")
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	it := tr.NewIterator()
	if it.SeekFirst() {
		t.Fatal("empty tree iterator valid")
	}
}

func TestIteratorAcrossEmptyLeaves(t *testing.T) {
	// Delete a whole leaf's worth of keys in the middle: the iterator must
	// hop the empty leaf.
	keys, vals := sortedPairs(1000, 23)
	tr := BulkLoad(Config{DefaultEncoding: EncGapped, Occupancy: 0.5}, keys, vals)
	for i := 200; i < 200+LeafCap/2; i++ {
		tr.Delete(keys[i])
	}
	it := tr.NewIterator()
	count := 0
	var prev uint64
	for ok := it.SeekFirst(); ok; ok = it.Next() {
		if count > 0 && it.Key() <= prev {
			t.Fatal("order broken across empty leaf")
		}
		prev = it.Key()
		count++
	}
	if count != tr.Len() {
		t.Fatalf("iterated %d of %d", count, tr.Len())
	}
}

func TestIteratorConcurrentWithWriters(t *testing.T) {
	keys, vals := sortedPairs(20000, 24)
	tr := BulkLoad(Config{DefaultEncoding: EncGapped}, keys, vals)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := keys[len(keys)-1]
		for {
			select {
			case <-stop:
				return
			default:
			}
			k += 3
			tr.Insert(k, 1)
		}
	}()
	for rep := 0; rep < 50; rep++ {
		it := tr.NewIterator()
		var prev uint64
		n := 0
		for ok := it.Seek(keys[100]); ok && n < 2000; ok = it.Next() {
			if n > 0 && it.Key() <= prev {
				t.Errorf("order violated under concurrency")
				break
			}
			prev = it.Key()
			n++
		}
	}
	close(stop)
	wg.Wait()
}

func TestSessionIteratorTracks(t *testing.T) {
	a, keys, _ := adaptiveFixture(30000, 100, 25)
	s := a.NewSession() // one session: its sampler paces the tracking
	for i := 0; i < 200_000; i++ {
		it := s.NewIterator()
		if !it.Seek(keys[i%500]) {
			t.Fatal("seek failed")
		}
		for j := 0; j < 30 && it.Next(); j++ {
		}
		if a.Mgr.Migrations() > 0 {
			return // tracking led to migrations: done
		}
	}
	t.Fatal("session iterators never produced migrations")
}
