package btree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ahi/internal/core"
	"ahi/internal/obs"
	"ahi/internal/wal"
)

// Durability layer. A durable adaptive tree pairs the in-memory index
// with a write-ahead log (internal/wal): every session write appends its
// record and applies it under a shared checkpoint barrier, then waits
// for the log's commit point before acking — acked-at-commit semantics,
// with the fsync policy deciding what "committed" guarantees. Periodic
// checkpoints snapshot every leaf's keys AND its current encoding plus
// the adaptation manager's sampling state, so recovery restores a warm
// index: encodings come back from the snapshot instead of being
// re-learned, and only the log tail after the checkpoint barrier is
// replayed. Adaptation records (RecAdapt) are logged fire-and-forget and
// skipped on replay — redo-optional work in the sense of Graefe et al.'s
// concurrency control for adaptive indexing: losing them costs at most
// some re-derived migrations, never correctness.
//
// Barrier protocol. durState.mu is the checkpoint barrier: writers hold
// it shared across append+apply, the checkpoint holds it exclusively for
// the instant it cuts the barrier LSN. That guarantees every record with
// LSN ≤ barrier is applied before the snapshot walk starts; records
// appended after the cut may also be partially reflected in the walk,
// which is safe because replay re-applies the whole tail in log order
// and upserts/deletes are idempotent — the recovered tree converges to
// the logged state. Commit waits happen outside the barrier so a
// checkpoint never waits out a disk flush it doesn't need.

// DurabilityConfig enables the write-ahead log on an adaptive tree.
type DurabilityConfig struct {
	// Dir is the log directory (segments + checkpoints). Required.
	Dir string
	// Policy is the fsync policy (default wal.SyncAlways).
	Policy wal.SyncPolicy
	// Interval is the SyncInterval fsync period (default 5ms).
	Interval time.Duration
	// SegmentBytes rotates log segments past this size (default 16 MiB).
	SegmentBytes int64
	// CheckpointEvery triggers a background checkpoint each time this many
	// records have been logged since the last one (0: manual checkpoints
	// only, via Adaptive.Checkpoint).
	CheckpointEvery int64
}

// RecoveryStats reports what opening a durable tree found and did.
type RecoveryStats struct {
	// WarmStart is true when a valid checkpoint restored the tree (leaf
	// encodings and adaptation state came back warm).
	WarmStart bool
	// Barrier is the checkpoint's barrier LSN (0 on a cold start).
	Barrier uint64
	// Segments is the number of log segments scanned.
	Segments int
	// Replayed counts user records (insert/delete/batch entries count as
	// one record each) re-applied from the log tail.
	Replayed int
	// SkippedRedoOptional counts adaptation/checkpoint records the replay
	// skipped instead of re-applying.
	SkippedRedoOptional int
	// TornBytes is the invalid tail truncated off the last segment.
	TornBytes int64
	// WallNs is the total recovery wall time (open + restore + replay).
	WallNs int64
}

// durState is the per-tree durability runtime.
type durState struct {
	log *wal.Log
	// mu is the checkpoint barrier (see the package comment above).
	mu sync.RWMutex

	// ckptMu serializes whole checkpoints.
	ckptMu sync.Mutex
	every  int64
	since  atomic.Int64

	rec RecoveryStats

	ckptErrs atomic.Int64
	ckptCh   chan struct{}
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// walPanic aborts on a write-ahead-log failure: continuing would ack
// writes the log did not capture, silently breaking the durability
// contract. Databases abort here for the same reason.
func walPanic(op string, err error) {
	panic(fmt.Sprintf("btree: wal %s failed (durability contract broken): %v", op, err))
}

func (d *durState) noteRecords(n int64) {
	if d.every <= 0 {
		return
	}
	if d.since.Add(n) >= d.every {
		d.since.Store(0)
		select {
		case d.ckptCh <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
}

// OpenAdaptive opens a durable adaptive tree: it recovers the tree from
// cfg.Dur.Dir (newest valid checkpoint + log-tail replay, cold start on
// an empty directory) and logs every subsequent session write. With
// cfg.Dur == nil it is NewAdaptive with empty recovery stats — callers
// can branch on one constructor.
func OpenAdaptive(cfg AdaptiveConfig) (*Adaptive, *RecoveryStats, error) {
	if cfg.Dur == nil {
		return NewAdaptive(cfg), &RecoveryStats{}, nil
	}
	start := time.Now()
	wopt := wal.Options{
		Policy:       cfg.Dur.Policy,
		Interval:     cfg.Dur.Interval,
		SegmentBytes: cfg.Dur.SegmentBytes,
	}
	if cfg.Obs != nil {
		var lbl []obs.Label
		if cfg.ObsSource != "" {
			lbl = []obs.Label{{K: "source", V: cfg.ObsSource}}
		}
		fsyncHist := cfg.Obs.Reg.Histogram("ahi_wal_fsync_ns", obs.DefaultLatencyBucketsNs, lbl...)
		groupHist := cfg.Obs.Reg.Histogram("ahi_wal_group_records", []int64{1, 2, 4, 8, 16, 32, 64, 128}, lbl...)
		wopt.ObserveFsyncNs = fsyncHist.Observe
		wopt.ObserveGroupN = groupHist.Observe
	}
	log, info, err := wal.Open(cfg.Dur.Dir, wopt)
	if err != nil {
		return nil, nil, err
	}

	cfg.Tree.ExpandOnInsert = !cfg.NoEagerExpand
	var t *Tree
	var cs ckptState
	if info.Checkpoint != nil {
		t, cs, err = treeFromCheckpoint(cfg.Tree, info.Checkpoint)
		if err != nil {
			log.Close()
			return nil, nil, err
		}
	} else {
		t = New(cfg.Tree)
	}
	a := wireAdaptive(t, cfg)
	if info.Checkpoint != nil {
		a.Mgr.RestoreAdaptationState(cs.epoch, int(cs.skip), int(cs.sampleSize))
	}

	// Replay the tail. The replay is single-threaded and must restore the
	// checkpointed encodings, not churn them: eager expand-on-insert is
	// disabled for its duration so a replayed write re-encodes its leaf in
	// place instead of promoting it to Gapped.
	d := &durState{log: log, every: cfg.Dur.CheckpointEvery}
	expand := t.cfg.ExpandOnInsert
	t.cfg.ExpandOnInsert = false
	err = log.Replay(info.Barrier, func(lsn uint64, typ uint8, p []byte) error {
		switch typ {
		case wal.RecInsert:
			k, v, err := wal.DecodeInsert(p)
			if err != nil {
				return err
			}
			t.Insert(k, v)
			d.rec.Replayed++
		case wal.RecDelete:
			k, err := wal.DecodeDelete(p)
			if err != nil {
				return err
			}
			t.Delete(k)
			d.rec.Replayed++
		case wal.RecBatch:
			keys, vals, err := wal.DecodeBatch(p, nil, nil)
			if err != nil {
				return err
			}
			for i, k := range keys {
				t.Insert(k, vals[i])
			}
			d.rec.Replayed += len(keys)
		case wal.RecNoop:
			d.rec.Replayed++
		default:
			if !wal.RedoOptional(typ) {
				return fmt.Errorf("%w: unknown record type %d at LSN %d", wal.ErrCorrupt, typ, lsn)
			}
			d.rec.SkippedRedoOptional++
		}
		return nil
	})
	t.cfg.ExpandOnInsert = expand
	if err != nil {
		log.Close()
		return nil, nil, err
	}

	d.rec.WarmStart = info.Checkpoint != nil
	d.rec.Barrier = info.Barrier
	d.rec.Segments = info.Segments
	d.rec.TornBytes = info.TornBytes
	d.rec.WallNs = time.Since(start).Nanoseconds()
	a.dur = d
	if cfg.Obs != nil {
		registerDurMetrics(cfg.Obs.Reg, cfg.ObsSource, d)
	}
	if d.every > 0 {
		d.ckptCh = make(chan struct{}, 1)
		d.stopCh = make(chan struct{})
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case <-d.stopCh:
					return
				case <-d.ckptCh:
					if err := a.Checkpoint(); err != nil {
						d.ckptErrs.Add(1)
					}
				}
			}
		}()
	}
	stats := d.rec
	return a, &stats, nil
}

// registerDurMetrics exposes the log and recovery counters as ahi_wal_*
// gauges, labelled like every other per-tree series.
func registerDurMetrics(reg *obs.Registry, source string, d *durState) {
	var lbl []obs.Label
	if source != "" {
		lbl = []obs.Label{{K: "source", V: source}}
	}
	st := d.log.Stats()
	for _, m := range []struct {
		name string
		f    func() int64
	}{
		{"ahi_wal_appends_total", st.Appends.Load},
		{"ahi_wal_appended_bytes_total", st.AppendedBytes.Load},
		{"ahi_wal_fsyncs_total", st.Fsyncs.Load},
		{"ahi_wal_fsync_ns_total", st.FsyncNsTotal.Load},
		{"ahi_wal_group_commits_total", st.GroupCommits.Load},
		{"ahi_wal_grouped_records_total", st.GroupedRecords.Load},
		{"ahi_wal_rotations_total", st.Rotations.Load},
		{"ahi_wal_checkpoints_total", st.Checkpoints.Load},
		{"ahi_wal_checkpoint_bytes", st.CheckpointBytes.Load},
		{"ahi_wal_segments_pruned_total", st.SegmentsPruned.Load},
		{"ahi_wal_checkpoint_errors_total", d.ckptErrs.Load},
		{"ahi_wal_recovered_segments", func() int64 { return int64(d.rec.Segments) }},
		{"ahi_wal_replayed_records", func() int64 { return int64(d.rec.Replayed) }},
		{"ahi_wal_redo_optional_skipped", func() int64 { return int64(d.rec.SkippedRedoOptional) }},
		{"ahi_wal_recovery_ns", func() int64 { return d.rec.WallNs }},
		{"ahi_wal_torn_bytes", func() int64 { return d.rec.TornBytes }},
		{"ahi_wal_barrier_lsn", func() int64 { return int64(d.rec.Barrier) }},
	} {
		reg.GaugeFunc(m.name, lbl, m.f)
	}
}

// RecoveryStats returns the stats captured when the tree was opened
// (zero value for a non-durable tree).
func (a *Adaptive) RecoveryStats() RecoveryStats {
	if a.dur == nil {
		return RecoveryStats{}
	}
	return a.dur.rec
}

// WALStats exposes the underlying log's counters (nil without durability).
func (a *Adaptive) WALStats() *wal.Stats {
	if a.dur == nil {
		return nil
	}
	return a.dur.log.Stats()
}

// SyncWAL forces an fsync of everything logged so far (any policy).
func (a *Adaptive) SyncWAL() error {
	if a.dur == nil {
		return nil
	}
	return a.dur.log.Sync()
}

// Checkpoint snapshots the tree (leaf encodings + adaptation state) and
// installs it as the recovery baseline, pruning log segments the
// snapshot supersedes. Safe to call concurrently with ops; concurrent
// checkpoints serialize. No-op without durability.
func (a *Adaptive) Checkpoint() error {
	d := a.dur
	if d == nil {
		return nil
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Cut the barrier: the exclusive lock waits out every in-flight
	// append+apply pair, so all records ≤ barrier are applied when the
	// snapshot walk below starts.
	d.mu.Lock()
	barrier := d.log.LastLSN()
	d.mu.Unlock()
	blob := a.encodeCheckpoint()
	return d.log.WriteCheckpoint(barrier, blob)
}

// logAdapt records a completed encoding migration, fire-and-forget: no
// commit wait (the next group flushes it) and no barrier section (replay
// skips RecAdapt, so checkpoint consistency does not depend on it).
func (d *durState) logAdapt(unit uint64, target uint8) {
	var buf [9]byte
	if _, err := d.log.Append(wal.RecAdapt, wal.EncodeAdapt(buf[:0], unit, target)); err != nil {
		// The log is closed or failed; adaptation records are optional, so
		// losing this one is harmless — writes hitting the same log will
		// surface the failure loudly.
		return
	}
	d.noteRecords(1)
}

// close stops the checkpointer — honoring a checkpoint the threshold
// already promised but the goroutine had not picked up — and closes the
// log (final fsync, so SyncOS/SyncInterval lose nothing on clean exit).
func (d *durState) close(a *Adaptive) {
	if d.stopCh != nil {
		close(d.stopCh)
		d.wg.Wait()
		select {
		case <-d.ckptCh:
			if err := a.Checkpoint(); err != nil {
				d.ckptErrs.Add(1)
			}
		default:
		}
	}
	_ = d.log.Close()
}

// --- Checkpoint blob ----------------------------------------------------
//
// blob = [ver u8 | epoch u32 | skip u32 | sampleSize u32 | leaves u32]
// then per leaf [enc u8 | n u32 | n × (key u64, val u64)], leaves in key
// order, empty leaves omitted. Integrity is the wal checkpoint file's
// whole-file CRC; this layer only versions the schema.

const ckptBlobVersion = 1

type ckptState struct {
	epoch            uint32
	skip, sampleSize uint32
}

// encodeCheckpoint snapshots every leaf under one reader pin. The walk
// sees a consistent-enough image: each leaf's box is immutable, and any
// write racing the walk is > barrier and will be replayed on recovery.
func (a *Adaptive) encodeCheckpoint() []byte {
	t := a.Tree
	blob := make([]byte, 0, 1<<16)
	blob = append(blob, ckptBlobVersion)
	blob = binary.LittleEndian.AppendUint32(blob, a.Mgr.Epoch())
	blob = binary.LittleEndian.AppendUint32(blob, uint32(a.Mgr.SkipLength()))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(a.Mgr.SampleSize()))
	countAt := len(blob)
	blob = append(blob, 0, 0, 0, 0)
	var leaves uint32
	var keys, vals []uint64
	t.WalkLeaves(func(l *Leaf) bool {
		p := l.box.Load().p
		keys, vals = p.appendAll(keys[:0], vals[:0])
		if len(keys) == 0 {
			return true
		}
		leaves++
		blob = append(blob, byte(p.encoding()))
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(keys)))
		for i, k := range keys {
			blob = binary.LittleEndian.AppendUint64(blob, k)
			blob = binary.LittleEndian.AppendUint64(blob, vals[i])
		}
		return true
	})
	binary.LittleEndian.PutUint32(blob[countAt:], leaves)
	return blob
}

// treeFromCheckpoint rebuilds a tree from a checkpoint blob, giving each
// leaf back its recorded encoding — the warm state the adaptation
// manager had learned — instead of the cold default.
func treeFromCheckpoint(cfg Config, blob []byte) (*Tree, ckptState, error) {
	var cs ckptState
	if len(blob) < 17 {
		return nil, cs, fmt.Errorf("%w: checkpoint blob %d bytes", wal.ErrCorrupt, len(blob))
	}
	if blob[0] != ckptBlobVersion {
		return nil, cs, fmt.Errorf("%w: checkpoint blob version %d", wal.ErrCorrupt, blob[0])
	}
	cs.epoch = binary.LittleEndian.Uint32(blob[1:])
	cs.skip = binary.LittleEndian.Uint32(blob[5:])
	cs.sampleSize = binary.LittleEndian.Uint32(blob[9:])
	nLeaves := binary.LittleEndian.Uint32(blob[13:])
	blob = blob[17:]

	if cfg.Occupancy <= 0 || cfg.Occupancy > 1 {
		cfg.Occupancy = 0.70
	}
	if nLeaves == 0 {
		return New(cfg), cs, nil
	}
	t := &Tree{cfg: cfg}
	leaves := make([]*Leaf, 0, nLeaves)
	var seps []uint64
	total := 0
	var prevLast uint64
	for li := uint32(0); li < nLeaves; li++ {
		if len(blob) < 5 {
			return nil, cs, fmt.Errorf("%w: checkpoint blob truncated at leaf %d", wal.ErrCorrupt, li)
		}
		enc := core.Encoding(blob[0])
		if enc > EncGapped {
			return nil, cs, fmt.Errorf("%w: checkpoint leaf %d encoding %d", wal.ErrCorrupt, li, enc)
		}
		n := int(binary.LittleEndian.Uint32(blob[1:]))
		blob = blob[5:]
		if n == 0 || len(blob) < 16*n {
			return nil, cs, fmt.Errorf("%w: checkpoint leaf %d holds %d keys with %d bytes left",
				wal.ErrCorrupt, li, n, len(blob))
		}
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			keys[i] = binary.LittleEndian.Uint64(blob[16*i:])
			vals[i] = binary.LittleEndian.Uint64(blob[16*i+8:])
		}
		blob = blob[16*n:]
		for i := 1; i < n; i++ {
			if keys[i] <= keys[i-1] {
				return nil, cs, fmt.Errorf("%w: checkpoint leaf %d keys out of order", wal.ErrCorrupt, li)
			}
		}
		if li > 0 && keys[0] <= prevLast {
			return nil, cs, fmt.Errorf("%w: checkpoint leaves overlap at leaf %d", wal.ErrCorrupt, li)
		}
		prevLast = keys[n-1]
		leaves = append(leaves, t.newLeaf(t.encode(enc, keys, vals), nil, 0, false))
		if li > 0 {
			seps = append(seps, keys[0])
		}
		total += n
	}
	if len(blob) != 0 {
		return nil, cs, fmt.Errorf("%w: %d trailing bytes after checkpoint leaves", wal.ErrCorrupt, len(blob))
	}
	t.keyCount.Store(int64(total))
	t.assemble(leaves, seps)
	return t, cs, nil
}

// --- Durable session write paths ---------------------------------------

func (s *Session) insertDurable(k, v uint64) bool {
	if s.rec != nil {
		return s.insertDurableTraced(k, v)
	}
	d := s.a.dur
	s.walBuf = wal.EncodeInsert(s.walBuf[:0], k, v)
	d.mu.RLock()
	lsn, err := d.log.Append(wal.RecInsert, s.walBuf)
	if err != nil {
		d.mu.RUnlock()
		walPanic("append", err)
	}
	sample := s.sampler.IsSample()
	inserted, leaf, expanded := s.a.Tree.insertTracked(k, v)
	d.mu.RUnlock()
	if err := d.log.Commit(lsn); err != nil {
		walPanic("commit", err)
	}
	d.noteRecords(1)
	if sample || expanded {
		s.sampler.Track(leaf, core.Insert, LeafCtx{})
	}
	return inserted
}

func (s *Session) insertDurableTraced(k, v uint64) bool {
	ev := s.beginOp(obs.OpInsert, k)
	d := s.a.dur
	s.walBuf = wal.EncodeInsert(s.walBuf[:0], k, v)
	d.mu.RLock()
	lsn, err := d.log.Append(wal.RecInsert, s.walBuf)
	if err != nil {
		d.mu.RUnlock()
		walPanic("append", err)
	}
	sample := s.sampler.IsSample()
	inserted, leaf, expanded := s.a.Tree.insertTrackedProf(k, v, &ev.WriteRetries)
	d.mu.RUnlock()
	cstart := time.Now()
	if err := d.log.Commit(lsn); err != nil {
		walPanic("commit", err)
	}
	ev.FsyncWaitNs = time.Since(cstart).Nanoseconds()
	d.noteRecords(1)
	if sample || expanded {
		s.sampler.Track(leaf, core.Insert, LeafCtx{})
	}
	ev.Found = inserted
	s.finishOp()
	return inserted
}

func (s *Session) deleteDurable(k uint64) bool {
	var ev *obs.OpEvent
	if s.rec != nil {
		ev = s.beginOp(obs.OpDelete, k)
	}
	d := s.a.dur
	s.walBuf = wal.EncodeDelete(s.walBuf[:0], k)
	d.mu.RLock()
	lsn, err := d.log.Append(wal.RecDelete, s.walBuf)
	if err != nil {
		d.mu.RUnlock()
		walPanic("append", err)
	}
	sample := s.sampler.IsSample()
	ok := s.a.Tree.Delete(k)
	d.mu.RUnlock()
	cstart := time.Now()
	if err := d.log.Commit(lsn); err != nil {
		walPanic("commit", err)
	}
	d.noteRecords(1)
	if sample {
		_, leaf, _ := s.a.Tree.lookupLeaf(k)
		s.sampler.Track(leaf, core.Delete, LeafCtx{})
	}
	if ev != nil {
		ev.FsyncWaitNs = time.Since(cstart).Nanoseconds()
		ev.Found = ok
		s.finishOp()
	}
	return ok
}

func (s *Session) insertBatchDurable(keys, vals []uint64, inserted []bool) {
	var ev *obs.OpEvent
	if s.rec != nil {
		var k0 uint64
		if len(keys) > 0 {
			k0 = keys[0]
		}
		ev = s.beginOp(obs.OpInsertBatch, k0)
		ev.Ops = int32(len(keys))
	}
	d := s.a.dur
	s.walBuf = wal.EncodeBatch(s.walBuf[:0], keys, vals)
	d.mu.RLock()
	lsn, err := d.log.Append(wal.RecBatch, s.walBuf)
	if err != nil {
		d.mu.RUnlock()
		walPanic("append", err)
	}
	s.insertBatchFast(keys, vals, inserted)
	d.mu.RUnlock()
	cstart := time.Now()
	if err := d.log.Commit(lsn); err != nil {
		walPanic("commit", err)
	}
	d.noteRecords(int64(len(keys)))
	if ev != nil {
		ev.FsyncWaitNs = time.Since(cstart).Nanoseconds()
		s.finishOp()
	}
}
