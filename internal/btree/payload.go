package btree

import (
	"sync"

	"ahi/internal/bitutil"
	"ahi/internal/bloom"
	"ahi/internal/core"
	"ahi/internal/hashmap"
)

// Leaf encodings, ordered from most to least compact. The adaptation
// manager treats these values as opaque; the CSHF and migration callback
// in adaptive.go give them meaning.
const (
	EncSuccinct core.Encoding = iota
	EncPacked
	EncGapped
)

// EncodingName returns a human-readable encoding name.
func EncodingName(e core.Encoding) string {
	switch e {
	case EncSuccinct:
		return "succinct"
	case EncPacked:
		return "packed"
	case EncGapped:
		return "gapped"
	default:
		return "unknown"
	}
}

// LeafCap is the slot count of a Gapped leaf. 256 key/value slots of 8
// bytes each put the Gapped payload at 4 KiB, matching Table 1.
const LeafCap = 256

// leafHeaderBytes approximates the fixed per-leaf overhead (lock, id,
// pointers, payload header) charged to every encoding's footprint.
const leafHeaderBytes = 64

// payload is one leaf-node encoding. Implementations are single-writer:
// the tree serializes mutations through the leaf's OLC lock.
type payload interface {
	encoding() core.Encoding
	count() int
	keyAt(i int) uint64
	valAt(i int) uint64
	// search returns the position of the first key >= k and whether it
	// equals k.
	search(k uint64) (int, bool)
	// searchFrom is search with a seed: the caller guarantees every key
	// before position from is < k, so the probe may skip the prefix.
	// Sorted batch runs use ascending seeds to scan each leaf once.
	searchFrom(k uint64, from int) (int, bool)
	// bytes is the heap footprint of the payload (excl. leaf header).
	bytes() int
	// appendAll decodes all pairs into the destination slices.
	appendAll(keys, vals []uint64) ([]uint64, []uint64)
	// decodeRange decodes elements [lo, hi) into ks/vs (each at least
	// hi-lo long) and returns the count — the bulk kernel behind scans
	// and iterators. For bit-packed encodings this is a word-at-a-time
	// unpack instead of a per-element Get, which is where sequential
	// access amortizes the compact layout's shift/mask tax.
	decodeRange(lo, hi int, ks, vs []uint64) int
	// touch reads one word per cache line of the payload and returns the
	// sum — a software prefetch. The fused scan walk touches the next
	// leaf's payload while the current leaf decodes, so the upcoming
	// misses overlap with unpack work instead of stalling the walk.
	touch() uint64
}

// touchWords reads one word per cache line of ws and returns the sum —
// the plain-slice half of the payload touch prefetch.
func touchWords(ws []uint64) uint64 {
	var s uint64
	for i := 0; i < len(ws); i += 8 {
		s += ws[i]
	}
	return s
}

// mutablePayload additionally supports in-place mutation. Gapped supports
// all operations natively; Packed updates and deletes in place but
// re-allocates on insert; Succinct re-encodes on any write (which is why
// the adaptive tree eagerly expands written leaves, §5.2).
type mutablePayload interface {
	payload
	insert(k, v uint64) payload // returns the (possibly re-encoded) payload
	update(i int, v uint64)
	remove(i int) payload
}

// --- Gapped -----------------------------------------------------------

// gapped is the traditional universal encoding: fixed-capacity sorted
// arrays with free slots at the end (Figure 8 top).
type gapped struct {
	keys []uint64 // len = count, cap = LeafCap
	vals []uint64
}

func newGapped(keys, vals []uint64) *gapped {
	if len(keys) > LeafCap || len(vals) > LeafCap {
		// Defensive: oversized transients bypass the slab pool.
		g := &gapped{keys: make([]uint64, len(keys)), vals: make([]uint64, len(vals))}
		copy(g.keys, keys)
		copy(g.vals, vals)
		return g
	}
	sl := slabPool.Get().(*kvSlab)
	g := &gapped{keys: sl.keys[:len(keys)], vals: sl.vals[:len(vals)]}
	copy(g.keys, keys)
	copy(g.vals, vals)
	return g
}

// kvSlab is a pair of LeafCap-capacity arrays backing a Gapped payload.
// Slabs cycle between newGapped and the epoch reclaimer (epoch.go): a
// retired Gapped image's arrays return to the pool once its grace period
// has passed, so steady-state migration churn reuses payload memory
// instead of allocating 4 KiB per re-encode.
type kvSlab struct{ keys, vals []uint64 }

var slabPool = sync.Pool{New: func() any {
	return &kvSlab{
		keys: make([]uint64, 0, LeafCap),
		vals: make([]uint64, 0, LeafCap),
	}
}}

// recyclePayload returns a retired payload's buffers to the slab pool,
// reporting whether anything was recycled. Only Gapped payloads carrying
// the uniform slab capacity qualify; Packed and Succinct footprints are
// irregular and fall to the garbage collector. The caller must guarantee
// no reader can still hold the payload (the epoch grace period) — the
// arrays are overwritten by the next newGapped.
func recyclePayload(p payload) bool {
	g, ok := p.(*gapped)
	if !ok || cap(g.keys) != LeafCap || cap(g.vals) != LeafCap {
		return false
	}
	slabPool.Put(&kvSlab{keys: g.keys[:0], vals: g.vals[:0]})
	return true
}

func (g *gapped) encoding() core.Encoding { return EncGapped }
func (g *gapped) count() int              { return len(g.keys) }
func (g *gapped) keyAt(i int) uint64      { return g.keys[i] }
func (g *gapped) valAt(i int) uint64      { return g.vals[i] }
func (g *gapped) bytes() int              { return cap(g.keys)*8 + cap(g.vals)*8 }

func (g *gapped) search(k uint64) (int, bool) { return searchInterp(g.keys, k) }

func (g *gapped) searchFrom(k uint64, from int) (int, bool) {
	pos, ok := searchInterp(g.keys[from:], k)
	return from + pos, ok
}

func (g *gapped) appendAll(keys, vals []uint64) ([]uint64, []uint64) {
	return append(keys, g.keys...), append(vals, g.vals...)
}

func (g *gapped) touch() uint64 { return touchWords(g.keys) + touchWords(g.vals) }

func (g *gapped) decodeRange(lo, hi int, ks, vs []uint64) int {
	copy(ks[:hi-lo], g.keys[lo:hi])
	copy(vs[:hi-lo], g.vals[lo:hi])
	return hi - lo
}

func (g *gapped) insert(k, v uint64) payload {
	pos, found := g.search(k)
	if found {
		g.vals[pos] = v
		return g
	}
	g.keys = append(g.keys, 0)
	g.vals = append(g.vals, 0)
	copy(g.keys[pos+1:], g.keys[pos:])
	copy(g.vals[pos+1:], g.vals[pos:])
	g.keys[pos] = k
	g.vals[pos] = v
	return g
}

func (g *gapped) update(i int, v uint64) { g.vals[i] = v }

func (g *gapped) remove(i int) payload {
	copy(g.keys[i:], g.keys[i+1:])
	copy(g.vals[i:], g.vals[i+1:])
	g.keys = g.keys[:len(g.keys)-1]
	g.vals = g.vals[:len(g.vals)-1]
	return g
}

func (g *gapped) full() bool { return len(g.keys) == LeafCap }

// --- Packed -----------------------------------------------------------

// packed stores keys and values densely, sized exactly (Figure 8 middle).
// Reads and in-place updates are as fast as Gapped; inserts re-allocate.
type packed struct {
	keys []uint64
	vals []uint64
}

func newPacked(keys, vals []uint64) *packed {
	p := &packed{keys: make([]uint64, len(keys)), vals: make([]uint64, len(vals))}
	copy(p.keys, keys)
	copy(p.vals, vals)
	return p
}

func (p *packed) encoding() core.Encoding { return EncPacked }
func (p *packed) count() int              { return len(p.keys) }
func (p *packed) keyAt(i int) uint64      { return p.keys[i] }
func (p *packed) valAt(i int) uint64      { return p.vals[i] }
func (p *packed) bytes() int              { return len(p.keys)*8 + len(p.vals)*8 }

func (p *packed) search(k uint64) (int, bool) { return searchDense(p.keys, k) }

func (p *packed) searchFrom(k uint64, from int) (int, bool) {
	pos, ok := searchDense(p.keys[from:], k)
	return from + pos, ok
}

func (p *packed) appendAll(keys, vals []uint64) ([]uint64, []uint64) {
	return append(keys, p.keys...), append(vals, p.vals...)
}

func (p *packed) touch() uint64 { return touchWords(p.keys) + touchWords(p.vals) }

func (p *packed) decodeRange(lo, hi int, ks, vs []uint64) int {
	copy(ks[:hi-lo], p.keys[lo:hi])
	copy(vs[:hi-lo], p.vals[lo:hi])
	return hi - lo
}

func (p *packed) insert(k, v uint64) payload {
	pos, found := p.search(k)
	if found {
		p.vals[pos] = v
		return p
	}
	nk := make([]uint64, len(p.keys)+1)
	nv := make([]uint64, len(p.vals)+1)
	copy(nk, p.keys[:pos])
	copy(nv, p.vals[:pos])
	nk[pos], nv[pos] = k, v
	copy(nk[pos+1:], p.keys[pos:])
	copy(nv[pos+1:], p.vals[pos:])
	p.keys, p.vals = nk, nv
	return p
}

func (p *packed) update(i int, v uint64) { p.vals[i] = v }

func (p *packed) remove(i int) payload {
	copy(p.keys[i:], p.keys[i+1:])
	copy(p.vals[i:], p.vals[i+1:])
	p.keys = p.keys[:len(p.keys)-1]
	p.vals = p.vals[:len(p.vals)-1]
	return p
}

// --- Scratch ----------------------------------------------------------

// kvScratch is a reusable pair of decode buffers for leaf re-encoding.
// Every payload constructor (newGapped, newPacked, bitutil.NewFORArray)
// copies its input, so the buffers can return to the pool as soon as the
// new payload is built — migrations and succinct writes then allocate
// only the encoded payload, not the transient decoded form. One extra
// slot beyond LeafCap absorbs the insert-then-split order of operations.
type kvScratch struct {
	keys, vals []uint64
}

var kvPool = sync.Pool{New: func() any {
	return &kvScratch{
		keys: make([]uint64, 0, LeafCap+1),
		vals: make([]uint64, 0, LeafCap+1),
	}
}}

// putKV stores the (possibly re-grown) buffers back into the pool.
func putKV(sc *kvScratch, keys, vals []uint64) {
	sc.keys, sc.vals = keys[:0], vals[:0]
	kvPool.Put(sc)
}

// --- Succinct ---------------------------------------------------------

// succinct combines frame-of-reference coding with bit packing for both
// keys and values (Figure 8 bottom). Random access survives, at the cost
// of extra shift/mask work per probe; writes re-encode the whole leaf.
//
// neg, when present, is a negative-lookup filter over the leaf's keys:
// point lookups consult it before paying the bit-unpacking search, so
// misses on cold leaves short-circuit. The filter is immutable once the
// payload is published (writes re-encode the leaf and rebuild it), which
// lets concurrent readers probe without synchronization.
type succinct struct {
	keys    bitutil.FORArray
	vals    bitutil.FORArray
	neg     *bloom.Filter
	negBits int32 // bits/key used to build neg; preserved across rewrites
}

func newSuccinct(keys, vals []uint64) *succinct {
	return &succinct{keys: bitutil.NewFORArray(keys), vals: bitutil.NewFORArray(vals)}
}

// newSuccinctNeg is newSuccinct plus a freshly built negative filter at
// bitsPerKey bits per key (0 disables).
func newSuccinctNeg(keys, vals []uint64, bitsPerKey int) *succinct {
	s := newSuccinct(keys, vals)
	if bitsPerKey > 0 {
		s.neg = negFilterFor(keys, bitsPerKey)
		s.negBits = int32(bitsPerKey)
	}
	return s
}

// negFilterFor builds the per-leaf filter. Key hashes reuse the sampler's
// hash so filter quality matches the rest of the system.
func negFilterFor(keys []uint64, bitsPerKey int) *bloom.Filter {
	f := bloom.New(len(keys), bitsPerKey)
	for _, k := range keys {
		f.Add(hashmap.HashU64(k))
	}
	return f
}

// mayContain is the miss fast path: false means k is definitely absent
// from this leaf. Always true when no filter is attached.
func (s *succinct) mayContain(k uint64) bool {
	return s.neg == nil || s.neg.Contains(hashmap.HashU64(k))
}

func (s *succinct) encoding() core.Encoding { return EncSuccinct }
func (s *succinct) count() int              { return s.keys.Len() }
func (s *succinct) keyAt(i int) uint64      { return s.keys.Get(i) }
func (s *succinct) valAt(i int) uint64      { return s.vals.Get(i) }
func (s *succinct) bytes() int {
	n := s.keys.Bytes() + s.vals.Bytes()
	if s.neg != nil {
		n += s.neg.Bytes() // the filter is part of the leaf's budget charge
	}
	return n
}

func (s *succinct) search(k uint64) (int, bool) {
	pos := s.keys.SearchSkip(k)
	return pos, pos < s.keys.Len() && s.keys.Get(pos) == k
}

func (s *succinct) searchFrom(k uint64, from int) (int, bool) {
	pos := s.keys.SearchSkipFrom(k, from)
	return pos, pos < s.keys.Len() && s.keys.Get(pos) == k
}

func (s *succinct) appendAll(keys, vals []uint64) ([]uint64, []uint64) {
	return s.keys.AppendTo(keys), s.vals.AppendTo(vals)
}

func (s *succinct) touch() uint64 { return s.keys.Touch() + s.vals.Touch() }

func (s *succinct) decodeRange(lo, hi int, ks, vs []uint64) int {
	s.keys.DecodeRange(lo, hi, ks)
	return s.vals.DecodeRange(lo, hi, vs)
}

func (s *succinct) insert(k, v uint64) payload {
	sc := kvPool.Get().(*kvScratch)
	g := gapped{keys: s.keys.AppendTo(sc.keys[:0]), vals: s.vals.AppendTo(sc.vals[:0])}
	g.insert(k, v)
	np := newSuccinctNeg(g.keys, g.vals, int(s.negBits))
	putKV(sc, g.keys, g.vals)
	return np
}

func (s *succinct) update(i int, v uint64) {
	// Re-encode with the new value; FOR arrays are immutable.
	sc := kvPool.Get().(*kvScratch)
	vals := s.vals.AppendTo(sc.vals[:0])
	vals[i] = v
	s.vals = bitutil.NewFORArray(vals)
	putKV(sc, sc.keys, vals)
}

func (s *succinct) remove(i int) payload {
	sc := kvPool.Get().(*kvScratch)
	keys, vals := s.appendAll(sc.keys[:0], sc.vals[:0])
	copy(keys[i:], keys[i+1:])
	copy(vals[i:], vals[i+1:])
	np := newSuccinctNeg(keys[:len(keys)-1], vals[:len(vals)-1], int(s.negBits))
	putKV(sc, keys, vals)
	return np
}

// encodePayload builds a payload of the requested encoding from sorted
// key/value slices — the migration primitive of the Hybrid B+-tree.
func encodePayload(enc core.Encoding, keys, vals []uint64) payload {
	switch enc {
	case EncGapped:
		return newGapped(keys, vals)
	case EncPacked:
		return newPacked(keys, vals)
	default:
		return newSuccinct(keys, vals)
	}
}

// reencode migrates a payload to the target encoding; it returns the input
// unchanged when the encoding already matches. The decode goes through the
// pooled scratch buffers, so concurrent pipeline migrations share a small
// set of transient buffers instead of allocating one per re-encode.
func reencode(p payload, target core.Encoding) payload {
	if p.encoding() == target {
		return p
	}
	sc := kvPool.Get().(*kvScratch)
	keys, vals := p.appendAll(sc.keys[:0], sc.vals[:0])
	np := encodePayload(target, keys, vals)
	putKV(sc, keys, vals)
	return np
}
