package btree

import "sync"

// Batched range-scan serving. A range scan is the access pattern the
// compact leaf encodings are supposed to reward: once positioned, the
// payload is consumed sequentially, so the per-element shift/mask tax of
// the bit-packed layouts can be amortized by decoding whole leaf windows
// at once (payload.decodeRange → bitutil DecodeRange, a word-at-a-time
// unpack). ScanBatch builds on that kernel and fuses multiple concurrent
// range requests over one B-link walk:
//
//   - Request start keys are sorted with the batch.go radix machinery, so
//     the walk visits each leaf at most once and every request attaches to
//     it ("activates") exactly where its range begins.
//   - Each visited leaf is bulk-decoded once into pooled scratch covering
//     the union of the active requests' windows; per-request segments are
//     sliced out of the shared decode, so N overlapping requests cost one
//     unpack, not N.
//   - While the current leaf decodes, the next leaves' box images are
//     loaded through a small lookahead ring (the same AMAC-style idea as
//     the batch-lookup ring): the loads of upcoming payload headers are
//     issued early and overlap in the memory system with the decode work.
//   - Results are delivered through a reusable buffer API (ScanSink /
//     ScanBuffer) — no per-pair callback on the fast path, and a
//     steady-state batch performs zero allocations.
//
// Epoch discipline: the walk runs under a reader pin, re-pinned every
// scanRepinLeaves hops (see scanLeaves) so an arbitrarily long fused walk
// cannot stall leaf reclamation; every leaf image loaded under a pin is
// dropped before that pin is released — only GC-stable *Leaf pointers
// cross a re-pin boundary. Results reflect the per-leaf snapshot at the
// moment the leaf's image is loaded, exactly like Scan and Iterator.

// ScanReq is one range request of a batch: up to N pairs with key >= From
// in ascending key order.
type ScanReq struct {
	From uint64
	N    int
}

// ScanSink receives decoded result segments. Emit may be called several
// times per request — segments arrive in ascending key order within a
// request, while segments of different requests interleave arbitrarily.
// The slices alias reusable scratch: they are valid only for the duration
// of the Emit call and must be consumed (or copied) before returning.
type ScanSink interface {
	Emit(req int, keys, vals []uint64)
}

// ScanBuffer is the reusable concrete sink: it copies emitted segments
// into per-request buffers that persist across Reset, so a steady-state
// caller re-using one buffer allocates nothing.
type ScanBuffer struct {
	ks, vs [][]uint64
}

// Reset prepares the buffer for a batch of n requests, truncating (but
// keeping) the per-request result buffers.
func (b *ScanBuffer) Reset(n int) {
	if cap(b.ks) < n {
		ks := make([][]uint64, n)
		vs := make([][]uint64, n)
		copy(ks, b.ks)
		copy(vs, b.vs)
		b.ks, b.vs = ks, vs
	}
	b.ks, b.vs = b.ks[:n], b.vs[:n]
	for i := range b.ks {
		b.ks[i] = b.ks[i][:0]
		b.vs[i] = b.vs[i][:0]
	}
}

// Emit implements ScanSink.
func (b *ScanBuffer) Emit(req int, keys, vals []uint64) {
	b.ks[req] = append(b.ks[req], keys...)
	b.vs[req] = append(b.vs[req], vals...)
}

// scanDirectSink is an optional ScanSink extension: when a leaf serves a
// single request, the walk asks the sink for a destination window and
// decodes into it directly, skipping the intermediate scratch buffer and
// its copy. Only sinks that retain emitted data can offer this; callback
// adapters stay on the Emit path.
type scanDirectSink interface {
	dst(req, n int) (ks, vs []uint64)
}

// dst implements scanDirectSink: it extends request req's buffers by n
// and returns the fresh tails for the decoder to fill.
func (b *ScanBuffer) dst(req, n int) ([]uint64, []uint64) {
	kb, base := growBy(b.ks[req], n)
	vb, _ := growBy(b.vs[req], n)
	b.ks[req], b.vs[req] = kb, vb
	return kb[base:], vb[base:]
}

// growBy extends s by n elements (reusing capacity when possible) and
// returns the new slice plus the old length.
func growBy(s []uint64, n int) ([]uint64, int) {
	base := len(s)
	if cap(s)-base >= n {
		return s[:base+n], base
	}
	ns := make([]uint64, base+n, (base+n)*2)
	copy(ns, s)
	return ns, base
}

// Len returns the number of pairs collected for request req.
func (b *ScanBuffer) Len(req int) int { return len(b.ks[req]) }

// Keys returns request req's collected keys (valid until the next Reset).
func (b *ScanBuffer) Keys(req int) []uint64 { return b.ks[req] }

// Vals returns request req's collected values.
func (b *ScanBuffer) Vals(req int) []uint64 { return b.vs[req] }

// scanRepinLeaves bounds how many leaf hops one reader pin may cover
// before the scan re-pins with a fresh epoch stamp. Within the window the
// scan pays nothing extra; at the boundary it pays one unpin/pin (two
// atomic stores plus a CAS) and re-loads the next leaf's image — the
// price of never letting a long scan hold the global reclamation epoch
// back for more than a bounded number of leaves.
const scanRepinLeaves = 8

// scanActive is one request currently attached to the walk.
type scanActive struct {
	req int32 // request index (caller's numbering)
	off int32 // start offset within the current leaf
	rem int32 // pairs still wanted
}

// scanScratch is the pooled per-walk state: bulk-decode buffers sized to
// the leaf capacity, the request start keys handed to the radix sort, and
// the active set.
type scanScratch struct {
	ks, vs []uint64
	froms  []uint64
	active []scanActive
	// starts caches each request's pre-descended start leaf (by sorted
	// position). Leaf structs are GC-stable, so the pointers stay valid
	// across re-pins; the box image is re-loaded at use.
	starts []*Leaf
	// sink absorbs payload touch sums so the prefetch loads cannot be
	// dead-code-eliminated.
	sink uint64
}

var scanPool = sync.Pool{New: func() any {
	return &scanScratch{
		ks:     make([]uint64, LeafCap),
		vs:     make([]uint64, LeafCap),
		froms:  make([]uint64, 0, 128),
		active: make([]scanActive, 0, 16),
		starts: make([]*Leaf, 0, 128),
	}
}}

// size grows the decode buffers for an oversized (defensive-path) leaf.
func (sc *scanScratch) size(n int) {
	if len(sc.ks) < n {
		sc.ks = make([]uint64, n)
		sc.vs = make([]uint64, n)
	}
}

// ScanBatch serves len(reqs) range requests through one fused B-link walk
// and returns the total number of pairs delivered. Results stream into
// sink; use a ScanBuffer to collect them without allocation. Requests may
// overlap arbitrarily — overlapping windows share leaf decodes.
func (t *Tree) ScanBatch(reqs []ScanReq, sink ScanSink) int {
	n, _ := t.scanBatchTracked(reqs, sink, nil)
	return n
}

// scanBatchTracked is ScanBatch plus a per-visited-leaf callback for
// access tracking; it returns (pairs delivered, leaves visited).
func (t *Tree) scanBatchTracked(reqs []ScanReq, sink ScanSink, onLeaf func(*Leaf)) (int, int) {
	if len(reqs) == 0 {
		return 0, 0
	}
	sc := scanPool.Get().(*scanScratch)
	bs := batchPool.Get().(*batchScratch)
	froms := sc.froms[:0]
	for _, r := range reqs {
		froms = append(froms, r.From)
	}
	sc.froms = froms
	order := bs.sortOrder(froms)
	direct, _ := sink.(scanDirectSink)

	// Lookahead ring: box images of upcoming leaves, loaded ahead of the
	// current leaf's decode so their cache misses overlap with the unpack
	// work. Entries never outlive the pin they were loaded under.
	var ring [batchRing]*leafBox
	ringN := 0

	active := sc.active[:0]
	delivered, visited := 0, 0
	pi := 0
	hops := 0
	slot := t.epochs.pin()
	var leaf *Leaf
	var box *leafBox

	// Pre-descend every request's start leaf and touch its payload: the
	// descents run back to back, so each request's start-leaf misses are
	// issued while the next descent computes, instead of serializing one
	// cold leaf per request inside the walk. Only the GC-stable *Leaf
	// crosses into the walk; the box image is re-loaded at use.
	starts := sc.starts[:0]
	for _, r := range order {
		if reqs[r].N <= 0 {
			starts = append(starts, nil)
			continue
		}
		l, _ := t.descend(reqs[r].From, nil)
		nl, nb := moveRightLeaf(l, reqs[r].From)
		starts = append(starts, nl)
		sc.sink += nb.p.touch()
	}
	sc.starts = starts

	for pi < len(order) || len(active) > 0 {
		if box == nil {
			// Position at the next pending request's first leaf.
			for pi < len(order) && reqs[order[pi]].N <= 0 {
				pi++
			}
			if pi == len(order) {
				break
			}
			leaf, box = moveRightLeaf(starts[pi], reqs[order[pi]].From)
			ringN = 0
		}
		// Activate every pending request this leaf covers. Sorted starts
		// guarantee each pending From is >= the leaf's lower bound: the
		// walk only moves right past leaves whose range the request's From
		// already cleared.
		for pi < len(order) {
			r := order[pi]
			if reqs[r].N <= 0 {
				pi++
				continue
			}
			if !box.covers(reqs[r].From) {
				break
			}
			pos, _ := box.p.search(reqs[r].From)
			active = append(active, scanActive{req: int32(r), off: int32(pos), rem: int32(reqs[r].N)})
			pi++
		}
		visited++
		if onLeaf != nil {
			onLeaf(leaf)
		}
		cnt := box.p.count()
		if len(active) > 0 {
			// Top up the lookahead ring before decoding, staying inside the
			// current pin window (prefetched images die at a re-pin) and
			// within remaining demand: a short request must not chase box
			// images of leaves the walk will never reach.
			limit := scanRepinLeaves - hops
			if limit > batchRing {
				limit = batchRing
			}
			need := 0
			for _, a := range active {
				if end := int(a.off) + int(a.rem); end > need {
					need = end
				}
			}
			// Leaves past the current one the walk will still visit,
			// estimated at half occupancy so a sparse run of leaves cannot
			// starve the prefetch.
			if ahead := (need - cnt + LeafCap/2 - 1) / (LeafCap / 2); limit > ahead {
				limit = ahead
			}
			tail := box
			if ringN > 0 {
				tail = ring[ringN-1]
			}
			for ringN < limit && tail.next != nil {
				tail = tail.next.box.Load()
				ring[ringN] = tail
				ringN++
			}

			if len(active) == 1 && direct != nil {
				// Single-request leaf (the common case for spread starts):
				// decode straight into the sink's retained buffer, skipping
				// the scratch round-trip and Emit's copy.
				a := &active[0]
				end := int(a.off) + int(a.rem)
				if end > cnt {
					end = cnt
				}
				if m := end - int(a.off); m > 0 {
					dk, dv := direct.dst(int(a.req), m)
					box.p.decodeRange(int(a.off), end, dk, dv)
					delivered += m
					a.rem -= int32(m)
				}
				if a.rem <= 0 || box.next == nil {
					active = active[:0]
				} else {
					a.off = 0
				}
			} else {
				// One bulk decode covers the union of the active windows.
				lo, hi := cnt, 0
				for _, a := range active {
					if int(a.off) < lo {
						lo = int(a.off)
					}
					if end := int(a.off) + int(a.rem); end > hi {
						hi = end
					}
				}
				if hi > cnt {
					hi = cnt
				}
				if hi > lo {
					sc.size(hi - lo)
					box.p.decodeRange(lo, hi, sc.ks, sc.vs)
				}
				live := active[:0]
				for _, a := range active {
					end := int(a.off) + int(a.rem)
					if end > hi {
						end = hi
					}
					if m := end - int(a.off); m > 0 {
						sink.Emit(int(a.req), sc.ks[int(a.off)-lo:end-lo], sc.vs[int(a.off)-lo:end-lo])
						delivered += m
						a.rem -= int32(m)
					}
					if a.rem > 0 && box.next != nil {
						a.off = 0
						live = append(live, a)
					}
				}
				active = live
			}
		}
		// Advance: continue right while requests remain attached; otherwise
		// chain a bounded number of hops toward the next pending request's
		// leaf, falling back to a fresh descent when it is far away.
		if len(active) > 0 {
			nl := box.next
			hops++
			if hops >= scanRepinLeaves {
				// Re-pin: every image loaded under the old stamp — the
				// current box and the ring — is dropped before unpinning.
				// Leaf structs are GC-stable, so nl survives the boundary
				// and its image re-loads under the fresh stamp.
				box = nil
				ringN = 0
				t.epochs.unpin(slot)
				slot = t.epochs.pin()
				hops = 0
			}
			leaf = nl
			if ringN > 0 {
				box = ring[0]
				copy(ring[:ringN-1], ring[1:ringN])
				ringN--
			} else {
				box = nl.box.Load()
			}
		} else if pi < len(order) {
			if nl, nb, ok := chainRight(box, reqs[order[pi]].From); ok {
				hops++
				if hops >= scanRepinLeaves {
					t.epochs.unpin(slot)
					slot = t.epochs.pin()
					hops = 0
					nb = nl.box.Load()
				}
				leaf, box = nl, nb
				ringN = 0
			} else {
				box = nil // fresh descent next iteration
			}
		} else {
			break
		}
	}
	sc.active = active[:0]
	clear(sc.starts) // don't retain leaves beyond the call
	sc.starts = sc.starts[:0]
	scanPool.Put(sc)
	batchPool.Put(bs)
	t.epochs.unpin(slot)
	return delivered, visited
}

// ScanElementwise is the pre-kernel reference scan: one keyAt/valAt
// interface call per pair, exactly the per-element access path ScanBatch
// replaces. Retained as the benchmark baseline (BENCH_scan.json records
// the ratio against it) and as the oracle for decode-kernel tests.
func (t *Tree) ScanElementwise(from uint64, n int, fn func(k, v uint64) bool) int {
	if n <= 0 {
		return 0
	}
	slot := t.epochs.pin()
	defer t.epochs.unpin(slot)
	leaf, _ := t.descend(from, nil)
	_, b := moveRightLeaf(leaf, from)
	visited := 0
	i, _ := b.p.search(from)
	for visited < n {
		for ; i < b.p.count() && visited < n; i++ {
			if !fn(b.p.keyAt(i), b.p.valAt(i)) {
				return visited + 1
			}
			visited++
		}
		if visited >= n || b.next == nil {
			break
		}
		b = b.next.box.Load()
		i = 0
	}
	return visited
}
