package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ahi/internal/core"
)

func treeConfigs() map[string]Config {
	return map[string]Config{
		"gapped":   {DefaultEncoding: EncGapped},
		"packed":   {DefaultEncoding: EncPacked},
		"succinct": {DefaultEncoding: EncSuccinct},
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	if _, ok := tr.Lookup(7); ok {
		t.Fatal("empty tree found a key")
	}
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if n := tr.Scan(0, 10, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatal("empty tree scanned something")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookupAllEncodings(t *testing.T) {
	for name, cfg := range treeConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(cfg)
			rng := rand.New(rand.NewSource(42))
			ref := map[uint64]uint64{}
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(100000))
				v := rng.Uint64()
				wantNew := true
				if _, dup := ref[k]; dup {
					wantNew = false
				}
				if got := tr.Insert(k, v); got != wantNew {
					t.Fatalf("Insert(%d) new=%v want %v", k, got, wantNew)
				}
				ref[k] = v
			}
			if tr.Len() != len(ref) {
				t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
			}
			for k, v := range ref {
				got, ok := tr.Lookup(k)
				if !ok || got != v {
					t.Fatalf("Lookup(%d)=(%d,%v) want %d", k, got, ok, v)
				}
			}
			if _, ok := tr.Lookup(1 << 60); ok {
				t.Fatal("phantom key")
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Every leaf must still carry the configured encoding.
			s, p, g := tr.LeafCounts()
			switch cfg.DefaultEncoding {
			case EncSuccinct:
				if p != 0 || g != 0 {
					t.Fatalf("foreign encodings appeared: %d %d %d", s, p, g)
				}
			case EncPacked:
				if s != 0 || g != 0 {
					t.Fatalf("foreign encodings appeared: %d %d %d", s, p, g)
				}
			case EncGapped:
				if s != 0 || p != 0 {
					t.Fatalf("foreign encodings appeared: %d %d %d", s, p, g)
				}
			}
		})
	}
}

func TestBulkLoadAndLookup(t *testing.T) {
	for name, cfg := range treeConfigs() {
		t.Run(name, func(t *testing.T) {
			keys, vals := sortedPairs(50000, 7)
			tr := BulkLoad(cfg, keys, vals)
			if tr.Len() != len(keys) {
				t.Fatalf("Len=%d", tr.Len())
			}
			for i := 0; i < len(keys); i += 97 {
				v, ok := tr.Lookup(keys[i])
				if !ok || v != vals[i] {
					t.Fatalf("Lookup(%d) failed", keys[i])
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBulkLoadOccupancy(t *testing.T) {
	keys, vals := sortedPairs(10000, 8)
	tr := BulkLoad(Config{DefaultEncoding: EncGapped, Occupancy: 0.5}, keys, vals)
	_, _, g := tr.LeafCounts()
	wantLeaves := (10000 + LeafCap/2 - 1) / (LeafCap / 2)
	if int(g) != wantLeaves {
		t.Fatalf("leaves=%d want %d", g, wantLeaves)
	}
}

func TestScan(t *testing.T) {
	keys, vals := sortedPairs(30000, 9)
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	// Scan from an existing key.
	start := 12345
	var got []uint64
	n := tr.Scan(keys[start], 100, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if n != 100 || len(got) != 100 {
		t.Fatalf("scan visited %d", n)
	}
	for i := 0; i < 100; i++ {
		if got[i] != keys[start+i] {
			t.Fatalf("scan[%d]=%d want %d", i, got[i], keys[start+i])
		}
	}
	// Scan from a non-existing key lands on the successor.
	n = tr.Scan(keys[start]+1, 1, func(k, v uint64) bool {
		if k != keys[start+1] {
			t.Fatalf("successor scan got %d want %d", k, keys[start+1])
		}
		return true
	})
	if n != 1 {
		t.Fatal("successor scan empty")
	}
	// Early stop.
	count := 0
	tr.Scan(keys[0], 1000, func(k, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Scan past the end.
	n = tr.Scan(keys[len(keys)-1]+1, 10, func(k, v uint64) bool { return true })
	if n != 0 {
		t.Fatalf("scan past end visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	keys, vals := sortedPairs(5000, 10)
	tr := BulkLoad(Config{DefaultEncoding: EncGapped}, keys, vals)
	for i := 0; i < len(keys); i += 2 {
		if !tr.Delete(keys[i]) {
			t.Fatalf("Delete(%d) failed", keys[i])
		}
	}
	if tr.Delete(keys[0]) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 2500 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i, k := range keys {
		_, ok := tr.Lookup(k)
		if (i%2 == 0) == ok {
			t.Fatalf("Lookup(%d) after delete = %v", k, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwrite(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncPacked})
	tr.Insert(5, 1)
	if tr.Insert(5, 2) {
		t.Fatal("overwrite reported as new")
	}
	if v, _ := tr.Lookup(5); v != 2 {
		t.Fatalf("v=%d", v)
	}
	if tr.Len() != 1 {
		t.Fatal("Len grew on overwrite")
	}
}

func TestSequentialInsertGrowsTree(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	const n = 100000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := uint64(0); i < n; i += 111 {
		if v, ok := tr.Lookup(i); !ok || v != i*2 {
			t.Fatalf("Lookup(%d)", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseInsert(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	for i := 50000; i > 0; i-- {
		tr.Insert(uint64(i), uint64(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := tr.Scan(0, 10, func(k, v uint64) bool { return true })
	if n != 10 {
		t.Fatal("scan after reverse insert")
	}
}

func TestMigrateLeafAccounting(t *testing.T) {
	keys, vals := sortedPairs(10000, 11)
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	before := tr.Bytes()
	// Migrate every leaf to gapped and back.
	var leaves []*Leaf
	node := tr.root.Load()
	for {
		b := node.box.Load()
		if b.leafLevel() {
			leaf := b.children[0].leaf
			for leaf != nil {
				leaves = append(leaves, leaf)
				leaf = leaf.box.Load().next
			}
			break
		}
		node = b.children[0].inner
	}
	for _, l := range leaves {
		if !tr.MigrateLeaf(l, EncGapped) {
			t.Fatal("migration failed")
		}
		if tr.MigrateLeaf(l, EncGapped) {
			t.Fatal("no-op migration reported success")
		}
	}
	mid := tr.Bytes()
	if mid <= before {
		t.Fatalf("expansion did not grow the tree: %d -> %d", before, mid)
	}
	s, p, g := tr.LeafCounts()
	if s != 0 || p != 0 || int(g) != len(leaves) {
		t.Fatalf("counts after expansion: %d %d %d", s, p, g)
	}
	for _, l := range leaves {
		tr.MigrateLeaf(l, EncSuccinct)
	}
	after := tr.Bytes()
	if after != before {
		t.Fatalf("round-trip migration changed size: %d -> %d", before, after)
	}
	if tr.Expansions() != int64(len(leaves)) || tr.Compactions() != int64(len(leaves)) {
		t.Fatalf("migration counters: %d %d", tr.Expansions(), tr.Compactions())
	}
	// Data intact.
	for i := 0; i < len(keys); i += 501 {
		if v, ok := tr.Lookup(keys[i]); !ok || v != vals[i] {
			t.Fatalf("data lost at %d", keys[i])
		}
	}
}

func TestExpandOnInsert(t *testing.T) {
	keys, vals := sortedPairs(10000, 12)
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct, ExpandOnInsert: true}, keys, vals)
	s0, _, g0 := tr.LeafCounts()
	if g0 != 0 {
		t.Fatal("bulk load should start succinct")
	}
	// Insert into some leaf: that leaf must become gapped.
	tr.Insert(keys[500]+1, 1)
	s1, _, g1 := tr.LeafCounts()
	if g1 != 1 || s1 != s0-1 {
		t.Fatalf("eager expansion missing: succ %d->%d gapped %d->%d", s0, s1, g0, g1)
	}
	if tr.Expansions() == 0 {
		t.Fatal("expansion not counted")
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	const workers = 8
	const perWorker = 30000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := uint64(w)<<32 | uint64(i)
				tr.Insert(k, k+1)
				if i%5 == 0 {
					probe := uint64(w)<<32 | uint64(rng.Intn(i+1))
					if v, ok := tr.Lookup(probe); !ok || v != probe+1 {
						t.Errorf("worker %d: Lookup(%d) = (%d,%v)", w, probe, v, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if tr.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", tr.Len(), workers*perWorker)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWithMigrations(t *testing.T) {
	keys, vals := sortedPairs(50000, 13)
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	var leaves []*Leaf
	{
		node := tr.root.Load()
		for {
			b := node.box.Load()
			if b.leafLevel() {
				leaf := b.children[0].leaf
				for leaf != nil {
					leaves = append(leaves, leaf)
					leaf = leaf.box.Load().next
				}
				break
			}
			node = b.children[0].inner
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	migratorDone := make(chan struct{})
	// Migrator goroutine flips encodings continuously until the workers
	// finish (it must not join the workers' WaitGroup, which gates stop).
	go func() {
		defer close(migratorDone)
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			l := leaves[rng.Intn(len(leaves))]
			tr.MigrateLeaf(l, core.Encoding(rng.Intn(3)))
		}
	}()
	// Readers and writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < 20000; i++ {
				j := rng.Intn(len(keys))
				if v, ok := tr.Lookup(keys[j]); !ok || v != vals[j] {
					// Value may have been overwritten by writer below;
					// writers use vals[j] so any success value matches.
					t.Errorf("lost key %d", keys[j])
					return
				}
				if i%10 == 0 {
					tr.Insert(keys[j], vals[j])
				}
				if i%17 == 0 {
					tr.Scan(keys[j], 20, func(k, v uint64) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-migratorDone
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanAcrossSplits(t *testing.T) {
	// Scans running while inserts split leaves must stay ordered.
	tr := New(Config{DefaultEncoding: EncGapped})
	for i := uint64(0); i < 10000; i += 2 {
		tr.Insert(i, i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1); i < 10000; i += 2 {
			tr.Insert(i, i)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 200; r++ {
			var prev uint64
			first := true
			tr.Scan(0, 500, func(k, v uint64) bool {
				if !first && k <= prev {
					t.Errorf("scan order violated: %d after %d", k, prev)
					return false
				}
				prev, first = k, false
				return true
			})
		}
	}()
	wg.Wait()
}

func TestTreeBytesTracksReality(t *testing.T) {
	keys, vals := sortedPairs(20000, 14)
	for name, cfg := range treeConfigs() {
		tr := BulkLoad(cfg, keys, vals)
		sb, pb, gb := tr.LeafBytes()
		total := tr.Bytes()
		if total <= 0 || sb+pb+gb > total {
			t.Fatalf("%s: inconsistent byte accounting %d %d %d vs %d", name, sb, pb, gb, total)
		}
	}
	// Succinct tree must be substantially smaller than gapped.
	ts := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	tg := BulkLoad(Config{DefaultEncoding: EncGapped}, keys, vals)
	if float64(ts.Bytes()) > 0.7*float64(tg.Bytes()) {
		t.Fatalf("succinct tree not compact: %d vs %d", ts.Bytes(), tg.Bytes())
	}
}

func TestValidateDetectsExpectedLayout(t *testing.T) {
	keys, vals := sortedPairs(100000, 15)
	tr := BulkLoad(Config{DefaultEncoding: EncPacked}, keys, vals)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check ordering via full scan.
	var prev uint64
	first := true
	n := tr.Scan(0, len(keys)+10, func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violated")
		}
		prev, first = k, false
		return true
	})
	if n != len(keys) {
		t.Fatalf("scan visited %d of %d", n, len(keys))
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 100000; op++ {
		k := uint64(rng.Intn(30000))
		switch rng.Intn(5) {
		case 0, 1, 2:
			v := rng.Uint64()
			tr.Insert(k, v)
			ref[k] = v
		case 3:
			got := tr.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, got, want)
			}
			delete(ref, k)
		case 4:
			got, ok := tr.Lookup(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d)=(%d,%v) want (%d,%v)", op, k, got, ok, want, wok)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
	}
	// Full-order check against the sorted reference.
	var wantKeys []uint64
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	i := 0
	tr.Scan(0, len(ref)+1, func(k, v uint64) bool {
		if k != wantKeys[i] || v != ref[k] {
			t.Fatalf("scan mismatch at %d", i)
		}
		i++
		return true
	})
	if i != len(wantKeys) {
		t.Fatalf("scan visited %d of %d", i, len(wantKeys))
	}
}
