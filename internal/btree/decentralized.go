package btree

import (
	"sync/atomic"

	"ahi/internal/topk"
)

// This file implements the decentralized tracking scheme the paper's §3
// describes and argues against: every index part carries an embedded
// information unit (IU) with access counters, every access updates it, and
// adaptation sweeps the whole structure. It exists as a measurable
// counterpoint to the centralized sampling manager — the ablation shows
// the two costs the paper predicts: per-access tracking overhead on every
// query and IU space spent even on never-accessed nodes.

// iu is the per-leaf information unit of the decentralized scheme.
type iu struct {
	reads  atomic.Uint32
	writes atomic.Uint32
}

// iuBytes is the space the embedded IU adds to every leaf.
const iuBytes = 8

// Decentralized is a Hybrid B+-tree with embedded per-leaf IUs instead of
// the sampling manager. Adaptation runs every AdaptEvery accesses: the
// top-k leaves by IU count expand, the rest compact, counters halve
// (aging). All methods are safe for a single writer with concurrent
// readers; the ablation drives it single-threaded like its centralized
// counterpart.
type Decentralized struct {
	Tree *Tree
	ius  map[*Leaf]*iu

	// AdaptEvery is the access count between adaptation sweeps.
	AdaptEvery int64
	// MemoryBudget bounds the tree size in bytes (0 = unbounded).
	MemoryBudget int64

	accesses    atomic.Int64
	adaptations int64
}

// NewDecentralized bulk-loads a decentralized-tracking tree.
func NewDecentralized(cfg Config, keys, vals []uint64, adaptEvery int64, budget int64) *Decentralized {
	cfg.ExpandOnInsert = true
	d := &Decentralized{
		Tree:         BulkLoad(cfg, keys, vals),
		ius:          map[*Leaf]*iu{},
		AdaptEvery:   adaptEvery,
		MemoryBudget: budget,
	}
	// The decentralized scheme pays IU space for every node up front —
	// including the ones never accessed (the paper's §3 objection).
	d.Tree.WalkLeaves(func(l *Leaf) bool {
		d.ius[l] = &iu{}
		return true
	})
	return d
}

// IUBytes returns the space consumed by the embedded information units.
func (d *Decentralized) IUBytes() int64 { return int64(len(d.ius)) * (iuBytes + 16) }

// Bytes returns the index plus IU footprint.
func (d *Decentralized) Bytes() int64 { return d.Tree.Bytes() + d.IUBytes() }

// Adaptations returns the number of completed sweeps.
func (d *Decentralized) Adaptations() int64 { return d.adaptations }

func (d *Decentralized) touch(l *Leaf, write bool) {
	u, ok := d.ius[l]
	if !ok {
		u = &iu{}
		d.ius[l] = u
	}
	if write {
		u.writes.Add(1)
	} else {
		u.reads.Add(1)
	}
	if d.accesses.Add(1)%d.AdaptEvery == 0 {
		d.adapt()
	}
}

// Lookup tracks and performs a point query.
func (d *Decentralized) Lookup(k uint64) (uint64, bool) {
	v, leaf, ok := d.Tree.lookupLeaf(k)
	d.touch(leaf, false)
	return v, ok
}

// Insert tracks and performs an insert.
func (d *Decentralized) Insert(k, v uint64) bool {
	inserted, leaf, _ := d.Tree.insertTracked(k, v)
	d.touch(leaf, true)
	return inserted
}

// Scan tracks every visited leaf and performs a range scan.
func (d *Decentralized) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return d.Tree.scanLeaves(from, n, fn, func(l *Leaf) {
		d.touch(l, false)
	})
}

// adapt is the full sweep: classify by IU counters, expand the top-k
// within the budget, compact the rest, then age the counters.
func (d *Decentralized) adapt() {
	d.adaptations++
	type cand struct {
		leaf *Leaf
		freq uint64
	}
	cands := make([]cand, 0, len(d.ius))
	for l, u := range d.ius {
		cands = append(cands, cand{l, uint64(u.reads.Load()) + uint64(u.writes.Load())})
	}
	// k from the budget exactly like the centralized manager.
	k := len(cands)
	if d.MemoryBudget > 0 {
		sc, pc, gc := d.Tree.LeafCounts()
		sb, pb, gb := d.Tree.LeafBytes()
		var mc, mu int64 = 1024 + leafHeaderBytes, LeafCap*16 + leafHeaderBytes
		if sc+pc > 0 {
			mc = (sb + pb) / (sc + pc)
		}
		if gc > 0 {
			mu = gb / gc
		}
		k = topk.BudgetK(d.MemoryBudget-d.IUBytes(), sc+pc, mc, gc, mu)
	}
	cls := topk.NewClassifier(k)
	for i := range cands {
		if cands[i].freq > 0 {
			cls.Offer(topk.Entry{Item: i, Priority: cands[i].freq})
		}
	}
	hot := make(map[*Leaf]bool, k)
	for _, e := range cls.Hot() {
		hot[cands[e.Item].leaf] = true
	}
	for _, c := range cands {
		if hot[c.leaf] {
			if c.leaf.Encoding() != EncGapped {
				d.Tree.MigrateLeaf(c.leaf, EncGapped)
			}
		} else if c.leaf.Encoding() != EncSuccinct {
			d.Tree.MigrateLeaf(c.leaf, EncSuccinct)
		}
	}
	// Age counters (halve) so the classification follows the workload.
	for _, u := range d.ius {
		u.reads.Store(u.reads.Load() / 2)
		u.writes.Store(u.writes.Load() / 2)
	}
}
