package btree

import "ahi/internal/core"

// Iterator is a pull-style ordered cursor over the tree. Each leaf it
// enters is decoded into the iterator's private buffer under a short
// reader pin, so the cursor observes an immutable per-leaf snapshot —
// like scans, it sees concurrent splits only through sibling links and
// never blocks writers. Copying matters under epoch reclamation: a
// cursor parked between Next calls holds no shared payload, so it can
// neither block nor race with the recycling of a migrated leaf's old
// image. The zero value is invalid; obtain one from Tree.NewIterator or
// Session.NewIterator and position it with Seek/SeekFirst.
type Iterator struct {
	tree *Tree
	leaf *Leaf
	next *Leaf
	// keys/vals hold the decoded image of the current leaf.
	keys  []uint64
	vals  []uint64
	i     int
	valid bool
	// onLeaf observes every leaf the iterator enters (used by tracked
	// session iterators, §4.1.3: "iterators keep a pointer to the current
	// parent" — here tracking needs only the stable leaf identity).
	onLeaf func(*Leaf)
}

// NewIterator returns an unpositioned iterator.
func (t *Tree) NewIterator() *Iterator { return &Iterator{tree: t} }

// Seek positions at the first key >= k.
func (it *Iterator) Seek(k uint64) bool {
	t := it.tree
	slot := t.epochs.pin()
	leaf, _ := t.descend(k, nil)
	leaf, box := moveRightLeaf(leaf, k)
	it.enter(leaf, box)
	t.epochs.unpin(slot)
	i, _ := searchBinaryScalar(it.keys, k)
	it.i = i
	it.valid = true
	return it.skipEmpty()
}

// SeekFirst positions at the smallest key.
func (it *Iterator) SeekFirst() bool { return it.Seek(0) }

// enter decodes the leaf image into the cursor's buffer via the bulk
// decodeRange kernel — one word-at-a-time unpack per leaf instead of an
// element-wise copy. Must run under a reader pin when reclamation is
// enabled.
func (it *Iterator) enter(leaf *Leaf, box *leafBox) {
	it.leaf = leaf
	it.next = box.next
	n := box.p.count()
	if cap(it.keys) < n {
		c := n
		if c < LeafCap {
			c = LeafCap
		}
		it.keys = make([]uint64, 0, c)
		it.vals = make([]uint64, 0, c)
	}
	it.keys, it.vals = it.keys[:n], it.vals[:n]
	box.p.decodeRange(0, n, it.keys, it.vals)
	if it.onLeaf != nil {
		it.onLeaf(leaf)
	}
}

// skipEmpty advances across empty leaves until a key is under the cursor.
func (it *Iterator) skipEmpty() bool {
	for it.i >= len(it.keys) {
		n := it.next
		if n == nil {
			it.valid = false
			return false
		}
		t := it.tree
		slot := t.epochs.pin()
		it.enter(n, n.box.Load())
		t.epochs.unpin(slot)
		it.i = 0
	}
	return true
}

// Next advances to the following key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	it.i++
	if !it.skipEmpty() {
		return false
	}
	return true
}

// Valid reports whether the cursor is on a key.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key (Valid must hold).
func (it *Iterator) Key() uint64 { return it.keys[it.i] }

// Value returns the current value (Valid must hold).
func (it *Iterator) Value() uint64 { return it.vals[it.i] }

// NewIterator returns a tracked iterator: if the iterator creation is
// sampled, every leaf the cursor enters is tracked with the Scan access
// type, exactly like a sampled range scan.
func (s *Session) NewIterator() *Iterator {
	it := s.a.Tree.NewIterator()
	if s.sampler.IsSample() {
		it.onLeaf = func(l *Leaf) {
			s.sampler.Track(l, core.Scan, LeafCtx{})
		}
	}
	return it
}
