//go:build !race

package btree

const raceEnabled = false
