package btree

import (
	"ahi/internal/cache"
	"ahi/internal/core"
	"ahi/internal/hashmap"
	"ahi/internal/obs"
)

// LeafCtx is the context the adaptation manager stores per tracked leaf:
// the inner node the leaf was reached from. The B-link design keeps leaf
// identities stable across migrations, so the parent is informational —
// but the framework round-trips it exactly as the paper's variadic context
// arguments do, and the Hybrid Trie relies on the same machinery for real.
type LeafCtx struct {
	Parent *Inner
}

// AdaptiveConfig configures an adaptive Hybrid B+-tree (AHI-BTree).
type AdaptiveConfig struct {
	Tree Config
	// MemoryBudget / RelativeBudget bound the index size (see core.Config).
	MemoryBudget   int64
	RelativeBudget float64
	// Sampling knobs; zero values take the framework defaults
	// (skip ∈ [50, 500] adaptive, ε = δ = 0.05).
	InitialSkip      int
	MinSkip, MaxSkip int
	FixedSkip        bool // disable skip adaptivity (Figure 5 sweeps)
	DisableBloom     bool // ablation: no filter before the sample map
	Epsilon, Delta   float64
	MaxSampleSize    int
	// Concurrency mode of the sample store (§3.1.5).
	Mode    core.ConcurrencyMode
	Workers int
	// AsyncMigrations moves leaf re-encodings off the critical path: the
	// adaptation phase enqueues them to a worker pool instead of migrating
	// inline (safe here — MigrateLeaf locks the leaf and identity is
	// stable). Call Close to flush the pipeline when retiring the tree.
	AsyncMigrations  bool
	MigrationWorkers int // pipeline pool size (default 2)
	MigrationQueue   int // pipeline queue depth (default 256·GOMAXPROCS)
	// ExternalMigrations suppresses the internal worker pool: accepted
	// migrations wait in the queue until an embedder goroutine applies
	// them via RunQueuedMigration. The shard layer uses this to run a
	// shared, work-stealing migrator pool across many trees.
	ExternalMigrations bool
	// OnMigrationQueued is invoked (outside locks) whenever a migration
	// is accepted, so external executors can wake instead of polling.
	OnMigrationQueued func()
	// NoEagerExpand disables the eager expand-on-insert policy (ablation;
	// writes then re-encode leaves in place, preserving their encoding).
	NoEagerExpand bool
	// ImpatientCompaction makes the CSHF compact on the first cold
	// classification instead of waiting for two consecutive ones
	// (ablation of the history byte).
	ImpatientCompaction bool
	// CacheFraction sizes a hot-key result cache as this fraction of the
	// absolute MemoryBudget (0 disables it). The cache's bytes are
	// charged against the adaptation budget — encodings plus cache never
	// exceed MemoryBudget — and its admission signal reuses the hotness
	// sampler: sampled lookups bypass the cache (keeping the adaptation
	// signal exact) and admit their result pre-warmed. Requires an
	// absolute MemoryBudget; fractions of a RelativeBudget would need
	// the initial data size, which isn't known at construction.
	CacheFraction float64
	// Dur enables the write-ahead log + checkpoint durability layer
	// (durable.go). Only honored by OpenAdaptive; NewAdaptive and
	// BulkLoadAdaptive build volatile trees regardless.
	Dur *DurabilityConfig
	// OnAdapt observes adaptation phases.
	OnAdapt func(core.AdaptInfo)
	// Obs attaches an observability sink: the manager then emits metrics,
	// per-migration trace events and per-epoch encoding-distribution
	// snapshots into it. Nil disables all instrumentation (zero overhead on
	// the access path). ObsSource labels this tree's series — shard fronts
	// set it to "shard<i>" so per-shard scopes aggregate in one registry.
	Obs       *obs.Observability
	ObsSource string
}

// Adaptive is the workload-adaptive Hybrid B+-tree: a Tree plus its
// adaptation manager. Obtain per-goroutine Sessions for tracked access.
type Adaptive struct {
	Tree *Tree
	Mgr  *core.Manager[*Leaf, LeafCtx]

	impatient bool
	cacheFrac float64

	// dur is the durability runtime (nil: volatile tree). Session write
	// paths branch on it once; the lookup path never touches it.
	dur *durState

	// flight is the per-tree flight-recorder scope; nil unless the
	// attached Observability bundle has tracing enabled. Sessions bind it
	// at construction, so enabling tracing after sessions exist only
	// affects sessions created afterwards.
	flight *obs.OpRecorder
}

// NewAdaptive builds an empty adaptive tree. The tree uses eager
// expand-on-insert (§5.2) unless ablated and Succinct as the default
// (cold) encoding.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	cfg.Tree.ExpandOnInsert = !cfg.NoEagerExpand
	t := New(cfg.Tree)
	return wireAdaptive(t, cfg)
}

// BulkLoadAdaptive bulk-loads an adaptive tree from sorted keys. Leaves
// start in cfg.Tree.DefaultEncoding (typically EncSuccinct: everything
// cold until proven hot).
func BulkLoadAdaptive(cfg AdaptiveConfig, keys, vals []uint64) *Adaptive {
	cfg.Tree.ExpandOnInsert = !cfg.NoEagerExpand
	t := BulkLoad(cfg.Tree, keys, vals)
	return wireAdaptive(t, cfg)
}

func wireAdaptive(t *Tree, cfg AdaptiveConfig) *Adaptive {
	a := &Adaptive{Tree: t, impatient: cfg.ImpatientCompaction}
	mcfg := core.Config[*Leaf, LeafCtx]{
		Hash:           func(l *Leaf) uint64 { return hashmap.HashU64(l.id) },
		Units:          a.unitCounts,
		UsedMemory:     t.Bytes,
		Heuristic:      a.heuristic,
		Migrate:        a.migrate,
		MemoryBudget:   cfg.MemoryBudget,
		RelativeBudget: cfg.RelativeBudget,
		Epsilon:        cfg.Epsilon,
		Delta:          cfg.Delta,
		InitialSkip:    cfg.InitialSkip,
		MinSkip:        cfg.MinSkip,
		MaxSkip:        cfg.MaxSkip,
		AdaptiveSkip:   !cfg.FixedSkip,
		MaxSampleSize:  cfg.MaxSampleSize,
		DisableBloom:   cfg.DisableBloom,
		Mode:           cfg.Mode,
		Workers:        cfg.Workers,
		OnAdapt:        cfg.OnAdapt,

		AsyncMigrations:    cfg.AsyncMigrations,
		MigrationWorkers:   cfg.MigrationWorkers,
		MigrationQueue:     cfg.MigrationQueue,
		ExternalMigrations: cfg.ExternalMigrations,
		OnMigrationQueued:  cfg.OnMigrationQueued,
	}
	if cfg.CacheFraction > 0 && cfg.MemoryBudget > 0 {
		// The result cache is carved out of the adaptation budget, not
		// added on top: ChargedBytes makes the manager treat cache bytes
		// exactly like index bytes when computing budget headroom.
		t.rcache = cache.New(int64(cfg.CacheFraction * float64(cfg.MemoryBudget)))
		if t.rcache != nil {
			a.cacheFrac = cfg.CacheFraction
			mcfg.ChargedBytes = t.rcache.Bytes
		}
	}
	if cfg.AsyncMigrations {
		// Concurrent migrations retire displaced leaf images instead of
		// dropping them: enable the tree's epoch domain so readers pin
		// and recycled Gapped slabs stay out of reach until they drain.
		t.epochs = newEpochs()
		mcfg.ReclaimStats = t.epochs.stats
	}
	if cfg.Obs != nil {
		mcfg.Obs = cfg.Obs.Index(cfg.ObsSource,
			func(e uint8) string { return EncodingName(core.Encoding(e)) })
		mcfg.Distribution = a.distribution
		mcfg.EncodingOf = func(l *Leaf) (core.Encoding, bool) { return l.Encoding(), true }
		registerReadPathMetrics(cfg.Obs.Reg, cfg.ObsSource, t)
		if cfg.Obs.Flight != nil {
			a.flight = cfg.Obs.Flight.Scope(cfg.ObsSource)
		}
	}
	a.Mgr = core.New(mcfg)
	// Keep tracked contexts fresh across splits (§4.1.4: "in case a leaf
	// node gets a new parent, this information must be propagated").
	t.onLeafSplit = func(left, right *Leaf) {
		// The B-link design reaches leaves through sibling links, so only
		// the (informational) parent context may go stale; refreshing the
		// left leaf's entry keeps the bookkeeping exact.
		a.Mgr.UpdateContext(left, LeafCtx{})
	}
	return a
}

// registerReadPathMetrics exposes the hot-key cache and negative-filter
// counters as pull-style gauges under the ahi_cache_/ahi_negfilter_
// prefixes, labelled like every other per-tree series.
func registerReadPathMetrics(reg *obs.Registry, source string, t *Tree) {
	var lbl []obs.Label
	if source != "" {
		lbl = []obs.Label{{K: "source", V: source}}
	}
	if t.cfg.NegFilterBits > 0 {
		reg.GaugeFunc("ahi_negfilter_hits_total", lbl, t.negHits.Load)
	}
	rc := t.rcache
	if rc == nil {
		return
	}
	for _, m := range []struct {
		name string
		f    func() int64
	}{
		{"ahi_cache_hits_total", func() int64 { return rc.Stats().Hits }},
		{"ahi_cache_misses_total", func() int64 { return rc.Stats().Misses }},
		{"ahi_cache_admitted_total", func() int64 { return rc.Stats().Admitted }},
		{"ahi_cache_rejected_total", func() int64 { return rc.Stats().Rejected }},
		{"ahi_cache_invalidations_total", func() int64 { return rc.Stats().Invalidations }},
		{"ahi_cache_evictions_total", func() int64 { return rc.Stats().Evictions }},
		{"ahi_cache_bytes", rc.Bytes},
	} {
		reg.GaugeFunc(m.name, lbl, m.f)
	}
}

// ResizeCache re-targets the result cache to the configured fraction of
// a new memory budget (shard rebalancing moves budgets between trees).
// Growth is clamped to the cache's original allocation; a resize drops
// the cached working set, so callers should resize only on real budget
// shifts. No-op without a cache.
func (a *Adaptive) ResizeCache(budget int64) {
	if a.Tree.rcache == nil {
		return
	}
	a.Tree.rcache.Resize(int64(a.cacheFrac * float64(budget)))
}

// CacheStats snapshots the result cache counters (zero without a cache).
func (a *Adaptive) CacheStats() cache.Stats { return a.Tree.rcache.Stats() }

// CacheBytes reports the cache's budget charge (0 without a cache).
func (a *Adaptive) CacheBytes() int64 { return a.Tree.rcache.Bytes() }

// distribution reports the per-encoding leaf population for epoch
// snapshots, straight off the tree's atomic per-encoding counters.
func (a *Adaptive) distribution() []obs.EncodingClass {
	sc, pc, gc := a.Tree.LeafCounts()
	sb, pb, gb := a.Tree.LeafBytes()
	return []obs.EncodingClass{
		{Name: "succinct", Units: sc, Bytes: sb},
		{Name: "packed", Units: pc, Bytes: pb},
		{Name: "gapped", Units: gc, Bytes: gb},
	}
}

// unitCounts reports leaves per encoding class for Equation (1) and the
// budget-derived k. "Compressed" covers Succinct and Packed leaves,
// "Uncompressed" the Gapped ones.
func (a *Adaptive) unitCounts() core.UnitCounts {
	t := a.Tree
	sc, pc, gc := t.LeafCounts()
	sb, pb, gb := t.LeafBytes()
	u := core.UnitCounts{
		Compressed:   sc + pc,
		Uncompressed: gc,
	}
	if u.Compressed > 0 {
		u.CompressedAvg = (sb + pb) / u.Compressed
	} else {
		u.CompressedAvg = int64(LeafCap*2*8)/4 + leafHeaderBytes // ~1KB succinct estimate
	}
	if u.Uncompressed > 0 {
		u.UncompressedAvg = gb / u.Uncompressed
	} else {
		u.UncompressedAvg = int64(LeafCap*2*8) + leafHeaderBytes
	}
	return u
}

// heuristic is the tree's CSHF (Figure 7): hot leaves expand to Gapped
// when the budget allows; leaves that cooled down recently hold at Packed;
// leaves cold for two consecutive classifications compact to Succinct;
// leaves cold through their whole remembered history stop being tracked.
func (a *Adaptive) heuristic(l *Leaf, _ *LeafCtx, st *core.Stats, env core.Env) core.Action {
	enc := l.Encoding()
	if env.Hot {
		if enc == EncGapped {
			return core.Action{}
		}
		// Expanding costs the size difference between Gapped and current.
		cost := int64(LeafCap*2*8) - int64(l.box.Load().p.bytes())
		if env.BudgetRemaining > cost {
			return core.Action{Target: EncGapped, Migrate: true}
		}
		// No headroom: at least leave the compact encoding in place.
		return core.Action{}
	}
	// Cold now. Figure 7's decision tree branches on the memory budget
	// first: while the index exceeds its budget, cold leaves compact
	// immediately instead of waiting out the history confirmation.
	if enc != EncSuccinct && (a.impatient || env.BudgetRemaining < 0) {
		return core.Action{Target: EncSuccinct, Migrate: true}
	}
	switch {
	case st.HistoryLen >= 6 && st.HotCount() == 0:
		// Never hot in remembered history: compact fully and stop tracking.
		if enc != EncSuccinct {
			return core.Action{Target: EncSuccinct, Migrate: true, Evict: true}
		}
		return core.Action{Evict: true}
	case st.HistoryLen >= 2 && st.History&0b11 == 0:
		// Cold for the last two phases: back to Succinct.
		if enc != EncSuccinct {
			return core.Action{Target: EncSuccinct, Migrate: true}
		}
	case enc == EncGapped && st.HistoryLen >= 1:
		// Just cooled down: hold at Packed (cheap to re-expand, half the
		// Gapped footprint) until the classification confirms.
		return core.Action{Target: EncPacked, Migrate: true}
	}
	return core.Action{}
}

// migrate is the manager's migration callback; leaf identity is stable.
// On durable trees each applied migration is logged as a redo-optional
// RecAdapt record — recovery skips them (the manager re-derives encoding
// decisions), but the log preserves the adaptation timeline for audit.
func (a *Adaptive) migrate(l *Leaf, _ LeafCtx, target core.Encoding) (*Leaf, bool) {
	ok := a.Tree.MigrateLeaf(l, target)
	if ok && a.dur != nil {
		a.dur.logAdapt(l.id, uint8(target))
	}
	return l, ok
}

// DrainMigrations blocks until every queued asynchronous migration has
// been applied. No-op without AsyncMigrations.
func (a *Adaptive) DrainMigrations() { a.Mgr.DrainMigrations() }

// RunQueuedMigration executes one queued migration on the calling
// goroutine (ExternalMigrations mode). Returns false when no work was
// available.
func (a *Adaptive) RunQueuedMigration() bool { return a.Mgr.RunQueuedMigration() }

// MigrationBacklog reports queued plus backpressure-deferred migrations.
func (a *Adaptive) MigrationBacklog() int { return a.Mgr.MigrationBacklog() }

// Close flushes and stops the asynchronous migration pipeline, then — on
// durable trees — stops the checkpointer and closes the write-ahead log
// (final fsync, so a clean shutdown loses nothing under any policy).
// Safe to call multiple times.
func (a *Adaptive) Close() {
	a.Mgr.Close()
	if a.dur != nil {
		a.dur.close(a)
	}
}

// Session is a per-goroutine handle that performs tracked index
// operations: the embedded sampler holds the thread-local skip counter and
// (in TLS mode) the thread-local sample map. It also owns the cache-path
// scratch and pre-bound tracking callbacks, keeping the batch hot path
// free of allocations.
type Session struct {
	a       *Adaptive
	sampler *core.Sampler[*Leaf, LeafCtx]

	c         *cache.Cache // the tree's cache (nil = disabled)
	cb        *cacheBatch
	sampleBuf []int
	admitTick uint32

	trackReadFn func(int, *Leaf)
	trackMissFn func(int, *Leaf)
	trackInsFn  func(int, *Leaf, bool)
	trackScanFn func(*Leaf)

	// Flight-recorder state (flight.go). rec is nil unless tracing was
	// enabled when the session was created; the probe is reused across
	// ops, so a Session must stay single-goroutine (which it already
	// must, for the sampler).
	rec     *obs.OpRecorder
	probe   obs.OpProbe
	recTick uint32

	// walBuf is the session's reusable WAL payload scratch (durable trees
	// only); Append copies it into the log's buffer before returning.
	walBuf []byte
}

// NewSession creates a tracked session. Each goroutine needs its own.
func (a *Adaptive) NewSession() *Session {
	s := &Session{a: a, sampler: a.Mgr.NewSampler(), c: a.Tree.rcache, cb: &cacheBatch{}}
	s.trackReadFn = s.trackRead
	s.trackMissFn = s.trackMiss
	s.trackInsFn = s.trackInsert
	s.trackScanFn = s.trackScan
	s.rec = a.flight
	return s
}

// Lookup is a tracked point query. Sampled lookups bypass the cache: they
// walk the tree and track their leaf exactly as without a cache — the
// adaptation signal must not see the cache's hit filtering — and their
// result is admitted pre-warmed (the sampler just declared the key hot).
func (s *Session) Lookup(k uint64) (uint64, bool) {
	if s.rec != nil {
		return s.lookupTraced(k)
	}
	sample := s.sampler.IsSample()
	if s.c == nil {
		v, leaf, ok := s.a.Tree.lookupLeaf(k)
		if sample {
			s.sampler.Track(leaf, core.Read, LeafCtx{})
		}
		return v, ok
	}
	var snap uint64 // taken before the tree read; Admit re-validates it
	if sample {
		snap = s.c.Snap(k)
	} else if v, sn, ok := s.c.ProbeOrSnap(k); ok {
		return v, true
	} else {
		snap = sn
	}
	v, leaf, ok := s.a.Tree.lookupLeaf(k)
	if sample {
		s.sampler.Track(leaf, core.Read, LeafCtx{})
	}
	if ok {
		s.c.Admit(k, v, snap, sample, sample || s.admitGate())
	}
	return v, ok
}

// admitGate is the admission doorkeeper for non-sampled misses: under a
// skewed workload most misses are tail singletons, and evicting a live
// entry for each one churns the cache. The verdict only matters when the
// bucket is full of other keys — Admit always allows refreshing a key's
// own slot or filling an empty way, so an invalidated hot key re-enters
// on its first post-write miss — and letting every fourth miss evict
// quarters the churn while a genuinely hot key still lands in the cache
// within a handful of occurrences. Sampler-declared hot keys bypass the
// gate entirely.
func (s *Session) admitGate() bool {
	s.admitTick++
	return s.admitTick&3 == 0
}

// Insert is a tracked insert. A write that eagerly expanded its leaf is
// always tracked — sampled or not — so the deferred compaction of §5.2 can
// find the leaf once it cools down.
func (s *Session) Insert(k, v uint64) bool {
	if s.a.dur != nil {
		return s.insertDurable(k, v)
	}
	if s.rec != nil {
		return s.insertTraced(k, v)
	}
	sample := s.sampler.IsSample()
	inserted, leaf, expanded := s.a.Tree.insertTracked(k, v)
	if sample || expanded {
		s.sampler.Track(leaf, core.Insert, LeafCtx{})
	}
	return inserted
}

// Delete is a tracked delete.
func (s *Session) Delete(k uint64) bool {
	if s.a.dur != nil {
		return s.deleteDurable(k)
	}
	if s.rec != nil {
		return s.deleteTraced(k)
	}
	sample := s.sampler.IsSample()
	ok := s.a.Tree.Delete(k)
	if sample {
		_, leaf, _ := s.a.Tree.lookupLeaf(k)
		s.sampler.Track(leaf, core.Delete, LeafCtx{})
	}
	return ok
}

// Scan is a tracked range scan: when the scan is sampled, every visited
// leaf is tracked with the Scan access type (§4.1.3).
func (s *Session) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	if s.rec != nil {
		return s.scanTraced(from, n, fn)
	}
	if !s.sampler.IsSample() {
		return s.a.Tree.Scan(from, n, fn)
	}
	return s.a.Tree.scanLeaves(from, n, fn, func(l *Leaf) {
		s.sampler.Track(l, core.Scan, LeafCtx{})
	})
}

// ScanBatch serves len(reqs) range requests through one fused B-link walk
// (see Tree.ScanBatch) and returns the total pairs delivered. Sampling
// draws one SampleOffsets pass over the batch, so the skip counter
// advances exactly as len(reqs) per-request scans would; when any request
// of the batch is sampled, every leaf the fused walk visits is tracked
// with the Scan access type — fusion loses the leaf→request attribution,
// so a sampled batch over-tracks only within its own walk.
func (s *Session) ScanBatch(reqs []ScanReq, sink ScanSink) int {
	if s.rec != nil {
		return s.scanBatchTraced(reqs, sink)
	}
	n, _ := s.scanBatchFast(reqs, sink)
	return n
}

func (s *Session) scanBatchFast(reqs []ScanReq, sink ScanSink) (int, int) {
	s.sampleBuf = s.sampler.SampleOffsets(len(reqs), s.sampleBuf[:0])
	if len(s.sampleBuf) == 0 {
		return s.a.Tree.scanBatchTracked(reqs, sink, nil)
	}
	return s.a.Tree.scanBatchTracked(reqs, sink, s.trackScanFn)
}

// trackScan is the sampled-scan leaf callback (bound once).
func (s *Session) trackScan(l *Leaf) {
	s.sampler.Track(l, core.Scan, LeafCtx{})
}

// Flush hands buffered thread-local samples to the manager (TLS mode).
func (s *Session) Flush() { s.sampler.Flush() }

// Train runs offline training (§3.2): replay expands the most frequently
// accessed leaves first, within the memory budget. The input maps a key to
// its historic access count; keys sharing a leaf aggregate automatically.
func (a *Adaptive) Train(keyFreqs map[uint64]uint64) int {
	leafFreq := make(map[*Leaf]uint64)
	for k, f := range keyFreqs {
		_, leaf, _ := a.Tree.lookupLeaf(k)
		leafFreq[leaf] += f
	}
	freqs := make([]core.IDFreq[*Leaf, LeafCtx], 0, len(leafFreq))
	for l, f := range leafFreq {
		freqs = append(freqs, core.IDFreq[*Leaf, LeafCtx]{ID: l, Freq: f})
	}
	return a.Mgr.TrainOffline(freqs)
}
