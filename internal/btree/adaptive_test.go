package btree

import (
	"math/rand"
	"sync"
	"testing"

	"ahi/internal/core"
	"ahi/internal/workload"
)

// adaptiveFixture bulk-loads an adaptive tree; extraLeaves > 0 grants an
// absolute budget of the compact baseline plus that many full Gapped
// leaves (0 = unbounded).
func adaptiveFixture(n int, extraLeaves int, seed int64) (*Adaptive, []uint64, []uint64) {
	keys, vals := sortedPairs(n, seed)
	cfg := AdaptiveConfig{
		Tree:        Config{DefaultEncoding: EncSuccinct},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
	}
	if extraLeaves > 0 {
		base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
		cfg.MemoryBudget = base.Bytes() + int64(extraLeaves)*(LeafCap*16+leafHeaderBytes)
	}
	a := BulkLoadAdaptive(cfg, keys, vals)
	return a, keys, vals
}

func TestAdaptiveExpandsHotLeaves(t *testing.T) {
	a, keys, vals := adaptiveFixture(100000, 150, 1)
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.2, 3)
	for i := 0; i < 3_000_000; i++ {
		j := z.Draw()
		v, ok := s.Lookup(keys[j])
		if !ok || v != vals[j] {
			t.Fatalf("lookup lost key %d", keys[j])
		}
	}
	if a.Mgr.Adaptations() == 0 {
		t.Fatal("no adaptation phases ran")
	}
	if a.Mgr.Migrations() == 0 {
		t.Fatal("no migrations")
	}
	sc, pc, gc := a.Tree.LeafCounts()
	if gc == 0 {
		t.Fatal("no leaves were expanded")
	}
	if sc == 0 {
		t.Fatal("cold leaves should remain succinct")
	}
	t.Logf("leaves: succinct=%d packed=%d gapped=%d", sc, pc, gc)
	// The hottest key's leaf must be gapped.
	_, leaf, _ := a.Tree.lookupLeaf(keys[0])
	if leaf.Encoding() != EncGapped {
		t.Fatalf("hottest leaf encoding = %s", EncodingName(leaf.Encoding()))
	}
	if err := a.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveRespectsBudget(t *testing.T) {
	a, keys, _ := adaptiveFixture(50000, 60, 2)
	configured := a.Tree.Bytes() + 60*(LeafCap*16+leafHeaderBytes)
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.0, 5)
	for i := 0; i < 2_000_000; i++ {
		s.Lookup(keys[z.Draw()])
	}
	// One leaf of slack on top of the configured absolute budget.
	if used := a.Tree.Bytes(); used > configured+LeafCap*16 {
		t.Fatalf("size %d exceeds budget %d", used, configured)
	}
	if _, _, g := a.Tree.LeafCounts(); g == 0 {
		t.Fatal("budget so tight nothing expanded")
	}
}

func TestAdaptivePhaseShiftCompacts(t *testing.T) {
	a, keys, _ := adaptiveFixture(80000, 100, 3)
	s := a.NewSession()
	// Phase 1: hammer the first 2% of keys.
	hot := len(keys) / 50
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2_000_000; i++ {
		s.Lookup(keys[rng.Intn(hot)])
	}
	_, leafA, _ := a.Tree.lookupLeaf(keys[0])
	if leafA.Encoding() == EncSuccinct {
		t.Fatal("phase-1 hot leaf not expanded")
	}
	gAfter1 := func() int64 { _, _, g := a.Tree.LeafCounts(); return g }()
	// Phase 2: hammer the last 2%.
	lo := len(keys) - hot
	for i := 0; i < 6_000_000; i++ {
		s.Lookup(keys[lo+rng.Intn(hot)])
	}
	_, leafB, _ := a.Tree.lookupLeaf(keys[len(keys)-1])
	if leafB.Encoding() != EncGapped {
		t.Fatal("phase-2 hot leaf not expanded")
	}
	_, leafA, _ = a.Tree.lookupLeaf(keys[0])
	if leafA.Encoding() == EncGapped {
		t.Fatal("stale hot leaf never compacted")
	}
	if a.Tree.Compactions() == 0 {
		t.Fatal("no compactions after phase shift")
	}
	gAfter2 := func() int64 { _, _, g := a.Tree.LeafCounts(); return g }()
	if gAfter2 > gAfter1*2 {
		t.Fatalf("gapped leaves kept accumulating: %d -> %d", gAfter1, gAfter2)
	}
}

func TestAdaptiveInsertEagerExpansion(t *testing.T) {
	a, keys, _ := adaptiveFixture(30000, 0, 4)
	s := a.NewSession()
	newKey := keys[100] + 1
	s.Insert(newKey, 42)
	if v, ok := s.Lookup(newKey); !ok || v != 42 {
		t.Fatal("insert lost")
	}
	_, leaf, _ := a.Tree.lookupLeaf(newKey)
	if leaf.Encoding() != EncGapped {
		t.Fatalf("write target not eagerly expanded: %s", EncodingName(leaf.Encoding()))
	}
}

func TestAdaptiveScanTracking(t *testing.T) {
	a, keys, _ := adaptiveFixture(50000, 100, 5)
	s := a.NewSession()
	// Scan-only workload over a narrow hot range must still trigger
	// expansions (scans track every visited leaf).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300_000; i++ {
		j := rng.Intn(500)
		s.Scan(keys[j], 25, func(k, v uint64) bool { return true })
	}
	if a.Mgr.Migrations() == 0 {
		t.Fatal("scan tracking produced no migrations")
	}
	_, leaf, _ := a.Tree.lookupLeaf(keys[10])
	if leaf.Encoding() == EncSuccinct {
		t.Fatal("scan-hot leaf not expanded")
	}
}

func TestAdaptiveDeleteTracked(t *testing.T) {
	a, keys, _ := adaptiveFixture(10000, 0, 6)
	s := a.NewSession()
	if !s.Delete(keys[5]) {
		t.Fatal("delete failed")
	}
	if _, ok := s.Lookup(keys[5]); ok {
		t.Fatal("key survived delete")
	}
}

func TestTrainedHybridIndex(t *testing.T) {
	a, keys, _ := adaptiveFixture(60000, 40, 7)
	// Predicted workload: the first 5% of keys dominate.
	freqs := map[uint64]uint64{}
	for i := 0; i < len(keys)/20; i++ {
		freqs[keys[i]] = uint64(len(keys)/20 - i)
	}
	for i := len(keys) / 20; i < len(keys)/10; i++ {
		freqs[keys[i]] = 1
	}
	migs := a.Train(freqs)
	if migs == 0 {
		t.Fatal("training migrated nothing")
	}
	_, hotLeaf, _ := a.Tree.lookupLeaf(keys[0])
	if hotLeaf.Encoding() != EncGapped {
		t.Fatal("trained hot leaf not expanded")
	}
	_, coldLeaf, _ := a.Tree.lookupLeaf(keys[len(keys)-1])
	if coldLeaf.Encoding() != EncSuccinct {
		t.Fatal("cold leaf touched by training")
	}
}

func TestAdaptiveConcurrentGSAndTLS(t *testing.T) {
	for _, mode := range []core.ConcurrencyMode{core.GS, core.TLS} {
		name := "GS"
		if mode == core.TLS {
			name = "TLS"
		}
		t.Run(name, func(t *testing.T) {
			keys, vals := sortedPairs(60000, 8)
			cfg := AdaptiveConfig{
				Tree:        Config{DefaultEncoding: EncSuccinct},
				InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
				Mode:    mode,
				Workers: 4,
			}
			a := BulkLoadAdaptive(cfg, keys, vals)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := a.NewSession()
					defer s.Flush()
					z := workload.NewZipf(len(keys), 1.2, int64(w+1))
					for i := 0; i < 400_000; i++ {
						j := z.Draw()
						if v, ok := s.Lookup(keys[j]); !ok || v != vals[j] {
							t.Errorf("lost key %d", keys[j])
							return
						}
						if i%50 == 0 {
							s.Insert(keys[j]+1, 1)
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if a.Mgr.Adaptations() == 0 {
				t.Fatal("no adaptations")
			}
			_, _, gc := a.Tree.LeafCounts()
			if gc == 0 {
				t.Fatal("no expansions under concurrency")
			}
			if err := a.Tree.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAdaptiveManagerBytesSmall(t *testing.T) {
	a, keys, _ := adaptiveFixture(100000, 150, 9)
	s := a.NewSession()
	z := workload.NewZipf(len(keys), 1.0, 1)
	for i := 0; i < 1_000_000; i++ {
		s.Lookup(keys[z.Draw()])
	}
	// The paper reports the framework at ~0.1% of the index size; allow
	// up to 5% at our much smaller scale.
	if fb, ib := a.Mgr.Bytes(), a.Tree.Bytes(); fb > ib/20 {
		t.Fatalf("sampling framework too heavy: %d vs index %d", fb, ib)
	}
}
