package btree

import (
	"sync"
	"testing"

	"ahi/internal/core"
	"ahi/internal/obs"
)

func flightFixture(t testing.TB, sampleEvery int) (*Adaptive, *obs.Observability) {
	t.Helper()
	o := obs.New(64, 16)
	o.EnableTracing(obs.FlightConfig{SampleEvery: sampleEvery, RingCap: 1 << 14})
	n := 1 << 12
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 16
		vals[i] = uint64(i)
	}
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:           Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
		Mode:           core.GS, // sessions run concurrently in the race test
		RelativeBudget: 0.5,
		InitialSkip:    8,
		MinSkip:        4,
		MaxSkip:        32,
		MaxSampleSize:  256,
		Obs:            o,
		ObsSource:      "btree",
	}, keys, vals)
	t.Cleanup(a.Close)
	return a, o
}

// TestFlightTracedSessions drives every traced session entry point with
// 1/1 sampling and checks the committed events carry the lifecycle
// signals: correct kinds, non-zero descent depth, negative-filter
// rejection on misses into cold succinct leaves — and, structurally, no
// event ever classified "unknown" (the attribution guarantee the
// explain-tail acceptance bar leans on).
func TestFlightTracedSessions(t *testing.T) {
	a, o := flightFixture(t, 1)
	s := a.NewSession()
	for i := 0; i < 64; i++ {
		if v, ok := s.Lookup(uint64(i) * 16); !ok || v != uint64(i) {
			t.Fatalf("traced lookup %d wrong: %v %v", i, v, ok)
		}
	}
	if _, ok := s.Lookup(3*16 + 7); ok {
		t.Fatal("traced miss reported found")
	}
	if !s.Insert(5*16+1, 99) {
		t.Fatal("traced insert failed")
	}
	if !s.Delete(5*16 + 1) {
		t.Fatal("traced delete failed")
	}
	if got := s.Scan(0, 10, func(k, v uint64) bool { return true }); got != 10 {
		t.Fatalf("traced scan visited %d want 10", got)
	}
	bk := []uint64{0, 16, 32}
	bv := make([]uint64, 3)
	bf := make([]bool, 3)
	s.LookupBatch(bk, bv, bf)
	if !bf[0] || bv[2] != 2 {
		t.Fatalf("traced batch lookup wrong: %v %v", bv, bf)
	}
	s.InsertBatch([]uint64{7*16 + 3, 9*16 + 3}, []uint64{1, 2}, make([]bool, 2))

	evs := o.Flight.Events()
	if len(evs) == 0 {
		t.Fatal("no events committed at 1/1 sampling")
	}
	kinds := map[obs.OpKind]int{}
	var sawDepth, sawNegFilter bool
	for _, ev := range evs {
		kinds[ev.Kind]++
		if ev.Cause == obs.CauseUnknown {
			t.Fatalf("event with unknown cause: %+v", ev)
		}
		if ev.Source != "btree" {
			t.Fatalf("event source %q want btree", ev.Source)
		}
		if ev.Kind == obs.OpLookup && ev.Depth > 0 {
			sawDepth = true
		}
		if ev.NegFiltered {
			sawNegFilter = true
		}
	}
	for _, k := range []obs.OpKind{obs.OpLookup, obs.OpInsert, obs.OpDelete,
		obs.OpScan, obs.OpLookupBatch, obs.OpInsertBatch} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events committed (have %v)", k, kinds)
		}
	}
	if !sawDepth {
		t.Fatal("no lookup recorded a descent depth")
	}
	if !sawNegFilter {
		t.Fatal("miss into a succinct leaf did not record negative-filter rejection")
	}
}

// TestFlightSamplingDisabledMatchesFast ensures the sampled-out traced
// path returns the same results as the fast path (a 1/big mask means
// nearly every op goes through the traced body unsampled).
func TestFlightSamplingDisabledMatchesFast(t *testing.T) {
	a, o := flightFixture(t, 1024)
	s := a.NewSession()
	for i := 0; i < 2000; i++ {
		if v, ok := s.Lookup(uint64(i%512) * 16); !ok || v != uint64(i%512) {
			t.Fatalf("lookup %d wrong under sampled-out tracing", i)
		}
	}
	// The latency histogram sees every op even when the ring holds few.
	if f := o.Flight; f.Total() >= 2000 {
		t.Fatalf("committed %d events at 1/1024 sampling", f.Total())
	}
}

// TestFlightUnderConcurrentMigrations is the -race leg: traced sessions
// (lookups, inserts, batches) racing leaf migrations and the epoch
// reclamation they trigger, all while a reader drains the recorder
// incrementally. Run under -race in CI.
func TestFlightUnderConcurrentMigrations(t *testing.T) {
	a, o := flightFixture(t, 1)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			s := a.NewSession()
			bk := make([]uint64, 8)
			bv := make([]uint64, 8)
			bf := make([]bool, 8)
			for i := 0; i < 3000; i++ {
				k := uint64((i*7+g*13)%(1<<12)) * 16
				switch i % 5 {
				case 0:
					s.Insert(k+1, uint64(i))
				case 1:
					for j := range bk {
						bk[j] = uint64((i+j)%(1<<12)) * 16
					}
					s.LookupBatch(bk, bv, bf)
				default:
					s.Lookup(k)
				}
			}
		}(g)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		targets := []core.Encoding{EncGapped, EncPacked, EncSuccinct}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tgt := targets[i%len(targets)]
			a.Tree.WalkLeaves(func(l *Leaf) bool {
				a.Tree.MigrateLeaf(l, tgt)
				return true
			})
		}
	}()
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var since int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := o.Flight.EventsSince(since)
			if len(evs) > 0 {
				since = evs[len(evs)-1].Seq
			}
		}
	}()
	writers.Wait()
	close(stop)
	churn.Wait()
	readers.Wait()
	if o.Flight.Total() == 0 {
		t.Fatal("no events recorded under concurrency")
	}
	// With migrations churning the whole run, some traced ops must have
	// observed an overlap and linked a migration exemplar.
	var overlaps int
	for _, ev := range o.Flight.Events() {
		if ev.MigOverlap {
			overlaps++
			if ev.Cause != obs.CauseMigrationOverlap {
				t.Fatalf("overlapped op classified %v", ev.Cause)
			}
		}
	}
	if overlaps == 0 {
		t.Log("warning: no migration overlaps observed (timing-dependent)")
	}
	if err := a.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after churn: %v", err)
	}
}

// TestFlightTailAttribution is the acceptance bar in miniature: a
// skewed mixed workload with 1/1 sampling, migrations running, then
// ExplainTail over the dump must name a cause for at least 90% of
// >p999 lookups. Traced events are classified at commit time, so
// structurally this should be 100%.
func TestFlightTailAttribution(t *testing.T) {
	a, o := flightFixture(t, 1)
	s := a.NewSession()
	for i := 0; i < 20000; i++ {
		k := uint64(i%997) * 16
		if i%10 == 9 {
			s.Insert(k+1+uint64(i%14), uint64(i))
		} else {
			s.Lookup(k)
		}
	}
	d := o.Dump()
	if len(d.Ops) == 0 {
		t.Fatal("dump carries no ops")
	}
	for _, rep := range obs.ExplainTail(d.Ops, 0.999) {
		if rep.TailOps == 0 {
			continue
		}
		if nf := rep.NamedFraction(); nf < 0.9 {
			t.Fatalf("%v tail only %.0f%% named (want >=90%%)", rep.Kind, 100*nf)
		}
	}
}
