package btree

import (
	"errors"
	"sync"
	"testing"

	"ahi/internal/core"
	"ahi/internal/wal"
)

func durCfg(dir string, every int64) AdaptiveConfig {
	return AdaptiveConfig{
		Tree:         Config{DefaultEncoding: EncSuccinct},
		MemoryBudget: 64 << 20,
		Mode:         core.GS, // reader/checkpoint tests run sessions concurrently
		Dur: &DurabilityConfig{
			Dir:             dir,
			Policy:          wal.SyncOS,
			SegmentBytes:    1 << 16,
			CheckpointEvery: every,
		},
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, st, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmStart {
		t.Fatal("fresh dir reported warm start")
	}
	s := a.NewSession()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		s.Insert(i*3, i)
	}
	for i := uint64(0); i < n; i += 5 {
		if !s.Delete(i * 3) {
			t.Fatalf("delete %d", i*3)
		}
	}
	a.Close()

	b, st2, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if st2.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	s2 := b.NewSession()
	for i := uint64(0); i < n; i++ {
		v, ok := s2.Lookup(i * 3)
		if i%5 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i*3)
			}
			continue
		}
		if !ok || v != i {
			t.Fatalf("key %d: %d %v", i*3, v, ok)
		}
	}
	if err := b.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCheckpointWarmRestore(t *testing.T) {
	dir := t.TempDir()
	a, _, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewSession()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		s.Insert(i, i+1)
	}
	// Force a non-default encoding mix: migrate a few leaves by hand, as
	// the adaptation manager would.
	var migrated []*Leaf
	a.Tree.WalkLeaves(func(l *Leaf) bool {
		if len(migrated) < 4 {
			a.Tree.MigrateLeaf(l, EncPacked)
			migrated = append(migrated, l)
			return true
		}
		return false
	})
	wantS, wantP, wantG := a.Tree.LeafCounts()
	if wantP == 0 {
		t.Fatal("no packed leaves after forced migration")
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail.
	for i := uint64(n); i < n+100; i++ {
		s.Insert(i, i+1)
	}
	a.Close()

	b, st, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !st.WarmStart || st.Barrier == 0 {
		t.Fatalf("expected warm start: %+v", st)
	}
	if st.Replayed != 100 {
		t.Fatalf("replayed %d want 100", st.Replayed)
	}
	gotS, gotP, gotG := b.Tree.LeafCounts()
	// The 100 replayed inserts only touch the rightmost leaves; the packed
	// ones restored from the checkpoint must still be packed.
	if gotP != wantP {
		t.Fatalf("packed leaves not restored: got (%d,%d,%d) checkpointed (%d,%d,%d)",
			gotS, gotP, gotG, wantS, wantP, wantG)
	}
	s2 := b.NewSession()
	for i := uint64(0); i < n+100; i++ {
		if v, ok := s2.Lookup(i); !ok || v != i+1 {
			t.Fatalf("key %d: %d %v", i, v, ok)
		}
	}
	if err := b.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableAdaptationStateRestored(t *testing.T) {
	dir := t.TempDir()
	a, _, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	a.Mgr.RestoreAdaptationState(7, 123, 256) // pretend the sampler converged
	s := a.NewSession()
	for i := uint64(0); i < 100; i++ {
		s.Insert(i, i)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	a.Close()

	b, st, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !st.WarmStart {
		t.Fatal("cold start")
	}
	if b.Mgr.Epoch() != 7 {
		t.Fatalf("epoch %d want 7", b.Mgr.Epoch())
	}
	if b.Mgr.SkipLength() != 123 {
		t.Fatalf("skip %d want 123", b.Mgr.SkipLength())
	}
	if b.Mgr.SampleSize() != 256 {
		t.Fatalf("sample size %d want 256", b.Mgr.SampleSize())
	}
}

func TestDurableBatchAndAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	a, _, err := OpenAdaptive(durCfg(dir, 500))
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewSession()
	keys := make([]uint64, 100)
	vals := make([]uint64, 100)
	inserted := make([]bool, 100)
	for round := uint64(0); round < 20; round++ {
		for i := range keys {
			keys[i] = round*100 + uint64(i)
			vals[i] = keys[i] * 2
		}
		s.InsertBatch(keys, vals, inserted)
	}
	a.Close()
	if a.WALStats() == nil {
		t.Fatal("no wal stats on a durable tree")
	}

	b, st, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !st.WarmStart {
		t.Fatal("auto checkpoint never fired (2000 records at CheckpointEvery=500)")
	}
	s2 := b.NewSession()
	for i := uint64(0); i < 2000; i++ {
		if v, ok := s2.Lookup(i); !ok || v != i*2 {
			t.Fatalf("key %d: %d %v", i, v, ok)
		}
	}
}

// TestDurableCheckpointUnderWrites races checkpoints against concurrent
// writers and verifies the final recovered state: every acked write must
// survive (run with -race in CI's recovery-race leg).
func TestDurableCheckpointUnderWrites(t *testing.T) {
	dir := t.TempDir()
	a, _, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := a.NewSession()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				s.Insert(k, k+7)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := a.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	a.Close()

	b, _, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	s := b.NewSession()
	for k := uint64(0); k < workers*per; k++ {
		if v, ok := s.Lookup(k); !ok || v != k+7 {
			t.Fatalf("key %d lost across checkpointed recovery: %d %v", k, v, ok)
		}
	}
}

// TestDurableReopenWhileReaders races recovery of a second tree from the
// same directory family against readers of the first — the -race leg's
// concurrent-reopen scenario.
func TestDurableReopenWhileReaders(t *testing.T) {
	dir := t.TempDir()
	a, _, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewSession()
	for i := uint64(0); i < 1000; i++ {
		s.Insert(i, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := a.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := uint64(0); i < 1000; i += 17 {
					rs.Lookup(i)
				}
			}
		}()
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	a.Close()

	b, st, err := OpenAdaptive(durCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !st.WarmStart {
		t.Fatal("cold start after checkpoint")
	}
}

func TestDurableCorruptCheckpointBlob(t *testing.T) {
	if _, _, err := treeFromCheckpoint(Config{}, []byte{99}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}
	if _, _, err := treeFromCheckpoint(Config{}, nil); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("empty blob: %v", err)
	}
}

func TestOpenAdaptiveVolatile(t *testing.T) {
	a, st, err := OpenAdaptive(AdaptiveConfig{Tree: Config{DefaultEncoding: EncSuccinct}})
	if err != nil || st.WarmStart {
		t.Fatalf("volatile open: %v %+v", err, st)
	}
	defer a.Close()
	s := a.NewSession()
	s.Insert(1, 2)
	if v, ok := s.Lookup(1); !ok || v != 2 {
		t.Fatal("volatile tree broken")
	}
	if a.WALStats() != nil {
		t.Fatal("volatile tree has wal stats")
	}
	if err := a.SyncWAL(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSessionLookupDurOff / BenchmarkLookupBatchDurOff are the
// benchgate ratio baselines: a durability-capable build with Durability
// off must look identical to the pre-durability lookup path (the CI gate
// pins the in-run ratio vs the NoCache baselines at ≤1%). They reuse the
// cache bench fixtures so the two sides of the ratio differ only by the
// session dispatch the durability layer added.
func BenchmarkSessionLookupDurOff(b *testing.B) { benchmarkLookup(b, 0) }

func BenchmarkLookupBatchDurOff(b *testing.B) { benchmarkLookupBatch(b, 0) }
