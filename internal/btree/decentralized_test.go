package btree

import (
	"testing"

	"ahi/internal/workload"
)

func TestDecentralizedAdaptsToSkew(t *testing.T) {
	keys, vals := sortedPairs(50000, 31)
	base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	budget := base.Bytes() + 60*(LeafCap*16+leafHeaderBytes)
	d := NewDecentralized(Config{DefaultEncoding: EncSuccinct}, keys, vals, 50_000, budget)
	z := workload.NewZipf(len(keys), 1.2, 3)
	for i := 0; i < 1_000_000; i++ {
		j := z.Draw()
		if v, ok := d.Lookup(keys[j]); !ok || v != vals[j] {
			t.Fatalf("lookup lost %d", keys[j])
		}
	}
	if d.Adaptations() == 0 {
		t.Fatal("no sweeps ran")
	}
	_, leaf, _ := d.Tree.lookupLeaf(keys[0])
	if leaf.Encoding() != EncGapped {
		t.Fatal("hottest leaf not expanded")
	}
	if _, _, g := d.Tree.LeafCounts(); g == 0 {
		t.Fatal("nothing expanded")
	}
	if d.Tree.Bytes() > budget+LeafCap*16 {
		t.Fatalf("budget blown: %d > %d", d.Tree.Bytes(), budget)
	}
	// The IU overhead exists for every leaf, accessed or not.
	sc, pc, gc := d.Tree.LeafCounts()
	if d.IUBytes() < (sc+pc+gc)*iuBytes {
		t.Fatalf("IU accounting too small: %d", d.IUBytes())
	}
}

func TestDecentralizedScanAndInsert(t *testing.T) {
	keys, vals := sortedPairs(20000, 32)
	d := NewDecentralized(Config{DefaultEncoding: EncSuccinct}, keys, vals, 10_000, 0)
	if !d.Insert(keys[5]+1, 42) {
		t.Fatal("insert failed")
	}
	if v, ok := d.Lookup(keys[5] + 1); !ok || v != 42 {
		t.Fatal("insert lost")
	}
	n := d.Scan(keys[0], 100, func(k, v uint64) bool { return true })
	if n != 100 {
		t.Fatalf("scan visited %d", n)
	}
	// Unbounded budget: repeated hot access expands.
	for i := 0; i < 100_000; i++ {
		d.Lookup(keys[7])
	}
	_, leaf, _ := d.Tree.lookupLeaf(keys[7])
	if leaf.Encoding() != EncGapped {
		t.Fatal("hot leaf not expanded without budget")
	}
}

func TestDecentralizedPhaseShift(t *testing.T) {
	keys, vals := sortedPairs(30000, 33)
	base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	budget := base.Bytes() + 30*(LeafCap*16+leafHeaderBytes)
	d := NewDecentralized(Config{DefaultEncoding: EncSuccinct}, keys, vals, 20_000, budget)
	for i := 0; i < 400_000; i++ {
		d.Lookup(keys[i%300])
	}
	_, hotA, _ := d.Tree.lookupLeaf(keys[0])
	if hotA.Encoding() != EncGapped {
		t.Fatal("phase-1 leaf not expanded")
	}
	// Shift: counters age, the old range compacts.
	lo := len(keys) - 300
	for i := 0; i < 2_000_000; i++ {
		d.Lookup(keys[lo+i%300])
	}
	_, hotA, _ = d.Tree.lookupLeaf(keys[0])
	if hotA.Encoding() == EncGapped {
		t.Fatal("stale expansion survived aging")
	}
	_, hotB, _ := d.Tree.lookupLeaf(keys[len(keys)-1])
	if hotB.Encoding() != EncGapped {
		t.Fatal("new hot range not expanded")
	}
}
