package btree

import (
	"testing"

	"ahi/internal/obs"
)

// Observability-overhead benchmarks. BenchmarkSessionLookupNoCache
// (cache_bench_test.go) is the no-obs baseline; the variants here attach
// an Observability bundle with tracing off and with the flight recorder
// sampling. CI compares ObsOff against the baseline within one run
// (benchgate -ratio) and fails the build past a 1% overhead budget.

// benchAdaptiveObs is benchAdaptive with an observability bundle
// attached; sampleEvery > 0 additionally enables the flight recorder at
// that sampling rate.
func benchAdaptiveObs(b *testing.B, sampleEvery int) (*Adaptive, []uint64) {
	b.Helper()
	keys, vals := benchKeySet()
	succ := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals).Bytes()
	gap := BulkLoad(Config{DefaultEncoding: EncGapped}, keys, vals).Bytes()
	budget := succ + (gap-succ)/16
	o := obs.New(0, 0)
	if sampleEvery > 0 {
		o.EnableTracing(obs.FlightConfig{SampleEvery: sampleEvery})
	}
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:         Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
		MemoryBudget: budget,
		InitialSkip:  8,
		MinSkip:      4,
		MaxSkip:      32,
		Obs:          o,
		ObsSource:    "bench",
	}, keys, vals)
	b.Cleanup(a.Close)
	return a, keys
}

func benchmarkLookupObs(b *testing.B, sampleEvery int) {
	a, keys := benchAdaptiveObs(b, sampleEvery)
	q := benchQueries(keys, 1<<18)
	s := warmSession(a, q)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := s.Lookup(q[i&(len(q)-1)])
		sink += v
	}
	_ = sink
}

// BenchmarkSessionLookupObsOff: metrics registered, flight recorder off —
// the disabled-tracing path whose only per-op cost is one nil check.
func BenchmarkSessionLookupObsOff(b *testing.B) { benchmarkLookupObs(b, 0) }

// BenchmarkSessionLookupTraced64 samples 1/64 ops into the recorder (the
// default rate); not gated, recorded for the overhead sweep.
func BenchmarkSessionLookupTraced64(b *testing.B) { benchmarkLookupObs(b, 64) }
