package btree

import (
	"math"
	"math/rand"
	"testing"

	"ahi/internal/bitutil"
)

// kernelCases are the encoding-boundary shapes every search kernel must
// get right. Probes are chosen around each shape's edges: below the first
// key, every present key, every in-gap midpoint, above the last key.
var kernelCases = []struct {
	name string
	keys []uint64
}{
	{"empty-leaf", nil},
	{"single-key", []uint64{42}},
	{"single-key-zero", []uint64{0}},
	{"two-keys", []uint64{10, 20}},
	{"duplicate-adjacent-deltas", []uint64{5, 6, 7, 8, 9, 10, 11, 12}},
	{"max-gap-gapped-leaf", []uint64{0, 1, 2, math.MaxUint64 - 2, math.MaxUint64 - 1, math.MaxUint64}},
	{"front-cluster", []uint64{1, 2, 3, 4, 5, 1 << 40, 1 << 41, 1 << 42}},
	{"back-cluster", []uint64{1, 1 << 40, 1<<40 + 1, 1<<40 + 2, 1<<40 + 3}},
	{"swar-tail-boundary-16", consecutive(100, 16)},
	{"swar-tail-boundary-17", consecutive(100, 17)},
	{"skip-block-boundary-32", consecutive(7, 32)},
	{"skip-block-boundary-33", consecutive(7, 33)},
	{"leafcap-full", consecutive(1_000_000, LeafCap)},
	{"all-equal-vals-style", []uint64{9, 9, 9, 9, 9}}, // kernels must tolerate duplicates
}

func consecutive(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)*3
	}
	return out
}

// probesFor derives the probe set for a key slice: all keys, all gap
// midpoints, the extremes, and the uint64 boundaries.
func probesFor(keys []uint64) []uint64 {
	probes := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1}
	for i, k := range keys {
		probes = append(probes, k)
		if k > 0 {
			probes = append(probes, k-1)
		}
		if k < math.MaxUint64 {
			probes = append(probes, k+1)
		}
		if i > 0 {
			probes = append(probes, keys[i-1]+(k-keys[i-1])/2)
		}
	}
	return probes
}

func TestSearchKernelsMatchScalar(t *testing.T) {
	for _, tc := range kernelCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			far := bitutil.NewFORArray(tc.keys)
			for _, k := range probesFor(tc.keys) {
				wantPos, wantFound := searchBinaryScalar(tc.keys, k)

				if pos, found := searchDense(tc.keys, k); pos != wantPos || found != wantFound {
					t.Fatalf("searchDense(%v, %d) = (%d,%v), scalar (%d,%v)",
						tc.keys, k, pos, found, wantPos, wantFound)
				}
				if pos, found := searchInterp(tc.keys, k); pos != wantPos || found != wantFound {
					t.Fatalf("searchInterp(%v, %d) = (%d,%v), scalar (%d,%v)",
						tc.keys, k, pos, found, wantPos, wantFound)
				}
				// FOR skip search vs the FOR binary reference (Search) and
				// the plain scalar. Sorted input is a precondition of both.
				if got, ref := far.SearchSkip(k), far.Search(k); got != ref || got != wantPos {
					t.Fatalf("FOR SearchSkip(%v, %d) = %d, Search = %d, scalar = %d",
						tc.keys, k, got, ref, wantPos)
				}
			}
		})
	}
}

// TestSearchKernelsRandomized cross-checks the kernels on random sorted
// arrays across the size range a leaf can take, including adjacent
// duplicates in the delta stream (step 0 collisions are kept).
func TestSearchKernelsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(LeafCap + 1)
		keys := make([]uint64, 0, n)
		k := uint64(rng.Intn(1000))
		for len(keys) < n {
			keys = append(keys, k)
			k += uint64(rng.Intn(1 << uint(rng.Intn(20)))) // bursts of dense and sparse runs
		}
		far := bitutil.NewFORArray(keys)
		for p := 0; p < 64; p++ {
			probe := uint64(rng.Int63())
			if p%2 == 0 && n > 0 {
				probe = keys[rng.Intn(n)] // present keys half the time
			}
			wantPos, wantFound := searchBinaryScalar(keys, probe)
			if pos, found := searchDense(keys, probe); pos != wantPos || found != wantFound {
				t.Fatalf("trial %d: searchDense(n=%d, %d) = (%d,%v) want (%d,%v)",
					trial, n, probe, pos, found, wantPos, wantFound)
			}
			if pos, found := searchInterp(keys, probe); pos != wantPos || found != wantFound {
				t.Fatalf("trial %d: searchInterp(n=%d, %d) = (%d,%v) want (%d,%v)",
					trial, n, probe, pos, found, wantPos, wantFound)
			}
			if got := far.SearchSkip(probe); got != wantPos {
				t.Fatalf("trial %d: SearchSkip(n=%d, %d) = %d want %d", trial, n, probe, got, wantPos)
			}
		}
	}
}

// TestPayloadSearchUsesKernels exercises the wired-up payload probes on a
// boundary shape per encoding (the kernels are behind payload.search now;
// a regression here means a kernel broke an encoding end to end).
func TestPayloadSearchUsesKernels(t *testing.T) {
	keys := []uint64{3, 5, 5 + 1<<50, 5 + 1<<50 + 1}
	vals := []uint64{30, 50, 70, 90}
	for _, enc := range []struct {
		name string
		p    payload
	}{
		{"gapped", newGapped(keys, vals)},
		{"packed", newPacked(keys, vals)},
		{"succinct", newSuccinct(keys, vals)},
	} {
		for i, k := range keys {
			pos, found := enc.p.search(k)
			if !found || pos != i {
				t.Fatalf("%s: search(%d) = (%d,%v) want (%d,true)", enc.name, k, pos, found, i)
			}
		}
		if pos, found := enc.p.search(4); found || pos != 1 {
			t.Fatalf("%s: search(4) = (%d,%v) want (1,false)", enc.name, pos, found)
		}
		if pos, found := enc.p.search(1 << 60); found || pos != 4 {
			t.Fatalf("%s: search(high) = (%d,%v) want (4,false)", enc.name, pos, found)
		}
	}
}
