package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// coldKeys builds n sorted random uint64 keys: random spacing makes the
// per-leaf FOR deltas wide (~50 bits), matching the YCSB key distribution
// the recorded experiment uses — wide-width decode is the hard case.
func coldKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Cold-regime benchmarks: a 1M-key tree (payloads far exceed LLC) with
// starts striding the whole key space, so every batch decodes leaves that
// are not cache-resident. This is the regime the recorded scan experiment
// (BENCH_scan.json) measures; the plain benchmarks in scan_test.go cover
// the cache-resident kernel cost.
func BenchmarkScanBatchSuccinctCold(b *testing.B) {
	const n = 1 << 20
	keys := coldKeys(n)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	const ln = 256
	reqs := make([]ScanReq, 8)
	var buf ScanBuffer
	stride := n / 9
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i := range reqs {
			at := (i*stride + it*617) % (n - ln)
			reqs[i] = ScanReq{From: keys[at], N: ln}
		}
		buf.Reset(len(reqs))
		tr.ScanBatch(reqs, &buf)
	}
}

func BenchmarkScanElementwiseSuccinctCold(b *testing.B) {
	const n = 1 << 20
	keys := coldKeys(n)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	const ln = 256
	reqs := make([]ScanReq, 8)
	stride := n / 9
	var sink uint64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i := range reqs {
			at := (i*stride + it*617) % (n - ln)
			reqs[i] = ScanReq{From: keys[at], N: ln}
		}
		for _, r := range reqs {
			tr.ScanElementwise(r.From, r.N, func(k, v uint64) bool {
				sink += v
				return true
			})
		}
	}
	_ = sink
}
