package btree

import (
	"math/rand"
	"sync"
	"testing"
)

func batchConfigs() []Config {
	return []Config{
		{DefaultEncoding: EncGapped},
		{DefaultEncoding: EncPacked},
		{DefaultEncoding: EncSuccinct},
		{DefaultEncoding: EncSuccinct, ExpandOnInsert: true},
	}
}

// TestLookupBatchMatchesLookup cross-checks batch lookups (sorted runs,
// duplicates, misses) against per-key Lookup on every encoding.
func TestLookupBatchMatchesLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20_000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 7 // gaps so misses exist
		vals[i] = uint64(i)
	}
	for _, cfg := range batchConfigs() {
		tr := BulkLoad(cfg, keys, vals)
		for _, batch := range []int{1, 3, 8, 32, 128, 999} {
			q := make([]uint64, batch)
			got := make([]uint64, batch)
			gotOK := make([]bool, batch)
			for trial := 0; trial < 20; trial++ {
				for i := range q {
					switch trial % 3 {
					case 0:
						q[i] = uint64(rng.Intn(n*7 + 100)) // mixed hits/misses
					case 1:
						q[i] = keys[rng.Intn(100)] // heavy duplicates, one leaf
					default:
						q[i] = keys[rng.Intn(n)]
					}
				}
				tr.LookupBatch(q, got, gotOK)
				for i, k := range q {
					wv, wok := tr.Lookup(k)
					if gotOK[i] != wok || (wok && got[i] != wv) {
						t.Fatalf("enc=%v batch=%d: LookupBatch[%d]=(%d,%v) want (%d,%v) for key %d",
							cfg.DefaultEncoding, batch, i, got[i], gotOK[i], wv, wok, k)
					}
				}
			}
		}
	}
}

// TestInsertBatchMatchesInsert checks positional inserted flags, last-wins
// duplicate semantics, overwrite behaviour, splits mid-batch, and the
// structural invariants afterwards.
func TestInsertBatchMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cfg := range batchConfigs() {
		tr := New(cfg)
		ref := make(map[uint64]uint64)
		for round := 0; round < 60; round++ {
			batch := 1 + rng.Intn(200)
			ks := make([]uint64, batch)
			vs := make([]uint64, batch)
			ins := make([]bool, batch)
			for i := range ks {
				ks[i] = uint64(rng.Intn(8000))
				vs[i] = rng.Uint64()
			}
			tr.InsertBatch(ks, vs, ins)
			// Replay against the reference map in batch-sorted submission
			// order (the documented semantics) to predict inserted flags.
			for i, k := range ks {
				_, existed := ref[k]
				// A key duplicated earlier in this batch exists by the time
				// the later copy lands.
				for j := 0; j < i; j++ {
					if ks[j] == k {
						existed = true
					}
				}
				if ins[i] == existed {
					t.Fatalf("enc=%v round=%d: inserted[%d]=%v for key %d (existed=%v)",
						cfg.DefaultEncoding, round, i, ins[i], k, existed)
				}
				ref[k] = vs[i]
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("enc=%v: invalid tree after batch inserts: %v", cfg.DefaultEncoding, err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("enc=%v: Len=%d want %d", cfg.DefaultEncoding, tr.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok := tr.Lookup(k)
			if !ok || got != v {
				t.Fatalf("enc=%v: Lookup(%d)=(%d,%v) want (%d,true)", cfg.DefaultEncoding, k, got, ok, v)
			}
		}
	}
}

// TestInsertBatchLastWins pins the duplicate-key ordering contract.
func TestInsertBatchLastWins(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncGapped})
	ks := []uint64{5, 5, 5, 5, 5, 5, 5, 5}
	vs := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	ins := make([]bool, len(ks))
	tr.InsertBatch(ks, vs, ins)
	if !ins[0] {
		t.Fatal("first duplicate should report inserted")
	}
	for i := 1; i < len(ins); i++ {
		if ins[i] {
			t.Fatalf("duplicate %d should report overwrite", i)
		}
	}
	if v, ok := tr.Lookup(5); !ok || v != 8 {
		t.Fatalf("Lookup(5) = (%d,%v), want last value 8", v, ok)
	}
}

// TestBatchConcurrent runs batched lookups and inserts against concurrent
// single-key writers; batched readers must never observe torn state.
func TestBatchConcurrent(t *testing.T) {
	tr := New(Config{DefaultEncoding: EncSuccinct, ExpandOnInsert: true})
	const span = 1 << 14
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 64)
			vs := make([]uint64, 64)
			ins := make([]bool, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ks {
					ks[i] = uint64(rng.Intn(span))
					vs[i] = ks[i] * 3 // value derived from key: torn reads detectable
				}
				tr.InsertBatch(ks, vs, ins)
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(span))
			tr.Insert(k, k*3)
		}
	}()

	rng := rand.New(rand.NewSource(7))
	q := make([]uint64, 128)
	got := make([]uint64, 128)
	ok := make([]bool, 128)
	for round := 0; round < 300; round++ {
		for i := range q {
			q[i] = uint64(rng.Intn(span))
		}
		tr.LookupBatch(q, got, ok)
		for i := range q {
			if ok[i] && got[i] != q[i]*3 {
				t.Errorf("torn read: key %d -> %d", q[i], got[i])
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after concurrent batches: %v", err)
	}
}

// TestSessionBatchTracksExpansions verifies the §5.2 contract through the
// batch write path: eagerly expanded leaves are tracked even when no key
// in the batch was sampled, so a later adaptation phase can compact them.
func TestSessionBatchTracksExpansions(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{
		Tree:         Config{DefaultEncoding: EncSuccinct},
		InitialSkip:  1 << 30, // effectively never sample: only expansions track
		FixedSkip:    true,
		DisableBloom: true, // the filter absorbs first sightings by design
	})
	s := a.NewSession()
	ks := make([]uint64, 256)
	vs := make([]uint64, 256)
	ins := make([]bool, 256)
	for i := range ks {
		ks[i] = uint64(i)
		vs[i] = uint64(i)
	}
	s.InsertBatch(ks, vs, ins)
	s.Flush()
	if got := a.Tree.Expansions(); got == 0 {
		t.Fatal("batch insert into succinct leaves should expand eagerly")
	}
	if got := a.Mgr.TrackedUnits(); got == 0 {
		t.Fatal("expanded leaves must be tracked for deferred compaction")
	}
	// Batch lookups through a session keep results identical.
	got := make([]uint64, 256)
	ok := make([]bool, 256)
	s.LookupBatch(ks, got, ok)
	for i := range ks {
		if !ok[i] || got[i] != vs[i] {
			t.Fatalf("session LookupBatch[%d] = (%d,%v) want (%d,true)", i, got[i], ok[i], vs[i])
		}
	}
}

// TestInsertBatchAdaptMidRun pins the lock protocol between batched
// inserts and synchronous adaptation. A tracked insert can complete a
// sampling phase whose adaptation wants to migrate the very leaf the run
// just wrote; the migration takes that leaf's write lock, so tracking must
// happen only after the run releases it. This deadlocked: sample-every-key
// knobs put a phase boundary inside a merged insert run and InsertBatch
// hung forever in MigrateLeaf.
func TestInsertBatchAdaptMidRun(t *testing.T) {
	keys, vals := sortedPairs(50000, 9)
	base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:        Config{DefaultEncoding: EncSuccinct, ExpandOnInsert: true},
		InitialSkip: 1, MinSkip: 1, MaxSkip: 1,
		MaxSampleSize: 8, // a phase every 8 tracked ops: adapt lands mid-batch
		MemoryBudget:  base.Bytes() + 2*(LeafCap*16+leafHeaderBytes),
	}, keys, vals)
	defer a.Close()
	s := a.NewSession()
	const hot = 256
	ik := make([]uint64, hot)
	iv := make([]uint64, hot)
	ib := make([]bool, hot)
	for round := 0; round < 200; round++ {
		for i := range ik {
			ik[i] = keys[i%hot] // one or two leaves: whole batch merges into runs
			iv[i] = uint64(round)
		}
		s.InsertBatch(ik, iv, ib)
	}
	if err := a.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
