package btree

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements epoch-based reclamation for retired leaf images.
//
// Before it, MigrateLeaf re-encoded the payload while holding the leaf's
// write lock: the lock was the only thing preventing a migration from
// publishing a new image while readers still probed the old one, so the
// whole O(decode+encode) build sat inside the rekey protocol's blocking
// window. With epochs the migrator builds the new image outside the lock
// (optimistically, re-validating the box pointer under the lock before
// the O(1) swap) and the displaced image goes onto a grace-period retire
// list instead of being dropped to the garbage collector.
//
// The protocol: readers stamp the global epoch into a per-reader slot on
// entry (pin) and clear it on exit (unpin); a migrator retiring an image
// first publishes the replacement, then advances the global epoch and
// tags the retired image with the new value. An image may be recycled
// once every active reader's stamp is >= its tag: with sequentially
// consistent atomics, a reader that could still observe the old image
// must have loaded the epoch before the migrator advanced it, so its
// stamp is smaller and blocks reclamation (see reclaim). Readers never
// write shared state beyond their own slot, so the serve path cost is
// one slot claim and two plain stores.
//
// Reclamation feeds the Gapped slab pool (payload.go): a retired Gapped
// image's key/value arrays are handed back to newGapped once no reader
// can touch them, so steady-state migration churn stops allocating 4 KiB
// payloads. Packed and Succinct images have irregular sizes and simply
// fall to the garbage collector when the retire list drops them.
//
// The epochs pointer is nil unless the tree runs asynchronous migrations
// (wireAdaptive sets it): single-threaded trees and static baselines pay
// nothing, and their displaced images keep going straight to the GC.

// epochSlots bounds concurrent pinned readers. 64 cache-line-sized slots
// cost 4 KiB per tree; a reader finding all slots busy spins, so the
// bound throttles extreme fan-in instead of breaking it.
const epochSlots = 64

// reclaimThreshold is the retire-list depth that triggers a reclamation
// sweep. Amortizes the slot scan over a batch of retired images.
const reclaimThreshold = 64

// readerSlot is one padded reader-epoch slot: 0 when free, otherwise
// (epoch<<1)|1. The padding keeps concurrent pins off shared lines.
type readerSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// retiredBox tags a displaced leaf image with the epoch after which no
// new reader can reach it.
type retiredBox struct {
	box   *leafBox
	epoch uint64
}

// epochs is one tree's reclamation domain.
type epochs struct {
	global atomic.Uint64
	hint   atomic.Uint32 // rotating start index for slot claims
	slots  [epochSlots]readerSlot

	mu      sync.Mutex
	retired []retiredBox

	retiredTotal   atomic.Int64
	reclaimedTotal atomic.Int64
	recycledTotal  atomic.Int64
}

func newEpochs() *epochs {
	return &epochs{retired: make([]retiredBox, 0, reclaimThreshold*2)}
}

// pin claims a reader slot stamped with the current global epoch. Safe on
// a nil receiver (reclamation disabled): returns nil, and unpin(nil) is a
// no-op — read paths call pin/unpin unconditionally.
func (e *epochs) pin() *readerSlot {
	if e == nil {
		return nil
	}
	g := e.global.Load()
	start := int(e.hint.Add(1))
	for {
		for i := 0; i < epochSlots; i++ {
			s := &e.slots[(start+i)&(epochSlots-1)]
			if s.v.Load() == 0 && s.v.CompareAndSwap(0, g<<1|1) {
				return s
			}
		}
		// All slots busy: yield and retry with a fresh stamp (a stale
		// stamp would be safe — it only delays reclamation — but the
		// reload keeps the lag honest while we wait).
		runtime.Gosched()
		g = e.global.Load()
	}
}

// pinProf is pin with wait accounting for the flight recorder: each
// full-table scan that found every slot busy increments *spins.
func (e *epochs) pinProf(spins *int32) *readerSlot {
	if e == nil {
		return nil
	}
	g := e.global.Load()
	start := int(e.hint.Add(1))
	for {
		for i := 0; i < epochSlots; i++ {
			s := &e.slots[(start+i)&(epochSlots-1)]
			if s.v.Load() == 0 && s.v.CompareAndSwap(0, g<<1|1) {
				return s
			}
		}
		*spins++
		runtime.Gosched()
		g = e.global.Load()
	}
}

// unpin releases a slot claimed by pin.
func (e *epochs) unpin(s *readerSlot) {
	if s != nil {
		s.v.Store(0)
	}
}

// retire parks a displaced leaf image until its grace period passes. The
// caller must already have published the replacement image (the epoch
// advance below must happen after the swap, or a reader could stamp a
// too-new epoch and still load the old image). On a nil receiver the
// image simply falls to the garbage collector.
func (e *epochs) retire(b *leafBox) {
	if e == nil {
		return
	}
	ep := e.global.Add(1)
	e.retiredTotal.Add(1)
	e.mu.Lock()
	e.retired = append(e.retired, retiredBox{box: b, epoch: ep})
	n := len(e.retired)
	e.mu.Unlock()
	if n >= reclaimThreshold {
		e.reclaim()
	}
}

// minActive returns the smallest epoch stamped by an active reader, and
// whether any reader is active.
func (e *epochs) minActive() (uint64, bool) {
	min := uint64(math.MaxUint64)
	any := false
	for i := range e.slots {
		if v := e.slots[i].v.Load(); v&1 == 1 {
			if ep := v >> 1; ep < min {
				min = ep
			}
			any = true
		}
	}
	return min, any
}

// reclaim frees every retired image whose grace period has passed: an
// image tagged ep is unreachable for all readers stamped >= ep, so it
// may go once min(active stamps) >= ep (or no reader is pinned at all).
// Gapped payload buffers are recycled into the slab pool.
func (e *epochs) reclaim() {
	min, any := e.minActive()
	e.mu.Lock()
	kept := e.retired[:0]
	freed := 0
	for _, r := range e.retired {
		if any && r.epoch > min {
			kept = append(kept, r)
			continue
		}
		if recyclePayload(r.box.p) {
			e.recycledTotal.Add(1)
		}
		freed++
	}
	// Clear the tail so dropped boxes do not linger in the backing array.
	tail := e.retired[len(kept):]
	for i := range tail {
		tail[i] = retiredBox{}
	}
	e.retired = kept
	e.mu.Unlock()
	e.reclaimedTotal.Add(int64(freed))
}

// stats reports the retire-list depth and the epoch lag of the oldest
// pinned reader behind the global epoch (0 with no active readers).
func (e *epochs) stats() (depth, lag int64) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	depth = int64(len(e.retired))
	e.mu.Unlock()
	if min, any := e.minActive(); any {
		lag = int64(e.global.Load() - min)
	}
	return depth, lag
}
