package btree

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ahi/internal/core"
	"ahi/internal/workload"
)

// cacheFixture bulk-loads an adaptive tree with the result cache and
// negative filters on, an absolute budget of the compact baseline plus
// extraLeaves full Gapped leaves, and the cache sized at frac of it.
func cacheFixture(n, extraLeaves int, frac float64, seed int64) (*Adaptive, int64, []uint64) {
	keys, vals := sortedPairs(n, seed)
	base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	cfg := AdaptiveConfig{
		Tree:        Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
		MemoryBudget:  base.Bytes() + int64(extraLeaves)*(LeafCap*16+leafHeaderBytes),
		CacheFraction: frac,
	}
	return BulkLoadAdaptive(cfg, keys, vals), cfg.MemoryBudget, keys
}

// TestCacheBudgetEdge drives a cached tree to its budget edge and checks
// the hard invariant of the charge accounting: encodings plus cache never
// exceed the configured budget. The cache is deliberately oversized —
// fraction 0.15 of the whole budget lands at roughly two thirds of the
// expansion headroom above the succinct floor — so an accounting slip
// (the tree expanding into the cache's slice) would overspend visibly.
func TestCacheBudgetEdge(t *testing.T) {
	run := func(frac float64) (total int64, budget int64, gapped int64) {
		a, budget, keys := cacheFixture(50000, 40, frac, 2)
		s := a.NewSession()
		z := workload.NewZipf(len(keys), 1.0, 5)
		for i := 0; i < 2_000_000; i++ {
			s.Lookup(keys[z.Draw()])
		}
		_, _, gapped = a.Tree.LeafCounts()
		return a.Tree.Bytes() + a.CacheBytes(), budget, gapped
	}

	total, budget, gapped := run(0.15)
	// One leaf of slack, as for the uncached budget test: a migration that
	// was in flight when the phase's budget was computed may land late.
	if total > budget+LeafCap*16 {
		t.Fatalf("tree+cache = %d exceeds budget %d", total, budget)
	}
	if gapped == 0 {
		t.Fatal("budget so tight nothing expanded")
	}
	freeTotal, _, freeGapped := run(0)
	if freeTotal > budget+LeafCap*16 {
		t.Fatalf("uncached tree = %d exceeds budget %d", freeTotal, budget)
	}
	// The cache's slice must have come out of the expansion headroom.
	if gapped >= freeGapped {
		t.Fatalf("cache charge did not shrink expansions: %d gapped with cache, %d without", gapped, freeGapped)
	}
}

// TestCacheInvalidationRace races cached readers against overwriting
// writers and forced leaf migrations (the full invalidation surface:
// per-key stripes bumped by writers, leaf-wide bumps by MigrateLeaf, and
// epoch retirement of displaced images). Readers check every value they
// see is one some writer actually wrote for that exact key — a stale or
// cross-key cache hit fails the decode. Run under -race.
func TestCacheInvalidationRace(t *testing.T) {
	const (
		n       = 20000
		readers = 4
		writers = 2
		ops     = 200_000
	)
	keys, vals := sortedPairs(n, 7)
	base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:        Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
		MemoryBudget:    base.Bytes() + 40*(LeafCap*16+leafHeaderBytes),
		CacheFraction:   0.3,
		Mode:            core.GS,
		AsyncMigrations: true, // epoch reclamation on: retired images race too
	}, keys, vals)
	defer a.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writers overwrite hot-skewed keys with values of the form
	// initial(k) + 1000*g, keeping invalidation pressure on exactly the
	// keys the cache holds.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := a.NewSession()
			z := workload.NewZipf(n, 1.1, int64(100+id))
			for g := 1; !stop.Load(); g++ {
				j := z.Draw()
				s.Insert(keys[j], vals[j]+1000*uint64(g%1000+1))
			}
		}(w)
	}
	// A migrator cycles random leaves through every encoding, displacing
	// images the cache path may still be decoding from.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for !stop.Load() {
			_, leaf, _ := a.Tree.lookupLeaf(keys[rng.Intn(n)])
			a.Tree.MigrateLeaf(leaf, core.Encoding(rng.Intn(3)))
		}
	}()

	var bad atomic.Int64
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(id int) {
			defer rwg.Done()
			s := a.NewSession()
			z := workload.NewZipf(n, 1.1, int64(id))
			for i := 0; i < ops; i++ {
				j := z.Draw()
				v, ok := s.Lookup(keys[j])
				if !ok || (v-vals[j])%1000 != 0 || v < vals[j] {
					bad.Add(1)
				}
			}
		}(r)
	}
	// Readers bound the run; writers and the migrator spin until all of
	// them finish, keeping invalidation pressure up the whole time.
	rwg.Wait()
	stop.Store(true)
	wg.Wait()
	if got := bad.Load(); got != 0 {
		t.Fatalf("%d reads returned values never written for their key", got)
	}
	if err := a.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	st := a.CacheStats()
	if st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("race exercised nothing: hits=%d invalidations=%d", st.Hits, st.Invalidations)
	}
}

// FuzzCacheOracle replays an arbitrary operation tape through a cached
// session against a map oracle, with forced leaf migrations interleaved.
// Sequential consistency through the cache is strict: the moment an
// Insert or Delete returns, a Lookup of that key must see the new state.
func FuzzCacheOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 10, 0, 4, 10, 0, 1, 10, 0, 4, 10, 0, 2, 10, 0, 4, 10, 0})
	f.Add([]byte{9, 1, 9, 2, 9, 3, 9, 4, 9, 5, 9, 6, 9, 7, 9, 8, 9, 9})
	f.Fuzz(func(t *testing.T, tape []byte) {
		// Seed keys so the cache has something to hold from the start.
		keys := make([]uint64, 256)
		vals := make([]uint64, 256)
		for i := range keys {
			keys[i] = uint64(i) * 257
			vals[i] = uint64(i) + 1
		}
		a := BulkLoadAdaptive(AdaptiveConfig{
			Tree:        Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
			InitialSkip: 4, MinSkip: 2, MaxSkip: 64,
			MemoryBudget:  1 << 20,
			CacheFraction: 0.3,
		}, keys, vals)
		s := a.NewSession()
		ref := map[uint64]uint64{}
		for i := range keys {
			ref[keys[i]] = vals[i]
		}
		var last uint64
		for i := 0; i+2 < len(tape); i += 3 {
			op := tape[i] % 5
			k := uint64(binary.LittleEndian.Uint16(tape[i+1 : i+3]))
			switch op {
			case 0, 1: // insert / overwrite
				v := uint64(tape[i]) + 1
				s.Insert(k, v)
				ref[k] = v
				last = k
			case 2: // delete
				got := s.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("Delete(%d)=%v want %v", k, got, want)
				}
				delete(ref, k)
			case 3: // lookup — the cache must agree with the oracle
				got, ok := s.Lookup(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%d)=(%d,%v) want (%d,%v)", k, got, ok, want, wok)
				}
			case 4: // migrate the leaf holding the last touched key
				_, leaf, _ := a.Tree.lookupLeaf(last)
				a.Tree.MigrateLeaf(leaf, core.Encoding(tape[i]%3))
				// The migrated leaf's keys must still read correctly.
				got, ok := s.Lookup(last)
				want, wok := ref[last]
				if ok != wok || (ok && got != want) {
					t.Fatalf("post-migrate Lookup(%d)=(%d,%v) want (%d,%v)", last, got, ok, want, wok)
				}
			}
		}
		if err := a.Tree.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLookupBatchZeroAlloc pins the zero-allocation guarantee on the
// batched lookup hot path, cached and uncached. Sampling is pushed out of
// reach (huge fixed skip) so the measured passes are pure hot path — the
// same configuration the CI gate benchmarks run with `-benchmem`.
func TestLookupBatchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		frac float64
	}{{"NoCache", 0}, {"Cache", 0.2}} {
		t.Run(tc.name, func(t *testing.T) {
			keys, vals := sortedPairs(100000, 3)
			base := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
			a := BulkLoadAdaptive(AdaptiveConfig{
				Tree:          Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
				InitialSkip:   1 << 30,
				FixedSkip:     true,
				MemoryBudget:  base.Bytes() * 2,
				CacheFraction: tc.frac,
			}, keys, vals)
			s := a.NewSession()
			z := workload.NewZipf(len(keys), 0.99, 17)
			qk := make([]uint64, 128)
			qv := make([]uint64, 128)
			qf := make([]bool, 128)
			for i := range qk {
				qk[i] = keys[z.Draw()]
			}
			s.LookupBatch(qk, qv, qf) // warm: scratch growth + cache fill
			if avg := testing.AllocsPerRun(100, func() {
				s.LookupBatch(qk, qv, qf)
			}); avg != 0 {
				t.Fatalf("LookupBatch allocates %.1f allocs/op, want 0", avg)
			}
		})
	}
}
