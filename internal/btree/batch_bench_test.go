package btree

import (
	"testing"

	"ahi/internal/workload"
)

func benchTree(n int) (*Tree, []uint64) {
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 5
		vals[i] = uint64(i)
	}
	return BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals), keys
}

func BenchmarkLookupSingleZipf(b *testing.B) {
	t, keys := benchTree(1 << 20)
	d := workload.NewZipf(len(keys), 1.1, 7)
	q := make([]uint64, 128)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i += len(q) {
		for j := range q {
			q[j] = keys[d.Draw()]
		}
		for _, k := range q {
			v, _ := t.Lookup(k)
			sink += v
		}
	}
	_ = sink
}

func BenchmarkLookupBatch128Zipf(b *testing.B) {
	t, keys := benchTree(1 << 20)
	d := workload.NewZipf(len(keys), 1.1, 7)
	q := make([]uint64, 128)
	qv := make([]uint64, 128)
	qf := make([]bool, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(q) {
		for j := range q {
			q[j] = keys[d.Draw()]
		}
		t.LookupBatch(q, qv, qf)
	}
}
