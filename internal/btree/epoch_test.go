package btree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ahi/internal/core"
)

// epochTree builds a bulk-loaded tree with epoch reclamation enabled,
// exactly as wireAdaptive does for async-migration trees.
func epochTree(tb testing.TB, n int) (*Tree, []uint64, []uint64) {
	tb.Helper()
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 7
		vals[i] = uint64(i)*7 + 1
	}
	tr := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals)
	tr.epochs = newEpochs()
	return tr, keys, vals
}

func TestEpochPinUnpinStamps(t *testing.T) {
	e := newEpochs()
	s1 := e.pin()
	if s1 == nil || s1.v.Load() != 1 { // epoch 0 stamped as 0<<1|1
		t.Fatalf("pin stamped %v, want 1", s1)
	}
	s2 := e.pin()
	if s2 == s1 {
		t.Fatal("two concurrent pins share a slot")
	}
	e.unpin(s1)
	if s1.v.Load() != 0 {
		t.Fatal("unpin did not free the slot")
	}
	e.unpin(s2)
	// Nil receiver (reclamation disabled) must be a no-op end to end.
	var nilE *epochs
	nilE.unpin(nilE.pin())
	nilE.retire(&leafBox{})
}

func TestEpochReclaimBlockedByActiveReader(t *testing.T) {
	e := newEpochs()
	slot := e.pin() // reader enters before any retirement
	boxes := make([]*leafBox, 0, reclaimThreshold)
	for i := 0; i < reclaimThreshold; i++ {
		b := &leafBox{p: newGapped(nil, nil)}
		boxes = append(boxes, b)
		e.retire(b) // threshold-th retire triggers a reclaim attempt
	}
	if got := e.reclaimedTotal.Load(); got != 0 {
		t.Fatalf("reclaimed %d images while a pre-retirement reader is pinned", got)
	}
	depth, lag := e.stats()
	if depth != reclaimThreshold {
		t.Fatalf("retire depth = %d, want %d", depth, reclaimThreshold)
	}
	if lag != int64(reclaimThreshold) {
		t.Fatalf("epoch lag = %d, want %d", lag, reclaimThreshold)
	}
	e.unpin(slot)
	e.reclaim()
	if got := e.reclaimedTotal.Load(); got != int64(len(boxes)) {
		t.Fatalf("reclaimed %d images after reader exit, want %d", got, len(boxes))
	}
	if depth, _ := e.stats(); depth != 0 {
		t.Fatalf("retire depth = %d after full reclaim, want 0", depth)
	}
	if e.recycledTotal.Load() == 0 {
		t.Fatal("full-size gapped images must recycle into the slab pool")
	}
}

func TestEpochLateReaderDoesNotBlockOlderGarbage(t *testing.T) {
	e := newEpochs()
	for i := 0; i < 8; i++ {
		e.retire(&leafBox{p: newGapped(nil, nil)})
	}
	// This reader pinned after all 8 retirements: its stamp is >= every
	// retired epoch, so it cannot reach any of those images.
	slot := e.pin()
	e.reclaim()
	if got := e.reclaimedTotal.Load(); got != 8 {
		t.Fatalf("reclaimed %d, want 8 (late reader must not block old garbage)", got)
	}
	e.unpin(slot)
}

// TestMigrateLeafSingleReencode is the double re-encode regression test:
// concurrent MigrateLeaf calls for the same leaf and target must apply
// exactly one encoding swap — the losers observe the box change (or the
// already-reached target) and back off without re-encoding again.
func TestMigrateLeafSingleReencode(t *testing.T) {
	for round := 0; round < 50; round++ {
		tr, keys, _ := epochTree(t, 200)
		_, leaf, _ := tr.lookupLeaf(keys[0])
		var applied atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if tr.MigrateLeaf(leaf, EncGapped) {
					applied.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := applied.Load(); got != 1 {
			t.Fatalf("round %d: %d MigrateLeaf calls applied, want exactly 1", round, got)
		}
		if got := tr.Expansions(); got != 1 {
			t.Fatalf("round %d: expansions counter = %d, want 1", round, got)
		}
		if enc := leaf.Encoding(); enc != EncGapped {
			t.Fatalf("round %d: leaf encoding = %v, want gapped", round, enc)
		}
	}
}

// TestEpochReadersVsMigrations hammers every read path (point, batch,
// scan, iterator) while two migrator goroutines cycle all leaves between
// encodings, forcing constant retire/reclaim/recycle traffic through the
// slab pool. Run under -race: a reader touching a recycled payload is a
// detectable data race, and any wrong value fails the assertions.
func TestEpochReadersVsMigrations(t *testing.T) {
	const n = 5000
	tr, keys, vals := epochTree(t, n)
	want := make(map[uint64]uint64, n)
	for i, k := range keys {
		want[k] = vals[i]
	}
	stop := make(chan struct{})
	var migrators, readersWG sync.WaitGroup

	// Migrators: walk the leaves and rotate each through all encodings.
	targets := []core.Encoding{EncGapped, EncPacked, EncSuccinct}
	for g := 0; g < 2; g++ {
		migrators.Add(1)
		go func(g int) {
			defer migrators.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tgt := targets[(i+g)%len(targets)]
				tr.WalkLeaves(func(l *Leaf) bool {
					tr.MigrateLeaf(l, tgt)
					return true
				})
			}
		}(g)
	}

	readers := 4
	errs := make(chan string, readers)
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			bk := make([]uint64, 64)
			bv := make([]uint64, 64)
			bf := make([]bool, 64)
			for iter := 0; iter < 300; iter++ {
				switch iter % 4 {
				case 0: // point lookups
					for j := 0; j < 64; j++ {
						k := keys[rng.Intn(n)]
						v, ok := tr.Lookup(k)
						if !ok || v != want[k] {
							errs <- "point lookup corrupted under migration"
							return
						}
					}
				case 1: // batch lookups
					for j := range bk {
						bk[j] = keys[rng.Intn(n)]
					}
					tr.LookupBatch(bk, bv, bf)
					for j := range bk {
						if !bf[j] || bv[j] != want[bk[j]] {
							errs <- "batch lookup corrupted under migration"
							return
						}
					}
				case 2: // bounded scans
					from := keys[rng.Intn(n)]
					prev := uint64(0)
					first := true
					tr.Scan(from, 128, func(k, v uint64) bool {
						if (!first && k <= prev) || v != want[k] {
							errs <- "scan corrupted under migration"
							return false
						}
						prev, first = k, false
						return true
					})
				case 3: // iterator
					it := tr.NewIterator()
					cnt := 0
					for ok := it.Seek(keys[rng.Intn(n)]); ok && cnt < 128; ok = it.Next() {
						if want[it.Key()] != it.Value() {
							errs <- "iterator corrupted under migration"
							return
						}
						cnt++
					}
				}
			}
		}(int64(g + 1))
	}

	// Readers finish on their own; migrators run until told to stop.
	readersWG.Wait()
	close(stop)
	migrators.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if tr.epochs.retiredTotal.Load() == 0 {
		t.Fatal("no images were retired; migration churn did not exercise reclamation")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
