package btree

import (
	"slices"
	"sort"
	"testing"

	"ahi/internal/workload"
)

// Read-path benchmarks: session lookups with and without the result
// cache, single-key and batched. These back the CI regression gate
// (cmd/benchgate) and the allocs/op == 0 assertion on the batch path.

const (
	benchKeys  = 1 << 22
	benchZipf  = 0.99
	benchSeed  = 11
	benchBatch = 128
)

// benchKeySet builds a sorted unique random-u64 key set (YCSB-style:
// wide deltas, so Succinct leaves pay a realistic frame-of-reference
// decode, unlike consecutive keys whose FOR arrays are nearly free).
func benchKeySet() (keys, vals []uint64) {
	keys = make([]uint64, 0, benchKeys)
	var x uint64 = 0x9e3779b97f4a7c15
	for len(keys) < benchKeys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	keys = slices.Compact(keys)
	vals = make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	return keys, vals
}

// benchQueries pre-draws the query sequence so the timed loop measures
// lookups, not the Zipf sampler.
func benchQueries(keys []uint64, n int) []uint64 {
	d := workload.NewZipf(len(keys), benchZipf, benchSeed)
	q := make([]uint64, n)
	for i := range q {
		q[i] = keys[d.Draw()]
	}
	return q
}

func benchAdaptive(b *testing.B, frac float64) (*Adaptive, []uint64) {
	b.Helper()
	keys, vals := benchKeySet()
	// Tight budget: barely above the all-succinct floor, the regime the
	// cache is built for (hot leaves cannot all expand, so uncached hot
	// lookups pay the compressed decode).
	succ := BulkLoad(Config{DefaultEncoding: EncSuccinct}, keys, vals).Bytes()
	gap := BulkLoad(Config{DefaultEncoding: EncGapped}, keys, vals).Bytes()
	budget := succ + (gap-succ)/16
	a := BulkLoadAdaptive(AdaptiveConfig{
		Tree:          Config{DefaultEncoding: EncSuccinct, NegFilterBits: 6},
		MemoryBudget:  budget,
		InitialSkip:   8,
		MinSkip:       4,
		MaxSkip:       32,
		CacheFraction: frac,
	}, keys, vals)
	b.Cleanup(a.Close)
	return a, keys
}

func warmSession(a *Adaptive, q []uint64) *Session {
	s := a.NewSession()
	qv := make([]uint64, benchBatch)
	qf := make([]bool, benchBatch)
	for off := 0; off+benchBatch <= len(q); off += benchBatch {
		s.LookupBatch(q[off:off+benchBatch], qv, qf)
	}
	return s
}

func benchmarkLookup(b *testing.B, frac float64) {
	a, keys := benchAdaptive(b, frac)
	q := benchQueries(keys, 1<<18)
	s := warmSession(a, q)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := s.Lookup(q[i&(len(q)-1)])
		sink += v
	}
	_ = sink
}

func benchmarkLookupBatch(b *testing.B, frac float64) {
	a, keys := benchAdaptive(b, frac)
	q := benchQueries(keys, 1<<18)
	s := warmSession(a, q)
	qv := make([]uint64, benchBatch)
	qf := make([]bool, benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatch {
		off := i & (len(q) - 1 - benchBatch)
		s.LookupBatch(q[off:off+benchBatch], qv, qf)
	}
}

func BenchmarkSessionLookupNoCache(b *testing.B) { benchmarkLookup(b, 0) }
func BenchmarkSessionLookupCache10(b *testing.B) { benchmarkLookup(b, 0.10) }
func BenchmarkLookupBatchNoCache(b *testing.B)   { benchmarkLookupBatch(b, 0) }
func BenchmarkLookupBatchCache10(b *testing.B)   { benchmarkLookupBatch(b, 0.10) }
