package btree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ahi/internal/cache"
	"ahi/internal/core"
)

// Concurrency note. The paper synchronizes the Hybrid B+-tree with
// Optimistic Lock Coupling, whose readers tolerate benign torn reads and
// re-validate versions afterwards. Go's memory model gives no such
// allowance — a torn slice-header read can fault — so this implementation
// keeps OLC's essential property (readers take no locks and write nothing)
// via the Lehman–Yao B-link scheme with copy-on-write node images: every
// node holds an atomic pointer to an immutable box (keys, children, high
// key, right-sibling link); readers load boxes and "move right" when a
// concurrent split shifted their key, writers serialize per node through
// the version lock in olc.go. See DESIGN.md §4 for the substitution entry.

// innerCap is the maximum number of children per inner node.
const innerCap = 64

// Leaf is one leaf node: a stable identity (the tracked unit of the
// adaptation framework) whose payload image is swapped atomically.
type Leaf struct {
	lock olcLock
	id   uint64
	box  atomic.Pointer[leafBox]
}

// ID returns the leaf's stable numeric identity.
func (l *Leaf) ID() uint64 { return l.id }

// Encoding returns the leaf's current encoding.
func (l *Leaf) Encoding() core.Encoding { return l.box.Load().p.encoding() }

// leafBox is one immutable leaf image.
type leafBox struct {
	p       payload
	next    *Leaf
	highKey uint64 // exclusive upper bound of this leaf, valid if hasHigh
	hasHigh bool
}

func (b *leafBox) covers(k uint64) bool { return !b.hasHigh || k < b.highKey }

// Inner is one inner node.
type Inner struct {
	lock olcLock
	box  atomic.Pointer[innerBox]
}

// innerBox is one immutable inner-node image. children[i] covers keys in
// [keys[i-1], keys[i]); len(children) == len(keys)+1.
type innerBox struct {
	keys     []uint64
	children []childRef
	next     *Inner
	highKey  uint64
	hasHigh  bool
	// depth is the node's height above the leaves: 1 means the children
	// are leaves. Separator inserts target the level right above the
	// split node by depth, which stays correct however the root moves.
	depth uint8
}

func (b *innerBox) leafLevel() bool { return b.depth == 1 }

func (b *innerBox) covers(k uint64) bool { return !b.hasHigh || k < b.highKey }

// childIdx returns the index of the child covering k.
func (b *innerBox) childIdx(k uint64) int {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childRef points to either an inner node or a leaf.
type childRef struct {
	inner *Inner
	leaf  *Leaf
}

// Config configures a Tree.
type Config struct {
	// DefaultEncoding is applied to bulk-loaded and freshly split leaves
	// (EncGapped for the classic tree, EncSuccinct/EncPacked for the
	// compact baselines).
	DefaultEncoding core.Encoding
	// Occupancy is the bulk-load fill factor of leaves (default 0.70, the
	// paper's assumed average).
	Occupancy float64
	// ExpandOnInsert eagerly migrates non-Gapped leaves to Gapped when a
	// write hits them (the adaptive tree's policy, §5.2); without it,
	// writes re-encode in place, preserving the leaf's encoding.
	ExpandOnInsert bool
	// NegFilterBits, when positive, embeds a negative-lookup filter of
	// that many bits per key into every Succinct leaf (built at encode
	// time, immutable afterwards). Point lookups consult it before the
	// bit-unpacking search, so misses on cold leaves short-circuit. The
	// filter bytes are part of the leaf footprint and hence the budget.
	NegFilterBits int
}

// Tree is the Hybrid B+-tree. The zero value is not usable; construct via
// New or BulkLoad. All methods are safe for concurrent use.
type Tree struct {
	cfg    Config
	root   atomic.Pointer[Inner]
	rootMu sync.Mutex // serializes root growth
	nextID atomic.Uint64

	// Accounting (bytes include payloads + per-node headers).
	countByEnc [3]atomic.Int64
	bytesByEnc [3]atomic.Int64
	innerBytes atomic.Int64
	innerCount atomic.Int64
	keyCount   atomic.Int64

	expansions  atomic.Int64
	compactions atomic.Int64

	// epochs is the grace-period reclamation domain for leaf images
	// displaced by migrations (epoch.go). Nil — the default — disables
	// reclamation: read paths skip pinning and retired images fall to
	// the garbage collector. wireAdaptive enables it alongside the
	// asynchronous migration pipeline.
	epochs *epochs

	// onLeafSplit, if set, is invoked after a leaf split with the split
	// leaf and its (new) parent-side context; the adaptive layer uses it
	// to refresh tracked contexts.
	onLeafSplit func(left, right *Leaf)

	// rcache is the attached hot-key result cache (nil = disabled).
	// Write paths keep it strictly coherent: every mutation of k bumps
	// k's invalidation stripe and clears matching slots before returning,
	// and leaf migrations publish an invalidation epoch for the retired
	// image's keys. Read integration (probe/admit) lives in the adaptive
	// Session so it can reuse the hotness sampler as admission signal.
	rcache *cache.Cache

	// negHits counts point lookups short-circuited by a leaf's negative
	// filter (misses that skipped the succinct search entirely).
	negHits atomic.Int64

	// migActive counts leaf migrations currently re-encoding. The flight
	// recorder reads it at op end to tag ops that overlapped a migration
	// (the dominant tail cause the paper's premise predicts).
	migActive atomic.Int32
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Occupancy <= 0 || cfg.Occupancy > 1 {
		cfg.Occupancy = 0.70
	}
	t := &Tree{cfg: cfg}
	leaf := t.newLeaf(t.encode(cfg.DefaultEncoding, nil, nil), nil, 0, false)
	root := &Inner{}
	rb := &innerBox{children: []childRef{{leaf: leaf}}, depth: 1}
	root.box.Store(rb)
	t.root.Store(root)
	t.innerCount.Add(1)
	t.innerBytes.Add(int64(innerBoxBytes(rb)))
	return t
}

func (t *Tree) newLeaf(p payload, next *Leaf, highKey uint64, hasHigh bool) *Leaf {
	l := &Leaf{id: t.nextID.Add(1)}
	l.box.Store(&leafBox{p: p, next: next, highKey: highKey, hasHigh: hasHigh})
	e := p.encoding()
	t.countByEnc[e].Add(1)
	t.bytesByEnc[e].Add(int64(p.bytes() + leafHeaderBytes))
	return l
}

// swapLeafBox replaces a leaf's image under its lock, fixing accounting.
func (t *Tree) swapLeafBox(l *Leaf, old, new_ *leafBox) {
	oe, ne := old.p.encoding(), new_.p.encoding()
	t.countByEnc[oe].Add(-1)
	t.bytesByEnc[oe].Add(-int64(old.p.bytes() + leafHeaderBytes))
	t.countByEnc[ne].Add(1)
	t.bytesByEnc[ne].Add(int64(new_.p.bytes() + leafHeaderBytes))
	l.box.Store(new_)
}

func innerBoxBytes(b *innerBox) int {
	return len(b.keys)*8 + len(b.children)*16 + 48
}

// BulkLoad builds a tree from sorted, unique keys with parallel values,
// filling leaves to cfg.Occupancy with cfg.DefaultEncoding.
func BulkLoad(cfg Config, keys, vals []uint64) *Tree {
	if len(keys) != len(vals) {
		panic("btree: keys and vals length mismatch")
	}
	if cfg.Occupancy <= 0 || cfg.Occupancy > 1 {
		cfg.Occupancy = 0.70
	}
	t := &Tree{cfg: cfg}
	per := int(float64(LeafCap) * cfg.Occupancy)
	if per < 1 {
		per = 1
	}
	if len(keys) == 0 {
		return New(cfg)
	}
	// Build the leaf level.
	var leaves []*Leaf
	var seps []uint64 // seps[i] = first key of leaf i (i >= 1)
	for i := 0; i < len(keys); i += per {
		end := i + per
		if end > len(keys) {
			end = len(keys)
		}
		p := t.encode(cfg.DefaultEncoding, keys[i:end], vals[i:end])
		leaves = append(leaves, t.newLeaf(p, nil, 0, false))
		if i > 0 {
			seps = append(seps, keys[i])
		}
	}
	t.keyCount.Store(int64(len(keys)))
	t.assemble(leaves, seps)
	return t
}

// assemble links a sorted run of freshly built leaves and constructs the
// inner levels bottom-up, installing the root. seps[i-1] is the first
// key of leaves[i]. Shared by BulkLoad and checkpoint restore (which
// needs the same construction but with per-leaf encodings).
func (t *Tree) assemble(leaves []*Leaf, seps []uint64) {
	for i := 0; i < len(leaves)-1; i++ {
		b := leaves[i].box.Load()
		b.next = leaves[i+1]
		b.highKey = seps[i]
		b.hasHigh = true
	}
	// Build inner levels bottom-up.
	level := make([]childRef, len(leaves))
	for i, l := range leaves {
		level[i] = childRef{leaf: l}
	}
	levelSeps := seps
	depth := uint8(1)
	for {
		var nextLevel []childRef
		var nextSeps []uint64
		var prevInner *Inner
		for i := 0; i < len(level); i += innerCap {
			end := i + innerCap
			if end > len(level) {
				end = len(level)
			}
			box := &innerBox{
				children: append([]childRef(nil), level[i:end]...),
				depth:    depth,
			}
			// Separators between children i..end-1 are levelSeps[i..end-2].
			if end-1 > i {
				box.keys = append([]uint64(nil), levelSeps[i:end-1]...)
			}
			in := &Inner{}
			in.box.Store(box)
			t.innerCount.Add(1)
			t.innerBytes.Add(int64(innerBoxBytes(box)))
			if prevInner != nil {
				pb := prevInner.box.Load()
				pb.next = in
				pb.highKey = levelSeps[i-1]
				pb.hasHigh = true
			}
			prevInner = in
			nextLevel = append(nextLevel, childRef{inner: in})
			if i > 0 {
				nextSeps = append(nextSeps, levelSeps[i-1])
			}
		}
		level, levelSeps = nextLevel, nextSeps
		depth++
		if len(level) == 1 {
			break
		}
	}
	t.root.Store(level[0].inner)
}

// descend walks from the root to the leaf responsible for k. It appends
// the visited inner nodes to stack (outermost first) when stack != nil and
// returns the leaf plus the inner node it was reached from.
func (t *Tree) descend(k uint64, stack *[]*Inner) (*Leaf, *Inner) {
	node := t.root.Load()
	for {
		b := node.box.Load()
		if !b.covers(k) && b.next != nil {
			node = b.next
			continue
		}
		if stack != nil {
			*stack = append(*stack, node)
		}
		c := b.children[b.childIdx(k)]
		if b.leafLevel() {
			return c.leaf, node
		}
		node = c.inner
	}
}

// moveRightLeaf hops leaf images until the one covering k is found.
func moveRightLeaf(l *Leaf, k uint64) (*Leaf, *leafBox) {
	for {
		b := l.box.Load()
		if b.covers(k) || b.next == nil {
			return l, b
		}
		l = b.next
	}
}

// Lookup returns the value stored under k.
func (t *Tree) Lookup(k uint64) (uint64, bool) {
	v, _, ok := t.lookupLeaf(k)
	return v, ok
}

// lookupLeaf additionally returns the leaf that held (or would hold) k.
func (t *Tree) lookupLeaf(k uint64) (uint64, *Leaf, bool) {
	slot := t.epochs.pin()
	leaf, _ := t.descend(k, nil)
	leaf, b := moveRightLeaf(leaf, k)
	if s, ok := b.p.(*succinct); ok && !s.mayContain(k) {
		// Negative filter: definitely absent, skip the unpacking search.
		t.negHits.Add(1)
		t.epochs.unpin(slot)
		return 0, leaf, false
	}
	if i, found := b.p.search(k); found {
		v := b.p.valAt(i)
		t.epochs.unpin(slot)
		return v, leaf, true
	}
	t.epochs.unpin(slot)
	return 0, leaf, false
}

// Scan visits up to n key/value pairs with key >= from in ascending order
// and returns how many were visited. The callback may stop the scan early
// by returning false; visited counts the pairs delivered.
func (t *Tree) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	return t.scanLeaves(from, n, fn, nil)
}

// scanLeaves is Scan plus a per-leaf callback for access tracking. Each
// leaf image is bulk-decoded into pooled scratch (payload.decodeRange)
// before the callback loop, so compact encodings pay their shift/mask tax
// once per word instead of once per pair. The walk re-pins its reader
// slot every scanRepinLeaves hops: a huge n no longer holds one epoch
// stamp across the whole walk, so long scans cannot stall leaf
// reclamation beyond a bounded window. Only the GC-stable *Leaf pointer
// crosses a re-pin boundary — the next image is re-loaded under the fresh
// stamp, never carried over.
func (t *Tree) scanLeaves(from uint64, n int, fn func(k, v uint64) bool, onLeaf func(*Leaf)) int {
	if n <= 0 {
		return 0
	}
	slot := t.epochs.pin()
	leaf, _ := t.descend(from, nil)
	leaf, b := moveRightLeaf(leaf, from)
	sc := scanPool.Get().(*scanScratch)
	visited := 0
	hops := 0
	i, _ := b.p.search(from)
	for {
		if onLeaf != nil {
			onLeaf(leaf)
		}
		cnt := b.p.count()
		hi := cnt
		if rem := n - visited; hi-i > rem {
			hi = i + rem
		}
		if hi > i {
			sc.size(hi - i)
			m := b.p.decodeRange(i, hi, sc.ks, sc.vs)
			for j := 0; j < m; j++ {
				if !fn(sc.ks[j], sc.vs[j]) {
					scanPool.Put(sc)
					t.epochs.unpin(slot)
					return visited + j + 1
				}
			}
			visited += m
		}
		if visited >= n || b.next == nil {
			break
		}
		nl := b.next
		hops++
		if hops >= scanRepinLeaves {
			t.epochs.unpin(slot)
			slot = t.epochs.pin()
			hops = 0
		}
		leaf = nl
		b = nl.box.Load()
		i = 0
	}
	scanPool.Put(sc)
	t.epochs.unpin(slot)
	return visited
}

// Insert stores v under k, returning true when k was newly inserted
// (false: an existing value was overwritten).
func (t *Tree) Insert(k, v uint64) bool {
	inserted, _, _ := t.insertTracked(k, v)
	return inserted
}

// insertTracked also returns the leaf that received the key and whether
// the write eagerly expanded the leaf's encoding (the adaptive session
// must then track the leaf even when the access is not sampled, or the
// expansion could never be compacted again).
func (t *Tree) insertTracked(k, v uint64) (bool, *Leaf, bool) {
	return t.insertTrackedProf(k, v, nil)
}

// insertTrackedProf is insertTracked with optional write-retry accounting
// for the flight recorder: retries (when non-nil) counts each time the
// insert lost its leaf lock or found a dead leaf and had to re-descend.
func (t *Tree) insertTrackedProf(k, v uint64, retries *int32) (bool, *Leaf, bool) {
	for {
		stack := make([]*Inner, 0, 8)
		leaf, _ := t.descend(k, &stack)
		if !leaf.lock.writeLock() {
			if retries != nil {
				*retries++
			}
			continue // leaf became obsolete under us; re-descend
		}
		// Move right while locked (a split may have shifted our range).
		for {
			b := leaf.box.Load()
			if b.covers(k) || b.next == nil {
				break
			}
			next := b.next
			leaf.lock.unlock()
			leaf = next
			if !leaf.lock.writeLock() {
				leaf = nil
				break
			}
		}
		if leaf == nil {
			if retries != nil {
				*retries++
			}
			continue
		}
		b := leaf.box.Load()
		p := b.p

		// Overwrite in place if the key exists.
		if i, found := p.search(k); found {
			np := t.clonePayload(p)
			np.(mutablePayload).update(i, v)
			t.swapLeafBox(leaf, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
			leaf.lock.unlock()
			t.cacheInvalidate(k)
			return false, leaf, false
		}

		if p.count() < LeafCap {
			target := p.encoding()
			expanded := false
			if t.cfg.ExpandOnInsert && target != EncGapped {
				target = EncGapped
				expanded = true
				t.expansions.Add(1)
			}
			keys, vals := p.appendAll(nil, nil)
			g := gapped{keys: keys, vals: vals}
			g.insert(k, v)
			np := t.encode(target, g.keys, g.vals)
			t.swapLeafBox(leaf, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
			leaf.lock.unlock()
			t.keyCount.Add(1)
			return true, leaf, expanded
		}

		// Split: left keeps the lower half, a new right leaf the rest.
		keys, vals := p.appendAll(nil, nil)
		g := gapped{keys: keys, vals: vals}
		g.insert(k, v)
		mid := len(g.keys) / 2
		sep := g.keys[mid]
		enc := p.encoding()
		if t.cfg.ExpandOnInsert {
			enc = EncGapped
		}
		right := t.newLeaf(t.encode(enc, g.keys[mid:], g.vals[mid:]), b.next, b.highKey, b.hasHigh)
		left := &leafBox{p: t.encode(enc, g.keys[:mid], g.vals[:mid]), next: right, highKey: sep, hasHigh: true}
		t.swapLeafBox(leaf, b, left)
		leaf.lock.unlock()
		t.keyCount.Add(1)
		if t.onLeafSplit != nil {
			t.onLeafSplit(leaf, right)
		}
		// Publish the separator to the parent level.
		t.insertSeparator(stack, sep, childRef{leaf: right}, 0)
		return true, leaf, t.cfg.ExpandOnInsert && enc == EncGapped && p.encoding() != EncGapped
	}
}

// Delete removes k, returning whether it was present. Leaves are not
// merged on underflow — mirroring the long-running-system behaviour whose
// sub-70% occupancies motivate the paper's compact encodings.
func (t *Tree) Delete(k uint64) bool {
	for {
		leaf, _ := t.descend(k, nil)
		if !leaf.lock.writeLock() {
			continue
		}
		for {
			b := leaf.box.Load()
			if b.covers(k) || b.next == nil {
				break
			}
			next := b.next
			leaf.lock.unlock()
			leaf = next
			if !leaf.lock.writeLock() {
				leaf = nil
				break
			}
		}
		if leaf == nil {
			continue
		}
		b := leaf.box.Load()
		i, found := b.p.search(k)
		if !found {
			leaf.lock.unlock()
			return false
		}
		np := t.clonePayload(b.p).(mutablePayload).remove(i)
		t.swapLeafBox(leaf, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
		leaf.lock.unlock()
		t.keyCount.Add(-1)
		t.cacheInvalidate(k)
		return true
	}
}

// clonePayload duplicates a payload so mutations never touch an image a
// concurrent reader may hold.
func clonePayload(p payload) payload {
	keys, vals := p.appendAll(nil, nil)
	return encodePayload(p.encoding(), keys, vals)
}

// encode is encodePayload honoring per-tree encoding options: succinct
// leaves grow negative-lookup filters when cfg.NegFilterBits is set. The
// free function remains for baseline trees and tests.
func (t *Tree) encode(enc core.Encoding, keys, vals []uint64) payload {
	if enc == EncSuccinct && t.cfg.NegFilterBits > 0 {
		return newSuccinctNeg(keys, vals, t.cfg.NegFilterBits)
	}
	return encodePayload(enc, keys, vals)
}

// clonePayload is the tree-aware clone: a succinct clone shares the
// source's immutable negative filter (same key set) instead of hashing
// every key again; mutating ops that change the key set rebuild it.
func (t *Tree) clonePayload(p payload) payload {
	if s, ok := p.(*succinct); ok {
		keys, vals := s.appendAll(nil, nil)
		ns := newSuccinct(keys, vals)
		ns.neg, ns.negBits = s.neg, s.negBits
		return ns
	}
	return clonePayload(p)
}

// reencodeLeaf is reencode honoring per-tree encoding options.
func (t *Tree) reencodeLeaf(p payload, target core.Encoding) payload {
	if p.encoding() == target {
		return p
	}
	sc := kvPool.Get().(*kvScratch)
	keys, vals := p.appendAll(sc.keys[:0], sc.vals[:0])
	np := t.encode(target, keys, vals)
	putKV(sc, keys, vals)
	return np
}

// cacheInvalidate removes k from the attached result cache after a tree
// write. Nil-safe; called after the leaf swap is published so a probe
// that misses re-reads the new image.
func (t *Tree) cacheInvalidate(k uint64) {
	if t.rcache != nil {
		t.rcache.Invalidate(k)
	}
}

// NegFilterHits reports lookups short-circuited by negative filters.
func (t *Tree) NegFilterHits() int64 { return t.negHits.Load() }

// insertSeparator inserts (sep, right) into the level childDepth+1,
// walking the descent stack upward; it grows a new root when the stack is
// exhausted. childDepth is 0 for a split leaf, 1 for a split leaf-level
// inner node, and so on.
func (t *Tree) insertSeparator(stack []*Inner, sep uint64, right childRef, childDepth uint8) {
	var node *Inner
	if len(stack) > 0 {
		node = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	}
	if node == nil {
		t.growRoot(sep, right, childDepth)
		return
	}
	if !node.lock.writeLock() {
		// Node died (cannot happen today — inner nodes are never retired —
		// but a fresh descent stays correct if that ever changes).
		t.insertSeparatorFromRoot(sep, right, childDepth)
		return
	}
	// Move right while locked.
	for {
		b := node.box.Load()
		if b.covers(sep) || b.next == nil {
			break
		}
		next := b.next
		node.lock.unlock()
		node = next
		if !node.lock.writeLock() {
			t.insertSeparatorFromRoot(sep, right, childDepth)
			return
		}
	}
	b := node.box.Load()
	idx := b.childIdx(sep)
	nb := &innerBox{
		keys:     make([]uint64, 0, len(b.keys)+1),
		children: make([]childRef, 0, len(b.children)+1),
		next:     b.next,
		highKey:  b.highKey,
		hasHigh:  b.hasHigh,
		depth:    b.depth,
	}
	nb.keys = append(nb.keys, b.keys[:idx]...)
	nb.keys = append(nb.keys, sep)
	nb.keys = append(nb.keys, b.keys[idx:]...)
	nb.children = append(nb.children, b.children[:idx+1]...)
	nb.children = append(nb.children, right)
	nb.children = append(nb.children, b.children[idx+1:]...)

	if len(nb.children) <= innerCap {
		t.innerBytes.Add(int64(innerBoxBytes(nb) - innerBoxBytes(b)))
		node.box.Store(nb)
		node.lock.unlock()
		return
	}
	// Split this inner node too.
	mid := len(nb.keys) / 2
	upSep := nb.keys[mid]
	rightInner := &Inner{}
	rBox := &innerBox{
		keys:     append([]uint64(nil), nb.keys[mid+1:]...),
		children: append([]childRef(nil), nb.children[mid+1:]...),
		next:     nb.next,
		highKey:  nb.highKey,
		hasHigh:  nb.hasHigh,
		depth:    nb.depth,
	}
	rightInner.box.Store(rBox)
	lBox := &innerBox{
		keys:     append([]uint64(nil), nb.keys[:mid]...),
		children: append([]childRef(nil), nb.children[:mid+1]...),
		next:     rightInner,
		highKey:  upSep,
		hasHigh:  true,
		depth:    nb.depth,
	}
	t.innerCount.Add(1)
	t.innerBytes.Add(int64(innerBoxBytes(lBox) + innerBoxBytes(rBox) - innerBoxBytes(b)))
	node.box.Store(lBox)
	node.lock.unlock()
	t.insertSeparator(stack, upSep, childRef{inner: rightInner}, nb.depth)
}

// insertSeparatorFromRoot re-descends from the current root to the level
// childDepth+1 and retries the separator insert (taken when the recorded
// stack is too short because the root grew concurrently).
func (t *Tree) insertSeparatorFromRoot(sep uint64, right childRef, childDepth uint8) {
	var stack []*Inner
	node := t.root.Load()
	for {
		b := node.box.Load()
		if !b.covers(sep) && b.next != nil {
			node = b.next
			continue
		}
		stack = append(stack, node)
		if b.depth == childDepth+1 {
			break
		}
		node = b.children[b.childIdx(sep)].inner
	}
	t.insertSeparator(stack, sep, right, childDepth)
}

// growRoot installs a new root above the split node, or routes the insert
// through the current root if one already exists at a higher level.
func (t *Tree) growRoot(sep uint64, right childRef, childDepth uint8) {
	t.rootMu.Lock()
	cur := t.root.Load()
	if cur.box.Load().depth > childDepth+1 {
		// Another writer grew the root past this level already.
		t.rootMu.Unlock()
		t.insertSeparatorFromRoot(sep, right, childDepth)
		return
	}
	if cur.box.Load().depth == childDepth+1 {
		// A root at the right level appeared; insert into it.
		t.rootMu.Unlock()
		t.insertSeparatorFromRoot(sep, right, childDepth)
		return
	}
	newRoot := &Inner{}
	nb := &innerBox{
		keys:     []uint64{sep},
		children: []childRef{{inner: cur}, right},
		depth:    cur.box.Load().depth + 1,
	}
	newRoot.box.Store(nb)
	t.innerCount.Add(1)
	t.innerBytes.Add(int64(innerBoxBytes(nb)))
	t.root.Store(newRoot)
	t.rootMu.Unlock()
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return int(t.keyCount.Load()) }

// Bytes returns the tree's total footprint (leaf payloads + headers +
// inner nodes).
func (t *Tree) Bytes() int64 {
	var b int64
	for e := 0; e < 3; e++ {
		b += t.bytesByEnc[e].Load()
	}
	return b + t.innerBytes.Load()
}

// LeafCounts returns the number of leaves per encoding
// (succinct, packed, gapped).
func (t *Tree) LeafCounts() (succ, packed, gapped int64) {
	return t.countByEnc[EncSuccinct].Load(), t.countByEnc[EncPacked].Load(), t.countByEnc[EncGapped].Load()
}

// LeafBytes returns the byte footprint per encoding.
func (t *Tree) LeafBytes() (succ, packed, gapped int64) {
	return t.bytesByEnc[EncSuccinct].Load(), t.bytesByEnc[EncPacked].Load(), t.bytesByEnc[EncGapped].Load()
}

// Expansions returns the number of leaf expansions (migrations toward
// Gapped, including eager expand-on-insert).
func (t *Tree) Expansions() int64 { return t.expansions.Add(0) }

// Compactions returns the number of compacting migrations.
func (t *Tree) Compactions() int64 { return t.compactions.Add(0) }

// MigrateLeaf re-encodes one leaf to the target encoding. The new image
// is built optimistically outside the leaf's lock from a box snapshot
// (pinned, so the snapshot's payload cannot be recycled mid-decode); the
// lock is then taken only for the O(1) pointer re-validation and swap.
// Earlier revisions held the write lock across the whole O(decode+encode)
// build, which stalled every writer — and, before copy-on-write boxes,
// every reader — for the full re-encode. A box that changed between
// snapshot and lock means foreground writes are landing on the leaf; one
// retry covers the common single racing write, after which the migration
// gives up and lets a later phase re-propose. It reports whether the
// encoding changed. The displaced image is retired into the epoch domain
// (when enabled) and freed only after all in-flight readers drain.
func (t *Tree) MigrateLeaf(l *Leaf, target core.Encoding) bool {
	t.migActive.Add(1)
	defer t.migActive.Add(-1)
	for attempt := 0; ; attempt++ {
		// Pin before loading the snapshot: a box loaded under the pin
		// cannot finish its grace period (and have its payload recycled)
		// until we unpin, so the decode below reads stable memory even if
		// a concurrent migration displaces the box meanwhile.
		slot := t.epochs.pin()
		b := l.box.Load()
		if b.p.encoding() == target {
			t.epochs.unpin(slot)
			return false
		}
		np := t.reencodeLeaf(b.p, target)
		t.epochs.unpin(slot)
		if !l.lock.writeLock() {
			return false
		}
		if l.box.Load() != b {
			l.lock.unlock()
			if attempt == 0 {
				continue
			}
			return false
		}
		if b.p.encoding() < target {
			t.expansions.Add(1)
		} else {
			t.compactions.Add(1)
		}
		t.swapLeafBox(l, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
		l.lock.unlock()
		if t.rcache != nil {
			// Publish an invalidation epoch for every key of the retired
			// image: cached values stay correct (migration preserves the
			// key→value mapping) but in-flight admissions that read the
			// displaced payload must abort rather than race the swap.
			var mask [4]uint64
			for i, n := 0, b.p.count(); i < n; i++ {
				st := cache.StripeOf(b.p.keyAt(i))
				mask[st>>6] |= 1 << (st & 63)
			}
			t.rcache.BumpStripes(&mask)
		}
		t.epochs.retire(b)
		return true
	}
}

// WalkLeaves visits every leaf left to right until fn returns false. It
// takes a consistent entry into the chain but, like scans, observes
// concurrent splits only through the sibling links. The walk holds one
// reader pin, so images the callback loads stay valid throughout.
func (t *Tree) WalkLeaves(fn func(*Leaf) bool) {
	slot := t.epochs.pin()
	defer t.epochs.unpin(slot)
	node := t.root.Load()
	for {
		b := node.box.Load()
		if b.leafLevel() {
			leaf := b.children[0].leaf
			for leaf != nil {
				if !fn(leaf) {
					return
				}
				leaf = leaf.box.Load().next
			}
			return
		}
		node = b.children[0].inner
	}
}

// Validate checks structural invariants (test helper): key order within
// and across leaves, separator consistency, and key count. It must only
// be called while no writers are active.
func (t *Tree) Validate() error {
	// Walk to the leftmost leaf.
	node := t.root.Load()
	for {
		b := node.box.Load()
		if b.leafLevel() {
			break
		}
		node = b.children[0].inner
	}
	leaf := node.box.Load().children[0].leaf
	var prev uint64
	first := true
	count := 0
	for leaf != nil {
		b := leaf.box.Load()
		for i := 0; i < b.p.count(); i++ {
			k := b.p.keyAt(i)
			if !first && k <= prev {
				return fmt.Errorf("keys out of order: %d after %d", k, prev)
			}
			if b.hasHigh && k >= b.highKey {
				return fmt.Errorf("key %d >= leaf highKey %d", k, b.highKey)
			}
			prev, first = k, false
			count++
		}
		leaf = b.next
	}
	if count != t.Len() {
		return fmt.Errorf("key count mismatch: walked %d, counter %d", count, t.Len())
	}
	return nil
}
