package btree

import (
	"encoding/binary"
	"testing"

	"ahi/internal/core"
)

// FuzzTreeAgainstModel feeds an arbitrary operation tape into a tree with
// encoding migrations interleaved and cross-checks every result against a
// map. Run with `go test -fuzz=FuzzTreeAgainstModel` for deep exploration;
// the seed corpus below runs on every `go test`.
func FuzzTreeAgainstModel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 1, 1, 128, 64, 32, 16})
	f.Add([]byte{9, 1, 9, 2, 9, 3, 9, 4, 9, 5, 9, 6, 9, 7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tr := New(Config{DefaultEncoding: EncSuccinct, ExpandOnInsert: true})
		ref := map[uint64]uint64{}
		var lastLeafKey uint64
		for i := 0; i+2 < len(tape); i += 3 {
			op := tape[i] % 5
			k := uint64(binary.LittleEndian.Uint16(tape[i+1 : i+3]))
			switch op {
			case 0, 1: // insert
				v := uint64(tape[i]) + 1
				tr.Insert(k, v)
				ref[k] = v
				lastLeafKey = k
			case 2: // delete
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("Delete(%d)=%v want %v", k, got, want)
				}
				delete(ref, k)
			case 3: // lookup
				got, ok := tr.Lookup(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%d)=(%d,%v) want (%d,%v)", k, got, ok, want, wok)
				}
			case 4: // migrate the leaf holding the last inserted key
				_, leaf, _ := tr.lookupLeaf(lastLeafKey)
				tr.MigrateLeaf(leaf, core.Encoding(tape[i]%3))
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
