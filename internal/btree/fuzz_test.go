package btree

import (
	"encoding/binary"
	"testing"

	"ahi/internal/core"
)

// FuzzTreeAgainstModel feeds an arbitrary operation tape into a tree with
// encoding migrations interleaved and cross-checks every result against a
// map. Run with `go test -fuzz=FuzzTreeAgainstModel` for deep exploration;
// the seed corpus below runs on every `go test`.
func FuzzTreeAgainstModel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 1, 1, 128, 64, 32, 16})
	f.Add([]byte{9, 1, 9, 2, 9, 3, 9, 4, 9, 5, 9, 6, 9, 7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tr := New(Config{DefaultEncoding: EncSuccinct, ExpandOnInsert: true})
		ref := map[uint64]uint64{}
		var lastLeafKey uint64
		for i := 0; i+2 < len(tape); i += 3 {
			op := tape[i] % 5
			k := uint64(binary.LittleEndian.Uint16(tape[i+1 : i+3]))
			switch op {
			case 0, 1: // insert
				v := uint64(tape[i]) + 1
				tr.Insert(k, v)
				ref[k] = v
				lastLeafKey = k
			case 2: // delete
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("Delete(%d)=%v want %v", k, got, want)
				}
				delete(ref, k)
			case 3: // lookup
				got, ok := tr.Lookup(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%d)=(%d,%v) want (%d,%v)", k, got, ok, want, wok)
				}
			case 4: // migrate the leaf holding the last inserted key
				_, leaf, _ := tr.lookupLeaf(lastLeafKey)
				tr.MigrateLeaf(leaf, core.Encoding(tape[i]%3))
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDecodeRangePayloads checks the satellite-3 property: for every leaf
// encoding, decodeRange(lo, hi) returns exactly the pairs element-wise
// keyAt/valAt would, for arbitrary sorted content and arbitrary [lo, hi)
// windows — including empty windows and full-LeafCap payloads.
func FuzzDecodeRangePayloads(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(255))
	f.Add([]byte{0, 0, 255, 255}, uint8(3), uint8(3))
	f.Add([]byte{200, 100, 50, 25, 12, 6}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, a, b uint8) {
		// Build a sorted, deduplicated key set (≤ LeafCap entries) from the
		// raw bytes; widths vary with the byte values so packed/succinct
		// exercise different bit widths.
		var keys, vals []uint64
		var prev uint64
		for i := 0; i+1 < len(raw) && len(keys) < LeafCap; i += 2 {
			step := uint64(binary.LittleEndian.Uint16(raw[i:i+2]))%1024 + 1
			prev += step
			keys = append(keys, prev)
			vals = append(vals, prev*3+1)
		}
		if len(keys) == 0 {
			return
		}
		n := len(keys)
		lo := int(a) % (n + 1)
		hi := int(b) % (n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		ks := make([]uint64, n)
		vs := make([]uint64, n)
		for _, p := range []payload{
			payload(newGapped(keys, vals)),
			payload(newPacked(keys, vals)),
			payload(newSuccinct(keys, vals)),
		} {
			got := p.decodeRange(lo, hi, ks, vs)
			if got != hi-lo {
				t.Fatalf("%T decodeRange(%d,%d) returned %d, want %d", p, lo, hi, got, hi-lo)
			}
			for j := 0; j < got; j++ {
				if ks[j] != p.keyAt(lo+j) || vs[j] != p.valAt(lo+j) {
					t.Fatalf("%T element %d: decodeRange (%d,%d) vs keyAt/valAt (%d,%d)",
						p, lo+j, ks[j], vs[j], p.keyAt(lo+j), p.valAt(lo+j))
				}
			}
			// Full-range decode must reproduce the input exactly.
			p.decodeRange(0, n, ks, vs)
			for j := range keys {
				if ks[j] != keys[j] || vs[j] != vals[j] {
					t.Fatalf("%T full decode element %d: got (%d,%d) want (%d,%d)",
						p, j, ks[j], vs[j], keys[j], vals[j])
				}
			}
		}
	})
}
