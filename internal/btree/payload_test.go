package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ahi/internal/core"
)

func sortedPairs(n int, seed int64) ([]uint64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	cur := uint64(rng.Intn(1000))
	for i := range keys {
		cur += uint64(rng.Intn(5000) + 1)
		keys[i] = cur
		vals[i] = uint64(rng.Intn(1 << 28)) // TID-like, FOR-compressible
	}
	return keys, vals
}

func allEncodings() []core.Encoding {
	return []core.Encoding{EncSuccinct, EncPacked, EncGapped}
}

func TestPayloadRoundTrip(t *testing.T) {
	keys, vals := sortedPairs(179, 1) // ~70% of LeafCap
	for _, enc := range allEncodings() {
		p := encodePayload(enc, keys, vals)
		if p.encoding() != enc {
			t.Fatalf("%s: wrong encoding", EncodingName(enc))
		}
		if p.count() != len(keys) {
			t.Fatalf("%s: count=%d", EncodingName(enc), p.count())
		}
		for i := range keys {
			if p.keyAt(i) != keys[i] || p.valAt(i) != vals[i] {
				t.Fatalf("%s: mismatch at %d", EncodingName(enc), i)
			}
		}
		gotK, gotV := p.appendAll(nil, nil)
		for i := range keys {
			if gotK[i] != keys[i] || gotV[i] != vals[i] {
				t.Fatalf("%s: appendAll mismatch at %d", EncodingName(enc), i)
			}
		}
	}
}

func TestPayloadSearch(t *testing.T) {
	keys, vals := sortedPairs(100, 2)
	for _, enc := range allEncodings() {
		p := encodePayload(enc, keys, vals)
		for i, k := range keys {
			pos, found := p.search(k)
			if !found || pos != i {
				t.Fatalf("%s: search(%d) = (%d,%v) want (%d,true)", EncodingName(enc), k, pos, found, i)
			}
			pos, found = p.search(k + 1) // gaps guaranteed > 1
			if found {
				t.Fatalf("%s: phantom key %d", EncodingName(enc), k+1)
			}
			if pos != i+1 {
				t.Fatalf("%s: search(%d)=%d want %d", EncodingName(enc), k+1, pos, i+1)
			}
		}
		if pos, found := p.search(0); found || pos != 0 {
			t.Fatalf("%s: search below min", EncodingName(enc))
		}
	}
}

func TestPayloadSizeOrdering(t *testing.T) {
	// Table 1's central claim: succinct < packed < gapped for a 70%-full
	// leaf of clustered keys.
	keys, vals := sortedPairs(179, 3)
	s := encodePayload(EncSuccinct, keys, vals).bytes()
	p := encodePayload(EncPacked, keys, vals).bytes()
	g := encodePayload(EncGapped, keys, vals).bytes()
	if !(s < p && p < g) {
		t.Fatalf("size ordering violated: succinct=%d packed=%d gapped=%d", s, p, g)
	}
	if g != LeafCap*2*8 {
		t.Fatalf("gapped should cost full slots: %d", g)
	}
	if p != 179*2*8 {
		t.Fatalf("packed should cost exactly its entries: %d", p)
	}
	// Succinct on clustered keys should save well beyond packed.
	if float64(s) > 0.8*float64(p) {
		t.Fatalf("succinct compression too weak: %d vs packed %d", s, p)
	}
}

func TestPayloadMutations(t *testing.T) {
	for _, enc := range allEncodings() {
		keys, vals := sortedPairs(50, 4)
		p := encodePayload(enc, keys, vals)
		mp := p.(mutablePayload)
		// Insert a fresh key.
		p2 := mp.insert(keys[10]+1, 999)
		if pos, found := p2.search(keys[10] + 1); !found || p2.valAt(pos) != 999 {
			t.Fatalf("%s: insert lost", EncodingName(enc))
		}
		if p2.count() != 51 {
			t.Fatalf("%s: count after insert %d", EncodingName(enc), p2.count())
		}
		// Update by position.
		if up, ok := p2.(mutablePayload); ok {
			pos, _ := p2.search(keys[0])
			up.update(pos, 12345)
			if p2.valAt(pos) != 12345 {
				t.Fatalf("%s: update lost", EncodingName(enc))
			}
		}
		// Remove.
		pos, _ := p2.search(keys[10] + 1)
		p3 := p2.(mutablePayload).remove(pos)
		if _, found := p3.search(keys[10] + 1); found {
			t.Fatalf("%s: remove failed", EncodingName(enc))
		}
		if p3.count() != 50 {
			t.Fatalf("%s: count after remove %d", EncodingName(enc), p3.count())
		}
	}
}

func TestPayloadInsertDuplicateOverwrites(t *testing.T) {
	for _, enc := range allEncodings() {
		keys, vals := sortedPairs(20, 5)
		p := encodePayload(enc, keys, vals).(mutablePayload)
		p2 := p.insert(keys[5], 777)
		if p2.count() != 20 {
			t.Fatalf("%s: duplicate insert changed count", EncodingName(enc))
		}
		pos, _ := p2.search(keys[5])
		if p2.valAt(pos) != 777 {
			t.Fatalf("%s: duplicate insert did not overwrite", EncodingName(enc))
		}
	}
}

func TestReencodeAllPairs(t *testing.T) {
	keys, vals := sortedPairs(64, 6)
	for _, from := range allEncodings() {
		for _, to := range allEncodings() {
			p := encodePayload(from, keys, vals)
			q := reencode(p, to)
			if q.encoding() != to {
				t.Fatalf("%s->%s: wrong encoding", EncodingName(from), EncodingName(to))
			}
			if from == to && q != p {
				t.Fatalf("%s->%s: same-encoding reencode must be identity", EncodingName(from), EncodingName(to))
			}
			for i := range keys {
				if q.keyAt(i) != keys[i] || q.valAt(i) != vals[i] {
					t.Fatalf("%s->%s: data lost at %d", EncodingName(from), EncodingName(to), i)
				}
			}
		}
	}
}

func TestEmptyPayloads(t *testing.T) {
	for _, enc := range allEncodings() {
		p := encodePayload(enc, nil, nil)
		if p.count() != 0 {
			t.Fatalf("%s: empty count", EncodingName(enc))
		}
		if pos, found := p.search(42); found || pos != 0 {
			t.Fatalf("%s: empty search", EncodingName(enc))
		}
	}
}

func TestEncodingName(t *testing.T) {
	if EncodingName(EncSuccinct) != "succinct" || EncodingName(EncGapped) != "gapped" ||
		EncodingName(EncPacked) != "packed" || EncodingName(core.Encoding(9)) != "unknown" {
		t.Fatal("names wrong")
	}
}

func TestPayloadQuickEquivalence(t *testing.T) {
	// All three encodings must agree with a reference map after a mixed
	// random build.
	fn := func(raw []uint16) bool {
		seen := map[uint64]uint64{}
		var keys, vals []uint64
		for i, r := range raw {
			k := uint64(r)
			if _, dup := seen[k]; !dup && len(seen) < LeafCap {
				seen[k] = uint64(i)
			}
		}
		for k := uint64(0); k < 1<<16; k++ {
			if v, ok := seen[k]; ok {
				keys = append(keys, k)
				vals = append(vals, v)
			}
		}
		for _, enc := range allEncodings() {
			p := encodePayload(enc, keys, vals)
			for k, v := range seen {
				pos, found := p.search(k)
				if !found || p.valAt(pos) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
