package btree

import "math/bits"

// This file holds the intra-leaf search kernels of the serving layer. The
// scalar probes the encodings shipped with (plain binary search per leaf)
// spend most of their time in branch mispredictions: every comparison of a
// lookup over skewed batches is data-dependent and the predictor learns
// nothing across keys. The kernels below keep the memory access pattern of
// the scalar probes but make the control flow branchless — comparisons
// turn into SBB-style borrow arithmetic (bits.Sub64 compiles to a single
// flag-consuming instruction) that feeds index arithmetic instead of
// conditional jumps.
//
// Three kernels, one per encoding family:
//
//   - searchDense: branchless binary narrowing plus a SWAR-style linear
//     tail over dense sorted uint64 slices (Packed leaves).
//   - searchInterp: interpolation-seeded variant for Gapped leaves — the
//     slotted layout is the hot, expanded encoding, and its key ranges are
//     typically dense enough that one interpolation step lands within a
//     cache line of the answer; a bounded gallop repairs bad seeds (e.g.
//     leaves holding one huge key gap).
//   - bitutil.FORArray.SearchSkip: block-skip search over the packed
//     deltas for Succinct leaves (see bitutil/for.go).
//
// Every kernel returns the scalar probes' exact contract: the position of
// the first key >= k and whether it equals k. kernels_test.go cross-checks
// them against the retained scalar implementations on encoding-boundary
// shapes.

// swarTail is the window below which the branchless binary switches to the
// linear borrow-count loop: 16 uint64 keys = two cache lines, small enough
// that the independent loads pipeline and no probe result gates the next.
const swarTail = 16

// ltMask returns all-ones when a < b and zero otherwise, without a branch.
func ltMask(a, b uint64) int {
	_, borrow := bits.Sub64(a, b, 0)
	return -int(borrow)
}

// searchDense returns the position of the first key >= k in the sorted
// slice a and whether it equals k. Branchless: the binary-narrowing step
// moves the base with a borrow-derived mask, the tail counts smaller keys
// with the same borrow trick.
func searchDense(a []uint64, k uint64) (int, bool) {
	pos := lowerBoundBranchless(a, k)
	return pos, pos < len(a) && a[pos] == k
}

// lowerBoundBranchless is the shared branchless lower-bound core: first
// index i with a[i] >= k, or len(a).
func lowerBoundBranchless(a []uint64, k uint64) int {
	base, n := 0, len(a)
	for n > swarTail {
		half := n >> 1
		// base += half iff a[base+half-1] < k; the answer stays inside
		// [base, base+n].
		base += half & ltMask(a[base+half-1], k)
		n -= half
	}
	// SWAR tail: every key in the remaining window is loaded regardless of
	// the comparison outcomes, so the loop retires one add per key with no
	// data-dependent control flow.
	c := 0
	for _, v := range a[base : base+n] {
		c -= ltMask(v, k) // mask is -1 when v < k
	}
	return base + c
}

// interpGallop is the initial bracket the interpolation seed is trusted
// for; seeds off by more than this trigger doubling gallop steps.
const interpGallop = 16

// searchInterp is the Gapped-leaf kernel: an interpolation step seeds the
// probe position, a doubling gallop brackets the answer when the key
// distribution fooled the seed, and the branchless core finishes inside
// the bracket.
func searchInterp(a []uint64, k uint64) (int, bool) {
	n := len(a)
	if n == 0 {
		return 0, false
	}
	lo, hi := a[0], a[n-1]
	if k <= lo {
		return 0, k == lo
	}
	if k > hi {
		return n, false
	}
	// k == hi falls through: with duplicate keys the first match can sit
	// left of n-1, and the gallop-left path finds it.
	// lo < k <= hi, so n >= 2 and the span is non-zero. The float division
	// tolerates the full uint64 range (a max-gap leaf spans nearly 2^64).
	est := int(float64(k-lo) / float64(hi-lo) * float64(n-1))
	if est < 0 {
		est = 0
	}
	if est > n-1 {
		est = n - 1
	}
	var l, r int
	if a[est] < k {
		// Answer is right of est: gallop with doubling steps.
		l = est + 1
		step := interpGallop
		r = l + step
		for r < n && a[r-1] < k {
			l = r
			step <<= 1
			r = l + step
		}
		if r > n {
			r = n
		}
	} else {
		// Answer is at or left of est: keep a[l-1] < k as the exit
		// condition so the bracket [l, r) always contains the answer.
		r = est + 1
		step := interpGallop
		l = r - step
		for l > 0 && a[l-1] >= k {
			r = l
			step <<= 1
			l = r - step
		}
		if l < 0 {
			l = 0
		}
	}
	pos := l + lowerBoundBranchless(a[l:r], k)
	return pos, pos < n && a[pos] == k
}

// searchBinaryScalar is the original scalar probe, retained as the
// reference implementation the kernel tests cross-check against.
func searchBinaryScalar(a []uint64, k uint64) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == k
}
