package btree

import (
	"sync"

	"ahi/internal/core"
)

// Batch traversal. A root-to-leaf walk is a chain of dependent loads: each
// level's box pointer comes out of the previous level's cache miss, so a
// single lookup exposes no memory-level parallelism. LookupBatch instead
// keeps a small ring of traversals in flight, AMAC-style: each pass over
// the ring advances every live traversal by exactly one level, so the
// cache misses of up to batchRing independent walks overlap in the memory
// system instead of serializing. Go has no portable prefetch intrinsic;
// the interleaving relies on out-of-order cores overlapping the
// independent loads the ring exposes back to back.
//
// Batches are processed in key order. Sorting buys three things on top of
// the interleaving: duplicate keys become adjacent (one leaf probe serves
// all copies — significant under the skewed distributions the serving
// bench runs), consecutive keys that land in the same leaf are served by
// one descent (the run is drained straight off the shared cursor), and
// leaf accesses stay in address-ascending order, which the hardware
// prefetcher rewards.

// batchRing is the number of in-flight traversals. Eight keeps the ring
// state in registers/L1 while covering typical DRAM latency at one level
// step per slot visit.
const batchRing = 8

// batchMin is the batch size below which the ring setup is not worth it
// and the batch degenerates to sequential per-key operations.
const batchMin = 4

type batchScratch struct {
	order []int
	pairs []kvOrd
	tmp   []kvOrd
}

var batchPool = sync.Pool{New: func() any {
	return &batchScratch{
		order: make([]int, 0, 128),
		pairs: make([]kvOrd, 0, 128),
		tmp:   make([]kvOrd, 0, 128),
	}
}}

// kvOrd is one (key, position) pair of a batch; sorting pairs directly
// keeps the hot comparison loop free of the keys[order[i]] indirection.
type kvOrd struct {
	k uint64
	i int32
}

// pairLess orders by key, ties broken by position so duplicate inserts
// keep their submission order (last wins).
func pairLess(x, y kvOrd) bool { return x.k < y.k || (x.k == y.k && x.i < y.i) }

// smallSortMax is the batch size at or below which plain insertion sort
// beats the radix passes' fixed bucket costs.
const smallSortMax = 24

// sortOrder fills sc.order with 0..n-1 sorted by keys[i]. Comparison
// sorts misbehave here: on real (skewed, unpredictable) batches every
// compare is a data-dependent branch, and the mispredict tax came to
// ~50ns per element — a third of the whole batch budget. Instead the
// batch is radix-sorted on the three most significant bytes that
// actually vary across the batch (stable LSD passes, branchless inner
// loops), then an insertion pass with full (key, index) comparisons
// repairs the rare low-byte ties. With 64-bit keys spread over the key
// space, three discriminating bytes separate almost every distinct key,
// so the cleanup pass runs in near-linear time on predictable branches.
func (sc *batchScratch) sortOrder(keys []uint64) []int {
	pairs := sc.pairs[:0]
	var all, any uint64 // AND / OR over the batch: any^all = varying bits
	all = ^uint64(0)
	for i, k := range keys {
		pairs = append(pairs, kvOrd{k: k, i: int32(i)})
		all &= k
		any |= k
	}
	if len(pairs) <= smallSortMax {
		// Tiny batches: the per-pass bucket overhead of the radix sort
		// exceeds the whole insertion sort.
		insertionPairs(pairs)
		order := sc.order[:0]
		for _, p := range pairs {
			order = append(order, int(p.i))
		}
		sc.pairs, sc.order = pairs, order
		return order
	}
	if cap(sc.tmp) < len(pairs) {
		sc.tmp = make([]kvOrd, len(pairs))
	}
	sorted, spare := radixSortPairs(pairs, sc.tmp[:len(pairs)], any^all)
	order := sc.order[:0]
	for _, p := range sorted {
		order = append(order, int(p.i))
	}
	// An odd number of passes leaves the result in the spare buffer, so
	// keep both slices distinct for the next batch.
	sc.pairs, sc.tmp, sc.order = sorted, spare, order
	return order
}

// radixSortPairs sorts pairs by (k, i) using up to three stable LSD
// byte passes over the most significant varying bytes, followed by an
// insertion cleanup. Returns (sorted, spare): pass parity decides which
// of a and tmp holds the result.
func radixSortPairs(a, tmp []kvOrd, varying uint64) ([]kvOrd, []kvOrd) {
	// Pick the discriminating byte positions, most significant first.
	var shifts [3]uint
	ns := 0
	for b := 7; b >= 0 && ns < 3; b-- {
		if (varying>>(8*uint(b)))&0xff != 0 {
			shifts[ns] = 8 * uint(b)
			ns++
		}
	}
	src, dst := a, tmp
	for s := ns - 1; s >= 0; s-- { // LSD: least significant chosen byte first
		shift := shifts[s]
		var cnt [256]int32
		for _, p := range src {
			cnt[(p.k>>shift)&0xff]++
		}
		var sum int32
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, p := range src {
			d := (p.k >> shift) & 0xff
			dst[cnt[d]] = p
			cnt[d]++
		}
		src, dst = dst, src
	}
	insertionPairs(src)
	return src, dst
}

// insertionPairs finishes the radix passes: the input is sorted on the
// chosen bytes, so shifts are rare and the outer-loop branch predicts.
func insertionPairs(a []kvOrd) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && pairLess(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// LookupBatch looks up len(keys) keys and stores the results positionally
// in vals and found (both must have at least len(keys) elements). It is
// equivalent to calling Lookup per key but traverses the tree with an
// interleaved ring of walks over the key-sorted batch.
func (t *Tree) LookupBatch(keys, vals []uint64, found []bool) {
	t.lookupBatchTracked(keys, vals, found, nil)
}

// lookupBatchTracked is LookupBatch plus a per-key leaf callback for
// access tracking (invoked with the original key index).
func (t *Tree) lookupBatchTracked(keys, vals []uint64, found []bool, track func(i int, l *Leaf)) {
	n := len(keys)
	if len(vals) < n || len(found) < n {
		panic("btree: LookupBatch result slices shorter than keys")
	}
	if n == 0 {
		return
	}
	if n < batchMin {
		for i, k := range keys {
			v, leaf, ok := t.lookupLeaf(k)
			vals[i], found[i] = v, ok
			if track != nil {
				track(i, leaf)
			}
		}
		return
	}
	sc := batchPool.Get().(*batchScratch)
	order := sc.sortOrder(keys)

	// One reader pin covers the whole interleaved kernel: every leaf
	// image the ring or the run-server loads stays valid until the batch
	// returns.
	slot := t.epochs.pin()
	defer t.epochs.unpin(slot)

	// Serve the sorted head sequentially first. Under a skewed
	// distribution the head of a sorted batch is a dense cluster of hot
	// keys collapsing onto one or a few adjacent leaves: one descent plus
	// B-link hops serves the whole cluster, whereas priming the ring there
	// would issue up to batchRing redundant descents to the same leaf.
	leaf, _ := t.descend(keys[order[0]], nil)
	leaf, lb := moveRightLeaf(leaf, keys[order[0]])
	cursor := t.serveRuns(leaf, lb, keys, vals, found, order, 0, 1, track)
	if cursor >= n {
		batchPool.Put(sc)
		return
	}

	// Prime the ring for the scattered tail: each slot claims one key off
	// the shared cursor and starts at the root.
	var ring [batchRing]struct {
		j    int // claimed position in order
		node *Inner
	}
	width := batchRing
	if n-cursor < width {
		width = n - cursor
	}
	root := t.root.Load()
	for s := 0; s < width; s++ {
		ring[s].j = cursor
		ring[s].node = root
		cursor++
	}
	live := width
	for live > 0 {
		for s := 0; s < width; s++ {
			st := &ring[s]
			if st.node == nil {
				continue
			}
			k := keys[order[st.j]]
			b := st.node.box.Load()
			if !b.covers(k) && b.next != nil {
				st.node = b.next // B-link hop counts as one step
				continue
			}
			c := b.children[b.childIdx(k)]
			if !b.leafLevel() {
				st.node = c.inner
				continue
			}
			// Landed. Serve the claimed key, then drain the run of sorted
			// keys this leaf covers off the shared cursor. Every key left
			// of the cursor is claimed by exactly one slot, so nothing is
			// processed twice.
			leaf, lb := moveRightLeaf(c.leaf, k)
			cursor = t.serveRuns(leaf, lb, keys, vals, found, order, st.j, cursor, track)
			if cursor < n {
				st.j = cursor
				st.node = t.root.Load()
				cursor++
			} else {
				st.node = nil
				live--
			}
		}
	}
	batchPool.Put(sc)
}

// serveRuns serves the claimed run at order[head] from (leaf, lb), then
// chain-serves following runs for as long as they land within chainHops
// B-link hops: the next sorted key is beyond the served leaf's high key,
// so walking right is valid routing, and in the skewed hot region the
// next run's leaf is typically one or two hops away — far cheaper than
// another root-to-leaf descent.
func (t *Tree) serveRuns(leaf *Leaf, lb *leafBox, keys, vals []uint64, found []bool,
	order []int, head, cursor int, track func(int, *Leaf)) int {
	cursor = t.serveLeafRun(leaf, lb, keys, vals, found, order, head, cursor, track)
	for cursor < len(order) {
		nl, nb, ok := chainRight(lb, keys[order[cursor]])
		if !ok {
			break
		}
		h := cursor
		cursor++
		cursor = t.serveLeafRun(nl, nb, keys, vals, found, order, h, cursor, track)
		lb = nb
	}
	return cursor
}

// chainHops bounds the B-link walk from the previous run's leaf: hot
// runs of a sorted batch land within a couple of leaves of each other,
// while keys in the sparse tail are cheaper to reach by a fresh descent.
const chainHops = 4

// chainRight walks the leaf chain right looking for the leaf covering k.
// Precondition: k is at or beyond lb's high key (the previous run ended
// because lb no longer covered it), so lb.next's range starts <= k.
func chainRight(lb *leafBox, k uint64) (*Leaf, *leafBox, bool) {
	for h := 0; h < chainHops; h++ {
		nl := lb.next
		if nl == nil {
			return nil, nil, false
		}
		nb := nl.box.Load()
		if nb.covers(k) {
			return nl, nb, true
		}
		lb = nb
	}
	return nil, nil, false
}

// serveLeafRun answers the claimed key at order[head] from the leaf image
// lb, then consumes subsequent sorted keys the leaf covers. Correctness of
// the extension: the head key was routed here by the tree, so the leaf's
// (unstored) lower bound is <= keys[order[head]]; every consumed key is >=
// the head key (sorted) and < the image's high key (covers), hence inside
// the leaf's range. Duplicate keys are adjacent after sorting and reuse the
// previous probe's result; distinct keys probe with an ascending seed
// (searchFrom), so the whole run scans the payload at most once instead of
// restarting every probe at the leaf head.
func (t *Tree) serveLeafRun(leaf *Leaf, lb *leafBox, keys, vals []uint64, found []bool,
	order []int, head, cursor int, track func(int, *Leaf)) int {
	if g, ok := lb.p.(*gapped); ok {
		// The expanded (hot) encoding serves most of a skewed batch; a
		// specialized loop avoids the per-key interface dispatch.
		return serveGappedRun(leaf, g, lb, keys, vals, found, order, head, cursor, track)
	}
	p := lb.p
	// Succinct leaves may carry a negative filter: probing it per distinct
	// key folds the membership test into the run loop, so batch misses on
	// cold leaves skip the bit-unpacking search entirely.
	sp, _ := p.(*succinct)
	i := order[head]
	lastK := keys[i]
	var (
		pos    int
		lastOK bool
		lastV  uint64
	)
	if sp != nil && !sp.mayContain(lastK) {
		t.negHits.Add(1) // pos stays 0: every key is still a valid seed target
	} else {
		pos, lastOK = p.search(lastK)
		if lastOK {
			lastV = p.valAt(pos)
		}
	}
	vals[i], found[i] = lastV, lastOK
	if track != nil {
		track(i, leaf)
	}
	// Seed for the next distinct key k > lastK: everything at or before a
	// found match is < k; on a miss only the prefix below pos is.
	from := pos
	if lastOK {
		from++
	}
	for cursor < len(order) {
		i = order[cursor]
		k := keys[i]
		if k != lastK {
			if !lb.covers(k) {
				break
			}
			if sp != nil && !sp.mayContain(k) {
				// Definitely absent; from is untouched — the prefix below it
				// is < lastK < k, so it remains a valid seed.
				t.negHits.Add(1)
				lastOK, lastV, lastK = false, 0, k
			} else {
				pos, lastOK = p.searchFrom(k, from)
				lastV = 0
				if lastOK {
					lastV = p.valAt(pos)
				}
				lastK = k
				from = pos
				if lastOK {
					from++
				}
			}
		}
		vals[i], found[i] = lastV, lastOK
		if track != nil {
			track(i, leaf)
		}
		cursor++
	}
	return cursor
}

// servePeek is the linear window a seeded probe scans before falling back
// to interpolation search: run keys in a hot leaf are typically a few
// slots apart, so most probes resolve inside one cache line.
const servePeek = 8

// serveGappedRun is serveLeafRun specialized for the Gapped encoding:
// direct slice access instead of interface calls, and seeded probes peek
// linearly from the previous position before searching.
func serveGappedRun(leaf *Leaf, g *gapped, lb *leafBox, keys, vals []uint64, found []bool,
	order []int, head, cursor int, track func(int, *Leaf)) int {
	a := g.keys
	i := order[head]
	lastK := keys[i]
	pos, lastOK := searchInterp(a, lastK)
	var lastV uint64
	if lastOK {
		lastV = g.vals[pos]
	}
	vals[i], found[i] = lastV, lastOK
	if track != nil {
		track(i, leaf)
	}
	from := pos
	if lastOK {
		from++
	}
	for cursor < len(order) {
		i = order[cursor]
		k := keys[i]
		if k != lastK {
			if !lb.covers(k) {
				break
			}
			// Everything below from is < k; peek a few slots, then fall
			// back to interpolation over the remaining suffix.
			j := from
			lim := from + servePeek
			if lim > len(a) {
				lim = len(a)
			}
			for j < lim && a[j] < k {
				j++
			}
			if j < lim || j == len(a) {
				pos = j
			} else {
				p2, _ := searchInterp(a[j:], k)
				pos = j + p2
			}
			lastOK = pos < len(a) && a[pos] == k
			lastV = 0
			if lastOK {
				lastV = g.vals[pos]
			}
			lastK = k
			from = pos
			if lastOK {
				from++
			}
		}
		vals[i], found[i] = lastV, lastOK
		if track != nil {
			track(i, leaf)
		}
		cursor++
	}
	return cursor
}

// InsertBatch inserts len(keys) key/value pairs; inserted[i] reports
// whether keys[i] was newly inserted (false: overwrote an existing value).
// Equivalent to per-key Insert calls in batch-sorted order (duplicate keys
// keep submission order, so the last value wins), but consecutive sorted
// keys landing in the same leaf are merged under one lock with a single
// payload re-encode.
func (t *Tree) InsertBatch(keys, vals []uint64, inserted []bool) {
	t.insertBatchTracked(keys, vals, inserted, nil)
}

// insertBatchTracked is InsertBatch plus a per-key callback reporting the
// receiving leaf and whether the write eagerly expanded it.
func (t *Tree) insertBatchTracked(keys, vals []uint64, inserted []bool, track func(i int, l *Leaf, expanded bool)) {
	n := len(keys)
	if len(vals) < n || len(inserted) < n {
		panic("btree: InsertBatch slices shorter than keys")
	}
	if n == 0 {
		return
	}
	if n < batchMin {
		for i, k := range keys {
			ins, leaf, exp := t.insertTracked(k, vals[i])
			inserted[i] = ins
			if track != nil {
				track(i, leaf, exp)
			}
		}
		return
	}
	sc := batchPool.Get().(*batchScratch)
	order := sc.sortOrder(keys)
	cursor := 0
	for cursor < n {
		cursor = t.insertRun(keys, vals, inserted, order, cursor, track)
	}
	batchPool.Put(sc)
}

// insertRun inserts the run of sorted keys starting at order[cursor] that
// shares one leaf: one descent, one lock acquisition, one re-encode for
// the whole run. Returns the cursor past the consumed run. Keys that need
// a split fall back to the per-key insert path.
func (t *Tree) insertRun(keys, vals []uint64, inserted []bool,
	order []int, cursor int, track func(int, *Leaf, bool)) int {
	head := order[cursor]
	k := keys[head]
	var leaf *Leaf
	for {
		leaf, _ = t.descend(k, nil)
		if !leaf.lock.writeLock() {
			continue
		}
		// Move right while locked (a split may have shifted our range).
		ok := true
		for {
			b := leaf.box.Load()
			if b.covers(k) || b.next == nil {
				break
			}
			next := b.next
			leaf.lock.unlock()
			leaf = next
			if !leaf.lock.writeLock() {
				ok = false
				break
			}
		}
		if ok {
			break
		}
	}
	b := leaf.box.Load()
	p := b.p

	if p.count() >= LeafCap {
		// Full leaf: overwrite in place if the key exists, otherwise take
		// the per-key split path for just this key.
		if pos, found := p.search(k); found {
			np := t.clonePayload(p)
			np.(mutablePayload).update(pos, vals[head])
			t.swapLeafBox(leaf, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
			leaf.lock.unlock()
			t.cacheInvalidate(k)
			inserted[head] = false
			if track != nil {
				track(head, leaf, false)
			}
			return cursor + 1
		}
		leaf.lock.unlock()
		ins, lf, exp := t.insertTracked(k, vals[head])
		inserted[head] = ins
		if track != nil {
			track(head, lf, exp)
		}
		return cursor + 1
	}

	target := p.encoding()
	expanded := false
	if t.cfg.ExpandOnInsert && target != EncGapped {
		target = EncGapped
		expanded = true
		t.expansions.Add(1)
	}
	scratch := kvPool.Get().(*kvScratch)
	gk, gv := p.appendAll(scratch.keys[:0], scratch.vals[:0])
	g := gapped{keys: gk, vals: gv}
	newKeys := 0
	j := cursor
	for j < len(order) {
		idx := order[j]
		kj := keys[idx]
		// The head is covered by construction (locked move-right above);
		// later keys are >= the head and must stay under the high key.
		if j > cursor && !b.covers(kj) {
			break
		}
		if len(g.keys) >= LeafCap {
			// No room for new keys; only overwrites may continue the run.
			pos, found := searchBinaryScalar(g.keys, kj)
			if !found {
				break
			}
			g.vals[pos] = vals[idx]
			inserted[idx] = false
		} else {
			before := len(g.keys)
			g.insert(kj, vals[idx])
			ins := len(g.keys) > before
			inserted[idx] = ins
			if ins {
				newKeys++
			}
		}
		j++
	}
	np := t.encode(target, g.keys, g.vals)
	t.swapLeafBox(leaf, b, &leafBox{p: np, next: b.next, highKey: b.highKey, hasHigh: b.hasHigh})
	leaf.lock.unlock()
	if track != nil {
		// Tracked AFTER the lock is released: a tracked insert can complete a
		// sampling phase, whose synchronous adaptation may migrate this very
		// leaf — taking its write lock. Only the run head reports the
		// expansion: under per-key inserts the first write expands the leaf
		// and later keys see it already Gapped.
		for jj := cursor; jj < j; jj++ {
			track(order[jj], leaf, expanded && jj == cursor)
		}
	}
	if t.rcache != nil {
		// Overwrites (inserted[idx] == false) must leave the cache before
		// this batch returns; fresh keys have nothing cached.
		for jj := cursor; jj < j; jj++ {
			if idx := order[jj]; !inserted[idx] {
				t.rcache.Invalidate(keys[idx])
			}
		}
	}
	putKV(scratch, g.keys, g.vals)
	if newKeys > 0 {
		t.keyCount.Add(int64(newKeys))
	}
	return j
}

// LookupBatch is the tracked batch lookup: the batch runs through the
// interleaved kernel, and the (rare) sampled keys track their leaf with
// the Read access type, exactly as per-key Lookup would.
//
// With a cache attached, non-sampled keys probe it first and only the
// misses descend into the tree (through the same interleaved kernel over
// a compacted key slice); found misses are admitted afterwards under the
// stripe snapshot taken before the descent. Sampled keys bypass the
// probe entirely — they must reach the tree so the hotness signal the
// adaptation manager sees is identical with and without the cache — and
// double as high-confidence (pre-warmed) admissions.
//
// The whole path is allocation-free: scratch lives on the session (one
// goroutine) and the tracking callbacks are bound once at construction.
func (s *Session) LookupBatch(keys, vals []uint64, found []bool) {
	if s.rec != nil {
		s.lookupBatchTraced(keys, vals, found)
		return
	}
	s.lookupBatchFast(keys, vals, found)
}

func (s *Session) lookupBatchFast(keys, vals []uint64, found []bool) {
	n := len(keys)
	// Draw the sampling decisions up front so the skip counter advances
	// exactly as under per-key lookups. Samples are rare (skip >= 50), so
	// the offsets list is almost always empty and the draw is O(samples).
	if s.c == nil {
		s.sampleBuf = s.sampler.SampleOffsets(n, s.sampleBuf[:0])
		if len(s.sampleBuf) == 0 {
			s.a.Tree.LookupBatch(keys, vals, found)
			return
		}
		s.a.Tree.lookupBatchTracked(keys, vals, found, s.trackReadFn)
		return
	}
	if len(vals) < n || len(found) < n {
		panic("btree: LookupBatch result slices shorter than keys")
	}
	cb := s.cb
	cb.grow(n)
	cb.sampled = s.sampler.SampleOffsets(n, cb.sampled[:0])
	miss, si := 0, 0
	for i := 0; i < n; i++ {
		k := keys[i]
		// Stripe snapshots are taken BEFORE the tree read (inside
		// ProbeOrSnap, or directly for sampled keys): Admit re-validates
		// them, so a write landing in between aborts the entry.
		var snap uint64
		if si < len(cb.sampled) && cb.sampled[si] == i {
			si++ // sampled: full walk, keeps the adaptation signal intact
			snap = s.c.Snap(k)
		} else if v, sn, ok := s.c.ProbeOrSnap(k); ok {
			vals[i], found[i] = v, true
			continue
		} else {
			snap = sn
		}
		cb.keys[miss], cb.pos[miss], cb.snaps[miss] = k, int32(i), snap
		miss++
	}
	if miss == 0 {
		return
	}
	mk, mv, mf := cb.keys[:miss], cb.vals[:miss], cb.found[:miss]
	if len(cb.sampled) == 0 {
		s.a.Tree.lookupBatchTracked(mk, mv, mf, nil)
	} else {
		s.a.Tree.lookupBatchTracked(mk, mv, mf, s.trackMissFn)
	}
	// Scatter results back and admit the hits.
	si = 0
	for j := 0; j < miss; j++ {
		i := int(cb.pos[j])
		vals[i], found[i] = mv[j], mf[j]
		if mf[j] {
			for si < len(cb.sampled) && cb.sampled[si] < i {
				si++
			}
			hot := si < len(cb.sampled) && cb.sampled[si] == i
			s.c.Admit(keys[i], mv[j], cb.snaps[j], hot, hot || s.admitGate())
		}
	}
}

// trackRead is the cache-off sampled-batch callback (bound once).
func (s *Session) trackRead(i int, l *Leaf) {
	for _, si := range s.sampleBuf {
		if si == i {
			s.sampler.Track(l, core.Read, LeafCtx{})
			return
		}
	}
}

// trackMiss maps a miss-slice index back to its original batch offset
// and tracks it when sampled (bound once as trackMissFn).
func (s *Session) trackMiss(j int, l *Leaf) {
	orig := int(s.cb.pos[j])
	for _, si := range s.cb.sampled {
		if si == orig {
			s.sampler.Track(l, core.Read, LeafCtx{})
			return
		}
	}
}

// InsertBatch is the tracked batch insert. Writes that eagerly expanded
// their leaf are always tracked — sampled or not — preserving the deferred
// compaction protocol of §5.2 (an expanded leaf the manager never hears
// about could not be compacted again). Cache coherence needs no work
// here: the tree's write paths invalidate overwritten keys before the
// batch returns.
func (s *Session) InsertBatch(keys, vals []uint64, inserted []bool) {
	if s.a.dur != nil {
		s.insertBatchDurable(keys, vals, inserted)
		return
	}
	if s.rec != nil {
		s.insertBatchTraced(keys, vals, inserted)
		return
	}
	s.insertBatchFast(keys, vals, inserted)
}

func (s *Session) insertBatchFast(keys, vals []uint64, inserted []bool) {
	s.sampleBuf = s.sampler.SampleOffsets(len(keys), s.sampleBuf[:0])
	s.a.Tree.insertBatchTracked(keys, vals, inserted, s.trackInsFn)
}

// trackInsert is the insert-batch callback (bound once).
func (s *Session) trackInsert(i int, l *Leaf, expanded bool) {
	if expanded {
		s.sampler.Track(l, core.Insert, LeafCtx{})
		return
	}
	for _, si := range s.sampleBuf {
		if si == i {
			s.sampler.Track(l, core.Insert, LeafCtx{})
			return
		}
	}
}

// cacheBatch is the session-owned scratch of the cached batch path: the
// compacted miss batch (keys/pos/snaps in batch order) and its results.
// Sessions are single-goroutine, so no pooling or locking is needed and
// the buffers amortize to zero allocations per batch.
type cacheBatch struct {
	keys    []uint64
	vals    []uint64
	found   []bool
	pos     []int32
	snaps   []uint64
	sampled []int
}

func (cb *cacheBatch) grow(n int) {
	if cap(cb.keys) >= n {
		return
	}
	cb.keys = make([]uint64, n)
	cb.vals = make([]uint64, n)
	cb.found = make([]bool, n)
	cb.pos = make([]int32, n)
	cb.snaps = make([]uint64, n)
}
