package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"ahi/internal/obs"
)

// This file implements the front-end's shared migration executor: one
// pool of migrator goroutines that applies every shard's queued leaf
// re-encodings, with cross-shard work stealing.
//
// Without it each shard's manager runs its own private worker pool, so a
// front-end with S shards spawns S·W goroutines that cannot help each
// other: a hot shard's migration backlog grows while cold shards' workers
// sleep. The shared pool flips the shards into ExternalMigrations mode
// (no internal workers) and sizes itself to the machine, not the shard
// count. Each worker owns a home shard (worker index modulo shards) it
// serves first; when the home queue is empty it steals from the shard
// with the deepest backlog, so migration capacity follows the workload
// the same way the memory budget does in Rebalance.

// parkInterval bounds how long an idle migrator sleeps between backlog
// re-scans when no enqueue notification arrives. Wake-ups normally come
// from the managers' OnMigrationQueued hook; the timer only covers the
// window where a notification raced ahead of the queue insert.
const parkInterval = time.Millisecond

// migratorPool is the shared executor. Created by build when the shard
// config enables async migrations, stopped by ShardedBTree.Close before
// the per-shard managers shut down.
type migratorPool struct {
	s      *ShardedBTree
	notify chan struct{} // buffered(1) wake signal from any shard's manager
	quit   chan struct{}
	wg     sync.WaitGroup

	steals atomic.Int64
	stealC *obs.Counter // nil without an observability sink
}

func newMigratorPool(s *ShardedBTree, workers int, reg *obs.Registry) *migratorPool {
	p := &migratorPool{
		s:      s,
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	if reg != nil {
		p.stealC = reg.Counter("ahi_migration_steals_total")
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// wake is the OnMigrationQueued hook shared by every shard's manager:
// a nonblocking send on the buffered channel collapses any burst of
// enqueues into one pending wake-up.
func (p *migratorPool) wake() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// stop shuts the pool down and waits for the workers to park. Queued
// work left behind is not lost: the managers' Close flushes it on the
// closing goroutine.
func (p *migratorPool) stop() {
	close(p.quit)
	p.wg.Wait()
}

// victim picks the shard with the deepest migration backlog other than
// home, or -1 when every other shard is idle.
func (p *migratorPool) victim(home int) int {
	best, depth := -1, 0
	for g, sh := range p.s.shards {
		if g == home {
			continue
		}
		if d := sh.a.MigrationBacklog(); d > depth {
			best, depth = g, d
		}
	}
	return best
}

func (p *migratorPool) worker(id int) {
	defer p.wg.Done()
	home := id % len(p.s.shards)
	timer := time.NewTimer(parkInterval)
	defer timer.Stop()
	for {
		// Home shard first: keeps the common case cache- and
		// contention-friendly (one worker per shard when workers == shards).
		if p.s.shards[home].a.RunQueuedMigration() {
			continue
		}
		if g := p.victim(home); g >= 0 && p.s.shards[g].a.RunQueuedMigration() {
			p.steals.Add(1)
			if p.stealC != nil {
				p.stealC.Inc()
			}
			continue
		}
		// Nothing anywhere: park until an enqueue wakes us or the timer
		// forces a defensive re-scan.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(parkInterval)
		select {
		case <-p.quit:
			return
		case <-p.notify:
		case <-timer.C:
		}
	}
}

// Steals reports how many migrations ran on a non-home worker (bench and
// test introspection).
func (s *ShardedBTree) Steals() int64 {
	if s.migrators == nil {
		return 0
	}
	return s.migrators.steals.Load()
}

// MigrationBacklog sums queued plus deferred migrations across shards.
func (s *ShardedBTree) MigrationBacklog() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.a.MigrationBacklog()
	}
	return n
}
