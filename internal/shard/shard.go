// Package shard implements the serving layer's key-range-partitioned
// front-end: a ShardedBTree owns N adaptive Hybrid B+-trees, each with its
// own adaptation manager, behind one routing table. Partition-per-worker
// adaptation follows the multi-core adaptive-indexing line of work — each
// shard's sampler, sample store and migration pipeline see only that
// shard's traffic, so adaptation state never crosses shard boundaries and
// smaller per-shard trees keep traversals shallow.
//
// Three protocols tie the shards together:
//
//   - Routing: shards own contiguous key ranges delimited by a sorted
//     bounds table (bounds[i] is the first key of shard i+1); a key routes
//     to the shard at the binary-search position of its upper bound. The
//     table is immutable after construction, so routing is lock-free.
//
//   - Batch fan-out: a request batch is grouped by destination shard with
//     one counting-sort pass (counts → offsets → gather), producing one
//     contiguous sub-batch per shard in a pooled scratch buffer. Sub-
//     batches run on the per-shard batch kernels; when more than one shard
//     is touched and Workers > 1, sub-batches fan out across a bounded
//     worker pool, bounded by a semaphore, and results scatter back to the
//     caller's positional slices.
//
//   - Budget split: the configured memory budget is the total across all
//     shards. Every RebalanceEvery batches (and on demand via Rebalance)
//     the front-end re-splits it by per-shard hotness: a quarter of the
//     budget is spread evenly — no shard starves entirely, cold ranges can
//     still expand a few hot leaves — and the rest is handed out
//     proportionally to each shard's decayed operation counter via the
//     manager's runtime budget override.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ahi/internal/btree"
	"ahi/internal/obs"
)

// Config configures a ShardedBTree.
type Config struct {
	// Shards is the number of key-range partitions (default 1).
	Shards int
	// Workers bounds the batch fan-out concurrency (default GOMAXPROCS,
	// capped at Shards). 1 disables the pool: sub-batches run inline.
	Workers int
	// Adaptive is the per-shard tree configuration. MemoryBudget is the
	// TOTAL across all shards; the front-end splits it by hotness.
	// RelativeBudget applies per shard unchanged.
	Adaptive btree.AdaptiveConfig
	// RebalanceEvery is the number of batches between automatic budget
	// re-splits (default 64; < 0 disables automatic rebalancing).
	RebalanceEvery int
	// MigrationWorkers sizes the shared cross-shard migrator pool (only
	// with Adaptive.AsyncMigrations). Default min(GOMAXPROCS, Shards);
	// < 0 disables the shared pool and keeps each shard's internal
	// manager workers instead.
	MigrationWorkers int
	// Obs attaches one shared observability sink to every shard: shard i
	// labels its series source="shard<i>", so the single registry holds the
	// aggregate view across the front-end while each shard's trace events
	// and snapshots stay attributable. Overrides Adaptive.Obs/ObsSource.
	Obs *obs.Observability
}

func (c *Config) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 64
	}
	if c.MigrationWorkers == 0 {
		c.MigrationWorkers = runtime.GOMAXPROCS(0)
		if c.MigrationWorkers > c.Shards {
			c.MigrationWorkers = c.Shards
		}
	}
}

// shardState is one partition: an adaptive tree plus its serialized
// session. Tree and manager are concurrency-safe, but sessions are not —
// single-key operations and sub-batches take the shard mutex and go
// through the shard's one session, so per-shard work serializes while
// distinct shards proceed in parallel.
type shardState struct {
	a       *btree.Adaptive
	mu      sync.Mutex
	session *btree.Session
	// ops counts routed operations since construction, decayed at every
	// rebalance — the hotness weight of the budget split.
	ops atomic.Int64
}

// ShardedBTree is the key-range-partitioned serving front-end.
type ShardedBTree struct {
	cfg    Config
	bounds []uint64 // bounds[i] = first key of shard i+1; len = Shards-1
	shards []*shardState

	sem     chan struct{} // bounded fan-out pool
	batches atomic.Int64  // batch counter driving automatic rebalance
	total   int64         // total memory budget split across shards

	// migrators is the shared cross-shard migration executor (nil when
	// async migrations are off or the shared pool is disabled).
	migrators *migratorPool

	// frontRec is the flight-recorder scope of the routing layer itself
	// (source="front"): one coarse event per batch call with its shard
	// fan-out, on top of the per-shard events the sessions record. Nil
	// unless the shared Obs sink has tracing enabled.
	frontRec  *obs.OpRecorder
	frontTick atomic.Uint32
}

// New creates an empty ShardedBTree whose shards split the uint64 key
// space evenly.
func New(cfg Config) *ShardedBTree {
	cfg.setDefaults()
	n := cfg.Shards
	bounds := make([]uint64, n-1)
	stride := ^uint64(0)/uint64(n) + 1
	for i := range bounds {
		bounds[i] = stride * uint64(i+1)
	}
	return build(cfg, bounds, nil, nil)
}

// BulkLoad builds a ShardedBTree from sorted unique keys, partitioning
// them into equally sized contiguous chunks — each chunk becomes one
// shard's bulk-loaded tree and its first key the routing bound.
func BulkLoad(cfg Config, keys, vals []uint64) *ShardedBTree {
	cfg.setDefaults()
	if len(keys) != len(vals) {
		panic("shard: keys and vals length mismatch")
	}
	n := cfg.Shards
	if len(keys) < n {
		// Not enough keys to cut meaningful ranges: even key-space split.
		s := New(cfg)
		ins := make([]bool, len(keys))
		s.InsertBatch(keys, vals, ins)
		return s
	}
	// Floor division: cut points i*per stay in range for every i < n, and
	// the last shard absorbs the remainder — rangeOf slices the input with
	// the same arithmetic, so chunk contents and routing bounds agree.
	per := len(keys) / n
	bounds := make([]uint64, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, keys[i*per])
	}
	return build(cfg, bounds, keys, vals)
}

func build(cfg Config, bounds []uint64, keys, vals []uint64) *ShardedBTree {
	if cfg.Adaptive.Dur != nil {
		panic("shard: durable configs must go through shard.Open")
	}
	n := cfg.Shards
	s := newSkeleton(cfg, bounds)
	for i := 0; i < n; i++ {
		acfg := s.perShardCfg(cfg, i)
		var a *btree.Adaptive
		if keys != nil {
			lo, hi := s.rangeOf(i, len(keys))
			a = btree.BulkLoadAdaptive(acfg, keys[lo:hi], vals[lo:hi])
		} else {
			a = btree.NewAdaptive(acfg)
		}
		s.shards[i] = &shardState{a: a, session: a.NewSession()}
	}
	s.finishBuild(cfg)
	return s
}

func newSkeleton(cfg Config, bounds []uint64) *ShardedBTree {
	return &ShardedBTree{
		cfg:    cfg,
		bounds: bounds,
		shards: make([]*shardState, cfg.Shards),
		sem:    make(chan struct{}, cfg.Workers),
		total:  cfg.Adaptive.MemoryBudget,
	}
}

// perShardCfg derives shard i's tree config from the front-end config:
// even budget split until hotness data exists, shared-pool migration
// wiring, and per-shard observability sources.
func (s *ShardedBTree) perShardCfg(cfg Config, i int) btree.AdaptiveConfig {
	n := cfg.Shards
	acfg := cfg.Adaptive
	if s.total > 0 {
		acfg.MemoryBudget = s.total / int64(n) // even split until hotness data exists
	}
	if cfg.Adaptive.AsyncMigrations && cfg.MigrationWorkers > 0 {
		// The shared pool replaces the per-shard internal workers:
		// managers only queue, the pool executes (and steals).
		acfg.ExternalMigrations = true
		acfg.OnMigrationQueued = func() {
			if p := s.migrators; p != nil {
				p.wake()
			}
		}
		if acfg.MigrationQueue <= 0 {
			// Split the core default queue budget across shards instead
			// of multiplying it by the shard count.
			if q := 256 * runtime.GOMAXPROCS(0) / n; q > 128 {
				acfg.MigrationQueue = q
			} else {
				acfg.MigrationQueue = 128
			}
		}
	}
	if cfg.Obs != nil {
		acfg.Obs = cfg.Obs
		acfg.ObsSource = fmt.Sprintf("shard%d", i)
	}
	return acfg
}

func (s *ShardedBTree) finishBuild(cfg Config) {
	if cfg.Adaptive.AsyncMigrations && cfg.MigrationWorkers > 0 {
		var reg *obs.Registry
		if cfg.Obs != nil {
			reg = cfg.Obs.Reg
		}
		s.migrators = newMigratorPool(s, cfg.MigrationWorkers, reg)
	}
	if cfg.Obs != nil && cfg.Obs.Flight != nil {
		s.frontRec = cfg.Obs.Flight.Scope("front")
	}
}

// beginFront arms a front-layer probe for one batch call. The probe lives
// on the caller's stack — batch entry points run concurrently, so unlike
// sessions the front cannot reuse one. The sample tick is shared (atomic)
// across callers.
func (s *ShardedBTree) beginFront(p *obs.OpProbe, kind obs.OpKind, keys []uint64) {
	var k0 uint64
	if len(keys) > 0 {
		k0 = keys[0]
	}
	s.frontRec.Begin(p, kind, k0, s.frontTick.Add(1)&s.frontRec.SampleMask() == 0)
}

// rangeOf returns shard i's [lo, hi) slice of the bulk-load input — the
// same floor-division cut points BulkLoad derived the bounds from.
func (s *ShardedBTree) rangeOf(i, n int) (int, int) {
	ns := len(s.shards)
	per := n / ns
	lo := i * per
	hi := lo + per
	if i == ns-1 {
		hi = n
	}
	return lo, hi
}

// shardOf routes a key: the number of bounds <= k is the shard index.
func (s *ShardedBTree) shardOf(k uint64) int {
	b := s.bounds
	if len(b) == 0 {
		return 0
	}
	return sort.Search(len(b), func(i int) bool { return b[i] > k })
}

// Shards returns the shard count.
func (s *ShardedBTree) Shards() int { return len(s.shards) }

// Shard exposes shard i's adaptive tree (bench/test introspection).
func (s *ShardedBTree) Shard(i int) *btree.Adaptive { return s.shards[i].a }

// Lookup routes a single-key lookup through the owning shard's session.
func (s *ShardedBTree) Lookup(k uint64) (uint64, bool) {
	sh := s.shards[s.shardOf(k)]
	sh.ops.Add(1)
	sh.mu.Lock()
	v, ok := sh.session.Lookup(k)
	sh.mu.Unlock()
	return v, ok
}

// Insert routes a single-key insert.
func (s *ShardedBTree) Insert(k, v uint64) bool {
	sh := s.shards[s.shardOf(k)]
	sh.ops.Add(1)
	sh.mu.Lock()
	ok := sh.session.Insert(k, v)
	sh.mu.Unlock()
	return ok
}

// Delete routes a single-key delete.
func (s *ShardedBTree) Delete(k uint64) bool {
	sh := s.shards[s.shardOf(k)]
	sh.ops.Add(1)
	sh.mu.Lock()
	ok := sh.session.Delete(k)
	sh.mu.Unlock()
	return ok
}

// Scan visits up to n pairs with key >= from in ascending key order,
// crossing shard boundaries as needed.
func (s *ShardedBTree) Scan(from uint64, n int, fn func(k, v uint64) bool) int {
	visited := 0
	stopped := false
	wrapped := func(k, v uint64) bool {
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	}
	for i := s.shardOf(from); i < len(s.shards) && visited < n && !stopped; i++ {
		sh := s.shards[i]
		sh.ops.Add(1)
		sh.mu.Lock()
		visited += sh.session.Scan(from, n-visited, wrapped)
		sh.mu.Unlock()
		if i < len(s.bounds) {
			from = s.bounds[i] // continue at the next shard's first key
		}
	}
	return visited
}

// --- Batch routing -----------------------------------------------------

// routeScratch is the pooled grouping buffer of one batch: counting-sort
// style counts/offsets per shard plus flat gathered key/value/result
// segments (one contiguous segment per shard).
type routeScratch struct {
	counts  []int
	offsets []int
	sid     []int32 // per-key shard id from the count pass
	gidx    []int   // gathered original positions
	gk, gv  []uint64
	gf      []bool
}

var routePool = sync.Pool{New: func() any { return &routeScratch{} }}

func (rs *routeScratch) size(shards, n int) {
	if cap(rs.counts) < shards+1 {
		rs.counts = make([]int, shards+1)
		rs.offsets = make([]int, shards+1)
	}
	rs.counts = rs.counts[:shards+1]
	rs.offsets = rs.offsets[:shards+1]
	clear(rs.counts)
	if cap(rs.gidx) < n {
		rs.sid = make([]int32, n)
		rs.gidx = make([]int, n)
		rs.gk = make([]uint64, n)
		rs.gv = make([]uint64, n)
		rs.gf = make([]bool, n)
	}
	rs.sid = rs.sid[:n]
	rs.gidx = rs.gidx[:n]
	rs.gk = rs.gk[:n]
	rs.gv = rs.gv[:n]
	rs.gf = rs.gf[:n]
}

// group gathers the batch into per-shard contiguous segments; segment g is
// [offsets[g], offsets[g+1]) of the flat arrays. Returns how many shards
// are touched.
func (s *ShardedBTree) group(keys []uint64, rs *routeScratch) int {
	ns := len(s.shards)
	rs.size(ns, len(keys))
	for i, k := range keys {
		g := s.shardOf(k)
		rs.sid[i] = int32(g)
		rs.counts[g]++
	}
	touched := 0
	off := 0
	for g := 0; g < ns; g++ {
		rs.offsets[g] = off
		if rs.counts[g] > 0 {
			touched++
		}
		off += rs.counts[g]
		rs.counts[g] = rs.offsets[g] // reuse as running fill cursor
	}
	rs.offsets[ns] = off
	for i, k := range keys {
		g := rs.sid[i]
		p := rs.counts[g]
		rs.counts[g] = p + 1
		rs.gidx[p] = i
		rs.gk[p] = k
	}
	return touched
}

// fanOut runs fn(shard, lo, hi) for every non-empty shard segment —
// inline when only one shard is touched (or the pool is sized 1), across
// the bounded worker pool otherwise.
func (s *ShardedBTree) fanOut(rs *routeScratch, touched int, fn func(g, lo, hi int)) {
	ns := len(s.shards)
	if touched <= 1 || cap(s.sem) <= 1 {
		for g := 0; g < ns; g++ {
			if lo, hi := rs.offsets[g], rs.offsets[g+1]; hi > lo {
				fn(g, lo, hi)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < ns; g++ {
		lo, hi := rs.offsets[g], rs.offsets[g+1]
		if hi <= lo {
			continue
		}
		wg.Add(1)
		s.sem <- struct{}{}
		go func(g, lo, hi int) {
			defer func() { <-s.sem; wg.Done() }()
			fn(g, lo, hi)
		}(g, lo, hi)
	}
	wg.Wait()
}

// LookupBatch looks up len(keys) keys, storing results positionally in
// vals and found. The batch is grouped by shard, each sub-batch runs the
// shard tree's interleaved batch-lookup kernel, and sub-batches fan out
// across the worker pool.
func (s *ShardedBTree) LookupBatch(keys, vals []uint64, found []bool) {
	n := len(keys)
	if len(vals) < n || len(found) < n {
		panic("shard: LookupBatch result slices shorter than keys")
	}
	if n == 0 {
		return
	}
	var p obs.OpProbe
	if s.frontRec != nil {
		s.beginFront(&p, obs.OpLookupBatch, keys)
	}
	touched := 1
	if len(s.shards) == 1 {
		// Single shard: no grouping, no gather/scatter — the batch runs on
		// the caller's slices directly.
		sh := s.shards[0]
		sh.ops.Add(int64(n))
		sh.mu.Lock()
		sh.session.LookupBatch(keys, vals[:n], found[:n])
		sh.mu.Unlock()
	} else {
		rs := routePool.Get().(*routeScratch)
		touched = s.group(keys, rs)
		s.fanOut(rs, touched, func(g, lo, hi int) {
			sh := s.shards[g]
			sh.ops.Add(int64(hi - lo))
			sh.mu.Lock()
			sh.session.LookupBatch(rs.gk[lo:hi], rs.gv[lo:hi], rs.gf[lo:hi])
			sh.mu.Unlock()
		})
		for i := 0; i < n; i++ {
			vals[rs.gidx[i]] = rs.gv[i]
			found[rs.gidx[i]] = rs.gf[i]
		}
		routePool.Put(rs)
		s.maybeRebalance()
	}
	if s.frontRec != nil {
		p.Ev.Ops = int32(n)
		p.Ev.Fanout = int32(touched)
		p.End()
	}
}

// InsertBatch inserts len(keys) pairs; inserted[i] reports whether keys[i]
// was new. Duplicate keys in one batch resolve in submission order within
// their shard (last value wins).
func (s *ShardedBTree) InsertBatch(keys, vals []uint64, inserted []bool) {
	n := len(keys)
	if len(vals) < n || len(inserted) < n {
		panic("shard: InsertBatch slices shorter than keys")
	}
	if n == 0 {
		return
	}
	var p obs.OpProbe
	if s.frontRec != nil {
		s.beginFront(&p, obs.OpInsertBatch, keys)
	}
	touched := 1
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.ops.Add(int64(n))
		sh.mu.Lock()
		sh.session.InsertBatch(keys, vals[:n], inserted[:n])
		sh.mu.Unlock()
	} else {
		rs := routePool.Get().(*routeScratch)
		touched = s.group(keys, rs)
		for i := 0; i < n; i++ {
			rs.gv[i] = vals[rs.gidx[i]]
		}
		s.fanOut(rs, touched, func(g, lo, hi int) {
			sh := s.shards[g]
			sh.ops.Add(int64(hi - lo))
			sh.mu.Lock()
			sh.session.InsertBatch(rs.gk[lo:hi], rs.gv[lo:hi], rs.gf[lo:hi])
			sh.mu.Unlock()
		})
		for i := 0; i < n; i++ {
			inserted[rs.gidx[i]] = rs.gf[i]
		}
		routePool.Put(rs)
		s.maybeRebalance()
	}
	if s.frontRec != nil {
		p.Ev.Ops = int32(n)
		p.Ev.Fanout = int32(touched)
		p.End()
	}
}

// --- Budget split ------------------------------------------------------

func (s *ShardedBTree) maybeRebalance() {
	if s.total <= 0 || s.cfg.RebalanceEvery < 0 || len(s.shards) == 1 {
		return
	}
	if s.batches.Add(1)%int64(s.cfg.RebalanceEvery) == 0 {
		s.Rebalance()
	}
}

// Rebalance re-splits the total memory budget across shards by hotness:
// 25% evenly (a floor so cold shards keep a little expansion headroom),
// 75% proportional to each shard's decayed operation count. No-op without
// an absolute total budget.
func (s *ShardedBTree) Rebalance() {
	if s.total <= 0 {
		return
	}
	ns := int64(len(s.shards))
	// Hotness weight: decayed operation count plus the shard's migration
	// backlog (scaled up — a queued re-encoding is worth more signal than
	// one routed op, it means the shard is actively churning encodings).
	// Queue-depth awareness sends budget where adaptation pressure is,
	// not just where traffic was.
	weight := func(sh *shardState) int64 {
		return sh.ops.Load() + 64*int64(sh.a.MigrationBacklog())
	}
	var sum int64
	for _, sh := range s.shards {
		sum += weight(sh)
	}
	reserve := s.total / 4
	weighted := s.total - reserve
	for _, sh := range s.shards {
		share := reserve / ns
		if sum > 0 {
			share += weighted * weight(sh) / sum
		} else {
			share += weighted / ns
		}
		sh.a.Mgr.SetMemoryBudget(share)
		// The result cache is sized as a fraction of the shard's budget,
		// so it follows the re-split (dropping its working set — the
		// rebalance cadence is far coarser than cache refill).
		sh.a.ResizeCache(share)
		// Exponential decay so the split tracks shifting hot ranges
		// instead of the all-time distribution.
		for {
			o := sh.ops.Load()
			if sh.ops.CompareAndSwap(o, o/2) {
				break
			}
		}
	}
}

// Ops returns shard i's decayed hotness counter (bench introspection).
func (s *ShardedBTree) Ops(i int) int64 { return s.shards[i].ops.Load() }

// Len returns the total number of stored keys.
func (s *ShardedBTree) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.a.Tree.Len()
	}
	return n
}

// Bytes returns the aggregate index footprint.
func (s *ShardedBTree) Bytes() int64 {
	var b int64
	for _, sh := range s.shards {
		b += sh.a.Tree.Bytes()
	}
	return b
}

// DrainMigrations blocks until every shard's queued asynchronous
// migrations have applied.
func (s *ShardedBTree) DrainMigrations() {
	for _, sh := range s.shards {
		sh.a.DrainMigrations()
	}
}

// Close flushes and stops every shard's migration pipeline. The shared
// migrator pool stops first so no worker races the managers' shutdown
// flush; work still queued at that point is executed by Close itself.
func (s *ShardedBTree) Close() {
	if s.migrators != nil {
		s.migrators.stop()
	}
	for _, sh := range s.shards {
		sh.a.Close()
	}
}

// Flush merges buffered thread-local samples on every shard session.
func (s *ShardedBTree) Flush() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.session.Flush()
		sh.mu.Unlock()
	}
}
