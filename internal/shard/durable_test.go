package shard

import (
	"os"
	"path/filepath"
	"testing"

	"ahi/internal/btree"
	"ahi/internal/wal"
)

func durShardCfg(dir string, shards int) Config {
	return Config{
		Shards: shards,
		Adaptive: btree.AdaptiveConfig{
			Tree:         btree.Config{DefaultEncoding: btree.EncSuccinct},
			MemoryBudget: 64 << 20,
			Dur: &btree.DurabilityConfig{
				Dir:          dir,
				Policy:       wal.SyncOS,
				SegmentBytes: 1 << 16,
			},
		},
	}
}

func TestShardDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(durShardCfg(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmShards != 0 || st.Replayed != 0 {
		t.Fatalf("fresh open reported recovery: %+v", st)
	}
	const n = 4000
	stride := ^uint64(0) / n // spread keys across all shards
	for i := uint64(0); i < n; i++ {
		s.Insert(i*stride, i)
	}
	for i := uint64(0); i < n; i += 7 {
		if !s.Delete(i * stride) {
			t.Fatalf("delete %d", i)
		}
	}
	s.Close()

	// Each shard must have its own log directory.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, "shard0")); err != nil {
			t.Fatalf("shard%d log dir missing: %v", i, err)
		}
	}

	s2, st2, err := Open(durShardCfg(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st2.Replayed == 0 {
		t.Fatalf("nothing replayed: %+v", st2)
	}
	if len(st2.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d", len(st2.PerShard))
	}
	for i := uint64(0); i < n; i++ {
		v, ok := s2.Lookup(i * stride)
		if i%7 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
			continue
		}
		if !ok || v != i {
			t.Fatalf("key %d: %d %v", i, v, ok)
		}
	}
}

func TestShardDurableCheckpointWarm(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(durShardCfg(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 0, 8000)
	vals := make([]uint64, 0, 8000)
	stride := ^uint64(0) / 8000
	for i := uint64(0); i < 8000; i++ {
		keys = append(keys, i*stride)
		vals = append(vals, i)
	}
	ins := make([]bool, len(keys))
	s.InsertBatch(keys, vals, ins)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, st, err := Open(durShardCfg(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.WarmShards != 4 {
		t.Fatalf("warm shards %d want 4 (%+v)", st.WarmShards, st)
	}
	for i, v := range vals {
		got, ok := s2.Lookup(keys[i])
		if !ok || got != v {
			t.Fatalf("key %d: %d %v", keys[i], got, ok)
		}
	}
}

func TestShardOpenVolatile(t *testing.T) {
	s, st, err := Open(Config{Shards: 2, Adaptive: btree.AdaptiveConfig{Tree: btree.Config{DefaultEncoding: btree.EncSuccinct}}})
	if err != nil || st.WarmShards != 0 {
		t.Fatalf("volatile open: %v %+v", err, st)
	}
	defer s.Close()
	s.Insert(1, 2)
	if v, ok := s.Lookup(1); !ok || v != 2 {
		t.Fatal("volatile sharded tree broken")
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
}
