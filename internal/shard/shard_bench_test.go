package shard

import (
	"testing"

	"ahi/internal/btree"
	"ahi/internal/workload"
)

func benchSharded(b *testing.B, shards int) (*ShardedBTree, []uint64) {
	b.Helper()
	n := 1 << 20
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 5
		vals[i] = uint64(i)
	}
	cfg := Config{Shards: shards, Workers: 1, Adaptive: btree.AdaptiveConfig{
		Tree: btree.Config{DefaultEncoding: btree.EncSuccinct},
	}}
	s := BulkLoad(cfg, keys, vals)
	b.Cleanup(s.Close)
	return s, keys
}

func benchLookups(b *testing.B, shards, batch int) {
	s, keys := benchSharded(b, shards)
	d := workload.NewZipf(len(keys), 1.1, 7)
	q := make([]uint64, 512)
	qv := make([]uint64, batch)
	qf := make([]bool, batch)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i += len(q) {
		b.StopTimer()
		for j := range q {
			q[j] = keys[d.Draw()]
		}
		b.StartTimer()
		if batch == 1 {
			for _, k := range q {
				v, _ := s.Lookup(k)
				sink += v
			}
		} else {
			for off := 0; off < len(q); off += batch {
				s.LookupBatch(q[off:off+batch], qv, qf)
			}
		}
	}
	_ = sink
}

func BenchmarkShardLookup1(b *testing.B)    { benchLookups(b, 1, 1) }
func BenchmarkShardLookup32(b *testing.B)   { benchLookups(b, 1, 32) }
func BenchmarkShardLookup128(b *testing.B)  { benchLookups(b, 1, 128) }
func BenchmarkShard4Lookup128(b *testing.B) { benchLookups(b, 4, 128) }
