package shard

import (
	"math/rand"
	"sync"
	"testing"

	"ahi/internal/btree"
)

// TestShardScanBatchMatchesScanOracle: for every shard count, the fused
// cross-shard ScanBatch must deliver exactly what the sequential
// callback Scan delivers — same pairs, same ascending order — including
// requests that span several shard boundaries.
func TestShardScanBatchMatchesScanOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		keys, vals := loadKeys(50_000)
		s := BulkLoad(testConfig(shards, 4), keys, vals)
		rng := rand.New(rand.NewSource(int64(shards)))
		var buf btree.ScanBuffer
		for round := 0; round < 20; round++ {
			nreq := 1 + rng.Intn(10)
			reqs := make([]btree.ScanReq, nreq)
			for i := range reqs {
				reqs[i] = btree.ScanReq{
					// Long lengths force cross-shard continuations at 16 shards.
					From: uint64(rng.Intn(len(keys) * 5)),
					N:    rng.Intn(8_000),
				}
			}
			buf.Reset(nreq)
			got := s.ScanBatch(reqs, &buf)
			total := 0
			for i, r := range reqs {
				var wk, wv []uint64
				s.Scan(r.From, r.N, func(k, v uint64) bool {
					wk = append(wk, k)
					wv = append(wv, v)
					return true
				})
				total += len(wk)
				if buf.Len(i) != len(wk) {
					t.Fatalf("shards=%d round=%d req=%d (%+v): got %d pairs, want %d",
						shards, round, i, r, buf.Len(i), len(wk))
				}
				for j := range wk {
					if buf.Keys(i)[j] != wk[j] || buf.Vals(i)[j] != wv[j] {
						t.Fatalf("shards=%d req=%d pair %d: got (%d,%d) want (%d,%d)",
							shards, i, j, buf.Keys(i)[j], buf.Vals(i)[j], wk[j], wv[j])
					}
				}
			}
			if got != total {
				t.Fatalf("shards=%d round=%d: ScanBatch returned %d, delivered %d",
					shards, round, got, total)
			}
		}
		s.Close()
	}
}

// appendSink accumulates emitted segments per request and asserts each
// request's keys arrive in ascending order across Emit calls — the
// cross-shard stitching contract.
type appendSink struct {
	t    *testing.T
	last []uint64
	n    []int
	seen []bool
}

func newAppendSink(t *testing.T, nreq int) *appendSink {
	return &appendSink{t: t, last: make([]uint64, nreq), n: make([]int, nreq), seen: make([]bool, nreq)}
}

func (a *appendSink) Emit(req int, keys, vals []uint64) {
	if len(keys) != len(vals) {
		a.t.Errorf("req %d: %d keys vs %d vals", req, len(keys), len(vals))
	}
	for _, k := range keys {
		if a.seen[req] && k <= a.last[req] {
			a.t.Errorf("req %d: key %d not ascending (last %d)", req, k, a.last[req])
			return
		}
		a.last[req] = k
		a.seen[req] = true
	}
	a.n[req] += len(keys)
}

// TestShardScanBatchUnderConcurrentWrites races fused scans against
// batched inserts and the async migration machinery. Scanned keys are
// pre-loaded and immutable; inserts land in a disjoint key range, so
// every scan must still observe ascending keys per request and at least
// the pre-loaded density. Run under -race in CI.
func TestShardScanBatchUnderConcurrentWrites(t *testing.T) {
	keys, vals := loadKeys(40_000)
	s := BulkLoad(testConfig(8, 4), keys, vals)
	defer s.Close()
	maxKey := keys[len(keys)-1]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ik := make([]uint64, 128)
			iv := make([]uint64, 128)
			ib := make([]bool, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ik {
					// Disjoint from the scanned range: all above maxKey.
					ik[i] = maxKey + 1 + uint64(rng.Intn(1<<20))
					iv[i] = uint64(i)
				}
				s.InsertBatch(ik, iv, ib)
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 60; round++ {
		nreq := 6
		reqs := make([]btree.ScanReq, nreq)
		for i := range reqs {
			reqs[i] = btree.ScanReq{From: uint64(rng.Intn(30_000) * 5), N: 2_000}
		}
		sink := newAppendSink(t, nreq)
		s.ScanBatch(reqs, sink)
		for i, r := range reqs {
			// All Froms leave ≥2000 pre-loaded keys ahead of them, so every
			// request must fill completely regardless of concurrent inserts.
			if sink.n[i] < r.N {
				t.Fatalf("round %d req %d: delivered %d of %d pairs", round, i, sink.n[i], r.N)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardScanBatchEdgeCases(t *testing.T) {
	keys, vals := loadKeys(10_000)
	s := BulkLoad(testConfig(4, 2), keys, vals)
	defer s.Close()
	var buf btree.ScanBuffer

	if n := s.ScanBatch(nil, &buf); n != 0 {
		t.Fatalf("empty batch delivered %d", n)
	}
	buf.Reset(2)
	n := s.ScanBatch([]btree.ScanReq{
		{From: 0, N: 0},
		{From: keys[len(keys)-1] + 1, N: 50},
	}, &buf)
	if n != 0 {
		t.Fatalf("degenerate batch delivered %d", n)
	}
	// One request draining everything crosses all shard boundaries.
	buf.Reset(1)
	s.ScanBatch([]btree.ScanReq{{From: 0, N: len(keys) * 2}}, &buf)
	if buf.Len(0) != len(keys) {
		t.Fatalf("full drain delivered %d pairs, want %d", buf.Len(0), len(keys))
	}
}
