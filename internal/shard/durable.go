package shard

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"ahi/internal/btree"
)

// RecoveryStats aggregates per-shard recovery results. Shards recover in
// parallel, so WallNs is the wall time of the slowest shard plus fan-out
// overhead, not the sum of per-shard times.
type RecoveryStats struct {
	// PerShard holds shard i's tree-level recovery stats at index i.
	PerShard []btree.RecoveryStats
	// WarmShards counts shards restored from a valid checkpoint.
	WarmShards int
	// Segments, Replayed, SkippedRedoOptional and TornBytes are sums of
	// the per-shard fields.
	Segments            int
	Replayed            int
	SkippedRedoOptional int
	TornBytes           int64
	// WallNs is the end-to-end parallel recovery wall time.
	WallNs int64
}

// Open creates a durable ShardedBTree: shard i logs to and recovers from
// <Dur.Dir>/shard<i>, so the per-shard logs never contend on one file and
// recovery replays all shards in parallel. With Adaptive.Dur nil it is
// equivalent to New. The key-space split must match across restarts — the
// routing bounds are derived from the shard count, not persisted, so
// reopening with a different Shards value scatters keys to the wrong logs.
func Open(cfg Config) (*ShardedBTree, *RecoveryStats, error) {
	cfg.setDefaults()
	n := cfg.Shards
	bounds := make([]uint64, n-1)
	stride := ^uint64(0)/uint64(n) + 1
	for i := range bounds {
		bounds[i] = stride * uint64(i+1)
	}
	if cfg.Adaptive.Dur == nil {
		return build(cfg, bounds, nil, nil), &RecoveryStats{PerShard: make([]btree.RecoveryStats, n)}, nil
	}

	base := *cfg.Adaptive.Dur
	s := newSkeleton(cfg, bounds)
	stats := &RecoveryStats{PerShard: make([]btree.RecoveryStats, n)}
	start := time.Now()

	trees := make([]*btree.Adaptive, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		acfg := s.perShardCfg(cfg, i)
		dc := base
		dc.Dir = filepath.Join(base.Dir, fmt.Sprintf("shard%d", i))
		acfg.Dur = &dc
		wg.Add(1)
		go func(i int, acfg btree.AdaptiveConfig) {
			defer wg.Done()
			a, st, err := btree.OpenAdaptive(acfg)
			if err != nil {
				errs[i] = fmt.Errorf("shard%d: %w", i, err)
				return
			}
			trees[i] = a
			stats.PerShard[i] = *st
		}(i, acfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, a := range trees {
				if a != nil {
					a.Close()
				}
			}
			return nil, nil, err
		}
	}
	for i, a := range trees {
		s.shards[i] = &shardState{a: a, session: a.NewSession()}
		st := &stats.PerShard[i]
		if st.WarmStart {
			stats.WarmShards++
		}
		stats.Segments += st.Segments
		stats.Replayed += st.Replayed
		stats.SkippedRedoOptional += st.SkippedRedoOptional
		stats.TornBytes += st.TornBytes
	}
	stats.WallNs = time.Since(start).Nanoseconds()
	s.finishBuild(cfg)
	return s, stats, nil
}

// Checkpoint snapshots every shard in parallel and returns the first
// error. Each shard's checkpoint cuts its own barrier, so the set is not
// a global consistent cut — it doesn't need to be: shards own disjoint
// key ranges and each log replays independently.
func (s *ShardedBTree) Checkpoint() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, a *btree.Adaptive) {
			defer wg.Done()
			if err := a.Checkpoint(); err != nil {
				errs[i] = fmt.Errorf("shard%d: %w", i, err)
			}
		}(i, sh.a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SyncWAL forces every shard's log to stable storage (no-op on volatile
// trees).
func (s *ShardedBTree) SyncWAL() error {
	for i, sh := range s.shards {
		if err := sh.a.SyncWAL(); err != nil {
			return fmt.Errorf("shard%d: %w", i, err)
		}
	}
	return nil
}
