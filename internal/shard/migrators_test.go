package shard

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func asyncConfig(shards, migrators int) Config {
	cfg := testConfig(shards, 1)
	cfg.Adaptive.AsyncMigrations = true
	cfg.Adaptive.InitialSkip = 2
	cfg.Adaptive.MinSkip = 2
	cfg.Adaptive.MaxSkip = 8
	cfg.Adaptive.RelativeBudget = 3.0
	cfg.MigrationWorkers = migrators
	return cfg
}

// TestSharedPoolReplacesInternalWorkers: with the shared migrator pool
// on, every shard's manager is in external mode — queued migrations are
// applied by the pool, and drain leaves no backlog behind.
func TestSharedPoolReplacesInternalWorkers(t *testing.T) {
	keys, vals := loadKeys(40_000)
	s := BulkLoad(asyncConfig(4, 2), keys, vals)
	defer s.Close()
	if s.migrators == nil {
		t.Fatal("shared migrator pool not created")
	}
	// Skewed single-key traffic into shard 0's range to provoke
	// expansions there.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		s.Lookup(keys[rng.Intn(len(keys)/8)])
	}
	s.DrainMigrations()
	if s.MigrationBacklog() != 0 {
		t.Fatalf("backlog = %d after drain, want 0", s.MigrationBacklog())
	}
	migrated := int64(0)
	for i := 0; i < s.Shards(); i++ {
		migrated += s.Shard(i).Tree.Expansions() + s.Shard(i).Tree.Compactions()
	}
	if migrated == 0 {
		t.Fatal("skewed traffic produced no migrations through the pool")
	}
}

// TestDisabledPoolKeepsInternalWorkers: MigrationWorkers < 0 opts out of
// the shared pool; shards fall back to their managers' own workers.
func TestDisabledPoolKeepsInternalWorkers(t *testing.T) {
	cfg := asyncConfig(2, -1)
	keys, vals := loadKeys(10_000)
	s := BulkLoad(cfg, keys, vals)
	defer s.Close()
	if s.migrators != nil {
		t.Fatal("shared pool must be disabled with MigrationWorkers < 0")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50_000; i++ {
		s.Lookup(keys[rng.Intn(len(keys)/8)])
	}
	s.DrainMigrations()
	if s.MigrationBacklog() != 0 {
		t.Fatalf("backlog = %d after drain, want 0", s.MigrationBacklog())
	}
}

// TestWorkStealingDrainsSkewedBacklog drives all adaptation churn into
// one shard while running more pool workers than that shard would get on
// its own: the extra workers must steal from the loaded shard's queue.
// Run under -race — stealing makes foreign workers execute a shard's
// migrations concurrently with its readers.
func TestWorkStealingDrainsSkewedBacklog(t *testing.T) {
	keys, vals := loadKeys(60_000)
	cfg := asyncConfig(4, 4)
	// A tiny queue keeps the home worker saturated so victims exist.
	cfg.Adaptive.MigrationQueue = 4
	s := BulkLoad(cfg, keys, vals)
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			bk := make([]uint64, 128)
			bv := make([]uint64, 128)
			bf := make([]bool, 128)
			hot := keys[:len(keys)/4] // shard 0's range only
			for i := 0; i < 400; i++ {
				for j := range bk {
					bk[j] = hot[rng.Intn(len(hot))]
				}
				s.LookupBatch(bk, bv, bf)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for s.MigrationBacklog() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.DrainMigrations()
	if s.MigrationBacklog() != 0 {
		t.Fatalf("backlog = %d, want 0 (stealing pool must drain the hot shard)", s.MigrationBacklog())
	}
	if s.Shard(0).Tree.Expansions() == 0 {
		t.Fatal("hot shard saw no expansions; workload did not provoke migrations")
	}
}

// TestCloseStopsPoolBeforeManagers: Close with queued work must not
// deadlock or drop accepted migrations, in any order of pool vs manager
// shutdown. Exercised repeatedly to shake out shutdown races.
func TestCloseStopsPoolBeforeManagers(t *testing.T) {
	for round := 0; round < 10; round++ {
		keys, vals := loadKeys(20_000)
		s := BulkLoad(asyncConfig(2, 2), keys, vals)
		rng := rand.New(rand.NewSource(int64(round)))
		for i := 0; i < 30_000; i++ {
			s.Lookup(keys[rng.Intn(len(keys)/8)])
		}
		s.Close() // must flush whatever is still queued or parked
		if s.MigrationBacklog() != 0 {
			t.Fatalf("round %d: backlog survived Close", round)
		}
	}
}
