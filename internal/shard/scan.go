package shard

import (
	"sync"

	"ahi/internal/btree"
	"ahi/internal/obs"
)

// Cross-shard batched range scans. Requests are split at shard
// boundaries: each request starts on the shard owning its From key and,
// if that shard's key range runs dry before N pairs are delivered,
// continues on the next shard at its first routed key (the same
// continuation protocol as the sequential Scan above, batched). Rounds
// proceed left to right — round r runs every request's current shard
// sub-batch through the per-shard fused ScanBatch kernel, distinct shards
// in parallel on the bounded worker pool — and after each round the
// partial results are stitched into the caller's sink in request order.
// Per-request segments therefore arrive in ascending key order across
// shard boundaries; segments of different requests interleave.

// scanPart tracks one request's progress across rounds.
type scanPart struct {
	req  int32  // original request index
	g    int32  // shard serving the current round
	pos  int32  // position within shard g's sub-batch this round
	rem  int32  // pairs still wanted
	from uint64 // continuation key
}

// scanRoute is the pooled per-call scratch: the live parts plus one
// sub-batch and result buffer per shard.
type scanRoute struct {
	parts []scanPart
	subs  [][]btree.ScanReq
	bufs  []*btree.ScanBuffer
}

var scanRoutePool = sync.Pool{New: func() any { return &scanRoute{} }}

func (rs *scanRoute) ensure(ns int) {
	for len(rs.subs) < ns {
		rs.subs = append(rs.subs, nil)
		rs.bufs = append(rs.bufs, &btree.ScanBuffer{})
	}
}

// ScanBatch serves len(reqs) range requests across the shard front-end
// and returns the total pairs delivered. Requests spanning several shards
// are split and continued; per-shard sub-batches run the fused
// btree.ScanBatch kernel, in parallel across the worker pool when more
// than one shard is touched. Emitted segments follow the ScanSink
// contract (ascending per request, valid only during Emit); all Emit
// calls happen on the caller's goroutine.
func (s *ShardedBTree) ScanBatch(reqs []btree.ScanReq, sink btree.ScanSink) int {
	if len(reqs) == 0 {
		return 0
	}
	var p obs.OpProbe
	if s.frontRec != nil {
		s.frontRec.Begin(&p, obs.OpScanBatch, reqs[0].From,
			s.frontTick.Add(1)&s.frontRec.SampleMask() == 0)
	}
	total, fan := 0, 1
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.ops.Add(int64(len(reqs)))
		sh.mu.Lock()
		total = sh.session.ScanBatch(reqs, sink)
		sh.mu.Unlock()
	} else {
		total, fan = s.scanBatchFanOut(reqs, sink)
		s.maybeRebalance()
	}
	if s.frontRec != nil {
		p.Ev.Ops = int32(total)
		p.Ev.Fanout = int32(fan)
		p.Ev.BulkDecode = true
		p.End()
	}
	return total
}

// scanBatchFanOut is the multi-shard path: round-based split, parallel
// per-shard execution, ordered stitch. Returns (pairs, max shards touched
// in one round).
func (s *ShardedBTree) scanBatchFanOut(reqs []btree.ScanReq, sink btree.ScanSink) (int, int) {
	ns := len(s.shards)
	rs := scanRoutePool.Get().(*scanRoute)
	rs.ensure(ns)
	parts := rs.parts[:0]
	for i, r := range reqs {
		if r.N <= 0 {
			continue
		}
		parts = append(parts, scanPart{
			req: int32(i), g: int32(s.shardOf(r.From)), from: r.From, rem: int32(r.N),
		})
	}
	total, maxFan := 0, 0
	for len(parts) > 0 {
		for g := range rs.subs[:ns] {
			rs.subs[g] = rs.subs[g][:0]
		}
		touched := 0
		for pi := range parts {
			pt := &parts[pi]
			g := int(pt.g)
			if len(rs.subs[g]) == 0 {
				touched++
			}
			pt.pos = int32(len(rs.subs[g]))
			rs.subs[g] = append(rs.subs[g], btree.ScanReq{From: pt.from, N: int(pt.rem)})
		}
		if touched > maxFan {
			maxFan = touched
		}
		run := func(g int) {
			sh := s.shards[g]
			sub := rs.subs[g]
			sh.ops.Add(int64(len(sub)))
			buf := rs.bufs[g]
			buf.Reset(len(sub))
			sh.mu.Lock()
			sh.session.ScanBatch(sub, buf)
			sh.mu.Unlock()
		}
		if touched <= 1 || cap(s.sem) <= 1 {
			for g := 0; g < ns; g++ {
				if len(rs.subs[g]) > 0 {
					run(g)
				}
			}
		} else {
			var wg sync.WaitGroup
			for g := 0; g < ns; g++ {
				if len(rs.subs[g]) == 0 {
					continue
				}
				wg.Add(1)
				s.sem <- struct{}{}
				go func(g int) {
					defer func() { <-s.sem; wg.Done() }()
					run(g)
				}(g)
			}
			wg.Wait()
		}
		// Stitch this round's partial results in request order, then build
		// the continuation set: a request whose shard delivered fewer pairs
		// than asked has exhausted that shard's key range and resumes on
		// the next shard at its first routed key.
		live := 0
		for pi := range parts {
			pt := &parts[pi]
			buf := rs.bufs[pt.g]
			if n := buf.Len(int(pt.pos)); n > 0 {
				sink.Emit(int(pt.req), buf.Keys(int(pt.pos)), buf.Vals(int(pt.pos)))
				total += n
				pt.rem -= int32(n)
			}
			if pt.rem > 0 && int(pt.g) < ns-1 {
				pt.from = s.bounds[pt.g]
				pt.g++
				parts[live] = *pt
				live++
			}
		}
		parts = parts[:live]
	}
	rs.parts = parts[:0]
	scanRoutePool.Put(rs)
	return total, maxFan
}
