package shard

import (
	"math/rand"
	"sync"
	"testing"

	"ahi/internal/btree"
)

func testConfig(shards, workers int) Config {
	return Config{
		Shards:  shards,
		Workers: workers,
		Adaptive: btree.AdaptiveConfig{
			Tree: btree.Config{DefaultEncoding: btree.EncSuccinct},
		},
	}
}

func loadKeys(n int) ([]uint64, []uint64) {
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 5
		vals[i] = uint64(i)
	}
	return keys, vals
}

// TestRoutingAgreesWithBulkLoad: every bulk-loaded key must be findable
// through the routing table, and routed single ops must round-trip.
func TestRoutingAgreesWithBulkLoad(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		keys, vals := loadKeys(10_000)
		s := BulkLoad(testConfig(shards, 1), keys, vals)
		if s.Len() != len(keys) {
			t.Fatalf("shards=%d: Len=%d want %d", shards, s.Len(), len(keys))
		}
		for i, k := range keys {
			if v, ok := s.Lookup(k); !ok || v != vals[i] {
				t.Fatalf("shards=%d: Lookup(%d)=(%d,%v) want (%d,true)", shards, k, v, ok, vals[i])
			}
		}
		if _, ok := s.Lookup(3); ok {
			t.Fatalf("shards=%d: phantom key", shards)
		}
		s.Close()
	}
}

// TestBulkLoadFewKeys covers the degenerate path where the input is
// smaller than the shard count.
func TestBulkLoadFewKeys(t *testing.T) {
	keys := []uint64{1, 2, 3}
	vals := []uint64{10, 20, 30}
	s := BulkLoad(testConfig(8, 2), keys, vals)
	defer s.Close()
	for i, k := range keys {
		if v, ok := s.Lookup(k); !ok || v != vals[i] {
			t.Fatalf("Lookup(%d)=(%d,%v) want (%d,true)", k, v, ok, vals[i])
		}
	}
}

// TestBatchMatchesSingleOps cross-checks sharded batch lookups/inserts
// against routed single-key operations, inline and fanned out.
func TestBatchMatchesSingleOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4} {
			s := New(testConfig(shards, workers))
			ref := make(map[uint64]uint64)
			for round := 0; round < 30; round++ {
				n := 1 + rng.Intn(256)
				ks := make([]uint64, n)
				vs := make([]uint64, n)
				ins := make([]bool, n)
				for i := range ks {
					ks[i] = rng.Uint64() // spans all shards
					if i%3 == 0 {
						ks[i] = uint64(rng.Intn(5000)) // and a dense hot range
					}
					vs[i] = rng.Uint64()
				}
				s.InsertBatch(ks, vs, ins)
				for i, k := range ks {
					ref[k] = vs[i]
					_ = ins[i]
				}
				// Mixed queries: some present, some misses.
				q := make([]uint64, 64)
				got := make([]uint64, 64)
				ok := make([]bool, 64)
				for i := range q {
					if i%2 == 0 && len(ks) > 0 {
						q[i] = ks[rng.Intn(len(ks))]
					} else {
						q[i] = rng.Uint64()
					}
				}
				s.LookupBatch(q, got, ok)
				for i, k := range q {
					wv, wok := ref[k]
					if ok[i] != wok || (wok && got[i] != wv) {
						t.Fatalf("shards=%d workers=%d: LookupBatch(%d)=(%d,%v) want (%d,%v)",
							shards, workers, k, got[i], ok[i], wv, wok)
					}
				}
			}
			if s.Len() != len(ref) {
				t.Fatalf("shards=%d workers=%d: Len=%d want %d", shards, workers, s.Len(), len(ref))
			}
			s.Close()
		}
	}
}

// TestScanCrossesShards checks ascending order across shard boundaries.
func TestScanCrossesShards(t *testing.T) {
	keys, vals := loadKeys(5_000)
	s := BulkLoad(testConfig(8, 1), keys, vals)
	defer s.Close()
	var seen []uint64
	n := s.Scan(0, len(keys), func(k, v uint64) bool {
		seen = append(seen, k)
		return true
	})
	if n != len(keys) || len(seen) != len(keys) {
		t.Fatalf("scan visited %d want %d", n, len(keys))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("scan out of order at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
	// Bounded scan starting mid-range.
	var mid []uint64
	s.Scan(keys[2000], 100, func(k, v uint64) bool {
		mid = append(mid, k)
		return true
	})
	if len(mid) != 100 || mid[0] != keys[2000] {
		t.Fatalf("mid scan: got %d from %d", len(mid), mid[0])
	}
}

// TestRebalanceSplitsBudgetByHotness drives traffic at one shard and
// checks the hotness counters steer the budget split.
func TestRebalanceSplitsBudgetByHotness(t *testing.T) {
	cfg := testConfig(4, 1)
	cfg.Adaptive.MemoryBudget = 1 << 20 // total across shards
	keys, vals := loadKeys(8_000)
	s := BulkLoad(cfg, keys, vals)
	defer s.Close()

	// Hammer shard 0's range only.
	q := make([]uint64, 128)
	got := make([]uint64, 128)
	ok := make([]bool, 128)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 100; round++ {
		for i := range q {
			q[i] = keys[rng.Intn(2000)] // first quarter = shard 0
		}
		s.LookupBatch(q, got, ok)
	}
	if s.Ops(0) <= s.Ops(3) {
		t.Fatalf("hot shard ops %d not above cold shard ops %d", s.Ops(0), s.Ops(3))
	}
	s.Rebalance() // must not panic; decays counters
	if s.Ops(0) < 0 {
		t.Fatal("negative ops after decay")
	}
}

// TestShardedConcurrentBatches hammers batched and single ops from
// multiple goroutines (run under -race).
func TestShardedConcurrentBatches(t *testing.T) {
	s := New(testConfig(4, 4))
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 64)
			vs := make([]uint64, 64)
			ins := make([]bool, 64)
			got := make([]uint64, 64)
			ok := make([]bool, 64)
			for round := 0; round < 50; round++ {
				for i := range ks {
					ks[i] = uint64(rng.Intn(1 << 16))
					vs[i] = ks[i] * 7
				}
				s.InsertBatch(ks, vs, ins)
				s.LookupBatch(ks, got, ok)
				for i := range ks {
					if ok[i] && got[i] != ks[i]*7 {
						t.Errorf("torn value for %d: %d", ks[i], got[i])
					}
				}
				s.Lookup(uint64(rng.Intn(1 << 16)))
				k := uint64(rng.Intn(1 << 16))
				s.Insert(k, k*7)
			}
		}(int64(g + 1))
	}
	wg.Wait()
}
