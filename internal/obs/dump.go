package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// DumpSchema identifies the on-disk trace format; bump on breaking
// changes so ahimon --replay can refuse files it cannot read.
const DumpSchema = "ahi-obs/v1"

// Dump is the serializable state of one Observability bundle: flat
// metrics, the retained migration trace, and the per-epoch snapshots.
// ahibench -trace writes one alongside its BENCH_*.json; ahimon renders
// it (file replay or live from /dump.json).
type Dump struct {
	Schema     string `json:"schema"`
	Recorded   string `json:"recorded,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Scale      string `json:"scale,omitempty"`

	Metrics       map[string]float64 `json:"metrics"`
	Snapshots     []Snapshot         `json:"snapshots"`
	Trace         []MigrationEvent   `json:"trace"`
	TraceDropped  int64              `json:"trace_dropped,omitempty"`
	SnapsDropped  int64              `json:"snapshots_dropped,omitempty"`
	TraceTotal    int64              `json:"trace_total"`
	SnapshotTotal int64              `json:"snapshot_total"`

	// Flight-recorder extension (absent unless tracing was enabled; all
	// additive, so the schema tag stays v1 and old readers still parse).
	Ops        []OpEvent  `json:"ops,omitempty"`
	OpsTotal   int64      `json:"ops_total,omitempty"`
	OpsDropped int64      `json:"ops_dropped,omitempty"`
	SLO        *SLOReport `json:"slo,omitempty"`
}

// Dump captures the bundle's current state.
func (o *Observability) Dump() Dump {
	d := Dump{
		Schema:        DumpSchema,
		Metrics:       o.Reg.metricsSnapshot(),
		Snapshots:     o.Snaps.Snapshots(),
		Trace:         o.Trace.Events(),
		TraceDropped:  o.Trace.Dropped(),
		SnapsDropped:  o.Snaps.Dropped(),
		TraceTotal:    o.Trace.Total(),
		SnapshotTotal: o.Snaps.Total(),
	}
	if f := o.Flight; f != nil {
		d.Ops = f.Events()
		d.OpsTotal = f.Total()
		d.OpsDropped = f.Dropped()
		rep := f.SLOReport()
		d.SLO = &rep
	}
	return d
}

// WriteDump writes d as indented JSON to path.
func WriteDump(path string, d Dump) error {
	out, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadDump reads and validates a dump file.
func ReadDump(path string) (Dump, error) {
	var d Dump
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != DumpSchema {
		return d, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, DumpSchema)
	}
	return d, nil
}

// Validate checks the structural invariants the bench smoke test and
// ahimon rely on: schema tag, monotone snapshot epochs per source, and
// non-negative event costs. It returns the first violation.
func (d *Dump) Validate() error {
	if d.Schema != DumpSchema {
		return fmt.Errorf("schema %q, want %q", d.Schema, DumpSchema)
	}
	if d.Metrics == nil {
		return fmt.Errorf("metrics map missing")
	}
	lastEpoch := map[string]int64{}
	for i := range d.Snapshots {
		s := &d.Snapshots[i]
		if last, ok := lastEpoch[s.Source]; ok && int64(s.Epoch) <= last {
			return fmt.Errorf("snapshot %d: epoch %d not increasing for source %q", i, s.Epoch, s.Source)
		}
		lastEpoch[s.Source] = int64(s.Epoch)
		if s.SampleSize < 0 || s.Skip < 0 || s.Migrations < 0 {
			return fmt.Errorf("snapshot %d: negative field", i)
		}
	}
	for i := range d.Trace {
		ev := &d.Trace[i]
		if ev.BuildNs < 0 || ev.QueueWaitNs < 0 {
			return fmt.Errorf("trace %d: negative cost", i)
		}
		if ev.To == "" {
			return fmt.Errorf("trace %d: missing target encoding", i)
		}
	}
	for i := range d.Ops {
		ev := &d.Ops[i]
		if ev.DurNs < 0 {
			return fmt.Errorf("op %d: negative duration", i)
		}
		if ev.Kind >= numOpKinds {
			return fmt.Errorf("op %d: unknown kind %d", i, ev.Kind)
		}
		if ev.Cause >= numCauses {
			return fmt.Errorf("op %d: unknown cause %d", i, ev.Cause)
		}
	}
	return nil
}
