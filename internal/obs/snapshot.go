package obs

import "sync"

// EncodingClass is one row of an encoding-distribution snapshot: how many
// units currently live in the named encoding and their byte footprint.
type EncodingClass struct {
	Name  string `json:"name"`
	Units int64  `json:"units"`
	Bytes int64  `json:"bytes"`
}

// Snapshot is the per-epoch state of one adaptation scope, taken at the
// end of every adaptation phase: the encoding distribution, the sampling
// parameters the next phase will run with, what the phase did, and the
// budget headroom. A sequence of snapshots is the convergence curve the
// paper's Figures 12–14 plot endpoints of.
type Snapshot struct {
	// Seq shares the process-wide sequencer with trace events.
	Seq int64 `json:"seq"`
	// Source is the emitting scope ("" for an unscoped index).
	Source string `json:"source,omitempty"`
	// Epoch is the adaptation epoch that just completed.
	Epoch uint32 `json:"epoch"`

	// Encodings is the index's unit/byte distribution per encoding.
	Encodings []EncodingClass `json:"encodings,omitempty"`

	// Sampling state entering the next phase.
	Skip       int `json:"skip"`
	SampleSize int `json:"sample_size"`

	// What the completed phase saw and did.
	SampledTotal  int64 `json:"sampled_total"`
	UniqueSamples int   `json:"unique_samples"`
	Hot           int   `json:"hot"`
	K             int   `json:"k"`
	Migrations    int   `json:"migrations"`
	Queued        int   `json:"queued"`
	// InlineFallbacks stays 0 since the backpressure rework; kept in the
	// schema so dumps can assert the fallback path stays dead.
	InlineFallbacks int `json:"inline_fallbacks"`
	// Backpressured counts queue-full triggers parked as deferred
	// intents this phase; Coalesced the subset folded into an intent
	// already parked for the same unit.
	Backpressured int `json:"backpressured"`
	Coalesced     int `json:"coalesced"`
	Deduped       int `json:"deduped"`
	Evicted       int `json:"evicted"`
	PipeDepth     int `json:"pipe_depth"`
	// Epoch-reclamation state at phase end: retired node images awaiting
	// their grace period, and how many reclamation epochs the oldest
	// in-flight reader lags behind the global epoch.
	RetireDepth int64 `json:"retire_depth,omitempty"`
	EpochLag    int64 `json:"epoch_lag,omitempty"`

	// Footprints and budget headroom. BudgetBytes is 0 when unbounded;
	// headroom is BudgetBytes − UsedBytes − ChargedBytes when bounded.
	// ChargedBytes is auxiliary read-path memory (hot-key result cache)
	// charged against the same budget as the index encodings.
	TrackedUnits   int   `json:"tracked_units"`
	FrameworkBytes int64 `json:"framework_bytes"`
	UsedBytes      int64 `json:"used_bytes"`
	ChargedBytes   int64 `json:"charged_bytes,omitempty"`
	BudgetBytes    int64 `json:"budget_bytes"`

	// AdaptNs is the duration of the adaptation phase itself.
	AdaptNs int64 `json:"adapt_ns"`
}

// Headroom returns BudgetBytes − UsedBytes − ChargedBytes, or 0 when
// unbounded.
func (s *Snapshot) Headroom() int64 {
	if s.BudgetBytes <= 0 {
		return 0
	}
	return s.BudgetBytes - s.UsedBytes - s.ChargedBytes
}

// SnapshotRing is a bounded ring of per-epoch snapshots, same contract as
// MigrationTrace.
type SnapshotRing struct {
	mu      sync.Mutex
	buf     []Snapshot
	total   int64
	dropped int64
}

// NewSnapshotRing creates a ring with the given capacity.
func NewSnapshotRing(capacity int) *SnapshotRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SnapshotRing{buf: make([]Snapshot, 0, capacity)}
}

// Record appends one snapshot, stamping its sequence number.
func (r *SnapshotRing) Record(s Snapshot) {
	s.Seq = nextSeq()
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.total%int64(cap(r.buf))] = s
		r.dropped++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshots returns the retained snapshots oldest-first (a copy).
func (r *SnapshotRing) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out := make([]Snapshot, n)
	if r.total <= int64(cap(r.buf)) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % int64(cap(r.buf)))
	copy(out, r.buf[head:])
	copy(out[n-head:], r.buf[:head])
	return out
}

// Total returns how many snapshots were ever recorded; Dropped how many
// were overwritten.
func (r *SnapshotRing) Total() int64   { r.mu.Lock(); defer r.mu.Unlock(); return r.total }
func (r *SnapshotRing) Dropped() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.dropped }
