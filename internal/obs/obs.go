// Package obs is the introspection layer of the adaptation framework:
// a lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms), a bounded ring buffer of migration trace events,
// and per-epoch encoding-distribution snapshots. Embedding indexes emit
// into an Index scope; one Observability bundle aggregates any number of
// scopes (e.g. the shards of a ShardedBTree) behind a single registry and
// a single exposition surface (Prometheus text, JSON, expvar, and an
// optional net/http debug endpoint with pprof mounted).
//
// The hot path is allocation-free: every counter and histogram an index
// touches per event is resolved once at wiring time and bumped with plain
// atomics. With no Observability attached, instrumented code degrades to
// one nil check per emit site.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Observability bundles the introspection surfaces of one process:
// shared metrics registry, migration trace, snapshot ring, and — once
// EnableTracing is called — the per-op flight recorder with its SLO
// tracker. Create one per served index (or index group) via New and
// derive per-index scopes with Index.
type Observability struct {
	Reg   *Registry
	Trace *MigrationTrace
	Snaps *SnapshotRing
	// Flight is nil until EnableTracing; wiring code derives per-source
	// scopes from it and sessions bind them at creation.
	Flight *FlightRecorder

	flightMu sync.Mutex
}

// Default ring capacities: a trace of 4096 events and 1024 snapshots keep
// the full convergence history of any bench run while bounding memory to
// a few hundred KB.
const (
	DefaultTraceCap    = 4096
	DefaultSnapshotCap = 1024
)

// New creates an Observability bundle. Non-positive capacities take the
// defaults.
func New(traceCap, snapCap int) *Observability {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	if snapCap <= 0 {
		snapCap = DefaultSnapshotCap
	}
	return &Observability{
		Reg:   NewRegistry(),
		Trace: NewMigrationTrace(traceCap),
		Snaps: NewSnapshotRing(snapCap),
	}
}

// Index is one emitting scope inside an Observability bundle — typically
// one adaptation manager. All its metrics carry a source label (empty for
// a single unscoped index), and its trace events and snapshots are stamped
// with the same source, so several scopes aggregate cleanly in one
// registry: the per-shard managers of a sharded tree each get their own
// scope while the front-end exposes the shared bundle once.
type Index struct {
	o       *Observability
	source  string
	encName func(uint8) string

	// Pre-resolved hot-path instruments. Exported so wiring code can bump
	// them directly without a registry lookup.
	Samples      *Counter   // sampled accesses handed to Track
	Adapts       *Counter   // completed adaptation phases
	Migrations   *Counter   // successful migrations (inline + async)
	Failures     *Counter   // Migrate calls that reported ok=false
	Fallbacks    *Counter   // legacy inline-fallback count (stays 0; see Backpressure)
	Backpressure *Counter   // queue-full triggers parked as deferred intents
	Coalesced    *Counter   // repeat triggers folded into a parked intent
	Deduped      *Counter   // re-enqueues dropped as duplicates
	Evictions    *Counter   // units evicted from tracking
	QueueWaitNs  *Histogram // async job wait between enqueue and execution
	BuildNs      *Histogram // Migrate callback duration
	AdaptNs      *Histogram // full adaptation-phase duration
	SkipLen      *Gauge     // current skip length
	SampleSize   *Gauge     // current target sample size
	TrackedUnits *Gauge     // units in the sample store
	FwBytes      *Gauge     // framework footprint in bytes
	IndexBytes   *Gauge     // index footprint in bytes
	RetireDepth  *Gauge     // epoch-reclamation retire-list depth at last phase
	EpochLag     *Gauge     // reclamation epochs the oldest in-flight reader lags

	migByTrigger [numTriggers]*Counter
}

// Index derives an emitting scope. source labels every metric, trace event
// and snapshot of the scope (pass "" for a single unscoped index); encName
// maps the index's encoding numbers to names for the migration trace and
// may be nil (numeric fallback).
func (o *Observability) Index(source string, encName func(uint8) string) *Index {
	x := &Index{o: o, source: source, encName: encName}
	lbl := func() []Label {
		if source == "" {
			return nil
		}
		return []Label{{"source", source}}
	}
	r := o.Reg
	x.Samples = r.Counter("ahi_samples_total", lbl()...)
	x.Adapts = r.Counter("ahi_adaptations_total", lbl()...)
	x.Migrations = r.Counter("ahi_migrations_total", lbl()...)
	x.Failures = r.Counter("ahi_migration_failures_total", lbl()...)
	x.Fallbacks = r.Counter("ahi_inline_fallbacks_total", lbl()...)
	x.Backpressure = r.Counter("ahi_backpressure_total", lbl()...)
	x.Coalesced = r.Counter("ahi_coalesced_triggers_total", lbl()...)
	x.Deduped = r.Counter("ahi_deduped_enqueues_total", lbl()...)
	x.Evictions = r.Counter("ahi_evictions_total", lbl()...)
	x.QueueWaitNs = r.Histogram("ahi_queue_wait_ns", DefaultLatencyBucketsNs, lbl()...)
	x.BuildNs = r.Histogram("ahi_migration_build_ns", DefaultLatencyBucketsNs, lbl()...)
	x.AdaptNs = r.Histogram("ahi_adapt_phase_ns", DefaultLatencyBucketsNs, lbl()...)
	x.SkipLen = r.Gauge("ahi_skip_length", lbl()...)
	x.SampleSize = r.Gauge("ahi_sample_size", lbl()...)
	x.TrackedUnits = r.Gauge("ahi_tracked_units", lbl()...)
	x.FwBytes = r.Gauge("ahi_framework_bytes", lbl()...)
	x.IndexBytes = r.Gauge("ahi_index_bytes", lbl()...)
	x.RetireDepth = r.Gauge("ahi_retire_list_depth", lbl()...)
	x.EpochLag = r.Gauge("ahi_epoch_lag", lbl()...)
	for t := Trigger(0); t < numTriggers; t++ {
		x.migByTrigger[t] = r.Counter("ahi_migrations_by_trigger_total",
			append(lbl(), Label{"trigger", t.String()})...)
	}
	return x
}

// Source returns the scope's source label.
func (x *Index) Source() string { return x.source }

// EncodingName renders an encoding number through the scope's name map.
func (x *Index) EncodingName(e uint8) string {
	if x.encName != nil {
		if n := x.encName(e); n != "" {
			return n
		}
	}
	return fmt.Sprintf("enc%d", e)
}

// RecordMigration appends one migration event to the trace and bumps the
// derived counters/histograms. from < 0 means the pre-migration encoding
// is unknown; queueWaitNs is 0 for inline migrations.
func (x *Index) RecordMigration(epoch uint32, unit uint64, from int16, to uint8,
	trig Trigger, async, ok bool, queueWaitNs, buildNs int64) {
	if ok {
		x.Migrations.Inc()
		x.migByTrigger[trig].Inc()
	} else {
		x.Failures.Inc()
	}
	x.BuildNs.Observe(buildNs)
	if async {
		x.QueueWaitNs.Observe(queueWaitNs)
	}
	fromName := "?"
	if from >= 0 {
		fromName = x.EncodingName(uint8(from))
	}
	x.o.Trace.Record(MigrationEvent{
		Epoch:       epoch,
		Source:      x.source,
		Unit:        unit,
		From:        fromName,
		To:          x.EncodingName(to),
		Trigger:     trig,
		Async:       async,
		OK:          ok,
		QueueWaitNs: queueWaitNs,
		BuildNs:     buildNs,
	})
}

// RecordSnapshot stamps the snapshot with the scope's source, pushes it
// onto the ring, and mirrors the headline figures into gauges.
func (x *Index) RecordSnapshot(s Snapshot) {
	s.Source = x.source
	x.o.Snaps.Record(s)
	x.SkipLen.Set(int64(s.Skip))
	x.SampleSize.Set(int64(s.SampleSize))
	x.TrackedUnits.Set(int64(s.TrackedUnits))
	x.FwBytes.Set(s.FrameworkBytes)
	x.IndexBytes.Set(s.UsedBytes)
}

// seq is the process-wide event sequencer shared by trace and snapshots,
// so interleavings across scopes stay reconstructible.
var seq atomic.Int64

func nextSeq() int64 { return seq.Add(1) }
