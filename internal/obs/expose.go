package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// WritePrometheus renders every instrument in Prometheus text exposition
// format (counters as *_total, histograms with _bucket/_sum/_count).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	type line struct{ name, val string }
	lines := make([]line, 0, len(r.byName))
	for _, c := range r.counters {
		lines = append(lines, line{c.name, strconv.FormatInt(c.Load(), 10)})
	}
	for _, g := range r.gauges {
		lines = append(lines, line{g.name, strconv.FormatInt(g.Load(), 10)})
	}
	for _, gf := range r.funcs {
		lines = append(lines, line{gf.name, strconv.FormatInt(gf.f(), 10)})
	}
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()

	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		fmt.Fprintf(w, "%s %s\n", l.name, l.val)
	}
	for _, h := range hists {
		// Compose the le label into any existing label set.
		bucket := func(le string) string {
			if h.labels == "" {
				return fmt.Sprintf(`%s_bucket{le=%q}`, h.name, le)
			}
			return fmt.Sprintf(`%s_bucket{%s,le=%q}`, h.name, h.labels, le)
		}
		suffix := func(s string) string {
			if h.labels == "" {
				return h.name + s
			}
			return h.name + s + "{" + h.labels + "}"
		}
		var cum int64
		counts := h.Counts()
		for i, b := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s %d\n", bucket(strconv.FormatInt(b, 10)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s %d\n", bucket("+Inf"), cum)
		fmt.Fprintf(w, "%s %d\n", suffix("_sum"), h.Sum())
		fmt.Fprintf(w, "%s %d\n", suffix("_count"), h.Count())
		fmt.Fprintf(w, "%s %d\n", suffix("_max"), h.Max())
	}
}

// Handler returns the debug endpoint mux:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    flat name → value JSON
//	/trace.json      retained migration trace (oldest first);
//	                 ?since=SEQ returns only events newer than SEQ
//	/snapshots.json  retained per-epoch snapshots (oldest first)
//	/ops.json        flight-recorder events ([] without tracing);
//	                 ?since=SEQ as above
//	/slo.json        SLO burn-rate report ({} without tracing)
//	/dump.json       full Dump (what ahimon --attach seeds from)
//	/debug/pprof/*   net/http/pprof handlers
func (o *Observability) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(v)
	}
	sinceParam := func(req *http.Request) int64 {
		n, _ := strconv.ParseInt(req.URL.Query().Get("since"), 10, 64)
		return n
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, o.Reg.metricsSnapshot())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
		if since := sinceParam(req); since > 0 {
			writeJSON(w, o.Trace.Since(since))
			return
		}
		writeJSON(w, o.Trace.Events())
	})
	mux.HandleFunc("/snapshots.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, o.Snaps.Snapshots())
	})
	mux.HandleFunc("/ops.json", func(w http.ResponseWriter, req *http.Request) {
		if o.Flight == nil {
			writeJSON(w, []OpEvent{})
			return
		}
		writeJSON(w, o.Flight.EventsSince(sinceParam(req)))
	})
	mux.HandleFunc("/slo.json", func(w http.ResponseWriter, _ *http.Request) {
		if o.Flight == nil {
			writeJSON(w, SLOReport{})
			return
		}
		writeJSON(w, o.Flight.SLOReport())
	})
	mux.HandleFunc("/dump.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, o.Dump())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug endpoint on addr (e.g. "localhost:6060"; an
// addr ending in ":0" picks a free port). It returns the server (shut it
// down with Close/Shutdown) and the bound address.
func (o *Observability) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: o.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// PublishExpvar publishes the registry under the given expvar name (a
// map of metric name → value). Publishing an already-taken name is a
// no-op: expvar panics on duplicates and tests re-create bundles.
func (o *Observability) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return o.Reg.metricsSnapshot() }))
}
