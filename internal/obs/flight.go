package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder captures sampled, cause-tagged wide events spanning
// the full lifecycle of individual index operations: cache probe (and its
// seqlock retries), negative-filter rejection, shard routing fan-out, leaf
// descent depth and right-hops, epoch-pin wait, deferred-intent
// backpressure, and overlap with in-flight migrations. Each per-source
// scope owns a lock-free ring of published *OpEvent pointers: writers
// claim a slot with one atomic add and publish a freshly allocated event,
// readers load pointers — no mutex on either side, and the only
// allocation is the committed event itself (sampled or slow ops only).
// Untraced sessions pay one nil check per op; traced sessions pay two
// clock reads plus a handful of plain stores into a stack/session-owned
// probe.

// OpKind classifies a recorded operation.
type OpKind uint8

const (
	OpLookup OpKind = iota
	OpInsert
	OpDelete
	OpScan
	OpLookupBatch
	OpInsertBatch
	OpScanBatch

	numOpKinds = 7
)

// String returns the kind's label name.
func (k OpKind) String() string {
	switch k {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpLookupBatch:
		return "lookup_batch"
	case OpInsertBatch:
		return "insert_batch"
	case OpScanBatch:
		return "scan_batch"
	default:
		return fmt.Sprintf("op%d", uint8(k))
	}
}

// MarshalJSON renders the kind as its name.
func (k OpKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts a kind name (unknown names map to OpLookup).
func (k *OpKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for v := OpKind(0); v < numOpKinds; v++ {
		if v.String() == s {
			*k = v
			return nil
		}
	}
	*k = OpLookup
	return nil
}

// Cause names the dominant stall of one traced operation. Classification
// is deterministic: the stall signals collected in the event are ranked by
// severity (migration overlap before backpressure before contention before
// plain descent shape), so every well-formed event gets a named cause and
// "unknown" only ever marks a malformed replay.
type Cause uint8

const (
	// CauseUnknown marks a malformed or hand-built event; classify never
	// returns it.
	CauseUnknown Cause = iota
	// CauseMigrationOverlap: the op ran while a leaf migration was
	// re-encoding (the event carries an exemplar trace seq).
	CauseMigrationOverlap
	// CauseBackpressure: deferred migration intents were parked, i.e. the
	// adaptation pipeline was saturated while the op ran.
	CauseBackpressure
	// CauseEpochPinWait: the reader spun for an epoch slot (all 64 taken).
	CauseEpochPinWait
	// CauseWriteRetry: an insert lost its leaf lock (or found a dead leaf)
	// and re-descended.
	CauseWriteRetry
	// CauseCacheContention: the cache probe observed torn seqlock slots
	// (concurrent writers) before resolving.
	CauseCacheContention
	// CauseNegFilter: a succinct-leaf Bloom filter rejected the key.
	CauseNegFilter
	// CauseDeepDescent: the descent chased right-links (split races) or an
	// unusually deep path.
	CauseDeepDescent
	// CauseCacheHit: served from the result cache.
	CauseCacheHit
	// CauseTreeSearch: a plain, uncontended tree descent — the default.
	CauseTreeSearch
	// CauseFsyncStall: a durable write spent the bulk of its latency
	// waiting for its commit group's fsync (appended after CauseTreeSearch
	// so previously serialized numeric values keep their meaning).
	CauseFsyncStall

	numCauses = 11
)

// String returns the cause's label name.
func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CauseMigrationOverlap:
		return "migration-overlap"
	case CauseBackpressure:
		return "backpressure"
	case CauseEpochPinWait:
		return "epoch-pin-wait"
	case CauseWriteRetry:
		return "write-retry"
	case CauseCacheContention:
		return "cache-contention"
	case CauseNegFilter:
		return "negative-filter"
	case CauseDeepDescent:
		return "deep-descent"
	case CauseCacheHit:
		return "cache-hit"
	case CauseTreeSearch:
		return "tree-search"
	case CauseFsyncStall:
		return "fsync-stall"
	default:
		return fmt.Sprintf("cause%d", uint8(c))
	}
}

// Causes lists every defined cause, unknown first then by classification
// priority (tooling iterates this for stable table ordering).
func Causes() []Cause {
	out := make([]Cause, numCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// MarshalJSON renders the cause as its name.
func (c Cause) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts a cause name (unknown names map to CauseUnknown).
func (c *Cause) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for v := Cause(0); v < numCauses; v++ {
		if v.String() == s {
			*c = v
			return nil
		}
	}
	*c = CauseUnknown
	return nil
}

// deepDescentDepth is the inner-level count past which a clean descent is
// tagged deep (root→leaf paths of healthy trees at bench scale stay ≤4).
const deepDescentDepth = 5

// classify ranks the event's stall signals and names the dominant one.
func classify(ev *OpEvent) Cause {
	switch {
	case ev.FsyncWaitNs > 0 && ev.FsyncWaitNs*2 >= ev.DurNs:
		// The commit-group fsync dominated the op (≥ half its latency) —
		// checked first because a durable write that waited out a disk
		// flush stalls for orders of magnitude longer than any in-memory
		// contention the other signals name.
		return CauseFsyncStall
	case ev.MigOverlap:
		return CauseMigrationOverlap
	case ev.Deferred > 0:
		return CauseBackpressure
	case ev.PinSpins > 0:
		return CauseEpochPinWait
	case ev.WriteRetries > 0:
		return CauseWriteRetry
	case ev.CacheTorn > 0:
		return CauseCacheContention
	case ev.NegFiltered:
		return CauseNegFilter
	case ev.RightHops > 0 || ev.Depth > deepDescentDepth:
		return CauseDeepDescent
	case ev.CacheHit:
		return CauseCacheHit
	default:
		return CauseTreeSearch
	}
}

// OpEvent is one wide event: everything the recorder learned about a
// single operation (or one batch call), cause-tagged at commit.
type OpEvent struct {
	// Seq shares the process-wide sequencer with the migration trace and
	// snapshot ring, so op↔migration interleavings are reconstructible.
	Seq    int64  `json:"seq"`
	Source string `json:"source,omitempty"`
	Kind   OpKind `json:"op"`
	// StartNs is wall-clock nanoseconds at op start; DurNs the duration.
	StartNs int64  `json:"start_ns,omitempty"`
	DurNs   int64  `json:"dur_ns"`
	Key     uint64 `json:"key"`
	// Ops is the batch size for batch kinds / entries visited for scans.
	Ops int32 `json:"ops,omitempty"`
	// Fanout is the number of shards a front-end batch touched, or the
	// request count of a fused scan batch.
	Fanout int32 `json:"fanout,omitempty"`
	// Leaves is the number of leaf images a scan walk visited; BulkDecode
	// records whether they were served by the bulk decodeRange kernels
	// (false only for the element-wise compatibility path).
	Leaves     int32 `json:"leaves,omitempty"`
	BulkDecode bool  `json:"bulk_decode,omitempty"`

	Sampled bool `json:"sampled,omitempty"`
	// Slow is set when DurNs crossed the always-record threshold (the
	// escape hatch that commits the event regardless of sampling).
	Slow  bool `json:"slow,omitempty"`
	Found bool `json:"found,omitempty"`

	// Lifecycle stage signals, filled by the instrumented path:
	CacheHit     bool  `json:"cache_hit,omitempty"`
	NegFiltered  bool  `json:"neg_filtered,omitempty"`
	Depth        int32 `json:"depth,omitempty"`      // inner levels descended
	RightHops    int32 `json:"right_hops,omitempty"` // B-link right chases
	CacheTorn    int32 `json:"cache_torn,omitempty"` // seqlock probe retries
	PinSpins     int32 `json:"pin_spins,omitempty"`  // epoch-pin full-table spins
	WriteRetries int32 `json:"write_retries,omitempty"`
	Deferred     int32 `json:"deferred,omitempty"` // parked migration intents
	MigOverlap   bool  `json:"mig_overlap,omitempty"`
	// FsyncWaitNs is the time a durable write spent waiting for its WAL
	// commit (group fsync) after the in-memory apply finished.
	FsyncWaitNs int64 `json:"fsync_wait_ns,omitempty"`
	// MigSeq is an exemplar link: the newest migration-trace seq at op end
	// when MigOverlap is set (look it up in the dump's trace).
	MigSeq int64 `json:"mig_seq,omitempty"`

	Cause Cause `json:"cause"`
}

// FlightConfig configures the recorder.
type FlightConfig struct {
	// SampleEvery records 1-in-N ops per session (rounded up to a power of
	// two; ≤0 takes DefaultSampleEvery, 1 records every op).
	SampleEvery int
	// SlowThresholdNs always commits ops at least this slow, regardless of
	// the sampling decision. ≤0 takes DefaultSlowThresholdNs; use a huge
	// value to effectively disable the escape hatch.
	SlowThresholdNs int64
	// RingCap is the per-scope event ring capacity (≤0: DefaultOpRingCap).
	RingCap int
	// SLO configures latency objectives; zero value takes the defaults
	// (lookup p99 ≤ 10µs, lookup p999 ≤ 100µs over 1m/10m windows).
	SLO SLOConfig
}

// Flight recorder defaults.
const (
	DefaultSampleEvery     = 64
	DefaultSlowThresholdNs = 100_000 // 100µs
	DefaultOpRingCap       = 4096
)

// FlightRecorder owns the per-source op rings, the sampling/slow-op
// policy, and the SLO tracker. Derive per-source scopes with Scope.
type FlightRecorder struct {
	o       *Observability
	mask    uint32
	slowNs  int64
	ringCap int
	slo     *SLOTracker

	mu     sync.Mutex
	scopes map[string]*OpRecorder
	order  []string
}

// EnableTracing attaches a flight recorder (and SLO tracker) to the
// bundle. Idempotent: a second call returns the existing recorder
// unchanged. Call it before wiring indexes — scopes are derived at wiring
// time and sessions bind them at creation.
func (o *Observability) EnableTracing(cfg FlightConfig) *FlightRecorder {
	o.flightMu.Lock()
	defer o.flightMu.Unlock()
	if o.Flight != nil {
		return o.Flight
	}
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	mask := uint32(1)
	for int(mask) < every {
		mask <<= 1
	}
	slowNs := cfg.SlowThresholdNs
	if slowNs <= 0 {
		slowNs = DefaultSlowThresholdNs
	}
	ringCap := cfg.RingCap
	if ringCap <= 0 {
		ringCap = DefaultOpRingCap
	}
	f := &FlightRecorder{
		o:       o,
		mask:    mask - 1,
		slowNs:  slowNs,
		ringCap: ringCap,
		scopes:  map[string]*OpRecorder{},
	}
	f.slo = newSLOTracker(cfg.SLO)
	f.slo.register(o.Reg)
	o.Flight = f
	return f
}

// SampleMask returns the sampling mask: record when tick&mask == 0.
func (f *FlightRecorder) SampleMask() uint32 { return f.mask }

// SlowThresholdNs returns the always-record threshold.
func (f *FlightRecorder) SlowThresholdNs() int64 { return f.slowNs }

// Scope returns (creating on first use) the recorder scope for source.
func (f *FlightRecorder) Scope(source string) *OpRecorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r, ok := f.scopes[source]; ok {
		return r
	}
	r := &OpRecorder{
		f:      f,
		source: source,
		ring:   make([]atomic.Pointer[OpEvent], f.ringCap),
	}
	var lbl []Label
	if source != "" {
		lbl = []Label{{"source", source}}
	}
	reg := f.o.Reg
	r.recorded = reg.Counter("ahi_ops_recorded_total", lbl...)
	r.slowOps = reg.Counter("ahi_ops_slow_total", lbl...)
	for c := Cause(0); c < numCauses; c++ {
		r.byCause[c] = reg.Counter("ahi_op_cause_total",
			append(append([]Label(nil), lbl...), Label{"cause", c.String()})...)
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		r.latNs[k] = reg.Histogram("ahi_op_ns", DefaultLatencyBucketsNs,
			append(append([]Label(nil), lbl...), Label{"op", k.String()})...)
	}
	f.scopes[source] = r
	f.order = append(f.order, source)
	return r
}

// Events returns every scope's retained events merged, seq-ordered.
func (f *FlightRecorder) Events() []OpEvent { return f.EventsSince(0) }

// EventsSince returns retained events with Seq > seq across all scopes,
// seq-ordered.
func (f *FlightRecorder) EventsSince(seq int64) []OpEvent {
	f.mu.Lock()
	scopes := make([]*OpRecorder, 0, len(f.order))
	for _, s := range f.order {
		scopes = append(scopes, f.scopes[s])
	}
	f.mu.Unlock()
	var out []OpEvent
	for _, r := range scopes {
		out = append(out, r.EventsSince(seq)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Total returns committed events across scopes; Dropped how many were
// overwritten by ring wrap-around.
func (f *FlightRecorder) Total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, r := range f.scopes {
		n += r.Total()
	}
	return n
}

// Dropped returns events lost to ring wrap-around across scopes.
func (f *FlightRecorder) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, r := range f.scopes {
		n += r.Dropped()
	}
	return n
}

// SLOReport evaluates the tracker's objectives as of now.
func (f *FlightRecorder) SLOReport() SLOReport {
	return f.slo.Report(time.Now().UnixNano())
}

// OpRecorder is one per-source flight-recorder scope: a lock-free ring of
// published events plus the scope's pre-resolved instruments. Latency
// histograms and SLO accounting see every traced op; the ring only holds
// committed (sampled or slow) ones.
type OpRecorder struct {
	f      *FlightRecorder
	source string
	ring   []atomic.Pointer[OpEvent]
	cursor atomic.Uint64 // slots ever claimed

	recorded *Counter
	slowOps  *Counter
	byCause  [numCauses]*Counter
	latNs    [numOpKinds]*Histogram
}

// SampleMask returns the sampling mask: trace when tick&mask == 0.
func (r *OpRecorder) SampleMask() uint32 { return r.f.mask }

// MigrationSeqHint returns the newest migration-trace seq, the exemplar
// link stamped into events that overlapped a migration.
func (r *OpRecorder) MigrationSeqHint() int64 { return r.f.o.Trace.LastSeq() }

// OpProbe is the per-session scratch a traced operation fills in. Begin
// resets it, End stamps the duration and hands it to Finish. It lives on
// the session (not the stack) so tracing a sampled-out op allocates
// nothing.
type OpProbe struct {
	Ev    OpEvent
	rec   *OpRecorder
	start time.Time
}

// Begin arms the probe for one op.
func (r *OpRecorder) Begin(p *OpProbe, kind OpKind, key uint64, sampled bool) {
	p.rec = r
	p.Ev = OpEvent{Kind: kind, Key: key, Sampled: sampled}
	p.start = time.Now()
}

// End finalizes the probe: observes latency/SLO and commits the event if
// it was sampled or crossed the slow threshold.
func (p *OpProbe) End() {
	r := p.rec
	if r == nil {
		return
	}
	d := time.Since(p.start).Nanoseconds()
	r.Finish(&p.Ev, d, p.start.UnixNano()+d)
}

// Finish records a completed op: durNs into the per-kind histogram and
// SLO tracker (every traced op), then — when sampled or slow — classifies
// the cause and publishes the event into the ring. nowNs is wall-clock
// nanoseconds at op end.
func (r *OpRecorder) Finish(ev *OpEvent, durNs, nowNs int64) {
	ev.DurNs = durNs
	ev.StartNs = nowNs - durNs
	if h := r.latNs[ev.Kind]; h != nil {
		h.Observe(durNs)
	}
	if r.f.slo != nil {
		r.f.slo.Observe(ev.Kind, durNs, nowNs)
	}
	if durNs >= r.f.slowNs {
		ev.Slow = true
	}
	if !ev.Sampled && !ev.Slow {
		return
	}
	ev.Source = r.source
	ev.Cause = classify(ev)
	ev.Seq = nextSeq()
	cp := new(OpEvent)
	*cp = *ev
	i := r.cursor.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(cp)
	r.recorded.Inc()
	if ev.Slow {
		r.slowOps.Inc()
	}
	r.byCause[ev.Cause].Inc()
}

// Events returns the scope's retained events, seq-ordered.
func (r *OpRecorder) Events() []OpEvent { return r.EventsSince(0) }

// EventsSince returns retained events with Seq > seq, seq-ordered. Reads
// race benignly with writers: each slot is a published pointer, so every
// returned event is complete (it may just not be the very newest).
func (r *OpRecorder) EventsSince(seq int64) []OpEvent {
	out := make([]OpEvent, 0, len(r.ring))
	for i := range r.ring {
		if p := r.ring[i].Load(); p != nil && p.Seq > seq {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Total returns events ever committed to this scope.
func (r *OpRecorder) Total() int64 { return int64(r.cursor.Load()) }

// Dropped returns events overwritten by ring wrap-around.
func (r *OpRecorder) Dropped() int64 {
	n := int64(r.cursor.Load()) - int64(len(r.ring))
	if n < 0 {
		return 0
	}
	return n
}
