package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SLO burn-rate accounting: each objective ("lookup p999 ≤ 100µs")
// classifies every traced op as good or bad and accumulates both into a
// ring of coarse time buckets. Exposition sums the buckets inside each
// configured window and reports the burn rate — the fraction of bad ops
// divided by the objective's error budget (1−quantile) — so burn 1.0
// means "exactly spending the budget", 10 means "ten times too fast".
// Multi-window reporting (fast 1m window for paging, slow 10m window for
// trend) follows the usual multiwindow/multi-burn-rate alerting shape.

// Objective is one latency target.
type Objective struct {
	// Name labels the objective's series ("lookup-p999").
	Name string `json:"name"`
	// Op is the operation kind the objective watches.
	Op OpKind `json:"op"`
	// Quantile sets the error budget: 1−Quantile of ops may exceed the
	// target (0.999 → 0.1% budget).
	Quantile float64 `json:"quantile"`
	// TargetNs is the latency bound.
	TargetNs int64 `json:"target_ns"`
}

// SLOConfig configures the tracker. Zero value takes DefaultObjectives
// over 1m and 10m windows.
type SLOConfig struct {
	Objectives []Objective
	Windows    []time.Duration
}

// DefaultObjectives guard the point-lookup tail: p99 ≤ 10µs and
// p999 ≤ 100µs, generous bounds for an in-memory tree that still trip on
// real interference (migration storms, pipeline saturation).
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "lookup-p99", Op: OpLookup, Quantile: 0.99, TargetNs: 10_000},
		{Name: "lookup-p999", Op: OpLookup, Quantile: 0.999, TargetNs: 100_000},
	}
}

// sloBucketNs is the accounting granularity: 1s buckets bound the ring to
// maxWindow/1s entries while keeping window sums sharp enough for a 1m
// fast window.
const sloBucketNs = int64(time.Second)

// SLOTracker accumulates good/bad counts per objective into a time-bucket
// ring. Observe is lock-free: one epoch check (CAS-reset on bucket reuse)
// plus one atomic add per matching objective.
type SLOTracker struct {
	objectives []Objective
	windows    []time.Duration
	nbuckets   int
	epochs     []atomic.Int64 // bucket index currently stored in the slot
	good       []atomic.Int64 // [slot*len(objectives)+obj]
	bad        []atomic.Int64
	totalOps   []atomic.Int64 // lifetime, per objective
	totalBad   []atomic.Int64
}

func newSLOTracker(cfg SLOConfig) *SLOTracker {
	objs := cfg.Objectives
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	wins := cfg.Windows
	if len(wins) == 0 {
		wins = []time.Duration{time.Minute, 10 * time.Minute}
	}
	maxWin := wins[0]
	for _, w := range wins {
		if w > maxWin {
			maxWin = w
		}
	}
	n := int(maxWin.Nanoseconds()/sloBucketNs) + 2
	return &SLOTracker{
		objectives: objs,
		windows:    wins,
		nbuckets:   n,
		epochs:     make([]atomic.Int64, n),
		good:       make([]atomic.Int64, n*len(objs)),
		bad:        make([]atomic.Int64, n*len(objs)),
		totalOps:   make([]atomic.Int64, len(objs)),
		totalBad:   make([]atomic.Int64, len(objs)),
	}
}

// Observe classifies one op against every matching objective. nowNs is
// wall-clock nanoseconds at op end.
func (s *SLOTracker) Observe(op OpKind, durNs, nowNs int64) {
	bi := nowNs / sloBucketNs
	slot := int(bi % int64(s.nbuckets))
	if old := s.epochs[slot].Load(); old != bi {
		// The slot holds a stale bucket: the first arrival CASes the epoch
		// forward and zeroes the counters. A racer that increments between
		// the CAS and the zeroing loses its count — bounded, harmless skew
		// in a reporting path.
		if s.epochs[slot].CompareAndSwap(old, bi) {
			base := slot * len(s.objectives)
			for i := range s.objectives {
				s.good[base+i].Store(0)
				s.bad[base+i].Store(0)
			}
		}
	}
	base := slot * len(s.objectives)
	for i := range s.objectives {
		o := &s.objectives[i]
		if o.Op != op {
			continue
		}
		s.totalOps[i].Add(1)
		if durNs > o.TargetNs {
			s.bad[base+i].Add(1)
			s.totalBad[i].Add(1)
		} else {
			s.good[base+i].Add(1)
		}
	}
}

// WindowBurn is one objective×window evaluation.
type WindowBurn struct {
	Window      string  `json:"window"`
	Ops         int64   `json:"ops"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction / (1−Quantile): 1.0 spends the error budget
	// exactly, >1 burns it faster.
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveReport is one objective's multi-window evaluation.
type ObjectiveReport struct {
	Name     string       `json:"name"`
	Op       OpKind       `json:"op"`
	Quantile float64      `json:"quantile"`
	TargetNs int64        `json:"target_ns"`
	TotalOps int64        `json:"total_ops"`
	TotalBad int64        `json:"total_bad"`
	Windows  []WindowBurn `json:"windows"`
}

// SLOReport is the full tracker evaluation, embedded in dumps and served
// at /slo.json.
type SLOReport struct {
	Objectives []ObjectiveReport `json:"objectives"`
}

// windowSums adds up good/bad for objective obj over buckets inside
// [nowNs−win, nowNs].
func (s *SLOTracker) windowSums(obj int, win time.Duration, nowNs int64) (good, bad int64) {
	lo := (nowNs - win.Nanoseconds()) / sloBucketNs
	hi := nowNs / sloBucketNs
	for slot := 0; slot < s.nbuckets; slot++ {
		bi := s.epochs[slot].Load()
		if bi < lo || bi > hi || bi == 0 {
			continue
		}
		good += s.good[slot*len(s.objectives)+obj].Load()
		bad += s.bad[slot*len(s.objectives)+obj].Load()
	}
	return good, bad
}

// Report evaluates every objective over every window as of nowNs.
func (s *SLOTracker) Report(nowNs int64) SLOReport {
	rep := SLOReport{Objectives: make([]ObjectiveReport, len(s.objectives))}
	for i, o := range s.objectives {
		or := ObjectiveReport{
			Name:     o.Name,
			Op:       o.Op,
			Quantile: o.Quantile,
			TargetNs: o.TargetNs,
			TotalOps: s.totalOps[i].Load(),
			TotalBad: s.totalBad[i].Load(),
		}
		budget := 1 - o.Quantile
		for _, w := range s.windows {
			good, bad := s.windowSums(i, w, nowNs)
			wb := WindowBurn{Window: w.String(), Ops: good + bad, Bad: bad}
			if wb.Ops > 0 {
				wb.BadFraction = float64(bad) / float64(wb.Ops)
				if budget > 0 {
					wb.BurnRate = wb.BadFraction / budget
				}
			}
			or.Windows = append(or.Windows, wb)
		}
		rep.Objectives[i] = or
	}
	return rep
}

// register exposes the tracker through the registry: lifetime op/breach
// counters and a per-window burn-rate gauge (milli-units, so Prometheus
// integer series carry three decimals) per objective.
func (s *SLOTracker) register(reg *Registry) {
	for i := range s.objectives {
		o := s.objectives[i]
		lbl := []Label{{"objective", o.Name}}
		idx := i
		reg.GaugeFunc("ahi_slo_ops_total", lbl, func() int64 { return s.totalOps[idx].Load() })
		reg.GaugeFunc("ahi_slo_breaches_total", lbl, func() int64 { return s.totalBad[idx].Load() })
		budget := 1 - o.Quantile
		for _, w := range s.windows {
			win := w
			wl := append(append([]Label(nil), lbl...), Label{"window", win.String()})
			reg.GaugeFunc("ahi_slo_burn_milli", wl, func() int64 {
				good, bad := s.windowSums(idx, win, time.Now().UnixNano())
				if good+bad == 0 || budget <= 0 {
					return 0
				}
				frac := float64(bad) / float64(good+bad)
				return int64(frac / budget * 1000)
			})
		}
	}
}

// String renders an objective for logs/tables.
func (o Objective) String() string {
	return fmt.Sprintf("%s: %s p%g ≤ %s", o.Name, o.Op, o.Quantile*100,
		time.Duration(o.TargetNs))
}
