package obs

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	// A value exactly on a bound lands in that bound's bucket (le
	// semantics); one past it spills into the next.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 0}, {10, 0}, {11, 1}, {100, 1}, {101, 2}, {1000, 2}, {1001, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := h.Counts()
	want := []int64{3, 2, 2, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d: got %d want %d (counts=%v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count=%d want 8", h.Count())
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Fatalf("sum=%d want %d", h.Sum(), sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 20, 40})
	for i := int64(1); i <= 40; i++ {
		h.Observe(i)
	}
	if q := h.Quantile(0.5); q < 10 || q > 21 {
		t.Fatalf("p50=%d, want ~20", q)
	}
	if q := h.Quantile(1.0); q != 40 {
		t.Fatalf("p100=%d want 40", q)
	}
	empty := r.Histogram("e", []int64{1})
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// +Inf bucket quantiles report the observed max instead of clamping
	// to the top finite bound (which silently under-reported the tail).
	h.Observe(10_000)
	if q := h.Quantile(1.0); q != 10_000 {
		t.Fatalf("quantile into +Inf bucket must report observed max, got %d", q)
	}
	if m := h.Max(); m != 10_000 {
		t.Fatalf("max=%d want 10000", m)
	}
}

func TestTraceRingWrap(t *testing.T) {
	tr := NewMigrationTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(MigrationEvent{Unit: uint64(i), To: "x"})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len=%d want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Unit != uint64(6+i) {
			t.Fatalf("event %d: unit=%d want %d (oldest-first order broken)", i, ev.Unit, 6+i)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d want 10/6", tr.Total(), tr.Dropped())
	}
	// Seq strictly increases across the retained window.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("seq not monotone")
		}
	}
}

func TestSnapshotRingWrap(t *testing.T) {
	r := NewSnapshotRing(3)
	for e := uint32(0); e < 7; e++ {
		r.Record(Snapshot{Epoch: e})
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("len=%d want 3", len(snaps))
	}
	for i, s := range snaps {
		if s.Epoch != uint32(4+i) {
			t.Fatalf("snap %d: epoch=%d want %d", i, s.Epoch, 4+i)
		}
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c", Label{"k", "v"}).Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", DefaultLatencyBucketsNs).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", Label{"k", "v"}).Load(); got != 8000 {
		t.Fatalf("counter=%d want 8000 (get-or-create not idempotent)", got)
	}
	if got := r.Histogram("h", DefaultLatencyBucketsNs).Count(); got != 8000 {
		t.Fatalf("histogram count=%d want 8000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	o := New(16, 16)
	x := o.Index("shard0", func(e uint8) string { return fmt.Sprintf("e%d", e) })
	x.Migrations.Add(3)
	x.BuildNs.Observe(400)
	x.BuildNs.Observe(90_000)
	var sb strings.Builder
	o.Reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`ahi_migrations_total{source="shard0"} 3`,
		`ahi_migration_build_ns_bucket{source="shard0",le="500"} 1`,
		`ahi_migration_build_ns_bucket{source="shard0",le="+Inf"} 2`,
		`ahi_migration_build_ns_sum{source="shard0"} 90400`,
		`ahi_migration_build_ns_count{source="shard0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestIndexRecordMigrationAndSnapshot(t *testing.T) {
	o := New(16, 16)
	x := o.Index("", func(e uint8) string { return []string{"succinct", "packed", "gapped"}[e] })
	x.RecordMigration(1, 42, 0, 2, TriggerTopK, true, true, 1500, 9000)
	x.RecordMigration(1, 43, -1, 0, TriggerBudget, false, false, 0, 500)
	evs := o.Trace.Events()
	if len(evs) != 2 {
		t.Fatalf("trace len=%d want 2", len(evs))
	}
	if evs[0].From != "succinct" || evs[0].To != "gapped" || !evs[0].Async || !evs[0].OK {
		t.Fatalf("bad event: %+v", evs[0])
	}
	if evs[1].From != "?" || evs[1].OK {
		t.Fatalf("unknown-origin failure event mis-rendered: %+v", evs[1])
	}
	if x.Migrations.Load() != 1 || x.Failures.Load() != 1 {
		t.Fatalf("migrations=%d failures=%d want 1/1", x.Migrations.Load(), x.Failures.Load())
	}
	x.RecordSnapshot(Snapshot{Epoch: 3, Skip: 8, SampleSize: 256, TrackedUnits: 17,
		UsedBytes: 1000, BudgetBytes: 4000})
	snaps := o.Snaps.Snapshots()
	if len(snaps) != 1 || snaps[0].Epoch != 3 {
		t.Fatalf("snapshot not recorded: %+v", snaps)
	}
	if h := snaps[0].Headroom(); h != 3000 {
		t.Fatalf("headroom=%d want 3000", h)
	}
	if x.SkipLen.Load() != 8 || x.TrackedUnits.Load() != 17 {
		t.Fatal("snapshot gauges not mirrored")
	}
}

func TestDumpRoundTripAndValidate(t *testing.T) {
	o := New(16, 16)
	x := o.Index("s1", nil)
	x.RecordMigration(0, 1, -1, 1, TriggerCSHF, false, true, 0, 100)
	x.RecordSnapshot(Snapshot{Epoch: 0, Migrations: 1})
	x.RecordSnapshot(Snapshot{Epoch: 1})
	d := o.Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("fresh dump invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := WriteDump(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped dump invalid: %v", err)
	}
	if len(back.Trace) != 1 || back.Trace[0].Trigger != TriggerCSHF {
		t.Fatalf("trace round-trip broken: %+v", back.Trace)
	}
	if len(back.Snapshots) != 2 || back.Snapshots[1].Epoch != 1 {
		t.Fatalf("snapshots round-trip broken: %+v", back.Snapshots)
	}
	// Validation catches out-of-order epochs.
	bad := d
	bad.Snapshots = []Snapshot{{Epoch: 2}, {Epoch: 2}}
	if bad.Validate() == nil {
		t.Fatal("non-increasing epochs must fail validation")
	}
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	o := New(16, 16)
	x := o.Index("", nil)
	x.Migrations.Inc()
	x.RecordSnapshot(Snapshot{Epoch: 0})
	srv, addr, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "ahi_migrations_total 1") {
		t.Fatal("/metrics missing counter")
	}
	if !strings.Contains(get("/snapshots.json"), `"epoch"`) {
		t.Fatal("/snapshots.json missing snapshot")
	}
	if !strings.Contains(get("/dump.json"), DumpSchema) {
		t.Fatal("/dump.json missing schema tag")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "obs") {
		t.Log("pprof cmdline content not asserted strictly") // presence is the check
	}
}
