package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightEnableTracingIdempotent(t *testing.T) {
	o := New(16, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 3})
	if f2 := o.EnableTracing(FlightConfig{SampleEvery: 1024}); f2 != f {
		t.Fatal("EnableTracing must be idempotent")
	}
	// SampleEvery rounds up to a power of two; 3 → 4 → mask 3.
	if f.SampleMask() != 3 {
		t.Fatalf("mask=%d want 3", f.SampleMask())
	}
	if s := o.Flight.Scope("x"); s != o.Flight.Scope("x") {
		t.Fatal("Scope must return the same recorder per source")
	}
}

func TestFlightCommitAndOrder(t *testing.T) {
	o := New(16, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 1, SlowThresholdNs: 1 << 62})
	a, b := f.Scope("a"), f.Scope("b")
	var p OpProbe
	for i := 0; i < 3; i++ {
		a.Begin(&p, OpLookup, uint64(i), true)
		p.Ev.Found = true
		p.End()
		b.Begin(&p, OpInsert, uint64(100+i), true)
		p.End()
	}
	evs := f.Events()
	if len(evs) != 6 {
		t.Fatalf("events=%d want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not seq-ordered: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if f.Total() != 6 || f.Dropped() != 0 {
		t.Fatalf("total=%d dropped=%d want 6/0", f.Total(), f.Dropped())
	}
	// Incremental read: everything after the 4th seq.
	since := f.Events()[3].Seq
	if rest := f.EventsSince(since); len(rest) != 2 {
		t.Fatalf("EventsSince=%d want 2", len(rest))
	}
	// Cause counters reached the registry, labelled per source.
	var sb strings.Builder
	o.Reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `ahi_ops_recorded_total{source="a"} 3`) {
		t.Fatalf("missing per-scope recorded counter:\n%s", sb.String())
	}
}

func TestFlightSamplingAndSlowEscape(t *testing.T) {
	o := New(16, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 64, SlowThresholdNs: 1 << 62})
	r := f.Scope("")
	var p OpProbe
	// Not sampled, not slow: latency observed, nothing committed.
	r.Begin(&p, OpLookup, 1, false)
	p.End()
	if got := len(r.Events()); got != 0 {
		t.Fatalf("unsampled fast op committed: %d events", got)
	}
	if r.latNs[OpLookup].Count() != 1 {
		t.Fatal("unsampled op must still feed the latency histogram")
	}
	// Not sampled but slow: the escape hatch commits it.
	ev := OpEvent{Kind: OpLookup, Key: 2}
	r.Finish(&ev, 1<<62, time.Now().UnixNano())
	evs := r.Events()
	if len(evs) != 1 || !evs[0].Slow {
		t.Fatalf("slow op not committed via escape hatch: %+v", evs)
	}
}

func TestFlightRingWrap(t *testing.T) {
	o := New(16, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 1, RingCap: 4, SlowThresholdNs: 1 << 62})
	r := f.Scope("")
	var p OpProbe
	for i := 0; i < 10; i++ {
		r.Begin(&p, OpLookup, uint64(i), true)
		p.End()
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained=%d want 4", len(evs))
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d want 10/6", r.Total(), r.Dropped())
	}
	// The retained window is the newest 4 (keys 6..9).
	for i, ev := range evs {
		if ev.Key != uint64(6+i) {
			t.Fatalf("event %d: key=%d want %d", i, ev.Key, 6+i)
		}
	}
}

func TestFlightClassifyPriority(t *testing.T) {
	cases := []struct {
		name string
		ev   OpEvent
		want Cause
	}{
		{"fsync stall wins over everything", OpEvent{FsyncWaitNs: 900, DurNs: 1000, MigOverlap: true, Deferred: 3}, CauseFsyncStall},
		{"sub-dominant fsync wait defers", OpEvent{FsyncWaitNs: 100, DurNs: 1000, MigOverlap: true}, CauseMigrationOverlap},
		{"overlap wins over everything", OpEvent{MigOverlap: true, Deferred: 3, PinSpins: 1, CacheHit: true}, CauseMigrationOverlap},
		{"backpressure before pin", OpEvent{Deferred: 2, PinSpins: 5}, CauseBackpressure},
		{"pin before write-retry", OpEvent{PinSpins: 1, WriteRetries: 4}, CauseEpochPinWait},
		{"write-retry before torn", OpEvent{WriteRetries: 1, CacheTorn: 7}, CauseWriteRetry},
		{"torn before negfilter", OpEvent{CacheTorn: 1, NegFiltered: true}, CauseCacheContention},
		{"negfilter before deep", OpEvent{NegFiltered: true, RightHops: 2}, CauseNegFilter},
		{"right hops are deep", OpEvent{RightHops: 1}, CauseDeepDescent},
		{"depth over threshold is deep", OpEvent{Depth: deepDescentDepth + 1}, CauseDeepDescent},
		{"cache hit", OpEvent{CacheHit: true, Depth: 2}, CauseCacheHit},
		{"plain descent", OpEvent{Depth: 3, Found: true}, CauseTreeSearch},
	}
	for _, c := range cases {
		if got := classify(&c.ev); got != c.want {
			t.Errorf("%s: classify=%v want %v", c.name, got, c.want)
		}
	}
}

func TestFlightSLOTracker(t *testing.T) {
	s := newSLOTracker(SLOConfig{
		Objectives: []Objective{{Name: "lookup-p99", Op: OpLookup, Quantile: 0.99, TargetNs: 1000}},
		Windows:    []time.Duration{time.Minute},
	})
	now := int64(1_000_000 * sloBucketNs) // well past bucket 0
	for i := 0; i < 99; i++ {
		s.Observe(OpLookup, 500, now)
	}
	s.Observe(OpLookup, 5000, now) // 1 breach in 100 → bad fraction 1%
	s.Observe(OpInsert, 1<<40, now)
	rep := s.Report(now)
	if len(rep.Objectives) != 1 {
		t.Fatalf("objectives=%d want 1", len(rep.Objectives))
	}
	o := rep.Objectives[0]
	if o.TotalOps != 100 || o.TotalBad != 1 {
		t.Fatalf("ops=%d bad=%d want 100/1 (insert must not count)", o.TotalOps, o.TotalBad)
	}
	w := o.Windows[0]
	if w.Ops != 100 || w.Bad != 1 {
		t.Fatalf("window ops=%d bad=%d want 100/1", w.Ops, w.Bad)
	}
	// Bad fraction 0.01 over budget 0.01 → burn 1.0.
	if w.BurnRate < 0.99 || w.BurnRate > 1.01 {
		t.Fatalf("burn=%f want ~1.0", w.BurnRate)
	}
	// Outside the window the counts age out (bucket epoch reuse).
	later := now + (2 * time.Minute).Nanoseconds()
	if w := s.Report(later).Objectives[0].Windows[0]; w.Ops != 0 {
		t.Fatalf("aged window ops=%d want 0", w.Ops)
	}
}

func TestFlightExplainTail(t *testing.T) {
	var ops []OpEvent
	// 990 fast unremarkable lookups, 10 slow ones: 7 migration overlaps
	// (from shard5), 3 unknown.
	for i := 0; i < 990; i++ {
		ops = append(ops, OpEvent{Seq: int64(i), Kind: OpLookup, DurNs: 100, Cause: CauseTreeSearch})
	}
	for i := 0; i < 7; i++ {
		ops = append(ops, OpEvent{Seq: int64(1000 + i), Kind: OpLookup, DurNs: 90_000 + int64(i),
			Source: "shard5", Cause: CauseMigrationOverlap, MigSeq: 42})
	}
	for i := 0; i < 3; i++ {
		ops = append(ops, OpEvent{Seq: int64(2000 + i), Kind: OpLookup, DurNs: 80_000, Cause: CauseUnknown})
	}
	reps := ExplainTail(ops, 0.99)
	if len(reps) != 1 {
		t.Fatalf("reports=%d want 1", len(reps))
	}
	rep := reps[0]
	if rep.Kind != OpLookup || rep.TailOps != 10 {
		t.Fatalf("kind=%v tail=%d want lookup/10", rep.Kind, rep.TailOps)
	}
	if got := rep.NamedFraction(); got != 0.7 {
		t.Fatalf("named fraction=%f want 0.7", got)
	}
	top := rep.Causes[0]
	if top.Cause != CauseMigrationOverlap || top.Count != 7 || top.Source != "shard5" {
		t.Fatalf("top cause wrong: %+v", top)
	}
	if top.ExemplarMigSeq != 42 {
		t.Fatalf("exemplar mig seq=%d want 42", top.ExemplarMigSeq)
	}
	// Degenerate inputs fall back to the default quantile.
	if r := ExplainTail(ops, 42); len(r) != 1 || r[0].Quantile != 0.999 {
		t.Fatal("out-of-range quantile must default to 0.999")
	}
}

func TestFlightTraceSince(t *testing.T) {
	tr := NewMigrationTrace(8)
	for i := 0; i < 5; i++ {
		tr.Record(MigrationEvent{Unit: uint64(i), To: "x"})
	}
	evs := tr.Events()
	mid := evs[2].Seq
	inc := tr.Since(mid)
	if len(inc) != 2 || inc[0].Unit != 3 || inc[1].Unit != 4 {
		t.Fatalf("Since(mid) wrong: %+v", inc)
	}
	if got := tr.LastSeq(); got != evs[4].Seq {
		t.Fatalf("LastSeq=%d want %d", got, evs[4].Seq)
	}
	if got := tr.Since(tr.LastSeq()); len(got) != 0 {
		t.Fatalf("Since(last) must be empty, got %d", len(got))
	}
	// Wrapped ring: only the retained window is searchable, still ordered.
	for i := 5; i < 20; i++ {
		tr.Record(MigrationEvent{Unit: uint64(i), To: "x"})
	}
	evs = tr.Events()
	if len(evs) != 8 || evs[0].Unit != 12 {
		t.Fatalf("wrap window wrong: %+v", evs)
	}
	inc = tr.Since(evs[5].Seq)
	if len(inc) != 2 || inc[0].Unit != 18 || inc[1].Unit != 19 {
		t.Fatalf("Since after wrap wrong: %+v", inc)
	}
	if got := tr.Since(0); len(got) != 8 {
		t.Fatalf("Since(0)=%d events want 8", len(got))
	}
}

func TestFlightDumpCarriesOpsAndSLO(t *testing.T) {
	o := New(16, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 1, SlowThresholdNs: 1 << 62})
	r := f.Scope("s0")
	var p OpProbe
	r.Begin(&p, OpLookup, 7, true)
	p.Ev.Found = true
	p.End()
	d := o.Dump()
	if len(d.Ops) != 1 || d.OpsTotal != 1 {
		t.Fatalf("dump ops=%d total=%d want 1/1", len(d.Ops), d.OpsTotal)
	}
	if d.SLO == nil || len(d.SLO.Objectives) == 0 {
		t.Fatal("dump missing SLO report")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("dump with ops invalid: %v", err)
	}
	bad := d
	bad.Ops = []OpEvent{{Kind: OpKind(99)}}
	if bad.Validate() == nil {
		t.Fatal("unknown op kind must fail validation")
	}
	bad.Ops = []OpEvent{{Kind: OpLookup, Cause: Cause(99)}}
	if bad.Validate() == nil {
		t.Fatal("unknown cause must fail validation")
	}
	bad.Ops = []OpEvent{{Kind: OpLookup, DurNs: -1}}
	if bad.Validate() == nil {
		t.Fatal("negative duration must fail validation")
	}
}

// TestFlightConcurrentCommitAndRead drives concurrent committers on two
// scopes against concurrent EventsSince readers and migration-trace
// writers (the CI race leg runs this under -race).
func TestFlightConcurrentCommitAndRead(t *testing.T) {
	o := New(64, 16)
	f := o.EnableTracing(FlightConfig{SampleEvery: 1, RingCap: 64, SlowThresholdNs: 1 << 62})
	x := o.Index("mig", nil)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := f.Scope([]string{"a", "b"}[w%2])
			var p OpProbe
			for i := 0; i < 2000; i++ {
				r.Begin(&p, OpKind(i%int(numOpKinds)), uint64(i), true)
				p.Ev.Depth = int32(i % 7)
				p.End()
			}
		}(w)
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 500; i++ {
			x.RecordMigration(uint32(i), uint64(i), 0, 2, TriggerTopK, true, true, 10, 10)
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		var since int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := f.EventsSince(since)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("concurrent read returned unordered events")
					return
				}
			}
			if len(evs) > 0 {
				since = evs[len(evs)-1].Seq
			}
			_ = o.Trace.Since(o.Trace.LastSeq() - 100)
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if f.Total() != 8000 {
		t.Fatalf("total=%d want 8000", f.Total())
	}
}
