package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Trigger classifies what caused a migration (the trace's "why").
type Trigger uint8

const (
	// TriggerCSHF: the index's heuristic decided on a cold/history path
	// (e.g. compact after two cold classifications).
	TriggerCSHF Trigger = iota
	// TriggerTopK: the unit was classified hot by the top-k pass and the
	// heuristic expanded it.
	TriggerTopK
	// TriggerBudget: the index exceeded its memory budget and the
	// heuristic compacted under pressure.
	TriggerBudget
	// TriggerMerge: a dual-stage wholesale merge (dynamic → static).
	TriggerMerge
	// TriggerOffline: offline training (TrainOffline) drove the migration.
	TriggerOffline

	numTriggers = 5
)

// String returns the trigger's trace/label name.
func (t Trigger) String() string {
	switch t {
	case TriggerCSHF:
		return "cshf"
	case TriggerTopK:
		return "topk"
	case TriggerBudget:
		return "budget"
	case TriggerMerge:
		return "merge"
	case TriggerOffline:
		return "offline"
	default:
		return fmt.Sprintf("trigger%d", uint8(t))
	}
}

// MarshalJSON renders the trigger as its name.
func (t Trigger) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts a trigger name (unknown names map to TriggerCSHF).
func (t *Trigger) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for v := Trigger(0); v < numTriggers; v++ {
		if v.String() == s {
			*t = v
			return nil
		}
	}
	*t = TriggerCSHF
	return nil
}

// MigrationEvent is one entry of the migration trace: which unit changed
// encoding, why, and what the change cost.
type MigrationEvent struct {
	// Seq is a process-wide monotone sequence number (shared with
	// snapshots, so cross-scope interleavings are reconstructible).
	Seq int64 `json:"seq"`
	// Epoch is the adaptation epoch the decision was made in.
	Epoch uint32 `json:"epoch"`
	// Source is the emitting scope ("" for an unscoped index).
	Source string `json:"source,omitempty"`
	// Unit is the hashed unit identity (stable across the trace, opaque).
	Unit uint64 `json:"unit"`
	// From and To name the encodings ("?" when the origin is unknown).
	From string `json:"from"`
	To   string `json:"to"`
	// Trigger classifies the cause (top-k, CSHF cold path, budget, ...).
	Trigger Trigger `json:"trigger"`
	// Async is true when the migration ran on the pipeline's worker pool.
	Async bool `json:"async"`
	// OK reports whether the Migrate callback changed anything.
	OK bool `json:"ok"`
	// QueueWaitNs is the enqueue→execution wait (0 for inline runs);
	// BuildNs the Migrate callback's duration.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	BuildNs     int64 `json:"build_ns"`
}

// MigrationTrace is a bounded ring buffer of migration events. Recording
// takes one short mutex hold (migrations are orders of magnitude rarer
// than index operations); when the ring is full the oldest events are
// overwritten and counted as dropped.
type MigrationTrace struct {
	mu      sync.Mutex
	buf     []MigrationEvent
	total   int64 // events ever recorded
	dropped int64
	// lastSeq mirrors the newest event's seq for lock-free reads: the
	// flight recorder stamps it into ops that overlap a migration as the
	// exemplar link, on a path that must not take the trace mutex.
	lastSeq atomic.Int64
}

// NewMigrationTrace creates a trace ring with the given capacity.
func NewMigrationTrace(capacity int) *MigrationTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &MigrationTrace{buf: make([]MigrationEvent, 0, capacity)}
}

// Record appends one event, stamping its sequence number. The seq is
// drawn under the mutex so ring order equals seq order — Since relies on
// that to binary-search the retained window.
func (t *MigrationTrace) Record(ev MigrationEvent) {
	t.mu.Lock()
	ev.Seq = nextSeq()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.total%int64(cap(t.buf))] = ev
		t.dropped++
	}
	t.total++
	t.lastSeq.Store(ev.Seq)
	t.mu.Unlock()
}

// LastSeq returns the newest recorded event's seq (0 when empty) without
// taking the mutex.
func (t *MigrationTrace) LastSeq() int64 { return t.lastSeq.Load() }

// Events returns the retained events oldest-first (a copy).
func (t *MigrationTrace) Events() []MigrationEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	out := make([]MigrationEvent, n)
	if t.total <= int64(cap(t.buf)) {
		copy(out, t.buf)
		return out
	}
	head := int(t.total % int64(cap(t.buf))) // oldest retained slot
	copy(out, t.buf[head:])
	copy(out[n-head:], t.buf[:head])
	return out
}

// Since returns the retained events with Seq > seq, oldest-first. An
// incremental reader (ahimon attach) passes the last seq it has seen and
// gets only the new suffix — the full-ring copy Events() takes on every
// call happens at most once, at attach time. Since(0) equals Events().
func (t *MigrationTrace) Since(seq int64) []MigrationEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	if n == 0 {
		return nil
	}
	at := func(i int) *MigrationEvent { return &t.buf[i] }
	if t.total > int64(cap(t.buf)) {
		head := int(t.total % int64(cap(t.buf)))
		at = func(i int) *MigrationEvent { return &t.buf[(head+i)%n] }
	}
	// Ring order is seq order (Record draws the seq under the mutex), so
	// the new suffix starts at the first retained event past seq.
	lo := sort.Search(n, func(i int) bool { return at(i).Seq > seq })
	if lo == n {
		return nil
	}
	out := make([]MigrationEvent, n-lo)
	for i := lo; i < n; i++ {
		out[i-lo] = *at(i)
	}
	return out
}

// Total returns how many events were ever recorded; Dropped how many were
// overwritten by ring wrap-around.
func (t *MigrationTrace) Total() int64   { t.mu.Lock(); defer t.mu.Unlock(); return t.total }
func (t *MigrationTrace) Dropped() int64 { t.mu.Lock(); defer t.mu.Unlock(); return t.dropped }
