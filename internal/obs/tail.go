package obs

import "sort"

// ExplainTail is the analysis behind `ahimon -explain-tail`: given a set
// of recorded op events, it computes the per-kind latency quantile from
// the events themselves, isolates the ops at or above it, and ranks the
// causes the recorder tagged them with — "73% of >p999 lookups overlapped
// a succinct-leaf migration on shard 5" falls straight out of the top
// TailCause row plus its exemplar.

// TailCause is one cause's share of a kind's latency tail.
type TailCause struct {
	Cause Cause `json:"cause"`
	Count int   `json:"count"`
	// Fraction is Count over the tail size.
	Fraction float64 `json:"fraction"`
	// Source is the scope contributing most of this cause's tail ops.
	Source      string `json:"source,omitempty"`
	SourceCount int    `json:"source_count,omitempty"`
	// ExemplarSeq is the op's event seq; ExemplarMigSeq links into the
	// migration trace when the cause is migration overlap.
	ExemplarSeq    int64 `json:"exemplar_seq,omitempty"`
	ExemplarMigSeq int64 `json:"exemplar_mig_seq,omitempty"`
	// WorstNs is the slowest op of this cause in the tail.
	WorstNs int64 `json:"worst_ns"`
}

// TailReport is one op kind's tail breakdown.
type TailReport struct {
	Kind        OpKind      `json:"op"`
	Events      int         `json:"events"`
	Quantile    float64     `json:"quantile"`
	ThresholdNs int64       `json:"threshold_ns"` // the quantile's latency
	P50Ns       int64       `json:"p50_ns"`
	TailOps     int         `json:"tail_ops"`
	Named       int         `json:"named"` // tail ops with a non-unknown cause
	Causes      []TailCause `json:"causes"`
}

// NamedFraction is Named/TailOps (1 when the tail is empty).
func (t TailReport) NamedFraction() float64 {
	if t.TailOps == 0 {
		return 1
	}
	return float64(t.Named) / float64(t.TailOps)
}

// ExplainTail breaks down the ≥q latency tail of ops per kind, causes
// ranked by share. Kinds with no events are omitted.
func ExplainTail(ops []OpEvent, q float64) []TailReport {
	if q <= 0 || q >= 1 {
		q = 0.999
	}
	byKind := map[OpKind][]*OpEvent{}
	for i := range ops {
		ev := &ops[i]
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}
	kinds := make([]OpKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var out []TailReport
	for _, k := range kinds {
		evs := byKind[k]
		durs := make([]int64, len(evs))
		for i, ev := range evs {
			durs[i] = ev.DurNs
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		idx := int(q * float64(len(durs)))
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		threshold := durs[idx]
		rep := TailReport{
			Kind:        k,
			Events:      len(evs),
			Quantile:    q,
			ThresholdNs: threshold,
			P50Ns:       durs[len(durs)/2],
		}
		type causeAgg struct {
			count    int
			bySource map[string]int
			exemplar *OpEvent
			worstNs  int64
		}
		aggs := map[Cause]*causeAgg{}
		for _, ev := range evs {
			if ev.DurNs < threshold {
				continue
			}
			rep.TailOps++
			if ev.Cause != CauseUnknown {
				rep.Named++
			}
			a := aggs[ev.Cause]
			if a == nil {
				a = &causeAgg{bySource: map[string]int{}}
				aggs[ev.Cause] = a
			}
			a.count++
			a.bySource[ev.Source]++
			if ev.DurNs > a.worstNs {
				a.worstNs = ev.DurNs
				a.exemplar = ev
			}
		}
		for c, a := range aggs {
			tc := TailCause{
				Cause:    c,
				Count:    a.count,
				Fraction: float64(a.count) / float64(rep.TailOps),
				WorstNs:  a.worstNs,
			}
			for src, n := range a.bySource {
				if n > tc.SourceCount {
					tc.Source, tc.SourceCount = src, n
				}
			}
			if a.exemplar != nil {
				tc.ExemplarSeq = a.exemplar.Seq
				tc.ExemplarMigSeq = a.exemplar.MigSeq
			}
			rep.Causes = append(rep.Causes, tc)
		}
		sort.Slice(rep.Causes, func(i, j int) bool {
			if rep.Causes[i].Count != rep.Causes[j].Count {
				return rep.Causes[i].Count > rep.Causes[j].Count
			}
			return rep.Causes[i].Cause < rep.Causes[j].Cause
		})
		out = append(out, rep)
	}
	return out
}
