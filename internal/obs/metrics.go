package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension ({source="shard3"}-style).
type Label struct{ K, V string }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Int64
	name string // rendered name incl. labels
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d < 0 is ignored: counters are monotonic).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic bucket counters: the
// observe path is a binary search over the immutable bounds plus three
// atomic adds — no locks, no allocation, no pooling.
type Histogram struct {
	bounds  []int64 // upper bounds, ascending; implicit +Inf bucket after
	counts  []atomic.Int64
	sum     atomic.Int64
	n       atomic.Int64
	max     atomic.Int64 // largest value ever observed
	name    string
	labels  string // pre-rendered label body without braces ("" if none)
	lbounds []string
}

// DefaultLatencyBucketsNs covers 250ns..1s exponentially — tight enough at
// the bottom to resolve a leaf re-encode, wide enough at the top for a
// full drain.
var DefaultLatencyBucketsNs = []int64{
	250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000, 1_000_000_000,
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Max returns the largest value ever observed (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (the last bucket is +Inf).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Counts returns a copy of the per-bucket counts (len = len(Bounds())+1;
// the final entry is the +Inf bucket).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the owning bucket. Quantiles landing in the +Inf
// overflow bucket interpolate up to the observed maximum rather than
// clamping to the last finite bound, so a tail that escapes the bucket
// layout still reports honestly. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			var hi int64
			if i < len(h.bounds) {
				hi = h.bounds[i]
			} else if hi = h.max.Load(); hi < lo {
				hi = lo
			}
			frac := (rank - cum) / c
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	if m := h.max.Load(); m > 0 {
		return m
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is the named-metric store. Instrument lookups take a mutex;
// the instruments themselves are lock-free, so emitting code resolves its
// instruments once and never touches the registry again.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	// insertion-ordered views for stable exposition
	counters []*Counter
	gauges   []*Gauge
	funcs    []gaugeFunc
	hists    []*Histogram
}

type gaugeFunc struct {
	name string
	f    func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]any{}}
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and line feed.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderName composes a Prometheus-style series name from base + labels.
func renderName(base string, labels []Label) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.K + `="` + escapeLabel(l.V) + `"`
	}
	return strings.Join(parts, ",")
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	full := renderName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byName[full]; ok {
		return v.(*Counter)
	}
	c := &Counter{name: full}
	r.byName[full] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	full := renderName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byName[full]; ok {
		return v.(*Gauge)
	}
	g := &Gauge{name: full}
	r.byName[full] = g
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at exposition time
// (e.g. live index bytes). Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, labels []Label, f func() int64) {
	full := renderName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.funcs {
		if r.funcs[i].name == full {
			r.funcs[i].f = f
			return
		}
	}
	r.funcs = append(r.funcs, gaugeFunc{name: full, f: f})
}

// Histogram returns (creating on first use) the histogram for name+labels
// with the given bucket upper bounds (ascending; an implicit +Inf bucket
// is appended). Bounds are only consulted on creation.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	full := renderName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byName[full]; ok {
		return v.(*Histogram)
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		name:   name,
		labels: renderLabels(labels),
	}
	r.byName[full] = h
	r.hists = append(r.hists, h)
	return h
}

// metricsSnapshot flattens every instrument into name → value. Histograms
// contribute _count, _sum and interpolated _p50/_p99 entries.
func (r *Registry) metricsSnapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.byName)+4*len(r.hists))
	for _, c := range r.counters {
		out[c.name] = float64(c.Load())
	}
	for _, g := range r.gauges {
		out[g.name] = float64(g.Load())
	}
	for _, gf := range r.funcs {
		out[gf.name] = float64(gf.f())
	}
	for _, h := range r.hists {
		base := renderName(h.name, nil)
		if h.labels != "" {
			base = h.name + "{" + h.labels + "}"
		}
		out[base+"_count"] = float64(h.Count())
		out[base+"_sum"] = float64(h.Sum())
		out[base+"_p50"] = float64(h.Quantile(0.50))
		out[base+"_p99"] = float64(h.Quantile(0.99))
		out[base+"_p999"] = float64(h.Quantile(0.999))
		out[base+"_max"] = float64(h.Max())
	}
	return out
}
