package bitutil

import "math/bits"

// Builder accumulates bits for a BitVector.
type Builder struct {
	words []uint64
	n     int
}

// Append adds one bit.
func (b *Builder) Append(bit bool) {
	word := b.n / 64
	if word == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[word] |= 1 << uint(b.n%64)
	}
	b.n++
}

// AppendN adds n copies of bit.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// AppendWord adds the low n bits of w (LSB first).
func (b *Builder) AppendWord(w uint64, n int) {
	for i := 0; i < n; i++ {
		b.Append(w&(1<<uint(i)) != 0)
	}
}

// Len returns the number of appended bits.
func (b *Builder) Len() int { return b.n }

// Set sets bit i (which must already have been appended) to 1.
func (b *Builder) Set(i int) { b.words[i/64] |= 1 << uint(i%64) }

// Get reports bit i of the builder.
func (b *Builder) Get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

// Build finalizes the vector and computes the rank/select directories.
func (b *Builder) Build() *BitVector {
	return newBitVector(b.words, b.n)
}

// BitVector is an immutable bit vector with O(1) Rank1/Rank0 and
// near-O(1) Select1/Select0.
//
// The rank directory is rank9-style: one cumulative 64-bit count per
// 512-bit superblock (superRank) plus, per superblock, seven 9-bit
// cumulative word offsets packed into a single uint64 (subRank), so a
// rank probe is two array reads and one popcount — no word loop.
//
// The select directories sample the exact position of every
// selectSample-th one (select1Samp) and zero (select0Samp). A select
// probe jumps to the sampled position and scans at most scanBudget
// sequential words; blocks sparser than the budget fall back to a
// binary search of the superblock directory bounded by the next sample,
// then pick the word from the packed sub-block counts. Either way the
// probe ends with a branch-free broadword in-word select — near-O(1)
// instead of the former linear word scan. The directories cost
// 8 bytes per 512 payload bits (rank) plus 4 bytes per sampled
// one/zero (select), all rebuilt rather than serialized.
type BitVector struct {
	words       []uint64
	superRank   []uint64 // cumulative ones before each 8-word superblock
	subRank     []uint64 // 7 packed 9-bit in-superblock cumulative counts
	select1Samp []uint32 // position of the (s*selectSample+1)-th one
	select0Samp []uint32 // position of the (s*selectSample+1)-th zero
	n           int
	ones        int
}

const (
	wordsPerSuper = 8
	selectSample  = 128
	subShift      = 9     // bits per packed sub-block count
	subMask       = 0x1FF // 9-bit mask
)

func newBitVector(words []uint64, n int) *BitVector {
	v := &BitVector{words: words, n: n}
	nSuper := (len(words) + wordsPerSuper - 1) / wordsPerSuper
	v.superRank = make([]uint64, nSuper+1)
	v.subRank = make([]uint64, nSuper)
	ones, zeros := 0, 0
	for s := 0; s < nSuper; s++ {
		v.superRank[s] = uint64(ones)
		end := (s + 1) * wordsPerSuper
		if end > len(words) {
			end = len(words)
		}
		inSuper := 0
		var packed uint64
		for w := s * wordsPerSuper; w < end; w++ {
			if j := w - s*wordsPerSuper; j > 0 {
				packed |= uint64(inSuper) << uint((j-1)*subShift)
			}
			word := words[w]
			c := bits.OnesCount64(word)
			// Sample positions: the (k*selectSample+1)-th one/zero for
			// each k crossed inside this word. Zeros beyond bit n-1 in
			// the final word are phantoms, but they can only follow the
			// last real zero, so sampling stops before reaching them
			// (total real zeros bound the sample count).
			for t := (ones/selectSample)*selectSample + 1; t <= ones+c; t += selectSample {
				if t > ones {
					v.select1Samp = append(v.select1Samp, uint32(w*64+selectInWord(word, t-ones)))
				}
			}
			zc := 64 - c
			if w == len(words)-1 {
				zc -= len(words)*64 - n // drop phantom tail zeros
				if zc < 0 {
					zc = 0
				}
			}
			for t := (zeros/selectSample)*selectSample + 1; t <= zeros+zc; t += selectSample {
				if t > zeros {
					v.select0Samp = append(v.select0Samp, uint32(w*64+selectInWord(^word, t-zeros)))
				}
			}
			ones += c
			zeros += zc
			inSuper += c
		}
		v.subRank[s] = packed
	}
	v.superRank[nSuper] = uint64(ones)
	v.ones = ones
	return v
}

// selectByteTable[b*8+j] is the position of the (j+1)-th set bit of byte b.
var selectByteTable [256 * 8]uint8

func init() {
	for b := 0; b < 256; b++ {
		j := 0
		for i := 0; i < 8; i++ {
			if b&(1<<uint(i)) != 0 {
				selectByteTable[b*8+j] = uint8(i)
				j++
			}
		}
	}
}

const (
	l8 = 0x0101010101010101
	h8 = 0x8080808080808080
)

// selectInWord returns the bit index of the k-th (1-based) set bit of w.
// The caller guarantees w has at least k set bits. Broadword (SWAR)
// byte-wise prefix popcounts locate the byte without a loop; a 2 KiB
// table finishes inside the byte.
func selectInWord(w uint64, k int) int {
	// Byte-wise popcounts, then inclusive prefix sums in each byte lane.
	s := w - (w>>1)&0x5555555555555555
	s = s&0x3333333333333333 + (s>>2)&0x3333333333333333
	s = (s + s>>4) & 0x0f0f0f0f0f0f0f0f
	cum := s * l8
	// Count byte lanes whose inclusive sum is < k: lane flags via SWAR
	// compare (both operands < 128), then horizontal add.
	byteIdx := int(((uint64(k-1)*l8|h8)-cum)&h8>>7*l8>>56) * 8
	prev := int(cum << 8 >> uint(byteIdx) & 0xff)
	return byteIdx + int(selectByteTable[int(w>>uint(byteIdx)&0xff)*8+k-1-prev])
}

// Len returns the number of bits.
func (v *BitVector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *BitVector) Ones() int { return v.ones }

// Zeros returns the total number of unset bits.
func (v *BitVector) Zeros() int { return v.n - v.ones }

// Bytes returns the approximate heap footprint.
func (v *BitVector) Bytes() int {
	return len(v.words)*8 + len(v.superRank)*8 + len(v.subRank)*8 +
		len(v.select1Samp)*4 + len(v.select0Samp)*4
}

// Get reports bit i.
func (v *BitVector) Get(i int) bool { return v.words[i/64]&(1<<uint(i%64)) != 0 }

// Rank1 returns the number of set bits in [0, i). i may equal Len().
func (v *BitVector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.ones
	}
	word := i / 64
	super := word / wordsPerSuper
	r := int(v.superRank[super])
	if j := word % wordsPerSuper; j > 0 {
		r += int(v.subRank[super] >> uint((j-1)*subShift) & subMask)
	}
	return r + bits.OnesCount64(v.words[word]&(1<<uint(i%64)-1))
}

// Rank0 returns the number of zero bits in [0, i).
func (v *BitVector) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.n - v.ones
	}
	return i - v.Rank1(i)
}

// superOnes returns the ones strictly before superblock s.
func (v *BitVector) superOnes(s int) int { return int(v.superRank[s]) }

// superZeros returns the zeros strictly before superblock s, counting the
// phantom tail of the last word as zeros (harmless for select: phantoms
// sit strictly after every real zero).
func (v *BitVector) superZeros(s int) int {
	return s*wordsPerSuper*64 - int(v.superRank[s])
}

// scanBudget is how many words a select probe scans sequentially past its
// sample before switching to the superblock directory. Dense blocks finish
// inside the budget; sparse blocks binary-search instead of walking.
const scanBudget = 8

// Select1 returns the position of the k-th (1-based) set bit, or -1 if
// k is out of range.
func (v *BitVector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// The sample is the exact position of the (s*selectSample+1)-th one;
	// r-1 more ones remain at strictly later positions.
	s := (k - 1) / selectSample
	p := int(v.select1Samp[s])
	r := k - s*selectSample
	if r == 1 {
		return p
	}
	w := p / 64
	cur := v.words[w] & (^uint64(0) << uint(p%64))
	for i := 0; i < scanBudget; i++ {
		c := bits.OnesCount64(cur)
		if r <= c {
			return w*64 + selectInWord(cur, r)
		}
		r -= c
		w++
		cur = v.words[w]
	}
	// Sparse block: binary-search the superblock directory between here
	// and the next sample, then pick the word from the packed sub-counts.
	lo := w / wordsPerSuper
	hi := len(v.superRank) - 1
	if s+1 < len(v.select1Samp) {
		if h := int(v.select1Samp[s+1])/64/wordsPerSuper + 1; h < hi {
			hi = h
		}
	}
	for lo < hi-1 {
		mid := int(uint(lo+hi) >> 1)
		if v.superOnes(mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	r = k - v.superOnes(lo) // 1-based rank within superblock lo
	base := lo * wordsPerSuper
	word, before := base, 0
	sub := v.subRank[lo]
	for j := 1; j < wordsPerSuper && base+j < len(v.words); j++ {
		c := int(sub >> uint((j-1)*subShift) & subMask)
		if c >= r {
			break
		}
		word, before = base+j, c
	}
	return word*64 + selectInWord(v.words[word], r-before)
}

// Select0 returns the position of the k-th (1-based) zero bit, or -1 if
// k is out of range.
func (v *BitVector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	s := (k - 1) / selectSample
	p := int(v.select0Samp[s])
	r := k - s*selectSample
	if r == 1 {
		return p
	}
	w := p / 64
	cur := ^v.words[w] & (^uint64(0) << uint(p%64))
	for i := 0; i < scanBudget; i++ {
		c := bits.OnesCount64(cur)
		if r <= c {
			return w*64 + selectInWord(cur, r)
		}
		r -= c
		w++
		cur = ^v.words[w]
	}
	lo := w / wordsPerSuper
	hi := len(v.superRank) - 1
	if s+1 < len(v.select0Samp) {
		if h := int(v.select0Samp[s+1])/64/wordsPerSuper + 1; h < hi {
			hi = h
		}
	}
	for lo < hi-1 {
		mid := int(uint(lo+hi) >> 1)
		if v.superZeros(mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	r = k - v.superZeros(lo)
	base := lo * wordsPerSuper
	word, before := base, 0
	sub := v.subRank[lo]
	for j := 1; j < wordsPerSuper && base+j < len(v.words); j++ {
		c := j*64 - int(sub>>uint((j-1)*subShift)&subMask) // zeros before word j
		if c >= r {
			break
		}
		word, before = base+j, c
	}
	return word*64 + selectInWord(^v.words[word], r-before)
}

// NextSet returns the position of the first set bit at or after i, or -1.
func (v *BitVector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	w := i / 64
	cur := v.words[w] >> uint(i%64)
	if cur != 0 {
		p := i + bits.TrailingZeros64(cur)
		if p < v.n {
			return p
		}
		return -1
	}
	for w++; w < len(v.words); w++ {
		if v.words[w] != 0 {
			p := w*64 + bits.TrailingZeros64(v.words[w])
			if p < v.n {
				return p
			}
			return -1
		}
	}
	return -1
}

// PrevSet returns the position of the last set bit at or before i, or -1.
func (v *BitVector) PrevSet(i int) int {
	if i >= v.n {
		i = v.n - 1
	}
	if i < 0 {
		return -1
	}
	w := i / 64
	cur := v.words[w] << uint(63-i%64)
	if cur != 0 {
		return i - bits.LeadingZeros64(cur)
	}
	for w--; w >= 0; w-- {
		if v.words[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(v.words[w])
		}
	}
	return -1
}

// AppendUint64s serializes the vector as (bitLen, wordCount, words...) into
// dst — the persistence primitive used by the FST. The rank/select
// directories are rebuilt on load rather than stored.
func (v *BitVector) AppendUint64s(dst []uint64) []uint64 {
	dst = append(dst, uint64(v.n), uint64(len(v.words)))
	return append(dst, v.words...)
}

// BitVectorFromUint64s reverses AppendUint64s, consuming from src and
// returning the remainder. The word payload is copied.
func BitVectorFromUint64s(src []uint64) (*BitVector, []uint64, error) {
	if len(src) < 2 {
		return nil, nil, errTruncated
	}
	n, words := int(src[0]), int(src[1])
	src = src[2:]
	if words > len(src) || n > words*64 || n < 0 {
		return nil, nil, errTruncated
	}
	w := make([]uint64, words)
	copy(w, src[:words])
	return newBitVector(w, n), src[words:], nil
}
